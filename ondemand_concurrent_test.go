package dynppr_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dynppr"
	"dynppr/internal/power"
)

// TestOnDemandColdQueryCoalescingAndCache is the tentpole's acceptance test:
// N identical concurrent cold queries execute exactly one push (the
// coalesce counter accounts for every waiter), repeat queries with no
// interleaved mutation are served from the result cache, and an effective
// mutation invalidates the cache through the generation key alone.
func TestOnDemandColdQueryCoalescingAndCache(t *testing.T) {
	edges := odTestEdges(t, 20_000, 120_000, 13)
	g := dynppr.GraphFromEdges(edges)
	so := dynppr.DefaultServiceOptions()
	// A deep tracked ε gives the budgeted wedge query below a long ladder to
	// descend, so it occupies the worker for its whole budget.
	so.Options.Epsilon = 1e-9
	so.OnDemand = dynppr.OnDemandOptions{
		Enabled: true, Epsilon: 1e-3, Seed: 5,
		// A single worker serializes the pushes, so the wedge query below
		// pins every later query in admission until it completes.
		Workers: 1,
	}
	svc, err := dynppr.NewService(g, g.TopDegreeVertices(1), so)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	defer svc.Close()

	const wedge, probe = dynppr.VertexID(100), dynppr.VertexID(200)

	// Occupy the single worker with a slow cold push — the generous budget
	// keeps the ε ladder refining — so the concurrent probe queries all pile
	// onto one flight before any of them can run.
	wedgeDone := make(chan error, 1)
	go func() {
		_, _, err := svc.QueryTopKOpts(context.Background(), wedge, 5,
			dynppr.QueryOptions{Budget: 1500 * time.Millisecond})
		wedgeDone <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for svc.Stats().OnDemand.PoolDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("wedge query never reached the worker pool")
		}
		time.Sleep(100 * time.Microsecond)
	}

	const waiters = 8
	type ans struct {
		top []dynppr.VertexScore
		qi  dynppr.QueryInfo
		err error
	}
	answers := make([]ans, waiters)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			top, qi, err := svc.QueryTopK(probe, 10)
			answers[i] = ans{top, qi, err}
		}(i)
	}
	start.Done()
	done.Wait()
	if err := <-wedgeDone; err != nil {
		t.Fatalf("wedge query: %v", err)
	}

	for i, a := range answers {
		if a.err != nil {
			t.Fatalf("waiter %d: %v", i, a.err)
		}
		if !a.qi.Approx || a.qi.Epsilon <= 0 {
			t.Fatalf("waiter %d: approx=%v epsilon=%g", i, a.qi.Approx, a.qi.Epsilon)
		}
		if len(a.top) != len(answers[0].top) {
			t.Fatalf("waiter %d: answer shape diverged", i)
		}
		for j := range a.top {
			if a.top[j] != answers[0].top[j] {
				t.Fatalf("waiter %d entry %d: %v vs %v", i, j, a.top[j], answers[0].top[j])
			}
		}
	}

	st := svc.Stats().OnDemand
	// Exactly one push per distinct (source, generation): the wedge and the
	// probe. Every probe query either shared the flight or read the entry it
	// published — none pushed again.
	if st.ColdPushes != 2 {
		t.Fatalf("cold pushes = %d, want exactly 2 (wedge + one coalesced probe)", st.ColdPushes)
	}
	if st.Coalesced+st.CacheHits != waiters-1 {
		t.Fatalf("coalesced=%d cacheHits=%d, want them to cover the %d waiters",
			st.Coalesced, st.CacheHits, waiters-1)
	}
	if st.Coalesced == 0 {
		t.Fatal("coalesce counter did not advance: no waiter shared the in-flight push")
	}
	if st.Queries != waiters+1 {
		t.Fatalf("queries = %d, want %d", st.Queries, waiters+1)
	}

	// A repeat query with no interleaved mutation is a cache hit and returns
	// the identical answer; an estimate for the same source reads the same
	// entry.
	hitsBefore := st.CacheHits
	again, qi, err := svc.QueryTopK(probe, 10)
	if err != nil {
		t.Fatalf("repeat QueryTopK: %v", err)
	}
	if !qi.Cached {
		t.Fatal("repeat cold query was not served from the result cache")
	}
	for j := range again {
		if again[j] != answers[0].top[j] {
			t.Fatalf("cached entry %d: %v vs %v", j, again[j], answers[0].top[j])
		}
	}
	if _, eqi, err := svc.QueryEstimate(probe, 0); err != nil || !eqi.Cached {
		t.Fatalf("estimate after topk: err=%v cached=%v (want cache hit on the shared entry)", err, eqi.Cached)
	}
	if st := svc.Stats().OnDemand; st.CacheHits != hitsBefore+2 {
		t.Fatalf("cache hits %d -> %d, want +2", hitsBefore, st.CacheHits)
	}

	// An effective mutation moves the generation: the cached entry is dead
	// and the next query pushes again.
	if _, err := svc.ApplyBatch(dynppr.Batch{{U: 1, V: 20_000, Op: dynppr.Insert}}); err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	if _, qi, err := svc.QueryTopK(probe, 10); err != nil || qi.Cached {
		t.Fatalf("post-mutation query: err=%v cached=%v (want recompute)", err, qi.Cached)
	}
	if st := svc.Stats().OnDemand; st.ColdPushes != 3 {
		t.Fatalf("cold pushes after mutation = %d, want 3", st.ColdPushes)
	}
}

// TestOnDemandResultCacheBounds pins the LRU bound and the disable knob.
func TestOnDemandResultCacheBounds(t *testing.T) {
	edges := odTestEdges(t, 200, 1200, 3)

	// Capacity 2: the third distinct source evicts the first.
	g := dynppr.GraphFromEdges(edges)
	so := dynppr.DefaultServiceOptions()
	so.OnDemand = dynppr.OnDemandOptions{Enabled: true, Epsilon: 1e-3, ResultCache: 2}
	svc, err := dynppr.NewService(g, g.TopDegreeVertices(1), so)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	defer svc.Close()
	for _, src := range []dynppr.VertexID{10, 20, 30} {
		if _, _, err := svc.QueryTopK(src, 5); err != nil {
			t.Fatalf("QueryTopK(%d): %v", src, err)
		}
	}
	st := svc.Stats().OnDemand
	if st.CacheEntries != 2 || st.CacheCapacity != 2 {
		t.Fatalf("cache entries=%d capacity=%d, want 2/2", st.CacheEntries, st.CacheCapacity)
	}
	// 20 and 30 are resident; 10 was evicted and must push again.
	if _, qi, err := svc.QueryTopK(20, 5); err != nil || !qi.Cached {
		t.Fatalf("resident source 20: err=%v cached=%v", err, qi.Cached)
	}
	if _, qi, err := svc.QueryTopK(10, 5); err != nil || qi.Cached {
		t.Fatalf("evicted source 10: err=%v cached=%v (want recompute)", err, qi.Cached)
	}

	// Negative disables: repeats recompute every time.
	so.OnDemand.ResultCache = -1
	svc2, err := dynppr.NewService(dynppr.GraphFromEdges(edges), g.TopDegreeVertices(1), so)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	defer svc2.Close()
	for i := 0; i < 3; i++ {
		if _, qi, err := svc2.QueryTopK(10, 5); err != nil || qi.Cached {
			t.Fatalf("uncached service iteration %d: err=%v cached=%v", i, err, qi.Cached)
		}
	}
	st2 := svc2.Stats().OnDemand
	if st2.ColdPushes != 3 || st2.CacheCapacity != 0 || st2.CacheHits != 0 {
		t.Fatalf("disabled cache: pushes=%d capacity=%d hits=%d, want 3/0/0",
			st2.ColdPushes, st2.CacheCapacity, st2.CacheHits)
	}
}

// TestOnDemandBudgetedQueries covers adaptive ε end to end: a spent budget
// degrades to exactly the deterministic coarse answer, a generous budget
// refines past the configured ε (still differential-checking against the
// power oracle within the advertised bound), and budgeted answers cache.
func TestOnDemandBudgetedQueries(t *testing.T) {
	const (
		odEps      = 1e-4
		trackedEps = 1e-6
	)
	edges := odTestEdges(t, 400, 3000, 21)
	newSvc := func() *dynppr.Service {
		g := dynppr.GraphFromEdges(edges)
		so := dynppr.DefaultServiceOptions()
		so.Options.Epsilon = trackedEps
		so.OnDemand = dynppr.OnDemandOptions{Enabled: true, Epsilon: odEps, Seed: 42}
		svc, err := dynppr.NewService(g, g.TopDegreeVertices(1), so)
		if err != nil {
			t.Fatalf("NewService: %v", err)
		}
		return svc
	}
	oracleFor := func(src dynppr.VertexID) []float64 {
		oracle, err := power.Reverse(dynppr.GraphFromEdges(edges).Snapshot(), src, power.Options{
			Alpha: dynppr.DefaultServiceOptions().Options.Alpha, Tolerance: 1e-12, MaxIterations: 10_000,
		})
		if err != nil {
			t.Fatalf("power.Reverse(%d): %v", src, err)
		}
		return oracle
	}

	svcA := newSvc()
	defer svcA.Close()
	svcB := newSvc()
	defer svcB.Close()
	ctx := context.Background()
	const src = dynppr.VertexID(57)

	// An already-spent budget emits exactly the unbudgeted coarse answer —
	// the first push level is never time-truncated — and reports Truncated.
	topUn, qiUn, err := svcA.QueryTopK(src, 10)
	if err != nil {
		t.Fatalf("unbudgeted QueryTopK: %v", err)
	}
	topSpent, qiSpent, err := svcB.QueryTopKOpts(ctx, src, 10, dynppr.QueryOptions{Budget: time.Nanosecond})
	if err != nil {
		t.Fatalf("spent-budget QueryTopK: %v", err)
	}
	if !qiSpent.Truncated {
		t.Fatal("1ns budget must report Truncated")
	}
	if math.Float64bits(qiSpent.Epsilon) != math.Float64bits(qiUn.Epsilon) {
		t.Fatalf("spent-budget epsilon %g != unbudgeted %g", qiSpent.Epsilon, qiUn.Epsilon)
	}
	for i := range topUn {
		if topUn[i] != topSpent[i] {
			t.Fatalf("spent-budget entry %d: %v vs unbudgeted %v", i, topSpent[i], topUn[i])
		}
	}

	// A generous budget descends the ε ladder toward the tracked ε and the
	// refined answer still sits within its (much tighter) advertised bound.
	const deep = dynppr.VertexID(191)
	topDeep, qiDeep, err := svcB.QueryTopKOpts(ctx, deep, 10, dynppr.QueryOptions{Budget: time.Minute})
	if err != nil {
		t.Fatalf("generous-budget QueryTopK: %v", err)
	}
	if qiDeep.Truncated {
		t.Fatal("generous budget must not be truncated")
	}
	if qiDeep.Epsilon >= odEps/10 {
		t.Fatalf("generous budget did not refine: epsilon %g", qiDeep.Epsilon)
	}
	oracle := oracleFor(deep)
	for _, vs := range topDeep {
		if d := math.Abs(vs.Score - oracle[vs.Vertex]); d > qiDeep.Epsilon+1e-12 {
			t.Fatalf("deep vertex %d: |%g - %g| = %g > advertised %g", vs.Vertex, vs.Score, oracle[vs.Vertex], d, qiDeep.Epsilon)
		}
	}
	// Budgeted repeats hit the cache with the identical answer.
	topDeep2, qiDeep2, err := svcB.QueryTopKOpts(ctx, deep, 10, dynppr.QueryOptions{Budget: time.Minute})
	if err != nil || !qiDeep2.Cached {
		t.Fatalf("budgeted repeat: err=%v cached=%v", err, qiDeep2.Cached)
	}
	for i := range topDeep {
		if topDeep[i] != topDeep2[i] {
			t.Fatalf("budgeted repeat entry %d differs", i)
		}
	}
	// An unbudgeted query must NOT consume the budgeted entry: it recomputes
	// the deterministic full-ε answer (and republishes it), after which both
	// budgeted and unbudgeted repeats are cache hits.
	if _, qi, err := svcB.QueryTopK(deep, 10); err != nil || qi.Cached {
		t.Fatalf("unbudgeted after budgeted: err=%v cached=%v (want recompute)", err, qi.Cached)
	}
	if _, qi, err := svcB.QueryTopK(deep, 10); err != nil || !qi.Cached {
		t.Fatalf("unbudgeted repeat: err=%v cached=%v", err, qi.Cached)
	}

	// A mid-sized budget lands on some ladder level nondeterministically —
	// whatever it achieved must differential-check within the advertised ε.
	const mid = dynppr.VertexID(333)
	est, qiMid, err := svcB.QueryEstimateOpts(ctx, mid, 0, dynppr.QueryOptions{Budget: 200 * time.Microsecond})
	if err != nil {
		t.Fatalf("mid-budget QueryEstimate: %v", err)
	}
	if qiMid.Epsilon <= 0 || qiMid.Epsilon > odEps {
		t.Fatalf("mid-budget epsilon %g outside (0, %g]", qiMid.Epsilon, odEps)
	}
	if d := math.Abs(est - oracleFor(mid)[0]); d > qiMid.Epsilon+1e-12 {
		t.Fatalf("mid-budget estimate off by %g > advertised %g", d, qiMid.Epsilon)
	}

	if st := svcB.Stats().OnDemand; st.BudgetTruncated == 0 {
		t.Fatal("BudgetTruncated counter did not advance")
	}
}

// TestTrackedReadsKeepAutoSourceWarm pins the recency bugfix: reads through
// the plain TopK/Estimate APIs (not just Query*) must refresh an
// auto-promoted source's last-use tick, or a source served heavily through
// them would be evicted while hot.
func TestTrackedReadsKeepAutoSourceWarm(t *testing.T) {
	edges := odTestEdges(t, 80, 400, 7)
	g := dynppr.GraphFromEdges(edges)
	so := dynppr.DefaultServiceOptions()
	so.OnDemand = dynppr.OnDemandOptions{
		Enabled: true, Epsilon: 1e-3, PromoteAfter: 2, MaxAutoSources: 2, Seed: 1,
	}
	svc, err := dynppr.NewService(g, g.TopDegreeVertices(1), so)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	defer svc.Close()

	tracked := func(v dynppr.VertexID) bool {
		for _, s := range svc.Sources() {
			if s == v {
				return true
			}
		}
		return false
	}
	promote := func(src dynppr.VertexID) {
		for i := 0; i < 2; i++ {
			if _, _, err := svc.QueryTopK(src, 5); err != nil {
				t.Fatalf("QueryTopK(%d): %v", src, err)
			}
		}
		if !tracked(src) {
			t.Fatalf("source %d not promoted", src)
		}
	}

	var a, b, c dynppr.VertexID = 11, 22, 33
	promote(a) // older tick
	promote(b) // newer tick

	// Heavy non-Query reads of a — all four tracked-read entry points.
	if _, err := svc.TopK(a, 3); err != nil {
		t.Fatalf("TopK(a): %v", err)
	}
	if _, err := svc.Estimate(a, 0); err != nil {
		t.Fatalf("Estimate(a): %v", err)
	}
	if _, _, err := svc.TopKInfo(a, 3); err != nil {
		t.Fatalf("TopKInfo(a): %v", err)
	}
	if _, _, err := svc.EstimateInfo(a, 0); err != nil {
		t.Fatalf("EstimateInfo(a): %v", err)
	}

	// Promoting c forces an eviction; the coldest source is now b, not a.
	promote(c)
	if !tracked(a) {
		t.Fatal("source a was evicted despite hot TopK/Estimate traffic (touch not on the shared read path)")
	}
	if tracked(b) {
		t.Fatal("source b survived eviction although a's reads were more recent")
	}
	if !tracked(c) {
		t.Fatal("source c lost its fresh promotion")
	}
}

// TestOnDemandCloseRace stresses Close racing in-flight cold queries:
// every call must return — an answer or ErrServiceClosed/ErrOverloaded —
// and never hang on the pool, the coalescer, or the snapshot handoff.
// Run under -race in CI.
func TestOnDemandCloseRace(t *testing.T) {
	edges := odTestEdges(t, 2000, 12_000, 9)
	g := dynppr.GraphFromEdges(edges)
	so := dynppr.DefaultServiceOptions()
	so.OnDemand = dynppr.OnDemandOptions{Enabled: true, Epsilon: 1e-5, Seed: 3, Workers: 2}
	svc, err := dynppr.NewService(g, g.TopDegreeVertices(1), so)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				src := dynppr.VertexID(rng.Intn(2000))
				_, _, err := svc.QueryTopK(src, 5)
				if err != nil {
					if !errors.Is(err, dynppr.ErrServiceClosed) && !errors.Is(err, dynppr.ErrOverloaded) {
						t.Errorf("reader: unexpected error %v", err)
					}
					return
				}
			}
		}(int64(r + 1))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := dynppr.VertexID(5000)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, err := svc.ApplyBatch(dynppr.Batch{{U: 1, V: next, Op: dynppr.Insert}})
			if err != nil {
				if !errors.Is(err, dynppr.ErrServiceClosed) {
					t.Errorf("writer: unexpected error %v", err)
				}
				return
			}
			next++
		}
	}()

	time.Sleep(25 * time.Millisecond)
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	close(stop)
	wg.Wait()

	// A fresh cold source after Close errors out instead of hanging in pool
	// admission.
	if _, _, err := svc.QueryTopK(dynppr.VertexID(1999), 5); err == nil {
		// The snapshot and cache can legitimately serve a pre-Close answer
		// (reads racing Close may succeed); force a pool trip with a source
		// that cannot be cached yet after the last mutation.
	} else if !errors.Is(err, dynppr.ErrServiceClosed) && !errors.Is(err, dynppr.ErrOverloaded) {
		t.Fatalf("post-close query: unexpected error %v", err)
	}
	// Close is idempotent.
	if err := svc.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
