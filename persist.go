package dynppr

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"dynppr/internal/ckpt"
	"dynppr/internal/faultfs"
	"dynppr/internal/graph"
	"dynppr/internal/push"
	"dynppr/internal/wal"
)

// Durable serving: a persistent Service journals every mutation to a
// write-ahead log and periodically serializes its whole state — graph,
// source set, converged per-source push states — to a checkpoint, so a
// crashed or restarted server resumes from exactly where it stopped instead
// of re-ingesting the world.
//
// The data directory holds two files:
//
//	checkpoint  the latest complete state snapshot (atomic-rename replaced)
//	wal.log     mutations journaled since that snapshot
//
// Recovery loads the checkpoint, replays the WAL suffix past the
// checkpoint's sequence number through the ordinary write pipeline (so each
// replayed batch converges exactly as it originally did), and re-checkpoints.
// Under EngineDeterministic the recovered estimates, residuals and snapshot
// epochs are bit-identical to a process that never crashed, because the
// checkpoint preserves adjacency-list order — the floating-point summation
// order of subsequent pushes — and the snapshot epochs it had published.

// SyncPolicy selects when WAL appends reach stable storage; see the wal
// package for the exact guarantees.
type SyncPolicy = wal.SyncPolicy

// WAL fsync policies.
const (
	// SyncAlways fsyncs every append: acknowledged mutations survive power
	// loss. The durable default.
	SyncAlways = wal.SyncAlways
	// SyncNone leaves flushing to the OS: faster, but an OS crash can lose
	// the most recently acknowledged mutations (never corrupting the
	// recoverable prefix).
	SyncNone = wal.SyncNone
)

// ParseSyncPolicy parses the -fsync flag values "always" and "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("dynppr: unknown fsync policy %q (want \"always\" or \"none\")", s)
	}
}

// PersistOptions configure the durability layer of a Service.
type PersistOptions struct {
	// Dir is the data directory; it is created if missing.
	Dir string
	// Sync is the WAL fsync policy.
	Sync SyncPolicy
	// FS overrides the filesystem the durability layer writes through; nil
	// selects the real one. Tests route this to a faultfs.Injector.
	FS faultfs.FS
	// ProbeBackoff is the delay before the first recovery probe after
	// persistence degrades; each failed probe doubles it (with ±25% jitter)
	// up to a 30s ceiling. Zero selects 250ms.
	ProbeBackoff time.Duration
	// ProbeMax caps consecutive failed recovery probes before the service
	// gives up and fails persistence permanently. Zero selects 64; a
	// negative value probes forever.
	ProbeMax int
}

func (po PersistOptions) fsys() faultfs.FS {
	if po.FS != nil {
		return po.FS
	}
	return faultfs.OS
}

// ErrNoPersistence is returned by Checkpoint on a service built without a
// data directory.
var ErrNoPersistence = errors.New("dynppr: service has no persistence configured")

// Degraded-mode errors. Both wrap the classified I/O error that caused the
// transition; match them with errors.Is.
var (
	// ErrPersistenceDegraded rejects mutations while persistence is
	// degraded: a journal or checkpoint write failed with a transient
	// error, the mutation had no effect, and a background recovery probe
	// is scheduled. Reads keep serving; retry the write after the probe.
	ErrPersistenceDegraded = errors.New("dynppr: persistence degraded: writes temporarily rejected while recovery probes run")
	// ErrPersistenceFailed rejects mutations once persistence has failed
	// permanently — a permanent-class I/O error (read-only filesystem,
	// permission loss) or the probe-attempt cap. Reads keep serving;
	// mutations stay disabled until the process is restarted against
	// repaired storage.
	ErrPersistenceFailed = errors.New("dynppr: persistence failed permanently: mutations disabled")
)

// PersistState is the durability layer's health: the write path is governed
// by a three-state machine instead of a sticky error, so transient storage
// trouble (ENOSPC, an fsync hiccup) degrades service instead of permanently
// disabling writes.
type PersistState int32

const (
	// PersistHealthy: mutations journal and checkpoint normally.
	PersistHealthy PersistState = iota
	// PersistDegraded: a write failed with a transient error. Reads keep
	// serving from converged snapshots, mutations are rejected with
	// ErrPersistenceDegraded (zero partial effect), and a background probe
	// with exponential backoff re-checkpoints, rotates the WAL onto a
	// fresh file, verifies both by re-reading them, and returns the
	// service to PersistHealthy without a restart.
	PersistDegraded
	// PersistFailed: a permanent-class error or too many failed probes.
	// Mutations are rejected with ErrPersistenceFailed until restart.
	PersistFailed
)

// String names the state ("healthy"/"degraded"/"failed").
func (st PersistState) String() string {
	switch st {
	case PersistHealthy:
		return "healthy"
	case PersistDegraded:
		return "degraded"
	case PersistFailed:
		return "failed"
	default:
		return fmt.Sprintf("PersistState(%d)", int32(st))
	}
}

// Recovery-probe scheduling defaults.
const (
	defaultProbeBackoff = 250 * time.Millisecond
	maxProbeBackoff     = 30 * time.Second
	defaultProbeMax     = 64
)

// persistPermanent classifies an I/O error: permanent errors (read-only
// filesystem, revoked permissions) fail persistence immediately — probing
// cannot fix them — while everything else (ENOSPC, EIO, fsync hiccups) is
// treated as transient and probed.
func persistPermanent(err error) bool {
	return errors.Is(err, syscall.EROFS) ||
		errors.Is(err, syscall.EPERM) ||
		errors.Is(err, syscall.EACCES)
}

func checkpointPath(dir string) string { return filepath.Join(dir, "checkpoint") }
func walPath(dir string) string        { return filepath.Join(dir, "wal.log") }

// CheckpointExists reports whether dir holds a checkpoint to recover from —
// the discriminator daemons use between a fresh start and a recovery boot.
func CheckpointExists(dir string) bool {
	_, err := os.Stat(checkpointPath(dir))
	return err == nil
}

// sweepTmpFiles removes *.tmp leftovers from the data directory at boot.
// Every in-process failure path already cleans its own temp file, but a
// crash between a temp write and its rename (or a kill -9 mid-degraded
// episode) can strand one; sweeping at boot keeps them from accumulating.
// Best-effort: a sweep failure never blocks a boot.
func sweepTmpFiles(fs faultfs.FS, dir string) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".tmp") {
			_ = fs.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// persistence is the durability state attached to a Service. The log and
// the degraded-mode machinery (lastErr, attempts, probeTimer) are
// pipeline-owned; the atomic mirrors feed Stats and the cheap
// PersistenceHealth accessor. The probe timer's callback only calls
// Service.submit, so the pipeline-owned fields are never touched off the
// pipeline goroutine.
type persistence struct {
	dir string
	fs  faultfs.FS
	log *wal.Log

	// Pipeline-owned degraded-mode machinery.
	lastErr      error // classified error behind the current non-healthy state
	attempts     int   // consecutive failed heal attempts
	probeBackoff time.Duration
	probeMax     int // 0 = probe forever
	probeTimer   *time.Timer
	rng          *rand.Rand // probe jitter

	// Atomic mirrors for Stats/health readers.
	state          atomic.Int32
	nextLSN        atomic.Uint64
	ckptLSN        atomic.Uint64
	checkpoints    atomic.Int64
	lastErrMsg     atomic.Pointer[string]
	nextProbeAt    atomic.Int64 // unix nanos of the next scheduled probe; 0 = none
	probeAttempts  atomic.Int64
	probeSuccesses atomic.Int64
	degradedSince  atomic.Int64 // unix nanos the current degraded window opened; 0 = not degraded
	degradedNanos  atomic.Int64 // cumulative completed degraded time
}

func (p *persistence) stateNow() PersistState { return PersistState(p.state.Load()) }

// rejectErr is the error mutations are rejected with while not healthy.
func (p *persistence) rejectErr() error {
	sentinel := ErrPersistenceDegraded
	if p.stateNow() == PersistFailed {
		sentinel = ErrPersistenceFailed
	}
	if p.lastErr == nil {
		return sentinel
	}
	// Both the sentinel and the classified cause stay matchable with
	// errors.Is: callers branch on the sentinel, tests and operators on the
	// underlying errno class.
	return fmt.Errorf("%w: %w", sentinel, p.lastErr)
}

// backoff computes the next probe delay: probeBackoff doubled per failed
// attempt, capped at 30s, with ±25% jitter so a fleet degraded by the same
// event does not probe in lockstep.
func (p *persistence) backoff() time.Duration {
	d := p.probeBackoff
	for i := 0; i < p.attempts && d < maxProbeBackoff; i++ {
		d *= 2
	}
	if d > maxProbeBackoff {
		d = maxProbeBackoff
	}
	jitter := 1 + (p.rng.Float64()-0.5)/2
	return time.Duration(float64(d) * jitter)
}

func (p *persistence) stopProbe() {
	if p.probeTimer != nil {
		p.probeTimer.Stop()
		p.probeTimer = nil
	}
	p.nextProbeAt.Store(0)
}

// closeDegradedWindow folds the open degraded window, if any, into the
// cumulative counter.
func (p *persistence) closeDegradedWindow() {
	if since := p.degradedSince.Swap(0); since > 0 {
		p.degradedNanos.Add(time.Now().UnixNano() - since)
	}
}

func (p *persistence) close() error {
	p.stopProbe()
	return p.log.Close()
}

// degradePersistence is the single entry point out of PersistHealthy: it
// classifies err, transitions to PersistDegraded (scheduling a recovery
// probe) or PersistFailed (permanent error, or the probe cap is exhausted),
// and returns the error the triggering mutation is rejected with. Runs on
// the pipeline goroutine.
func (s *Service) degradePersistence(p *persistence, err error) error {
	p.lastErr = err
	msg := err.Error()
	p.lastErrMsg.Store(&msg)
	if persistPermanent(err) || (p.probeMax > 0 && p.attempts >= p.probeMax) {
		p.stopProbe()
		p.closeDegradedWindow()
		p.state.Store(int32(PersistFailed))
		return p.rejectErr()
	}
	if p.stateNow() != PersistDegraded {
		p.degradedSince.Store(time.Now().UnixNano())
		p.state.Store(int32(PersistDegraded))
	}
	s.schedulePersistProbe(p)
	return p.rejectErr()
}

// schedulePersistProbe (re)arms the recovery-probe timer. The timer callback
// runs off-pipeline and only submits the probe onto the pipeline; if the
// service closes first, the submit fails and the callback exits.
func (s *Service) schedulePersistProbe(p *persistence) {
	d := p.backoff()
	p.nextProbeAt.Store(time.Now().Add(d).UnixNano())
	if p.probeTimer != nil {
		p.probeTimer.Stop()
	}
	p.probeTimer = time.AfterFunc(d, func() {
		_ = s.submit(func() { s.persistProbe(p) })
	})
}

// persistProbe is one background heal attempt, on the pipeline.
func (s *Service) persistProbe(p *persistence) {
	if p.stateNow() != PersistDegraded {
		return // healed by a manual Checkpoint, or already failed
	}
	p.probeAttempts.Add(1)
	if err := s.tryHealPersistence(p); err != nil {
		p.attempts++
		_ = s.degradePersistence(p, err)
	}
}

// tryHealPersistence runs the full recovery sequence on the pipeline: write
// a fresh checkpoint of the current state (which holds exactly the
// acknowledged mutations — journaling failures reject before applying, so
// memory never runs ahead of the journal), verify it by re-reading and
// decoding it, rotate the WAL onto a fresh file, verify that too, and only
// then declare the stack healthy. A checkpoint that landed in an earlier
// partially-successful attempt is simply rewritten: no mutations are
// accepted while degraded, so the state (and its LSN) cannot have moved.
func (s *Service) tryHealPersistence(p *persistence) error {
	lsn := p.log.NextLSN()
	path := checkpointPath(p.dir)
	if err := ckpt.WriteFileFS(p.fs, path, s.checkpointData(lsn)); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	verify, err := ckpt.LoadFileFS(p.fs, path)
	if err != nil {
		return fmt.Errorf("checkpoint verify: %w", err)
	}
	if verify.LSN != lsn {
		return fmt.Errorf("checkpoint verify: covers LSN %d, want %d", verify.LSN, lsn)
	}
	if err := p.log.Rotate(lsn); err != nil {
		return fmt.Errorf("wal rotate: %w", err)
	}
	if err := p.log.SelfCheck(); err != nil {
		return fmt.Errorf("wal verify: %w", err)
	}
	p.healed(lsn)
	return nil
}

// healed transitions back to PersistHealthy after a verified heal.
func (p *persistence) healed(lsn uint64) {
	p.ckptLSN.Store(lsn)
	p.nextLSN.Store(lsn)
	p.checkpoints.Add(1)
	p.probeSuccesses.Add(1)
	p.attempts = 0
	p.lastErr = nil
	p.lastErrMsg.Store(nil)
	p.stopProbe()
	p.closeDegradedWindow()
	p.state.Store(int32(PersistHealthy))
}

// PersistenceHealth is the cheap (atomic-reads-only) view of the durability
// state machine, fit for hot paths like /healthz and write rejection
// mapping — unlike Stats, it never walks the source table.
type PersistenceHealth struct {
	// State is the current durability state.
	State PersistState
	// NextProbe is the time until the next scheduled recovery probe; zero
	// when none is pending. HTTP front ends derive Retry-After from it.
	NextProbe time.Duration
	// Err is the classified error behind a non-healthy state.
	Err string
}

// PersistenceHealth reports the durability layer's state machine; ok is
// false on a service without persistence configured.
func (s *Service) PersistenceHealth() (PersistenceHealth, bool) {
	p := s.persist.Load()
	if p == nil {
		return PersistenceHealth{}, false
	}
	h := PersistenceHealth{State: p.stateNow()}
	if msg := p.lastErrMsg.Load(); msg != nil {
		h.Err = *msg
	}
	if at := p.nextProbeAt.Load(); at != 0 {
		if d := time.Until(time.Unix(0, at)); d > 0 {
			h.NextProbe = d
		}
	}
	return h, true
}

// PersistenceStats reports the durability layer's state inside ServiceStats.
type PersistenceStats struct {
	// Dir is the data directory.
	Dir string
	// Sync names the WAL fsync policy.
	Sync string
	// State is the durability state machine's current state:
	// "healthy", "degraded" or "failed".
	State string
	// NextLSN is the sequence number the next journaled mutation will
	// receive — the total number of mutations journaled over the service's
	// lifetime, rotations included.
	NextLSN uint64
	// LastCheckpointLSN is the sequence number covered by the most recent
	// checkpoint; NextLSN − LastCheckpointLSN mutations would replay on a
	// crash right now.
	LastCheckpointLSN uint64
	// Checkpoints counts completed Checkpoint calls (the construction-time
	// one included) and successful recovery probes.
	Checkpoints int64
	// Failed carries the classified persistence error while the state is
	// degraded or failed — the service is serving reads but rejecting
	// mutations (temporarily or permanently). Empty while healthy.
	Failed string
	// ProbeAttempts counts recovery heal attempts (background probes and
	// manual Checkpoint calls while degraded).
	ProbeAttempts int64
	// ProbeSuccesses counts heals that returned the service to healthy.
	ProbeSuccesses int64
	// DegradedSeconds is the cumulative time spent degraded over the
	// service's lifetime, the currently open window included.
	DegradedSeconds float64
	// NextProbe is the time until the next scheduled recovery probe; zero
	// when none is pending.
	NextProbe time.Duration
}

func (s *Service) persistenceStats() *PersistenceStats {
	p := s.persist.Load()
	if p == nil {
		return nil
	}
	st := &PersistenceStats{
		Dir:               p.dir,
		Sync:              p.log.Policy().String(),
		State:             p.stateNow().String(),
		NextLSN:           p.nextLSN.Load(),
		LastCheckpointLSN: p.ckptLSN.Load(),
		Checkpoints:       p.checkpoints.Load(),
		ProbeAttempts:     p.probeAttempts.Load(),
		ProbeSuccesses:    p.probeSuccesses.Load(),
	}
	if msg := p.lastErrMsg.Load(); msg != nil {
		st.Failed = *msg
	}
	deg := p.degradedNanos.Load()
	if since := p.degradedSince.Load(); since > 0 {
		deg += time.Now().UnixNano() - since
	}
	st.DegradedSeconds = time.Duration(deg).Seconds()
	if at := p.nextProbeAt.Load(); at != 0 {
		if d := time.Until(time.Unix(0, at)); d > 0 {
			st.NextProbe = d
		}
	}
	return st
}

// journal is the write-ahead hook of the pipeline: it runs the given append
// on the pipeline goroutine before the corresponding mutation is applied. It
// is a no-op on an in-memory service. An append failure degrades (or, for
// permanent errors, fails) persistence and rejects the mutation — the
// in-memory state never runs ahead of what recovery can reconstruct, and no
// further append touches the current WAL file before the recovery probe
// rotates onto a fresh one.
func (s *Service) journal(appendRec func(*wal.Log) (uint64, error)) error {
	p := s.persist.Load()
	if p == nil {
		return nil
	}
	if p.stateNow() != PersistHealthy {
		return p.rejectErr()
	}
	if _, err := appendRec(p.log); err != nil {
		return s.degradePersistence(p, err)
	}
	p.nextLSN.Store(p.log.NextLSN())
	return nil
}

func (s *Service) journalBatch(b Batch) error {
	// Drop updates the WAL cannot represent (unknown op, negative id).
	// They are exactly the updates the apply path skips as no-ops, so the
	// journaled batch replays to the same state — whereas mis-encoding
	// them would make recovery diverge (a zero Op read back as an insert)
	// or refuse the file (a negative id read back as an overflow).
	journalable := b
	for i, u := range b {
		if !wal.Representable(u) {
			journalable = make(Batch, i, len(b))
			copy(journalable, b[:i])
			for _, rest := range b[i:] {
				if wal.Representable(rest) {
					journalable = append(journalable, rest)
				}
			}
			break
		}
	}
	return s.journal(func(l *wal.Log) (uint64, error) { return l.AppendBatch(journalable) })
}

func (s *Service) journalAddSource(source VertexID) error {
	return s.journal(func(l *wal.Log) (uint64, error) { return l.AppendAddSource(source) })
}

func (s *Service) journalRemoveSource(source VertexID) error {
	return s.journal(func(l *wal.Log) (uint64, error) { return l.AppendRemoveSource(source) })
}

// Checkpoint serializes the service's entire state — graph, source set,
// every source's converged estimates/residuals and snapshot epoch — to the
// data directory, atomically replacing the previous checkpoint, and rotates
// the WAL to a fresh file covered by it. It runs on the write pipeline, so
// it observes a quiescent state between batches; readers are never blocked.
// It returns the WAL sequence number the checkpoint covers.
func (s *Service) Checkpoint() (uint64, error) {
	type outcome struct {
		lsn uint64
		err error
	}
	ch := make(chan outcome, 1)
	if err := s.submit(func() {
		lsn, err := s.doCheckpoint()
		ch <- outcome{lsn: lsn, err: err}
	}); err != nil {
		return 0, err
	}
	o := <-ch
	return o.lsn, o.err
}

func (s *Service) doCheckpoint() (uint64, error) {
	p := s.persist.Load()
	if p == nil {
		return 0, ErrNoPersistence
	}
	switch p.stateNow() {
	case PersistFailed:
		return 0, p.rejectErr()
	case PersistDegraded:
		// A manual checkpoint while degraded doubles as an immediate
		// recovery probe: heal now or report why not.
		p.probeAttempts.Add(1)
		if err := s.tryHealPersistence(p); err != nil {
			p.attempts++
			return 0, s.degradePersistence(p, err)
		}
		return p.ckptLSN.Load(), nil
	}
	lsn := p.log.NextLSN()
	data := s.checkpointData(lsn)
	if err := ckpt.WriteFileFS(p.fs, checkpointPath(p.dir), data); err != nil {
		return 0, s.degradePersistence(p, err)
	}
	if err := p.log.Rotate(lsn); err != nil {
		return 0, s.degradePersistence(p, err)
	}
	p.ckptLSN.Store(lsn)
	p.checkpoints.Add(1)
	return lsn, nil
}

// checkpointData captures the pipeline-quiescent state. Checkpointing is a
// quiescent point, so it first folds any delta segments into the immutable
// CSR base and then serializes that base verbatim as a v2 CSR image — no
// per-vertex adjacency walk. The CSR arrays alias the live base
// (Estimates/Residuals already copy), which is safe because the base never
// mutates in place and ckpt.WriteFile serializes it before this pipeline
// step completes — no mutation can run until then.
func (s *Service) checkpointData(lsn uint64) *ckpt.Data {
	epochBefore := s.g.Epoch()
	csr := s.g.CompactedSnapshot()
	if s.g.Epoch() != epochBefore {
		s.compactions.Add(1)
	}
	s.noteStorage()
	sources := s.allSources()
	sort.Slice(sources, func(i, j int) bool { return sources[i].source < sources[j].source })
	data := &ckpt.Data{
		LSN:     lsn,
		Alpha:   s.opts.Options.Alpha,
		Epsilon: s.opts.Options.Epsilon,
		CSR:     csr,
	}
	for _, src := range sources {
		data.Sources = append(data.Sources, ckpt.Source{
			Source:    src.source,
			Epoch:     src.slot.Epoch(),
			Estimates: src.st.Estimates(),
			Residuals: src.st.Residuals(),
		})
	}
	return data
}

// NewPersistentService is NewService plus durability: the data directory is
// initialized with a checkpoint of the cold-started state and an empty WAL,
// and every subsequent mutation is journaled. The directory must not already
// hold a checkpoint — recover one with NewServiceFromRecovery instead.
func NewPersistentService(g *Graph, sources []VertexID, so ServiceOptions, po PersistOptions) (*Service, error) {
	if po.Dir == "" {
		return nil, fmt.Errorf("dynppr: PersistOptions.Dir is required")
	}
	if err := os.MkdirAll(po.Dir, 0o755); err != nil {
		return nil, err
	}
	if CheckpointExists(po.Dir) {
		return nil, fmt.Errorf("dynppr: %s already holds a checkpoint; recover it with NewServiceFromRecovery", po.Dir)
	}
	sweepTmpFiles(po.fsys(), po.Dir)
	log, stale, err := wal.OpenOrCreate(walPath(po.Dir), 0, wal.Options{Sync: po.Sync, FS: po.FS})
	if err != nil {
		return nil, err
	}
	if len(stale) > 0 {
		log.Close()
		return nil, fmt.Errorf("dynppr: %s holds a WAL with %d records but no checkpoint to anchor them", po.Dir, len(stale))
	}
	svc, err := NewService(g, sources, so)
	if err != nil {
		log.Close()
		return nil, err
	}
	return finishPersistentBoot(svc, po, log, true)
}

// NewServiceFromRecovery rebuilds a persistent Service from its data
// directory: the latest checkpoint is loaded, the WAL suffix past its
// sequence number is replayed through the ordinary write pipeline (torn
// final records — mutations never acknowledged as durable — are discarded),
// and a fresh checkpoint is written before the service is returned. The
// scheme parameters (α, ε) are restored from the checkpoint; engine and
// pool options come from so. Snapshot epochs resume exactly where the
// recovered state left them, so they never regress across a restart.
// Restored states carry a poisoned estimate-dirty set (see
// push.RestoreState), so the reseed's first publications are full copies
// and rebuild each source's Top-K index from scratch — delta history from
// the previous process is never trusted.
func NewServiceFromRecovery(so ServiceOptions, po PersistOptions) (*Service, error) {
	sweepTmpFiles(po.fsys(), po.Dir)
	data, err := ckpt.LoadFileFS(po.fsys(), checkpointPath(po.Dir))
	if err != nil {
		return nil, err
	}
	var g *Graph
	if data.CSR != nil {
		// v2 CSR image: adopt the decoded arrays as the graph's immutable
		// base segment directly — recovery does no per-edge work.
		g = graph.FromCSR(data.CSR)
	} else {
		// Legacy v1 adjacency checkpoint: re-insert edges, then upgrade the
		// on-disk format below.
		g, err = graph.FromAdjacency(data.Out, data.In)
		if err != nil {
			return nil, fmt.Errorf("dynppr: recovering %s: %w", po.Dir, err)
		}
	}
	so.Options.Alpha = data.Alpha
	so.Options.Epsilon = data.Epsilon
	cfg := push.Config{Alpha: data.Alpha, Epsilon: data.Epsilon}
	recovered := make([]seedSource, 0, len(data.Sources))
	for _, cs := range data.Sources {
		st, err := push.RestoreState(g, cs.Source, cfg, cs.Estimates, cs.Residuals)
		if err != nil {
			return nil, fmt.Errorf("dynppr: recovering source %d: %w", cs.Source, err)
		}
		recovered = append(recovered, seedSource{source: cs.Source, epoch: cs.Epoch, st: st})
	}

	// Open the WAL before attaching it: a torn tail is truncated here, and
	// the surviving records are replayed below. A missing or torn-header
	// file recreates an empty log based at the checkpoint's LSN.
	log, records, err := wal.OpenOrCreate(walPath(po.Dir), data.LSN, wal.Options{Sync: po.Sync, FS: po.FS})
	if err != nil {
		return nil, err
	}
	if log.BaseLSN() > data.LSN {
		log.Close()
		return nil, fmt.Errorf("dynppr: WAL starts at LSN %d but the checkpoint only covers %d: records are missing",
			log.BaseLSN(), data.LSN)
	}

	svc, err := newService(g, so, nil, recovered)
	if err != nil {
		log.Close()
		return nil, err
	}
	// Replay the suffix past the checkpoint through the ordinary pipeline:
	// each batch restores invariants and converges exactly as it originally
	// did. Journaling is not yet attached, so replay does not re-journal.
	replayed := 0
	for _, rec := range records {
		if rec.LSN < data.LSN {
			continue // covered by the checkpoint (crash between rename and rotate)
		}
		replayed++
		var rerr error
		switch rec.Type {
		case wal.RecordBatch:
			_, rerr = svc.ApplyBatch(rec.Batch)
		case wal.RecordAddSource:
			rerr = svc.AddSource(rec.Source)
		case wal.RecordRemoveSource:
			rerr = svc.RemoveSource(rec.Source)
		default:
			rerr = fmt.Errorf("unknown record type %d", rec.Type)
		}
		if rerr != nil {
			svc.Close()
			log.Close()
			return nil, fmt.Errorf("dynppr: replaying WAL record %d: %w", rec.LSN, rerr)
		}
	}
	// A clean restart — nothing replayed, WAL already rotated to the
	// checkpoint's LSN — would re-serialize a byte-identical checkpoint;
	// skip that write. Any other shape re-checkpoints so the on-disk pair
	// reflects exactly the state being served. A legacy v1 checkpoint
	// always re-checkpoints, upgrading the directory to the v2 CSR image
	// on first boot.
	checkpoint := replayed > 0 || log.BaseLSN() != data.LSN || log.NextLSN() != data.LSN || data.CSR == nil
	return finishPersistentBoot(svc, po, log, checkpoint)
}

// finishPersistentBoot attaches the journal to a fully constructed service
// and (unless the loaded checkpoint already covers the exact current state)
// writes a checkpoint covering everything journaled or replayed so far,
// rotating the WAL behind it. Both boot paths end here, which keeps the
// on-disk invariant simple: a returned persistent service always has a
// checkpoint of its exact current state and an empty journal.
func finishPersistentBoot(svc *Service, po PersistOptions, log *wal.Log, checkpoint bool) (*Service, error) {
	p := &persistence{
		dir:          po.Dir,
		fs:           po.fsys(),
		log:          log,
		probeBackoff: po.ProbeBackoff,
		probeMax:     po.ProbeMax,
		rng:          rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	if p.probeBackoff <= 0 {
		p.probeBackoff = defaultProbeBackoff
	}
	switch {
	case p.probeMax == 0:
		p.probeMax = defaultProbeMax
	case p.probeMax < 0:
		p.probeMax = 0 // probe forever
	}
	p.nextLSN.Store(log.NextLSN())
	p.ckptLSN.Store(log.BaseLSN())
	svc.persist.Store(p)
	if checkpoint {
		if _, err := svc.Checkpoint(); err != nil {
			svc.Close() // closes the log via persistence
			return nil, err
		}
	}
	return svc, nil
}
