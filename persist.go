package dynppr

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"dynppr/internal/ckpt"
	"dynppr/internal/graph"
	"dynppr/internal/push"
	"dynppr/internal/wal"
)

// Durable serving: a persistent Service journals every mutation to a
// write-ahead log and periodically serializes its whole state — graph,
// source set, converged per-source push states — to a checkpoint, so a
// crashed or restarted server resumes from exactly where it stopped instead
// of re-ingesting the world.
//
// The data directory holds two files:
//
//	checkpoint  the latest complete state snapshot (atomic-rename replaced)
//	wal.log     mutations journaled since that snapshot
//
// Recovery loads the checkpoint, replays the WAL suffix past the
// checkpoint's sequence number through the ordinary write pipeline (so each
// replayed batch converges exactly as it originally did), and re-checkpoints.
// Under EngineDeterministic the recovered estimates, residuals and snapshot
// epochs are bit-identical to a process that never crashed, because the
// checkpoint preserves adjacency-list order — the floating-point summation
// order of subsequent pushes — and the snapshot epochs it had published.

// SyncPolicy selects when WAL appends reach stable storage; see the wal
// package for the exact guarantees.
type SyncPolicy = wal.SyncPolicy

// WAL fsync policies.
const (
	// SyncAlways fsyncs every append: acknowledged mutations survive power
	// loss. The durable default.
	SyncAlways = wal.SyncAlways
	// SyncNone leaves flushing to the OS: faster, but an OS crash can lose
	// the most recently acknowledged mutations (never corrupting the
	// recoverable prefix).
	SyncNone = wal.SyncNone
)

// ParseSyncPolicy parses the -fsync flag values "always" and "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("dynppr: unknown fsync policy %q (want \"always\" or \"none\")", s)
	}
}

// PersistOptions configure the durability layer of a Service.
type PersistOptions struct {
	// Dir is the data directory; it is created if missing.
	Dir string
	// Sync is the WAL fsync policy.
	Sync SyncPolicy
}

// ErrNoPersistence is returned by Checkpoint on a service built without a
// data directory.
var ErrNoPersistence = errors.New("dynppr: service has no persistence configured")

func checkpointPath(dir string) string { return filepath.Join(dir, "checkpoint") }
func walPath(dir string) string        { return filepath.Join(dir, "wal.log") }

// CheckpointExists reports whether dir holds a checkpoint to recover from —
// the discriminator daemons use between a fresh start and a recovery boot.
func CheckpointExists(dir string) bool {
	_, err := os.Stat(checkpointPath(dir))
	return err == nil
}

// persistence is the durability state attached to a Service. The log and
// failed fields are pipeline-owned; the atomic mirrors feed Stats.
type persistence struct {
	dir string
	log *wal.Log
	// failed is the sticky journal error: once an append or checkpoint
	// write fails, every later mutation is rejected with it, so the
	// in-memory state never diverges from what recovery can rebuild.
	failed error

	nextLSN     atomic.Uint64
	ckptLSN     atomic.Uint64
	checkpoints atomic.Int64
	// failedMsg mirrors failed for Stats readers (failed itself is
	// pipeline-owned), so monitoring can see that the service has gone
	// read-only instead of inferring it from per-request errors.
	failedMsg atomic.Pointer[string]
}

func (p *persistence) fail(err error) error {
	p.failed = fmt.Errorf("dynppr: persistence failed (mutations disabled): %w", err)
	msg := p.failed.Error()
	p.failedMsg.Store(&msg)
	return p.failed
}

func (p *persistence) close() error {
	return p.log.Close()
}

// PersistenceStats reports the durability layer's state inside ServiceStats.
type PersistenceStats struct {
	// Dir is the data directory.
	Dir string
	// Sync names the WAL fsync policy.
	Sync string
	// NextLSN is the sequence number the next journaled mutation will
	// receive — the total number of mutations journaled over the service's
	// lifetime, rotations included.
	NextLSN uint64
	// LastCheckpointLSN is the sequence number covered by the most recent
	// checkpoint; NextLSN − LastCheckpointLSN mutations would replay on a
	// crash right now.
	LastCheckpointLSN uint64
	// Checkpoints counts completed Checkpoint calls (the construction-time
	// one included).
	Checkpoints int64
	// Failed carries the sticky persistence error once journaling or
	// checkpointing has failed — the service is serving reads but
	// rejecting every mutation until restarted. Empty while healthy.
	Failed string
}

func (s *Service) persistenceStats() *PersistenceStats {
	p := s.persist.Load()
	if p == nil {
		return nil
	}
	st := &PersistenceStats{
		Dir:               p.dir,
		Sync:              p.log.Policy().String(),
		NextLSN:           p.nextLSN.Load(),
		LastCheckpointLSN: p.ckptLSN.Load(),
		Checkpoints:       p.checkpoints.Load(),
	}
	if msg := p.failedMsg.Load(); msg != nil {
		st.Failed = *msg
	}
	return st
}

// journal is the write-ahead hook of the pipeline: it runs the given append
// on the pipeline goroutine before the corresponding mutation is applied. It
// is a no-op on an in-memory service, and any append failure sticks — later
// mutations are rejected so the in-memory state never runs ahead of what
// recovery can reconstruct.
func (s *Service) journal(appendRec func(*wal.Log) (uint64, error)) error {
	p := s.persist.Load()
	if p == nil {
		return nil
	}
	if p.failed != nil {
		return p.failed
	}
	if _, err := appendRec(p.log); err != nil {
		return p.fail(err)
	}
	p.nextLSN.Store(p.log.NextLSN())
	return nil
}

func (s *Service) journalBatch(b Batch) error {
	// Drop updates the WAL cannot represent (unknown op, negative id).
	// They are exactly the updates the apply path skips as no-ops, so the
	// journaled batch replays to the same state — whereas mis-encoding
	// them would make recovery diverge (a zero Op read back as an insert)
	// or refuse the file (a negative id read back as an overflow).
	journalable := b
	for i, u := range b {
		if !wal.Representable(u) {
			journalable = make(Batch, i, len(b))
			copy(journalable, b[:i])
			for _, rest := range b[i:] {
				if wal.Representable(rest) {
					journalable = append(journalable, rest)
				}
			}
			break
		}
	}
	return s.journal(func(l *wal.Log) (uint64, error) { return l.AppendBatch(journalable) })
}

func (s *Service) journalAddSource(source VertexID) error {
	return s.journal(func(l *wal.Log) (uint64, error) { return l.AppendAddSource(source) })
}

func (s *Service) journalRemoveSource(source VertexID) error {
	return s.journal(func(l *wal.Log) (uint64, error) { return l.AppendRemoveSource(source) })
}

// Checkpoint serializes the service's entire state — graph, source set,
// every source's converged estimates/residuals and snapshot epoch — to the
// data directory, atomically replacing the previous checkpoint, and rotates
// the WAL to a fresh file covered by it. It runs on the write pipeline, so
// it observes a quiescent state between batches; readers are never blocked.
// It returns the WAL sequence number the checkpoint covers.
func (s *Service) Checkpoint() (uint64, error) {
	type outcome struct {
		lsn uint64
		err error
	}
	ch := make(chan outcome, 1)
	if err := s.submit(func() {
		lsn, err := s.doCheckpoint()
		ch <- outcome{lsn: lsn, err: err}
	}); err != nil {
		return 0, err
	}
	o := <-ch
	return o.lsn, o.err
}

func (s *Service) doCheckpoint() (uint64, error) {
	p := s.persist.Load()
	if p == nil {
		return 0, ErrNoPersistence
	}
	if p.failed != nil {
		return 0, p.failed
	}
	lsn := p.log.NextLSN()
	data := s.checkpointData(lsn)
	if err := ckpt.WriteFile(checkpointPath(p.dir), data); err != nil {
		return 0, p.fail(err)
	}
	if err := p.log.Rotate(lsn); err != nil {
		return 0, p.fail(err)
	}
	p.ckptLSN.Store(lsn)
	p.checkpoints.Add(1)
	return lsn, nil
}

// checkpointData captures the pipeline-quiescent state. Checkpointing is a
// quiescent point, so it first folds any delta segments into the immutable
// CSR base and then serializes that base verbatim as a v2 CSR image — no
// per-vertex adjacency walk. The CSR arrays alias the live base
// (Estimates/Residuals already copy), which is safe because the base never
// mutates in place and ckpt.WriteFile serializes it before this pipeline
// step completes — no mutation can run until then.
func (s *Service) checkpointData(lsn uint64) *ckpt.Data {
	epochBefore := s.g.Epoch()
	csr := s.g.CompactedSnapshot()
	if s.g.Epoch() != epochBefore {
		s.compactions.Add(1)
	}
	s.noteStorage()
	sources := s.allSources()
	sort.Slice(sources, func(i, j int) bool { return sources[i].source < sources[j].source })
	data := &ckpt.Data{
		LSN:     lsn,
		Alpha:   s.opts.Options.Alpha,
		Epsilon: s.opts.Options.Epsilon,
		CSR:     csr,
	}
	for _, src := range sources {
		data.Sources = append(data.Sources, ckpt.Source{
			Source:    src.source,
			Epoch:     src.slot.Epoch(),
			Estimates: src.st.Estimates(),
			Residuals: src.st.Residuals(),
		})
	}
	return data
}

// NewPersistentService is NewService plus durability: the data directory is
// initialized with a checkpoint of the cold-started state and an empty WAL,
// and every subsequent mutation is journaled. The directory must not already
// hold a checkpoint — recover one with NewServiceFromRecovery instead.
func NewPersistentService(g *Graph, sources []VertexID, so ServiceOptions, po PersistOptions) (*Service, error) {
	if po.Dir == "" {
		return nil, fmt.Errorf("dynppr: PersistOptions.Dir is required")
	}
	if err := os.MkdirAll(po.Dir, 0o755); err != nil {
		return nil, err
	}
	if CheckpointExists(po.Dir) {
		return nil, fmt.Errorf("dynppr: %s already holds a checkpoint; recover it with NewServiceFromRecovery", po.Dir)
	}
	log, stale, err := wal.OpenOrCreate(walPath(po.Dir), 0, wal.Options{Sync: po.Sync})
	if err != nil {
		return nil, err
	}
	if len(stale) > 0 {
		log.Close()
		return nil, fmt.Errorf("dynppr: %s holds a WAL with %d records but no checkpoint to anchor them", po.Dir, len(stale))
	}
	svc, err := NewService(g, sources, so)
	if err != nil {
		log.Close()
		return nil, err
	}
	return finishPersistentBoot(svc, po, log, true)
}

// NewServiceFromRecovery rebuilds a persistent Service from its data
// directory: the latest checkpoint is loaded, the WAL suffix past its
// sequence number is replayed through the ordinary write pipeline (torn
// final records — mutations never acknowledged as durable — are discarded),
// and a fresh checkpoint is written before the service is returned. The
// scheme parameters (α, ε) are restored from the checkpoint; engine and
// pool options come from so. Snapshot epochs resume exactly where the
// recovered state left them, so they never regress across a restart.
// Restored states carry a poisoned estimate-dirty set (see
// push.RestoreState), so the reseed's first publications are full copies
// and rebuild each source's Top-K index from scratch — delta history from
// the previous process is never trusted.
func NewServiceFromRecovery(so ServiceOptions, po PersistOptions) (*Service, error) {
	data, err := ckpt.LoadFile(checkpointPath(po.Dir))
	if err != nil {
		return nil, err
	}
	var g *Graph
	if data.CSR != nil {
		// v2 CSR image: adopt the decoded arrays as the graph's immutable
		// base segment directly — recovery does no per-edge work.
		g = graph.FromCSR(data.CSR)
	} else {
		// Legacy v1 adjacency checkpoint: re-insert edges, then upgrade the
		// on-disk format below.
		g, err = graph.FromAdjacency(data.Out, data.In)
		if err != nil {
			return nil, fmt.Errorf("dynppr: recovering %s: %w", po.Dir, err)
		}
	}
	so.Options.Alpha = data.Alpha
	so.Options.Epsilon = data.Epsilon
	cfg := push.Config{Alpha: data.Alpha, Epsilon: data.Epsilon}
	recovered := make([]seedSource, 0, len(data.Sources))
	for _, cs := range data.Sources {
		st, err := push.RestoreState(g, cs.Source, cfg, cs.Estimates, cs.Residuals)
		if err != nil {
			return nil, fmt.Errorf("dynppr: recovering source %d: %w", cs.Source, err)
		}
		recovered = append(recovered, seedSource{source: cs.Source, epoch: cs.Epoch, st: st})
	}

	// Open the WAL before attaching it: a torn tail is truncated here, and
	// the surviving records are replayed below. A missing or torn-header
	// file recreates an empty log based at the checkpoint's LSN.
	log, records, err := wal.OpenOrCreate(walPath(po.Dir), data.LSN, wal.Options{Sync: po.Sync})
	if err != nil {
		return nil, err
	}
	if log.BaseLSN() > data.LSN {
		log.Close()
		return nil, fmt.Errorf("dynppr: WAL starts at LSN %d but the checkpoint only covers %d: records are missing",
			log.BaseLSN(), data.LSN)
	}

	svc, err := newService(g, so, nil, recovered)
	if err != nil {
		log.Close()
		return nil, err
	}
	// Replay the suffix past the checkpoint through the ordinary pipeline:
	// each batch restores invariants and converges exactly as it originally
	// did. Journaling is not yet attached, so replay does not re-journal.
	replayed := 0
	for _, rec := range records {
		if rec.LSN < data.LSN {
			continue // covered by the checkpoint (crash between rename and rotate)
		}
		replayed++
		var rerr error
		switch rec.Type {
		case wal.RecordBatch:
			_, rerr = svc.ApplyBatch(rec.Batch)
		case wal.RecordAddSource:
			rerr = svc.AddSource(rec.Source)
		case wal.RecordRemoveSource:
			rerr = svc.RemoveSource(rec.Source)
		default:
			rerr = fmt.Errorf("unknown record type %d", rec.Type)
		}
		if rerr != nil {
			svc.Close()
			log.Close()
			return nil, fmt.Errorf("dynppr: replaying WAL record %d: %w", rec.LSN, rerr)
		}
	}
	// A clean restart — nothing replayed, WAL already rotated to the
	// checkpoint's LSN — would re-serialize a byte-identical checkpoint;
	// skip that write. Any other shape re-checkpoints so the on-disk pair
	// reflects exactly the state being served. A legacy v1 checkpoint
	// always re-checkpoints, upgrading the directory to the v2 CSR image
	// on first boot.
	checkpoint := replayed > 0 || log.BaseLSN() != data.LSN || log.NextLSN() != data.LSN || data.CSR == nil
	return finishPersistentBoot(svc, po, log, checkpoint)
}

// finishPersistentBoot attaches the journal to a fully constructed service
// and (unless the loaded checkpoint already covers the exact current state)
// writes a checkpoint covering everything journaled or replayed so far,
// rotating the WAL behind it. Both boot paths end here, which keeps the
// on-disk invariant simple: a returned persistent service always has a
// checkpoint of its exact current state and an empty journal.
func finishPersistentBoot(svc *Service, po PersistOptions, log *wal.Log, checkpoint bool) (*Service, error) {
	p := &persistence{dir: po.Dir, log: log}
	p.nextLSN.Store(log.NextLSN())
	p.ckptLSN.Store(log.BaseLSN())
	svc.persist.Store(p)
	if checkpoint {
		if _, err := svc.Checkpoint(); err != nil {
			svc.Close() // closes the log via persistence
			return nil, err
		}
	}
	return svc, nil
}
