// Command dppr-httpd serves the dynppr HTTP/JSON API over a concurrent
// Service: it builds the initial graph (named dataset, synthetic override,
// or an edge-list file), cold-starts the tracked sources, and then serves
// top-k/estimate queries, batched reads, edge-update batches and live source
// management until interrupted, shutting down gracefully.
//
// With -data-dir the daemon is durable: every mutation is journaled to a
// write-ahead log, -checkpoint-every (and POST /checkpoint) snapshot the
// whole state, and a restart pointed at the same directory recovers exactly
// where the previous process stopped — the dataset flags only seed the very
// first boot.
//
// Usage:
//
//	dppr-httpd -addr :8080 -dataset youtube -sources 8
//	dppr-httpd -addr 127.0.0.1:9090 -vertices 5000 -edges 100000 -epsilon 1e-5
//	dppr-httpd -input edges.txt -sources 4 -engine sequential
//	dppr-httpd -data-dir /var/lib/dppr -fsync always -checkpoint-every 5m
//	dppr-httpd -ondemand -ondemand-eps 1e-4 -promote-after 16 -max-auto-sources 32
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"dynppr"
	"dynppr/internal/gen"
	"dynppr/internal/httpapi"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dppr-httpd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dppr-httpd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free one)")
		dataset  = fs.String("dataset", "youtube", "named dataset from the catalog")
		vertices = fs.Int("vertices", 0, "override: generate an RMAT graph with this many vertices")
		edges    = fs.Int("edges", 0, "override: number of edges for the generated graph")
		input    = fs.String("input", "", "override: load the initial graph from this edge-list file")
		sources  = fs.Int("sources", 4, "number of top-degree sources to serve")
		epsilon  = fs.Float64("epsilon", 1e-6, "error threshold")
		engine   = fs.String("engine", "parallel", "engine: parallel, sequential, vertex-centric, deterministic")
		workers  = fs.Int("workers", 0, "per-source push workers (0 = GOMAXPROCS)")
		par      = fs.Int("parallelism", 0, "deterministic-engine workers (0 = GOMAXPROCS; never affects results)")
		pool     = fs.Int("pool", 0, "shard pool size (0 = GOMAXPROCS)")
		seed     = fs.Int64("seed", 1, "random seed for generated graphs")
		drain    = fs.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
		dataDir  = fs.String("data-dir", "", "data directory for the WAL and checkpoints (empty = in-memory only)")
		fsync    = fs.String("fsync", "always", "WAL fsync policy: always (durable) or none (OS-buffered)")
		ckptEvr  = fs.Duration("checkpoint-every", 0, "periodic checkpoint interval (0 = only on demand and at shutdown)")
		probeBO  = fs.Duration("probe-backoff", 0, "delay before the first recovery probe after persistence degrades; doubles per failure up to 30s (0 = 250ms)")
		probeMax = fs.Int("probe-max", 0, "failed recovery probes before persistence fails permanently (0 = 64, negative = probe forever)")

		queue      = fs.Int("queue", 0, "write pipeline queue depth; writes shed with 429 when it stays full (0 = default 64)")
		admitTO    = fs.Duration("admission-timeout", 0, "max wait for a pipeline slot before a write sheds with 429 (0 = half the write timeout)")
		rateLimit  = fs.Float64("rate-limit", 0, "per-client request rate limit in req/s across data-plane endpoints (0 = unlimited)")
		rateBurst  = fs.Int("rate-burst", 16, "per-client token-bucket burst size")
		noCoalesce = fs.Bool("no-coalesce", false, "disable coalescing of identical concurrent /topk reads")
		noMetrics  = fs.Bool("no-metrics", false, "disable the GET /metrics Prometheus endpoint")
		pprofOn    = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (expose only on trusted networks)")

		onDemand   = fs.Bool("ondemand", false, "answer reads for untracked sources with bounded approximate PPR instead of 404")
		odEps      = fs.Float64("ondemand-eps", 1e-4, "push residual threshold for on-demand queries (coarser than -epsilon)")
		odWalks    = fs.Int("ondemand-walks", 0, "Monte-Carlo refinement walks per on-demand query (0 = push only)")
		promoteAft = fs.Int("promote-after", 0, "promote an untracked source to live tracking after this many queries (0 = never)")
		maxAuto    = fs.Int("max-auto-sources", 64, "cap on auto-promoted sources; the coldest is evicted at capacity")
		odWorkers  = fs.Int("ondemand-workers", 0, "cold-push worker pool size for on-demand queries (0 = GOMAXPROCS-derived)")
		odCache    = fs.Int("ondemand-cache", 0, "on-demand result cache entries (0 = default 256, negative = disabled)")
		odBudget   = fs.Duration("ondemand-budget", 0, "default per-query latency budget for on-demand reads; budget_ms overrides per request (0 = unbudgeted)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	so := dynppr.DefaultServiceOptions()
	so.Options.Epsilon = *epsilon
	so.Options.Workers = *workers
	so.Options.Parallelism = *par
	so.PoolWorkers = *pool
	so.QueueDepth = *queue
	so.OnDemand = dynppr.OnDemandOptions{
		Enabled:        *onDemand,
		Epsilon:        *odEps,
		RefineWalks:    *odWalks,
		Seed:           *seed,
		PromoteAfter:   *promoteAft,
		MaxAutoSources: *maxAuto,
		Workers:        *odWorkers,
		ResultCache:    *odCache,
	}
	var err error
	if so.Options.Engine, err = dynppr.ParseEngineKind(*engine); err != nil {
		return err
	}
	po := dynppr.PersistOptions{Dir: *dataDir, ProbeBackoff: *probeBO, ProbeMax: *probeMax}
	if po.Sync, err = dynppr.ParseSyncPolicy(*fsync); err != nil {
		return err
	}

	start := time.Now()
	var svc *dynppr.Service
	if *dataDir != "" && dynppr.CheckpointExists(*dataDir) {
		// A previous process left durable state behind: resume it. The
		// dataset/input flags only describe the first boot and are ignored.
		svc, err = dynppr.NewServiceFromRecovery(so, po)
		if err != nil {
			return err
		}
		stats := svc.Stats()
		fmt.Fprintf(out, "recovered %s: %d vertices, %d edges, %d sources (lsn %d) in %v\n",
			*dataDir, stats.Vertices, stats.Edges, len(stats.Sources),
			stats.Persistence.LastCheckpointLSN, time.Since(start).Round(time.Microsecond))
		if restored := svc.Options().Options.Epsilon; restored != *epsilon {
			fmt.Fprintf(out, "note: alpha/epsilon restored from checkpoint (epsilon=%.0e; -epsilon %.0e ignored)\n",
				restored, *epsilon)
		}
	} else {
		edgeList, name, err := loadEdges(*input, *dataset, *vertices, *edges, *seed)
		if err != nil {
			return err
		}
		if len(edgeList) == 0 {
			return fmt.Errorf("initial graph %q has no edges", name)
		}
		g := dynppr.GraphFromEdges(edgeList)
		if *sources < 1 {
			*sources = 1
		}
		tracked := g.TopDegreeVertices(*sources)
		fmt.Fprintf(out, "graph=%s vertices=%d edges=%d sources=%v engine=%s epsilon=%.0e\n",
			name, g.NumVertices(), g.NumEdges(), tracked, so.Options.Engine, so.Options.Epsilon)
		if *dataDir != "" {
			svc, err = dynppr.NewPersistentService(g, tracked, so, po)
		} else {
			svc, err = dynppr.NewService(g, tracked, so)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "cold start: %d sources converged in %v\n",
			len(tracked), time.Since(start).Round(time.Microsecond))
	}
	defer svc.Close()
	if *dataDir != "" {
		fmt.Fprintf(out, "durable: data-dir=%s fsync=%s checkpoint-every=%v\n", *dataDir, po.Sync, *ckptEvr)
	}

	srv := httpapi.NewServer(svc, httpapi.ServerOptions{
		Addr: *addr,
		Handler: httpapi.HandlerOptions{
			RateLimit:        *rateLimit,
			RateBurst:        *rateBurst,
			AdmissionTimeout: *admitTO,
			DisableCoalesce:  *noCoalesce,
			DisableMetrics:   *noMetrics,
			EnablePprof:      *pprofOn,
			DefaultBudget:    *odBudget,
		},
	})
	if err := srv.Start(); err != nil {
		return err
	}
	q := svc.Queue()
	fmt.Fprintf(out, "admission: queue=%d rate-limit=%g rate-burst=%d coalesce=%t metrics=%t pprof=%t\n",
		q.Cap, *rateLimit, *rateBurst, !*noCoalesce, !*noMetrics, *pprofOn)
	if *onDemand {
		odst := svc.Stats().OnDemand
		fmt.Fprintf(out, "ondemand: eps=%.0e walks=%d promote-after=%d max-auto-sources=%d workers=%d cache=%d budget=%v\n",
			*odEps, *odWalks, *promoteAft, *maxAuto, odst.PoolWorkers, odst.CacheCapacity, *odBudget)
	}
	fmt.Fprintf(out, "listening on %s\n", srv.URL())

	// Periodic checkpointing bounds how much WAL a crash would replay.
	// Started only once the server is up, so an early return cannot leak
	// the ticker goroutine against a closed service.
	stopCkpt := make(chan struct{})
	var ckptWG sync.WaitGroup
	if *dataDir != "" && *ckptEvr > 0 {
		ticker := time.NewTicker(*ckptEvr)
		ckptWG.Add(1)
		go func() {
			defer ckptWG.Done()
			defer ticker.Stop()
			for {
				select {
				case <-stopCkpt:
					return
				case <-ticker.C:
					if lsn, err := svc.Checkpoint(); err != nil {
						fmt.Fprintf(out, "checkpoint failed: %v\n", err)
					} else {
						fmt.Fprintf(out, "checkpoint: lsn %d\n", lsn)
					}
				}
			}
		}()
	}

	<-ctx.Done()
	fmt.Fprintln(out, "shutting down: draining in-flight requests")
	close(stopCkpt)
	ckptWG.Wait()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := srv.Wait(); err != nil {
		return err
	}
	// A final checkpoint makes the next boot replay-free.
	if *dataDir != "" {
		if lsn, err := svc.Checkpoint(); err != nil {
			fmt.Fprintf(out, "final checkpoint failed: %v\n", err)
		} else {
			fmt.Fprintf(out, "final checkpoint: lsn %d\n", lsn)
		}
	}
	stats := svc.Stats()
	fmt.Fprintf(out, "served %d batches (%d updates applied); final graph %d vertices / %d edges\n",
		stats.Batches, stats.UpdatesApplied, stats.Vertices, stats.Edges)
	return nil
}

// loadEdges resolves the initial edge list: an explicit file wins, then a
// synthetic override, then the named catalog dataset.
func loadEdges(input, dataset string, vertices, edges int, seed int64) ([]dynppr.Edge, string, error) {
	if input != "" {
		list, err := dynppr.LoadEdges(input)
		return list, input, err
	}
	cfg := gen.Config{}
	if vertices > 0 && edges > 0 {
		cfg = gen.Config{Name: "custom-rmat", Model: dynppr.ModelRMAT, Vertices: vertices, Edges: edges, Seed: seed}
	} else {
		d, err := gen.DatasetByName(dataset)
		if err != nil {
			return nil, "", err
		}
		cfg = d.Config
	}
	list, err := dynppr.GenerateEdges(cfg)
	return list, cfg.Name, err
}
