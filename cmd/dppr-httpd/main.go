// Command dppr-httpd serves the dynppr HTTP/JSON API over a concurrent
// Service: it builds the initial graph (named dataset, synthetic override,
// or an edge-list file), cold-starts the tracked sources, and then serves
// top-k/estimate queries, batched reads, edge-update batches and live source
// management until interrupted, shutting down gracefully.
//
// Usage:
//
//	dppr-httpd -addr :8080 -dataset youtube -sources 8
//	dppr-httpd -addr 127.0.0.1:9090 -vertices 5000 -edges 100000 -epsilon 1e-5
//	dppr-httpd -input edges.txt -sources 4 -engine sequential
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dynppr"
	"dynppr/internal/gen"
	"dynppr/internal/httpapi"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dppr-httpd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dppr-httpd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free one)")
		dataset  = fs.String("dataset", "youtube", "named dataset from the catalog")
		vertices = fs.Int("vertices", 0, "override: generate an RMAT graph with this many vertices")
		edges    = fs.Int("edges", 0, "override: number of edges for the generated graph")
		input    = fs.String("input", "", "override: load the initial graph from this edge-list file")
		sources  = fs.Int("sources", 4, "number of top-degree sources to serve")
		epsilon  = fs.Float64("epsilon", 1e-6, "error threshold")
		engine   = fs.String("engine", "parallel", "engine: parallel, sequential, vertex-centric, deterministic")
		workers  = fs.Int("workers", 0, "per-source push workers (0 = GOMAXPROCS)")
		par      = fs.Int("parallelism", 0, "deterministic-engine workers (0 = GOMAXPROCS; never affects results)")
		pool     = fs.Int("pool", 0, "shard pool size (0 = GOMAXPROCS)")
		seed     = fs.Int64("seed", 1, "random seed for generated graphs")
		drain    = fs.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	edgeList, name, err := loadEdges(*input, *dataset, *vertices, *edges, *seed)
	if err != nil {
		return err
	}
	if len(edgeList) == 0 {
		return fmt.Errorf("initial graph %q has no edges", name)
	}
	g := dynppr.GraphFromEdges(edgeList)
	if *sources < 1 {
		*sources = 1
	}
	tracked := g.TopDegreeVertices(*sources)

	so := dynppr.DefaultServiceOptions()
	so.Options.Epsilon = *epsilon
	so.Options.Workers = *workers
	so.Options.Parallelism = *par
	so.PoolWorkers = *pool
	if so.Options.Engine, err = parseEngine(*engine); err != nil {
		return err
	}

	fmt.Fprintf(out, "graph=%s vertices=%d edges=%d sources=%v engine=%s epsilon=%.0e\n",
		name, g.NumVertices(), g.NumEdges(), tracked, so.Options.Engine, so.Options.Epsilon)

	start := time.Now()
	svc, err := dynppr.NewService(g, tracked, so)
	if err != nil {
		return err
	}
	defer svc.Close()
	fmt.Fprintf(out, "cold start: %d sources converged in %v\n",
		len(tracked), time.Since(start).Round(time.Microsecond))

	srv := httpapi.NewServer(svc, httpapi.ServerOptions{Addr: *addr})
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Fprintf(out, "listening on %s\n", srv.URL())

	<-ctx.Done()
	fmt.Fprintln(out, "shutting down: draining in-flight requests")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := srv.Wait(); err != nil {
		return err
	}
	stats := svc.Stats()
	fmt.Fprintf(out, "served %d batches (%d updates applied); final graph %d vertices / %d edges\n",
		stats.Batches, stats.UpdatesApplied, stats.Vertices, stats.Edges)
	return nil
}

func parseEngine(name string) (dynppr.EngineKind, error) {
	switch name {
	case "parallel":
		return dynppr.EngineParallel, nil
	case "sequential":
		return dynppr.EngineSequential, nil
	case "vertex-centric":
		return dynppr.EngineVertexCentric, nil
	case "deterministic":
		return dynppr.EngineDeterministic, nil
	default:
		return 0, fmt.Errorf("unknown engine %q", name)
	}
}

// loadEdges resolves the initial edge list: an explicit file wins, then a
// synthetic override, then the named catalog dataset.
func loadEdges(input, dataset string, vertices, edges int, seed int64) ([]dynppr.Edge, string, error) {
	if input != "" {
		list, err := dynppr.LoadEdges(input)
		return list, input, err
	}
	cfg := gen.Config{}
	if vertices > 0 && edges > 0 {
		cfg = gen.Config{Name: "custom-rmat", Model: dynppr.ModelRMAT, Vertices: vertices, Edges: edges, Seed: seed}
	} else {
		d, err := gen.DatasetByName(dataset)
		if err != nil {
			return nil, "", err
		}
		cfg = d.Config
	}
	list, err := dynppr.GenerateEdges(cfg)
	return list, cfg.Name, err
}
