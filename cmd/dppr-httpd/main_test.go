package main

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"dynppr"
	"dynppr/internal/httpapi"
	"dynppr/internal/promexp"
)

// syncBuffer is an io.Writer safe to read while run() writes to it from
// another goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startHTTPD runs the daemon on a free loopback port and returns its base
// URL, the cancel that triggers graceful shutdown, and the run error
// channel.
func startHTTPD(t *testing.T, out *syncBuffer, extraArgs ...string) (string, context.CancelFunc, chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	args := append([]string{
		"-addr", "127.0.0.1:0", "-vertices", "200", "-edges", "1500",
		"-sources", "2", "-epsilon", "1e-4",
	}, extraArgs...)
	errCh := make(chan error, 1)
	go func() { errCh <- run(ctx, args, out) }()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "listening on "); ok {
				return strings.TrimSpace(rest), cancel, errCh
			}
		}
		select {
		case err := <-errCh:
			t.Fatalf("daemon exited before listening: %v\n%s", err, out.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
	cancel()
	t.Fatalf("daemon never reported its address:\n%s", out.String())
	return "", nil, nil
}

func TestHTTPDServesAndShutsDown(t *testing.T) {
	var out syncBuffer
	base, cancel, errCh := startHTTPD(t, &out)
	defer cancel()

	client := httpapi.NewClient(base, nil)
	if err := client.Health(); err != nil {
		t.Fatal(err)
	}
	sources, err := client.Sources()
	if err != nil {
		t.Fatal(err)
	}
	if len(sources) != 2 {
		t.Fatalf("sources = %v, want 2", sources)
	}
	top, err := client.TopK(sources[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if !top.Snapshot.Converged || len(top.Results) != 5 {
		t.Fatalf("topk = %+v", top)
	}
	res, err := client.ApplyEdges([]httpapi.Update{{U: 7, V: sources[0], Op: httpapi.OpInsert}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied+res.Skipped != 1 {
		t.Fatalf("edges response = %+v", res)
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("graceful shutdown failed: %v\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	for _, want := range []string{"cold start", "shutting down", "served 1 batches"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
	if err := client.Health(); err == nil {
		t.Fatal("server still reachable after shutdown")
	}
}

func TestHTTPDInputFile(t *testing.T) {
	edges, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Model: dynppr.ModelBarabasiAlbert, Vertices: 150, Edges: 1200, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/edges.txt"
	if err := dynppr.SaveEdges(path, edges); err != nil {
		t.Fatal(err)
	}
	var out syncBuffer
	base, cancel, errCh := startHTTPD(t, &out, "-input", path, "-engine", "sequential")
	defer cancel()
	if err := httpapi.NewClient(base, nil).Health(); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), path) {
		t.Fatalf("output should name the input file:\n%s", out.String())
	}
}

func TestHTTPDErrors(t *testing.T) {
	ctx := context.Background()
	var buf bytes.Buffer
	if err := run(ctx, []string{"-engine", "warp-drive", "-vertices", "10", "-edges", "20"}, &buf); err == nil {
		t.Fatal("unknown engine must fail")
	}
	if err := run(ctx, []string{"-dataset", "no-such"}, &buf); err == nil {
		t.Fatal("unknown dataset must fail")
	}
	if err := run(ctx, []string{"-input", "/does/not/exist.txt"}, &buf); err == nil {
		t.Fatal("missing input must fail")
	}
	if err := run(ctx, []string{"-vertices", "50", "-edges", "200", "-addr", "256.0.0.1:bad"}, &buf); err == nil {
		t.Fatal("unlistenable address must fail")
	}
}

func TestParseEngine(t *testing.T) {
	for name, want := range map[string]dynppr.EngineKind{
		"parallel":       dynppr.EngineParallel,
		"sequential":     dynppr.EngineSequential,
		"vertex-centric": dynppr.EngineVertexCentric,
		"deterministic":  dynppr.EngineDeterministic,
	} {
		got, err := dynppr.ParseEngineKind(name)
		if err != nil || got != want {
			t.Fatalf("ParseEngineKind(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := dynppr.ParseEngineKind("gpu"); err == nil {
		t.Fatal("unknown engine must fail")
	}
}

// TestHTTPDDurableRestart boots the daemon on a data directory, mutates it
// over HTTP, shuts it down, and boots a second daemon on the same directory:
// the second boot must recover (not re-seed), serve the same sources with
// the same snapshot epochs, and keep accepting writes.
func TestHTTPDDurableRestart(t *testing.T) {
	dir := t.TempDir() + "/data"

	var out1 syncBuffer
	base1, cancel1, errCh1 := startHTTPD(t, &out1,
		"-data-dir", dir, "-fsync", "always", "-engine", "deterministic")
	defer cancel1()
	client1 := httpapi.NewClient(base1, nil)
	sources, err := client1.Sources()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := client1.ApplyEdges([]httpapi.Update{
			{U: dynppr.VertexID(180 + i), V: sources[0], Op: httpapi.OpInsert},
			{U: sources[0], V: dynppr.VertexID(190 + i), Op: httpapi.OpInsert},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	stats1, err := client1.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats1.Service.Persistence == nil || stats1.Service.Persistence.Dir != dir {
		t.Fatalf("persistence stats missing: %+v", stats1.Service.Persistence)
	}
	top1, err := client1.TopK(sources[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	cancel1()
	if err := <-errCh1; err != nil {
		t.Fatalf("first daemon shutdown: %v\n%s", err, out1.String())
	}
	if !strings.Contains(out1.String(), "final checkpoint") {
		t.Fatalf("first daemon skipped the final checkpoint:\n%s", out1.String())
	}

	var out2 syncBuffer
	base2, cancel2, errCh2 := startHTTPD(t, &out2,
		"-data-dir", dir, "-fsync", "always", "-engine", "deterministic")
	defer cancel2()
	if !strings.Contains(out2.String(), "recovered "+dir) {
		t.Fatalf("second boot did not recover:\n%s", out2.String())
	}
	client2 := httpapi.NewClient(base2, nil)
	sources2, err := client2.Sources()
	if err != nil {
		t.Fatal(err)
	}
	if len(sources2) != len(sources) {
		t.Fatalf("sources changed across restart: %v -> %v", sources, sources2)
	}
	top2, err := client2.TopK(sources[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	if top2.Snapshot.Epoch != top1.Snapshot.Epoch {
		t.Fatalf("epoch %d after restart, want %d", top2.Snapshot.Epoch, top1.Snapshot.Epoch)
	}
	for i := range top2.Results {
		if top2.Results[i] != top1.Results[i] {
			t.Fatalf("topk[%d] changed across restart: %+v -> %+v", i, top1.Results[i], top2.Results[i])
		}
	}
	if _, err := client2.ApplyEdges([]httpapi.Update{
		{U: 42, V: sources[0], Op: httpapi.OpInsert},
	}); err != nil {
		t.Fatal(err)
	}
	cancel2()
	if err := <-errCh2; err != nil {
		t.Fatalf("second daemon shutdown: %v\n%s", err, out2.String())
	}
}

// TestHTTPDServingPolicyFlags boots the daemon with the traffic-management
// flags and asserts each surface: the bounded queue is reported, /metrics
// serves parseable Prometheus text, pprof is mounted, and the per-client
// rate limiter answers 429 with a Retry-After once the burst is spent.
func TestHTTPDServingPolicyFlags(t *testing.T) {
	var out syncBuffer
	base, cancel, errCh := startHTTPD(t, &out,
		"-queue", "1", "-rate-limit", "0.5", "-rate-burst", "3", "-pprof")
	defer cancel()

	if !strings.Contains(out.String(), "admission: queue=1 rate-limit=0.5 rate-burst=3") {
		t.Fatalf("admission line missing:\n%s", out.String())
	}

	client := httpapi.NewClient(base, nil)
	text, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	fams, err := promexp.ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("/metrics is not valid exposition format: %v\n%s", err, text)
	}
	byName := make(map[string]promexp.Family, len(fams))
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f, ok := byName["dppr_queue_capacity"]; !ok || f.Samples[0].Value != 1 {
		t.Fatalf("dppr_queue_capacity = %+v, want 1", f)
	}

	resp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}

	// Spend the burst on the data plane; the next request must be 429 with
	// a Retry-After suggestion. /healthz and /metrics are never limited.
	sources, err := client.Sources()
	if err != nil {
		t.Fatal(err)
	}
	var limited *httpapi.APIError
	for i := 0; i < 6; i++ {
		if _, err := client.TopK(sources[0], 3); err != nil {
			apiErr, ok := err.(*httpapi.APIError)
			if !ok {
				t.Fatal(err)
			}
			limited = apiErr
			break
		}
	}
	if limited == nil || limited.StatusCode != 429 {
		t.Fatalf("rate limiter never fired: %+v", limited)
	}
	if limited.RetryAfter <= 0 {
		t.Fatalf("429 without Retry-After: %+v", limited)
	}
	if err := client.Health(); err != nil {
		t.Fatalf("/healthz must not be rate limited: %v", err)
	}
	if _, err := client.Metrics(); err != nil {
		t.Fatalf("/metrics must not be rate limited: %v", err)
	}

	cancel()
	<-errCh
}

// TestHTTPDNoMetricsFlag asserts -no-metrics removes the endpoint.
func TestHTTPDNoMetricsFlag(t *testing.T) {
	var out syncBuffer
	base, cancel, errCh := startHTTPD(t, &out, "-no-metrics")
	defer cancel()
	if _, err := httpapi.NewClient(base, nil).Metrics(); err == nil {
		t.Fatal("-no-metrics daemon still serves /metrics")
	}
	resp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Fatal("pprof mounted without -pprof")
	}
	cancel()
	<-errCh
}

// TestHTTPDOnDemandFlags boots the daemon with the on-demand pool/cache/budget
// flags and asserts the startup log reports the resolved values and that a
// repeated cold query is answered from the result cache.
func TestHTTPDOnDemandFlags(t *testing.T) {
	var out syncBuffer
	base, cancel, errCh := startHTTPD(t, &out,
		"-ondemand", "-ondemand-eps", "1e-3",
		"-ondemand-workers", "2", "-ondemand-cache", "32", "-ondemand-budget", "50ms")
	defer cancel()

	if !strings.Contains(out.String(), "workers=2 cache=32 budget=50ms") {
		t.Fatalf("ondemand startup line missing resolved pool/cache/budget:\n%s", out.String())
	}

	client := httpapi.NewClient(base, nil)
	sources, err := client.Sources()
	if err != nil {
		t.Fatal(err)
	}
	tracked := make(map[dynppr.VertexID]bool, len(sources))
	for _, s := range sources {
		tracked[s] = true
	}
	var cold dynppr.VertexID
	for v := dynppr.VertexID(0); ; v++ {
		if !tracked[v] {
			cold = v
			break
		}
	}
	first, err := client.TopK(cold, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Approx || first.Cached {
		t.Fatalf("first cold query: approx=%t cached=%t, want approx uncached", first.Approx, first.Cached)
	}
	again, err := client.TopK(cold, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatalf("repeated cold query not served from the cache: %+v", again)
	}
	// An explicit budget larger than the daemon default must still be
	// accepted on the wire and refine at least as far as the default run.
	budgeted, err := client.TopKBudget(cold, 5, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !budgeted.Approx || budgeted.Epsilon > first.Epsilon {
		t.Fatalf("budgeted query did not refine: eps=%g vs first eps=%g", budgeted.Epsilon, first.Epsilon)
	}

	cancel()
	<-errCh
}

// TestHTTPDCheckpointWithoutDataDir asserts the admin endpoint answers 409
// on an in-memory daemon.
func TestHTTPDCheckpointWithoutDataDir(t *testing.T) {
	var out syncBuffer
	base, cancel, errCh := startHTTPD(t, &out)
	defer cancel()
	_, err := httpapi.NewClient(base, nil).Checkpoint()
	apiErr, ok := err.(*httpapi.APIError)
	if !ok || apiErr.StatusCode != 409 {
		t.Fatalf("checkpoint without data dir: got %v, want 409", err)
	}
	cancel()
	<-errCh
}
