package main

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"dynppr"
	"dynppr/internal/httpapi"
)

// syncBuffer is an io.Writer safe to read while run() writes to it from
// another goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startHTTPD runs the daemon on a free loopback port and returns its base
// URL, the cancel that triggers graceful shutdown, and the run error
// channel.
func startHTTPD(t *testing.T, out *syncBuffer, extraArgs ...string) (string, context.CancelFunc, chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	args := append([]string{
		"-addr", "127.0.0.1:0", "-vertices", "200", "-edges", "1500",
		"-sources", "2", "-epsilon", "1e-4",
	}, extraArgs...)
	errCh := make(chan error, 1)
	go func() { errCh <- run(ctx, args, out) }()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "listening on "); ok {
				return strings.TrimSpace(rest), cancel, errCh
			}
		}
		select {
		case err := <-errCh:
			t.Fatalf("daemon exited before listening: %v\n%s", err, out.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
	cancel()
	t.Fatalf("daemon never reported its address:\n%s", out.String())
	return "", nil, nil
}

func TestHTTPDServesAndShutsDown(t *testing.T) {
	var out syncBuffer
	base, cancel, errCh := startHTTPD(t, &out)
	defer cancel()

	client := httpapi.NewClient(base, nil)
	if err := client.Health(); err != nil {
		t.Fatal(err)
	}
	sources, err := client.Sources()
	if err != nil {
		t.Fatal(err)
	}
	if len(sources) != 2 {
		t.Fatalf("sources = %v, want 2", sources)
	}
	top, err := client.TopK(sources[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if !top.Snapshot.Converged || len(top.Results) != 5 {
		t.Fatalf("topk = %+v", top)
	}
	res, err := client.ApplyEdges([]httpapi.Update{{U: 7, V: sources[0], Op: httpapi.OpInsert}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied+res.Skipped != 1 {
		t.Fatalf("edges response = %+v", res)
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("graceful shutdown failed: %v\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	for _, want := range []string{"cold start", "shutting down", "served 1 batches"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
	if err := client.Health(); err == nil {
		t.Fatal("server still reachable after shutdown")
	}
}

func TestHTTPDInputFile(t *testing.T) {
	edges, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Model: dynppr.ModelBarabasiAlbert, Vertices: 150, Edges: 1200, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/edges.txt"
	if err := dynppr.SaveEdges(path, edges); err != nil {
		t.Fatal(err)
	}
	var out syncBuffer
	base, cancel, errCh := startHTTPD(t, &out, "-input", path, "-engine", "sequential")
	defer cancel()
	if err := httpapi.NewClient(base, nil).Health(); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), path) {
		t.Fatalf("output should name the input file:\n%s", out.String())
	}
}

func TestHTTPDErrors(t *testing.T) {
	ctx := context.Background()
	var buf bytes.Buffer
	if err := run(ctx, []string{"-engine", "warp-drive", "-vertices", "10", "-edges", "20"}, &buf); err == nil {
		t.Fatal("unknown engine must fail")
	}
	if err := run(ctx, []string{"-dataset", "no-such"}, &buf); err == nil {
		t.Fatal("unknown dataset must fail")
	}
	if err := run(ctx, []string{"-input", "/does/not/exist.txt"}, &buf); err == nil {
		t.Fatal("missing input must fail")
	}
	if err := run(ctx, []string{"-vertices", "50", "-edges", "200", "-addr", "256.0.0.1:bad"}, &buf); err == nil {
		t.Fatal("unlistenable address must fail")
	}
}

func TestParseEngine(t *testing.T) {
	for name, want := range map[string]dynppr.EngineKind{
		"parallel":       dynppr.EngineParallel,
		"sequential":     dynppr.EngineSequential,
		"vertex-centric": dynppr.EngineVertexCentric,
	} {
		got, err := parseEngine(name)
		if err != nil || got != want {
			t.Fatalf("parseEngine(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseEngine("gpu"); err == nil {
		t.Fatal("unknown engine must fail")
	}
}
