package main

import (
	"bytes"
	"strings"
	"testing"

	"dynppr"
)

func TestResolveConfigServe(t *testing.T) {
	cfg, err := resolveConfig("youtube", 0, 0, 1)
	if err != nil || cfg.Name != "youtube" {
		t.Fatalf("dataset lookup failed: %+v, %v", cfg, err)
	}
	cfg, err = resolveConfig("ignored", 100, 500, 7)
	if err != nil || cfg.Vertices != 100 || cfg.Edges != 500 || cfg.Model != dynppr.ModelRMAT {
		t.Fatalf("override failed: %+v, %v", cfg, err)
	}
	if _, err := resolveConfig("no-such", 0, 0, 1); err == nil {
		t.Fatal("unknown dataset must fail")
	}
}

func TestServeRun(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-vertices", "300", "-edges", "3000", "-sources", "3", "-readers", "2",
		"-batch", "20", "-slides", "3", "-epsilon", "1e-4", "-engine", "sequential",
		"-top", "3",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"cold start", "slide   1", "writes:", "reads:",
		"per-source serving stats", "top-3 vertices",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestServeRunEngines(t *testing.T) {
	for _, engine := range []string{"parallel", "vertex-centric"} {
		var buf bytes.Buffer
		err := run([]string{
			"-vertices", "200", "-edges", "1500", "-sources", "2", "-readers", "1",
			"-batch", "10", "-slides", "2", "-epsilon", "1e-3", "-engine", engine,
		}, &buf)
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
	}
}

func TestServeRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-engine", "warp-drive", "-vertices", "10", "-edges", "20"}, &buf); err == nil {
		t.Fatal("unknown engine must fail")
	}
	if err := run([]string{"-dataset", "no-such"}, &buf); err == nil {
		t.Fatal("unknown dataset must fail")
	}
	if err := run([]string{"-vertices", "10", "-edges", "20", "-epsilon", "0"}, &buf); err == nil {
		t.Fatal("invalid epsilon must fail")
	}
}
