package main

import (
	"bytes"
	"strings"
	"testing"

	"dynppr"
)

func TestResolveConfigServe(t *testing.T) {
	cfg, err := resolveConfig("youtube", 0, 0, 1)
	if err != nil || cfg.Name != "youtube" {
		t.Fatalf("dataset lookup failed: %+v, %v", cfg, err)
	}
	cfg, err = resolveConfig("ignored", 100, 500, 7)
	if err != nil || cfg.Vertices != 100 || cfg.Edges != 500 || cfg.Model != dynppr.ModelRMAT {
		t.Fatalf("override failed: %+v, %v", cfg, err)
	}
	if _, err := resolveConfig("no-such", 0, 0, 1); err == nil {
		t.Fatal("unknown dataset must fail")
	}
}

func TestServeRun(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-vertices", "300", "-edges", "3000", "-sources", "3", "-readers", "2",
		"-batch", "20", "-slides", "3", "-epsilon", "1e-4", "-engine", "sequential",
		"-top", "3",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"cold start", "slide   1", "writes:", "reads:",
		"per-source serving stats", "top-3 vertices",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestServeRunEngines(t *testing.T) {
	for _, engine := range []string{"parallel", "vertex-centric"} {
		var buf bytes.Buffer
		err := run([]string{
			"-vertices", "200", "-edges", "1500", "-sources", "2", "-readers", "1",
			"-batch", "10", "-slides", "2", "-epsilon", "1e-3", "-engine", engine,
		}, &buf)
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
	}
}

func TestServeRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-engine", "warp-drive", "-vertices", "10", "-edges", "20"}, &buf); err == nil {
		t.Fatal("unknown engine must fail")
	}
	if err := run([]string{"-dataset", "no-such"}, &buf); err == nil {
		t.Fatal("unknown dataset must fail")
	}
	if err := run([]string{"-vertices", "10", "-edges", "20", "-epsilon", "0"}, &buf); err == nil {
		t.Fatal("invalid epsilon must fail")
	}
}

// TestServeRunDurable journals a run to a data directory: the tool must
// report its durability configuration, checkpoint on the requested cadence
// and at exit, leave a recoverable checkpoint + WAL pair behind, and refuse
// to start over a directory that already holds a checkpoint.
func TestServeRunDurable(t *testing.T) {
	dir := t.TempDir() + "/data"
	args := []string{
		"-vertices", "200", "-edges", "1500", "-sources", "2", "-readers", "1",
		"-batch", "15", "-slides", "4", "-epsilon", "1e-4", "-engine", "deterministic",
		"-data-dir", dir, "-fsync", "none", "-checkpoint-every", "2",
	}
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"durable: data-dir=" + dir, "checkpoint: lsn", "final checkpoint: lsn",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if !dynppr.CheckpointExists(dir) {
		t.Fatal("no checkpoint left behind")
	}
	// The directory is recoverable by the library.
	so := dynppr.DefaultServiceOptions()
	so.Options.Engine = dynppr.EngineDeterministic
	svc, err := dynppr.NewServiceFromRecovery(so, dynppr.PersistOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(svc.Sources()); got != 2 {
		t.Fatalf("recovered %d sources, want 2", got)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	// A second dppr-serve run over the same directory must be refused.
	if err := run(args, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "already holds a checkpoint") {
		t.Fatalf("rerun over existing checkpoint: got %v", err)
	}

	// Unknown fsync policies are rejected up front.
	if err := run([]string{"-fsync", "sometimes"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad fsync policy must fail")
	}
}
