// Command dppr-serve demonstrates the concurrent serving layer: it builds a
// Service over a synthetic graph, streams sliding-window update batches
// through the write pipeline, and hammers the read path from a pool of query
// goroutines at the same time — then reports write latency, read throughput
// and the per-source serving statistics.
//
// Usage:
//
//	dppr-serve -dataset youtube -sources 4 -readers 8 -batch 200 -slides 30
//	dppr-serve -vertices 5000 -edges 100000 -engine sequential -epsilon 1e-5
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dynppr"
	"dynppr/internal/gen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dppr-serve:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dppr-serve", flag.ContinueOnError)
	var (
		dataset  = fs.String("dataset", "youtube", "named dataset from the catalog")
		vertices = fs.Int("vertices", 0, "override: generate an RMAT graph with this many vertices")
		edges    = fs.Int("edges", 0, "override: number of edges for the generated graph")
		sources  = fs.Int("sources", 4, "number of top-degree sources to serve")
		batch    = fs.Int("batch", 100, "edges inserted (and deleted) per window slide")
		slides   = fs.Int("slides", 20, "number of window slides to stream")
		readers  = fs.Int("readers", 4, "query goroutines hammering the read path")
		epsilon  = fs.Float64("epsilon", 1e-6, "error threshold")
		engine   = fs.String("engine", "parallel", "engine: parallel, sequential, vertex-centric, deterministic")
		workers  = fs.Int("workers", 0, "per-source push workers (0 = GOMAXPROCS)")
		par      = fs.Int("parallelism", 0, "deterministic-engine workers (0 = GOMAXPROCS; never affects results)")
		pool     = fs.Int("pool", 0, "shard pool size (0 = GOMAXPROCS)")
		topK     = fs.Int("top", 5, "number of top-ranked vertices to print per source")
		seed     = fs.Int64("seed", 1, "random seed")
		dataDir  = fs.String("data-dir", "", "journal the run to this data directory (must not already hold a checkpoint)")
		fsync    = fs.String("fsync", "none", "WAL fsync policy: always or none")
		ckptEvr  = fs.Int("checkpoint-every", 0, "checkpoint after every N slides (0 = only at exit)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	po := dynppr.PersistOptions{Dir: *dataDir}
	var err error
	if po.Sync, err = dynppr.ParseSyncPolicy(*fsync); err != nil {
		return err
	}
	if *dataDir != "" && dynppr.CheckpointExists(*dataDir) {
		return fmt.Errorf("data dir %s already holds a checkpoint; dppr-serve always starts fresh — recover it with dppr-httpd or clear the directory", *dataDir)
	}

	cfg, err := resolveConfig(*dataset, *vertices, *edges, *seed)
	if err != nil {
		return err
	}
	edgeList, err := dynppr.GenerateEdges(cfg)
	if err != nil {
		return err
	}
	if len(edgeList) == 0 {
		return fmt.Errorf("no edges in the input stream")
	}
	stream := dynppr.NewStream(edgeList, *seed)
	window, initial := dynppr.NewSlidingWindow(stream, 0.1)
	g := dynppr.GraphFromEdges(initial)
	if *sources < 1 {
		*sources = 1
	}
	tracked := g.TopDegreeVertices(*sources)
	// NewService takes ownership of g, so capture everything the readers
	// need from it up front.
	numVertices := g.NumVertices()

	so := dynppr.DefaultServiceOptions()
	so.Options.Epsilon = *epsilon
	so.Options.Workers = *workers
	so.Options.Parallelism = *par
	so.PoolWorkers = *pool
	if so.Options.Engine, err = dynppr.ParseEngineKind(*engine); err != nil {
		return err
	}

	fmt.Fprintf(out, "dataset=%s vertices=%d window=%d sources=%v engine=%s epsilon=%.0e readers=%d\n",
		cfg.Name, g.NumVertices(), window.Size(), tracked, so.Options.Engine, so.Options.Epsilon, *readers)

	start := time.Now()
	var svc *dynppr.Service
	if *dataDir != "" {
		svc, err = dynppr.NewPersistentService(g, tracked, so, po)
	} else {
		svc, err = dynppr.NewService(g, tracked, so)
	}
	if err != nil {
		return err
	}
	defer svc.Close()
	fmt.Fprintf(out, "cold start: %d sources converged and published in %v\n",
		len(tracked), time.Since(start).Round(time.Microsecond))
	if *dataDir != "" {
		fmt.Fprintf(out, "durable: data-dir=%s fsync=%s checkpoint-every=%d slides\n", *dataDir, po.Sync, *ckptEvr)
	}

	// Query pool: each goroutine hammers random reads until the stream ends.
	stop := make(chan struct{})
	var queries atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < *readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(r)))
			n := numVertices
			for {
				select {
				case <-stop:
					return
				default:
				}
				src := tracked[rng.Intn(len(tracked))]
				var err error
				if rng.Intn(2) == 0 {
					_, err = svc.Estimate(src, dynppr.VertexID(rng.Intn(n)))
				} else {
					_, err = svc.TopK(src, 10)
				}
				if err != nil {
					return
				}
				queries.Add(1)
			}
		}(r)
	}

	streamStart := time.Now()
	var applied int
	for i := 0; i < *slides; i++ {
		b := window.Slide(*batch)
		if len(b) == 0 {
			fmt.Fprintln(out, "stream exhausted")
			break
		}
		res, err := svc.ApplyBatch(b)
		if err != nil {
			return err
		}
		applied += res.Applied
		fmt.Fprintf(out, "slide %3d: updates=%4d latency=%-12v pushes=%-8d queue=%d\n",
			i+1, res.Applied, res.Latency.Round(time.Microsecond), res.Pushes, svc.Stats().QueueDepth)
		if *dataDir != "" && *ckptEvr > 0 && (i+1)%*ckptEvr == 0 {
			lsn, err := svc.Checkpoint()
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "checkpoint: lsn %d\n", lsn)
		}
	}
	streamed := time.Since(streamStart)
	close(stop)
	wg.Wait()
	if *dataDir != "" {
		lsn, err := svc.Checkpoint()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "final checkpoint: lsn %d\n", lsn)
	}

	stats := svc.Stats()
	fmt.Fprintf(out, "writes: %d batches, %d updates, avg batch latency %v\n",
		stats.Batches, stats.UpdatesApplied, stats.AvgBatchLatency().Round(time.Microsecond))
	if streamed > 0 {
		fmt.Fprintf(out, "reads:  %d queries served concurrently (%.0f queries/sec)\n",
			queries.Load(), float64(queries.Load())/streamed.Seconds())
	}
	fmt.Fprintln(out, "per-source serving stats:")
	for _, ss := range stats.Sources {
		fmt.Fprintf(out, "  source %-8d shard %d epoch %-5d pushes %-10d residual %.2e\n",
			ss.Source, ss.Shard, ss.Epoch, ss.Pushes, ss.MaxResidual)
	}
	for _, src := range tracked[:1] {
		top, err := svc.TopK(src, *topK)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "top-%d vertices by PPR towards %d:\n", *topK, src)
		for _, vs := range top {
			fmt.Fprintf(out, "  vertex %-8d score %.6f\n", vs.Vertex, vs.Score)
		}
	}
	return nil
}

func resolveConfig(dataset string, vertices, edges int, seed int64) (dynppr.SyntheticConfig, error) {
	if vertices > 0 && edges > 0 {
		return dynppr.SyntheticConfig{
			Name: "custom-rmat", Model: dynppr.ModelRMAT,
			Vertices: vertices, Edges: edges, Seed: seed,
		}, nil
	}
	d, err := gen.DatasetByName(dataset)
	if err != nil {
		return dynppr.SyntheticConfig{}, err
	}
	return d.Config, nil
}
