// Command dppr-gen generates synthetic graphs and edge streams in a plain
// "u v" text format, either from explicit parameters or from the named
// dataset catalog that mirrors the paper's evaluation datasets.
//
// Usage:
//
//	dppr-gen -dataset pokec -out pokec.txt
//	dppr-gen -model rmat -vertices 10000 -edges 200000 -seed 7 -out g.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dynppr/internal/edgeio"
	"dynppr/internal/gen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dppr-gen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("dppr-gen", flag.ContinueOnError)
	var (
		dataset  = fs.String("dataset", "", "named dataset from the catalog (youtube, pokec, livejournal, orkut, twitter)")
		model    = fs.String("model", "rmat", "graph model: rmat, ba, er")
		vertices = fs.Int("vertices", 1000, "number of vertices")
		edges    = fs.Int("edges", 10000, "number of edges")
		seed     = fs.Int64("seed", 1, "random seed")
		out      = fs.String("out", "", "output file (default stdout)")
		list     = fs.Bool("list", false, "list the dataset catalog and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, d := range gen.Catalog() {
			fmt.Fprintf(stdout, "%-12s model=%-16s vertices=%-8d edges=%-8d (paper: %d vertices, %d edges)\n",
				d.Name, d.Model, d.Vertices, d.Edges, d.PaperVertices, d.PaperEdges)
		}
		return nil
	}

	cfg, err := resolveConfig(*dataset, *model, *vertices, *edges, *seed)
	if err != nil {
		return err
	}
	edgeList, err := gen.EdgeList(cfg)
	if err != nil {
		return err
	}

	if *out != "" {
		return edgeio.SaveFile(*out, edgeList)
	}
	return edgeio.Write(stdout, edgeList)
}

func resolveConfig(dataset, model string, vertices, edges int, seed int64) (gen.Config, error) {
	if dataset != "" {
		d, err := gen.DatasetByName(dataset)
		if err != nil {
			return gen.Config{}, err
		}
		return d.Config, nil
	}
	cfg := gen.Config{Vertices: vertices, Edges: edges, Seed: seed}
	switch model {
	case "rmat":
		cfg.Model = gen.RMAT
	case "ba", "barabasi-albert":
		cfg.Model = gen.BarabasiAlbert
	case "er", "erdos-renyi":
		cfg.Model = gen.ErdosRenyi
	default:
		return gen.Config{}, fmt.Errorf("unknown model %q (want rmat, ba, er)", model)
	}
	return cfg, nil
}
