package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"dynppr/internal/edgeio"
	"dynppr/internal/gen"
)

func TestResolveConfig(t *testing.T) {
	cfg, err := resolveConfig("pokec", "", 0, 0, 0)
	if err != nil || cfg.Name != "pokec" {
		t.Fatalf("dataset lookup failed: %+v, %v", cfg, err)
	}
	if _, err := resolveConfig("no-such-dataset", "", 0, 0, 0); err == nil {
		t.Fatal("unknown dataset must fail")
	}
	for name, model := range map[string]gen.Model{
		"rmat": gen.RMAT, "ba": gen.BarabasiAlbert, "barabasi-albert": gen.BarabasiAlbert,
		"er": gen.ErdosRenyi, "erdos-renyi": gen.ErdosRenyi,
	} {
		cfg, err := resolveConfig("", name, 100, 200, 3)
		if err != nil || cfg.Model != model || cfg.Vertices != 100 || cfg.Edges != 200 || cfg.Seed != 3 {
			t.Fatalf("model %q: %+v, %v", name, cfg, err)
		}
	}
	if _, err := resolveConfig("", "bogus", 10, 10, 1); err == nil {
		t.Fatal("unknown model must fail")
	}
}

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"youtube", "pokec", "twitter"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("list output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestRunGeneratesToStdout(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-model", "er", "-vertices", "50", "-edges", "100", "-seed", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	edges, err := edgeio.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 100 {
		t.Fatalf("generated %d edges, want 100", len(edges))
	}
}

func TestRunGeneratesToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	var buf bytes.Buffer
	if err := run([]string{"-model", "rmat", "-vertices", "64", "-edges", "300", "-out", path}, &buf); err != nil {
		t.Fatal(err)
	}
	edges, err := edgeio.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 300 {
		t.Fatalf("file has %d edges, want 300", len(edges))
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-model", "nope"}, &buf); err == nil {
		t.Fatal("unknown model must fail")
	}
	if err := run([]string{"-vertices", "0"}, &buf); err == nil {
		t.Fatal("invalid generator config must fail")
	}
	if err := run([]string{"-bogus-flag"}, &buf); err == nil {
		t.Fatal("unknown flag must fail")
	}
}
