// Command dppr-loadgen is a load generator for dppr-httpd with two modes.
//
// Closed loop (default): a pool of client goroutines issues a configurable
// mix of top-k, estimate, batched-read and edge-write requests back-to-back
// and reports per-class throughput and latency percentiles. Because every
// client waits for its response before sending the next request, offered
// load self-throttles to the server's capacity — the right shape for
// measuring peak sustainable throughput.
//
// Open loop (-arrival > 0): requests are dispatched at a fixed arrival rate
// regardless of how fast responses come back, the shape of real overload —
// users do not slow down because the server is slow. Under saturation a
// correct server must shed with 429 + Retry-After instead of letting
// latency grow without bound; the run records the 429 rate alongside the
// latency percentiles of the successful requests, and the -max-p99 and
// -expect-shed gates turn the run into an overload SLO check for CI.
//
// Every read response is checked against the serving contract: the snapshot
// it was served from must be converged and (in closed-loop mode, where each
// client's requests are sequential) its epoch must never decrease for the
// same source. Any unexpected non-2xx response or contract violation makes
// the run fail, so the tool doubles as an end-to-end correctness check
// under load.
//
// Long tail (-zipf > 1): read-query sources are drawn Zipf-distributed over
// the whole vertex set instead of round-robin over the tracked sources — the
// workload shape on-demand serving exists for. A few hot sources dominate
// (and should get promoted to tracked state when the server runs
// -promote-after) while a long tail of cold sources exercises the
// approximate path. Approximate answers must advertise a positive error
// bound; a 404 is a failure, so the run doubles as an SLO check that an
// on-demand server never turns an untracked read into an error. Epoch
// monotonicity is not checked in this mode: promotion and eviction
// legitimately move a source between the tracked path (live epochs) and the
// on-demand path (synthesized epoch 0).
//
// Usage:
//
//	dppr-loadgen -addr http://127.0.0.1:8080 -clients 64 -duration 30s
//	dppr-loadgen -addr http://127.0.0.1:8080 -clients 128 -requests 500 -write 0
//	dppr-loadgen -addr http://127.0.0.1:8080 -arrival 500 -duration 10s -max-p99 250ms -expect-shed
//	dppr-loadgen -addr http://127.0.0.1:8080 -zipf 1.3 -clients 32 -requests 200 -write 0
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"dynppr"
	"dynppr/internal/httpapi"
	"dynppr/internal/metrics"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dppr-loadgen:", err)
		os.Exit(1)
	}
}

// opClass is one request class of the mix.
type opClass int

const (
	opTopK opClass = iota
	opEstimate
	opBatchRead
	opWrite
	numClasses
)

func (c opClass) String() string {
	return [...]string{"topk", "estimate", "batchread", "write"}[c]
}

// maxInFlight bounds the open-loop dispatcher's concurrent requests. An
// arrival that would exceed it is dropped at the client and counted — the
// load generator itself must not die of the overload it manufactures.
const maxInFlight = 8192

// clientResult accumulates one client goroutine's measurements; results are
// merged after the pool drains so the hot loop never shares state. (The
// open-loop collector reuses the type under a mutex.)
type clientResult struct {
	lat        [numClasses]metrics.LatencyStats
	shed       [numClasses]int64
	approx     int64
	exact      int64
	cached     int64
	errors     []error
	violations []string
	// Degraded-window accounting: how many 503-degraded rejections were
	// retried and how long the retries backed off in total, so a run that
	// crossed a server fault window reports the episode instead of hiding
	// it in the latency tail (retry backoff is excluded from latencies).
	degradedRetries int64
	degradedWait    time.Duration
}

type config struct {
	clients       int
	requests      int
	duration      time.Duration
	weights       [numClasses]int
	k             int
	batch         int
	reads         int
	seed          int64
	arrival       float64
	maxP99        time.Duration
	expectShed    bool
	zipf          float64
	repeat        int
	retryDegraded bool
}

// parseFlags resolves the command line into the load configuration and the
// target base URL.
func parseFlags(args []string) (config, string, error) {
	fs := flag.NewFlagSet("dppr-loadgen", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "http://127.0.0.1:8080", "base URL of the dppr-httpd server")
		clients  = fs.Int("clients", 64, "concurrent closed-loop client goroutines")
		requests = fs.Int("requests", 0, "requests per client, or total arrivals in open-loop mode (0 = run for -duration)")
		duration = fs.Duration("duration", 10*time.Second, "run length when -requests is 0")
		topk     = fs.Int("topk", 60, "mix weight of single top-k reads")
		estimate = fs.Int("estimate", 25, "mix weight of single estimate reads")
		batchr   = fs.Int("batchread", 5, "mix weight of batched /query reads")
		write    = fs.Int("write", 10, "mix weight of /edges update batches")
		k        = fs.Int("k", 10, "ranking length of top-k queries")
		batch    = fs.Int("batch", 100, "updates per write batch")
		reads    = fs.Int("reads", 8, "queries per batched read")
		seed     = fs.Int64("seed", 1, "random seed")

		arrival    = fs.Float64("arrival", 0, "open-loop mode: fixed request arrival rate in req/s (0 = closed loop)")
		maxP99     = fs.Duration("max-p99", 0, "fail when the read p99 of successful requests exceeds this (0 = no gate)")
		expectShed = fs.Bool("expect-shed", false, "tolerate 429 responses as shed load and fail unless at least one occurred")
		zipf       = fs.Float64("zipf", 0, "long-tail mode: draw read sources Zipf(s)-distributed over all vertices (0 = tracked sources only; requires s > 1)")
		repeat     = fs.Int("repeat", 0, "closed-loop: re-issue each single top-k/estimate read this many extra times back-to-back — with -zipf this exercises the server's on-demand result cache")
		retryDeg   = fs.Bool("retry-degraded", false, "retry requests shed 503 by a degraded server after its Retry-After (capped), so SLO gates can run through a fault window")
	)
	if err := fs.Parse(args); err != nil {
		return config{}, "", err
	}
	cfg := config{
		clients:       *clients,
		requests:      *requests,
		duration:      *duration,
		weights:       [numClasses]int{opTopK: *topk, opEstimate: *estimate, opBatchRead: *batchr, opWrite: *write},
		k:             *k,
		batch:         *batch,
		reads:         *reads,
		seed:          *seed,
		arrival:       *arrival,
		maxP99:        *maxP99,
		expectShed:    *expectShed,
		zipf:          *zipf,
		repeat:        *repeat,
		retryDegraded: *retryDeg,
	}
	if cfg.clients < 1 {
		return config{}, "", fmt.Errorf("-clients must be at least 1")
	}
	if cfg.batch < 1 || cfg.reads < 1 {
		return config{}, "", fmt.Errorf("-batch and -reads must be at least 1")
	}
	if cfg.arrival < 0 {
		return config{}, "", fmt.Errorf("-arrival must be non-negative")
	}
	if cfg.zipf != 0 && cfg.zipf <= 1 {
		return config{}, "", fmt.Errorf("-zipf exponent must be > 1 (got %g)", cfg.zipf)
	}
	if cfg.repeat < 0 {
		return config{}, "", fmt.Errorf("-repeat must be non-negative")
	}
	total := 0
	for _, w := range cfg.weights {
		if w < 0 {
			return config{}, "", fmt.Errorf("mix weights must be non-negative")
		}
		total += w
	}
	if total == 0 {
		return config{}, "", fmt.Errorf("at least one mix weight must be positive")
	}
	return cfg, *addr, nil
}

// tolerateShed reports whether 429 responses count as shed load rather than
// failures: always in open-loop mode (overload is the point) and whenever
// -expect-shed asks for it.
func (cfg config) tolerateShed() bool { return cfg.expectShed || cfg.arrival > 0 }

func run(args []string, out io.Writer) error {
	cfg, addr, err := parseFlags(args)
	if err != nil {
		return err
	}

	// One shared transport: connection reuse across clients is the realistic
	// many-users-one-frontend shape, and it keeps ephemeral ports bounded.
	hc := &http.Client{Timeout: 60 * time.Second}
	probe := httpapi.NewClient(addr, hc)
	if err := probe.Health(); err != nil {
		return fmt.Errorf("server not healthy at %s: %w", addr, err)
	}
	sources, err := probe.Sources()
	if err != nil {
		return err
	}
	if len(sources) == 0 {
		return fmt.Errorf("server tracks no sources")
	}
	stats, err := probe.Stats()
	if err != nil {
		return err
	}
	vertices := stats.Service.Vertices
	if vertices < 2 {
		return fmt.Errorf("server graph has %d vertices", vertices)
	}

	if cfg.arrival > 0 {
		fmt.Fprintf(out, "target=%s open-loop arrival=%g req/s sources=%d vertices=%d mix topk:estimate:batchread:write = %d:%d:%d:%d\n",
			addr, cfg.arrival, len(sources), vertices,
			cfg.weights[opTopK], cfg.weights[opEstimate], cfg.weights[opBatchRead], cfg.weights[opWrite])
		results, drops, elapsed := runOpenLoop(cfg, addr, hc, sources, vertices)
		runErr := report(out, cfg, []*clientResult{results}, drops, elapsed)
		printServerOnDemand(out, probe)
		return runErr
	}

	fmt.Fprintf(out, "target=%s clients=%d sources=%d vertices=%d mix topk:estimate:batchread:write = %d:%d:%d:%d\n",
		addr, cfg.clients, len(sources), vertices,
		cfg.weights[opTopK], cfg.weights[opEstimate], cfg.weights[opBatchRead], cfg.weights[opWrite])
	if cfg.zipf > 0 {
		fmt.Fprintf(out, "long tail: read sources ~ Zipf(%g) over all %d vertices\n", cfg.zipf, vertices)
	}

	deadline := time.Time{}
	if cfg.requests <= 0 {
		deadline = time.Now().Add(cfg.duration)
	}
	results := make([]*clientResult, cfg.clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		res := &clientResult{}
		results[c] = res
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			runClient(id, cfg, addr, hc, sources, vertices, deadline, res)
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	runErr := report(out, cfg, results, 0, elapsed)
	printServerOnDemand(out, probe)
	return runErr
}

// printServerOnDemand reports the server's on-demand concurrency counters at
// the end of a run, so cache and coalescing effectiveness are visible without
// scraping /metrics. Silent when the server has no on-demand tier (or has
// already gone away).
func printServerOnDemand(out io.Writer, probe *httpapi.Client) {
	st, err := probe.Stats()
	if err != nil || st.Service.OnDemand == nil {
		return
	}
	od := st.Service.OnDemand
	hitRate := 0.0
	if lookups := od.CacheHits + od.CacheMisses; lookups > 0 {
		hitRate = 100 * float64(od.CacheHits) / float64(lookups)
	}
	fmt.Fprintf(out, "server ondemand: cold_pushes=%d coalesced=%d cache_hits=%d cache_misses=%d (%.1f%% hit rate) budget_truncated=%d\n",
		od.ColdPushes, od.Coalesced, od.CacheHits, od.CacheMisses, hitRate, od.BudgetTruncated)
}

// op is one pre-generated request: all randomness is drawn on the
// dispatching goroutine so the executing goroutine never touches the rng.
type op struct {
	class   opClass
	source  dynppr.VertexID
	vertex  dynppr.VertexID
	queries []httpapi.Query
	updates []httpapi.Update
}

func pickClass(rng *rand.Rand, weights [numClasses]int) opClass {
	total := 0
	for _, w := range weights {
		total += w
	}
	pick := rng.Intn(total)
	class := opClass(0)
	for acc := 0; class < numClasses; class++ {
		acc += weights[class]
		if pick < acc {
			break
		}
	}
	return class
}

// newZipf builds the long-tail source distribution for one rng, or nil when
// -zipf is off. Low vertex IDs are the hot head of the tail; with the server
// promoting after -promote-after queries they are the ones that should end
// up tracked.
func newZipf(rng *rand.Rand, cfg config, vertices int) *rand.Zipf {
	if cfg.zipf == 0 {
		return nil
	}
	return rand.NewZipf(rng, cfg.zipf, 1, uint64(vertices-1))
}

// pickSource draws a read-query source: Zipf over the whole vertex set in
// long-tail mode, uniform over the tracked sources otherwise.
func pickSource(rng *rand.Rand, z *rand.Zipf, sources []dynppr.VertexID) dynppr.VertexID {
	if z != nil {
		return dynppr.VertexID(z.Uint64())
	}
	return sources[rng.Intn(len(sources))]
}

// genOp draws one request of the configured mix.
func genOp(rng *rand.Rand, z *rand.Zipf, cfg config, sources []dynppr.VertexID, vertices int) op {
	o := op{class: pickClass(rng, cfg.weights), source: pickSource(rng, z, sources)}
	switch o.class {
	case opEstimate:
		o.vertex = dynppr.VertexID(rng.Intn(vertices))
	case opBatchRead:
		o.queries = make([]httpapi.Query, cfg.reads)
		for q := range o.queries {
			s := pickSource(rng, z, sources)
			if q%2 == 0 {
				o.queries[q] = httpapi.Query{Kind: httpapi.KindTopK, Source: s, K: cfg.k}
			} else {
				o.queries[q] = httpapi.Query{
					Kind: httpapi.KindEstimate, Source: s,
					Vertex: dynppr.VertexID(rng.Intn(vertices)),
				}
			}
		}
	case opWrite:
		o.updates = make([]httpapi.Update, cfg.batch)
		for u := range o.updates {
			opName := httpapi.OpInsert
			if rng.Intn(3) == 0 {
				opName = httpapi.OpDelete
			}
			o.updates[u] = httpapi.Update{
				U:  dynppr.VertexID(rng.Intn(vertices)),
				V:  dynppr.VertexID(rng.Intn(vertices)),
				Op: opName,
			}
		}
	}
	return o
}

// readOutcome is everything one request contributes to the contract checks:
// the snapshot metadata of each read it served, how many answers came from
// the exact versus the on-demand approximate path, and inline violations
// (batched per-query errors, approximate answers without an error bound).
type readOutcome struct {
	metas  []httpapi.SnapshotMeta
	approx int64
	exact  int64
	cached int64
	inline []string
}

// observe validates one read answer's approx/epsilon contract and files its
// snapshot metadata.
func (ro *readOutcome) observe(meta httpapi.SnapshotMeta, approx bool, epsilon float64, cached bool) {
	ro.metas = append(ro.metas, meta)
	if cached {
		ro.cached++
	}
	if !approx {
		ro.exact++
		return
	}
	ro.approx++
	// epsilon 0 is a truthful bound (the push drained fully, e.g. a source
	// no other vertex can reach), but a negative or >= 1 bound is vacuous:
	// every PPR value lies in [0, 1].
	if epsilon < 0 || epsilon >= 1 {
		ro.inline = append(ro.inline,
			fmt.Sprintf("source %d: approximate answer with an unusable error bound (epsilon %g)",
				meta.Source, epsilon))
	}
}

// execOp performs one request and returns what its responses contribute to
// the serving-contract checks.
func execOp(client *httpapi.Client, cfg config, o op) (ro readOutcome, err error) {
	switch o.class {
	case opTopK:
		var top httpapi.TopKResult
		if top, err = client.TopK(o.source, cfg.k); err == nil {
			ro.observe(top.Snapshot, top.Approx, top.Epsilon, top.Cached)
		}
	case opEstimate:
		var est httpapi.EstimateResult
		if est, err = client.Estimate(o.source, o.vertex); err == nil {
			ro.observe(est.Snapshot, est.Approx, est.Epsilon, est.Cached)
		}
	case opBatchRead:
		var batch []httpapi.QueryResult
		if batch, err = client.Query(o.queries); err == nil {
			for _, r := range batch {
				switch {
				case r.TopK != nil:
					ro.observe(r.TopK.Snapshot, r.TopK.Approx, r.TopK.Epsilon, r.TopK.Cached)
				case r.Estimate != nil:
					ro.observe(r.Estimate.Snapshot, r.Estimate.Approx, r.Estimate.Epsilon, r.Estimate.Cached)
				default:
					ro.inline = append(ro.inline, fmt.Sprintf("batched query failed inline: %s", r.Error))
				}
			}
		}
	case opWrite:
		_, err = client.ApplyEdges(o.updates)
	}
	return ro, err
}

// Degraded-retry policy: a 503 carrying Retry-After means the server's
// persistence is degraded, the write had no effect, and its recovery probe
// is running. The wait is capped so a pessimistic server cannot stall the
// run, and the attempt count is capped so a server that never heals fails
// the run instead of hanging it.
const (
	maxDegradedWait    = 2 * time.Second
	maxDegradedRetries = 120
)

// execOpRetry is execOp plus the -retry-degraded loop. The returned latency
// covers only the final attempt — retry backoff is accounted separately
// (retries, waited) so a server fault window shows up as degraded-window
// accounting in the report instead of polluting the -max-p99 gate.
func execOpRetry(client *httpapi.Client, cfg config, o op) (ro readOutcome, lat time.Duration, retries int64, waited time.Duration, err error) {
	for {
		start := time.Now()
		ro, err = execOp(client, cfg, o)
		lat = time.Since(start)
		if err == nil || !cfg.retryDegraded || !httpapi.IsDegraded(err) || retries >= maxDegradedRetries {
			return
		}
		wait := time.Second
		var ae *httpapi.APIError
		if errors.As(err, &ae) && ae.RetryAfter > 0 {
			wait = ae.RetryAfter
		}
		if wait > maxDegradedWait {
			wait = maxDegradedWait
		}
		time.Sleep(wait)
		retries++
		waited += wait
	}
}

// checkConverged validates the stateless half of the serving contract.
func checkConverged(m httpapi.SnapshotMeta) (string, bool) {
	if !m.Converged {
		return fmt.Sprintf("source %d epoch %d: snapshot not converged (residual %g > ε %g)",
			m.Source, m.Epoch, m.MaxResidual, m.Epsilon), false
	}
	return "", true
}

// runClient is one closed-loop client: it issues requests back-to-back until
// its request budget or the deadline is exhausted.
func runClient(id int, cfg config, addr string, hc *http.Client,
	sources []dynppr.VertexID, vertices int, deadline time.Time, res *clientResult) {
	client := httpapi.NewClient(addr, hc)
	rng := rand.New(rand.NewSource(cfg.seed + int64(id)))
	z := newZipf(rng, cfg, vertices)
	epochs := make(map[dynppr.VertexID]uint64, len(sources))

	for i := 0; cfg.requests <= 0 || i < cfg.requests; i++ {
		if cfg.requests <= 0 && !time.Now().Before(deadline) {
			return
		}
		o := genOp(rng, z, cfg, sources, vertices)
		// -repeat re-issues single reads back-to-back: against an on-demand
		// server the repeats should be result-cache hits (until a mutation
		// moves the graph generation under them).
		tries := 1
		if cfg.repeat > 0 && (o.class == opTopK || o.class == opEstimate) {
			tries += cfg.repeat
		}
		for try := 0; try < tries; try++ {
			ro, lat, dRetries, dWait, err := execOpRetry(client, cfg, o)
			res.degradedRetries += dRetries
			res.degradedWait += dWait
			if err != nil {
				if cfg.tolerateShed() && httpapi.IsOverloaded(err) {
					res.shed[o.class]++
					break
				}
				res.errors = append(res.errors, fmt.Errorf("client %d %s: %w", id, o.class, err))
				break
			}
			res.lat[o.class].Observe(lat)
			res.approx += ro.approx
			res.exact += ro.exact
			res.cached += ro.cached
			res.violations = append(res.violations, ro.inline...)
			for _, m := range ro.metas {
				if msg, ok := checkConverged(m); !ok {
					res.violations = append(res.violations, msg)
				}
				// One client's requests are sequential, so the epoch it observes
				// per source must be monotone. Not in long-tail mode: promotion
				// and eviction legitimately move a source between live epochs and
				// the on-demand path's synthesized epoch 0.
				if cfg.zipf == 0 {
					if last, ok := epochs[m.Source]; ok && m.Epoch < last {
						res.violations = append(res.violations,
							fmt.Sprintf("source %d: epoch went backwards %d -> %d", m.Source, last, m.Epoch))
					}
					epochs[m.Source] = m.Epoch
				}
			}
		}
	}
}

// runOpenLoop dispatches requests at the fixed arrival rate regardless of
// response latency. The dispatcher generates each op single-threaded, then
// hands it to a goroutine bounded by maxInFlight; arrivals beyond the bound
// are dropped at the client and counted. Epoch monotonicity is not checked
// here — concurrent responses have no per-client ordering — but convergence
// is.
func runOpenLoop(cfg config, addr string, hc *http.Client,
	sources []dynppr.VertexID, vertices int) (*clientResult, int64, time.Duration) {
	client := httpapi.NewClient(addr, hc)
	rng := rand.New(rand.NewSource(cfg.seed))
	z := newZipf(rng, cfg, vertices)
	res := &clientResult{}
	var mu sync.Mutex
	var drops int64

	interval := time.Duration(float64(time.Second) / cfg.arrival)
	sem := make(chan struct{}, maxInFlight)
	var wg sync.WaitGroup
	start := time.Now()
	for issued := 0; ; issued++ {
		if cfg.requests > 0 {
			if issued >= cfg.requests {
				break
			}
		} else if time.Since(start) >= cfg.duration {
			break
		}
		// Pace against the schedule, not the previous send, so slow sends do
		// not silently lower the offered rate.
		if d := time.Until(start.Add(time.Duration(issued) * interval)); d > 0 {
			time.Sleep(d)
		}
		o := genOp(rng, z, cfg, sources, vertices)
		select {
		case sem <- struct{}{}:
		default:
			drops++
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			ro, lat, dRetries, dWait, err := execOpRetry(client, cfg, o)
			mu.Lock()
			defer mu.Unlock()
			res.degradedRetries += dRetries
			res.degradedWait += dWait
			if err != nil {
				if httpapi.IsOverloaded(err) {
					res.shed[o.class]++
				} else {
					res.errors = append(res.errors, fmt.Errorf("%s: %w", o.class, err))
				}
				return
			}
			res.lat[o.class].Observe(lat)
			res.approx += ro.approx
			res.exact += ro.exact
			res.cached += ro.cached
			res.violations = append(res.violations, ro.inline...)
			for _, m := range ro.metas {
				if msg, ok := checkConverged(m); !ok {
					res.violations = append(res.violations, msg)
				}
			}
		}()
	}
	wg.Wait()
	return res, drops, time.Since(start)
}

func report(out io.Writer, cfg config, results []*clientResult, drops int64, elapsed time.Duration) error {
	var merged [numClasses]metrics.LatencyStats
	var shed [numClasses]int64
	var approx, exact, cached int64
	var errs []error
	var violations []string
	var degradedRetries int64
	var degradedWait time.Duration
	for _, res := range results {
		for c := opClass(0); c < numClasses; c++ {
			merged[c].AddAll(&res.lat[c])
			shed[c] += res.shed[c]
		}
		approx += res.approx
		exact += res.exact
		cached += res.cached
		errs = append(errs, res.errors...)
		violations = append(violations, res.violations...)
		degradedRetries += res.degradedRetries
		degradedWait += res.degradedWait
	}

	var total, totalShed int64
	for c := opClass(0); c < numClasses; c++ {
		total += int64(merged[c].Count())
		totalShed += shed[c]
	}
	fmt.Fprintf(out, "completed %d requests in %v (%.0f req/sec overall)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	fmt.Fprintf(out, "%-10s %10s %10s %12s %12s %12s %12s %12s\n",
		"class", "requests", "shed", "mean", "p50", "p95", "p99", "max")
	for c := opClass(0); c < numClasses; c++ {
		l := &merged[c]
		if l.Count() == 0 && shed[c] == 0 {
			continue
		}
		fmt.Fprintf(out, "%-10s %10d %10d %12v %12v %12v %12v %12v\n",
			c, l.Count(), shed[c],
			l.Mean().Round(time.Microsecond),
			l.Percentile(50).Round(time.Microsecond),
			l.Percentile(95).Round(time.Microsecond),
			l.Percentile(99).Round(time.Microsecond),
			l.Max().Round(time.Microsecond))
	}
	issued := total + totalShed + drops
	if issued > 0 {
		fmt.Fprintf(out, "shed (429) responses: %d (%.1f%% of %d issued)\n",
			totalShed, 100*float64(totalShed)/float64(issued), issued)
	}
	if drops > 0 {
		fmt.Fprintf(out, "dropped at client (in-flight cap %d): %d\n", maxInFlight, drops)
	}
	if cfg.retryDegraded || degradedRetries > 0 {
		fmt.Fprintf(out, "degraded (503) retries: %d (total backoff %v across all clients)\n",
			degradedRetries, degradedWait.Round(time.Millisecond))
	}
	if cfg.zipf > 0 || approx > 0 {
		fmt.Fprintf(out, "read answers: %d exact, %d approximate (on-demand), %d served from the result cache\n",
			exact, approx, cached)
	}
	fmt.Fprintf(out, "non-2xx or transport errors: %d\n", len(errs))
	fmt.Fprintf(out, "snapshot contract violations: %d\n", len(violations))

	// Read p99 over the single-read classes: the user-facing latency SLO.
	var readLat metrics.LatencyStats
	readLat.AddAll(&merged[opTopK])
	readLat.AddAll(&merged[opEstimate])
	readLat.AddAll(&merged[opBatchRead])
	readP99 := readLat.Percentile(99)
	if readLat.Count() > 0 {
		fmt.Fprintf(out, "read p99: %v\n", readP99.Round(time.Microsecond))
	}

	if len(errs) > 0 {
		return fmt.Errorf("%d request(s) failed, first: %w", len(errs), errs[0])
	}
	if len(violations) > 0 {
		sort.Strings(violations)
		return fmt.Errorf("%d snapshot contract violation(s), first: %s", len(violations), violations[0])
	}
	if cfg.maxP99 > 0 && readP99 > cfg.maxP99 {
		return fmt.Errorf("read p99 %v exceeds the -max-p99 SLO %v", readP99, cfg.maxP99)
	}
	if cfg.expectShed && totalShed == 0 {
		return fmt.Errorf("-expect-shed: the server never shed a request with 429")
	}
	return nil
}
