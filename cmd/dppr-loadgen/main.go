// Command dppr-loadgen is a closed-loop load generator for dppr-httpd: it
// runs a pool of client goroutines against a live server, each issuing a
// configurable mix of top-k, estimate, batched-read and edge-write requests
// back-to-back, and reports per-class throughput and latency percentiles.
//
// Every read response is checked against the serving contract: the snapshot
// it was served from must be converged and its epoch must never decrease for
// the same source as seen by one client. Any non-2xx response or contract
// violation makes the run fail, so the tool doubles as an end-to-end
// correctness check under load.
//
// Usage:
//
//	dppr-loadgen -addr http://127.0.0.1:8080 -clients 64 -duration 30s
//	dppr-loadgen -addr http://127.0.0.1:8080 -clients 128 -requests 500 -write 0
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"dynppr"
	"dynppr/internal/httpapi"
	"dynppr/internal/metrics"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dppr-loadgen:", err)
		os.Exit(1)
	}
}

// opClass is one request class of the mix.
type opClass int

const (
	opTopK opClass = iota
	opEstimate
	opBatchRead
	opWrite
	numClasses
)

func (c opClass) String() string {
	return [...]string{"topk", "estimate", "batchread", "write"}[c]
}

// clientResult accumulates one client goroutine's measurements; results are
// merged after the pool drains so the hot loop never shares state.
type clientResult struct {
	lat        [numClasses]metrics.LatencyStats
	errors     []error
	violations []string
}

type config struct {
	clients  int
	requests int
	duration time.Duration
	weights  [numClasses]int
	k        int
	batch    int
	reads    int
	seed     int64
}

// parseFlags resolves the command line into the load configuration and the
// target base URL.
func parseFlags(args []string) (config, string, error) {
	fs := flag.NewFlagSet("dppr-loadgen", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "http://127.0.0.1:8080", "base URL of the dppr-httpd server")
		clients  = fs.Int("clients", 64, "concurrent closed-loop client goroutines")
		requests = fs.Int("requests", 0, "requests per client (0 = run for -duration)")
		duration = fs.Duration("duration", 10*time.Second, "run length when -requests is 0")
		topk     = fs.Int("topk", 60, "mix weight of single top-k reads")
		estimate = fs.Int("estimate", 25, "mix weight of single estimate reads")
		batchr   = fs.Int("batchread", 5, "mix weight of batched /query reads")
		write    = fs.Int("write", 10, "mix weight of /edges update batches")
		k        = fs.Int("k", 10, "ranking length of top-k queries")
		batch    = fs.Int("batch", 100, "updates per write batch")
		reads    = fs.Int("reads", 8, "queries per batched read")
		seed     = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return config{}, "", err
	}
	cfg := config{
		clients:  *clients,
		requests: *requests,
		duration: *duration,
		weights:  [numClasses]int{opTopK: *topk, opEstimate: *estimate, opBatchRead: *batchr, opWrite: *write},
		k:        *k,
		batch:    *batch,
		reads:    *reads,
		seed:     *seed,
	}
	if cfg.clients < 1 {
		return config{}, "", fmt.Errorf("-clients must be at least 1")
	}
	if cfg.batch < 1 || cfg.reads < 1 {
		return config{}, "", fmt.Errorf("-batch and -reads must be at least 1")
	}
	total := 0
	for _, w := range cfg.weights {
		if w < 0 {
			return config{}, "", fmt.Errorf("mix weights must be non-negative")
		}
		total += w
	}
	if total == 0 {
		return config{}, "", fmt.Errorf("at least one mix weight must be positive")
	}
	return cfg, *addr, nil
}

func run(args []string, out io.Writer) error {
	cfg, addr, err := parseFlags(args)
	if err != nil {
		return err
	}

	// One shared transport: connection reuse across clients is the realistic
	// many-users-one-frontend shape, and it keeps ephemeral ports bounded.
	hc := &http.Client{Timeout: 60 * time.Second}
	probe := httpapi.NewClient(addr, hc)
	if err := probe.Health(); err != nil {
		return fmt.Errorf("server not healthy at %s: %w", addr, err)
	}
	sources, err := probe.Sources()
	if err != nil {
		return err
	}
	if len(sources) == 0 {
		return fmt.Errorf("server tracks no sources")
	}
	stats, err := probe.Stats()
	if err != nil {
		return err
	}
	vertices := stats.Service.Vertices
	if vertices < 2 {
		return fmt.Errorf("server graph has %d vertices", vertices)
	}

	fmt.Fprintf(out, "target=%s clients=%d sources=%d vertices=%d mix topk:estimate:batchread:write = %d:%d:%d:%d\n",
		addr, cfg.clients, len(sources), vertices,
		cfg.weights[opTopK], cfg.weights[opEstimate], cfg.weights[opBatchRead], cfg.weights[opWrite])

	deadline := time.Time{}
	if cfg.requests <= 0 {
		deadline = time.Now().Add(cfg.duration)
	}
	results := make([]*clientResult, cfg.clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		res := &clientResult{}
		results[c] = res
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			runClient(id, cfg, addr, hc, sources, vertices, deadline, res)
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	return report(out, results, elapsed)
}

// runClient is one closed-loop client: it issues requests back-to-back until
// its request budget or the deadline is exhausted.
func runClient(id int, cfg config, addr string, hc *http.Client,
	sources []dynppr.VertexID, vertices int, deadline time.Time, res *clientResult) {
	client := httpapi.NewClient(addr, hc)
	rng := rand.New(rand.NewSource(cfg.seed + int64(id)))
	epochs := make(map[dynppr.VertexID]uint64, len(sources))

	totalWeight := 0
	for _, w := range cfg.weights {
		totalWeight += w
	}

	checkMeta := func(m httpapi.SnapshotMeta) {
		if !m.Converged {
			res.violations = append(res.violations,
				fmt.Sprintf("source %d epoch %d: snapshot not converged (residual %g > ε %g)",
					m.Source, m.Epoch, m.MaxResidual, m.Epsilon))
		}
		if last, ok := epochs[m.Source]; ok && m.Epoch < last {
			res.violations = append(res.violations,
				fmt.Sprintf("source %d: epoch went backwards %d -> %d", m.Source, last, m.Epoch))
		}
		epochs[m.Source] = m.Epoch
	}

	for i := 0; cfg.requests <= 0 || i < cfg.requests; i++ {
		if cfg.requests <= 0 && !time.Now().Before(deadline) {
			return
		}
		pick := rng.Intn(totalWeight)
		class := opClass(0)
		for acc := 0; class < numClasses; class++ {
			acc += cfg.weights[class]
			if pick < acc {
				break
			}
		}
		src := sources[rng.Intn(len(sources))]
		start := time.Now()
		var err error
		switch class {
		case opTopK:
			var top httpapi.TopKResult
			if top, err = client.TopK(src, cfg.k); err == nil {
				checkMeta(top.Snapshot)
			}
		case opEstimate:
			var est httpapi.EstimateResult
			v := dynppr.VertexID(rng.Intn(vertices))
			if est, err = client.Estimate(src, v); err == nil {
				checkMeta(est.Snapshot)
			}
		case opBatchRead:
			queries := make([]httpapi.Query, cfg.reads)
			for q := range queries {
				s := sources[rng.Intn(len(sources))]
				if q%2 == 0 {
					queries[q] = httpapi.Query{Kind: httpapi.KindTopK, Source: s, K: cfg.k}
				} else {
					queries[q] = httpapi.Query{
						Kind: httpapi.KindEstimate, Source: s,
						Vertex: dynppr.VertexID(rng.Intn(vertices)),
					}
				}
			}
			var batch []httpapi.QueryResult
			if batch, err = client.Query(queries); err == nil {
				for _, r := range batch {
					switch {
					case r.TopK != nil:
						checkMeta(r.TopK.Snapshot)
					case r.Estimate != nil:
						checkMeta(r.Estimate.Snapshot)
					default:
						res.violations = append(res.violations,
							fmt.Sprintf("batched query failed inline: %s", r.Error))
					}
				}
			}
		case opWrite:
			updates := make([]httpapi.Update, cfg.batch)
			for u := range updates {
				op := httpapi.OpInsert
				if rng.Intn(3) == 0 {
					op = httpapi.OpDelete
				}
				updates[u] = httpapi.Update{
					U:  dynppr.VertexID(rng.Intn(vertices)),
					V:  dynppr.VertexID(rng.Intn(vertices)),
					Op: op,
				}
			}
			_, err = client.ApplyEdges(updates)
		}
		res.lat[class].Observe(time.Since(start))
		if err != nil {
			res.errors = append(res.errors, fmt.Errorf("client %d %s: %w", id, class, err))
		}
	}
}

func report(out io.Writer, results []*clientResult, elapsed time.Duration) error {
	var merged [numClasses]metrics.LatencyStats
	var errs []error
	var violations []string
	for _, res := range results {
		for c := opClass(0); c < numClasses; c++ {
			merged[c].AddAll(&res.lat[c])
		}
		errs = append(errs, res.errors...)
		violations = append(violations, res.violations...)
	}

	var total int64
	for c := opClass(0); c < numClasses; c++ {
		total += int64(merged[c].Count())
	}
	fmt.Fprintf(out, "completed %d requests in %v (%.0f req/sec overall)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	fmt.Fprintf(out, "%-10s %10s %12s %12s %12s %12s %12s\n",
		"class", "requests", "mean", "p50", "p95", "p99", "max")
	for c := opClass(0); c < numClasses; c++ {
		l := &merged[c]
		if l.Count() == 0 {
			continue
		}
		fmt.Fprintf(out, "%-10s %10d %12v %12v %12v %12v %12v\n",
			c, l.Count(),
			l.Mean().Round(time.Microsecond),
			l.Percentile(50).Round(time.Microsecond),
			l.Percentile(95).Round(time.Microsecond),
			l.Percentile(99).Round(time.Microsecond),
			l.Max().Round(time.Microsecond))
	}
	fmt.Fprintf(out, "non-2xx or transport errors: %d\n", len(errs))
	fmt.Fprintf(out, "snapshot contract violations: %d\n", len(violations))

	if len(errs) > 0 {
		return fmt.Errorf("%d request(s) failed, first: %w", len(errs), errs[0])
	}
	if len(violations) > 0 {
		sort.Strings(violations)
		return fmt.Errorf("%d snapshot contract violation(s), first: %s", len(violations), violations[0])
	}
	return nil
}
