package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dynppr"
	"dynppr/internal/faultfs"
	"dynppr/internal/httpapi"
)

// startServer brings up a real loopback dppr-httpd equivalent (Service +
// httpapi.Server) for the load generator to hammer.
func startServer(t *testing.T) string {
	t.Helper()
	edges, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Model: dynppr.ModelRMAT, Vertices: 200, Edges: 1500, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := dynppr.GraphFromEdges(edges)
	sources := g.TopDegreeVertices(3)
	so := dynppr.DefaultServiceOptions()
	so.Options.Epsilon = 1e-4
	so.Options.Workers = 2
	so.PoolWorkers = 2
	svc, err := dynppr.NewService(g, sources, so)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	srv := httpapi.NewServer(svc, httpapi.ServerOptions{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Wait() })
	t.Cleanup(func() { srv.Shutdown(t.Context()) })
	return srv.URL()
}

// TestLoadgen64Clients is the acceptance run: 64 concurrent closed-loop
// clients over a live update stream (10% writes) with zero non-2xx
// responses and zero snapshot contract violations.
func TestLoadgen64Clients(t *testing.T) {
	base := startServer(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", base, "-clients", "64", "-requests", "5",
		"-batch", "20", "-reads", "4", "-seed", "3",
	}, &out)
	if err != nil {
		t.Fatalf("loadgen failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		"clients=64",
		"completed 320 requests",
		"non-2xx or transport errors: 0",
		"snapshot contract violations: 0",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestLoadgenDurationMode(t *testing.T) {
	base := startServer(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", base, "-clients", "8", "-duration", "250ms", "-batch", "10",
	}, &out)
	if err != nil {
		t.Fatalf("loadgen failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "req/sec overall") {
		t.Fatalf("missing throughput line:\n%s", out.String())
	}
}

func TestLoadgenReadOnlyMix(t *testing.T) {
	base := startServer(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", base, "-clients", "4", "-requests", "10", "-write", "0", "-batchread", "0",
	}, &out)
	if err != nil {
		t.Fatalf("loadgen failed: %v\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "write") && strings.Contains(out.String(), "\nwrite ") {
		t.Fatalf("write class should be silent with weight 0:\n%s", out.String())
	}
}

// startOverloadServer brings up a server shaped to shed: a write pipeline
// of depth 1 with a near-zero admission timeout, over a graph large enough
// that write batches occupy the pipeline for a visible time.
func startOverloadServer(t *testing.T) string {
	t.Helper()
	edges, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Model: dynppr.ModelRMAT, Vertices: 2000, Edges: 16000, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := dynppr.GraphFromEdges(edges)
	sources := g.TopDegreeVertices(2)
	so := dynppr.DefaultServiceOptions()
	so.Options.Epsilon = 1e-6
	so.Options.Workers = 2
	so.PoolWorkers = 2
	so.QueueDepth = 1
	svc, err := dynppr.NewService(g, sources, so)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	srv := httpapi.NewServer(svc, httpapi.ServerOptions{
		Addr:    "127.0.0.1:0",
		Handler: httpapi.HandlerOptions{AdmissionTimeout: time.Millisecond},
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Wait() })
	t.Cleanup(func() { srv.Shutdown(t.Context()) })
	return srv.URL()
}

// TestLoadgenOpenLoopOverload drives a write-heavy open-loop stream into a
// server with a single-slot pipeline: the server must shed with 429 (so
// -expect-shed passes), reads must stay within a generous p99 SLO, and no
// request may fail with anything but 429.
func TestLoadgenOpenLoopOverload(t *testing.T) {
	base := startOverloadServer(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", base, "-arrival", "400", "-requests", "300",
		"-write", "70", "-topk", "25", "-estimate", "5", "-batchread", "0",
		"-batch", "400", "-seed", "9",
		"-max-p99", "5s", "-expect-shed",
	}, &out)
	if err != nil {
		t.Fatalf("overload run failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		"open-loop arrival=400",
		"shed (429) responses:",
		"read p99:",
		"non-2xx or transport errors: 0",
		"snapshot contract violations: 0",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

// startOnDemandServer brings up a server that answers untracked sources via
// the on-demand path and promotes sources queried at least 5 times.
func startOnDemandServer(t *testing.T) string {
	t.Helper()
	edges, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Model: dynppr.ModelRMAT, Vertices: 200, Edges: 1500, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := dynppr.GraphFromEdges(edges)
	sources := g.TopDegreeVertices(3)
	so := dynppr.DefaultServiceOptions()
	so.Options.Epsilon = 1e-4
	so.Options.Workers = 2
	so.PoolWorkers = 2
	so.OnDemand = dynppr.OnDemandOptions{
		Enabled: true, Epsilon: 1e-3, Seed: 4,
		PromoteAfter: 5, MaxAutoSources: 8,
	}
	svc, err := dynppr.NewService(g, sources, so)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	srv := httpapi.NewServer(svc, httpapi.ServerOptions{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Wait() })
	t.Cleanup(func() { srv.Shutdown(t.Context()) })
	return srv.URL()
}

// TestLoadgenZipfLongTail drives the Zipf read mix into an on-demand server:
// every request must succeed (an untracked source is never a 404), cold
// sources are answered approximately with a positive error bound, and the
// hot head of the tail gets promoted so some reads come back exact.
func TestLoadgenZipfLongTail(t *testing.T) {
	base := startOnDemandServer(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", base, "-clients", "8", "-requests", "40", "-write", "0",
		"-zipf", "1.4", "-seed", "6",
	}, &out)
	if err != nil {
		t.Fatalf("zipf run failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		"long tail: read sources ~ Zipf(1.4) over all",
		"read answers:",
		"approximate (on-demand)",
		"non-2xx or transport errors: 0",
		"snapshot contract violations: 0",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
	// The Zipf head concentrates on low vertex IDs: with PromoteAfter 5 and
	// 320 reads, at least some answers must have come from each path.
	if strings.Contains(out.String(), "read answers: 0 exact") {
		t.Fatalf("no exact answers — promotion never happened:\n%s", out.String())
	}
	if strings.Contains(out.String(), ", 0 approximate") {
		t.Fatalf("no approximate answers — the tail never left the tracked set:\n%s", out.String())
	}
}

// TestLoadgenRepeatCacheTraffic re-issues every drawn read with -repeat: the
// repeats must come back marked cached, and the end-of-run report must show
// the server's cache and coalescing counters.
func TestLoadgenRepeatCacheTraffic(t *testing.T) {
	base := startOnDemandServer(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", base, "-clients", "4", "-requests", "10", "-write", "0", "-batchread", "0",
		"-zipf", "1.4", "-repeat", "3", "-seed", "8",
	}, &out)
	if err != nil {
		t.Fatalf("repeat run failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "served from the result cache") {
		t.Fatalf("report missing the cache line:\n%s", out.String())
	}
	if strings.Contains(out.String(), ", 0 served from the result cache") {
		t.Fatalf("repeats never hit the cache:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "server ondemand: cold_pushes=") {
		t.Fatalf("report missing the server on-demand counters:\n%s", out.String())
	}
	if strings.Contains(out.String(), "cache_hits=0 ") {
		t.Fatalf("server reports zero cache hits despite repeats:\n%s", out.String())
	}
}

// TestLoadgenZipfRejectsUntrackedServer asserts the failure mode the SLO
// exists for: the same Zipf mix against a server without on-demand serving
// turns cold sources into 404s and the run must fail.
func TestLoadgenZipfRejectsUntrackedServer(t *testing.T) {
	base := startServer(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", base, "-clients", "4", "-requests", "20", "-write", "0",
		"-zipf", "1.4", "-seed", "6",
	}, &out)
	if err == nil {
		t.Fatalf("zipf run against a 404-ing server must fail:\n%s", out.String())
	}
}

// TestLoadgenP99Gate asserts the SLO gate fires on an impossible target.
func TestLoadgenP99Gate(t *testing.T) {
	base := startServer(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", base, "-clients", "4", "-requests", "10", "-write", "0",
		"-max-p99", "1ns",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "exceeds the -max-p99 SLO") {
		t.Fatalf("p99 gate did not fire: %v\n%s", err, out.String())
	}
}

func TestLoadgenFlagErrors(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-clients", "0"},
		{"-batch", "0"},
		{"-reads", "0"},
		{"-topk", "0", "-estimate", "0", "-batchread", "0", "-write", "0"},
		{"-topk", "-1"},
		{"-zipf", "1"},
		{"-zipf", "0.8"},
		{"-repeat", "-1"},
	} {
		if err := run(args, &out); err == nil {
			t.Fatalf("args %v must fail", args)
		}
	}
}

// startDegradedServer brings up a persistent server whose first WAL write
// after boot is scripted to fail, so the run starts inside a degraded
// window that the fast recovery probe heals mid-run.
func startDegradedServer(t *testing.T) string {
	t.Helper()
	edges, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Model: dynppr.ModelRMAT, Vertices: 200, Edges: 1500, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := dynppr.GraphFromEdges(edges)
	sources := g.TopDegreeVertices(3)
	so := dynppr.DefaultServiceOptions()
	so.Options.Engine = dynppr.EngineDeterministic
	so.Options.Epsilon = 1e-4
	so.PoolWorkers = 2
	in := faultfs.NewInjector(faultfs.OS)
	svc, err := dynppr.NewPersistentService(g, sources, so, dynppr.PersistOptions{
		Dir:          filepath.Join(t.TempDir(), "data"),
		Sync:         dynppr.SyncAlways,
		FS:           in,
		ProbeBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	in.Add(faultfs.Rule{Op: faultfs.OpWrite, Path: "wal"})
	srv := httpapi.NewServer(svc, httpapi.ServerOptions{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Wait() })
	t.Cleanup(func() { srv.Shutdown(t.Context()) })
	return srv.URL()
}

// TestLoadgenRetryDegraded runs a write-only mix into a server that degrades
// on the first write: without -retry-degraded those 503s would count as
// errors, with it every shed write is re-offered after the server's
// Retry-After and the run completes clean with the window accounted.
func TestLoadgenRetryDegraded(t *testing.T) {
	base := startDegradedServer(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", base, "-clients", "4", "-requests", "5", "-batch", "5",
		"-topk", "0", "-estimate", "0", "-batchread", "0", "-write", "100",
		"-retry-degraded", "-seed", "9",
	}, &out)
	if err != nil {
		t.Fatalf("loadgen failed through the degraded window: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		"non-2xx or transport errors: 0",
		"degraded (503) retries:",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestLoadgenUnreachableServer(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-addr", "http://127.0.0.1:1", "-clients", "1", "-requests", "1"}, &out)
	if err == nil {
		t.Fatal("unreachable server must fail the health probe")
	}
	if !strings.Contains(err.Error(), "not healthy") {
		t.Fatalf("unexpected error: %v", err)
	}
}
