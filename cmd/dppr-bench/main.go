// Command dppr-bench regenerates the tables behind the figures of the
// evaluation section of "Parallel Personalized PageRank on Dynamic Graphs"
// on the synthetic dataset catalog.
//
// Usage:
//
//	dppr-bench -experiment fig4            # effect of optimizations
//	dppr-bench -experiment fig5 -quick     # throughput, reduced parameters
//	dppr-bench -experiment all -datasets youtube,pokec
//
// Experiments: fig4, fig5, fig6, fig7, fig8, fig9, fig10, accuracy, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dynppr/internal/bench"
	"dynppr/internal/gen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dppr-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dppr-bench", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all", "experiment to run: fig4..fig10, accuracy, all")
		datasets   = fs.String("datasets", "small", "comma-separated dataset names, or 'small', 'full', 'quick'")
		quick      = fs.Bool("quick", false, "use reduced parameters (fewer slides, looser epsilon)")
		slides     = fs.Int("slides", 0, "override number of window slides per configuration")
		epsilon    = fs.Float64("epsilon", 0, "override default error threshold")
		workers    = fs.Int("workers", 0, "override worker count (0 = GOMAXPROCS)")
		seed       = fs.Int64("seed", 0, "override random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	params := bench.DefaultParams()
	if *quick {
		params = bench.QuickParams()
	}
	if *slides > 0 {
		params.Slides = *slides
	}
	if *epsilon > 0 {
		params.Epsilon = *epsilon
	}
	if *workers > 0 {
		params.Workers = *workers
	}
	if *seed != 0 {
		params.Seed = *seed
	}
	if err := params.Validate(); err != nil {
		return err
	}

	ds, err := resolveDatasets(*datasets)
	if err != nil {
		return err
	}
	names := make([]string, len(ds))
	for i, d := range ds {
		names[i] = d.Name
	}
	fmt.Printf("datasets: %s | slides: %d | epsilon: %.0e | workers: %d\n\n",
		strings.Join(names, ", "), params.Slides, params.Epsilon, params.Workers)

	experiments := []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "accuracy"}
	if *experiment != "all" {
		experiments = []string{*experiment}
	}
	for _, e := range experiments {
		start := time.Now()
		if err := runExperiment(e, params, ds); err != nil {
			return fmt.Errorf("%s: %w", e, err)
		}
		fmt.Printf("(%s completed in %v)\n\n", e, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func resolveDatasets(spec string) ([]gen.Dataset, error) {
	switch spec {
	case "small":
		return gen.SmallCatalog(), nil
	case "full":
		return gen.Catalog(), nil
	case "quick":
		return bench.QuickDatasets(), nil
	}
	var out []gen.Dataset
	for _, name := range strings.Split(spec, ",") {
		d, err := gen.DatasetByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

func runExperiment(name string, p bench.Params, ds []gen.Dataset) error {
	w := os.Stdout
	switch name {
	case "fig4":
		fmt.Println("== Figure 4: effect of the parallel-push optimizations ==")
		rows, err := bench.RunOptimizationEffect(p, ds)
		if err != nil {
			return err
		}
		return bench.PrintOptimizationRows(w, rows)
	case "fig5":
		fmt.Println("== Figure 5: streaming throughput ==")
		rows, err := bench.RunThroughput(p, ds, nil)
		if err != nil {
			return err
		}
		return bench.PrintThroughputRows(w, rows)
	case "fig6":
		fmt.Println("== Figure 6: effect of epsilon ==")
		rows, err := bench.RunEpsilonSweep(p, ds)
		if err != nil {
			return err
		}
		return bench.PrintEpsilonRows(w, rows)
	case "fig7":
		fmt.Println("== Figure 7: effect of the source vertex degree ==")
		rows, err := bench.RunSourceDegree(p, ds)
		if err != nil {
			return err
		}
		return bench.PrintSourceRows(w, rows)
	case "fig8":
		fmt.Println("== Figure 8: effect of the batch size ==")
		rows, err := bench.RunBatchSize(p, ds)
		if err != nil {
			return err
		}
		return bench.PrintBatchSizeRows(w, rows)
	case "fig9":
		fmt.Println("== Figure 9: resource consumption proxies ==")
		rows, err := bench.RunResourceProfile(p, ds)
		if err != nil {
			return err
		}
		return bench.PrintResourceRows(w, rows)
	case "fig10":
		fmt.Println("== Figure 10: scalability on multi-cores ==")
		rows, err := bench.RunScalability(p, ds)
		if err != nil {
			return err
		}
		return bench.PrintScalabilityRows(w, rows)
	case "accuracy":
		fmt.Println("== Accuracy: worst-case estimation error vs. exact PPR ==")
		rows, err := bench.RunAccuracy(p, ds)
		if err != nil {
			return err
		}
		return bench.PrintAccuracyRows(w, rows)
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}
