package main

import (
	"testing"

	"dynppr/internal/bench"
)

func TestResolveDatasets(t *testing.T) {
	small, err := resolveDatasets("small")
	if err != nil || len(small) != 3 {
		t.Fatalf("small: %d datasets, %v", len(small), err)
	}
	full, err := resolveDatasets("full")
	if err != nil || len(full) != 5 {
		t.Fatalf("full: %d datasets, %v", len(full), err)
	}
	quick, err := resolveDatasets("quick")
	if err != nil || len(quick) == 0 {
		t.Fatalf("quick: %d datasets, %v", len(quick), err)
	}
	named, err := resolveDatasets("youtube, pokec")
	if err != nil || len(named) != 2 || named[0].Name != "youtube" || named[1].Name != "pokec" {
		t.Fatalf("named: %+v, %v", named, err)
	}
	if _, err := resolveDatasets("nope"); err == nil {
		t.Fatal("unknown dataset must fail")
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	p := bench.QuickParams()
	if err := runExperiment("fig99", p, bench.QuickDatasets()[:1]); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

func TestRunExperimentQuick(t *testing.T) {
	p := bench.QuickParams()
	p.Slides = 1
	ds := bench.QuickDatasets()[:1]
	// Exercise a cheap figure end to end through the CLI plumbing.
	for _, e := range []string{"fig4", "fig9"} {
		if err := runExperiment(e, p, ds); err != nil {
			t.Fatalf("%s: %v", e, err)
		}
	}
}

func TestRunFlagHandling(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag must fail")
	}
	if err := run([]string{"-datasets", "nope", "-experiment", "fig4"}); err == nil {
		t.Fatal("unknown dataset must fail")
	}
	if err := run([]string{"-experiment", "fig6", "-datasets", "quick", "-quick", "-slides", "1", "-workers", "1", "-seed", "3", "-epsilon", "1e-3"}); err != nil {
		t.Fatalf("quick fig6 run failed: %v", err)
	}
}
