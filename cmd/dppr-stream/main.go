// Command dppr-stream demonstrates live dynamic-PPR maintenance: it replays a
// synthetic edge stream through a sliding window, applies each slide to a
// Tracker, and reports per-batch latency, cumulative throughput and the
// current top-ranked vertices.
//
// Usage:
//
//	dppr-stream -dataset pokec -batch 100 -slides 50
//	dppr-stream -vertices 5000 -edges 100000 -engine sequential -epsilon 1e-6
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dynppr"
	"dynppr/internal/gen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dppr-stream:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dppr-stream", flag.ContinueOnError)
	var (
		dataset  = fs.String("dataset", "youtube", "named dataset from the catalog")
		input    = fs.String("input", "", "load the edge stream from a 'u v' edge-list file instead of generating it")
		vertices = fs.Int("vertices", 0, "override: generate an RMAT graph with this many vertices")
		edges    = fs.Int("edges", 0, "override: number of edges for the generated graph")
		batch    = fs.Int("batch", 100, "edges inserted (and deleted) per window slide")
		slides   = fs.Int("slides", 20, "number of window slides to replay")
		epsilon  = fs.Float64("epsilon", 1e-6, "error threshold")
		engine   = fs.String("engine", "parallel", "engine: parallel, sequential, vertex-centric")
		workers  = fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		topK     = fs.Int("top", 5, "number of top-ranked vertices to print at the end")
		seed     = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var edgeList []dynppr.Edge
	sourceName := *dataset
	if *input != "" {
		var err error
		edgeList, err = dynppr.LoadEdges(*input)
		if err != nil {
			return err
		}
		sourceName = *input
	} else {
		cfg, err := resolveConfig(*dataset, *vertices, *edges, *seed)
		if err != nil {
			return err
		}
		sourceName = cfg.Name
		edgeList, err = dynppr.GenerateEdges(cfg)
		if err != nil {
			return err
		}
	}
	if len(edgeList) == 0 {
		return fmt.Errorf("no edges in the input stream")
	}
	stream := dynppr.NewStream(edgeList, *seed)
	window, initial := dynppr.NewSlidingWindow(stream, 0.1)
	g := dynppr.GraphFromEdges(initial)
	source := g.TopDegreeVertices(1)[0]

	opts := dynppr.DefaultOptions()
	opts.Epsilon = *epsilon
	opts.Workers = *workers
	switch *engine {
	case "parallel":
		opts.Engine = dynppr.EngineParallel
	case "sequential":
		opts.Engine = dynppr.EngineSequential
	case "vertex-centric":
		opts.Engine = dynppr.EngineVertexCentric
	default:
		return fmt.Errorf("unknown engine %q", *engine)
	}

	fmt.Fprintf(out, "dataset=%s vertices=%d window=%d source=%d engine=%s epsilon=%.0e\n",
		sourceName, g.NumVertices(), window.Size(), source, opts.Engine, opts.Epsilon)

	start := time.Now()
	tr, err := dynppr.NewTracker(g, source, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "cold start converged in %v (%d pushes)\n",
		time.Since(start).Round(time.Microsecond), tr.Counters().Pushes)

	var totalUpdates int
	var totalLatency time.Duration
	for i := 0; i < *slides; i++ {
		b := window.Slide(*batch)
		if len(b) == 0 {
			fmt.Fprintln(out, "stream exhausted")
			break
		}
		res := tr.ApplyBatch(b)
		totalUpdates += res.Applied
		totalLatency += res.Latency
		fmt.Fprintf(out, "slide %3d: updates=%4d latency=%-12v pushes=%d\n",
			i+1, res.Applied, res.Latency.Round(time.Microsecond), res.Pushes)
	}
	if totalLatency > 0 {
		fmt.Fprintf(out, "throughput: %.0f updates/sec over %d updates\n",
			float64(totalUpdates)/totalLatency.Seconds(), totalUpdates)
	}

	fmt.Fprintf(out, "top-%d vertices by PPR towards %d:\n", *topK, source)
	for _, vs := range tr.TopK(*topK) {
		fmt.Fprintf(out, "  vertex %-8d score %.6f\n", vs.Vertex, vs.Score)
	}
	return nil
}

func resolveConfig(dataset string, vertices, edges int, seed int64) (dynppr.SyntheticConfig, error) {
	if vertices > 0 && edges > 0 {
		return dynppr.SyntheticConfig{
			Name: "custom-rmat", Model: dynppr.ModelRMAT,
			Vertices: vertices, Edges: edges, Seed: seed,
		}, nil
	}
	d, err := gen.DatasetByName(dataset)
	if err != nil {
		return dynppr.SyntheticConfig{}, err
	}
	return d.Config, nil
}
