package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"dynppr"
)

func TestResolveConfigStream(t *testing.T) {
	cfg, err := resolveConfig("youtube", 0, 0, 1)
	if err != nil || cfg.Name != "youtube" {
		t.Fatalf("dataset lookup failed: %+v, %v", cfg, err)
	}
	cfg, err = resolveConfig("ignored", 100, 500, 7)
	if err != nil || cfg.Vertices != 100 || cfg.Edges != 500 || cfg.Model != dynppr.ModelRMAT {
		t.Fatalf("override failed: %+v, %v", cfg, err)
	}
	if _, err := resolveConfig("no-such", 0, 0, 1); err == nil {
		t.Fatal("unknown dataset must fail")
	}
}

func TestRunOnGeneratedGraph(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-vertices", "300", "-edges", "3000", "-batch", "20", "-slides", "3",
		"-epsilon", "1e-4", "-engine", "sequential", "-top", "3",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"cold start converged", "slide   1", "throughput", "top-3 vertices"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunEngines(t *testing.T) {
	for _, engine := range []string{"parallel", "vertex-centric"} {
		var buf bytes.Buffer
		err := run([]string{
			"-vertices", "200", "-edges", "1500", "-batch", "10", "-slides", "2",
			"-epsilon", "1e-3", "-engine", engine,
		}, &buf)
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
	}
	var buf bytes.Buffer
	if err := run([]string{"-engine", "warp-drive", "-vertices", "10", "-edges", "20"}, &buf); err == nil {
		t.Fatal("unknown engine must fail")
	}
}

func TestRunFromInputFile(t *testing.T) {
	edges, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Model: dynppr.ModelBarabasiAlbert, Vertices: 200, Edges: 2000, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "edges.txt")
	if err := dynppr.SaveEdges(path, edges); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = run([]string{"-input", path, "-batch", "20", "-slides", "2", "-epsilon", "1e-4"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), path) {
		t.Fatalf("output should name the input file:\n%s", buf.String())
	}
}

func TestRunInputErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-input", "/does/not/exist.txt"}, &buf); err == nil {
		t.Fatal("missing input file must fail")
	}
	empty := filepath.Join(t.TempDir(), "empty.txt")
	if err := dynppr.SaveEdges(empty, nil); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-input", empty}, &buf); err == nil {
		t.Fatal("empty input must fail")
	}
	if err := run([]string{"-dataset", "no-such"}, &buf); err == nil {
		t.Fatal("unknown dataset must fail")
	}
}
