package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const jsonStream = `{"Time":"t","Action":"start","Package":"dynppr"}
{"Action":"output","Package":"dynppr","Output":"goos: linux\n"}
{"Action":"output","Package":"dynppr","Output":"BenchmarkBatchApplyEngines/engine=sequential-4         \t       3\t 200000 ns/op\t 6000 updates/batch\n"}
{"Action":"output","Package":"dynppr","Output":"BenchmarkBatchApplyEngines/engine=deterministic-4      \t       5\t 100000 ns/op\t 6000 updates/batch\n"}
{"Action":"output","Package":"dynppr","Output":"BenchmarkBatchApplyEngines/engine=deterministic-4      \t       5\t 110000 ns/op\t 6000 updates/batch\n"}
{"Action":"output","Package":"dynppr","Output":"PASS\n"}
{"Action":"pass","Package":"dynppr"}
`

const rawStream = `goos: linux
BenchmarkTrackerColdStart 	      10	 5000000 ns/op
BenchmarkTrackerColdStart 	      10	 5500000 ns/op
PASS
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		line string
		name string
		ns   float64
		ok   bool
	}{
		{"BenchmarkFoo-4 \t 100 \t 123.5 ns/op", "BenchmarkFoo-4", 123.5, true},
		{"BenchmarkFoo 	 1 	 9 ns/op 	 3 extra/metric", "BenchmarkFoo", 9, true},
		{"BenchmarkBar-8 	 2 	 7 B/op 	 11 ns/op", "BenchmarkBar-8", 11, true},
		{"goos: linux", "", 0, false},
		{"BenchmarkNoCount 	 x 	 9 ns/op", "", 0, false},
		{"BenchmarkNoNsOp 	 3 	 9 B/op", "", 0, false},
		{"PASS", "", 0, false},
	}
	for _, c := range cases {
		name, ns, ok := parseBenchLine(c.line)
		if ok != c.ok || name != c.name || ns != c.ns {
			t.Errorf("parseBenchLine(%q) = (%q, %v, %v), want (%q, %v, %v)",
				c.line, name, ns, ok, c.name, c.ns, c.ok)
		}
	}
}

// test2json flushes the benchmark name before the run and the timing after,
// so one result line spans several Output events.
const splitStream = `{"Action":"output","Package":"dynppr","Test":"BenchmarkX","Output":"BenchmarkX/engine=sequential-4         \t"}
{"Action":"run","Package":"dynppr","Test":"BenchmarkX"}
{"Action":"output","Package":"dynppr","Test":"BenchmarkX","Output":"       2\t  57928280 ns/op\t     20000 updates/batch\n"}
{"Action":"output","Package":"dynppr","Output":"PASS\n"}
`

func TestParseStreamReassemblesSplitLines(t *testing.T) {
	samples, err := parseStream(strings.NewReader(splitStream))
	if err != nil {
		t.Fatal(err)
	}
	got := samples["BenchmarkX/engine=sequential-4"]
	if len(got) != 1 || got[0] != 57928280 {
		t.Fatalf("samples = %v", samples)
	}
}

func TestParseStreamJSONAndRaw(t *testing.T) {
	samples, err := parseStream(strings.NewReader(jsonStream))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples["BenchmarkBatchApplyEngines/engine=deterministic-4"]) != 2 {
		t.Fatalf("samples: %v", samples)
	}
	raw, err := parseStream(strings.NewReader(rawStream))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw["BenchmarkTrackerColdStart"]) != 2 {
		t.Fatalf("raw samples: %v", raw)
	}
}

func TestGeomean(t *testing.T) {
	got := geomean([]float64{100, 400})
	if math.Abs(got-200) > 1e-9 {
		t.Fatalf("geomean = %v, want 200", got)
	}
}

func TestRegressionGate(t *testing.T) {
	oldF := writeTemp(t, "old.json", jsonStream)
	// 10% slower across the board: passes the 15% gate, fails a 5% gate.
	slower := strings.ReplaceAll(jsonStream, " 200000 ns/op", " 220000 ns/op")
	slower = strings.ReplaceAll(slower, " 100000 ns/op", " 110000 ns/op")
	slower = strings.ReplaceAll(slower, " 110000 ns/op", " 121000 ns/op")
	newF := writeTemp(t, "new.json", slower)

	var sb strings.Builder
	if err := run([]string{"-old", oldF, "-new", newF, "-threshold", "0.15"}, &sb); err != nil {
		t.Fatalf("10%% regression must pass the 15%% gate: %v\n%s", err, sb.String())
	}
	if err := run([]string{"-old", oldF, "-new", newF, "-threshold", "0.05"}, &sb); err == nil {
		t.Fatal("10% regression must fail the 5% gate")
	}
	// Improvements never fail.
	if err := run([]string{"-old", newF, "-new", oldF, "-threshold", "0.0"}, &sb); err != nil {
		t.Fatalf("improvement must pass: %v", err)
	}
}

func TestNormalizedGateCancelsMachineSpeed(t *testing.T) {
	oldF := writeTemp(t, "old.json", jsonStream)
	// A uniformly 3x slower machine: plain gate fails, normalized passes.
	slower := strings.ReplaceAll(jsonStream, " 200000 ns/op", " 600000 ns/op")
	slower = strings.ReplaceAll(slower, " 100000 ns/op", " 300000 ns/op")
	slower = strings.ReplaceAll(slower, " 110000 ns/op", " 330000 ns/op")
	newF := writeTemp(t, "new.json", slower)
	var sb strings.Builder
	if err := run([]string{"-old", oldF, "-new", newF, "-threshold", "0.15"}, &sb); err == nil {
		t.Fatal("plain gate must fail on a uniformly slower stream")
	}
	if err := run([]string{"-normalize", "-old", oldF, "-new", newF, "-threshold", "0.15"}, &sb); err != nil {
		t.Fatalf("normalized gate must cancel uniform slowdown: %v\n%s", err, sb.String())
	}
	// A relative regression of one benchmark trips the normalized gate even
	// on the slower machine: sequential 4.5x slower while the rest is 3x.
	skewed := strings.ReplaceAll(jsonStream, " 200000 ns/op", " 900000 ns/op")
	skewed = strings.ReplaceAll(skewed, " 100000 ns/op", " 300000 ns/op")
	skewed = strings.ReplaceAll(skewed, " 110000 ns/op", " 330000 ns/op")
	skewF := writeTemp(t, "skew.json", skewed)
	if err := run([]string{"-normalize", "-old", oldF, "-new", skewF, "-threshold", "0.15"}, &sb); err == nil {
		t.Fatal("normalized gate must catch a relative regression")
	}
}

func TestMatchScopesRegressionGate(t *testing.T) {
	oldF := writeTemp(t, "old.json", jsonStream)
	// Sequential regresses 2x; deterministic is unchanged. Scoped to the
	// deterministic benchmark the gate passes, unscoped it fails, and a
	// pattern matching nothing is an error rather than a vacuous pass.
	slower := strings.ReplaceAll(jsonStream, " 200000 ns/op", " 400000 ns/op")
	newF := writeTemp(t, "new.json", slower)
	var sb strings.Builder
	if err := run([]string{"-old", oldF, "-new", newF, "-threshold", "0.15",
		"-match", "engine=deterministic"}, &sb); err != nil {
		t.Fatalf("scoped gate must ignore the excluded regression: %v\n%s", err, sb.String())
	}
	if err := run([]string{"-old", oldF, "-new", newF, "-threshold", "0.15"}, &sb); err == nil {
		t.Fatal("unscoped gate must catch the sequential regression")
	}
	if err := run([]string{"-old", oldF, "-new", newF,
		"-match", "BenchmarkNoSuchThing"}, &sb); err == nil {
		t.Fatal("a -match leaving no benchmarks must fail, not vacuously pass")
	}
	if err := run([]string{"-old", oldF, "-new", newF, "-match", "(["}, &sb); err == nil {
		t.Fatal("an invalid -match regexp must be reported")
	}
}

func TestRegressionNoCommonBenchmarks(t *testing.T) {
	oldF := writeTemp(t, "old.json", jsonStream)
	newF := writeTemp(t, "new.json", rawStream)
	var sb strings.Builder
	if err := run([]string{"-old", oldF, "-new", newF}, &sb); err == nil {
		t.Fatal("disjoint benchmark sets must fail, not vacuously pass")
	}
}

func TestSpeedupGate(t *testing.T) {
	in := writeTemp(t, "bench.json", jsonStream)
	var sb strings.Builder
	// sequential 200000 vs deterministic geomean ~104881: ratio ~1.9.
	err := run([]string{"-in", in,
		"-slow", "BenchmarkBatchApplyEngines/engine=sequential-4",
		"-fast", "BenchmarkBatchApplyEngines/engine=deterministic-4",
		"-min", "1.5"}, &sb)
	if err != nil {
		t.Fatalf("1.9x speedup must pass a 1.5x gate: %v\n%s", err, sb.String())
	}
	err = run([]string{"-in", in,
		"-slow", "BenchmarkBatchApplyEngines/engine=sequential-4",
		"-fast", "BenchmarkBatchApplyEngines/engine=deterministic-4",
		"-min", "2.5"}, &sb)
	if err == nil {
		t.Fatal("1.9x speedup must fail a 2.5x gate")
	}
	err = run([]string{"-in", in, "-slow", "BenchmarkMissing", "-fast", "BenchmarkAlsoMissing"}, &sb)
	if err == nil {
		t.Fatal("missing benchmark names must fail")
	}
}

func TestUsageErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Fatal("no mode selected must fail")
	}
	if err := run([]string{"-in", "x"}, &sb); err == nil {
		t.Fatal("speedup mode without -slow/-fast must fail")
	}
	if err := run([]string{"-old", "/nonexistent", "-new", "/nonexistent"}, &sb); err == nil {
		t.Fatal("unreadable files must fail")
	}
}
