// Command dppr-benchdiff is the CI benchmark-regression gate: it parses
// `go test -json` benchmark event streams (plain `go test -bench` text also
// works) and enforces performance contracts on them.
//
// Regression mode compares two streams benchmark-by-benchmark and fails when
// the geometric mean of the new/old ns/op ratios exceeds the threshold:
//
//	dppr-benchdiff -old BENCH_PR3.json -new bench_head.json -threshold 0.15
//
// With -normalize, each ratio is divided by the stream geomean and the worst
// normalized benchmark is gated instead — uniform machine-speed differences
// cancel, so a baseline captured on different hardware still catches code
// changes that regress one benchmark relative to the rest:
//
//	dppr-benchdiff -normalize -old BENCH_PR3.json -new bench_head.json -threshold 0.15
//
// Speedup mode asserts a ratio between two benchmarks of one stream — the
// check the CI uses to keep the deterministic parallel engine's batch-apply
// speedup over the sequential engine from eroding:
//
//	dppr-benchdiff -in bench_head.json \
//	  -slow 'BenchmarkBatchApplyEngines/engine=sequential-4' \
//	  -fast 'BenchmarkBatchApplyEngines/engine=deterministic-4' \
//	  -min 1.5
//
// Benchmarks appearing in only one stream are reported and skipped; when no
// benchmark name is common to both streams, the diff fails loudly instead of
// vacuously passing. Multiple samples of one benchmark (-count > 1) are
// combined by geometric mean.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dppr-benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dppr-benchdiff", flag.ContinueOnError)
	var (
		oldPath   = fs.String("old", "", "baseline bench stream (regression mode)")
		newPath   = fs.String("new", "", "candidate bench stream (regression mode)")
		threshold = fs.Float64("threshold", 0.15, "fail when the gated ns/op ratio exceeds 1+threshold")
		normalize = fs.Bool("normalize", false, "divide each ratio by the stream geomean and gate the worst benchmark instead of the geomean — cancels uniform machine-speed differences for cross-machine diffs")
		match     = fs.String("match", "", "regexp limiting regression mode to matching benchmark names — scope a gate to one benchmark family")
		inPath    = fs.String("in", "", "bench stream (speedup mode)")
		slow      = fs.String("slow", "", "benchmark expected to be slower (speedup mode)")
		fast      = fs.String("fast", "", "benchmark expected to be faster (speedup mode)")
		minRatio  = fs.Float64("min", 1.5, "fail when ns/op(slow)/ns/op(fast) is below this")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *inPath != "" || *slow != "" || *fast != "":
		if *inPath == "" || *slow == "" || *fast == "" {
			return fmt.Errorf("speedup mode needs -in, -slow and -fast")
		}
		results, err := parseFile(*inPath)
		if err != nil {
			return err
		}
		return checkSpeedup(out, results, *slow, *fast, *minRatio)
	case *oldPath != "" && *newPath != "":
		oldR, err := parseFile(*oldPath)
		if err != nil {
			return err
		}
		newR, err := parseFile(*newPath)
		if err != nil {
			return err
		}
		if *match != "" {
			re, err := regexp.Compile(*match)
			if err != nil {
				return fmt.Errorf("-match: %w", err)
			}
			oldR = filterNames(oldR, re)
			newR = filterNames(newR, re)
			if len(oldR) == 0 || len(newR) == 0 {
				return fmt.Errorf("-match %q leaves no benchmarks in one of the streams", *match)
			}
		}
		return diff(out, oldR, newR, *threshold, *normalize)
	default:
		return fmt.Errorf("usage: -old FILE -new FILE (regression) or -in FILE -slow NAME -fast NAME (speedup)")
	}
}

// testEvent is the subset of the test2json event schema the parser needs.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// parseFile reads a bench stream and returns the geomean ns/op per
// benchmark name.
func parseFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	samples, err := parseStream(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	out := make(map[string]float64, len(samples))
	for name, ss := range samples {
		out[name] = geomean(ss)
	}
	return out, nil
}

// parseStream collects the ns/op samples per benchmark from a `go test
// -json` event stream; lines that are not JSON events are treated as raw
// benchmark output, so plain `go test -bench` text parses too. A single
// benchmark result line is typically split across several Output events —
// test2json flushes the name before the benchmark runs and the timing after
// — so Output fragments are reassembled and processed at newlines.
func parseStream(r io.Reader) (map[string][]float64, error) {
	samples := make(map[string][]float64)
	record := func(line string) {
		if name, nsOp, ok := parseBenchLine(line); ok {
			samples[name] = append(samples[name], nsOp)
		}
	}
	var pending strings.Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "{") {
			var ev testEvent
			if err := json.Unmarshal([]byte(line), &ev); err == nil {
				if ev.Action != "output" {
					continue
				}
				pending.WriteString(ev.Output)
				for {
					joined := pending.String()
					nl := strings.IndexByte(joined, '\n')
					if nl < 0 {
						break
					}
					record(joined[:nl])
					pending.Reset()
					pending.WriteString(joined[nl+1:])
				}
				continue
			}
		}
		record(line)
	}
	record(pending.String())
	return samples, sc.Err()
}

// parseBenchLine extracts (name, ns/op) from one benchmark result line of
// the form "BenchmarkName-4   12   3456 ns/op   [extra metrics...]".
func parseBenchLine(line string) (string, float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	// fields[1] must be the iteration count.
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", 0, false
	}
	for i := 2; i+1 < len(fields); i += 2 {
		if fields[i+1] == "ns/op" {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil || v <= 0 {
				return "", 0, false
			}
			return fields[0], v, true
		}
	}
	return "", 0, false
}

// filterNames keeps only the benchmarks whose name matches re.
func filterNames(results map[string]float64, re *regexp.Regexp) map[string]float64 {
	out := make(map[string]float64, len(results))
	for name, v := range results {
		if re.MatchString(name) {
			out[name] = v
		}
	}
	return out
}

func geomean(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// diff compares the common benchmarks and fails on a >threshold regression.
// Plain mode gates the geomean of the new/old ratios — the right check when
// both streams come from the same machine. Normalized mode divides every
// ratio by that geomean and gates the worst benchmark instead: a uniformly
// slower or faster machine shifts all ratios equally and cancels out, while
// a code change that regresses one benchmark relative to the others still
// trips the gate — the right check when the baseline was captured on
// different hardware.
func diff(out io.Writer, oldR, newR map[string]float64, threshold float64, normalize bool) error {
	var common []string
	for name := range oldR {
		if _, ok := newR[name]; ok {
			common = append(common, name)
		}
	}
	if len(common) == 0 {
		return fmt.Errorf("no common benchmarks between the two streams")
	}
	sort.Strings(common)
	var logSum float64
	fmt.Fprintf(out, "%-64s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "ratio")
	for _, name := range common {
		ratio := newR[name] / oldR[name]
		logSum += math.Log(ratio)
		fmt.Fprintf(out, "%-64s %14.0f %14.0f %8.3f\n", name, oldR[name], newR[name], ratio)
	}
	for name := range oldR {
		if _, ok := newR[name]; !ok {
			fmt.Fprintf(out, "only in old: %s\n", name)
		}
	}
	for name := range newR {
		if _, ok := oldR[name]; !ok {
			fmt.Fprintf(out, "only in new: %s\n", name)
		}
	}
	gm := math.Exp(logSum / float64(len(common)))
	fmt.Fprintf(out, "geomean ratio over %d benchmarks: %.3f\n", len(common), gm)
	if !normalize {
		fmt.Fprintf(out, "gate: geomean <= %.3f\n", 1+threshold)
		if gm > 1+threshold {
			return fmt.Errorf("geomean regression %.1f%% exceeds %.1f%%", (gm-1)*100, threshold*100)
		}
		return nil
	}
	worstName, worst := "", 0.0
	for _, name := range common {
		if norm := newR[name] / oldR[name] / gm; norm > worst {
			worstName, worst = name, norm
		}
	}
	fmt.Fprintf(out, "gate: worst geomean-normalized ratio %.3f (%s) <= %.3f\n", worst, worstName, 1+threshold)
	if worst > 1+threshold {
		return fmt.Errorf("%s regressed %.1f%% relative to the stream geomean (threshold %.1f%%)",
			worstName, (worst-1)*100, threshold*100)
	}
	return nil
}

// checkSpeedup asserts ns/op(slow)/ns/op(fast) >= minRatio.
func checkSpeedup(out io.Writer, results map[string]float64, slow, fast string, minRatio float64) error {
	s, ok := results[slow]
	if !ok {
		return fmt.Errorf("benchmark %q not found (have: %s)", slow, strings.Join(names(results), ", "))
	}
	f, ok := results[fast]
	if !ok {
		return fmt.Errorf("benchmark %q not found (have: %s)", fast, strings.Join(names(results), ", "))
	}
	ratio := s / f
	fmt.Fprintf(out, "speedup %s over %s: %.2fx (min %.2fx)\n", fast, slow, ratio, minRatio)
	if ratio < minRatio {
		return fmt.Errorf("speedup %.2fx below required %.2fx", ratio, minRatio)
	}
	return nil
}

func names(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
