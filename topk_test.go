package dynppr_test

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"

	"dynppr"
	"dynppr/internal/httpapi"
)

// fullSortTopK is the straightforward reference TopK implementations must
// agree with: sort all n vertices by descending score, ties broken by
// ascending vertex id, and truncate to k.
func fullSortTopK(est []float64, k int) []dynppr.VertexScore {
	all := make([]dynppr.VertexScore, len(est))
	for v, s := range est {
		all[v] = dynppr.VertexScore{Vertex: dynppr.VertexID(v), Score: s}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Vertex < all[j].Vertex
	})
	if k < 0 {
		k = 0
	}
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// topKCases are the edge-case graphs every TopK implementation — the
// heap-based selection behind Tracker.TopK, Service.TopK and the HTTP
// /topk endpoint — is driven through.
func topKCases(t *testing.T) []struct {
	name   string
	edges  []dynppr.Edge
	source dynppr.VertexID
} {
	t.Helper()
	rmat, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Model: dynppr.ModelRMAT, Vertices: 60, Edges: 400, Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	star := make([]dynppr.Edge, 0, 9)
	for i := dynppr.VertexID(1); i <= 9; i++ {
		// Every leaf points at the hub: all leaves tie exactly, so
		// tie-breaking by vertex id is fully exercised.
		star = append(star, dynppr.Edge{U: i, V: 0})
	}
	chain := []dynppr.Edge{{U: 1, V: 0}, {U: 2, V: 1}, {U: 3, V: 2}, {U: 4, V: 3}}
	twoTiers := append(append([]dynppr.Edge{}, star...),
		dynppr.Edge{U: 10, V: 1}, dynppr.Edge{U: 11, V: 1}) // 10 and 11 tie below the leaves
	return []struct {
		name   string
		edges  []dynppr.Edge
		source dynppr.VertexID
	}{
		{"star-all-ties", star, 0},
		{"chain-distinct-scores", chain, 0},
		{"two-tier-ties", twoTiers, 0},
		{"isolated-source", nil, 3},
		{"rmat", rmat, 0},
	}
}

// TestTopKTableAcrossLayers drives identical edge cases — k=0, k=n, k>n and
// exact score ties — through all three TopK surfaces and checks each against
// the full-sort reference over its own estimate vector.
func TestTopKTableAcrossLayers(t *testing.T) {
	assertEqual := func(t *testing.T, layer string, k int, got, want []dynppr.VertexScore) {
		t.Helper()
		if k == 0 && got != nil {
			t.Fatalf("%s: TopK(0) = %v, want nil", layer, got)
		}
		if len(got) != len(want) {
			t.Fatalf("%s k=%d: %d entries, want %d", layer, k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s k=%d entry %d: got %+v, want %+v\nfull got:  %v\nfull want: %v",
					layer, k, i, got[i], want[i], got, want)
			}
		}
	}

	for _, tc := range topKCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			opts := dynppr.DefaultOptions()
			opts.Epsilon = 1e-6
			tr, err := dynppr.NewTracker(dynppr.GraphFromEdges(tc.edges), tc.source, opts)
			if err != nil {
				t.Fatal(err)
			}
			n := len(tr.Estimates())

			so := dynppr.DefaultServiceOptions()
			so.Options.Epsilon = 1e-6
			svc, err := dynppr.NewService(dynppr.GraphFromEdges(tc.edges), []dynppr.VertexID{tc.source}, so)
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Close()
			ts := httptest.NewServer(httpapi.NewHandler(svc))
			defer ts.Close()
			client := httpapi.NewClient(ts.URL, ts.Client())

			svcEst, err := svc.Estimates(tc.source)
			if err != nil {
				t.Fatal(err)
			}
			if len(svcEst) != n {
				t.Fatalf("tracker and service vector lengths differ: %d vs %d", n, len(svcEst))
			}

			for _, k := range []int{0, 1, 2, n / 2, n - 1, n, n + 5, 10 * n} {
				if k < 0 {
					continue
				}
				// Tracker: heap selection vs full sort of its own vector.
				assertEqual(t, "tracker", k, tr.TopK(k), fullSortTopK(tr.Estimates(), k))

				// Service: snapshot read path against the snapshot's vector.
				gotSvc, err := svc.TopK(tc.source, k)
				if err != nil {
					t.Fatal(err)
				}
				wantSvc := fullSortTopK(svcEst, k)
				assertEqual(t, "service", k, gotSvc, wantSvc)

				// HTTP: the wire result must match the service exactly.
				// The wire contract diverges from the library on k=0:
				// in-process TopK(0) returns nil, but the endpoint
				// rejects non-positive k as a client error.
				gotHTTP, err := client.TopK(tc.source, k)
				if k == 0 {
					var apiErr *httpapi.APIError
					if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
						t.Fatalf("httpapi k=0: got (%+v, %v), want 400", gotHTTP, err)
					}
					continue
				}
				if err != nil {
					t.Fatal(err)
				}
				wire := make([]dynppr.VertexScore, len(gotHTTP.Results))
				for i, vs := range gotHTTP.Results {
					wire[i] = dynppr.VertexScore{Vertex: vs.Vertex, Score: vs.Score}
				}
				assertEqual(t, "httpapi", k, wire, wantSvc)
				if gotHTTP.Snapshot.Epoch != 1 || !gotHTTP.Snapshot.Converged {
					t.Fatalf("httpapi snapshot meta: %+v", gotHTTP.Snapshot)
				}
			}

			// Tie ordering is pinned explicitly: equal scores must come back
			// in ascending vertex order.
			full := tr.TopK(n)
			for i := 1; i < len(full); i++ {
				if full[i-1].Score == full[i].Score && full[i-1].Vertex >= full[i].Vertex {
					t.Fatalf("tie order violated at %d: %+v before %+v", i, full[i-1], full[i])
				}
				if full[i-1].Score < full[i].Score {
					t.Fatalf("descending order violated at %d", i)
				}
			}
		})
	}
}
