package httpapi_test

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dynppr"
	"dynppr/internal/httpapi"
)

func testEdges(t *testing.T, n, m int, seed int64) []dynppr.Edge {
	t.Helper()
	edges, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Model: dynppr.ModelRMAT, Vertices: n, Edges: m, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return edges
}

// newTestAPI builds a Service over a synthetic graph and an httptest server
// with a Client pointed at it.
func newTestAPI(t *testing.T, nSources int) (*dynppr.Service, []dynppr.VertexID, *httpapi.Client) {
	t.Helper()
	edges := testEdges(t, 120, 700, 7)
	g := dynppr.GraphFromEdges(edges)
	sources := g.TopDegreeVertices(nSources)
	so := dynppr.DefaultServiceOptions()
	so.Options.Epsilon = 1e-4
	so.Options.Workers = 2
	so.PoolWorkers = 2
	svc, err := dynppr.NewService(g, sources, so)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	ts := httptest.NewServer(httpapi.NewHandler(svc))
	t.Cleanup(ts.Close)
	return svc, sources, httpapi.NewClient(ts.URL, ts.Client())
}

func wantStatus(t *testing.T, err error, status int) {
	t.Helper()
	apiErr, ok := err.(*httpapi.APIError)
	if !ok {
		t.Fatalf("want *APIError with status %d, got %T: %v", status, err, err)
	}
	if apiErr.StatusCode != status {
		t.Fatalf("want status %d, got %d (%s)", status, apiErr.StatusCode, apiErr.Message)
	}
}

func TestHealthz(t *testing.T) {
	svc, _, client := newTestAPI(t, 2)
	if err := client.Health(); err != nil {
		t.Fatal(err)
	}
	svc.Close()
	wantStatus(t, client.Health(), http.StatusServiceUnavailable)
}

func TestTopKEndpoint(t *testing.T) {
	svc, sources, client := newTestAPI(t, 2)
	src := sources[0]
	got, err := client.TopK(src, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != 5 || len(got.Results) != 5 {
		t.Fatalf("bad topk shape: %+v", got)
	}
	if !got.Snapshot.Converged || got.Snapshot.Epoch != 1 || got.Snapshot.Source != src {
		t.Fatalf("bad snapshot meta: %+v", got.Snapshot)
	}
	// Must agree with the in-process read path exactly.
	want, err := svc.TopK(src, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got.Results[i].Vertex != want[i].Vertex || got.Results[i].Score != want[i].Score {
			t.Fatalf("entry %d: HTTP %+v vs Service %+v", i, got.Results[i], want[i])
		}
	}

	if _, err := client.TopK(9999, 5); err == nil {
		t.Fatal("unknown source must fail")
	} else {
		wantStatus(t, err, http.StatusNotFound)
	}
}

func TestEstimateEndpoint(t *testing.T) {
	svc, sources, client := newTestAPI(t, 2)
	src := sources[0]
	got, err := client.Estimate(src, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := svc.Estimate(src, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Score != want || got.Vertex != 3 || !got.Snapshot.Converged {
		t.Fatalf("estimate mismatch: HTTP %+v vs Service %v", got, want)
	}
	if _, err := client.Estimate(9999, 3); err == nil {
		t.Fatal("unknown source must fail")
	} else {
		wantStatus(t, err, http.StatusNotFound)
	}
}

func TestQueryBatchEndpoint(t *testing.T) {
	_, sources, client := newTestAPI(t, 2)
	results, err := client.Query([]httpapi.Query{
		{Kind: httpapi.KindTopK, Source: sources[0], K: 3},
		{Kind: httpapi.KindEstimate, Source: sources[1], Vertex: 0},
		{Kind: httpapi.KindTopK, Source: 9999, K: 3},
		{Kind: "explode", Source: sources[0]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("want 4 results, got %d", len(results))
	}
	if results[0].TopK == nil || len(results[0].TopK.Results) != 3 {
		t.Fatalf("result 0: %+v", results[0])
	}
	if results[1].Estimate == nil || results[1].Estimate.Snapshot.Source != sources[1] {
		t.Fatalf("result 1: %+v", results[1])
	}
	// Per-query failures come back inline, not as a batch failure.
	if results[2].Error == "" || results[2].TopK != nil {
		t.Fatalf("result 2 should carry the unknown-source error: %+v", results[2])
	}
	if !strings.Contains(results[3].Error, "unknown query kind") {
		t.Fatalf("result 3: %+v", results[3])
	}

	if _, err := client.Query(nil); err == nil {
		t.Fatal("empty batch must fail")
	} else {
		wantStatus(t, err, http.StatusBadRequest)
	}
}

func TestEdgesEndpoint(t *testing.T) {
	svc, sources, client := newTestAPI(t, 2)
	src := sources[0]
	before, err := svc.Info(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.ApplyEdges([]httpapi.Update{
		{U: 200, V: src, Op: httpapi.OpInsert},
		{U: 200, V: src, Op: httpapi.OpInsert}, // duplicate: skipped
		{U: 201, V: 202, Op: httpapi.OpDelete}, // missing: skipped
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || res.Skipped != 2 || res.Pushes <= 0 {
		t.Fatalf("bad edges response: %+v", res)
	}
	after, err := svc.Info(src)
	if err != nil {
		t.Fatal(err)
	}
	if after.Epoch != before.Epoch+1 {
		t.Fatalf("epoch %d -> %d, want one publication", before.Epoch, after.Epoch)
	}
	// The write is visible to subsequent HTTP reads.
	est, err := client.Estimate(src, 200)
	if err != nil {
		t.Fatal(err)
	}
	if est.Score <= 0 || est.Snapshot.Epoch != after.Epoch {
		t.Fatalf("estimate after write: %+v", est)
	}

	if _, err := client.ApplyEdges(nil); err == nil {
		t.Fatal("empty batch must fail")
	} else {
		wantStatus(t, err, http.StatusBadRequest)
	}
	if _, err := client.ApplyEdges([]httpapi.Update{{U: 1, V: 2, Op: "sideways"}}); err == nil {
		t.Fatal("bad op must fail")
	} else {
		wantStatus(t, err, http.StatusBadRequest)
	}
	if _, err := client.ApplyEdges([]httpapi.Update{{U: -1, V: 2, Op: httpapi.OpInsert}}); err == nil {
		t.Fatal("negative vertex must fail")
	} else {
		wantStatus(t, err, http.StatusBadRequest)
	}
}

func TestSourcesEndpoint(t *testing.T) {
	_, sources, client := newTestAPI(t, 2)
	got, err := client.Sources()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sources) {
		t.Fatalf("sources %v, want %d tracked", got, len(sources))
	}

	// Live add: the new source serves reads immediately after the call.
	withExtra, err := client.UpdateSources([]dynppr.VertexID{77}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(withExtra) != len(sources)+1 {
		t.Fatalf("after add: %v", withExtra)
	}
	top, err := client.TopK(77, 3)
	if err != nil {
		t.Fatal(err)
	}
	if top.Snapshot.Epoch != 1 || !top.Snapshot.Converged {
		t.Fatalf("cold-started snapshot: %+v", top.Snapshot)
	}

	// Duplicate add conflicts; unknown remove is 404.
	if _, err := client.UpdateSources([]dynppr.VertexID{77}, nil); err == nil {
		t.Fatal("duplicate add must fail")
	} else {
		wantStatus(t, err, http.StatusConflict)
	}
	if _, err := client.UpdateSources(nil, []dynppr.VertexID{5555}); err == nil {
		t.Fatal("unknown remove must fail")
	} else {
		wantStatus(t, err, http.StatusNotFound)
	}

	// Live remove: reads start failing with 404.
	shrunk, err := client.UpdateSources(nil, []dynppr.VertexID{77})
	if err != nil {
		t.Fatal(err)
	}
	if len(shrunk) != len(sources) {
		t.Fatalf("after remove: %v", shrunk)
	}
	if _, err := client.TopK(77, 3); err == nil {
		t.Fatal("read of removed source must fail")
	} else {
		wantStatus(t, err, http.StatusNotFound)
	}

	if _, err := client.UpdateSources(nil, nil); err == nil {
		t.Fatal("empty sources request must fail")
	} else {
		wantStatus(t, err, http.StatusBadRequest)
	}

	// A rejected batch must leave state untouched: the valid add rides with
	// a duplicate, the whole request 409s, and the valid source is NOT
	// tracked afterwards — so the client can retry the corrected request.
	if _, err := client.UpdateSources([]dynppr.VertexID{88, sources[0]}, nil); err == nil {
		t.Fatal("batch with duplicate must fail")
	} else {
		wantStatus(t, err, http.StatusConflict)
	}
	after, err := client.Sources()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range after {
		if s == 88 {
			t.Fatal("failed batch must not partially apply")
		}
	}
	// Same for a batch whose remove is unknown.
	if _, err := client.UpdateSources([]dynppr.VertexID{88}, []dynppr.VertexID{5555}); err == nil {
		t.Fatal("batch with unknown remove must fail")
	} else {
		wantStatus(t, err, http.StatusNotFound)
	}
	if _, err := client.TopK(88, 1); err == nil {
		t.Fatal("failed batch must not partially apply the add")
	}
	if _, err := client.UpdateSources([]dynppr.VertexID{-3}, nil); err == nil {
		t.Fatal("negative source id must fail")
	} else {
		wantStatus(t, err, http.StatusBadRequest)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, sources, client := newTestAPI(t, 3)
	if _, err := client.TopK(sources[0], 3); err != nil {
		t.Fatal(err)
	}
	if _, err := client.ApplyEdges([]httpapi.Update{{U: 300, V: sources[0], Op: httpapi.OpInsert}}); err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Service.Batches != 1 || stats.Service.Vertices <= 0 || len(stats.Service.Sources) != 3 {
		t.Fatalf("service stats: %+v", stats.Service)
	}
	if stats.Service.LastBatchMicros < 0 || stats.Service.AvgBatchMicros <= 0 {
		t.Fatalf("latency stats: %+v", stats.Service)
	}
	topk := stats.HTTP["/topk"]
	if topk.Requests != 1 || topk.Errors != 0 || topk.MaxMicros <= 0 {
		t.Fatalf("/topk endpoint stats: %+v", topk)
	}
	edges := stats.HTTP["/edges"]
	if edges.Requests != 1 || edges.QPS <= 0 {
		t.Fatalf("/edges endpoint stats: %+v", edges)
	}
	// Error accounting: a 404 counts as an error on its endpoint.
	if _, err := client.TopK(9999, 1); err == nil {
		t.Fatal("expected 404")
	}
	stats, err = client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.HTTP["/topk"]; got.Requests != 2 || got.Errors != 1 {
		t.Fatalf("/topk stats after 404: %+v", got)
	}
}

func TestMethodAndPayloadErrors(t *testing.T) {
	_, sources, client := newTestAPI(t, 1)
	_ = sources
	svcURL := clientBase(t, client)

	post, err := http.Post(svcURL+"/topk", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /topk = %d, want 405", post.StatusCode)
	}
	if allow := post.Header.Get("Allow"); allow != http.MethodGet {
		t.Fatalf("Allow = %q", allow)
	}

	bad, err := http.Post(svcURL+"/edges", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body = %d, want 400", bad.StatusCode)
	}

	unknown, err := http.Post(svcURL+"/edges", "application/json",
		strings.NewReader(`{"updates":[],"surprise":1}`))
	if err != nil {
		t.Fatal(err)
	}
	unknown.Body.Close()
	if unknown.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field = %d, want 400", unknown.StatusCode)
	}

	missing, err := http.Get(svcURL + "/topk")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing source param = %d, want 400", missing.StatusCode)
	}

	badV, err := http.Get(svcURL + "/estimate?source=0&v=minus-one")
	if err != nil {
		t.Fatal(err)
	}
	badV.Body.Close()
	if badV.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad vertex param = %d, want 400", badV.StatusCode)
	}
}

// clientBase digs the test server base URL back out of a request, keeping
// the raw-HTTP tests on the same server the Client uses.
func clientBase(t *testing.T, c *httpapi.Client) string {
	t.Helper()
	return c.BaseURL()
}

// TestUpdateRoundTrip pins the wire conversion helpers.
func TestUpdateRoundTrip(t *testing.T) {
	batch := dynppr.Batch{
		{U: 1, V: 2, Op: dynppr.Insert},
		{U: 3, V: 4, Op: dynppr.Delete},
	}
	wire := httpapi.FromBatch(batch)
	if wire[0].Op != httpapi.OpInsert || wire[1].Op != httpapi.OpDelete {
		t.Fatalf("FromBatch: %+v", wire)
	}
	for i, w := range wire {
		u, err := w.ToUpdate()
		if err != nil {
			t.Fatal(err)
		}
		if u != batch[i] {
			t.Fatalf("round trip %d: %+v vs %+v", i, u, batch[i])
		}
	}
	if _, err := (httpapi.Update{U: 1, V: 2, Op: "nope"}).ToUpdate(); err == nil {
		t.Fatal("bad op must fail")
	}
	if _, err := (httpapi.Update{U: -4, V: 2, Op: httpapi.OpInsert}).ToUpdate(); err == nil {
		t.Fatal("negative id must fail")
	}
}

// TestScoresMatchOffline cross-checks the full HTTP read path against an
// offline tracker after a write.
func TestScoresMatchOffline(t *testing.T) {
	edges := testEdges(t, 100, 500, 3)
	g := dynppr.GraphFromEdges(edges)
	source := g.TopDegreeVertices(1)[0]
	so := dynppr.DefaultServiceOptions()
	so.Options.Epsilon = 1e-5
	svc, err := dynppr.NewService(g, []dynppr.VertexID{source}, so)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(httpapi.NewHandler(svc))
	defer ts.Close()
	client := httpapi.NewClient(ts.URL, ts.Client())

	batch := dynppr.Batch{
		{U: 90, V: source, Op: dynppr.Insert},
		{U: 91, V: 90, Op: dynppr.Insert},
		{U: edges[0].U, V: edges[0].V, Op: dynppr.Delete},
	}
	if _, err := client.ApplyEdges(httpapi.FromBatch(batch)); err != nil {
		t.Fatal(err)
	}

	opts := dynppr.DefaultOptions()
	opts.Epsilon = 1e-5
	tr, err := dynppr.NewTracker(dynppr.GraphFromEdges(edges), source, opts)
	if err != nil {
		t.Fatal(err)
	}
	tr.ApplyBatch(batch)

	for v := dynppr.VertexID(0); int(v) < 100; v += 7 {
		got, err := client.Estimate(source, v)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(got.Score - tr.Estimate(v)); d > 2*opts.Epsilon {
			t.Fatalf("vertex %d: HTTP %v vs tracker %v", v, got.Score, tr.Estimate(v))
		}
	}
}
