package httpapi_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dynppr"
	"dynppr/internal/httpapi"
	"dynppr/internal/promexp"
)

// overloadServer brings up a server shaped to saturate: a single-slot write
// pipeline with a short admission timeout over a graph large enough that
// each batch occupies the pipeline for a visible time.
func overloadServer(t *testing.T, handler httpapi.HandlerOptions) (*dynppr.Service, *httpapi.Server) {
	t.Helper()
	edges, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Model: dynppr.ModelRMAT, Vertices: 2000, Edges: 16000, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := dynppr.GraphFromEdges(edges)
	sources := g.TopDegreeVertices(2)
	so := dynppr.DefaultServiceOptions()
	so.Options.Epsilon = 1e-6
	so.Options.Workers = 2
	so.PoolWorkers = 2
	so.QueueDepth = 1
	svc, err := dynppr.NewService(g, sources, so)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	srv := httpapi.NewServer(svc, httpapi.ServerOptions{Addr: "127.0.0.1:0", Handler: handler})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Wait() })
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return svc, srv
}

func randomBatch(rng *rand.Rand, n, vertices int) []httpapi.Update {
	updates := make([]httpapi.Update, n)
	for i := range updates {
		op := httpapi.OpInsert
		if rng.Intn(3) == 0 {
			op = httpapi.OpDelete
		}
		updates[i] = httpapi.Update{
			U:  dynppr.VertexID(rng.Intn(vertices)),
			V:  dynppr.VertexID(rng.Intn(vertices)),
			Op: op,
		}
	}
	return updates
}

// TestHTTPOverloadSheds429 saturates the write pipeline with concurrent
// batches and asserts the overload contract end to end: excess writes are
// answered 429 with a Retry-After suggestion instead of queueing without
// bound, reads keep completing with bounded latency from converged
// monotone-epoch snapshots throughout, and both the HTTP layer and the
// service report the shedding in /stats.
func TestHTTPOverloadSheds429(t *testing.T) {
	svc, srv := overloadServer(t, httpapi.HandlerOptions{AdmissionTimeout: time.Millisecond})
	sources := svc.Sources()
	client := httpapi.NewClient(srv.URL(), nil)

	const writers = 8
	var (
		wg      sync.WaitGroup
		acked   atomic.Int64
		shed    atomic.Int64
		retryOK atomic.Int64
	)
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := client.ApplyEdges(randomBatch(rng, 300, 2000))
				switch {
				case err == nil:
					acked.Add(1)
				case httpapi.IsOverloaded(err):
					shed.Add(1)
					if apiErr, ok := err.(*httpapi.APIError); ok && apiErr.RetryAfter >= time.Second {
						retryOK.Add(1)
					}
				default:
					t.Errorf("writer %d: unexpected error: %v", w, err)
					return
				}
			}
		}(w)
	}

	// Readers run against the saturated server: every response converged,
	// epochs monotone per reader, latency bounded (reads never queue behind
	// the write pipeline).
	var reads atomic.Int64
	var slowReads atomic.Int64
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lastEpoch := make(map[dynppr.VertexID]uint64)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				source := sources[i%len(sources)]
				start := time.Now()
				res, err := client.TopK(source, 10)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if d := time.Since(start); d > 5*time.Second {
					slowReads.Add(1)
				}
				if !res.Snapshot.Converged {
					t.Errorf("reader %d: non-converged snapshot under overload", r)
					return
				}
				if res.Snapshot.Epoch < lastEpoch[source] {
					t.Errorf("reader %d: epoch regressed %d -> %d under overload",
						r, lastEpoch[source], res.Snapshot.Epoch)
					return
				}
				lastEpoch[source] = res.Snapshot.Epoch
				reads.Add(1)
			}
		}(r)
	}

	// Run until shedding and acknowledgements have both been observed (the
	// queue drains between polls, so a fixed duration would be flaky).
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) && (shed.Load() == 0 || acked.Load() == 0 || reads.Load() < 10) {
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if shed.Load() == 0 {
		t.Fatal("saturated pipeline never shed a 429")
	}
	if acked.Load() == 0 {
		t.Fatal("no write was ever admitted")
	}
	if retryOK.Load() == 0 {
		t.Fatal("no 429 carried a Retry-After of at least one second")
	}
	if slowReads.Load() > 0 {
		t.Fatalf("%d reads exceeded the 5s latency bound under saturation", slowReads.Load())
	}

	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Overload.Shed == 0 {
		t.Fatalf("/stats overload counters missed the shedding: %+v", stats.Overload)
	}
	if stats.Service.Shed == 0 || stats.Service.QueueCap != 1 {
		t.Fatalf("/stats service shed=%d queue_cap=%d, want shed>0 cap=1",
			stats.Service.Shed, stats.Service.QueueCap)
	}
}

// headerTransport stamps every request with an X-Client-ID so the rate
// limiter sees distinct clients behind one transport.
type headerTransport struct{ id string }

func (ht headerTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	r.Header.Set("X-Client-ID", ht.id)
	return http.DefaultTransport.RoundTrip(r)
}

// TestHTTPRateLimitPerClient exhausts one client's token bucket and asserts
// the 429 carries a Retry-After while a different client and the control
// plane stay admitted.
func TestHTTPRateLimitPerClient(t *testing.T) {
	_, srv := overloadServer(t, httpapi.HandlerOptions{RateLimit: 0.5, RateBurst: 3})
	greedy := httpapi.NewClient(srv.URL(), &http.Client{Transport: headerTransport{"greedy"}})
	polite := httpapi.NewClient(srv.URL(), &http.Client{Transport: headerTransport{"polite"}})

	sources, err := polite.Sources() // spends one of polite's tokens
	if err != nil {
		t.Fatal(err)
	}

	var limited *httpapi.APIError
	for i := 0; i < 8; i++ {
		if _, err := greedy.TopK(sources[0], 5); err != nil {
			if !httpapi.IsOverloaded(err) {
				t.Fatalf("request %d: %v", i, err)
			}
			limited = err.(*httpapi.APIError)
			break
		}
	}
	if limited == nil {
		t.Fatal("greedy client was never rate limited")
	}
	if limited.RetryAfter < time.Second {
		t.Fatalf("rate-limit 429 Retry-After = %v, want >= 1s", limited.RetryAfter)
	}
	// A distinct client id has its own bucket.
	if _, err := polite.TopK(sources[0], 5); err != nil {
		t.Fatalf("distinct client was limited by the greedy one: %v", err)
	}
	// The control plane is never limited.
	if err := greedy.Health(); err != nil {
		t.Fatalf("/healthz rate limited: %v", err)
	}
	if _, err := greedy.Stats(); err != nil {
		t.Fatalf("/stats rate limited: %v", err)
	}

	stats, err := polite.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Overload.RateLimited == 0 {
		t.Fatalf("rate-limited counter not incremented: %+v", stats.Overload)
	}
}

// TestHTTPTopKValidation pins the /topk parameter contract: bad k values
// are 400s with a JSON error envelope, a missing k selects the default.
func TestHTTPTopKValidation(t *testing.T) {
	svc, srv := overloadServer(t, httpapi.HandlerOptions{})
	client := httpapi.NewClient(srv.URL(), nil)
	source := int(svc.Sources()[0])

	for _, k := range []string{"0", "-3", "abc", "3000000000", "1000000"} {
		resp, err := http.Get(srv.URL() + "/topk?source=" + strconv.Itoa(source) + "&k=" + k)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("k=%s: status %d, want 400", k, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("k=%s: error not JSON (%s)", k, ct)
		}
	}
	// Missing k selects the capped default.
	resp, err := http.Get(srv.URL() + "/topk?source=" + strconv.Itoa(source))
	if err != nil {
		t.Fatal(err)
	}
	var top httpapi.TopKResult
	err = json.NewDecoder(resp.Body).Decode(&top)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if top.K != 10 {
		t.Fatalf("default k = %d, want 10", top.K)
	}
	// In-range k still works, batched queries included.
	if _, err := client.TopK(dynppr.VertexID(source), 1024); err != nil {
		t.Fatalf("k at the cap rejected: %v", err)
	}
	res, err := client.Query([]httpapi.Query{{Kind: httpapi.KindTopK, Source: dynppr.VertexID(source), K: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Error == "" {
		t.Fatal("batched query with k=-1 not rejected inline")
	}
}

// TestHTTPMetricsEndpoint drives traffic and validates GET /metrics against
// the strict exposition-format parser: the scrape must parse, and its
// counters must reflect the traffic that was just served.
func TestHTTPMetricsEndpoint(t *testing.T) {
	svc, srv := overloadServer(t, httpapi.HandlerOptions{AdmissionTimeout: time.Millisecond})
	client := httpapi.NewClient(srv.URL(), nil)
	source := svc.Sources()[0]

	const topkReads = 12
	for i := 0; i < topkReads; i++ {
		if _, err := client.TopK(source, 5); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.ApplyEdges([]httpapi.Update{{U: 1, V: 2, Op: httpapi.OpInsert}}); err != nil && !httpapi.IsOverloaded(err) {
		t.Fatal(err)
	}

	text, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	fams, err := promexp.ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("/metrics does not parse as exposition format: %v\n%s", err, text)
	}
	byName := make(map[string]promexp.Family, len(fams))
	for _, f := range fams {
		byName[f.Name] = f
	}
	for _, name := range []string{
		"dppr_http_requests_total", "dppr_http_request_errors_total",
		"dppr_http_request_duration_seconds",
		"dppr_http_shed_total", "dppr_http_rate_limited_total", "dppr_http_coalesced_total",
		"dppr_queue_depth", "dppr_queue_capacity", "dppr_pipeline_shed_total",
		"dppr_batches_total", "dppr_updates_applied_total",
		"dppr_graph_vertices", "dppr_graph_edges", "dppr_pushes_total",
		"dppr_snapshot_full_publishes_total", "dppr_snapshot_delta_publishes_total",
	} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("family %q missing from /metrics:\n%s", name, text)
		}
	}

	var topkRequests float64
	for _, s := range byName["dppr_http_requests_total"].Samples {
		for _, l := range s.Labels {
			if l.Name == "endpoint" && l.Value == "/topk" {
				topkRequests = s.Value
			}
		}
	}
	if topkRequests < topkReads {
		t.Fatalf("dppr_http_requests_total{/topk} = %v, want >= %d", topkRequests, topkReads)
	}
	var durOK bool
	for _, s := range byName["dppr_http_request_duration_seconds"].Summaries {
		for _, l := range s.Labels {
			if l.Name == "endpoint" && l.Value == "/topk" {
				durOK = s.Count >= topkReads && s.Sum > 0 && len(s.Quantiles) == 3
			}
		}
	}
	if !durOK {
		t.Fatalf("latency summary for /topk missing or inconsistent:\n%s", text)
	}
	if v, want := byName["dppr_graph_vertices"].Samples[0].Value, float64(svc.Stats().Vertices); v != want {
		t.Fatalf("dppr_graph_vertices = %v, want %v", v, want)
	}
	if c := byName["dppr_queue_capacity"].Samples[0].Value; c != 1 {
		t.Fatalf("dppr_queue_capacity = %v, want 1", c)
	}
}

// TestHTTPOverloadRestartNoLostAcks is the durability half of the overload
// contract: under a saturated single-slot pipeline, every batch the server
// ACKED must survive a restart, and every batch it shed with 429 must have
// left no trace. Each batch inserts one unique never-duplicated edge, so
// the recovered edge count must equal the seed plus exactly the
// acknowledged batches.
func TestHTTPOverloadRestartNoLostAcks(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	edges, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Model: dynppr.ModelRMAT, Vertices: 1500, Edges: 12000, Seed: 33,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := dynppr.GraphFromEdges(edges)
	sources := g.TopDegreeVertices(2)
	base := dynppr.VertexID(g.NumVertices())

	so := dynppr.DefaultServiceOptions()
	so.Options.Epsilon = 1e-6
	so.Options.Engine = dynppr.EngineDeterministic
	so.QueueDepth = 1
	po := dynppr.PersistOptions{Dir: dir, Sync: dynppr.SyncAlways}
	svc, err := dynppr.NewPersistentService(g, sources, so, po)
	if err != nil {
		t.Fatal(err)
	}
	srv := httpapi.NewServer(svc, httpapi.ServerOptions{
		Addr:    "127.0.0.1:0",
		Handler: httpapi.HandlerOptions{AdmissionTimeout: time.Millisecond},
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	client := httpapi.NewClient(srv.URL(), nil)
	seedEdges := svc.Stats().Edges

	// Concurrent writers: batch i inserts the unique edge
	// (source, base+i), so an ACK is verifiable one-to-one in the recovered
	// graph. Fanning the edges out FROM a tracked source makes every batch
	// change the source's out-degree and reconverge it at epsilon 1e-6,
	// which keeps the single-slot pipeline busy long enough to shed.
	const writers = 8
	const perWriter = 40
	var (
		wg       sync.WaitGroup
		ackCount atomic.Int64
		shed     atomic.Int64
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				seq := dynppr.VertexID(w*perWriter + i)
				res, err := client.ApplyEdges([]httpapi.Update{{
					U: sources[0], V: base + seq, Op: httpapi.OpInsert,
				}})
				switch {
				case err == nil:
					if res.Applied != 1 {
						t.Errorf("unique edge batch applied %d, want 1", res.Applied)
					}
					ackCount.Add(1)
				case httpapi.IsOverloaded(err):
					shed.Add(1)
				default:
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if ackCount.Load() == 0 {
		t.Fatal("no batch was ever acknowledged")
	}
	if shed.Load() == 0 {
		t.Fatal("single-slot pipeline with 1ms admission never shed — overload not exercised")
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		t.Fatal(err)
	}
	if err := srv.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover: the WAL must replay exactly the acknowledged batches — a
	// lost ACK or a journaled shed both break the edge-count identity.
	svc2, err := dynppr.NewServiceFromRecovery(so, po)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	gotEdges := svc2.Stats().Edges
	wantEdges := seedEdges + int(ackCount.Load())
	if gotEdges != wantEdges {
		t.Fatalf("recovered %d edges, want %d (seed %d + %d acked; %d shed): acknowledged writes lost or shed writes applied",
			gotEdges, wantEdges, seedEdges, ackCount.Load(), shed.Load())
	}
}
