package httpapi

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"

	"dynppr"
)

// ServerOptions configure the HTTP server.
type ServerOptions struct {
	// Addr is the listen address; an empty string selects ":8080" and a
	// ":0" port asks the kernel for a free one (see Server.Addr).
	Addr string
	// ReadTimeout, WriteTimeout and IdleTimeout bound each connection's
	// phases; zero values select production-safe defaults (5s/10s/60s). Edge
	// batches are applied synchronously inside the request, so WriteTimeout
	// is the effective cap on batch pipeline latency.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	IdleTimeout  time.Duration
	// Handler configures the handler's traffic management (rate limits,
	// admission timeout, /metrics, pprof). A zero AdmissionTimeout is
	// derived from WriteTimeout so a write always sheds with 429 before
	// the connection's write deadline can kill it mid-response.
	Handler HandlerOptions
}

func (o *ServerOptions) fill() {
	if o.Addr == "" {
		o.Addr = ":8080"
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 5 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = 60 * time.Second
	}
	if o.Handler.AdmissionTimeout <= 0 {
		o.Handler.AdmissionTimeout = o.WriteTimeout / 2
	}
}

// Server runs the API handler on a TCP listener with timeouts and graceful
// shutdown. Lifecycle: NewServer, Start (binds and serves in the
// background), then Shutdown (drain in-flight requests) and optionally Wait
// (observe the serve loop's exit).
type Server struct {
	handler *Handler
	http    *http.Server
	ln      net.Listener
	serveCh chan error
}

// NewServer builds a server for svc with its own Handler. The service is not
// owned: closing it is the caller's responsibility, after Shutdown.
func NewServer(svc *dynppr.Service, opts ServerOptions) *Server {
	opts.fill()
	h := NewHandlerOpts(svc, opts.Handler)
	return &Server{
		handler: h,
		http: &http.Server{
			Addr:              opts.Addr,
			Handler:           h,
			ReadTimeout:       opts.ReadTimeout,
			ReadHeaderTimeout: opts.ReadTimeout,
			WriteTimeout:      opts.WriteTimeout,
			IdleTimeout:       opts.IdleTimeout,
		},
		serveCh: make(chan error, 1),
	}
}

// Handler returns the server's API handler (for its metrics).
func (s *Server) Handler() *Handler { return s.handler }

// Start binds the listen address and starts serving in a background
// goroutine. It returns once the listener is bound, so Addr is valid — and
// the port reachable — when it returns.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.http.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	go func() {
		err := s.http.Serve(ln)
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		s.serveCh <- err
	}()
	return nil
}

// Addr returns the bound listen address (resolving a requested ":0" port).
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.http.Addr
	}
	return s.ln.Addr().String()
}

// URL returns the base URL clients should dial.
func (s *Server) URL() string {
	addr := s.Addr()
	if host, port, err := net.SplitHostPort(addr); err == nil {
		// A wildcard listen address is not dialable; loopback is.
		if host == "" || host == "::" || host == "0.0.0.0" {
			addr = net.JoinHostPort("127.0.0.1", port)
		}
	}
	return "http://" + addr
}

// Shutdown stops accepting connections and waits for in-flight requests to
// drain, up to the context's deadline. It does not close the Service.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.http.Shutdown(ctx)
}

// Wait blocks until the serve loop exits (after Shutdown or a listener
// failure) and returns its error, nil on clean shutdown.
func (s *Server) Wait() error {
	return <-s.serveCh
}
