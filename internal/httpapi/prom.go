package httpapi

import (
	"sort"

	"dynppr/internal/promexp"
)

// gather assembles the Prometheus metric families for GET /metrics: the
// HTTP layer's per-endpoint counters and latency summaries, the handler's
// traffic-management counters, and the Service's pipeline, graph and
// durability statistics. Families and series are emitted in sorted order so
// the output is byte-stable for a fixed metric state (scrape-diff friendly,
// and deterministic for the format round-trip test).
func (h *Handler) gather() []promexp.Family {
	st := h.svc.Stats()
	q := h.svc.Queue()
	ov := h.metrics.Overload()

	names := make([]string, 0, len(h.metrics.endpoints))
	for name := range h.metrics.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)

	requests := promexp.Family{
		Name: "dppr_http_requests_total",
		Help: "HTTP requests served, by endpoint.",
		Type: promexp.Counter,
	}
	errors := promexp.Family{
		Name: "dppr_http_request_errors_total",
		Help: "HTTP requests answered with status >= 400, by endpoint.",
		Type: promexp.Counter,
	}
	duration := promexp.Family{
		Name: "dppr_http_request_duration_seconds",
		Help: "HTTP request latency: streaming quantile estimates over the handler's lifetime.",
		Type: promexp.Summary,
	}
	for _, name := range names {
		e := h.metrics.endpoints[name]
		labels := []promexp.Label{{Name: "endpoint", Value: name}}
		requests.Samples = append(requests.Samples,
			promexp.Sample{Labels: labels, Value: float64(e.requests.Load())})
		errors.Samples = append(errors.Samples,
			promexp.Sample{Labels: labels, Value: float64(e.errors.Load())})
		q50, q95, q99, sum, count := e.summary()
		duration.Summaries = append(duration.Summaries, promexp.SummarySample{
			Labels: labels,
			Quantiles: []promexp.Quantile{
				{Q: 0.5, Value: q50},
				{Q: 0.95, Value: q95},
				{Q: 0.99, Value: q99},
			},
			Sum:   sum,
			Count: uint64(count),
		})
	}

	fams := []promexp.Family{
		requests, errors, duration,
		counter("dppr_http_shed_total",
			"Requests answered 429 because the write pipeline was saturated.", float64(ov.Shed)),
		counter("dppr_http_rate_limited_total",
			"Requests answered 429 by the per-client rate limiter.", float64(ov.RateLimited)),
		counter("dppr_http_coalesced_total",
			"Read requests answered from another identical in-flight request.", float64(ov.Coalesced)),
		gauge("dppr_queue_depth",
			"Mutations waiting in the write pipeline.", float64(q.Depth)),
		gauge("dppr_queue_capacity",
			"Bounded capacity of the write pipeline's admission queue.", float64(q.Cap)),
		counter("dppr_pipeline_shed_total",
			"Mutations rejected with ErrOverloaded at pipeline admission.", float64(q.Shed)),
		counter("dppr_batches_total",
			"Edge-update batches applied by the write pipeline.", float64(st.Batches)),
		counter("dppr_updates_applied_total",
			"Effective edge updates applied.", float64(st.UpdatesApplied)),
		counter("dppr_updates_skipped_total",
			"No-op edge updates skipped (duplicate inserts, missing deletes).", float64(st.UpdatesSkipped)),
		counter("dppr_batch_seconds_total",
			"Total restore+push+publish pipeline time across batches.", st.TotalBatchLatency.Seconds()),
		gauge("dppr_last_batch_seconds",
			"Pipeline latency of the most recent batch.", q.LastBatchLatency.Seconds()),
		gauge("dppr_graph_vertices", "Vertices in the served graph.", float64(st.Vertices)),
		gauge("dppr_graph_edges", "Edges in the served graph.", float64(st.Edges)),
		gauge("dppr_sources", "Tracked PPR sources.", float64(len(st.Sources))),
		gauge("dppr_pool_workers", "Shard pool worker count.", float64(st.PoolWorkers)),
	}

	var fullPubs, deltaPubs, rebuilds, pushes float64
	for _, ss := range st.Sources {
		fullPubs += float64(ss.FullPublishes)
		deltaPubs += float64(ss.DeltaPublishes)
		rebuilds += float64(ss.TopKRebuilds)
		pushes += float64(ss.Pushes)
	}
	fams = append(fams,
		counter("dppr_pushes_total",
			"Push operations performed across all tracked sources.", pushes),
		counter("dppr_snapshot_full_publishes_total",
			"Snapshot publications performed as full vector copies.", fullPubs),
		counter("dppr_snapshot_delta_publishes_total",
			"Snapshot publications performed as dirty-set deltas.", deltaPubs),
		counter("dppr_topk_rebuilds_total",
			"Full-scan rebuilds of per-source Top-K indexes.", rebuilds),
	)

	if od := st.OnDemand; od != nil {
		fams = append(fams,
			counter("dppr_ondemand_queries_total",
				"Answers served by the on-demand (approximate) query path.", float64(od.Queries)),
			counter("dppr_ondemand_cold_pushes_total",
				"Cold local pushes executed by the on-demand worker pool.", float64(od.ColdPushes)),
			counter("dppr_ondemand_cache_hits_total",
				"On-demand queries answered from the result cache.", float64(od.CacheHits)),
			counter("dppr_ondemand_cache_misses_total",
				"On-demand queries that missed the result cache.", float64(od.CacheMisses)),
			counter("dppr_ondemand_coalesced_total",
				"On-demand queries answered by an identical in-flight cold push.", float64(od.Coalesced)),
			counter("dppr_ondemand_budget_truncated_total",
				"Budgeted on-demand queries stopped by their latency budget.", float64(od.BudgetTruncated)),
			gauge("dppr_ondemand_cache_entries",
				"Entries resident in the on-demand result cache.", float64(od.CacheEntries)),
			gauge("dppr_ondemand_pool_workers",
				"Workers in the on-demand cold-push pool.", float64(od.PoolWorkers)),
			gauge("dppr_ondemand_pool_depth",
				"Cold pushes executing right now.", float64(od.PoolDepth)),
			counter("dppr_ondemand_walks_total",
				"Monte-Carlo refinement walks run by on-demand queries.", float64(od.Walks)),
			counter("dppr_ondemand_snapshot_builds_total",
				"CSR graph snapshots built for on-demand queries.", float64(od.SnapshotBuilds)),
			counter("dppr_ondemand_seconds_total",
				"Total time spent computing on-demand answers.", od.TotalLatency.Seconds()),
			gauge("dppr_ondemand_last_seconds",
				"Latency of the most recent on-demand answer.", od.LastLatency.Seconds()),
			gauge("dppr_ondemand_candidates",
				"Sources currently counted in the promotion admission cache.", float64(od.Candidates)),
			counter("dppr_promotions_total",
				"On-demand sources promoted into tracked state.", float64(od.Promotions)),
			counter("dppr_evictions_total",
				"Auto-promoted sources evicted to make room for hotter ones.", float64(od.Evictions)),
			gauge("dppr_auto_sources",
				"Currently tracked auto-promoted sources.", float64(od.AutoSources)),
		)
	}

	if p := st.Persistence; p != nil {
		state := 0.0
		switch p.State {
		case "degraded":
			state = 1
		case "failed":
			state = 2
		}
		failed := 0.0
		if p.State == "failed" {
			failed = 1
		}
		fams = append(fams,
			counter("dppr_wal_next_lsn",
				"Sequence number the next journaled mutation will receive.", float64(p.NextLSN)),
			gauge("dppr_checkpoint_last_lsn",
				"WAL sequence number covered by the most recent checkpoint.", float64(p.LastCheckpointLSN)),
			counter("dppr_checkpoints_total",
				"Completed checkpoints over the service's lifetime.", float64(p.Checkpoints)),
			gauge("dppr_persistence_state",
				"Durability state machine: 0 healthy, 1 degraded (writes shed, recovery probes running), 2 failed.", state),
			gauge("dppr_persistence_failed",
				"1 once persistence has failed permanently (mutations rejected until restart), else 0.", failed),
			counter("dppr_persistence_probe_attempts_total",
				"Recovery heal attempts (background probes and manual checkpoints while degraded).", float64(p.ProbeAttempts)),
			counter("dppr_persistence_probe_successes_total",
				"Recovery heals that returned persistence to healthy.", float64(p.ProbeSuccesses)),
			counter("dppr_persistence_degraded_seconds_total",
				"Cumulative time spent in the degraded state, the open window included.", p.DegradedSeconds),
		)
	}

	promexp.SortFamilies(fams)
	return fams
}

func counter(name, help string, v float64) promexp.Family {
	return promexp.Family{
		Name: name, Help: help, Type: promexp.Counter,
		Samples: []promexp.Sample{{Value: v}},
	}
}

func gauge(name, help string, v float64) promexp.Family {
	return promexp.Family{
		Name: name, Help: help, Type: promexp.Gauge,
		Samples: []promexp.Sample{{Value: v}},
	}
}
