package httpapi

import (
	"net"
	"net/http"
	"sync"
	"time"
)

// maxBuckets bounds the rate limiter's client table. When full, admitting a
// new client evicts the stalest bucket (the one whose tokens refilled
// longest ago), so a scan of spoofed client IDs cannot grow memory without
// bound — it can only recycle buckets, which for unseen clients is
// equivalent to a fresh full bucket anyway.
const maxBuckets = 4096

// rateLimiter is a per-client token bucket. Each client earns rate tokens
// per second up to burst; a request spends one token or is rejected with
// the time until the next token as the suggested retry delay.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time // last refill
}

// newRateLimiter returns nil when rate <= 0 (limiting disabled); a nil
// *rateLimiter admits everything.
func newRateLimiter(rate float64, burst int) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
	}
}

// allow spends one token of key's bucket. On rejection it returns the delay
// after which one token will be available.
func (rl *rateLimiter) allow(key string, now time.Time) (ok bool, retryAfter time.Duration) {
	if rl == nil {
		return true, 0
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()

	b, exists := rl.buckets[key]
	if !exists {
		if len(rl.buckets) >= maxBuckets {
			rl.evictStalest(now)
		}
		b = &bucket{tokens: rl.burst, last: now}
		rl.buckets[key] = b
	} else {
		elapsed := now.Sub(b.last).Seconds()
		if elapsed > 0 {
			b.tokens += elapsed * rl.rate
			if b.tokens > rl.burst {
				b.tokens = rl.burst
			}
			b.last = now
		}
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / rl.rate
	return false, time.Duration(need * float64(time.Second))
}

// evictStalest drops the bucket that refilled longest ago. Called with the
// lock held. Any fully-refilled bucket is indistinguishable from a fresh
// one, so evicting it loses no limiting state.
func (rl *rateLimiter) evictStalest(now time.Time) {
	var (
		victim string
		oldest time.Time
	)
	for k, b := range rl.buckets {
		if victim == "" || b.last.Before(oldest) {
			victim, oldest = k, b.last
			// A bucket idle for burst/rate seconds is already full; no
			// better victim exists, stop scanning.
			if now.Sub(oldest).Seconds()*rl.rate >= rl.burst {
				break
			}
		}
	}
	if victim != "" {
		delete(rl.buckets, victim)
	}
}

// clientKey identifies the client for rate limiting: the X-Client-ID header
// when present (lets load balancers and SDKs identify tenants behind shared
// NAT), otherwise the remote host without the ephemeral port.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return "id:" + id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return "addr:" + r.RemoteAddr
	}
	return "addr:" + host
}
