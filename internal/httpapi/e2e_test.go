package httpapi_test

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dynppr"
	"dynppr/internal/httpapi"
)

// TestHTTPAPIEndToEnd is the serving-layer acceptance test: a real TCP
// server on a loopback port, 64 concurrent reader goroutines driving the Go
// client, and one writer streaming sliding-window update batches through
// POST /edges while a churn goroutine adds and removes an extra tracked
// source. It asserts the remote serving contract end to end:
//
//   - every reader response is 2xx (readers only touch stable sources),
//   - every response was served from a converged snapshot,
//   - per source, the snapshot epoch never decreases across any one
//     client's successive reads,
//   - the final epoch equals 1 (cold start) + the number of effective
//     batches, i.e. no publication was lost or duplicated,
//   - graceful shutdown drains cleanly.
//
// The test is deliberately run in CI under -race: the interesting failures
// here are racy snapshot recycling and handler state sharing, not logic.
func TestHTTPAPIEndToEnd(t *testing.T) {
	const (
		readers   = 64
		slides    = 6
		slideSize = 80
		epsilon   = 1e-4
	)

	universe := testEdges(t, 300, 4000, 42)
	stream := dynppr.NewStream(universe, 43)
	window, initial := dynppr.NewSlidingWindow(stream, 0.25)
	g := dynppr.GraphFromEdges(initial)
	stable := g.TopDegreeVertices(4)

	so := dynppr.DefaultServiceOptions()
	so.Options.Epsilon = epsilon
	so.Options.Workers = 2
	so.PoolWorkers = 2
	svc, err := dynppr.NewService(g, stable, so)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	srv := httpapi.NewServer(svc, httpapi.ServerOptions{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	base := srv.URL()
	hc := &http.Client{Timeout: 30 * time.Second}

	var (
		stop       atomic.Bool
		served     atomic.Int64
		badStatus  atomic.Int64
		violations = make(chan string, readers)
	)
	violation := func(format string, args ...any) {
		select {
		case violations <- fmt.Sprintf(format, args...):
		default:
		}
	}

	var readerWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(id int) {
			defer readerWG.Done()
			client := httpapi.NewClient(base, hc)
			rng := rand.New(rand.NewSource(int64(id)))
			epochs := make(map[dynppr.VertexID]uint64, len(stable))
			check := func(m httpapi.SnapshotMeta) {
				if !m.Converged {
					violation("reader %d: source %d epoch %d not converged (residual %g)",
						id, m.Source, m.Epoch, m.MaxResidual)
				}
				if last, ok := epochs[m.Source]; ok && m.Epoch < last {
					violation("reader %d: source %d epoch went backwards %d -> %d",
						id, m.Source, last, m.Epoch)
				}
				epochs[m.Source] = m.Epoch
			}
			for !stop.Load() {
				src := stable[rng.Intn(len(stable))]
				var err error
				switch rng.Intn(3) {
				case 0:
					var top httpapi.TopKResult
					if top, err = client.TopK(src, 10); err == nil {
						check(top.Snapshot)
					}
				case 1:
					var est httpapi.EstimateResult
					if est, err = client.Estimate(src, dynppr.VertexID(rng.Intn(300))); err == nil {
						check(est.Snapshot)
					}
				default:
					var results []httpapi.QueryResult
					results, err = client.Query([]httpapi.Query{
						{Kind: httpapi.KindTopK, Source: src, K: 5},
						{Kind: httpapi.KindEstimate, Source: stable[rng.Intn(len(stable))],
							Vertex: dynppr.VertexID(rng.Intn(300))},
					})
					if err == nil {
						for _, res := range results {
							switch {
							case res.TopK != nil:
								check(res.TopK.Snapshot)
							case res.Estimate != nil:
								check(res.Estimate.Snapshot)
							default:
								violation("reader %d: inline query error: %s", id, res.Error)
							}
						}
					}
				}
				if err != nil {
					badStatus.Add(1)
					violation("reader %d: %v", id, err)
					return
				}
				served.Add(1)
			}
		}(r)
	}

	// Source churn rides along with the writer: live adds and removes must
	// never disturb readers of the stable sources.
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		client := httpapi.NewClient(base, hc)
		const extra = dynppr.VertexID(11)
		for i := 0; i < 3 && !stop.Load(); i++ {
			if _, err := client.UpdateSources([]dynppr.VertexID{extra}, nil); err != nil {
				violation("churn add: %v", err)
				return
			}
			if _, err := client.TopK(extra, 3); err != nil {
				violation("churn read: %v", err)
				return
			}
			if _, err := client.UpdateSources(nil, []dynppr.VertexID{extra}); err != nil {
				violation("churn remove: %v", err)
				return
			}
		}
	}()

	// The writer streams window slides through the API while reads are in
	// flight, counting the batches that actually changed the graph.
	writer := httpapi.NewClient(base, hc)
	effective := 0
	for i := 0; i < slides; i++ {
		batch := window.Slide(slideSize)
		if len(batch) == 0 {
			break
		}
		res, err := writer.ApplyEdges(httpapi.FromBatch(batch))
		if err != nil {
			t.Fatalf("writer slide %d: %v", i, err)
		}
		if res.Applied > 0 {
			effective++
		}
	}
	<-churnDone
	stop.Store(true)
	readerWG.Wait()

	if n := badStatus.Load(); n > 0 {
		t.Errorf("%d reader request(s) returned non-2xx or failed", n)
	}
	close(violations)
	for v := range violations {
		t.Error(v)
	}
	if served.Load() == 0 {
		t.Fatal("no reader queries completed")
	}
	t.Logf("served %d concurrent reads across %d readers over %d effective batches",
		served.Load(), readers, effective)

	// Publication accounting: cold start plus one epoch per effective batch.
	for _, src := range stable {
		info, err := writer.TopK(src, 1)
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(1 + effective); info.Snapshot.Epoch != want {
			t.Errorf("source %d: final epoch %d, want %d", src, info.Snapshot.Epoch, want)
		}
	}

	// Graceful shutdown: drain, then the port must refuse new requests
	// while the service itself is still queryable in-process.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := srv.Wait(); err != nil {
		t.Fatalf("serve loop: %v", err)
	}
	if err := httpapi.NewClient(base, hc).Health(); err == nil {
		t.Fatal("server still accepting requests after shutdown")
	}
	if _, err := svc.TopK(stable[0], 1); err != nil {
		t.Fatalf("service must outlive its server: %v", err)
	}
}
