package httpapi

import (
	"sync"
	"sync/atomic"
)

// flightGroup coalesces concurrent duplicate reads: while one call for a key
// is in flight, later calls for the same key wait for its result instead of
// re-running fn. This is the classic singleflight pattern, reimplemented
// here because the serving layer takes no external dependencies.
//
// Coalescing is safe for /topk precisely because reads are served from
// immutable converged snapshots: two requests that coalesce observe the same
// snapshot they could each have read independently, so sharing the result
// never weakens the consistency contract (the shared response carries the
// snapshot epoch either caller would have seen at that instant).
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	wg sync.WaitGroup
	// waiters counts callers sharing this flight's result; it lets tests
	// (and debugging) observe that a join actually happened.
	waiters atomic.Int32
	val     any
	err     error
}

// do runs fn for key, deduplicating against concurrent calls with the same
// key. shared reports whether the result came from another caller's flight.
func (g *flightGroup) do(key string, fn func() (any, error)) (val any, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		c.waiters.Add(1)
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, true, c.err
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	c.wg.Done()
	return c.val, false, c.err
}

// inFlightWaiters reports how many callers are currently waiting to share
// key's in-flight result; 0 when no call for key is in flight.
func (g *flightGroup) inFlightWaiters(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return int(c.waiters.Load())
	}
	return 0
}
