package httpapi_test

// End-to-end degraded-mode serving: a persistent service behind the HTTP
// handler takes a scripted storage fault; the write path must shed with
// 503 + Retry-After (derived from the next recovery probe), reads and
// /healthz must keep serving, the state must be visible in /stats and
// /metrics, and the stack must heal — by background probe or by a manual
// /checkpoint — without a restart.

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"dynppr"
	"dynppr/internal/faultfs"
	"dynppr/internal/httpapi"
)

// newDegradedAPI boots a small persistent service through a fault injector
// and serves it over httptest.
func newDegradedAPI(t *testing.T, probeBackoff time.Duration) (*httptest.Server, *httpapi.Client, *faultfs.Injector) {
	t.Helper()
	edges, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Name: "degraded-e2e", Model: dynppr.ModelRMAT, Vertices: 200, Edges: 1500, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := dynppr.GraphFromEdges(edges)
	sources := g.TopDegreeVertices(2)

	so := dynppr.DefaultServiceOptions()
	so.Options.Engine = dynppr.EngineDeterministic
	so.Options.Epsilon = 1e-4

	in := faultfs.NewInjector(faultfs.OS)
	svc, err := dynppr.NewPersistentService(g, sources, so, dynppr.PersistOptions{
		Dir:          filepath.Join(t.TempDir(), "data"),
		Sync:         dynppr.SyncAlways,
		FS:           in,
		ProbeBackoff: probeBackoff,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(httpapi.NewHandler(svc))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts, httpapi.NewClient(ts.URL, nil), in
}

func healthzBody(t *testing.T, ts *httptest.Server) (int, httpapi.HealthResponse) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr httpapi.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil && resp.StatusCode == http.StatusOK {
		t.Fatal(err)
	}
	return resp.StatusCode, hr
}

func oneInsert(u, v dynppr.VertexID) []httpapi.Update {
	return []httpapi.Update{{U: u, V: v, Op: httpapi.OpInsert}}
}

// TestDegradedWritePath503 pins the degraded-mode HTTP contract with the
// probe parked far in the future: writes shed 503 with a Retry-After the
// client can act on, reads and liveness keep serving, observability exposes
// the state, and a manual /checkpoint heals immediately.
func TestDegradedWritePath503(t *testing.T) {
	ts, client, in := newDegradedAPI(t, time.Hour)

	if _, err := client.ApplyEdges(oneInsert(0, 199)); err != nil {
		t.Fatalf("baseline write: %v", err)
	}

	in.Add(faultfs.Rule{Op: faultfs.OpWrite, Path: "wal"})
	_, err := client.ApplyEdges(oneInsert(1, 198))
	if err == nil {
		t.Fatal("write under storage fault succeeded")
	}
	if !httpapi.IsDegraded(err) {
		t.Fatalf("write rejection is not a degraded 503 with Retry-After: %v", err)
	}
	var ae *httpapi.APIError
	if !asAPIError(err, &ae) {
		t.Fatalf("not an APIError: %v", err)
	}
	if ae.RetryAfter < time.Second || ae.RetryAfter > 60*time.Second {
		t.Fatalf("Retry-After %v outside the [1s, 60s] clamp", ae.RetryAfter)
	}
	if !strings.Contains(ae.Message, "degraded") {
		t.Fatalf("error envelope does not say degraded: %q", ae.Message)
	}

	// Liveness and reads survive a degraded write path.
	status, hr := healthzBody(t, ts)
	if status != http.StatusOK {
		t.Fatalf("healthz %d while degraded, want 200 (reads still serve)", status)
	}
	if hr.Persistence != "degraded" {
		t.Fatalf("healthz persistence %q, want degraded", hr.Persistence)
	}
	sources, err := client.Sources()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.TopK(sources[0], 5); err != nil {
		t.Fatalf("read while degraded: %v", err)
	}

	// Observability: /stats and /metrics expose the state machine.
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	p := st.Service.Persistence
	if p == nil || p.State != "degraded" {
		t.Fatalf("stats persistence %+v, want state degraded", p)
	}
	if p.NextProbeMillis <= 0 {
		t.Fatal("stats do not expose the pending probe time")
	}
	metrics, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, "dppr_persistence_state 1") {
		t.Fatal("metrics do not show dppr_persistence_state 1 while degraded")
	}

	// A manual checkpoint doubles as an immediate recovery probe.
	if _, err := client.Checkpoint(); err != nil {
		t.Fatalf("manual checkpoint heal: %v", err)
	}
	if _, hr := healthzBody(t, ts); hr.Persistence != "healthy" {
		t.Fatalf("healthz persistence %q after heal, want healthy", hr.Persistence)
	}
	if _, err := client.ApplyEdges(oneInsert(1, 198)); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	metrics, err = client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, "dppr_persistence_state 0") {
		t.Fatal("metrics do not return to dppr_persistence_state 0 after heal")
	}
	if !strings.Contains(metrics, "dppr_persistence_probe_successes_total 1") {
		t.Fatal("metrics do not count the successful heal")
	}
}

// TestDegradedSelfHealsThroughHTTP drives the retry loop a well-behaved
// client runs: keep re-offering the write until the background probe heals
// the storage stack.
func TestDegradedSelfHealsThroughHTTP(t *testing.T) {
	_, client, in := newDegradedAPI(t, 20*time.Millisecond)
	in.Add(faultfs.Rule{Op: faultfs.OpWrite, Path: "wal"})

	deadline := time.Now().Add(30 * time.Second)
	degraded := 0
	for {
		_, err := client.ApplyEdges(oneInsert(2, 197))
		if err == nil {
			break
		}
		if !httpapi.IsDegraded(err) {
			t.Fatalf("write failed non-degraded: %v", err)
		}
		degraded++
		if time.Now().After(deadline) {
			t.Fatal("server never healed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if degraded == 0 {
		t.Fatal("the scripted fault never produced a degraded rejection")
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	p := st.Service.Persistence
	if p.State != "healthy" || p.ProbeSuccesses < 1 {
		t.Fatalf("after self-heal: state %q, probe successes %d", p.State, p.ProbeSuccesses)
	}
	if p.DegradedSeconds <= 0 {
		t.Fatal("degraded window not accounted in stats")
	}
}

// TestFailedPersistence503 pins the terminal state: a permanent-class error
// fails persistence, writes shed 503 WITHOUT Retry-After (not retryable),
// /healthz flips to 503, but reads keep serving.
func TestFailedPersistence503(t *testing.T) {
	ts, client, in := newDegradedAPI(t, time.Hour)
	in.Add(faultfs.Rule{Op: faultfs.OpWrite, Path: "wal", Err: syscall.EROFS})

	_, err := client.ApplyEdges(oneInsert(3, 196))
	if err == nil {
		t.Fatal("write on read-only storage succeeded")
	}
	if httpapi.IsDegraded(err) {
		t.Fatalf("permanent failure classified as retryable degraded: %v", err)
	}
	var ae *httpapi.APIError
	if !asAPIError(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("want a plain 503, got %v", err)
	}

	status, _ := healthzBody(t, ts)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("healthz %d after permanent persistence failure, want 503", status)
	}
	sources, err := client.Sources()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.TopK(sources[0], 5); err != nil {
		t.Fatalf("read after permanent failure: %v", err)
	}
	if !strings.Contains(mustMetrics(t, client), "dppr_persistence_failed 1") {
		t.Fatal("metrics do not show dppr_persistence_failed 1")
	}
}

func asAPIError(err error, target **httpapi.APIError) bool {
	return errors.As(err, target)
}

func mustMetrics(t *testing.T, client *httpapi.Client) string {
	t.Helper()
	m, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	return m
}
