package httpapi_test

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dynppr"
	"dynppr/internal/httpapi"
	"dynppr/internal/power"
	"dynppr/internal/promexp"
)

// ringEdges is testEdges with a ring overlay, which keeps every vertex
// reachable: each cold query's push then does nontrivial work and advertises
// a positive epsilon, which the assertions below rely on.
func ringEdges(t *testing.T, n, m int, seed int64) []dynppr.Edge {
	t.Helper()
	edges := testEdges(t, n, m, seed)
	for v := 0; v < n; v++ {
		edges = append(edges, dynppr.Edge{U: dynppr.VertexID(v), V: dynppr.VertexID((v + 1) % n)})
	}
	return edges
}

// newOnDemandAPI builds a service with the given on-demand options behind an
// httptest server.
func newOnDemandAPI(t *testing.T, od dynppr.OnDemandOptions) (*dynppr.Service, []dynppr.VertexID, *httpapi.Client) {
	t.Helper()
	g := dynppr.GraphFromEdges(ringEdges(t, 120, 700, 7))
	sources := g.TopDegreeVertices(2)
	so := dynppr.DefaultServiceOptions()
	so.Options.Epsilon = 1e-5
	so.Options.Workers = 2
	so.PoolWorkers = 2
	so.OnDemand = od
	svc, err := dynppr.NewService(g, sources, so)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	ts := httptest.NewServer(httpapi.NewHandler(svc))
	t.Cleanup(ts.Close)
	return svc, sources, httpapi.NewClient(ts.URL, ts.Client())
}

// untrackedVertex picks a vertex that is not in sources.
func untrackedVertex(sources []dynppr.VertexID) dynppr.VertexID {
	for v := dynppr.VertexID(0); ; v++ {
		tracked := false
		for _, s := range sources {
			if s == v {
				tracked = true
				break
			}
		}
		if !tracked {
			return v
		}
	}
}

// TestUnknownSourceStatusTable is the 404-consistency table: with on-demand
// off, every read path answers an untracked source with a clean 404 (never a
// 500), inline batch results included; with on-demand on, the same requests
// succeed with approx answers carrying an error bound.
func TestUnknownSourceStatusTable(t *testing.T) {
	t.Run("ondemand-off", func(t *testing.T) {
		_, sources, client := newTestAPI(t, 2)
		missing := dynppr.VertexID(9999)

		if _, err := client.TopK(missing, 5); err == nil {
			t.Fatal("/topk for untracked source must fail with on-demand off")
		} else {
			wantStatus(t, err, http.StatusNotFound)
		}
		if _, err := client.Estimate(missing, 0); err == nil {
			t.Fatal("/estimate for untracked source must fail with on-demand off")
		} else {
			wantStatus(t, err, http.StatusNotFound)
		}
		results, err := client.Query([]httpapi.Query{
			{Kind: httpapi.KindTopK, Source: missing, K: 3},
			{Kind: httpapi.KindEstimate, Source: missing, Vertex: 1},
			{Kind: httpapi.KindTopK, Source: sources[0], K: 3},
			{Kind: "explode", Source: sources[0]},
		})
		if err != nil {
			t.Fatalf("batched query must not fail as a whole: %v", err)
		}
		for i, wantStatus := range map[int]int{0: http.StatusNotFound, 1: http.StatusNotFound, 3: http.StatusBadRequest} {
			if results[i].Error == "" || results[i].Status != wantStatus {
				t.Fatalf("batch result %d: want inline status %d, got %+v", i, wantStatus, results[i])
			}
		}
		if results[2].TopK == nil || results[2].Status != 0 || results[2].TopK.Approx {
			t.Fatalf("batch result 2 (tracked): %+v", results[2])
		}
	})

	t.Run("ondemand-on", func(t *testing.T) {
		_, sources, client := newOnDemandAPI(t, dynppr.OnDemandOptions{Enabled: true, Epsilon: 1e-4, Seed: 5})
		cold := untrackedVertex(sources)

		top, err := client.TopK(cold, 5)
		if err != nil {
			t.Fatalf("/topk for untracked source must succeed with on-demand on: %v", err)
		}
		if !top.Approx || top.Epsilon <= 0 || len(top.Results) != 5 {
			t.Fatalf("approx topk: %+v", top)
		}
		if top.Snapshot.Epoch != 0 || !top.Snapshot.Converged {
			t.Fatalf("approx snapshot meta: %+v", top.Snapshot)
		}
		est, err := client.Estimate(cold, 0)
		if err != nil {
			t.Fatalf("/estimate for untracked source: %v", err)
		}
		if !est.Approx || est.Epsilon <= 0 {
			t.Fatalf("approx estimate: %+v", est)
		}
		results, err := client.Query([]httpapi.Query{
			{Kind: httpapi.KindTopK, Source: cold, K: 3},
			{Kind: httpapi.KindEstimate, Source: cold, Vertex: 1},
			{Kind: httpapi.KindTopK, Source: sources[0], K: 3},
		})
		if err != nil {
			t.Fatal(err)
		}
		if results[0].TopK == nil || !results[0].TopK.Approx || results[0].Status != 0 {
			t.Fatalf("batch approx topk: %+v", results[0])
		}
		if results[1].Estimate == nil || !results[1].Estimate.Approx {
			t.Fatalf("batch approx estimate: %+v", results[1])
		}
		if results[2].TopK == nil || results[2].TopK.Approx {
			t.Fatalf("batch tracked topk: %+v", results[2])
		}
		// Exact-vertex requests never 500 either: a source beyond the graph
		// is an isolated vertex with an exact trivial answer — no walk can
		// reach it, and its own walk contributes exactly α = 0.15.
		far, err := client.TopK(100_000, 3)
		if err != nil {
			t.Fatalf("/topk far outside the graph: %v", err)
		}
		if !far.Approx || len(far.Results) != 1 || far.Results[0].Score != 0.15 {
			t.Fatalf("out-of-graph topk: %+v", far)
		}
	})
}

// TestHTTPOnDemandOracle is the acceptance check at the wire level: an
// untracked /topk answer's scores are within its advertised epsilon of the
// power-iteration reverse (contribution) oracle — the same quantity a
// tracked /topk serves.
func TestHTTPOnDemandOracle(t *testing.T) {
	svc, sources, client := newOnDemandAPI(t, dynppr.OnDemandOptions{
		Enabled: true, Epsilon: 1e-5, RefineWalks: 2000, Seed: 11,
	})
	_ = svc
	g := dynppr.GraphFromEdges(ringEdges(t, 120, 700, 7))
	cold := untrackedVertex(sources)
	oracle, err := power.Reverse(g.Snapshot(), cold, power.Options{
		Alpha: 0.15, Tolerance: 1e-12, MaxIterations: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	top, err := client.TopK(cold, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !top.Approx || top.Epsilon <= 0 {
		t.Fatalf("want approx answer with a bound, got %+v", top)
	}
	for _, vs := range top.Results {
		if diff := math.Abs(vs.Score - oracle[vs.Vertex]); diff > top.Epsilon+1e-12 {
			t.Fatalf("vertex %d: |%g - %g| = %g exceeds advertised epsilon %g",
				vs.Vertex, vs.Score, oracle[vs.Vertex], diff, top.Epsilon)
		}
	}
}

// TestHTTPOnDemandPromotionMetrics drives the promotion funnel over HTTP and
// checks it is observable: the promoted source appears in /stats sources,
// later reads take the exact path, and the new promexp families expose the
// counters.
func TestHTTPOnDemandPromotionMetrics(t *testing.T) {
	_, sources, client := newOnDemandAPI(t, dynppr.OnDemandOptions{
		Enabled: true, Epsilon: 1e-3, PromoteAfter: 3, MaxAutoSources: 4, Seed: 2,
	})
	cold := untrackedVertex(sources)
	for i := 0; i < 3; i++ {
		if _, err := client.TopK(cold, 5); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	tracked, err := client.Sources()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range tracked {
		found = found || s == cold
	}
	if !found {
		t.Fatalf("source %d missing from /sources after %d queries: %v", cold, 3, tracked)
	}
	// Subsequent reads use the exact tracked path.
	top, err := client.TopK(cold, 5)
	if err != nil {
		t.Fatal(err)
	}
	if top.Approx || top.Snapshot.Epoch == 0 {
		t.Fatalf("post-promotion read still approximate: %+v", top)
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	od := st.Service.OnDemand
	if od == nil || od.Promotions != 1 || od.Queries != 3 || od.AutoSources != 1 {
		t.Fatalf("on-demand stats: %+v", od)
	}
	text, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	fams, err := promexp.ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("metrics do not parse: %v", err)
	}
	byName := map[string]promexp.Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	for name, want := range map[string]float64{
		"dppr_ondemand_queries_total": 3,
		"dppr_promotions_total":       1,
		"dppr_evictions_total":        0,
		"dppr_auto_sources":           1,
	} {
		f, ok := byName[name]
		if !ok {
			t.Fatalf("family %s missing from /metrics", name)
		}
		if len(f.Samples) != 1 || f.Samples[0].Value != want {
			t.Fatalf("family %s: want %g, got %+v", name, want, f.Samples)
		}
	}
	for _, name := range []string{
		"dppr_ondemand_walks_total", "dppr_ondemand_snapshot_builds_total",
		"dppr_ondemand_seconds_total", "dppr_ondemand_last_seconds", "dppr_ondemand_candidates",
	} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("family %s missing from /metrics", name)
		}
	}
}

// TestHTTPOnDemandBudgetAndCache exercises the concurrency-tier wire
// surface: the cached flag on repeat reads, the budget_ms knob on /topk,
// /estimate and batched /query, parameter validation, and the new stats
// fields and metric families.
func TestHTTPOnDemandBudgetAndCache(t *testing.T) {
	_, sources, client := newOnDemandAPI(t, dynppr.OnDemandOptions{
		Enabled: true, Epsilon: 1e-4, Seed: 9,
	})
	cold := untrackedVertex(sources)

	first, err := client.TopK(cold, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Approx || first.Cached {
		t.Fatalf("first cold read: %+v", first)
	}
	repeat, err := client.TopK(cold, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !repeat.Cached {
		t.Fatalf("repeat cold read not served from cache: %+v", repeat)
	}
	for i := range first.Results {
		if first.Results[i] != repeat.Results[i] {
			t.Fatalf("cached result %d diverged: %+v vs %+v", i, repeat.Results[i], first.Results[i])
		}
	}

	// A generous budget refines past the configured coarse ε (the unbudgeted
	// cached entry is not reused for a budgeted read).
	deep, err := client.TopKBudget(cold, 8, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !deep.Approx || deep.Truncated || deep.Epsilon >= first.Epsilon {
		t.Fatalf("budgeted read did not refine: eps %g (coarse %g), %+v", deep.Epsilon, first.Epsilon, deep)
	}
	if _, err := client.EstimateBudget(cold, 0, time.Minute); err != nil {
		t.Fatalf("budgeted estimate: %v", err)
	}

	// Parameter validation: non-numeric and negative budgets are 400s.
	for _, bad := range []string{"abc", "-5"} {
		resp, err := http.Get(client.BaseURL() + "/topk?source=1&budget_ms=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("budget_ms=%s: status %d, want 400", bad, resp.StatusCode)
		}
	}

	// Batched queries carry per-query budgets; a negative one fails inline.
	results, err := client.Query([]httpapi.Query{
		{Kind: httpapi.KindTopK, Source: cold, K: 4, BudgetMS: 60_000},
		{Kind: httpapi.KindEstimate, Source: cold, Vertex: 1},
		{Kind: httpapi.KindTopK, Source: cold, K: 4, BudgetMS: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].TopK == nil || !results[0].TopK.Approx || results[0].TopK.Epsilon >= first.Epsilon {
		t.Fatalf("batched budgeted topk: %+v", results[0])
	}
	if results[1].Estimate == nil || !results[1].Estimate.Approx {
		t.Fatalf("batched estimate: %+v", results[1])
	}
	if results[2].Error == "" || results[2].Status != http.StatusBadRequest {
		t.Fatalf("negative batched budget: %+v", results[2])
	}

	// The new stats fields and metric families are populated.
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	od := st.Service.OnDemand
	if od == nil || od.ColdPushes == 0 || od.CacheHits == 0 || od.CacheCapacity == 0 ||
		od.CacheEntries == 0 || od.PoolWorkers <= 0 {
		t.Fatalf("on-demand concurrency stats not populated: %+v", od)
	}
	text, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	fams, err := promexp.ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("metrics do not parse: %v", err)
	}
	byName := map[string]bool{}
	for _, f := range fams {
		byName[f.Name] = true
	}
	for _, name := range []string{
		"dppr_ondemand_cold_pushes_total", "dppr_ondemand_cache_hits_total",
		"dppr_ondemand_cache_misses_total", "dppr_ondemand_coalesced_total",
		"dppr_ondemand_budget_truncated_total", "dppr_ondemand_cache_entries",
		"dppr_ondemand_pool_workers", "dppr_ondemand_pool_depth",
	} {
		if !byName[name] {
			t.Fatalf("family %s missing from /metrics", name)
		}
	}
}
