package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"dynppr"
	"dynppr/internal/promexp"
)

// maxBodyBytes bounds request bodies: a 1 MiB JSON body holds ~30k edge
// updates, far beyond the batch sizes the write pipeline is tuned for.
const maxBodyBytes = 1 << 20

// maxTopK caps the k accepted by /topk and batched topk queries. Rankings
// are materialized per request, so an absurd k is a memory-amplification
// vector; real rankings are tens of entries.
const maxTopK = 1024

// defaultTopK is the ranking length when the k parameter is omitted.
const defaultTopK = 10

// HandlerOptions configure the traffic-management behavior of a Handler.
// The zero value is a production-safe default: admission bounded at one
// second, read coalescing on, /metrics exported, rate limiting and pprof
// off.
type HandlerOptions struct {
	// RateLimit is the sustained per-client request rate (requests/second)
	// across the data-plane endpoints; 0 disables rate limiting. Clients
	// are keyed by the X-Client-ID header when present, else by remote
	// host. /healthz, /stats, /metrics and /debug/pprof are never limited.
	RateLimit float64
	// RateBurst is the token-bucket burst size; <= 0 selects 16.
	RateBurst int
	// AdmissionTimeout bounds how long a write request waits for a slot in
	// the pipeline's bounded queue before being shed with 429. The timeout
	// covers admission only — once a mutation is accepted (and journaled)
	// it always runs to completion, so a 429 guarantees the batch had no
	// effect. <= 0 selects one second.
	AdmissionTimeout time.Duration
	// DisableCoalesce turns off deduplication of identical concurrent
	// /topk reads.
	DisableCoalesce bool
	// DefaultBudget is the per-query latency budget applied to on-demand
	// (untracked-source) reads that do not carry their own budget_ms
	// parameter. Zero leaves them unbudgeted (they run to the configured
	// on-demand ε). The budget bounds compute only — a truncated answer is
	// still sound within the error bound it reports.
	DefaultBudget time.Duration
	// DisableMetrics removes the GET /metrics Prometheus endpoint.
	DisableMetrics bool
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiles expose internals and burn CPU, so operators opt in
	// (and should firewall the path).
	EnablePprof bool
}

func (o *HandlerOptions) fill() {
	if o.AdmissionTimeout <= 0 {
		o.AdmissionTimeout = time.Second
	}
	if o.RateBurst <= 0 {
		o.RateBurst = 16
	}
}

// Handler serves the HTTP/JSON API over one dynppr.Service. Routing:
//
//	GET  /healthz             liveness (503 once the service is closed)
//	GET  /stats               service + per-endpoint HTTP statistics
//	GET  /metrics             Prometheus text-format metrics
//	GET  /sources             tracked sources
//	POST /sources             add/remove tracked sources
//	GET  /topk?source=&k=     top-k ranking towards source
//	GET  /estimate?source=&v= single PPR estimate
//	POST /query               batched topk/estimate queries
//	POST /edges               edge-update batch
//	POST /checkpoint          admin: checkpoint the service's durable state
//	GET  /debug/pprof/...     runtime profiles (only with EnablePprof)
//
// Overload surfaces as 429 Too Many Requests with a Retry-After header:
// either the per-client rate limiter rejected the request, or the write
// pipeline's bounded queue stayed full past the admission timeout. The
// Handler is safe for concurrent use by the http.Server's connection
// goroutines because the Service read path is lock-free and its write path
// is serialized.
type Handler struct {
	svc     *dynppr.Service
	mux     *http.ServeMux
	metrics *Metrics
	opts    HandlerOptions
	limiter *rateLimiter
	flights flightGroup
}

// NewHandler builds the API handler over svc with default options. The
// caller keeps ownership of svc and is responsible for closing it.
func NewHandler(svc *dynppr.Service) *Handler {
	return NewHandlerOpts(svc, HandlerOptions{})
}

// NewHandlerOpts builds the API handler over svc with explicit
// traffic-management options.
func NewHandlerOpts(svc *dynppr.Service, opts HandlerOptions) *Handler {
	opts.fill()
	h := &Handler{
		svc:  svc,
		mux:  http.NewServeMux(),
		opts: opts,
		metrics: newMetrics(
			"/healthz", "/stats", "/sources", "/topk", "/estimate", "/query", "/edges", "/checkpoint",
		),
		limiter: newRateLimiter(opts.RateLimit, opts.RateBurst),
	}
	h.route("/healthz", http.MethodGet, false, h.handleHealthz)
	h.route("/stats", http.MethodGet, false, h.handleStats)
	h.route("/sources", "", true, h.handleSources)
	h.route("/topk", http.MethodGet, true, h.handleTopK)
	h.route("/estimate", http.MethodGet, true, h.handleEstimate)
	h.route("/query", http.MethodPost, true, h.handleQuery)
	h.route("/edges", http.MethodPost, true, h.handleEdges)
	h.route("/checkpoint", http.MethodPost, true, h.handleCheckpoint)
	if !opts.DisableMetrics {
		h.mux.Handle("/metrics", promexp.Handler(h.gather))
	}
	if opts.EnablePprof {
		h.mux.HandleFunc("/debug/pprof/", pprof.Index)
		h.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		h.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		h.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		h.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// Metrics returns the handler's per-endpoint counters.
func (h *Handler) Metrics() *Metrics { return h.metrics }

// apiError carries an HTTP status with a message through the handler
// helpers; retryAfter, when set, overrides the Retry-After suggestion on a
// 429.
type apiError struct {
	status     int
	msg        string
	retryAfter time.Duration
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// errorStatus maps an error to its response status.
func errorStatus(err error) int {
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		return ae.status
	case errors.Is(err, dynppr.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, dynppr.ErrUnknownSource):
		return http.StatusNotFound
	case errors.Is(err, dynppr.ErrServiceClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, dynppr.ErrPersistenceDegraded),
		errors.Is(err, dynppr.ErrPersistenceFailed):
		// Storage trouble, not client error: 503 tells load balancers and
		// retrying clients the service (not the request) is the problem.
		// Degraded rejections additionally carry a Retry-After derived from
		// the next recovery probe (see retryAfter).
		return http.StatusServiceUnavailable
	case errors.Is(err, dynppr.ErrNoPersistence):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

// retryAfter suggests how long a shed client should back off. A rate
// limiter rejection carries the exact token-refill delay; a degraded-mode
// write rejection backs off until just past the next recovery probe; an
// overload rejection estimates the queue's drain time from its depth and
// the recent pipeline latency.
func (h *Handler) retryAfter(err error) time.Duration {
	var ae *apiError
	if errors.As(err, &ae) && ae.retryAfter > 0 {
		return ae.retryAfter
	}
	if errors.Is(err, dynppr.ErrPersistenceDegraded) {
		d := time.Second
		if ph, ok := h.svc.PersistenceHealth(); ok && ph.NextProbe > d {
			d = ph.NextProbe
		}
		if d > 60*time.Second {
			d = 60 * time.Second
		}
		return d
	}
	q := h.svc.Queue()
	lat := q.LastBatchLatency
	if lat <= 0 {
		lat = q.AvgBatchLatency
	}
	if lat <= 0 {
		lat = 50 * time.Millisecond
	}
	d := lat * time.Duration(q.Depth+1)
	if d < time.Second {
		d = time.Second
	}
	if d > 60*time.Second {
		d = 60 * time.Second
	}
	return d
}

// retryAfterHeader formats a backoff duration as whole seconds, rounded up
// (Retry-After carries integral seconds; 0 would invite an instant retry).
func retryAfterHeader(d time.Duration) string {
	return strconv.Itoa(int(math.Ceil(d.Seconds())))
}

// route registers an endpoint that answers with JSON, wrapping it with
// method filtering, per-client rate limiting (for limited endpoints),
// timing and error accounting. An empty method admits any (the endpoint
// dispatches internally).
func (h *Handler) route(path, method string, limited bool, fn func(*http.Request) (any, error)) {
	h.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		var (
			body   any
			err    error
			status = http.StatusOK
		)
		switch {
		case method != "" && r.Method != method:
			status = http.StatusMethodNotAllowed
			err = fmt.Errorf("method %s not allowed on %s", r.Method, path)
			w.Header().Set("Allow", method)
		case limited && h.limiter != nil && !h.admitClient(r, start, &err):
			status = errorStatus(err)
		default:
			r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
			body, err = fn(r)
			if err != nil {
				status = errorStatus(err)
				if errors.Is(err, dynppr.ErrOverloaded) {
					h.metrics.shed.Add(1)
				}
			}
		}
		if err != nil {
			if status == http.StatusTooManyRequests || errors.Is(err, dynppr.ErrPersistenceDegraded) {
				w.Header().Set("Retry-After", retryAfterHeader(h.retryAfter(err)))
			}
			body = ErrorResponse{Error: err.Error()}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		// The status line is already committed; an encode failure here can
		// only mean the connection is gone.
		_ = json.NewEncoder(w).Encode(body)
		h.metrics.Observe(path, time.Since(start), status >= 400)
	})
}

// admitClient spends one rate-limit token for the request's client. On
// rejection it stores the 429 into *errp and reports false.
func (h *Handler) admitClient(r *http.Request, now time.Time, errp *error) bool {
	ok, wait := h.limiter.allow(clientKey(r), now)
	if ok {
		return true
	}
	h.metrics.rateLimited.Add(1)
	*errp = &apiError{
		status:     http.StatusTooManyRequests,
		msg:        "rate limit exceeded for this client",
		retryAfter: wait,
	}
	return false
}

// admissionCtx bounds how long a write may wait for pipeline admission.
// The deadline is enforced before the mutation enters the pipeline (and
// thus before it is journaled), never after: a request that times out here
// is guaranteed to have had no effect, so clients can retry a 429 freely.
func (h *Handler) admissionCtx(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), h.opts.AdmissionTimeout)
}

func decodeBody(r *http.Request, into any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return badRequest("bad request body: %v", err)
	}
	return nil
}

func parseVertex(r *http.Request, key string) (dynppr.VertexID, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return 0, badRequest("missing query parameter %q", key)
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil || v < 0 {
		return 0, badRequest("bad vertex id %q for %q", raw, key)
	}
	return dynppr.VertexID(v), nil
}

// parseK reads the k query parameter: absent selects defaultTopK;
// non-numeric is a 400 here and out-of-range values are rejected by topK so
// the same bounds govern /topk and batched /query reads.
func parseK(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("k")
	if raw == "" {
		return defaultTopK, nil
	}
	k, err := strconv.Atoi(raw)
	if err != nil {
		return 0, badRequest("bad k %q: not an integer", raw)
	}
	return k, nil
}

// parseBudget reads the budget_ms query parameter: absent selects the
// handler's DefaultBudget, an explicit 0 disables budgeting for this
// request, and negative or non-numeric values are a 400.
func (h *Handler) parseBudget(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("budget_ms")
	if raw == "" {
		return h.opts.DefaultBudget, nil
	}
	ms, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || ms < 0 {
		return 0, badRequest("bad budget_ms %q: want a non-negative integer", raw)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

// handleHealthz is the load-balancer drain signal: 503 once the service is
// closed or persistence has failed permanently. A *degraded* service stays
// 200 — reads are still served correctly and the state heals itself — but
// the response surfaces the persistence state so operators and probes can
// see the episode.
func (h *Handler) handleHealthz(*http.Request) (any, error) {
	if h.svc.Closed() {
		return nil, &apiError{status: http.StatusServiceUnavailable, msg: "service is closed"}
	}
	resp := HealthResponse{Status: "ok"}
	if ph, ok := h.svc.PersistenceHealth(); ok {
		resp.Persistence = ph.State.String()
		if ph.State == dynppr.PersistFailed {
			return nil, &apiError{
				status: http.StatusServiceUnavailable,
				msg:    "persistence failed permanently: " + ph.Err,
			}
		}
	}
	return resp, nil
}

func (h *Handler) handleStats(*http.Request) (any, error) {
	return StatsResponse{
		Service:  serviceStats(h.svc.Stats()),
		HTTP:     h.metrics.Snapshot(),
		Overload: h.metrics.Overload(),
	}, nil
}

func (h *Handler) handleSources(r *http.Request) (any, error) {
	switch r.Method {
	case http.MethodGet:
		return SourcesResponse{Sources: h.svc.Sources()}, nil
	case http.MethodPost:
		var req SourcesRequest
		if err := decodeBody(r, &req); err != nil {
			return nil, err
		}
		if len(req.Add) == 0 && len(req.Remove) == 0 {
			return nil, badRequest("empty sources request: nothing to add or remove")
		}
		// Validate the whole batch against the current source table before
		// applying anything, so a rejected request leaves state untouched
		// and is safe to retry. (A concurrent /sources writer can still
		// invalidate the batch between check and apply; that residual race
		// surfaces as the per-call error below.)
		tracked := make(map[dynppr.VertexID]bool)
		for _, s := range h.svc.Sources() {
			tracked[s] = true
		}
		for _, s := range req.Add {
			if s < 0 {
				return nil, badRequest("negative source id %d", s)
			}
			if tracked[s] {
				return nil, &apiError{
					status: http.StatusConflict,
					msg:    fmt.Sprintf("source %d is already tracked", s),
				}
			}
			tracked[s] = true
		}
		for _, s := range req.Remove {
			if !tracked[s] {
				return nil, fmt.Errorf("%w: %d", dynppr.ErrUnknownSource, s)
			}
			delete(tracked, s)
		}
		ctx, cancel := h.admissionCtx(r)
		defer cancel()
		for _, s := range req.Add {
			if err := h.svc.AddSourceCtx(ctx, s); err != nil {
				if errors.Is(err, dynppr.ErrServiceClosed) || errors.Is(err, dynppr.ErrOverloaded) {
					return nil, err
				}
				return nil, &apiError{status: http.StatusConflict, msg: err.Error()}
			}
		}
		for _, s := range req.Remove {
			if err := h.svc.RemoveSourceCtx(ctx, s); err != nil {
				return nil, err
			}
		}
		return SourcesResponse{Sources: h.svc.Sources()}, nil
	default:
		return nil, &apiError{
			status: http.StatusMethodNotAllowed,
			msg:    fmt.Sprintf("method %s not allowed on /sources", r.Method),
		}
	}
}

// topK serves one ranking read through the service's unified query path: a
// tracked source reads its converged snapshot, an untracked one falls back
// to the on-demand approximate path when the service has it enabled (the
// response then carries approx: true and the achieved error bound) and to a
// 404 otherwise. ctx bounds only the pipeline admission an on-demand answer
// may need (snapshot refresh, promotion); tracked reads never block on it.
func (h *Handler) topK(ctx context.Context, source dynppr.VertexID, k int, budget time.Duration) (*TopKResult, error) {
	if k <= 0 {
		return nil, badRequest("k must be positive, got %d", k)
	}
	if k > maxTopK {
		return nil, badRequest("k %d exceeds the maximum %d", k, maxTopK)
	}
	top, qi, err := h.svc.QueryTopKOpts(ctx, source, k, dynppr.QueryOptions{Budget: budget})
	if err != nil {
		return nil, err
	}
	res := &TopKResult{Snapshot: snapshotMeta(qi.Snapshot), K: k, Results: make([]VertexScore, len(top))}
	for i, vs := range top {
		res.Results[i] = VertexScore{Vertex: vs.Vertex, Score: vs.Score}
	}
	if qi.Approx {
		res.Approx = true
		res.Epsilon = qi.Epsilon
		res.Cached = qi.Cached
		res.Truncated = qi.Truncated
	}
	return res, nil
}

// estimate follows the same unified path as topK.
func (h *Handler) estimate(ctx context.Context, source, v dynppr.VertexID, budget time.Duration) (*EstimateResult, error) {
	est, qi, err := h.svc.QueryEstimateOpts(ctx, source, v, dynppr.QueryOptions{Budget: budget})
	if err != nil {
		return nil, err
	}
	res := &EstimateResult{Snapshot: snapshotMeta(qi.Snapshot), Vertex: v, Score: est}
	if qi.Approx {
		res.Approx = true
		res.Epsilon = qi.Epsilon
		res.Cached = qi.Cached
		res.Truncated = qi.Truncated
	}
	return res, nil
}

// handleTopK answers one ranking read. Identical concurrent requests (same
// source and k) are coalesced into one snapshot read: reads are served from
// immutable converged snapshots, so every coalesced caller receives a
// response it could have produced itself, snapshot metadata included.
func (h *Handler) handleTopK(r *http.Request) (any, error) {
	source, err := parseVertex(r, "source")
	if err != nil {
		return nil, err
	}
	k, err := parseK(r)
	if err != nil {
		return nil, err
	}
	budget, err := h.parseBudget(r)
	if err != nil {
		return nil, err
	}
	ctx, cancel := h.admissionCtx(r)
	defer cancel()
	if h.opts.DisableCoalesce {
		return h.topK(ctx, source, k, budget)
	}
	// The budget is part of the coalescing key: budgeted and unbudgeted
	// requests may legitimately receive different (both sound) answers.
	key := strconv.Itoa(int(source)) + "/" + strconv.Itoa(k) + "/" + strconv.FormatInt(int64(budget), 10)
	val, shared, err := h.flights.do(key, func() (any, error) {
		return h.topK(ctx, source, k, budget)
	})
	if shared {
		h.metrics.coalesced.Add(1)
	}
	return val, err
}

func (h *Handler) handleEstimate(r *http.Request) (any, error) {
	source, err := parseVertex(r, "source")
	if err != nil {
		return nil, err
	}
	v, err := parseVertex(r, "v")
	if err != nil {
		return nil, err
	}
	budget, err := h.parseBudget(r)
	if err != nil {
		return nil, err
	}
	ctx, cancel := h.admissionCtx(r)
	defer cancel()
	return h.estimate(ctx, source, v, budget)
}

// handleQuery answers a batch of reads in one round trip. The batch is not a
// transaction: each query reads its source's current snapshot independently,
// and per-query failures (e.g. an untracked source) are reported inline so
// one bad query cannot fail the batch.
func (h *Handler) handleQuery(r *http.Request) (any, error) {
	var req QueryRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if len(req.Queries) == 0 {
		return nil, badRequest("empty query batch")
	}
	ctx, cancel := h.admissionCtx(r)
	defer cancel()
	resp := QueryResponse{Results: make([]QueryResult, len(req.Queries))}
	for i, q := range req.Queries {
		var res QueryResult
		// A positive BudgetMS overrides the handler default; the JSON zero
		// value cannot express "explicitly unbudgeted" for batched queries.
		budget := h.opts.DefaultBudget
		if q.BudgetMS > 0 {
			budget = time.Duration(q.BudgetMS) * time.Millisecond
		}
		switch {
		case q.BudgetMS < 0:
			res.Error = fmt.Sprintf("negative budget_ms %d", q.BudgetMS)
			res.Status = http.StatusBadRequest
		case q.Kind == KindTopK:
			k := q.K
			if k == 0 {
				k = defaultTopK
			}
			top, err := h.topK(ctx, q.Source, k, budget)
			if err != nil {
				res.Error = err.Error()
				res.Status = errorStatus(err)
			} else {
				res.TopK = top
			}
		case q.Kind == KindEstimate:
			est, err := h.estimate(ctx, q.Source, q.Vertex, budget)
			if err != nil {
				res.Error = err.Error()
				res.Status = errorStatus(err)
			} else {
				res.Estimate = est
			}
		default:
			res.Error = fmt.Sprintf("unknown query kind %q (want %q or %q)", q.Kind, KindTopK, KindEstimate)
			res.Status = http.StatusBadRequest
		}
		resp.Results[i] = res
	}
	return resp, nil
}

// handleCheckpoint serializes the service's durable state on demand. It is
// the admin hook operators (or a cron job) hit to bound WAL replay length;
// the periodic -checkpoint-every ticker of dppr-httpd calls the same
// Service method. A service without a data directory answers 409.
func (h *Handler) handleCheckpoint(*http.Request) (any, error) {
	lsn, err := h.svc.Checkpoint()
	if err != nil {
		return nil, err
	}
	return CheckpointResponse{LSN: lsn}, nil
}

// handleEdges applies one edge-update batch. The admission deadline bounds
// only the wait for a pipeline slot: a 429 means the batch was never
// admitted (and never journaled), while an admitted batch always runs to
// completion and is acknowledged with its result. Together with the graph's
// set semantics — duplicate inserts and missing deletes are skipped — this
// makes retrying any non-2xx response safe: a batch can never be applied
// one-and-a-half times.
func (h *Handler) handleEdges(r *http.Request) (any, error) {
	var req EdgesRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if len(req.Updates) == 0 {
		return nil, badRequest("empty edge batch")
	}
	batch := make(dynppr.Batch, len(req.Updates))
	for i, u := range req.Updates {
		up, err := u.ToUpdate()
		if err != nil {
			return nil, badRequest("update %d: %v", i, err)
		}
		batch[i] = up
	}
	ctx, cancel := h.admissionCtx(r)
	defer cancel()
	res, err := h.svc.ApplyBatchCtx(ctx, batch)
	if err != nil {
		return nil, err
	}
	return EdgesResponse{
		Applied:       res.Applied,
		Skipped:       res.Skipped,
		LatencyMicros: res.Latency.Microseconds(),
		Pushes:        res.Pushes,
	}, nil
}
