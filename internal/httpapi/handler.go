package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"dynppr"
)

// maxBodyBytes bounds request bodies: a 1 MiB JSON body holds ~30k edge
// updates, far beyond the batch sizes the write pipeline is tuned for.
const maxBodyBytes = 1 << 20

// Handler serves the HTTP/JSON API over one dynppr.Service. Routing:
//
//	GET  /healthz             liveness (503 once the service is closed)
//	GET  /stats               service + per-endpoint HTTP statistics
//	GET  /sources             tracked sources
//	POST /sources             add/remove tracked sources
//	GET  /topk?source=&k=     top-k ranking towards source
//	GET  /estimate?source=&v= single PPR estimate
//	POST /query               batched topk/estimate queries
//	POST /edges               edge-update batch
//	POST /checkpoint          admin: checkpoint the service's durable state
//
// The Handler itself is stateless beyond its metrics; it is safe for
// concurrent use by the http.Server's connection goroutines because the
// Service read path is lock-free and its write path is serialized.
type Handler struct {
	svc     *dynppr.Service
	mux     *http.ServeMux
	metrics *Metrics
}

// NewHandler builds the API handler over svc. The caller keeps ownership of
// svc and is responsible for closing it.
func NewHandler(svc *dynppr.Service) *Handler {
	h := &Handler{
		svc: svc,
		mux: http.NewServeMux(),
		metrics: newMetrics(
			"/healthz", "/stats", "/sources", "/topk", "/estimate", "/query", "/edges", "/checkpoint",
		),
	}
	h.route("/healthz", http.MethodGet, h.handleHealthz)
	h.route("/stats", http.MethodGet, h.handleStats)
	h.route("/sources", "", h.handleSources)
	h.route("/topk", http.MethodGet, h.handleTopK)
	h.route("/estimate", http.MethodGet, h.handleEstimate)
	h.route("/query", http.MethodPost, h.handleQuery)
	h.route("/edges", http.MethodPost, h.handleEdges)
	h.route("/checkpoint", http.MethodPost, h.handleCheckpoint)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// Metrics returns the handler's per-endpoint counters.
func (h *Handler) Metrics() *Metrics { return h.metrics }

// apiError carries an HTTP status with a message through the handler
// helpers.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// errorStatus maps an error to its response status.
func errorStatus(err error) int {
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		return ae.status
	case errors.Is(err, dynppr.ErrUnknownSource):
		return http.StatusNotFound
	case errors.Is(err, dynppr.ErrServiceClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, dynppr.ErrNoPersistence):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

// route registers an endpoint that answers with JSON, wrapping it with
// method filtering, timing and error accounting. An empty method admits any
// (the endpoint dispatches internally).
func (h *Handler) route(path, method string, fn func(*http.Request) (any, error)) {
	h.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		var (
			body   any
			err    error
			status = http.StatusOK
		)
		if method != "" && r.Method != method {
			status = http.StatusMethodNotAllowed
			err = fmt.Errorf("method %s not allowed on %s", r.Method, path)
			w.Header().Set("Allow", method)
		} else {
			r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
			body, err = fn(r)
			if err != nil {
				status = errorStatus(err)
			}
		}
		if err != nil {
			body = ErrorResponse{Error: err.Error()}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		// The status line is already committed; an encode failure here can
		// only mean the connection is gone.
		_ = json.NewEncoder(w).Encode(body)
		h.metrics.Observe(path, time.Since(start), status >= 400)
	})
}

func decodeBody(r *http.Request, into any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return badRequest("bad request body: %v", err)
	}
	return nil
}

func parseVertex(r *http.Request, key string) (dynppr.VertexID, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return 0, badRequest("missing query parameter %q", key)
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil || v < 0 {
		return 0, badRequest("bad vertex id %q for %q", raw, key)
	}
	return dynppr.VertexID(v), nil
}

func (h *Handler) handleHealthz(*http.Request) (any, error) {
	if h.svc.Closed() {
		return nil, &apiError{status: http.StatusServiceUnavailable, msg: "service is closed"}
	}
	return HealthResponse{Status: "ok"}, nil
}

func (h *Handler) handleStats(*http.Request) (any, error) {
	return StatsResponse{
		Service: serviceStats(h.svc.Stats()),
		HTTP:    h.metrics.Snapshot(),
	}, nil
}

func (h *Handler) handleSources(r *http.Request) (any, error) {
	switch r.Method {
	case http.MethodGet:
		return SourcesResponse{Sources: h.svc.Sources()}, nil
	case http.MethodPost:
		var req SourcesRequest
		if err := decodeBody(r, &req); err != nil {
			return nil, err
		}
		if len(req.Add) == 0 && len(req.Remove) == 0 {
			return nil, badRequest("empty sources request: nothing to add or remove")
		}
		// Validate the whole batch against the current source table before
		// applying anything, so a rejected request leaves state untouched
		// and is safe to retry. (A concurrent /sources writer can still
		// invalidate the batch between check and apply; that residual race
		// surfaces as the per-call error below.)
		tracked := make(map[dynppr.VertexID]bool)
		for _, s := range h.svc.Sources() {
			tracked[s] = true
		}
		for _, s := range req.Add {
			if s < 0 {
				return nil, badRequest("negative source id %d", s)
			}
			if tracked[s] {
				return nil, &apiError{
					status: http.StatusConflict,
					msg:    fmt.Sprintf("source %d is already tracked", s),
				}
			}
			tracked[s] = true
		}
		for _, s := range req.Remove {
			if !tracked[s] {
				return nil, fmt.Errorf("%w: %d", dynppr.ErrUnknownSource, s)
			}
			delete(tracked, s)
		}
		for _, s := range req.Add {
			if err := h.svc.AddSource(s); err != nil {
				if errors.Is(err, dynppr.ErrServiceClosed) {
					return nil, err
				}
				return nil, &apiError{status: http.StatusConflict, msg: err.Error()}
			}
		}
		for _, s := range req.Remove {
			if err := h.svc.RemoveSource(s); err != nil {
				return nil, err
			}
		}
		return SourcesResponse{Sources: h.svc.Sources()}, nil
	default:
		return nil, &apiError{
			status: http.StatusMethodNotAllowed,
			msg:    fmt.Sprintf("method %s not allowed on /sources", r.Method),
		}
	}
}

func (h *Handler) topK(source dynppr.VertexID, k int) (*TopKResult, error) {
	if k < 0 {
		return nil, badRequest("k must be non-negative, got %d", k)
	}
	top, info, err := h.svc.TopKInfo(source, k)
	if err != nil {
		return nil, err
	}
	res := &TopKResult{Snapshot: snapshotMeta(info), K: k, Results: make([]VertexScore, len(top))}
	for i, vs := range top {
		res.Results[i] = VertexScore{Vertex: vs.Vertex, Score: vs.Score}
	}
	return res, nil
}

func (h *Handler) estimate(source, v dynppr.VertexID) (*EstimateResult, error) {
	est, info, err := h.svc.EstimateInfo(source, v)
	if err != nil {
		return nil, err
	}
	return &EstimateResult{Snapshot: snapshotMeta(info), Vertex: v, Score: est}, nil
}

func (h *Handler) handleTopK(r *http.Request) (any, error) {
	source, err := parseVertex(r, "source")
	if err != nil {
		return nil, err
	}
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		k, err = strconv.Atoi(raw)
		if err != nil {
			return nil, badRequest("bad k %q", raw)
		}
	}
	return h.topK(source, k)
}

func (h *Handler) handleEstimate(r *http.Request) (any, error) {
	source, err := parseVertex(r, "source")
	if err != nil {
		return nil, err
	}
	v, err := parseVertex(r, "v")
	if err != nil {
		return nil, err
	}
	return h.estimate(source, v)
}

// handleQuery answers a batch of reads in one round trip. The batch is not a
// transaction: each query reads its source's current snapshot independently,
// and per-query failures (e.g. an untracked source) are reported inline so
// one bad query cannot fail the batch.
func (h *Handler) handleQuery(r *http.Request) (any, error) {
	var req QueryRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if len(req.Queries) == 0 {
		return nil, badRequest("empty query batch")
	}
	resp := QueryResponse{Results: make([]QueryResult, len(req.Queries))}
	for i, q := range req.Queries {
		var res QueryResult
		switch q.Kind {
		case KindTopK:
			top, err := h.topK(q.Source, q.K)
			if err != nil {
				res.Error = err.Error()
			} else {
				res.TopK = top
			}
		case KindEstimate:
			est, err := h.estimate(q.Source, q.Vertex)
			if err != nil {
				res.Error = err.Error()
			} else {
				res.Estimate = est
			}
		default:
			res.Error = fmt.Sprintf("unknown query kind %q (want %q or %q)", q.Kind, KindTopK, KindEstimate)
		}
		resp.Results[i] = res
	}
	return resp, nil
}

// handleCheckpoint serializes the service's durable state on demand. It is
// the admin hook operators (or a cron job) hit to bound WAL replay length;
// the periodic -checkpoint-every ticker of dppr-httpd calls the same
// Service method. A service without a data directory answers 409.
func (h *Handler) handleCheckpoint(*http.Request) (any, error) {
	lsn, err := h.svc.Checkpoint()
	if err != nil {
		return nil, err
	}
	return CheckpointResponse{LSN: lsn}, nil
}

func (h *Handler) handleEdges(r *http.Request) (any, error) {
	var req EdgesRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if len(req.Updates) == 0 {
		return nil, badRequest("empty edge batch")
	}
	batch := make(dynppr.Batch, len(req.Updates))
	for i, u := range req.Updates {
		up, err := u.ToUpdate()
		if err != nil {
			return nil, badRequest("update %d: %v", i, err)
		}
		batch[i] = up
	}
	res, err := h.svc.ApplyBatch(batch)
	if err != nil {
		return nil, err
	}
	return EdgesResponse{
		Applied:       res.Applied,
		Skipped:       res.Skipped,
		LatencyMicros: res.Latency.Microseconds(),
		Pushes:        res.Pushes,
	}, nil
}
