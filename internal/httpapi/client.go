package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"dynppr"
)

// APIError is a non-2xx response decoded from the server's error envelope.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter is the server's suggested backoff, decoded from the
	// Retry-After header of a 429 (overload, rate limit) or a 503
	// (degraded persistence); zero when the server sent none.
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("httpapi: server returned %d: %s", e.StatusCode, e.Message)
}

// IsOverloaded reports whether the error is a 429 Too Many Requests — the
// server shed the request (pipeline saturation or rate limiting) and it is
// safe to retry after the suggested backoff.
func IsOverloaded(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusTooManyRequests
}

// IsDegraded reports whether the error is a 503 carrying a Retry-After —
// the server's persistence is degraded, the write had no effect, and a
// retry after the suggested backoff will succeed once the recovery probe
// has healed the storage stack. A 503 without Retry-After (service closed,
// persistence failed permanently) is not retryable and returns false.
func IsDegraded(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) &&
		ae.StatusCode == http.StatusServiceUnavailable &&
		ae.RetryAfter > 0
}

// Client talks to a dppr-httpd server. It is safe for concurrent use: the
// underlying http.Client pools connections, so one Client shared by many
// goroutines is the intended load-generation setup.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for the server at base (e.g.
// "http://127.0.0.1:8080"). A nil httpClient selects one with a 30s request
// timeout.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	return &Client{base: base, hc: httpClient}
}

// BaseURL returns the server base URL the client was built with.
func (c *Client) BaseURL() string { return c.base }

// do issues the request and decodes the JSON response into out, translating
// non-2xx responses to *APIError.
func (c *Client) do(method, path string, body, out any) error {
	var reqBody io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		reqBody = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.base+path, reqBody)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var envelope ErrorResponse
		msg := resp.Status
		if err := json.NewDecoder(resp.Body).Decode(&envelope); err == nil && envelope.Error != "" {
			msg = envelope.Error
		}
		apiErr := &APIError{StatusCode: resp.StatusCode, Message: msg}
		if raw := resp.Header.Get("Retry-After"); raw != "" {
			if secs, err := strconv.Atoi(raw); err == nil && secs >= 0 {
				apiErr.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health checks GET /healthz.
func (c *Client) Health() error {
	return c.do(http.MethodGet, "/healthz", nil, nil)
}

// Stats fetches GET /stats.
func (c *Client) Stats() (StatsResponse, error) {
	var out StatsResponse
	err := c.do(http.MethodGet, "/stats", nil, &out)
	return out, err
}

// Sources fetches the tracked sources.
func (c *Client) Sources() ([]dynppr.VertexID, error) {
	var out SourcesResponse
	if err := c.do(http.MethodGet, "/sources", nil, &out); err != nil {
		return nil, err
	}
	return out.Sources, nil
}

// UpdateSources adds and removes tracked sources and returns the resulting
// source list.
func (c *Client) UpdateSources(add, remove []dynppr.VertexID) ([]dynppr.VertexID, error) {
	var out SourcesResponse
	err := c.do(http.MethodPost, "/sources", SourcesRequest{Add: add, Remove: remove}, &out)
	if err != nil {
		return nil, err
	}
	return out.Sources, nil
}

// TopK fetches the top-k ranking towards source.
func (c *Client) TopK(source dynppr.VertexID, k int) (TopKResult, error) {
	return c.TopKBudget(source, k, 0)
}

// TopKBudget is TopK with a per-query latency budget for on-demand
// (untracked-source) reads; the server truncates the refinement when the
// budget expires and reports the error bound it actually achieved. A zero
// budget defers to the server's configured default.
func (c *Client) TopKBudget(source dynppr.VertexID, k int, budget time.Duration) (TopKResult, error) {
	q := url.Values{}
	q.Set("source", strconv.Itoa(int(source)))
	q.Set("k", strconv.Itoa(k))
	if budget > 0 {
		q.Set("budget_ms", strconv.FormatInt(budget.Milliseconds(), 10))
	}
	var out TopKResult
	err := c.do(http.MethodGet, "/topk?"+q.Encode(), nil, &out)
	return out, err
}

// Estimate fetches one PPR estimate.
func (c *Client) Estimate(source, v dynppr.VertexID) (EstimateResult, error) {
	return c.EstimateBudget(source, v, 0)
}

// EstimateBudget is Estimate with a per-query latency budget, following the
// TopKBudget contract.
func (c *Client) EstimateBudget(source, v dynppr.VertexID, budget time.Duration) (EstimateResult, error) {
	q := url.Values{}
	q.Set("source", strconv.Itoa(int(source)))
	q.Set("v", strconv.Itoa(int(v)))
	if budget > 0 {
		q.Set("budget_ms", strconv.FormatInt(budget.Milliseconds(), 10))
	}
	var out EstimateResult
	err := c.do(http.MethodGet, "/estimate?"+q.Encode(), nil, &out)
	return out, err
}

// Query issues a batch of reads in one round trip; results come back in
// request order with per-query errors inline.
func (c *Client) Query(queries []Query) ([]QueryResult, error) {
	var out QueryResponse
	err := c.do(http.MethodPost, "/query", QueryRequest{Queries: queries}, &out)
	if err != nil {
		return nil, err
	}
	return out.Results, nil
}

// Checkpoint asks the server to checkpoint its durable state and returns
// the WAL sequence number the new checkpoint covers. Servers running
// without a data directory answer 409.
func (c *Client) Checkpoint() (CheckpointResponse, error) {
	var out CheckpointResponse
	err := c.do(http.MethodPost, "/checkpoint", nil, &out)
	return out, err
}

// Metrics fetches GET /metrics and returns the raw Prometheus text
// exposition (parse it with promexp.ParseText when structure is needed).
func (c *Client) Metrics() (string, error) {
	resp, err := c.hc.Get(c.base + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{StatusCode: resp.StatusCode, Message: string(body)}
	}
	return string(body), nil
}

// ApplyEdges posts an edge-update batch and returns what it did.
func (c *Client) ApplyEdges(updates []Update) (EdgesResponse, error) {
	var out EdgesResponse
	err := c.do(http.MethodPost, "/edges", EdgesRequest{Updates: updates}, &out)
	return out, err
}
