package httpapi

import (
	"sync"
	"sync/atomic"
	"time"

	"dynppr/internal/metrics"
)

// ringSize bounds the latency samples kept per endpoint: percentiles are
// computed over the most recent ringSize requests, so the metrics stay O(1)
// in memory under sustained load.
const ringSize = 8192

// endpointMetrics collects one endpoint's counters. Requests and errors are
// monotone atomics; latencies go into a fixed-size ring so Snapshot can hand
// the recent window to metrics.LatencyStats for percentile math.
type endpointMetrics struct {
	requests atomic.Int64
	errors   atomic.Int64

	mu      sync.Mutex
	samples [ringSize]time.Duration
	n       int64 // total samples ever observed; min(n, ringSize) are live
}

func (e *endpointMetrics) observe(d time.Duration, isErr bool) {
	e.requests.Add(1)
	if isErr {
		e.errors.Add(1)
	}
	e.mu.Lock()
	e.samples[e.n%ringSize] = d
	e.n++
	e.mu.Unlock()
}

func (e *endpointMetrics) stats(elapsed time.Duration) EndpointStats {
	var lat metrics.LatencyStats
	e.mu.Lock()
	live := e.n
	if live > ringSize {
		live = ringSize
	}
	for i := int64(0); i < live; i++ {
		lat.Observe(e.samples[i])
	}
	e.mu.Unlock()

	out := EndpointStats{
		Requests:   e.requests.Load(),
		Errors:     e.errors.Load(),
		MeanMicros: lat.Mean().Microseconds(),
		P50Micros:  lat.Percentile(50).Microseconds(),
		P95Micros:  lat.Percentile(95).Microseconds(),
		P99Micros:  lat.Percentile(99).Microseconds(),
		MaxMicros:  lat.Max().Microseconds(),
	}
	if elapsed > 0 {
		out.QPS = float64(out.Requests) / elapsed.Seconds()
	}
	return out
}

// Metrics aggregates per-endpoint serving counters for one Handler. Observe
// is safe for concurrent use; endpoints are registered up front so the hot
// path never takes a map-wide lock.
type Metrics struct {
	start     time.Time
	endpoints map[string]*endpointMetrics
}

// newMetrics registers the given endpoint names.
func newMetrics(names ...string) *Metrics {
	m := &Metrics{start: time.Now(), endpoints: make(map[string]*endpointMetrics, len(names))}
	for _, n := range names {
		m.endpoints[n] = &endpointMetrics{}
	}
	return m
}

// Observe records one request against the named endpoint. Unknown names are
// dropped (they cannot occur for requests routed by the Handler).
func (m *Metrics) Observe(endpoint string, d time.Duration, isErr bool) {
	if e, ok := m.endpoints[endpoint]; ok {
		e.observe(d, isErr)
	}
}

// Snapshot returns per-endpoint statistics. QPS is measured over the
// handler's lifetime; percentiles cover the most recent requests.
func (m *Metrics) Snapshot() map[string]EndpointStats {
	elapsed := time.Since(m.start)
	out := make(map[string]EndpointStats, len(m.endpoints))
	for name, e := range m.endpoints {
		out[name] = e.stats(elapsed)
	}
	return out
}
