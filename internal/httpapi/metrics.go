package httpapi

import (
	"sync"
	"sync/atomic"
	"time"

	"dynppr/internal/metrics"
)

// ringSize bounds the latency samples kept per endpoint for the /stats JSON
// percentiles: they are computed over the most recent ringSize requests, so
// the metrics stay O(1) in memory under sustained load.
const ringSize = 8192

// endpointMetrics collects one endpoint's counters. Requests and errors are
// monotone atomics; latencies feed both a bounded recent-window ring
// (metrics.LatencyStats, exact percentiles over the window for /stats) and
// a set of P² streaming estimators (lifetime quantiles in O(1) memory, the
// summary quantiles /metrics exports).
type endpointMetrics struct {
	requests atomic.Int64
	errors   atomic.Int64

	mu  sync.Mutex
	lat *metrics.LatencyStats
	q50 *metrics.P2Quantile
	q95 *metrics.P2Quantile
	q99 *metrics.P2Quantile
}

func newEndpointMetrics() *endpointMetrics {
	return &endpointMetrics{
		lat: metrics.NewLatencyStats(ringSize),
		q50: metrics.NewP2Quantile(0.50),
		q95: metrics.NewP2Quantile(0.95),
		q99: metrics.NewP2Quantile(0.99),
	}
}

func (e *endpointMetrics) observe(d time.Duration, isErr bool) {
	e.requests.Add(1)
	if isErr {
		e.errors.Add(1)
	}
	secs := d.Seconds()
	e.mu.Lock()
	e.lat.Observe(d)
	e.q50.Observe(secs)
	e.q95.Observe(secs)
	e.q99.Observe(secs)
	e.mu.Unlock()
}

func (e *endpointMetrics) stats(elapsed time.Duration) EndpointStats {
	e.mu.Lock()
	out := EndpointStats{
		Requests:   e.requests.Load(),
		Errors:     e.errors.Load(),
		MeanMicros: e.lat.Mean().Microseconds(),
		P50Micros:  e.lat.Percentile(50).Microseconds(),
		P95Micros:  e.lat.Percentile(95).Microseconds(),
		P99Micros:  e.lat.Percentile(99).Microseconds(),
		MaxMicros:  e.lat.Max().Microseconds(),
	}
	e.mu.Unlock()

	if elapsed > 0 {
		out.QPS = float64(out.Requests) / elapsed.Seconds()
	}
	return out
}

// summary returns the lifetime latency aggregates for the Prometheus
// exporter: streaming quantile estimates in seconds plus the exact running
// sum and count.
func (e *endpointMetrics) summary() (q50, q95, q99, sumSeconds float64, count int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.q50.Value(), e.q95.Value(), e.q99.Value(),
		e.lat.Sum().Seconds(), int64(e.lat.Count())
}

// Metrics aggregates per-endpoint serving counters for one Handler, plus
// the handler-wide traffic-management counters. Observe is safe for
// concurrent use; endpoints are registered up front so the hot path never
// takes a map-wide lock.
type Metrics struct {
	start     time.Time
	endpoints map[string]*endpointMetrics

	// shed counts 429s from write-pipeline overload, rateLimited 429s from
	// the per-client token bucket, and coalesced /topk requests answered
	// from another request's in-flight read.
	shed        atomic.Int64
	rateLimited atomic.Int64
	coalesced   atomic.Int64
}

// newMetrics registers the given endpoint names.
func newMetrics(names ...string) *Metrics {
	m := &Metrics{start: time.Now(), endpoints: make(map[string]*endpointMetrics, len(names))}
	for _, n := range names {
		m.endpoints[n] = newEndpointMetrics()
	}
	return m
}

// Observe records one request against the named endpoint. Unknown names are
// dropped (they cannot occur for requests routed by the Handler).
func (m *Metrics) Observe(endpoint string, d time.Duration, isErr bool) {
	if e, ok := m.endpoints[endpoint]; ok {
		e.observe(d, isErr)
	}
}

// Snapshot returns per-endpoint statistics. QPS is measured over the
// handler's lifetime; percentiles cover the most recent requests.
func (m *Metrics) Snapshot() map[string]EndpointStats {
	elapsed := time.Since(m.start)
	out := make(map[string]EndpointStats, len(m.endpoints))
	for name, e := range m.endpoints {
		out[name] = e.stats(elapsed)
	}
	return out
}

// Overload returns the handler-wide traffic-management counters.
func (m *Metrics) Overload() OverloadStats {
	return OverloadStats{
		Shed:        m.shed.Load(),
		RateLimited: m.rateLimited.Load(),
		Coalesced:   m.coalesced.Load(),
	}
}
