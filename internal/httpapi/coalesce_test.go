package httpapi

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dynppr"
)

// TestFlightGroupSingleflight pins the coalescing semantics deterministically
// by holding the leader's fn open: followers that arrive while it is in
// flight share its result without re-running fn, and once the flight is gone
// the next caller leads again.
func TestFlightGroupSingleflight(t *testing.T) {
	var g flightGroup
	release := make(chan struct{})
	started := make(chan struct{})
	var calls atomic.Int32
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, shared, err := g.do("k", func() (any, error) {
			calls.Add(1)
			close(started)
			<-release
			return 42, nil
		})
		if shared || err != nil || v != 42 {
			t.Errorf("leader got (%v, shared=%t, %v), want (42, false, nil)", v, shared, err)
		}
	}()
	<-started

	const followers = 4
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, shared, err := g.do("k", func() (any, error) {
				t.Error("follower fn ran despite an in-flight call")
				return nil, nil
			})
			if !shared || err != nil || v != 42 {
				t.Errorf("follower got (%v, shared=%t, %v), want (42, true, nil)", v, shared, err)
			}
		}()
	}
	waitForWaiters(t, &g, "k", followers)
	close(release)
	wg.Wait()
	<-leaderDone
	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times for %d concurrent calls, want 1", calls.Load(), followers+1)
	}

	// The flight is gone: a fresh call must lead, not observe stale state.
	v, shared, err := g.do("k", func() (any, error) { return 7, nil })
	if shared || err != nil || v != 7 {
		t.Fatalf("post-flight call got (%v, shared=%t, %v), want (7, false, nil)", v, shared, err)
	}
}

// TestHandlerCoalescesInFlightTopK drives a real HTTP request into a /topk
// flight held open by another caller: the request must join the flight
// instead of reading the snapshot itself, return the identical ranking, and
// increment the coalesced counter surfaced in /stats and /metrics.
func TestHandlerCoalescesInFlightTopK(t *testing.T) {
	edges, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Model: dynppr.ModelRMAT, Vertices: 300, Edges: 2400, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	graph := dynppr.GraphFromEdges(edges)
	sources := graph.TopDegreeVertices(1)
	so := dynppr.DefaultServiceOptions()
	so.Options.Epsilon = 1e-4
	svc, err := dynppr.NewService(graph, sources, so)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	h := NewHandler(svc)
	ts := httptest.NewServer(h)
	defer ts.Close()

	source := sources[0]
	key := strconv.Itoa(int(source)) + "/25/0"
	release := make(chan struct{})
	started := make(chan struct{})
	leaderDone := make(chan struct{})
	var leaderVal any
	go func() {
		defer close(leaderDone)
		leaderVal, _, _ = h.flights.do(key, func() (any, error) {
			close(started)
			<-release
			return h.topK(context.Background(), source, 25, 0)
		})
	}()
	<-started

	type httpResult struct {
		res TopKResult
		err error
	}
	resCh := make(chan httpResult, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/topk?source=" + strconv.Itoa(int(source)) + "&k=25")
		if err != nil {
			resCh <- httpResult{err: err}
			return
		}
		defer resp.Body.Close()
		var out httpResult
		if resp.StatusCode != http.StatusOK {
			out.err = &APIError{StatusCode: resp.StatusCode}
		} else {
			out.err = json.NewDecoder(resp.Body).Decode(&out.res)
		}
		resCh <- out
	}()
	// Only release the flight once the HTTP request has provably joined it,
	// so the test is deterministic on any core count.
	waitForWaiters(t, &h.flights, key, 1)
	close(release)

	got := <-resCh
	if got.err != nil {
		t.Fatalf("coalesced request failed: %v", got.err)
	}
	<-leaderDone
	want := leaderVal.(*TopKResult)
	if got.res.Snapshot.Epoch != want.Snapshot.Epoch || got.res.K != want.K ||
		len(got.res.Results) != len(want.Results) {
		t.Fatalf("coalesced response diverged from the flight result: %+v vs %+v",
			got.res.Snapshot, want.Snapshot)
	}
	if len(got.res.Results) == 0 || !got.res.Snapshot.Converged {
		t.Fatalf("coalesced response not a converged ranking: %+v", got.res)
	}
	if n := h.metrics.coalesced.Load(); n != 1 {
		t.Fatalf("coalesced counter = %d, want 1", n)
	}
	if ov := h.metrics.Overload(); ov.Coalesced != 1 {
		t.Fatalf("/stats overload coalesced = %d, want 1", ov.Coalesced)
	}
}

func waitForWaiters(t *testing.T, g *flightGroup, key string, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for g.inFlightWaiters(key) < want {
		if time.Now().After(deadline) {
			t.Fatalf("flight %q never reached %d waiters", key, want)
		}
		time.Sleep(time.Millisecond)
	}
}
