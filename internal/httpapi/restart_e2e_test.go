package httpapi_test

import (
	"context"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dynppr"
	"dynppr/internal/httpapi"
)

// TestHTTPRestartRecovery is the end-to-end durability test of the serving
// stack: a dppr-httpd-shaped server (persistent Service + HTTP handler) on a
// temp data directory takes edge batches and source changes while concurrent
// readers hammer /topk and /estimate, checkpoints, and shuts down; a second
// server recovers from the same directory and must serve the exact same
// /topk rankings and /stats epochs — epochs never regress across the
// restart, and writes keep working afterwards.
func TestHTTPRestartRecovery(t *testing.T) {
	const (
		readers   = 16
		slides    = 5
		slideSize = 60
		epsilon   = 1e-4
	)
	dir := filepath.Join(t.TempDir(), "data")

	edges, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Name: "restart-e2e", Model: dynppr.ModelRMAT, Vertices: 500, Edges: 5000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream := dynppr.NewStream(edges, 5)
	window, initial := dynppr.NewSlidingWindow(stream, 0.5)
	g := dynppr.GraphFromEdges(initial)
	sources := g.TopDegreeVertices(2)
	numVertices := g.NumVertices()

	so := dynppr.DefaultServiceOptions()
	so.Options.Epsilon = epsilon
	so.Options.Engine = dynppr.EngineDeterministic
	po := dynppr.PersistOptions{Dir: dir, Sync: dynppr.SyncAlways}

	svc, err := dynppr.NewPersistentService(g, sources, so, po)
	if err != nil {
		t.Fatal(err)
	}
	srv := httpapi.NewServer(svc, httpapi.ServerOptions{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	client := httpapi.NewClient(srv.URL(), nil)

	// Readers hammer the stable sources while the writer mutates; every
	// response must come from a converged snapshot and epochs must be
	// monotone per source within each reader.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var reads atomic.Int64
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lastEpoch := make(map[dynppr.VertexID]uint64)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				source := sources[i%len(sources)]
				var meta httpapi.SnapshotMeta
				if i%2 == 0 {
					res, err := client.TopK(source, 10)
					if err != nil {
						t.Errorf("reader %d: topk: %v", r, err)
						return
					}
					meta = res.Snapshot
				} else {
					res, err := client.Estimate(source, dynppr.VertexID((i*r)%numVertices))
					if err != nil {
						t.Errorf("reader %d: estimate: %v", r, err)
						return
					}
					meta = res.Snapshot
				}
				if !meta.Converged {
					t.Errorf("reader %d: non-converged snapshot served", r)
					return
				}
				if meta.Epoch < lastEpoch[source] {
					t.Errorf("reader %d: epoch regressed %d -> %d", r, lastEpoch[source], meta.Epoch)
					return
				}
				lastEpoch[source] = meta.Epoch
				reads.Add(1)
			}
		}(r)
	}

	// Writer: edge batches plus a live source addition, all over HTTP.
	extra := dynppr.VertexID(0)
	for extra == sources[0] || extra == sources[1] {
		extra++
	}
	for i := 0; i < slides; i++ {
		b := window.Slide(slideSize)
		if len(b) == 0 {
			t.Fatal("stream exhausted")
		}
		if _, err := client.ApplyEdges(httpapi.FromBatch(b)); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			if _, err := client.UpdateSources([]dynppr.VertexID{extra}, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := client.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if reads.Load() == 0 {
		t.Fatal("no concurrent reads completed")
	}

	// Capture what the first server serves, then shut it down cleanly.
	allSources := append(append([]dynppr.VertexID(nil), sources...), extra)
	type capture struct {
		topk  httpapi.TopKResult
		stats httpapi.SourceStats
	}
	before := make(map[dynppr.VertexID]capture)
	stats1, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats1.Service.Persistence == nil || stats1.Service.Persistence.Checkpoints < 2 {
		t.Fatalf("persistence stats missing or no checkpoints: %+v", stats1.Service.Persistence)
	}
	for _, s := range allSources {
		top, err := client.TopK(s, 15)
		if err != nil {
			t.Fatal(err)
		}
		var ss httpapi.SourceStats
		for _, cand := range stats1.Service.Sources {
			if cand.Source == s {
				ss = cand
			}
		}
		before[s] = capture{topk: top, stats: ss}
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		t.Fatal(err)
	}
	if err := srv.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: recover into a fresh handler and compare.
	svc2, err := dynppr.NewServiceFromRecovery(so, po)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	srv2 := httpapi.NewServer(svc2, httpapi.ServerOptions{Addr: "127.0.0.1:0"})
	if err := srv2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv2.Shutdown(ctx)
		srv2.Wait()
	}()
	client2 := httpapi.NewClient(srv2.URL(), nil)

	got, err := client2.Sources()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(allSources) {
		t.Fatalf("recovered sources %v, want %d tracked", got, len(allSources))
	}
	for _, s := range allSources {
		top, err := client2.TopK(s, 15)
		if err != nil {
			t.Fatal(err)
		}
		want := before[s]
		if top.Snapshot.Epoch != want.topk.Snapshot.Epoch {
			t.Fatalf("source %d: epoch %d after restart, want %d (regression or skip)",
				s, top.Snapshot.Epoch, want.topk.Snapshot.Epoch)
		}
		if !top.Snapshot.Converged {
			t.Fatalf("source %d: recovered snapshot not converged", s)
		}
		if len(top.Results) != len(want.topk.Results) {
			t.Fatalf("source %d: topk length changed across restart", s)
		}
		for i := range top.Results {
			if top.Results[i] != want.topk.Results[i] {
				t.Fatalf("source %d: topk[%d] = %+v after restart, want %+v",
					s, i, top.Results[i], want.topk.Results[i])
			}
		}
	}
	stats2, err := client2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, ss := range stats2.Service.Sources {
		if prev := before[ss.Source].stats; ss.Epoch < prev.Epoch {
			t.Fatalf("source %d: /stats epoch regressed %d -> %d", ss.Source, prev.Epoch, ss.Epoch)
		}
	}
	if stats2.Service.Vertices != stats1.Service.Vertices || stats2.Service.Edges != stats1.Service.Edges {
		t.Fatalf("graph changed across restart: %d/%d -> %d/%d",
			stats1.Service.Vertices, stats1.Service.Edges, stats2.Service.Vertices, stats2.Service.Edges)
	}

	// The recovered server keeps accepting writes, and epochs advance past
	// the restart point.
	b := window.Slide(slideSize)
	if _, err := client2.ApplyEdges(httpapi.FromBatch(b)); err != nil {
		t.Fatal(err)
	}
	for _, s := range allSources {
		top, err := client2.TopK(s, 5)
		if err != nil {
			t.Fatal(err)
		}
		if want := before[s].topk.Snapshot.Epoch + 1; top.Snapshot.Epoch != want {
			t.Fatalf("source %d: post-restart write epoch %d, want %d", s, top.Snapshot.Epoch, want)
		}
	}
}
