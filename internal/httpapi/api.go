// Package httpapi is the network front end of the serving layer: JSON wire
// types, an http.Handler over a dynppr.Service, a production-shaped server
// (timeouts, graceful shutdown, per-endpoint latency/QPS counters) and a Go
// client. The endpoints expose exactly the Service read/write surface —
// single and batched top-k/estimate queries, edge-update batches, live
// source add/remove, and serving statistics — and every read response
// carries the metadata of the converged snapshot it was served from, so
// remote callers can verify the same consistency contract in-process callers
// get from SnapshotInfo.
package httpapi

import (
	"fmt"

	"dynppr"
)

// Update operation names on the wire.
const (
	OpInsert = "insert"
	OpDelete = "delete"
)

// Query kinds accepted by POST /query.
const (
	KindTopK     = "topk"
	KindEstimate = "estimate"
)

// SnapshotMeta is the wire form of dynppr.SnapshotInfo: which converged
// snapshot a read was served from.
type SnapshotMeta struct {
	Source      dynppr.VertexID `json:"source"`
	Epoch       uint64          `json:"epoch"`
	MaxResidual float64         `json:"max_residual"`
	Epsilon     float64         `json:"epsilon"`
	Vertices    int             `json:"vertices"`
	Converged   bool            `json:"converged"`
}

func snapshotMeta(info dynppr.SnapshotInfo) SnapshotMeta {
	return SnapshotMeta{
		Source:      info.Source,
		Epoch:       info.Epoch,
		MaxResidual: info.MaxResidual,
		Epsilon:     info.Epsilon,
		Vertices:    info.Vertices,
		Converged:   info.Converged(),
	}
}

// VertexScore is one ranked vertex in a top-k response.
type VertexScore struct {
	Vertex dynppr.VertexID `json:"vertex"`
	Score  float64         `json:"score"`
}

// TopKResult answers a top-k query: the ranking and the snapshot it came
// from. Approx marks an answer computed by the on-demand path for an
// untracked source; Epsilon is then the achieved absolute error bound of
// every score (tracked answers carry their bound in Snapshot.Epsilon
// instead, and Snapshot.Epoch 0 marks a synthesized on-demand snapshot).
// Cached marks an on-demand answer served from the result cache (always
// bit-identical to the answer a fresh computation would produce for the
// same graph generation); Truncated marks an answer whose per-query latency
// budget expired before the push reached the configured ε — the answer is
// still sound within the reported Epsilon.
type TopKResult struct {
	Snapshot  SnapshotMeta  `json:"snapshot"`
	K         int           `json:"k"`
	Results   []VertexScore `json:"results"`
	Approx    bool          `json:"approx,omitempty"`
	Epsilon   float64       `json:"epsilon,omitempty"`
	Cached    bool          `json:"cached,omitempty"`
	Truncated bool          `json:"truncated,omitempty"`
}

// EstimateResult answers an estimate query. Approx/Epsilon/Cached/Truncated
// follow the TopKResult contract.
type EstimateResult struct {
	Snapshot  SnapshotMeta    `json:"snapshot"`
	Vertex    dynppr.VertexID `json:"vertex"`
	Score     float64         `json:"score"`
	Approx    bool            `json:"approx,omitempty"`
	Epsilon   float64         `json:"epsilon,omitempty"`
	Cached    bool            `json:"cached,omitempty"`
	Truncated bool            `json:"truncated,omitempty"`
}

// Query is one element of a batched read request.
type Query struct {
	// Kind is "topk" or "estimate".
	Kind   string          `json:"kind"`
	Source dynppr.VertexID `json:"source"`
	// Vertex is the query vertex for estimate queries.
	Vertex dynppr.VertexID `json:"vertex,omitempty"`
	// K is the ranking length for topk queries.
	K int `json:"k,omitempty"`
	// BudgetMS is the per-query latency budget in milliseconds for
	// on-demand (untracked-source) reads; 0 falls back to the handler's
	// DefaultBudget. The budget bounds compute only, never soundness: a
	// truncated answer reports the error bound it actually achieved.
	// Tracked sources ignore it.
	BudgetMS int64 `json:"budget_ms,omitempty"`
}

// QueryRequest is the body of POST /query.
type QueryRequest struct {
	Queries []Query `json:"queries"`
}

// QueryResult is the outcome of one query of a batch: exactly one of TopK,
// Estimate or Error is set. Status carries the HTTP status the same query
// would have received on its dedicated endpoint (404 for an untracked
// source, 400 for a malformed query, ...); it is set only alongside Error —
// successful queries leave it 0.
type QueryResult struct {
	TopK     *TopKResult     `json:"topk,omitempty"`
	Estimate *EstimateResult `json:"estimate,omitempty"`
	Error    string          `json:"error,omitempty"`
	Status   int             `json:"status,omitempty"`
}

// QueryResponse is the body answering POST /query, results in request order.
type QueryResponse struct {
	Results []QueryResult `json:"results"`
}

// Update is one edge update of a POST /edges batch.
type Update struct {
	U dynppr.VertexID `json:"u"`
	V dynppr.VertexID `json:"v"`
	// Op is "insert" or "delete".
	Op string `json:"op"`
}

// ToUpdate converts the wire update to the library type.
func (u Update) ToUpdate() (dynppr.Update, error) {
	if u.U < 0 || u.V < 0 {
		return dynppr.Update{}, fmt.Errorf("httpapi: negative vertex id in edge (%d, %d)", u.U, u.V)
	}
	switch u.Op {
	case OpInsert:
		return dynppr.Update{U: u.U, V: u.V, Op: dynppr.Insert}, nil
	case OpDelete:
		return dynppr.Update{U: u.U, V: u.V, Op: dynppr.Delete}, nil
	default:
		return dynppr.Update{}, fmt.Errorf("httpapi: unknown op %q (want %q or %q)", u.Op, OpInsert, OpDelete)
	}
}

// FromBatch converts a library batch to its wire form.
func FromBatch(b dynppr.Batch) []Update {
	out := make([]Update, len(b))
	for i, u := range b {
		op := OpInsert
		if u.Op == dynppr.Delete {
			op = OpDelete
		}
		out[i] = Update{U: u.U, V: u.V, Op: op}
	}
	return out
}

// EdgesRequest is the body of POST /edges.
//
// Retry contract: POST /edges is idempotent in effect. A 429 (or any
// admission failure) means the batch never entered the write pipeline and
// was never journaled, so retrying cannot double-apply; and because the
// graph has set semantics — a duplicate insert or a delete of a missing
// edge is skipped, not an error — re-sending a batch whose first attempt
// did succeed (e.g. after a lost response) converges to the same graph,
// merely reporting the repeats in EdgesResponse.Skipped.
type EdgesRequest struct {
	Updates []Update `json:"updates"`
}

// EdgesResponse reports what the batch did, mirroring dynppr.BatchResult.
type EdgesResponse struct {
	Applied       int   `json:"applied"`
	Skipped       int   `json:"skipped"`
	LatencyMicros int64 `json:"latency_micros"`
	Pushes        int64 `json:"pushes"`
}

// SourcesRequest is the body of POST /sources: sources to start and stop
// tracking. Adds are applied before removes.
type SourcesRequest struct {
	Add    []dynppr.VertexID `json:"add,omitempty"`
	Remove []dynppr.VertexID `json:"remove,omitempty"`
}

// SourcesResponse lists the tracked sources after the request took effect.
type SourcesResponse struct {
	Sources []dynppr.VertexID `json:"sources"`
}

// HealthResponse is the body of a 200 GET /healthz. Once the service has
// shut down — or persistence has failed permanently — /healthz instead
// answers 503 with the usual ErrorResponse envelope, so load balancers
// drain the instance.
type HealthResponse struct {
	// Status is "ok".
	Status string `json:"status"`
	// Persistence is the durability state machine's state ("healthy",
	// "degraded" or "failed"); empty on a service without a data
	// directory. A degraded service still answers 200: reads are correct
	// and the state self-heals.
	Persistence string `json:"persistence,omitempty"`
}

// CheckpointResponse answers POST /checkpoint: the WAL sequence number the
// new checkpoint covers.
type CheckpointResponse struct {
	LSN uint64 `json:"lsn"`
}

// PersistenceStats is the wire form of dynppr.PersistenceStats.
type PersistenceStats struct {
	Dir               string `json:"dir"`
	Sync              string `json:"sync"`
	State             string `json:"state"`
	NextLSN           uint64 `json:"next_lsn"`
	LastCheckpointLSN uint64 `json:"last_checkpoint_lsn"`
	Checkpoints       int64  `json:"checkpoints"`
	// Failed carries the classified persistence error while State is
	// "degraded" (mutations shed 503 until a recovery probe heals the
	// stack) or "failed" (mutations rejected until restart).
	Failed string `json:"failed,omitempty"`
	// ProbeAttempts/ProbeSuccesses count recovery heal attempts and the
	// ones that returned the service to healthy.
	ProbeAttempts  int64 `json:"probe_attempts,omitempty"`
	ProbeSuccesses int64 `json:"probe_successes,omitempty"`
	// DegradedSeconds is the cumulative time spent degraded, the open
	// window included.
	DegradedSeconds float64 `json:"degraded_seconds,omitempty"`
	// NextProbeMillis is the time until the next scheduled recovery probe.
	NextProbeMillis int64 `json:"next_probe_millis,omitempty"`
}

// OnDemandStats is the wire form of dynppr.OnDemandStats.
type OnDemandStats struct {
	Queries         int64 `json:"queries"`
	ColdPushes      int64 `json:"cold_pushes"`
	CacheHits       int64 `json:"cache_hits"`
	CacheMisses     int64 `json:"cache_misses"`
	Coalesced       int64 `json:"coalesced"`
	BudgetTruncated int64 `json:"budget_truncated"`
	CacheEntries    int   `json:"cache_entries"`
	CacheCapacity   int   `json:"cache_capacity"`
	PoolWorkers     int   `json:"pool_workers"`
	PoolDepth       int64 `json:"pool_depth"`
	Walks           int64 `json:"walks"`
	SnapshotBuilds  int64 `json:"snapshot_builds"`
	Promotions      int64 `json:"promotions"`
	Evictions       int64 `json:"evictions"`
	Candidates      int   `json:"candidates"`
	AutoSources     int   `json:"auto_sources"`
	LastMicros      int64 `json:"last_micros"`
	TotalMicros     int64 `json:"total_micros"`
}

// SourceStats is the wire form of dynppr.SourceStats.
type SourceStats struct {
	Source      dynppr.VertexID `json:"source"`
	Shard       int             `json:"shard"`
	Epoch       uint64          `json:"epoch"`
	Pushes      int64           `json:"pushes"`
	MaxResidual float64         `json:"max_residual"`
	// FullPublishes/DeltaPublishes report how the source's snapshots were
	// published (full vector copies versus dirty-set deltas); TopKRebuilds
	// counts full-scan rebuilds of its Top-K index.
	FullPublishes  uint64 `json:"full_publishes"`
	DeltaPublishes uint64 `json:"delta_publishes"`
	TopKRebuilds   uint64 `json:"topk_rebuilds"`
}

// ServiceStats is the wire form of dynppr.ServiceStats.
type ServiceStats struct {
	Sources          []SourceStats `json:"sources"`
	Batches          int64         `json:"batches"`
	UpdatesApplied   int64         `json:"updates_applied"`
	UpdatesSkipped   int64         `json:"updates_skipped"`
	QueueDepth       int           `json:"queue_depth"`
	QueueCap         int           `json:"queue_cap"`
	Shed             int64         `json:"shed"`
	LastBatchMicros  int64         `json:"last_batch_micros"`
	AvgBatchMicros   int64         `json:"avg_batch_micros"`
	TotalBatchMicros int64         `json:"total_batch_micros"`
	Vertices         int           `json:"vertices"`
	Edges            int           `json:"edges"`
	PoolWorkers      int           `json:"pool_workers"`
	// Persistence is nil when the service runs without a data directory.
	Persistence *PersistenceStats `json:"persistence,omitempty"`
	// OnDemand is nil when the on-demand query path is disabled.
	OnDemand *OnDemandStats `json:"ondemand,omitempty"`
}

func serviceStats(st dynppr.ServiceStats) ServiceStats {
	out := ServiceStats{
		Batches:          st.Batches,
		UpdatesApplied:   st.UpdatesApplied,
		UpdatesSkipped:   st.UpdatesSkipped,
		QueueDepth:       st.QueueDepth,
		QueueCap:         st.QueueCap,
		Shed:             st.Shed,
		LastBatchMicros:  st.LastBatchLatency.Microseconds(),
		AvgBatchMicros:   st.AvgBatchLatency().Microseconds(),
		TotalBatchMicros: st.TotalBatchLatency.Microseconds(),
		Vertices:         st.Vertices,
		Edges:            st.Edges,
		PoolWorkers:      st.PoolWorkers,
	}
	if p := st.Persistence; p != nil {
		out.Persistence = &PersistenceStats{
			Dir:               p.Dir,
			Sync:              p.Sync,
			State:             p.State,
			NextLSN:           p.NextLSN,
			LastCheckpointLSN: p.LastCheckpointLSN,
			Checkpoints:       p.Checkpoints,
			Failed:            p.Failed,
			ProbeAttempts:     p.ProbeAttempts,
			ProbeSuccesses:    p.ProbeSuccesses,
			DegradedSeconds:   p.DegradedSeconds,
			NextProbeMillis:   p.NextProbe.Milliseconds(),
		}
	}
	if od := st.OnDemand; od != nil {
		out.OnDemand = &OnDemandStats{
			Queries:         od.Queries,
			ColdPushes:      od.ColdPushes,
			CacheHits:       od.CacheHits,
			CacheMisses:     od.CacheMisses,
			Coalesced:       od.Coalesced,
			BudgetTruncated: od.BudgetTruncated,
			CacheEntries:    od.CacheEntries,
			CacheCapacity:   od.CacheCapacity,
			PoolWorkers:     od.PoolWorkers,
			PoolDepth:       od.PoolDepth,
			Walks:           od.Walks,
			SnapshotBuilds:  od.SnapshotBuilds,
			Promotions:      od.Promotions,
			Evictions:       od.Evictions,
			Candidates:      od.Candidates,
			AutoSources:     od.AutoSources,
			LastMicros:      od.LastLatency.Microseconds(),
			TotalMicros:     od.TotalLatency.Microseconds(),
		}
	}
	for _, ss := range st.Sources {
		out.Sources = append(out.Sources, SourceStats{
			Source:         ss.Source,
			Shard:          ss.Shard,
			Epoch:          ss.Epoch,
			Pushes:         ss.Pushes,
			MaxResidual:    ss.MaxResidual,
			FullPublishes:  ss.FullPublishes,
			DeltaPublishes: ss.DeltaPublishes,
			TopKRebuilds:   ss.TopKRebuilds,
		})
	}
	return out
}

// EndpointStats reports one endpoint's serving counters.
type EndpointStats struct {
	Requests   int64   `json:"requests"`
	Errors     int64   `json:"errors"`
	QPS        float64 `json:"qps"`
	MeanMicros int64   `json:"mean_micros"`
	P50Micros  int64   `json:"p50_micros"`
	P95Micros  int64   `json:"p95_micros"`
	P99Micros  int64   `json:"p99_micros"`
	MaxMicros  int64   `json:"max_micros"`
}

// OverloadStats reports the HTTP layer's traffic-management counters: how
// many requests were answered 429 because the write pipeline was saturated
// (Shed) or because the per-client token bucket rejected them
// (RateLimited), and how many reads were answered from another identical
// in-flight request (Coalesced).
type OverloadStats struct {
	Shed        int64 `json:"shed"`
	RateLimited int64 `json:"rate_limited"`
	Coalesced   int64 `json:"coalesced"`
}

// StatsResponse is the body of GET /stats: the service's serving statistics
// plus the HTTP layer's per-endpoint and traffic-management counters.
type StatsResponse struct {
	Service  ServiceStats             `json:"service"`
	HTTP     map[string]EndpointStats `json:"http"`
	Overload OverloadStats            `json:"overload"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}
