package edgeio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzEdgeioRead feeds arbitrary byte streams through Read. The contract
// under fuzz: Read returns either an error or a well-formed edge list —
// never a panic, never an edge with a negative endpoint — and whatever it
// accepts must survive a Write/Read round trip unchanged.
func FuzzEdgeioRead(f *testing.F) {
	// SNAP-style files as downloaded from the archive.
	f.Add([]byte("# Directed graph (each unordered pair of nodes is saved once)\n" +
		"# FromNodeId\tToNodeId\n0\t1\n0\t2\n1\t2\n"))
	f.Add([]byte("% MatrixMarket-style comment\n1 2\n2 3\n"))
	// Plain edges, blank lines, trailing fields, CRLF.
	f.Add([]byte("1 2\n\n3 4 1.5\n"))
	f.Add([]byte("1 2\r\n3 4\r\n"))
	f.Add([]byte("  7   9  \n"))
	// Junk lines and malformed ids.
	f.Add([]byte("a b\n"))
	f.Add([]byte("1\n"))
	f.Add([]byte("-1 2\n"))
	f.Add([]byte("1 -2\n"))
	f.Add([]byte("99999999999999999999 1\n")) // overflows int32
	f.Add([]byte("0x10 2\n"))                 // hex is not accepted
	f.Add([]byte("1.5 2\n"))                  // floats are not ids
	f.Add([]byte("\x00\x01\x02\xff\xfe"))     // binary garbage
	f.Add([]byte("# only a comment, no edges\n"))
	f.Add([]byte(strings.Repeat("1 2\n", 1000))) // long but valid
	f.Add([]byte(strings.Repeat("x", 100_000)))  // one huge junk line
	f.Add([]byte("2147483647 2147483647\n"))     // int32 max is valid
	f.Add([]byte("2147483648 1\n"))              // int32 max + 1 is not

	f.Fuzz(func(t *testing.T, data []byte) {
		edges, err := Read(bytes.NewReader(data))
		if err != nil {
			if len(edges) != 0 {
				t.Fatalf("error return must not also carry edges: %d with %v", len(edges), err)
			}
			return
		}
		for i, e := range edges {
			if e.U < 0 || e.V < 0 {
				t.Fatalf("edge %d has negative endpoint: %+v", i, e)
			}
		}
		// Round trip: what Read accepted, Write must reproduce exactly.
		var buf bytes.Buffer
		if err := Write(&buf, edges); err != nil {
			t.Fatalf("Write failed on accepted edges: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-Read failed: %v", err)
		}
		if len(again) != len(edges) {
			t.Fatalf("round trip changed edge count: %d -> %d", len(edges), len(again))
		}
		for i := range edges {
			if edges[i] != again[i] {
				t.Fatalf("round trip changed edge %d: %+v -> %+v", i, edges[i], again[i])
			}
		}
	})
}

// TestReadHugeLine pins the scanner's buffer limit: a single line longer
// than the 1 MiB cap must surface as an error, not a panic or truncation.
func TestReadHugeLine(t *testing.T) {
	huge := strings.Repeat("7", 2<<20) + " 1\n"
	if _, err := Read(strings.NewReader(huge)); err == nil {
		t.Fatal("over-long line must error")
	}
}
