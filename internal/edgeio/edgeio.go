// Package edgeio reads and writes edge lists in the plain whitespace-
// separated "u v" text format used by SNAP and by the cmd tools of this
// repository. Lines starting with '#' or '%' are treated as comments, and
// blank lines are skipped, so files downloaded from the SNAP archive load
// directly.
package edgeio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dynppr/internal/graph"
)

// Write writes one "u v" line per edge.
func Write(w io.Writer, edges []graph.Edge) error {
	bw := bufio.NewWriter(w)
	for _, e := range edges {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses an edge list. Malformed lines produce an error naming the line
// number.
func Read(r io.Reader) ([]graph.Edge, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var edges []graph.Edge
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("edgeio: line %d: want at least two fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("edgeio: line %d: bad source id %q: %w", lineNo, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("edgeio: line %d: bad target id %q: %w", lineNo, fields[1], err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("edgeio: line %d: negative vertex id", lineNo)
		}
		edges = append(edges, graph.Edge{U: graph.VertexID(u), V: graph.VertexID(v)})
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("edgeio: %w", err)
	}
	return edges, nil
}

// SaveFile writes the edges to path, creating or truncating it.
func SaveFile(path string, edges []graph.Edge) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return Write(f, edges)
}

// LoadFile reads an edge list from path.
func LoadFile(path string) ([]graph.Edge, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// LoadGraph reads an edge list from path and builds a graph from it,
// ignoring duplicate edges.
func LoadGraph(path string) (*graph.Graph, error) {
	edges, err := LoadFile(path)
	if err != nil {
		return nil, err
	}
	return graph.FromEdges(edges), nil
}
