package edgeio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"dynppr/internal/graph"
)

func TestWriteRead(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1}, {U: 5, V: 3}, {U: 1000000, V: 0}}
	var buf bytes.Buffer
	if err := Write(&buf, edges); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(edges) {
		t.Fatalf("got %d edges, want %d", len(got), len(edges))
	}
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], edges[i])
		}
	}
}

func TestReadCommentsAndBlank(t *testing.T) {
	in := `# SNAP-style comment
% matrix-market-style comment

0	1
  2   3
`
	got, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != (graph.Edge{U: 0, V: 1}) || got[1] != (graph.Edge{U: 2, V: 3}) {
		t.Fatalf("got %v", got)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"0\n",                      // missing field
		"a b\n",                    // bad source
		"1 b\n",                    // bad target
		"-1 2\n",                   // negative source
		"1 -2\n",                   // negative target
		"1 99999999999999999999\n", // overflow
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) should fail", in)
		}
	}
}

func TestFileRoundTripAndLoadGraph(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "edges.txt")
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 0, V: 1}}
	if err := SaveFile(path, edges); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("LoadFile returned %d edges", len(got))
	}
	g, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 || g.NumVertices() != 3 {
		t.Fatalf("LoadGraph: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("missing file must fail")
	}
	if _, err := LoadGraph(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("missing file must fail for LoadGraph")
	}
}

// Property: Write followed by Read is the identity on arbitrary edge lists.
func TestRoundTripProperty(t *testing.T) {
	f := func(pairs []uint16) bool {
		var edges []graph.Edge
		for i := 0; i+1 < len(pairs); i += 2 {
			edges = append(edges, graph.Edge{U: graph.VertexID(pairs[i]), V: graph.VertexID(pairs[i+1])})
		}
		var buf bytes.Buffer
		if err := Write(&buf, edges); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(edges) {
			return false
		}
		for i := range edges {
			if got[i] != edges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
