package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func exactQuantile(xs []float64, p float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

func TestP2QuantileSmallCounts(t *testing.T) {
	e := NewP2Quantile(0.5)
	if e.Value() != 0 || e.Count() != 0 {
		t.Fatal("empty estimator should be zero")
	}
	e.Observe(10)
	if e.Value() != 10 {
		t.Fatalf("single sample: %v", e.Value())
	}
	e.Observe(30)
	e.Observe(20)
	v := e.Value()
	if v != 20 {
		t.Fatalf("median of {10,20,30} = %v", v)
	}
	if e.Quantile() != 0.5 {
		t.Fatalf("Quantile = %v", e.Quantile())
	}
}

func TestP2QuantileUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range []float64{0.5, 0.9, 0.95, 0.99} {
		e := NewP2Quantile(p)
		xs := make([]float64, 0, 20000)
		for i := 0; i < 20000; i++ {
			x := rng.Float64()
			xs = append(xs, x)
			e.Observe(x)
		}
		want := exactQuantile(xs, p)
		got := e.Value()
		// P² over 20k uniform samples is accurate to well under 0.02
		// absolute for these quantiles.
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("p=%v: estimate %v vs exact %v", p, got, want)
		}
		if e.Count() != 20000 {
			t.Fatalf("Count = %d", e.Count())
		}
	}
}

func TestP2QuantileLogNormalTail(t *testing.T) {
	// Heavy-tailed latencies are the operational case: the p99 estimate
	// must land inside the right tail region, not collapse to the median.
	rng := rand.New(rand.NewSource(11))
	e := NewP2Quantile(0.99)
	xs := make([]float64, 0, 50000)
	for i := 0; i < 50000; i++ {
		x := math.Exp(rng.NormFloat64())
		xs = append(xs, x)
		e.Observe(x)
	}
	want := exactQuantile(xs, 0.99)
	got := e.Value()
	if got < want*0.7 || got > want*1.3 {
		t.Fatalf("p99 estimate %v vs exact %v (out of ±30%%)", got, want)
	}
}

func TestP2QuantileMonotoneMarkers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e := NewP2Quantile(0.95)
	for i := 0; i < 10000; i++ {
		e.Observe(rng.ExpFloat64())
		if e.n >= 5 {
			for j := 1; j < 5; j++ {
				if e.q[j] < e.q[j-1] {
					t.Fatalf("markers out of order after %d obs: %v", i+1, e.q)
				}
			}
		}
	}
}

func TestP2QuantileBadP(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewP2Quantile(%v) must panic", p)
				}
			}()
			NewP2Quantile(p)
		}()
	}
}
