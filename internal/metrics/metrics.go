// Package metrics collects the software counters and timing statistics the
// benchmark harness reports. The counters stand in for the hardware profiling
// of the paper (nvprof warp occupancy, PAPI cache miss rates, Figure 9): they
// measure the same directional quantities — how much work each push performs,
// how much of it is synchronization, and how well the frontier keeps the
// workers occupied — using portable software instrumentation.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counters records the work performed by a push engine while processing one
// or more batches. All fields are updated with atomic adds so the parallel
// engines can share one Counters value across workers.
type Counters struct {
	// Pushes counts push operations (one per frontier vertex processed).
	Pushes int64
	// Propagations counts residual propagations to individual in-neighbors
	// (the inner-loop work, proportional to memory traffic).
	Propagations int64
	// AtomicAdds counts atomic read-modify-write operations on shared state.
	AtomicAdds int64
	// Enqueues counts vertices appended to the next frontier.
	Enqueues int64
	// DuplicateAttempts counts enqueue attempts rejected by global duplicate
	// detection (the synchronization the local-duplicate-detection
	// optimization removes).
	DuplicateAttempts int64
	// Iterations counts push rounds (frontier generations).
	Iterations int64
	// FrontierPeak is the largest frontier observed.
	FrontierPeak int64
	// FrontierTotal accumulates frontier sizes over iterations (for the mean).
	FrontierTotal int64
	// RestoreOps counts invariant-restore operations.
	RestoreOps int64
	// RandomAccesses approximates irregular memory accesses: every residual
	// update of a neighbor counts one (the proxy for cache misses / global
	// load efficiency of Figure 9).
	RandomAccesses int64
}

// AddPushes atomically adds n push operations.
func (c *Counters) AddPushes(n int64) { atomic.AddInt64(&c.Pushes, n) }

// AddPropagations atomically adds n neighbor propagations.
func (c *Counters) AddPropagations(n int64) { atomic.AddInt64(&c.Propagations, n) }

// AddAtomicAdds atomically adds n atomic operations.
func (c *Counters) AddAtomicAdds(n int64) { atomic.AddInt64(&c.AtomicAdds, n) }

// AddEnqueues atomically adds n frontier enqueues.
func (c *Counters) AddEnqueues(n int64) { atomic.AddInt64(&c.Enqueues, n) }

// AddDuplicateAttempts atomically adds n rejected duplicate enqueues.
func (c *Counters) AddDuplicateAttempts(n int64) { atomic.AddInt64(&c.DuplicateAttempts, n) }

// AddRestoreOps atomically adds n invariant restorations.
func (c *Counters) AddRestoreOps(n int64) { atomic.AddInt64(&c.RestoreOps, n) }

// AddRandomAccesses atomically adds n irregular memory accesses.
func (c *Counters) AddRandomAccesses(n int64) { atomic.AddInt64(&c.RandomAccesses, n) }

// ObserveIteration records one push round over a frontier of the given size.
func (c *Counters) ObserveIteration(frontierSize int) {
	atomic.AddInt64(&c.Iterations, 1)
	atomic.AddInt64(&c.FrontierTotal, int64(frontierSize))
	for {
		cur := atomic.LoadInt64(&c.FrontierPeak)
		if int64(frontierSize) <= cur {
			return
		}
		if atomic.CompareAndSwapInt64(&c.FrontierPeak, cur, int64(frontierSize)) {
			return
		}
	}
}

// TotalOperations returns the operation count used by the complexity
// analysis: pushes plus neighbor propagations plus invariant restorations.
func (c *Counters) TotalOperations() int64 {
	return atomic.LoadInt64(&c.Pushes) + atomic.LoadInt64(&c.Propagations) + atomic.LoadInt64(&c.RestoreOps)
}

// MeanFrontier returns the average frontier size per iteration.
func (c *Counters) MeanFrontier() float64 {
	it := atomic.LoadInt64(&c.Iterations)
	if it == 0 {
		return 0
	}
	return float64(atomic.LoadInt64(&c.FrontierTotal)) / float64(it)
}

// Reset zeroes every counter.
func (c *Counters) Reset() { *c = Counters{} }

// Merge adds other's counts into c (not atomic; use between runs).
func (c *Counters) Merge(other *Counters) {
	c.Pushes += other.Pushes
	c.Propagations += other.Propagations
	c.AtomicAdds += other.AtomicAdds
	c.Enqueues += other.Enqueues
	c.DuplicateAttempts += other.DuplicateAttempts
	c.Iterations += other.Iterations
	c.FrontierTotal += other.FrontierTotal
	if other.FrontierPeak > c.FrontierPeak {
		c.FrontierPeak = other.FrontierPeak
	}
	c.RestoreOps += other.RestoreOps
	c.RandomAccesses += other.RandomAccesses
}

// Snapshot returns a copy of the counters read atomically field by field.
func (c *Counters) Snapshot() Counters {
	return Counters{
		Pushes:            atomic.LoadInt64(&c.Pushes),
		Propagations:      atomic.LoadInt64(&c.Propagations),
		AtomicAdds:        atomic.LoadInt64(&c.AtomicAdds),
		Enqueues:          atomic.LoadInt64(&c.Enqueues),
		DuplicateAttempts: atomic.LoadInt64(&c.DuplicateAttempts),
		Iterations:        atomic.LoadInt64(&c.Iterations),
		FrontierPeak:      atomic.LoadInt64(&c.FrontierPeak),
		FrontierTotal:     atomic.LoadInt64(&c.FrontierTotal),
		RestoreOps:        atomic.LoadInt64(&c.RestoreOps),
		RandomAccesses:    atomic.LoadInt64(&c.RandomAccesses),
	}
}

// String formats the counters compactly.
func (c *Counters) String() string {
	s := c.Snapshot()
	return fmt.Sprintf("pushes=%d props=%d atomics=%d enq=%d dup=%d iters=%d peakFQ=%d restores=%d",
		s.Pushes, s.Propagations, s.AtomicAdds, s.Enqueues, s.DuplicateAttempts,
		s.Iterations, s.FrontierPeak, s.RestoreOps)
}

// DefaultLatencyWindow is the percentile window a zero-value LatencyStats
// adopts on its first Observe: percentiles are computed over the most
// recent DefaultLatencyWindow samples while Count, Mean, Max and Throughput
// stay exact over every sample ever observed.
const DefaultLatencyWindow = 8192

// LatencyStats summarizes a sequence of latencies in bounded memory. The
// totals (Count, Mean, Max, Throughput) are exact running aggregates;
// percentiles are computed over a fixed-size ring of the most recent
// samples, so a long-running server can feed one forever without the
// unbounded growth (and ever-larger Percentile sorts) the old
// append-everything implementation suffered from.
type LatencyStats struct {
	// window is the ring capacity; 0 selects DefaultLatencyWindow lazily so
	// the zero value keeps working.
	window  int
	samples []time.Duration // ring storage, len == min(count, window)
	next    int             // ring write cursor once the ring is full
	count   int64
	sum     time.Duration
	max     time.Duration
}

// NewLatencyStats returns stats whose percentile window holds the most
// recent window samples; window <= 0 selects DefaultLatencyWindow.
func NewLatencyStats(window int) *LatencyStats {
	if window <= 0 {
		window = DefaultLatencyWindow
	}
	return &LatencyStats{window: window}
}

// Observe records one latency sample.
func (l *LatencyStats) Observe(d time.Duration) {
	if l.window == 0 {
		l.window = DefaultLatencyWindow
	}
	if len(l.samples) < l.window {
		l.samples = append(l.samples, d)
	} else {
		l.samples[l.next] = d
		l.next = (l.next + 1) % l.window
	}
	l.count++
	l.sum += d
	if d > l.max {
		l.max = d
	}
}

// Count returns the total number of samples ever observed (not just the
// ones still inside the percentile window).
func (l *LatencyStats) Count() int { return int(l.count) }

// AddAll merges other's aggregates and windowed samples into l (for
// combining per-worker stats). The merged percentile window holds the union
// of both windows, clipped to l's capacity.
func (l *LatencyStats) AddAll(other *LatencyStats) {
	for _, d := range other.liveSamples() {
		l.Observe(d)
	}
	// Observe already advanced count/sum by the live samples; fold in the
	// aggregates of the samples other's window had already evicted.
	evicted := other.count - int64(len(other.samples))
	l.count += evicted
	l.sum += other.sum - other.liveSum()
	if other.max > l.max {
		l.max = other.max
	}
}

// liveSamples returns the windowed samples oldest first.
func (l *LatencyStats) liveSamples() []time.Duration {
	if len(l.samples) < l.window || l.next == 0 {
		return l.samples
	}
	out := make([]time.Duration, 0, len(l.samples))
	out = append(out, l.samples[l.next:]...)
	out = append(out, l.samples[:l.next]...)
	return out
}

func (l *LatencyStats) liveSum() time.Duration {
	var total time.Duration
	for _, d := range l.samples {
		total += d
	}
	return total
}

// Mean returns the average latency over all samples (0 with no samples).
func (l *LatencyStats) Mean() time.Duration {
	if l.count == 0 {
		return 0
	}
	return l.sum / time.Duration(l.count)
}

// Percentile returns the p-th percentile latency, p in [0,100], over the
// most recent window of samples.
func (l *LatencyStats) Percentile(p float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), l.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// Max returns the largest sample ever observed.
func (l *LatencyStats) Max() time.Duration {
	return l.max
}

// Sum returns the total of all observed samples.
func (l *LatencyStats) Sum() time.Duration { return l.sum }

// Throughput converts a number of processed items and the total elapsed time
// of the samples into items per second.
func (l *LatencyStats) Throughput(items int64) float64 {
	if l.sum <= 0 {
		return 0
	}
	return float64(items) / l.sum.Seconds()
}
