package metrics

import "sort"

// P2Quantile is a streaming quantile estimator using the P² algorithm
// (Jain & Chlamtac, CACM 1985): it maintains five markers whose heights
// approximate the p-quantile of everything ever observed in O(1) memory and
// O(1) time per observation — the bounded estimator the Prometheus /metrics
// summary quantiles are computed with, where keeping (or even windowing)
// raw samples per endpoint would not survive months of uptime.
//
// The estimate converges to the true quantile for stationary inputs; for
// the monitoring use case its few-percent transient error is irrelevant —
// what matters is that memory and per-observation cost are constant.
//
// The zero value is not usable; construct with NewP2Quantile. P2Quantile is
// not safe for concurrent use; callers guard it with their own lock.
type P2Quantile struct {
	p    float64
	n    int64
	init []float64  // first five observations, before the markers exist
	q    [5]float64 // marker heights
	pos  [5]float64 // actual marker positions (1-based)
	des  [5]float64 // desired marker positions
	inc  [5]float64 // desired-position increment per observation
}

// NewP2Quantile builds an estimator for the p-quantile, p in (0,1), e.g.
// 0.99 for the p99.
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic("metrics: P2 quantile must be in (0,1)")
	}
	e := &P2Quantile{p: p, init: make([]float64, 0, 5)}
	e.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// Quantile returns the quantile the estimator tracks.
func (e *P2Quantile) Quantile() float64 { return e.p }

// Count returns the number of observations.
func (e *P2Quantile) Count() int64 { return e.n }

// Observe feeds one observation.
func (e *P2Quantile) Observe(x float64) {
	e.n++
	if e.n <= 5 {
		e.init = append(e.init, x)
		if e.n == 5 {
			sort.Float64s(e.init)
			for i := 0; i < 5; i++ {
				e.q[i] = e.init[i]
				e.pos[i] = float64(i + 1)
				e.des[i] = 1 + e.inc[i]*4
			}
			e.init = nil
		}
		return
	}

	// Locate the cell x falls into, extending the extreme markers.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}

	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.des[i] += e.inc[i]
	}

	// Adjust the three interior markers towards their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.des[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			qn := e.parabolic(i, s)
			if !(e.q[i-1] < qn && qn < e.q[i+1]) {
				qn = e.linear(i, s)
			}
			e.q[i] = qn
			e.pos[i] += s
		}
	}
}

// parabolic is the piecewise-parabolic (P²) height prediction for moving
// marker i by d (±1).
func (e *P2Quantile) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+d)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-d)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

// linear is the fallback height prediction when the parabola would break
// marker monotonicity.
func (e *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// Value returns the current quantile estimate (0 with no observations).
// With fewer than five observations it falls back to the exact empirical
// quantile of what it has.
func (e *P2Quantile) Value() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		sorted := append([]float64(nil), e.init...)
		sort.Float64s(sorted)
		idx := int(e.p*float64(len(sorted))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		return sorted[idx]
	}
	return e.q[2]
}
