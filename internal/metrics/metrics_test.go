package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersBasics(t *testing.T) {
	var c Counters
	c.AddPushes(3)
	c.AddPropagations(10)
	c.AddAtomicAdds(10)
	c.AddEnqueues(2)
	c.AddDuplicateAttempts(1)
	c.AddRestoreOps(5)
	c.AddRandomAccesses(10)
	c.ObserveIteration(4)
	c.ObserveIteration(8)
	c.ObserveIteration(2)

	if c.TotalOperations() != 18 {
		t.Fatalf("TotalOperations = %d, want 18", c.TotalOperations())
	}
	if c.Iterations != 3 || c.FrontierPeak != 8 {
		t.Fatalf("iters=%d peak=%d", c.Iterations, c.FrontierPeak)
	}
	if got := c.MeanFrontier(); got != 14.0/3.0 {
		t.Fatalf("MeanFrontier = %v", got)
	}
	if !strings.Contains(c.String(), "pushes=3") {
		t.Fatalf("String() = %q", c.String())
	}
	s := c.Snapshot()
	if s.Pushes != 3 || s.DuplicateAttempts != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	c.Reset()
	if c.TotalOperations() != 0 || c.MeanFrontier() != 0 {
		t.Fatal("Reset did not zero counters")
	}
}

func TestCountersMerge(t *testing.T) {
	a := Counters{Pushes: 1, Propagations: 2, FrontierPeak: 5, Iterations: 1, FrontierTotal: 5}
	b := Counters{Pushes: 10, Propagations: 20, FrontierPeak: 3, Iterations: 2, FrontierTotal: 4, DuplicateAttempts: 7}
	a.Merge(&b)
	if a.Pushes != 11 || a.Propagations != 22 || a.FrontierPeak != 5 ||
		a.Iterations != 3 || a.FrontierTotal != 9 || a.DuplicateAttempts != 7 {
		t.Fatalf("merge result: %+v", a)
	}
}

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	const workers = 8
	const per = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.AddPushes(1)
				c.AddAtomicAdds(2)
				c.ObserveIteration(i % 100)
			}
		}()
	}
	wg.Wait()
	if c.Pushes != workers*per || c.AtomicAdds != 2*workers*per {
		t.Fatalf("pushes=%d atomics=%d", c.Pushes, c.AtomicAdds)
	}
	if c.FrontierPeak != 99 {
		t.Fatalf("peak=%d, want 99", c.FrontierPeak)
	}
	if c.Iterations != workers*per {
		t.Fatalf("iterations=%d", c.Iterations)
	}
}

func TestLatencyStats(t *testing.T) {
	var l LatencyStats
	if l.Mean() != 0 || l.Percentile(50) != 0 || l.Throughput(100) != 0 || l.Count() != 0 {
		t.Fatal("empty stats should be zero")
	}
	for _, ms := range []int{10, 20, 30, 40, 50} {
		l.Observe(time.Duration(ms) * time.Millisecond)
	}
	if l.Count() != 5 {
		t.Fatalf("Count = %d", l.Count())
	}
	if l.Mean() != 30*time.Millisecond {
		t.Fatalf("Mean = %v", l.Mean())
	}
	if l.Percentile(0) != 10*time.Millisecond || l.Max() != 50*time.Millisecond {
		t.Fatalf("p0=%v max=%v", l.Percentile(0), l.Max())
	}
	if l.Percentile(50) != 30*time.Millisecond {
		t.Fatalf("p50=%v", l.Percentile(50))
	}
	if l.Percentile(200) != 50*time.Millisecond {
		t.Fatalf("p200 should clamp to max, got %v", l.Percentile(200))
	}
	// 1500 items over 150ms => 10000 items/sec.
	if got := l.Throughput(1500); got < 9999 || got > 10001 {
		t.Fatalf("Throughput = %v", got)
	}
}

// TestLatencyStatsBounded pins the overload fix: memory stays bounded by
// the window while Count, Mean and Max remain exact over every sample, and
// percentiles track the most recent window.
func TestLatencyStatsBounded(t *testing.T) {
	l := NewLatencyStats(64)
	const total = 10_000
	for i := 1; i <= total; i++ {
		l.Observe(time.Duration(i) * time.Microsecond)
	}
	if len(l.samples) != 64 {
		t.Fatalf("window holds %d samples, want 64", len(l.samples))
	}
	if l.Count() != total {
		t.Fatalf("Count = %d, want %d", l.Count(), total)
	}
	wantSum := time.Duration(total) * time.Duration(total+1) / 2 * time.Microsecond
	if want := wantSum / total; l.Mean() != want {
		t.Fatalf("Mean = %v, want %v", l.Mean(), want)
	}
	if l.Max() != total*time.Microsecond {
		t.Fatalf("Max = %v", l.Max())
	}
	// The percentile window covers the most recent 64 samples only.
	if p0 := l.Percentile(0); p0 != (total-63)*time.Microsecond {
		t.Fatalf("windowed min = %v", p0)
	}
	if p100 := l.Percentile(100); p100 != total*time.Microsecond {
		t.Fatalf("windowed max = %v", p100)
	}
}

func TestLatencyStatsAddAllExactAggregates(t *testing.T) {
	a := NewLatencyStats(8)
	b := NewLatencyStats(8)
	var wantSum time.Duration
	for i := 1; i <= 100; i++ {
		a.Observe(time.Duration(i) * time.Millisecond)
		wantSum += time.Duration(i) * time.Millisecond
	}
	for i := 101; i <= 120; i++ {
		b.Observe(time.Duration(i) * time.Millisecond)
		wantSum += time.Duration(i) * time.Millisecond
	}
	a.AddAll(b)
	if a.Count() != 120 {
		t.Fatalf("merged Count = %d", a.Count())
	}
	if a.Sum() != wantSum {
		t.Fatalf("merged Sum = %v, want %v", a.Sum(), wantSum)
	}
	if a.Max() != 120*time.Millisecond {
		t.Fatalf("merged Max = %v", a.Max())
	}
	if a.Mean() != wantSum/120 {
		t.Fatalf("merged Mean = %v", a.Mean())
	}
	// The merged window ends with b's most recent samples.
	if a.Percentile(100) != 120*time.Millisecond {
		t.Fatalf("merged windowed max = %v", a.Percentile(100))
	}
}
