package graph

// CSR is an immutable compressed-sparse-row snapshot of a graph, in both
// directions. The vertex-centric baseline and the power-iteration oracle use
// CSR snapshots because they operate on a frozen graph per batch, while the
// dynamic engines read the live adjacency lists directly.
type CSR struct {
	n int

	outOffsets []int32
	outTargets []VertexID

	inOffsets []int32
	inTargets []VertexID
}

// Snapshot builds a CSR copy of the current graph state.
func (g *Graph) Snapshot() *CSR {
	n := len(g.out)
	c := &CSR{
		n:          n,
		outOffsets: make([]int32, n+1),
		inOffsets:  make([]int32, n+1),
	}
	totalOut := 0
	totalIn := 0
	for i := 0; i < n; i++ {
		totalOut += len(g.out[i])
		totalIn += len(g.in[i])
		c.outOffsets[i+1] = int32(totalOut)
		c.inOffsets[i+1] = int32(totalIn)
	}
	c.outTargets = make([]VertexID, 0, totalOut)
	c.inTargets = make([]VertexID, 0, totalIn)
	for i := 0; i < n; i++ {
		c.outTargets = append(c.outTargets, g.out[i]...)
		c.inTargets = append(c.inTargets, g.in[i]...)
	}
	return c
}

// NumVertices returns the number of vertices in the snapshot.
func (c *CSR) NumVertices() int { return c.n }

// NumEdges returns the number of directed edges in the snapshot.
func (c *CSR) NumEdges() int { return len(c.outTargets) }

// OutDegree returns the out-degree of u in the snapshot.
func (c *CSR) OutDegree(u VertexID) int {
	return int(c.outOffsets[u+1] - c.outOffsets[u])
}

// InDegree returns the in-degree of v in the snapshot.
func (c *CSR) InDegree(v VertexID) int {
	return int(c.inOffsets[v+1] - c.inOffsets[v])
}

// OutNeighbors returns the out-neighbors of u (read-only view).
func (c *CSR) OutNeighbors(u VertexID) []VertexID {
	return c.outTargets[c.outOffsets[u]:c.outOffsets[u+1]]
}

// InNeighbors returns the in-neighbors of v (read-only view).
func (c *CSR) InNeighbors(v VertexID) []VertexID {
	return c.inTargets[c.inOffsets[v]:c.inOffsets[v+1]]
}
