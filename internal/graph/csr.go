package graph

import "fmt"

// CSR is an immutable compressed-sparse-row segment of a graph, in both
// directions. It is the base segment of the LSM-style store (every Graph
// reads through to one), the frozen view the vertex-centric baseline and the
// power-iteration oracle operate on, and — serialized verbatim — the
// checkpoint image format that makes recovery a bulk load instead of an edge
// replay. Accessors assume ids in [0, NumVertices()); Graph and View perform
// the bounds checks before delegating.
type CSR struct {
	n int

	outOffsets []int32
	outTargets []VertexID

	inOffsets []int32
	inTargets []VertexID
}

func emptyCSR() *CSR {
	return &CSR{outOffsets: []int32{0}, inOffsets: []int32{0}}
}

// Snapshot builds a CSR copy of the current graph state, merging the base
// segment with any delta segments. Per-vertex adjacency order is the logical
// order (overlay order for touched vertices, base order otherwise), so a
// snapshot is bit-compatible with the live graph for any float summation.
func (g *Graph) Snapshot() *CSR {
	return buildCSR(g.n, g.OutNeighbors, g.InNeighbors)
}

// buildCSR materializes a CSR from any pair of adjacency accessors.
func buildCSR(n int, out, in func(VertexID) []VertexID) *CSR {
	c := &CSR{
		n:          n,
		outOffsets: make([]int32, n+1),
		inOffsets:  make([]int32, n+1),
	}
	totalOut := 0
	totalIn := 0
	for i := 0; i < n; i++ {
		totalOut += len(out(VertexID(i)))
		totalIn += len(in(VertexID(i)))
		c.outOffsets[i+1] = int32(totalOut)
		c.inOffsets[i+1] = int32(totalIn)
	}
	c.outTargets = make([]VertexID, 0, totalOut)
	c.inTargets = make([]VertexID, 0, totalIn)
	for i := 0; i < n; i++ {
		c.outTargets = append(c.outTargets, out(VertexID(i))...)
		c.inTargets = append(c.inTargets, in(VertexID(i))...)
	}
	return c
}

// csrFromEdges builds a CSR directly from a deduplicated edge list,
// preserving first-occurrence order per vertex in both directions.
func csrFromEdges(n int, edges []Edge) *CSR {
	c := &CSR{
		n:          n,
		outOffsets: make([]int32, n+1),
		inOffsets:  make([]int32, n+1),
		outTargets: make([]VertexID, len(edges)),
		inTargets:  make([]VertexID, len(edges)),
	}
	for _, e := range edges {
		c.outOffsets[e.U+1]++
		c.inOffsets[e.V+1]++
	}
	for i := 0; i < n; i++ {
		c.outOffsets[i+1] += c.outOffsets[i]
		c.inOffsets[i+1] += c.inOffsets[i]
	}
	// next[u] tracks the fill cursor per vertex; after the fill it has
	// advanced to the next vertex's start offset.
	nextOut := make([]int32, n)
	nextIn := make([]int32, n)
	copy(nextOut, c.outOffsets[:n])
	copy(nextIn, c.inOffsets[:n])
	for _, e := range edges {
		c.outTargets[nextOut[e.U]] = e.V
		nextOut[e.U]++
		c.inTargets[nextIn[e.V]] = e.U
		nextIn[e.V]++
	}
	return c
}

// csrFromAdjacency copies explicit adjacency lists (already validated by the
// caller) into CSR form, preserving element order.
func csrFromAdjacency(out, in [][]VertexID) *CSR {
	n := len(out)
	return buildCSR(n,
		func(u VertexID) []VertexID { return out[u] },
		func(v VertexID) []VertexID { return in[v] })
}

// NewCSR assembles a CSR from raw offset/target arrays, taking ownership of
// the slices. It is the strict entry point for deserialized checkpoint
// images: the structure is validated — offset arrays of equal length n+1,
// monotone, starting at 0 and ending at the target count; targets in range;
// and per-vertex in-degrees consistent with the out lists — before anything
// is wrapped, so a corrupted image yields an error, never a CSR that can
// panic a reader later. (Byte-level integrity is the checkpoint CRC's job;
// this guards structure.)
func NewCSR(outOffsets, inOffsets []int32, outTargets, inTargets []VertexID) (*CSR, error) {
	if len(outOffsets) == 0 || len(outOffsets) != len(inOffsets) {
		return nil, fmt.Errorf("graph: csr offset arrays have %d/%d entries", len(outOffsets), len(inOffsets))
	}
	n := len(outOffsets) - 1
	if len(outTargets) != len(inTargets) {
		return nil, fmt.Errorf("graph: csr has %d out targets but %d in targets", len(outTargets), len(inTargets))
	}
	if err := checkOffsets("out", outOffsets, len(outTargets)); err != nil {
		return nil, err
	}
	if err := checkOffsets("in", inOffsets, len(inTargets)); err != nil {
		return nil, err
	}
	for _, v := range outTargets {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("graph: csr out target %d outside [0,%d)", v, n)
		}
	}
	for _, u := range inTargets {
		if u < 0 || int(u) >= n {
			return nil, fmt.Errorf("graph: csr in target %d outside [0,%d)", u, n)
		}
	}
	// Cross-check the directions degree-wise: the in-degree of every vertex
	// must match the number of out entries naming it (and symmetrically).
	deg := make([]int32, n)
	for _, v := range outTargets {
		deg[v]++
	}
	for i := 0; i < n; i++ {
		if got := inOffsets[i+1] - inOffsets[i]; got != deg[i] {
			return nil, fmt.Errorf("graph: csr vertex %d has %d in entries but %d out entries name it", i, got, deg[i])
		}
	}
	for i := range deg {
		deg[i] = 0
	}
	for _, u := range inTargets {
		deg[u]++
	}
	for i := 0; i < n; i++ {
		if got := outOffsets[i+1] - outOffsets[i]; got != deg[i] {
			return nil, fmt.Errorf("graph: csr vertex %d has %d out entries but %d in entries name it", i, got, deg[i])
		}
	}
	return &CSR{
		n:          n,
		outOffsets: outOffsets,
		outTargets: outTargets,
		inOffsets:  inOffsets,
		inTargets:  inTargets,
	}, nil
}

func checkOffsets(dir string, offsets []int32, m int) error {
	if offsets[0] != 0 {
		return fmt.Errorf("graph: csr %s offsets start at %d, want 0", dir, offsets[0])
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			return fmt.Errorf("graph: csr %s offsets decrease at vertex %d", dir, i-1)
		}
	}
	if int(offsets[len(offsets)-1]) != m {
		return fmt.Errorf("graph: csr %s offsets end at %d, want %d", dir, offsets[len(offsets)-1], m)
	}
	return nil
}

// RawOut exposes the underlying out-direction arrays (offsets has n+1
// entries, targets one per edge). Read-only: the arrays are the live segment.
func (c *CSR) RawOut() (offsets []int32, targets []VertexID) {
	return c.outOffsets, c.outTargets
}

// RawIn exposes the underlying in-direction arrays with the same contract as
// RawOut.
func (c *CSR) RawIn() (offsets []int32, targets []VertexID) {
	return c.inOffsets, c.inTargets
}

// NumVertices returns the number of vertices in the snapshot.
func (c *CSR) NumVertices() int { return c.n }

// NumEdges returns the number of directed edges in the snapshot.
func (c *CSR) NumEdges() int { return len(c.outTargets) }

// OutDegree returns the out-degree of u in the snapshot.
func (c *CSR) OutDegree(u VertexID) int {
	return int(c.outOffsets[u+1] - c.outOffsets[u])
}

// InDegree returns the in-degree of v in the snapshot.
func (c *CSR) InDegree(v VertexID) int {
	return int(c.inOffsets[v+1] - c.inOffsets[v])
}

// OutNeighbors returns the out-neighbors of u (read-only view).
func (c *CSR) OutNeighbors(u VertexID) []VertexID {
	return c.outTargets[c.outOffsets[u]:c.outOffsets[u+1]]
}

// InNeighbors returns the in-neighbors of v (read-only view).
func (c *CSR) InNeighbors(v VertexID) []VertexID {
	return c.inTargets[c.inOffsets[v]:c.inOffsets[v+1]]
}
