package graph

// Adjacency is the read-only neighbor-access surface shared by *CSR, *View
// and *Graph. Code that only walks a frozen graph (cold pushes, random
// walks, oracles) can accept any of the three. Accessor behavior for
// out-of-range ids follows the implementing type: Graph and View return
// 0/nil, CSR assumes in-range ids.
type Adjacency interface {
	NumVertices() int
	OutDegree(u VertexID) int
	InDegree(v VertexID) int
	OutNeighbors(u VertexID) []VertexID
	InNeighbors(v VertexID) []VertexID
}

var (
	_ Adjacency = (*CSR)(nil)
	_ Adjacency = (*View)(nil)
	_ Adjacency = (*Graph)(nil)
)

// viewOverlay is one vertex's frozen delta segments. hasOut/hasIn
// distinguish "direction overlaid (possibly with zero edges)" from
// "direction reads the base".
type viewOverlay struct {
	out, in       []VertexID
	hasOut, hasIn bool
}

// View is a frozen, immutable view of the layered graph state: the shared
// base segment plus the delta segments present when the view was taken.
// Building one costs O(#overlaid vertices) — proportional to what recent
// batches touched, not to graph size — which is what lets the on-demand
// query path stop materializing a full CSR per graph generation. A View is
// safe for concurrent readers and stays valid (and logically unchanged)
// across later graph mutations and compactions: mutations clone or extend
// past the frozen segment bounds, and compaction only swaps segments the
// view does not reference.
type View struct {
	base *CSR
	ov   map[VertexID]viewOverlay // nil when the graph was fully compacted
	n, m int

	epoch      uint64
	deltaEdges int
}

// View captures the current graph state. It seals every live delta segment:
// a later RemoveEdge on one of them copies the segment instead of editing it
// in place (appends need no copy — the view's slice bounds its reads).
func (g *Graph) View() *View {
	g.viewGen++
	v := &View{
		base:       g.base,
		n:          g.n,
		m:          g.m,
		epoch:      g.epoch,
		deltaEdges: g.deltaEdges,
	}
	if len(g.overlaid) > 0 {
		v.ov = make(map[VertexID]viewOverlay, len(g.overlaid))
		for _, u := range g.overlaid {
			var o viewOverlay
			if s := g.outOv[u]; s != nil {
				o.out, o.hasOut = s, true
			}
			if s := g.inOv[u]; s != nil {
				o.in, o.hasIn = s, true
			}
			v.ov[u] = o
		}
	}
	return v
}

// NumVertices returns the number of vertices in the view.
func (v *View) NumVertices() int { return v.n }

// NumEdges returns the number of directed edges in the view.
func (v *View) NumEdges() int { return v.m }

// Epoch returns the base-segment epoch the view pins.
func (v *View) Epoch() uint64 { return v.epoch }

// DeltaEdges returns the number of delta-segment adjacency entries layered
// over the base — the touched-proportional cost of having built this view.
func (v *View) DeltaEdges() int { return v.deltaEdges }

// OverlaidVertices returns the number of vertices read from delta segments
// rather than the base.
func (v *View) OverlaidVertices() int { return len(v.ov) }

// Base returns the pinned CSR base segment when the view carries no deltas,
// and nil otherwise. Readers with a fast path for flat CSR data (the cold
// push, the walk refinement) use it to skip per-vertex overlay lookups in
// the common freshly-compacted case.
func (v *View) Base() *CSR {
	if len(v.ov) == 0 && v.base.n == v.n {
		return v.base
	}
	return nil
}

// OutDegree returns the out-degree of u (0 for out-of-range ids).
func (v *View) OutDegree(u VertexID) int { return len(v.OutNeighbors(u)) }

// InDegree returns the in-degree of u (0 for out-of-range ids).
func (v *View) InDegree(u VertexID) int { return len(v.InNeighbors(u)) }

// OutNeighbors returns the out-neighbors of u. The slice is immutable for
// the lifetime of the view.
func (v *View) OutNeighbors(u VertexID) []VertexID {
	if u < 0 || int(u) >= v.n {
		return nil
	}
	if v.ov != nil {
		if o, ok := v.ov[u]; ok && o.hasOut {
			return o.out
		}
	}
	if int(u) < v.base.n {
		return v.base.OutNeighbors(u)
	}
	return nil
}

// InNeighbors returns the in-neighbors of u with the same contract as
// OutNeighbors.
func (v *View) InNeighbors(u VertexID) []VertexID {
	if u < 0 || int(u) >= v.n {
		return nil
	}
	if v.ov != nil {
		if o, ok := v.ov[u]; ok && o.hasIn {
			return o.in
		}
	}
	if int(u) < v.base.n {
		return v.base.InNeighbors(u)
	}
	return nil
}

// CSR materializes the view into a flat CSR, preserving logical adjacency
// order. This is the off-pipeline half of a background compaction.
func (v *View) CSR() *CSR {
	return buildCSR(v.n, v.OutNeighbors, v.InNeighbors)
}
