// Package graph implements the dynamic directed graph substrate the local
// update scheme runs on: adjacency lists with O(1) amortized edge insertion,
// swap-based deletion, both out- and in-neighbor access (the push walks
// in-neighbors, the invariant restore needs out-degrees), degree statistics
// and immutable CSR snapshots for the baselines that want a frozen view.
//
// Vertices are identified by dense non-negative int32 ids. The graph grows
// automatically when an edge mentions a vertex id beyond the current size,
// matching the paper's dynamic model where "an edge insertion may introduce
// new vertices".
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// VertexID identifies a vertex. IDs are dense and non-negative.
type VertexID = int32

// Edge is a directed edge u -> v.
type Edge struct {
	U, V VertexID
}

// ErrEdgeNotFound is returned by RemoveEdge when the edge does not exist.
var ErrEdgeNotFound = errors.New("graph: edge not found")

// ErrNegativeVertex is returned when an edge mentions a negative vertex id.
var ErrNegativeVertex = errors.New("graph: negative vertex id")

// Graph is a dynamic directed multigraph-free graph: at most one edge u->v is
// stored per ordered pair. It is not safe for concurrent mutation; the
// engines mutate it only between push rounds (the push itself only reads).
type Graph struct {
	out [][]VertexID // out[u] = out-neighbors of u
	in  [][]VertexID // in[v]  = in-neighbors of v
	// edgeSet tracks membership for duplicate/removal checks.
	edgeSet map[Edge]struct{}
	m       int // number of edges
}

// New returns an empty graph pre-sized for n vertices.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{
		out:     make([][]VertexID, n),
		in:      make([][]VertexID, n),
		edgeSet: make(map[Edge]struct{}),
	}
}

// FromEdges builds a graph from a list of edges, ignoring duplicates.
func FromEdges(edges []Edge) *Graph {
	g := New(0)
	for _, e := range edges {
		_, _ = g.AddEdge(e.U, e.V)
	}
	return g
}

// FromAdjacency rebuilds a graph from explicit out- and in-adjacency lists,
// preserving their exact element order. It is the checkpoint-recovery
// constructor: adjacency order is observable state (it fixes the
// floating-point summation order of subsequent pushes), so a recovered graph
// must reproduce it bit-for-bit rather than merely the same edge set. The
// two list families must describe the same edge set with no duplicates,
// otherwise an error is returned. The graph takes ownership of the slices.
func FromAdjacency(out, in [][]VertexID) (*Graph, error) {
	if len(out) != len(in) {
		return nil, fmt.Errorf("graph: adjacency mismatch: %d out slots, %d in slots", len(out), len(in))
	}
	n := len(out)
	g := &Graph{out: out, in: in, edgeSet: make(map[Edge]struct{})}
	for u, nbrs := range out {
		for _, v := range nbrs {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("graph: out[%d] names vertex %d outside [0,%d)", u, v, n)
			}
			e := Edge{VertexID(u), v}
			if _, dup := g.edgeSet[e]; dup {
				return nil, fmt.Errorf("graph: duplicate edge (%d,%d) in out lists", u, v)
			}
			g.edgeSet[e] = struct{}{}
		}
	}
	g.m = len(g.edgeSet)
	inSeen := make(map[Edge]struct{}, g.m)
	for v, nbrs := range in {
		for _, u := range nbrs {
			if u < 0 || int(u) >= n {
				return nil, fmt.Errorf("graph: in[%d] names vertex %d outside [0,%d)", v, u, n)
			}
			e := Edge{u, VertexID(v)}
			if _, ok := g.edgeSet[e]; !ok {
				return nil, fmt.Errorf("graph: in lists have (%d,%d) missing from out lists", u, v)
			}
			if _, dup := inSeen[e]; dup {
				return nil, fmt.Errorf("graph: duplicate edge (%d,%d) in in lists", u, v)
			}
			inSeen[e] = struct{}{}
		}
	}
	if len(inSeen) != g.m {
		return nil, fmt.Errorf("graph: in lists cover %d edges, out lists %d", len(inSeen), g.m)
	}
	return g, nil
}

// NumVertices returns the number of vertex slots (max id seen + 1, or the
// initial size if larger).
func (g *Graph) NumVertices() int { return len(g.out) }

// NumEdges returns the number of directed edges currently in the graph.
func (g *Graph) NumEdges() int { return g.m }

// EnsureVertex grows the graph so that id is a valid vertex.
func (g *Graph) EnsureVertex(id VertexID) {
	if int(id) < len(g.out) {
		return
	}
	need := int(id) + 1
	for len(g.out) < need {
		g.out = append(g.out, nil)
		g.in = append(g.in, nil)
	}
}

// HasEdge reports whether edge u->v exists.
func (g *Graph) HasEdge(u, v VertexID) bool {
	_, ok := g.edgeSet[Edge{u, v}]
	return ok
}

// AddEdge inserts the directed edge u->v. Inserting an edge that already
// exists is a no-op and returns false with a nil error; a successful insert
// returns true. Negative ids return ErrNegativeVertex.
func (g *Graph) AddEdge(u, v VertexID) (bool, error) {
	if u < 0 || v < 0 {
		return false, fmt.Errorf("%w: (%d,%d)", ErrNegativeVertex, u, v)
	}
	e := Edge{u, v}
	if _, ok := g.edgeSet[e]; ok {
		return false, nil
	}
	g.EnsureVertex(u)
	g.EnsureVertex(v)
	g.out[u] = append(g.out[u], v)
	g.in[v] = append(g.in[v], u)
	g.edgeSet[e] = struct{}{}
	g.m++
	return true, nil
}

// RemoveEdge deletes the directed edge u->v. Deleting a missing edge returns
// ErrEdgeNotFound.
func (g *Graph) RemoveEdge(u, v VertexID) error {
	e := Edge{u, v}
	if _, ok := g.edgeSet[e]; !ok {
		return fmt.Errorf("%w: (%d,%d)", ErrEdgeNotFound, u, v)
	}
	delete(g.edgeSet, e)
	g.out[u] = removeOne(g.out[u], v)
	g.in[v] = removeOne(g.in[v], u)
	g.m--
	return nil
}

// removeOne removes the first occurrence of x from s by swapping with the
// last element (order within an adjacency list is not meaningful).
func removeOne(s []VertexID, x VertexID) []VertexID {
	for i, y := range s {
		if y == x {
			last := len(s) - 1
			s[i] = s[last]
			return s[:last]
		}
	}
	return s
}

// OutDegree returns the out-degree of u (0 for out-of-range ids).
func (g *Graph) OutDegree(u VertexID) int {
	if int(u) >= len(g.out) || u < 0 {
		return 0
	}
	return len(g.out[u])
}

// InDegree returns the in-degree of v (0 for out-of-range ids).
func (g *Graph) InDegree(v VertexID) int {
	if int(v) >= len(g.in) || v < 0 {
		return 0
	}
	return len(g.in[v])
}

// OutNeighbors returns the out-neighbor slice of u. The slice is owned by the
// graph; callers must not mutate it and must not hold it across mutations.
func (g *Graph) OutNeighbors(u VertexID) []VertexID {
	if int(u) >= len(g.out) || u < 0 {
		return nil
	}
	return g.out[u]
}

// InNeighbors returns the in-neighbor slice of v with the same aliasing rules
// as OutNeighbors.
func (g *Graph) InNeighbors(v VertexID) []VertexID {
	if int(v) >= len(g.in) || v < 0 {
		return nil
	}
	return g.in[v]
}

// Edges returns all edges in an unspecified order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u, nbrs := range g.out {
		for _, v := range nbrs {
			out = append(out, Edge{VertexID(u), v})
		}
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		out:     make([][]VertexID, len(g.out)),
		in:      make([][]VertexID, len(g.in)),
		edgeSet: make(map[Edge]struct{}, len(g.edgeSet)),
		m:       g.m,
	}
	for i, s := range g.out {
		c.out[i] = append([]VertexID(nil), s...)
	}
	for i, s := range g.in {
		c.in[i] = append([]VertexID(nil), s...)
	}
	for e := range g.edgeSet {
		c.edgeSet[e] = struct{}{}
	}
	return c
}

// AverageDegree returns m/n, the average out-degree, or 0 for an empty graph.
func (g *Graph) AverageDegree() float64 {
	if len(g.out) == 0 {
		return 0
	}
	return float64(g.m) / float64(len(g.out))
}

// MaxOutDegree returns the largest out-degree in the graph.
func (g *Graph) MaxOutDegree() int {
	max := 0
	for _, s := range g.out {
		if len(s) > max {
			max = len(s)
		}
	}
	return max
}

// TopDegreeVertices returns up to k vertex ids sorted by decreasing
// out-degree (ties broken by ascending id). It backs the paper's "top-10 /
// top-1K / top-1M out-degree" source selection (Figure 7).
func (g *Graph) TopDegreeVertices(k int) []VertexID {
	n := len(g.out)
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	ids := make([]VertexID, n)
	for i := range ids {
		ids[i] = VertexID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		da, db := len(g.out[ids[a]]), len(g.out[ids[b]])
		if da != db {
			return da > db
		}
		return ids[a] < ids[b]
	})
	return ids[:k]
}

// DegreeHistogram returns a map from out-degree to the number of vertices
// with that out-degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for _, s := range g.out {
		h[len(s)]++
	}
	return h
}

// CheckConsistency validates the internal invariants of the graph: the edge
// set, the out lists and the in lists must describe the same edge multiset
// and m must equal their cardinality. It is used by tests and by failure
// injection tooling.
func (g *Graph) CheckConsistency() error {
	if len(g.out) != len(g.in) {
		return fmt.Errorf("graph: out has %d slots, in has %d", len(g.out), len(g.in))
	}
	countOut := 0
	for u, nbrs := range g.out {
		countOut += len(nbrs)
		for _, v := range nbrs {
			if _, ok := g.edgeSet[Edge{VertexID(u), v}]; !ok {
				return fmt.Errorf("graph: out list has (%d,%d) missing from edge set", u, v)
			}
		}
	}
	countIn := 0
	for v, nbrs := range g.in {
		countIn += len(nbrs)
		for _, u := range nbrs {
			if _, ok := g.edgeSet[Edge{u, VertexID(v)}]; !ok {
				return fmt.Errorf("graph: in list has (%d,%d) missing from edge set", u, v)
			}
		}
	}
	if countOut != g.m || countIn != g.m || len(g.edgeSet) != g.m {
		return fmt.Errorf("graph: edge count mismatch m=%d out=%d in=%d set=%d",
			g.m, countOut, countIn, len(g.edgeSet))
	}
	return nil
}
