// Package graph implements the dynamic directed graph substrate the local
// update scheme runs on. Storage is LSM-style: an immutable CSR base segment
// holds the bulk of the adjacency, and per-vertex mutable delta segments
// (overlays) absorb edge insertions and deletions. Reads fall through to the
// base for untouched vertices, so the hottest loops in the system — push
// frontier scans, out-degree lookups, cold queries — run over dense
// sequentially-scannable arrays instead of pointer-chasing per-vertex slices.
//
// A delta segment is a fully materialized adjacency list for one vertex and
// direction: the first mutation of a vertex copies its base list into the
// overlay (copy-on-first-touch), and subsequent mutations edit the overlay in
// place. Element order is preserved on both insert (append) and delete
// (shift), because adjacency order fixes the floating-point summation order
// of every push — the bit-identity guarantees of the differential suite rest
// on it. Compaction (see compact.go) merges the overlays into a fresh base by
// materializing exactly the logical adjacency, so it never perturbs order.
//
// View (see view.go) captures an O(#overlaid vertices) frozen snapshot of the
// layered state for concurrent readers; Snapshot still materializes a full
// CSR when a flat copy is wanted. Both pin their graph view by the epoch that
// advances on every base swap.
//
// Vertices are identified by dense non-negative int32 ids. The graph grows
// automatically when an edge mentions a vertex id beyond the current size,
// matching the paper's dynamic model where "an edge insertion may introduce
// new vertices".
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// VertexID identifies a vertex. IDs are dense and non-negative.
type VertexID = int32

// Edge is a directed edge u -> v.
type Edge struct {
	U, V VertexID
}

// ErrEdgeNotFound is returned by RemoveEdge when the edge does not exist.
var ErrEdgeNotFound = errors.New("graph: edge not found")

// ErrNegativeVertex is returned when an edge mentions a negative vertex id.
var ErrNegativeVertex = errors.New("graph: negative vertex id")

// Graph is a dynamic directed multigraph-free graph: at most one edge u->v is
// stored per ordered pair. It is not safe for concurrent mutation; the
// engines mutate it only between push rounds (the push itself only reads).
//
// Internally the graph is an immutable CSR base plus per-vertex overlay
// segments. An overlay slot of nil means "read the base"; a non-nil (possibly
// empty) overlay is the complete current adjacency of that vertex/direction
// and shadows the base entirely. Overlay generations implement copy-on-write
// against Views: an overlay last written before the most recent View() call
// is sealed, and the next order-preserving deletion clones it instead of
// shifting in place (appends are always safe — a View's slice header bounds
// its reads below any appended element).
type Graph struct {
	base *CSR // immutable base segment; never nil
	n    int  // vertex slots (>= base.n: vertices can be added after a compaction)
	m    int  // number of live edges

	outOv  [][]VertexID // delta segment per vertex: nil = fall through to base
	inOv   [][]VertexID
	outGen []uint64 // viewGen at last write of the overlay (copy-on-write seal)
	inGen  []uint64

	overlaid   []VertexID // vertices with at least one non-nil overlay
	deltaEdges int        // total adjacency entries held in overlays (both directions)

	epoch   uint64 // bumped on every base swap; Views pin it
	viewGen uint64 // bumped by View(); drives overlay sealing

	// edgeSet tracks membership for duplicate/removal checks. It is built
	// lazily on the first mutation or HasEdge call, so read-only graphs
	// loaded from a CSR image (checkpoint recovery) never pay the O(m) map
	// construction.
	edgeSet map[Edge]struct{}
}

// New returns an empty graph pre-sized for n vertices.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return fromBase(emptyCSR(), n)
}

// FromCSR wraps an immutable CSR as the base segment of a new graph with no
// deltas. The CSR is retained as-is (zero copy): this is the checkpoint-image
// recovery constructor, and together with the lazy edge-membership index it
// makes recovery cost O(1) beyond decoding the image itself.
func FromCSR(c *CSR) *Graph {
	return fromBase(c, c.n)
}

func fromBase(c *CSR, n int) *Graph {
	if n < c.n {
		n = c.n
	}
	return &Graph{
		base:   c,
		n:      n,
		m:      c.NumEdges(),
		outOv:  make([][]VertexID, n),
		inOv:   make([][]VertexID, n),
		outGen: make([]uint64, n),
		inGen:  make([]uint64, n),
	}
}

// FromEdges builds a graph from a list of edges, ignoring duplicates (and,
// like AddEdge, edges naming negative vertices). The result is fully
// compacted: the edges land directly in the CSR base, in first-occurrence
// order per vertex — exactly the adjacency order an AddEdge loop would have
// produced.
func FromEdges(edges []Edge) *Graph {
	set := make(map[Edge]struct{}, len(edges))
	uniq := make([]Edge, 0, len(edges))
	n := 0
	for _, e := range edges {
		if e.U < 0 || e.V < 0 {
			continue
		}
		if _, dup := set[e]; dup {
			continue
		}
		set[e] = struct{}{}
		uniq = append(uniq, e)
		if int(e.U) >= n {
			n = int(e.U) + 1
		}
		if int(e.V) >= n {
			n = int(e.V) + 1
		}
	}
	g := fromBase(csrFromEdges(n, uniq), n)
	g.edgeSet = set
	return g
}

// FromAdjacency rebuilds a graph from explicit out- and in-adjacency lists,
// preserving their exact element order. It is the (v1) checkpoint-recovery
// constructor: adjacency order is observable state (it fixes the
// floating-point summation order of subsequent pushes), so a recovered graph
// must reproduce it bit-for-bit rather than merely the same edge set. The
// two list families must describe the same edge set with no duplicates,
// otherwise an error is returned.
func FromAdjacency(out, in [][]VertexID) (*Graph, error) {
	if len(out) != len(in) {
		return nil, fmt.Errorf("graph: adjacency mismatch: %d out slots, %d in slots", len(out), len(in))
	}
	n := len(out)
	set := make(map[Edge]struct{})
	for u, nbrs := range out {
		for _, v := range nbrs {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("graph: out[%d] names vertex %d outside [0,%d)", u, v, n)
			}
			e := Edge{VertexID(u), v}
			if _, dup := set[e]; dup {
				return nil, fmt.Errorf("graph: duplicate edge (%d,%d) in out lists", u, v)
			}
			set[e] = struct{}{}
		}
	}
	m := len(set)
	inSeen := make(map[Edge]struct{}, m)
	for v, nbrs := range in {
		for _, u := range nbrs {
			if u < 0 || int(u) >= n {
				return nil, fmt.Errorf("graph: in[%d] names vertex %d outside [0,%d)", v, u, n)
			}
			e := Edge{u, VertexID(v)}
			if _, ok := set[e]; !ok {
				return nil, fmt.Errorf("graph: in lists have (%d,%d) missing from out lists", u, v)
			}
			if _, dup := inSeen[e]; dup {
				return nil, fmt.Errorf("graph: duplicate edge (%d,%d) in in lists", u, v)
			}
			inSeen[e] = struct{}{}
		}
	}
	if len(inSeen) != m {
		return nil, fmt.Errorf("graph: in lists cover %d edges, out lists %d", len(inSeen), m)
	}
	g := fromBase(csrFromAdjacency(out, in), n)
	g.edgeSet = set
	return g, nil
}

// NumVertices returns the number of vertex slots (max id seen + 1, or the
// initial size if larger).
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of directed edges currently in the graph.
func (g *Graph) NumEdges() int { return g.m }

// Epoch identifies the current base segment; it advances on every compaction
// (base swap). Logical graph content is unchanged across an epoch bump.
func (g *Graph) Epoch() uint64 { return g.epoch }

// DeltaEdges returns the total number of adjacency entries held in mutable
// delta segments (counting both directions). It is the size metric
// compaction policies trigger on, and the quantity a touched-proportional
// snapshot copies.
func (g *Graph) DeltaEdges() int { return g.deltaEdges }

// OverlaidVertices returns the number of vertices with at least one delta
// segment.
func (g *Graph) OverlaidVertices() int { return len(g.overlaid) }

// BaseEdges returns the number of edges stored in the immutable base segment
// (live edges may be fewer — deletions shadow the base — or more, when
// insertions have not been compacted yet).
func (g *Graph) BaseEdges() int { return g.base.NumEdges() }

// EnsureVertex grows the graph so that id is a valid vertex.
func (g *Graph) EnsureVertex(id VertexID) {
	need := int(id) + 1
	if need <= g.n {
		return
	}
	g.outOv = grow(g.outOv, need)
	g.inOv = grow(g.inOv, need)
	g.outGen = grow(g.outGen, need)
	g.inGen = grow(g.inGen, need)
	g.n = need
}

// grow extends s to length n, zero-filling any reused capacity.
func grow[T any](s []T, n int) []T {
	if n <= cap(s) {
		old := len(s)
		s = s[:n]
		var zero T
		for i := old; i < n; i++ {
			s[i] = zero
		}
		return s
	}
	want := 2 * cap(s)
	if want < n {
		want = n
	}
	ns := make([]T, n, want)
	copy(ns, s)
	return ns
}

// ensureEdgeSet builds the lazy membership index from the logical adjacency.
func (g *Graph) ensureEdgeSet() {
	if g.edgeSet != nil {
		return
	}
	set := make(map[Edge]struct{}, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.OutNeighbors(VertexID(u)) {
			set[Edge{VertexID(u), v}] = struct{}{}
		}
	}
	g.edgeSet = set
}

// HasEdge reports whether edge u->v exists.
func (g *Graph) HasEdge(u, v VertexID) bool {
	g.ensureEdgeSet()
	_, ok := g.edgeSet[Edge{u, v}]
	return ok
}

// baseOut returns u's base-segment out list (nil when u postdates the base).
func (g *Graph) baseOut(u VertexID) []VertexID {
	if int(u) < g.base.n {
		return g.base.OutNeighbors(u)
	}
	return nil
}

func (g *Graph) baseIn(v VertexID) []VertexID {
	if int(v) < g.base.n {
		return g.base.InNeighbors(v)
	}
	return nil
}

// materializeOut creates u's out delta segment by copying the base list.
// Callers must have checked that no overlay exists yet.
func (g *Graph) materializeOut(u VertexID) []VertexID {
	base := g.baseOut(u)
	ov := make([]VertexID, len(base), len(base)+4)
	copy(ov, base)
	if g.inOv[u] == nil {
		g.overlaid = append(g.overlaid, u)
	}
	g.outOv[u] = ov
	g.outGen[u] = g.viewGen
	g.deltaEdges += len(ov)
	return ov
}

func (g *Graph) materializeIn(v VertexID) []VertexID {
	base := g.baseIn(v)
	ov := make([]VertexID, len(base), len(base)+4)
	copy(ov, base)
	if g.outOv[v] == nil {
		g.overlaid = append(g.overlaid, v)
	}
	g.inOv[v] = ov
	g.inGen[v] = g.viewGen
	g.deltaEdges += len(ov)
	return ov
}

// writableOut returns an out overlay safe to edit in place: it materializes
// the segment on first touch and clones it when a View taken since the last
// write still aliases it.
func (g *Graph) writableOut(u VertexID) []VertexID {
	ov := g.outOv[u]
	if ov == nil {
		return g.materializeOut(u)
	}
	if g.outGen[u] < g.viewGen {
		ov = append(make([]VertexID, 0, len(ov)+4), ov...)
		g.outOv[u] = ov
		g.outGen[u] = g.viewGen
	}
	return ov
}

func (g *Graph) writableIn(v VertexID) []VertexID {
	ov := g.inOv[v]
	if ov == nil {
		return g.materializeIn(v)
	}
	if g.inGen[v] < g.viewGen {
		ov = append(make([]VertexID, 0, len(ov)+4), ov...)
		g.inOv[v] = ov
		g.inGen[v] = g.viewGen
	}
	return ov
}

// AddEdge inserts the directed edge u->v. Inserting an edge that already
// exists is a no-op and returns false with a nil error; a successful insert
// returns true. Negative ids return ErrNegativeVertex.
func (g *Graph) AddEdge(u, v VertexID) (bool, error) {
	if u < 0 || v < 0 {
		return false, fmt.Errorf("%w: (%d,%d)", ErrNegativeVertex, u, v)
	}
	g.ensureEdgeSet()
	e := Edge{u, v}
	if _, ok := g.edgeSet[e]; ok {
		return false, nil
	}
	g.EnsureVertex(u)
	g.EnsureVertex(v)
	// The append itself never writes inside a sealed View's slice length,
	// but it advances the segment's generation (so compaction keeps it), and
	// a later in-place delete trusts that generation to skip the COW clone.
	// Appends therefore go through the writable path too: the segment is
	// cloned at most once per sealed view, and a View can never observe a
	// shift-delete through a shared prefix.
	g.outOv[u] = append(g.writableOut(u), v)
	g.inOv[v] = append(g.writableIn(v), u)
	g.deltaEdges += 2
	g.edgeSet[e] = struct{}{}
	g.m++
	return true, nil
}

// RemoveEdge deletes the directed edge u->v, preserving the relative order of
// the surviving neighbors (adjacency order is observable: it fixes float
// summation order). Deleting a missing edge returns ErrEdgeNotFound.
func (g *Graph) RemoveEdge(u, v VertexID) error {
	g.ensureEdgeSet()
	e := Edge{u, v}
	if _, ok := g.edgeSet[e]; !ok {
		return fmt.Errorf("%w: (%d,%d)", ErrEdgeNotFound, u, v)
	}
	delete(g.edgeSet, e)
	g.outOv[u] = removeInOrder(g.writableOut(u), v)
	g.inOv[v] = removeInOrder(g.writableIn(v), u)
	g.deltaEdges -= 2
	g.m--
	return nil
}

// removeInOrder removes the first occurrence of x from s, shifting the tail
// left so the surviving element order is unchanged.
func removeInOrder(s []VertexID, x VertexID) []VertexID {
	for i, y := range s {
		if y == x {
			copy(s[i:], s[i+1:])
			return s[:len(s)-1]
		}
	}
	return s
}

// OutDegree returns the out-degree of u (0 for out-of-range ids).
func (g *Graph) OutDegree(u VertexID) int {
	if u < 0 || int(u) >= g.n {
		return 0
	}
	if ov := g.outOv[u]; ov != nil {
		return len(ov)
	}
	if int(u) < g.base.n {
		return g.base.OutDegree(u)
	}
	return 0
}

// InDegree returns the in-degree of v (0 for out-of-range ids).
func (g *Graph) InDegree(v VertexID) int {
	if v < 0 || int(v) >= g.n {
		return 0
	}
	if ov := g.inOv[v]; ov != nil {
		return len(ov)
	}
	if int(v) < g.base.n {
		return g.base.InDegree(v)
	}
	return 0
}

// OutNeighbors returns the out-neighbor slice of u. The slice is owned by the
// graph; callers must not mutate it and must not hold it across mutations
// (a mutation or compaction may redirect the vertex to a different segment).
func (g *Graph) OutNeighbors(u VertexID) []VertexID {
	if u < 0 || int(u) >= g.n {
		return nil
	}
	if ov := g.outOv[u]; ov != nil {
		return ov
	}
	return g.baseOut(u)
}

// InNeighbors returns the in-neighbor slice of v with the same aliasing rules
// as OutNeighbors.
func (g *Graph) InNeighbors(v VertexID) []VertexID {
	if v < 0 || int(v) >= g.n {
		return nil
	}
	if ov := g.inOv[v]; ov != nil {
		return ov
	}
	return g.baseIn(v)
}

// Edges returns all edges in an unspecified order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.OutNeighbors(VertexID(u)) {
			out = append(out, Edge{VertexID(u), v})
		}
	}
	return out
}

// Clone returns a deep copy of the graph. The immutable base segment is
// shared (it is never written); delta segments are copied.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		base:       g.base,
		n:          g.n,
		m:          g.m,
		outOv:      make([][]VertexID, g.n),
		inOv:       make([][]VertexID, g.n),
		outGen:     make([]uint64, g.n),
		inGen:      make([]uint64, g.n),
		overlaid:   append([]VertexID(nil), g.overlaid...),
		deltaEdges: g.deltaEdges,
		epoch:      g.epoch,
	}
	for _, u := range g.overlaid {
		if s := g.outOv[u]; s != nil {
			c.outOv[u] = append(make([]VertexID, 0, len(s)), s...)
		}
		if s := g.inOv[u]; s != nil {
			c.inOv[u] = append(make([]VertexID, 0, len(s)), s...)
		}
	}
	if g.edgeSet != nil {
		c.edgeSet = make(map[Edge]struct{}, len(g.edgeSet))
		for e := range g.edgeSet {
			c.edgeSet[e] = struct{}{}
		}
	}
	return c
}

// AverageDegree returns m/n, the average out-degree, or 0 for an empty graph.
func (g *Graph) AverageDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.m) / float64(g.n)
}

// MaxOutDegree returns the largest out-degree in the graph.
func (g *Graph) MaxOutDegree() int {
	max := 0
	for u := 0; u < g.n; u++ {
		if d := g.OutDegree(VertexID(u)); d > max {
			max = d
		}
	}
	return max
}

// TopDegreeVertices returns up to k vertex ids sorted by decreasing
// out-degree (ties broken by ascending id). It backs the paper's "top-10 /
// top-1K / top-1M out-degree" source selection (Figure 7).
func (g *Graph) TopDegreeVertices(k int) []VertexID {
	n := g.n
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	ids := make([]VertexID, n)
	for i := range ids {
		ids[i] = VertexID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		da, db := g.OutDegree(ids[a]), g.OutDegree(ids[b])
		if da != db {
			return da > db
		}
		return ids[a] < ids[b]
	})
	return ids[:k]
}

// DegreeHistogram returns a map from out-degree to the number of vertices
// with that out-degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for u := 0; u < g.n; u++ {
		h[g.OutDegree(VertexID(u))]++
	}
	return h
}

// CheckConsistency validates the internal invariants of the graph: the edge
// set, the logical out lists and in lists must describe the same edge
// multiset, m must equal their cardinality, and the delta-segment accounting
// (deltaEdges, overlaid registry) must match the segments actually present.
// It is used by tests and by failure injection tooling.
func (g *Graph) CheckConsistency() error {
	if len(g.outOv) != g.n || len(g.inOv) != g.n {
		return fmt.Errorf("graph: %d vertices but %d out / %d in overlay slots", g.n, len(g.outOv), len(g.inOv))
	}
	g.ensureEdgeSet()
	countOut := 0
	for u := 0; u < g.n; u++ {
		nbrs := g.OutNeighbors(VertexID(u))
		countOut += len(nbrs)
		for _, v := range nbrs {
			if _, ok := g.edgeSet[Edge{VertexID(u), v}]; !ok {
				return fmt.Errorf("graph: out list has (%d,%d) missing from edge set", u, v)
			}
		}
	}
	countIn := 0
	for v := 0; v < g.n; v++ {
		nbrs := g.InNeighbors(VertexID(v))
		countIn += len(nbrs)
		for _, u := range nbrs {
			if _, ok := g.edgeSet[Edge{u, VertexID(v)}]; !ok {
				return fmt.Errorf("graph: in list has (%d,%d) missing from edge set", u, v)
			}
		}
	}
	if countOut != g.m || countIn != g.m || len(g.edgeSet) != g.m {
		return fmt.Errorf("graph: edge count mismatch m=%d out=%d in=%d set=%d",
			g.m, countOut, countIn, len(g.edgeSet))
	}
	delta := 0
	reg := make(map[VertexID]bool, len(g.overlaid))
	for _, u := range g.overlaid {
		if reg[u] {
			return fmt.Errorf("graph: vertex %d registered as overlaid twice", u)
		}
		reg[u] = true
		delta += len(g.outOv[u]) + len(g.inOv[u])
	}
	for u := 0; u < g.n; u++ {
		if (g.outOv[u] != nil || g.inOv[u] != nil) && !reg[VertexID(u)] {
			return fmt.Errorf("graph: vertex %d has a delta segment but is not registered", u)
		}
	}
	if delta != g.deltaEdges {
		return fmt.Errorf("graph: delta accounting mismatch: counted %d, recorded %d", delta, g.deltaEdges)
	}
	return nil
}
