package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// dumpAdjacency deep-copies the full adjacency of any Adjacency implementor,
// so recorded expectations cannot alias live overlay or base arrays.
func dumpAdjacency(a Adjacency) (out, in [][]VertexID) {
	n := a.NumVertices()
	out = make([][]VertexID, n)
	in = make([][]VertexID, n)
	for v := 0; v < n; v++ {
		out[v] = append([]VertexID(nil), a.OutNeighbors(VertexID(v))...)
		in[v] = append([]VertexID(nil), a.InNeighbors(VertexID(v))...)
	}
	return out, in
}

// churn applies a deterministic mixed workload: appends, deletes, and new
// vertices, leaving a healthy pile of delta segments behind.
func churn(t *testing.T, g *Graph, seed int64, ops int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < ops; i++ {
		n := g.NumVertices()
		u := VertexID(rng.Intn(n + 1)) // occasionally a brand-new vertex
		v := VertexID(rng.Intn(n + 1))
		if u == v {
			continue
		}
		if rng.Intn(4) == 0 && g.HasEdge(u, v) {
			if err := g.RemoveEdge(u, v); err != nil {
				t.Fatal(err)
			}
		} else if _, err := g.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCompactPreservesOrder is the storage engine's core contract: folding
// the delta segments into a fresh base changes nothing observable — vertex
// count, edge count, and the exact element order of every adjacency list,
// which downstream is the float summation order of every push.
func TestCompactPreservesOrder(t *testing.T) {
	g := New(8)
	churn(t, g, 42, 600)
	if err := g.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	wantOut, wantIn := dumpAdjacency(g)
	wantN, wantM := g.NumVertices(), g.NumEdges()
	epoch := g.Epoch()

	g.Compact()

	if g.Epoch() == epoch {
		t.Fatal("compaction must advance the epoch")
	}
	if g.DeltaEdges() != 0 || g.OverlaidVertices() != 0 {
		t.Fatalf("compacted graph still reports %d delta entries over %d vertices",
			g.DeltaEdges(), g.OverlaidVertices())
	}
	if g.NumVertices() != wantN || g.NumEdges() != wantM {
		t.Fatalf("compaction changed counts: %d/%d -> %d/%d", wantN, wantM, g.NumVertices(), g.NumEdges())
	}
	gotOut, gotIn := dumpAdjacency(g)
	if !reflect.DeepEqual(gotOut, wantOut) || !reflect.DeepEqual(gotIn, wantIn) {
		t.Fatal("compaction perturbed adjacency content or order")
	}
	if err := g.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Idempotent: a second compaction with no deltas must not rebuild.
	base := g.CompactedSnapshot()
	if g.CompactedSnapshot() != base {
		t.Fatal("compacting an already-compacted graph rebuilt the base")
	}
}

// TestViewStableUnderMutation pins the copy-on-write seal: a View taken at
// any point keeps returning exactly the adjacency it froze, no matter how
// the graph mutates afterwards — including in-place deletes on the very
// vertices the view overlays, and a full compaction.
func TestViewStableUnderMutation(t *testing.T) {
	g := New(6)
	churn(t, g, 7, 300)
	view := g.View()
	wantOut, wantIn := dumpAdjacency(view)
	wantM := view.NumEdges()

	churn(t, g, 8, 500)
	g.Compact()
	churn(t, g, 9, 200)

	gotOut, gotIn := dumpAdjacency(view)
	if !reflect.DeepEqual(gotOut, wantOut) || !reflect.DeepEqual(gotIn, wantIn) {
		t.Fatal("later mutations leaked into a sealed view")
	}
	if view.NumEdges() != wantM {
		t.Fatalf("view edge count drifted: %d -> %d", wantM, view.NumEdges())
	}
	// The materialized snapshot agrees with the frozen accessors.
	c := view.CSR()
	csrOut, csrIn := dumpAdjacency(c)
	if !reflect.DeepEqual(csrOut, wantOut) || !reflect.DeepEqual(csrIn, wantIn) {
		t.Fatal("view.CSR() disagrees with the view's accessors")
	}
	if err := g.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestBackgroundCompactionProtocol drives the three-step Begin/Build/Install
// dance with writes racing in between the freeze and the install — the exact
// shape the service's background compactor produces — and checks the merged
// result is logically invisible.
func TestBackgroundCompactionProtocol(t *testing.T) {
	g := New(10)
	churn(t, g, 13, 400)

	c := g.BeginCompaction()
	// Writes after the freeze: these segments must survive the install.
	churn(t, g, 14, 250)
	wantOut, wantIn := dumpAdjacency(g)
	wantM := g.NumEdges()

	base := c.Build()
	if !g.Install(c, base) {
		t.Fatal("install rejected a current compaction")
	}
	gotOut, gotIn := dumpAdjacency(g)
	if !reflect.DeepEqual(gotOut, wantOut) || !reflect.DeepEqual(gotIn, wantIn) {
		t.Fatal("install perturbed the logical graph")
	}
	if g.NumEdges() != wantM {
		t.Fatalf("install changed edge count: %d -> %d", wantM, g.NumEdges())
	}
	if err := g.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestInstallRejectsStaleCompaction covers the race the epoch guard exists
// for: an inline compaction (or checkpoint) swapping the base while a
// background build is in flight must invalidate that build.
func TestInstallRejectsStaleCompaction(t *testing.T) {
	g := New(10)
	churn(t, g, 21, 400)

	c := g.BeginCompaction()
	base := c.Build()
	g.Compact() // the inline path wins the race and bumps the epoch
	wantOut, wantIn := dumpAdjacency(g)
	epoch := g.Epoch()

	if g.Install(c, base) {
		t.Fatal("install accepted a compaction frozen before an epoch change")
	}
	if g.Epoch() != epoch {
		t.Fatal("rejected install must not touch the graph")
	}
	gotOut, gotIn := dumpAdjacency(g)
	if !reflect.DeepEqual(gotOut, wantOut) || !reflect.DeepEqual(gotIn, wantIn) {
		t.Fatal("rejected install perturbed the graph")
	}
	if err := g.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestMaybeCompactPolicy checks both halves of the trigger: small deltas are
// left alone (the floor), and deltas on the order of the edge count compact.
func TestMaybeCompactPolicy(t *testing.T) {
	g := New(4)
	if _, err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if g.MaybeCompact() {
		t.Fatal("a two-entry delta must not trigger compaction")
	}
	// Push past both the floor and the edge-count ratio.
	for g.DeltaEdges() < autoCompactMinDelta {
		churn(t, g, int64(g.DeltaEdges()), 200)
	}
	if !g.MaybeCompact() {
		t.Fatalf("delta %d over %d edges must trigger compaction", g.DeltaEdges(), g.NumEdges())
	}
	if g.DeltaEdges() != 0 {
		t.Fatal("MaybeCompact reported success but left deltas behind")
	}
}

// TestFromCSRRoundTrip pins the recovery path: wrapping a compacted
// snapshot with FromCSR yields a graph indistinguishable from the original,
// sharing the base arrays with zero per-edge work, and immediately mutable.
func TestFromCSRRoundTrip(t *testing.T) {
	g := New(8)
	churn(t, g, 33, 500)
	wantOut, wantIn := dumpAdjacency(g)
	base := g.CompactedSnapshot()

	r := FromCSR(base)
	gotOut, gotIn := dumpAdjacency(r)
	if !reflect.DeepEqual(gotOut, wantOut) || !reflect.DeepEqual(gotIn, wantIn) {
		t.Fatal("FromCSR changed the graph")
	}
	if r.NumEdges() != g.NumEdges() || r.NumVertices() != g.NumVertices() {
		t.Fatal("FromCSR changed counts")
	}
	if err := r.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// The recovered graph takes writes without disturbing the shared base.
	churn(t, r, 34, 300)
	if err := r.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	baseOut, _ := dumpAdjacency(base)
	for v := range wantOut {
		if !reflect.DeepEqual(baseOut[v], wantOut[v]) {
			t.Fatalf("mutating a FromCSR graph dirtied the shared base at vertex %d", v)
		}
	}
}
