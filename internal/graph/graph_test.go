package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddRemoveEdgeBasics(t *testing.T) {
	g := New(0)
	added, err := g.AddEdge(0, 1)
	if err != nil || !added {
		t.Fatalf("AddEdge(0,1) = %v, %v", added, err)
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("edge direction wrong")
	}
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	// Duplicate insert is a no-op.
	added, err = g.AddEdge(0, 1)
	if err != nil || added {
		t.Fatalf("duplicate AddEdge = %v, %v", added, err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("m after duplicate = %d", g.NumEdges())
	}
	if err := g.RemoveEdge(0, 1); err != nil {
		t.Fatalf("RemoveEdge: %v", err)
	}
	if g.HasEdge(0, 1) || g.NumEdges() != 0 {
		t.Fatal("edge still present after removal")
	}
	if err := g.RemoveEdge(0, 1); !errors.Is(err, ErrEdgeNotFound) {
		t.Fatalf("RemoveEdge missing = %v, want ErrEdgeNotFound", err)
	}
}

func TestAddEdgeNegativeVertex(t *testing.T) {
	g := New(0)
	if _, err := g.AddEdge(-1, 2); !errors.Is(err, ErrNegativeVertex) {
		t.Fatalf("err = %v, want ErrNegativeVertex", err)
	}
	if _, err := g.AddEdge(2, -1); !errors.Is(err, ErrNegativeVertex) {
		t.Fatalf("err = %v, want ErrNegativeVertex", err)
	}
}

func TestDegreesAndNeighbors(t *testing.T) {
	g := New(0)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 0, 2)
	mustAdd(t, g, 3, 0)
	if g.OutDegree(0) != 2 || g.InDegree(0) != 1 {
		t.Fatalf("degrees of 0: out=%d in=%d", g.OutDegree(0), g.InDegree(0))
	}
	if g.OutDegree(100) != 0 || g.InDegree(-1) != 0 {
		t.Fatal("out-of-range degrees must be 0")
	}
	if len(g.OutNeighbors(0)) != 2 || len(g.InNeighbors(0)) != 1 {
		t.Fatal("neighbor slices wrong")
	}
	if g.OutNeighbors(100) != nil || g.InNeighbors(-5) != nil {
		t.Fatal("out-of-range neighbors must be nil")
	}
}

func TestFromEdgesAndEdges(t *testing.T) {
	edges := []Edge{{0, 1}, {1, 2}, {2, 0}, {0, 1}}
	g := FromEdges(edges)
	if g.NumEdges() != 3 {
		t.Fatalf("m = %d, want 3 (dup ignored)", g.NumEdges())
	}
	got := g.Edges()
	if len(got) != 3 {
		t.Fatalf("Edges() len = %d", len(got))
	}
	seen := make(map[Edge]bool)
	for _, e := range got {
		seen[e] = true
	}
	for _, e := range []Edge{{0, 1}, {1, 2}, {2, 0}} {
		if !seen[e] {
			t.Fatalf("missing edge %v", e)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := FromEdges([]Edge{{0, 1}, {1, 2}})
	c := g.Clone()
	mustAdd(t, c, 2, 0)
	if g.HasEdge(2, 0) {
		t.Fatal("clone shares state with original")
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if err := g.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestTopDegreeVertices(t *testing.T) {
	g := New(5)
	// degrees: 0 -> 3, 1 -> 2, 2 -> 0, 3 -> 1, 4 -> 0
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 0, 2)
	mustAdd(t, g, 0, 3)
	mustAdd(t, g, 1, 2)
	mustAdd(t, g, 1, 3)
	mustAdd(t, g, 3, 4)
	top := g.TopDegreeVertices(3)
	want := []VertexID{0, 1, 3}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("top = %v, want %v", top, want)
		}
	}
	if got := g.TopDegreeVertices(100); len(got) != 5 {
		t.Fatalf("k>n should clamp: %d", len(got))
	}
	if got := g.TopDegreeVertices(0); got != nil {
		t.Fatalf("k=0 should be nil: %v", got)
	}
	if g.MaxOutDegree() != 3 {
		t.Fatalf("MaxOutDegree = %d", g.MaxOutDegree())
	}
	if g.AverageDegree() != 6.0/5.0 {
		t.Fatalf("AverageDegree = %v", g.AverageDegree())
	}
	h := g.DegreeHistogram()
	if h[0] != 2 || h[1] != 1 || h[2] != 1 || h[3] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestAverageDegreeEmpty(t *testing.T) {
	if New(0).AverageDegree() != 0 {
		t.Fatal("empty graph average degree must be 0")
	}
}

func TestSnapshotMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := New(50)
	for i := 0; i < 400; i++ {
		u := VertexID(rng.Intn(50))
		v := VertexID(rng.Intn(50))
		_, _ = g.AddEdge(u, v)
	}
	c := g.Snapshot()
	if c.NumVertices() != g.NumVertices() || c.NumEdges() != g.NumEdges() {
		t.Fatalf("snapshot sizes differ: %d/%d vs %d/%d",
			c.NumVertices(), c.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for u := VertexID(0); int(u) < g.NumVertices(); u++ {
		if c.OutDegree(u) != g.OutDegree(u) || c.InDegree(u) != g.InDegree(u) {
			t.Fatalf("degree mismatch at %d", u)
		}
		outSet := make(map[VertexID]bool)
		for _, v := range g.OutNeighbors(u) {
			outSet[v] = true
		}
		for _, v := range c.OutNeighbors(u) {
			if !outSet[v] {
				t.Fatalf("snapshot out edge (%d,%d) not in graph", u, v)
			}
		}
		inSet := make(map[VertexID]bool)
		for _, w := range g.InNeighbors(u) {
			inSet[w] = true
		}
		for _, w := range c.InNeighbors(u) {
			if !inSet[w] {
				t.Fatalf("snapshot in edge (%d,%d) not in graph", w, u)
			}
		}
	}
}

// Property: a random interleaving of inserts and deletes always leaves the
// graph internally consistent, and in/out degree sums both equal the edge
// count.
func TestRandomMutationConsistency(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New(10)
		n := int(ops)%200 + 1
		for i := 0; i < n; i++ {
			u := VertexID(rng.Intn(20))
			v := VertexID(rng.Intn(20))
			if rng.Intn(3) == 0 && g.HasEdge(u, v) {
				if err := g.RemoveEdge(u, v); err != nil {
					return false
				}
			} else {
				if _, err := g.AddEdge(u, v); err != nil {
					return false
				}
			}
		}
		if err := g.CheckConsistency(); err != nil {
			t.Logf("consistency: %v", err)
			return false
		}
		sumOut, sumIn := 0, 0
		for u := VertexID(0); int(u) < g.NumVertices(); u++ {
			sumOut += g.OutDegree(u)
			sumIn += g.InDegree(u)
		}
		return sumOut == g.NumEdges() && sumIn == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func mustAdd(t *testing.T, g *Graph, u, v VertexID) {
	t.Helper()
	added, err := g.AddEdge(u, v)
	if err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
	if !added {
		t.Fatalf("AddEdge(%d,%d): duplicate", u, v)
	}
}
