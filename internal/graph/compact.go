package graph

// Compaction is an in-flight merge of the delta segments into a new base.
// The expensive half — materializing the merged CSR — runs anywhere (a
// background goroutine); Install hands the result back to the goroutine that
// owns the graph. The protocol:
//
//	c := g.BeginCompaction()   // on the owner: O(#overlaid) freeze
//	base := c.Build()          // anywhere: O(n+m) merge, owner keeps mutating
//	g.Install(c, base)         // on the owner: O(#overlaid) swap
//
// Install drops exactly the delta segments whose content the frozen view
// captured (their data is now in the new base) and keeps segments written
// after the freeze — each is a complete adjacency list, so it shadows the
// new base just as correctly as it shadowed the old one. Logical graph
// content is therefore unchanged, element order included, which is what
// keeps float summation — and every differential bit-identity guarantee —
// stable across compaction.
type Compaction struct {
	view *View
	gen  uint64 // delta segments with generation < gen are covered by view
}

// BeginCompaction freezes the current state as the compaction input.
func (g *Graph) BeginCompaction() *Compaction {
	v := g.View()
	return &Compaction{view: v, gen: g.viewGen}
}

// Build materializes the merged base segment. It reads only the frozen view,
// so it may run concurrently with further mutations of the graph.
func (c *Compaction) Build() *CSR {
	return c.view.CSR()
}

// Install swaps in the compacted base and prunes the delta segments it
// absorbed. It returns false without touching the graph when the base moved
// since BeginCompaction (an inline Compact or a checkpoint won the race) —
// the built CSR then describes a stale epoch and is discarded.
func (g *Graph) Install(c *Compaction, base *CSR) bool {
	if g.epoch != c.view.epoch {
		return false
	}
	g.base = base
	kept := g.overlaid[:0]
	delta := 0
	for _, u := range g.overlaid {
		if g.outOv[u] != nil {
			if g.outGen[u] < c.gen {
				g.outOv[u] = nil
			} else {
				delta += len(g.outOv[u])
			}
		}
		if g.inOv[u] != nil {
			if g.inGen[u] < c.gen {
				g.inOv[u] = nil
			} else {
				delta += len(g.inOv[u])
			}
		}
		if g.outOv[u] != nil || g.inOv[u] != nil {
			kept = append(kept, u)
		}
	}
	g.overlaid = kept
	g.deltaEdges = delta
	g.epoch++
	return true
}

// Compact synchronously merges every delta segment into a fresh base. The
// logical graph is unchanged; afterwards all reads hit the flat CSR arrays.
func (g *Graph) Compact() {
	if len(g.overlaid) == 0 && g.base.n == g.n {
		return
	}
	g.base = g.Snapshot()
	for _, u := range g.overlaid {
		g.outOv[u] = nil
		g.inOv[u] = nil
	}
	g.overlaid = g.overlaid[:0]
	g.deltaEdges = 0
	g.epoch++
}

// autoCompactMinDelta is the floor below which MaybeCompact never bothers:
// compacting a tiny delta trades an O(n+m) rebuild for nothing.
const autoCompactMinDelta = 4096

// MaybeCompact compacts when the delta segments have grown to the order of
// the live edge count (delta entries count both directions, so the trigger
// fires when roughly half the adjacency lives in overlays). Trackers call it
// after each batch; the amortized cost is O(1) per delta entry. It reports
// whether a compaction ran.
func (g *Graph) MaybeCompact() bool {
	if g.deltaEdges < autoCompactMinDelta || g.deltaEdges < g.m {
		return false
	}
	g.Compact()
	return true
}

// CompactedSnapshot compacts the graph (a no-op when there are no deltas)
// and returns the resulting base segment, which callers may retain and share
// freely: it is immutable and already covers every vertex. This is the
// checkpoint writer's entry point — checkpointing doubles as a full
// compaction, and a freshly compacted graph checkpoints with zero copying.
func (g *Graph) CompactedSnapshot() *CSR {
	g.Compact()
	return g.base
}
