package push

import (
	"fmt"
	"time"

	"dynppr/internal/graph"
)

// ColdPushResult is the outcome of a one-shot local push on a frozen
// snapshot.
type ColdPushResult struct {
	// Estimates[v] approximates π_v(s): the probability that an
	// α-terminating walk from v stops at the pushed source s — the same
	// contribution vector (Equation 2 of the paper) the live engines
	// maintain for tracked sources. Entries are nonnegative.
	Estimates []float64
	// Residuals[v] is the unpushed probability mass parked at v. All
	// residuals are nonnegative: the push starts from a unit residual at the
	// source and only ever splits it.
	Residuals []float64
	// ResidualMass is Σ_v Residuals[v].
	ResidualMass float64
	// MaxResidual is max_v Residuals[v] — the per-vertex error bound.
	// The invariant π_v(s) = Estimates[v] + Σ_u Residuals[u]·π_v(u) holds
	// exactly throughout the push, and Σ_u π_v(u) ≤ 1 (a walk stops at most
	// once), so |π_v(s) − Estimates[v]| ≤ MaxResidual for every v. It is
	// ≤ the configured ε unless Capped.
	MaxResidual float64
	// Pushes counts vertex pushes performed.
	Pushes int64
	// Capped reports that the push stopped at maxPushes with work left; the
	// result is still sound, just with a larger MaxResidual.
	Capped bool
	// BudgetExhausted reports that a latency budget (ColdPushBounds.Budget)
	// limited the work. The result is still sound under MaxResidual; it just
	// was not refined past the level the budget paid for.
	BudgetExhausted bool
}

// ColdPushBounds bound a single budgeted cold push (the ColdPushCSRBounded /
// ColdPushBounded entry points).
type ColdPushBounds struct {
	// MaxPushes bounds the total vertex pushes across all refinement levels;
	// <= 0 means unbounded.
	MaxPushes int64
	// Budget is the wall-clock budget for the push. <= 0 disables the
	// adaptive ladder: the push runs exactly like ColdPushCSR/ColdPush.
	//
	// When set, the push first drains the frontier at the configured
	// cfg.Epsilon — that first level is never time-truncated, so a budgeted
	// push can only ever emit answers the unbudgeted push could also emit —
	// and then keeps halving ε and re-draining while budget remains, down to
	// MinEpsilon. A level interrupted mid-drain (deadline or MaxPushes) is
	// rolled back to the last completed one, so every emitted answer is a
	// deterministic function of (graph, source, cfg, achieved level); only
	// which level is achieved depends on timing.
	Budget time.Duration
	// MinEpsilon is the floor of the adaptive ladder; the push never refines
	// past it no matter how much budget remains. <= 0 selects 1e-9.
	MinEpsilon float64
}

// budgetCheckStride is how many frontier iterations pass between deadline
// reads inside a budgeted level — frequent enough to bound overshoot, rare
// enough that time.Now stays invisible next to the push work itself.
const budgetCheckStride = 4096

// ColdPushCSR runs the paper's local push from a cold start on an immutable
// CSR snapshot: starting from a unit residual at source, it repeatedly moves
// α·R(u) into the estimate at u and spreads (1−α)·R(u)/dout(v) to each
// in-neighbor v of u, until every residual is ≤ cfg.Epsilon or maxPushes
// vertex pushes have been performed (maxPushes <= 0 means unbounded). The
// update rule is exactly the Sequential engine's, so the result approximates
// the same quantity a tracked source serves, with the per-vertex error bound
// documented on ColdPushResult.MaxResidual.
//
// Unlike State (which owns a mutable graph and maintains the invariant
// across edge updates), ColdPushCSR is a pure function of the snapshot: it
// never mutates anything and is safe to call concurrently on the same CSR,
// which is what the on-demand query path needs. The FIFO frontier seeded
// with the source makes results deterministic for a given snapshot. Division
// is always by the out-degree of an in-neighbor, which is ≥ 1 by
// construction, so dangling vertices need no special case: one with no
// in-edges simply never accumulates residual (its exact value is α·1{v=s}).
//
// ColdPush is the same algorithm over any graph.Adjacency — in particular a
// layered graph.View, which is how a cold query runs right after a batch
// without paying for a full CSR rebuild. The two are kept as separate bodies
// deliberately: the CSR loop is the hot steady-state path (the on-demand
// cache hands out the bare base segment whenever the graph is compacted) and
// must stay free of interface dispatch, while the layered path trades a few
// ns/edge for touched-proportional setup. A differential test pins them to
// bit-identical results.
func ColdPushCSR(c *graph.CSR, source graph.VertexID, cfg Config, maxPushes int64) (*ColdPushResult, error) {
	return ColdPushCSRBounded(c, source, cfg, ColdPushBounds{MaxPushes: maxPushes})
}

// ColdPushCSRBounded is ColdPushCSR under explicit bounds — in particular
// the adaptive-ε latency budget documented on ColdPushBounds.Budget. With a
// zero Budget it is exactly ColdPushCSR.
func ColdPushCSRBounded(c *graph.CSR, source graph.VertexID, cfg Config, b ColdPushBounds) (*ColdPushResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := c.NumVertices()
	if source < 0 || int(source) >= n {
		return nil, fmt.Errorf("push: source %d outside snapshot vertex range [0,%d)", source, n)
	}
	var deadline time.Time
	if b.Budget > 0 {
		deadline = time.Now().Add(b.Budget)
	}
	res := &ColdPushResult{
		Estimates: make([]float64, n),
		Residuals: make([]float64, n),
	}
	res.Residuals[source] = 1
	queue := make([]graph.VertexID, 0, 64)
	queue = append(queue, source)
	inQueue := make([]bool, n)
	inQueue[source] = true

	// Level 0: the configured ε, bounded by MaxPushes only. The deadline is
	// deliberately not consulted, so the coarse answer is never a
	// timing-dependent intermediate state (see ColdPushBounds.Budget).
	queue = coldPushLevelCSR(c, res, queue, inQueue, cfg.Alpha, cfg.Epsilon, b.MaxPushes, time.Time{})

	if b.Budget > 0 && !res.Capped {
		var saved ladderState
		for eps := range b.ladder(cfg.Epsilon) {
			if time.Now().After(deadline) {
				res.BudgetExhausted = true
				break
			}
			saved.save(res)
			queue = rebuildFrontier(res.Residuals, eps, queue, inQueue)
			queue = coldPushLevelCSR(c, res, queue, inQueue, cfg.Alpha, eps, b.MaxPushes, deadline)
			if res.Capped {
				// Interrupted mid-level: the emitted answer is the last
				// completed level, not the partial drain.
				saved.restore(res)
				res.Capped = false
				break
			}
		}
	}

	finishColdPush(res)
	return res, nil
}

// coldPushLevelCSR drains the frontier at threshold eps on the dispatch-free
// CSR body. It stops early when the cumulative push count reaches maxPushes
// (res.Capped) or, when deadline is nonzero, once the deadline passes
// (res.Capped and res.BudgetExhausted; checked every budgetCheckStride
// iterations). The returned slice is the unconsumed frontier.
func coldPushLevelCSR(c *graph.CSR, res *ColdPushResult, queue []graph.VertexID, inQueue []bool, alpha, eps float64, maxPushes int64, deadline time.Time) []graph.VertexID {
	r := res.Residuals
	p := res.Estimates
	sinceCheck := 0
	for len(queue) > 0 {
		if maxPushes > 0 && res.Pushes >= maxPushes {
			res.Capped = true
			break
		}
		if !deadline.IsZero() {
			if sinceCheck++; sinceCheck >= budgetCheckStride {
				sinceCheck = 0
				if time.Now().After(deadline) {
					res.Capped = true
					res.BudgetExhausted = true
					break
				}
			}
		}
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		ru := r[u]
		if ru <= eps {
			continue
		}
		res.Pushes++
		p[u] += alpha * ru
		r[u] = 0
		for _, v := range c.InNeighbors(u) {
			r[v] += (1 - alpha) * ru / float64(c.OutDegree(v))
			if r[v] > eps && !inQueue[v] {
				inQueue[v] = true
				queue = append(queue, v)
			}
		}
	}
	return queue
}

// ColdPush runs the identical cold push over any frozen adjacency (see
// ColdPushCSR for the algorithm and the two-body rationale). Push order,
// and therefore every floating-point sum, matches ColdPushCSR exactly on a
// logically equal graph.
func ColdPush(a graph.Adjacency, source graph.VertexID, cfg Config, maxPushes int64) (*ColdPushResult, error) {
	return ColdPushBounded(a, source, cfg, ColdPushBounds{MaxPushes: maxPushes})
}

// ColdPushBounded is ColdPush under explicit bounds (see
// ColdPushCSRBounded); bit-identical to it on a logically equal graph.
func ColdPushBounded(a graph.Adjacency, source graph.VertexID, cfg Config, b ColdPushBounds) (*ColdPushResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := a.NumVertices()
	if source < 0 || int(source) >= n {
		return nil, fmt.Errorf("push: source %d outside snapshot vertex range [0,%d)", source, n)
	}
	var deadline time.Time
	if b.Budget > 0 {
		deadline = time.Now().Add(b.Budget)
	}
	res := &ColdPushResult{
		Estimates: make([]float64, n),
		Residuals: make([]float64, n),
	}
	res.Residuals[source] = 1
	queue := make([]graph.VertexID, 0, 64)
	queue = append(queue, source)
	inQueue := make([]bool, n)
	inQueue[source] = true

	queue = coldPushLevel(a, res, queue, inQueue, cfg.Alpha, cfg.Epsilon, b.MaxPushes, time.Time{})

	if b.Budget > 0 && !res.Capped {
		var saved ladderState
		for eps := range b.ladder(cfg.Epsilon) {
			if time.Now().After(deadline) {
				res.BudgetExhausted = true
				break
			}
			saved.save(res)
			queue = rebuildFrontier(res.Residuals, eps, queue, inQueue)
			queue = coldPushLevel(a, res, queue, inQueue, cfg.Alpha, eps, b.MaxPushes, deadline)
			if res.Capped {
				saved.restore(res)
				res.Capped = false
				break
			}
		}
	}

	finishColdPush(res)
	return res, nil
}

// coldPushLevel is coldPushLevelCSR over any frozen adjacency.
func coldPushLevel(a graph.Adjacency, res *ColdPushResult, queue []graph.VertexID, inQueue []bool, alpha, eps float64, maxPushes int64, deadline time.Time) []graph.VertexID {
	r := res.Residuals
	p := res.Estimates
	sinceCheck := 0
	for len(queue) > 0 {
		if maxPushes > 0 && res.Pushes >= maxPushes {
			res.Capped = true
			break
		}
		if !deadline.IsZero() {
			if sinceCheck++; sinceCheck >= budgetCheckStride {
				sinceCheck = 0
				if time.Now().After(deadline) {
					res.Capped = true
					res.BudgetExhausted = true
					break
				}
			}
		}
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		ru := r[u]
		if ru <= eps {
			continue
		}
		res.Pushes++
		p[u] += alpha * ru
		r[u] = 0
		for _, v := range a.InNeighbors(u) {
			r[v] += (1 - alpha) * ru / float64(a.OutDegree(v))
			if r[v] > eps && !inQueue[v] {
				inQueue[v] = true
				queue = append(queue, v)
			}
		}
	}
	return queue
}

// ladder yields the ε levels below the configured start, halving down to
// MinEpsilon (inclusive within a halving).
func (b ColdPushBounds) ladder(start float64) func(func(float64) bool) {
	minEps := b.MinEpsilon
	if minEps <= 0 {
		minEps = 1e-9
	}
	return func(yield func(float64) bool) {
		for eps := start / 2; eps >= minEps; eps /= 2 {
			if !yield(eps) {
				return
			}
		}
	}
}

// ladderState snapshots a completed refinement level so a level interrupted
// mid-drain can be rolled back (see ColdPushBounds.Budget). Buffers are
// reused across levels.
type ladderState struct {
	est, res []float64
	pushes   int64
}

func (ls *ladderState) save(r *ColdPushResult) {
	ls.est = append(ls.est[:0], r.Estimates...)
	ls.res = append(ls.res[:0], r.Residuals...)
	ls.pushes = r.Pushes
}

func (ls *ladderState) restore(r *ColdPushResult) {
	copy(r.Estimates, ls.est)
	copy(r.Residuals, ls.res)
	r.Pushes = ls.pushes
}

// rebuildFrontier collects every vertex whose residual exceeds eps, in
// ascending vertex order (deterministic), resetting the membership bitmap.
func rebuildFrontier(r []float64, eps float64, queue []graph.VertexID, inQueue []bool) []graph.VertexID {
	queue = queue[:0]
	for i := range inQueue {
		inQueue[i] = false
	}
	for v, rv := range r {
		if rv > eps {
			queue = append(queue, graph.VertexID(v))
			inQueue[v] = true
		}
	}
	return queue
}

// finishColdPush computes the residual aggregates from the final residual
// vector.
func finishColdPush(res *ColdPushResult) {
	for _, rv := range res.Residuals {
		res.ResidualMass += rv
		if rv > res.MaxResidual {
			res.MaxResidual = rv
		}
	}
}
