package push

import (
	"fmt"

	"dynppr/internal/graph"
)

// ColdPushResult is the outcome of a one-shot local push on a frozen
// snapshot.
type ColdPushResult struct {
	// Estimates[v] approximates π_v(s): the probability that an
	// α-terminating walk from v stops at the pushed source s — the same
	// contribution vector (Equation 2 of the paper) the live engines
	// maintain for tracked sources. Entries are nonnegative.
	Estimates []float64
	// Residuals[v] is the unpushed probability mass parked at v. All
	// residuals are nonnegative: the push starts from a unit residual at the
	// source and only ever splits it.
	Residuals []float64
	// ResidualMass is Σ_v Residuals[v].
	ResidualMass float64
	// MaxResidual is max_v Residuals[v] — the per-vertex error bound.
	// The invariant π_v(s) = Estimates[v] + Σ_u Residuals[u]·π_v(u) holds
	// exactly throughout the push, and Σ_u π_v(u) ≤ 1 (a walk stops at most
	// once), so |π_v(s) − Estimates[v]| ≤ MaxResidual for every v. It is
	// ≤ the configured ε unless Capped.
	MaxResidual float64
	// Pushes counts vertex pushes performed.
	Pushes int64
	// Capped reports that the push stopped at maxPushes with work left; the
	// result is still sound, just with a larger MaxResidual.
	Capped bool
}

// ColdPushCSR runs the paper's local push from a cold start on an immutable
// CSR snapshot: starting from a unit residual at source, it repeatedly moves
// α·R(u) into the estimate at u and spreads (1−α)·R(u)/dout(v) to each
// in-neighbor v of u, until every residual is ≤ cfg.Epsilon or maxPushes
// vertex pushes have been performed (maxPushes <= 0 means unbounded). The
// update rule is exactly the Sequential engine's, so the result approximates
// the same quantity a tracked source serves, with the per-vertex error bound
// documented on ColdPushResult.MaxResidual.
//
// Unlike State (which owns a mutable graph and maintains the invariant
// across edge updates), ColdPushCSR is a pure function of the snapshot: it
// never mutates anything and is safe to call concurrently on the same CSR,
// which is what the on-demand query path needs. The FIFO frontier seeded
// with the source makes results deterministic for a given snapshot. Division
// is always by the out-degree of an in-neighbor, which is ≥ 1 by
// construction, so dangling vertices need no special case: one with no
// in-edges simply never accumulates residual (its exact value is α·1{v=s}).
//
// ColdPush is the same algorithm over any graph.Adjacency — in particular a
// layered graph.View, which is how a cold query runs right after a batch
// without paying for a full CSR rebuild. The two are kept as separate bodies
// deliberately: the CSR loop is the hot steady-state path (the on-demand
// cache hands out the bare base segment whenever the graph is compacted) and
// must stay free of interface dispatch, while the layered path trades a few
// ns/edge for touched-proportional setup. A differential test pins them to
// bit-identical results.
func ColdPushCSR(c *graph.CSR, source graph.VertexID, cfg Config, maxPushes int64) (*ColdPushResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := c.NumVertices()
	if source < 0 || int(source) >= n {
		return nil, fmt.Errorf("push: source %d outside snapshot vertex range [0,%d)", source, n)
	}
	res := &ColdPushResult{
		Estimates: make([]float64, n),
		Residuals: make([]float64, n),
	}
	r := res.Residuals
	p := res.Estimates
	r[source] = 1

	queue := make([]graph.VertexID, 0, 64)
	queue = append(queue, source)
	inQueue := make([]bool, n)
	inQueue[source] = true
	alpha, eps := cfg.Alpha, cfg.Epsilon

	for len(queue) > 0 {
		if maxPushes > 0 && res.Pushes >= maxPushes {
			res.Capped = true
			break
		}
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		ru := r[u]
		if ru <= eps {
			continue
		}
		res.Pushes++
		p[u] += alpha * ru
		r[u] = 0
		for _, v := range c.InNeighbors(u) {
			r[v] += (1 - alpha) * ru / float64(c.OutDegree(v))
			if r[v] > eps && !inQueue[v] {
				inQueue[v] = true
				queue = append(queue, v)
			}
		}
	}

	for _, rv := range r {
		res.ResidualMass += rv
		if rv > res.MaxResidual {
			res.MaxResidual = rv
		}
	}
	return res, nil
}

// ColdPush runs the identical cold push over any frozen adjacency (see
// ColdPushCSR for the algorithm and the two-body rationale). Push order,
// and therefore every floating-point sum, matches ColdPushCSR exactly on a
// logically equal graph.
func ColdPush(a graph.Adjacency, source graph.VertexID, cfg Config, maxPushes int64) (*ColdPushResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := a.NumVertices()
	if source < 0 || int(source) >= n {
		return nil, fmt.Errorf("push: source %d outside snapshot vertex range [0,%d)", source, n)
	}
	res := &ColdPushResult{
		Estimates: make([]float64, n),
		Residuals: make([]float64, n),
	}
	r := res.Residuals
	p := res.Estimates
	r[source] = 1

	queue := make([]graph.VertexID, 0, 64)
	queue = append(queue, source)
	inQueue := make([]bool, n)
	inQueue[source] = true
	alpha, eps := cfg.Alpha, cfg.Epsilon

	for len(queue) > 0 {
		if maxPushes > 0 && res.Pushes >= maxPushes {
			res.Capped = true
			break
		}
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		ru := r[u]
		if ru <= eps {
			continue
		}
		res.Pushes++
		p[u] += alpha * ru
		r[u] = 0
		for _, v := range a.InNeighbors(u) {
			r[v] += (1 - alpha) * ru / float64(a.OutDegree(v))
			if r[v] > eps && !inQueue[v] {
				inQueue[v] = true
				queue = append(queue, v)
			}
		}
	}

	for _, rv := range r {
		res.ResidualMass += rv
		if rv > res.MaxResidual {
			res.MaxResidual = rv
		}
	}
	return res, nil
}
