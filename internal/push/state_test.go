package push

import (
	"fmt"
	"testing"

	"dynppr/internal/graph"
)

// paperGraph builds the 4-vertex running example of Figures 1 and 3, with the
// paper's vertices v1..v4 renumbered 0..3:
// edges 1->4, 2->1, 3->1, 3->2, 4->3.
func paperGraph() *graph.Graph {
	return graph.FromEdges([]graph.Edge{
		{U: 0, V: 3},
		{U: 1, V: 0},
		{U: 2, V: 0},
		{U: 2, V: 1},
		{U: 3, V: 2},
	})
}

// paperConfig is the example's parameter setting: α = 0.5, ε = 0.1.
func paperConfig() Config { return Config{Alpha: 0.5, Epsilon: 0.1} }

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Alpha: 0, Epsilon: 0.1},
		{Alpha: 1, Epsilon: 0.1},
		{Alpha: -0.1, Epsilon: 0.1},
		{Alpha: 0.15, Epsilon: 0},
		{Alpha: 0.15, Epsilon: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", c)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
}

func TestNewStateBasics(t *testing.T) {
	g := paperGraph()
	st, err := NewState(g, 0, paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.Source() != 0 || st.Alpha() != 0.5 || st.Epsilon() != 0.1 {
		t.Fatal("accessors wrong")
	}
	if st.Graph() != g {
		t.Fatal("Graph() must return the tracked graph")
	}
	if st.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d", st.NumVertices())
	}
	// Cold start: all mass as residual at the source.
	if st.Residual(0) != 1 || st.Estimate(0) != 0 {
		t.Fatalf("cold start wrong: R=%v P=%v", st.Residual(0), st.Estimate(0))
	}
	if st.ResidualL1() != 1 || st.MaxResidual() != 1 {
		t.Fatal("residual norms wrong")
	}
	if st.Converged() {
		t.Fatal("cold start with eps=0.1 must not be converged")
	}
	// Out-of-range lookups return zero.
	if st.Estimate(99) != 0 || st.Residual(-1) != 0 {
		t.Fatal("out-of-range lookups must be 0")
	}
	// The cold-start state satisfies the invariant exactly.
	if err := requireInvariant(st); err != nil {
		t.Fatal(err)
	}
}

func TestNewStateErrors(t *testing.T) {
	g := paperGraph()
	if _, err := NewState(g, 0, Config{Alpha: 2, Epsilon: 0.1}); err == nil {
		t.Fatal("invalid config must fail")
	}
	if _, err := NewState(g, -3, paperConfig()); err == nil {
		t.Fatal("negative source must fail")
	}
	// A source beyond the current graph is created on demand.
	st, err := NewState(g, 10, paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.Graph().NumVertices() != 11 || st.Residual(10) != 1 {
		t.Fatal("source vertex not created")
	}
}

func requireInvariant(st *State) error {
	if e := st.InvariantError(); e > 1e-9 {
		return fmt.Errorf("invariant violated by %g", e)
	}
	return nil
}

func TestRestoreInvariantInsert(t *testing.T) {
	g := paperGraph()
	st, err := NewState(g, 0, paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Converge the cold start first.
	NewSequential().Run(st, []graph.VertexID{0})
	if err := requireInvariant(st); err != nil {
		t.Fatal(err)
	}
	// Insert a fresh edge; the invariant must still hold exactly afterwards.
	changed, err := st.ApplyInsert(1, 3)
	if err != nil || !changed {
		t.Fatalf("ApplyInsert = %v, %v", changed, err)
	}
	if err := requireInvariant(st); err != nil {
		t.Fatal(err)
	}
	// Inserting the same edge again changes nothing.
	changed, err = st.ApplyInsert(1, 3)
	if err != nil || changed {
		t.Fatalf("duplicate ApplyInsert = %v, %v", changed, err)
	}
}

func TestRestoreInvariantDelete(t *testing.T) {
	g := paperGraph()
	st, err := NewState(g, 0, paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	NewSequential().Run(st, []graph.VertexID{0})
	changed, err := st.ApplyDelete(2, 1)
	if err != nil || !changed {
		t.Fatalf("ApplyDelete = %v, %v", changed, err)
	}
	if err := requireInvariant(st); err != nil {
		t.Fatal(err)
	}
	// Deleting a missing edge is a silent no-op.
	changed, err = st.ApplyDelete(2, 1)
	if err != nil || changed {
		t.Fatalf("missing-edge ApplyDelete = %v, %v", changed, err)
	}
}

func TestRestoreInvariantDeleteLastOutEdge(t *testing.T) {
	// Vertex 1 has a single out-edge 1->0; deleting it makes 1 dangling and
	// must still leave the invariant intact (the special dout=0 case).
	g := paperGraph()
	st, err := NewState(g, 0, paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	NewSequential().Run(st, []graph.VertexID{0})
	changed, err := st.ApplyDelete(1, 0)
	if err != nil || !changed {
		t.Fatalf("ApplyDelete = %v, %v", changed, err)
	}
	if g.OutDegree(1) != 0 {
		t.Fatal("vertex 1 should be dangling now")
	}
	if err := requireInvariant(st); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreInvariantNewVertex(t *testing.T) {
	g := paperGraph()
	st, err := NewState(g, 0, paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	NewSequential().Run(st, []graph.VertexID{0})
	// Insert an edge from a brand new vertex 7 to the source's neighborhood.
	changed, err := st.ApplyInsert(7, 0)
	if err != nil || !changed {
		t.Fatalf("ApplyInsert = %v, %v", changed, err)
	}
	if st.NumVertices() < 8 {
		t.Fatalf("state not resized: %d", st.NumVertices())
	}
	if err := requireInvariant(st); err != nil {
		t.Fatal(err)
	}
	// The new vertex points at the source; restoring the invariant must give
	// it positive residual (it now has a path to s).
	if st.Residual(7) <= 0 {
		t.Fatalf("new vertex residual = %v, want > 0", st.Residual(7))
	}
}

func TestActiveFrom(t *testing.T) {
	g := paperGraph()
	st, err := NewState(g, 0, paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Cold start: only the source is active.
	got := st.activeFrom(nil, phasePositive)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("scan-all frontier = %v", got)
	}
	// Candidate list with duplicates and out-of-range entries.
	got = st.activeFrom([]graph.VertexID{0, 0, 99, -1, 2}, phasePositive)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("candidate frontier = %v", got)
	}
	// Negative phase finds nothing.
	if got = st.activeFrom(nil, phaseNegative); len(got) != 0 {
		t.Fatalf("negative frontier = %v", got)
	}
}

func TestPhaseCond(t *testing.T) {
	if !phasePositive.cond(0.2, 0.1) || phasePositive.cond(0.1, 0.1) || phasePositive.cond(-0.5, 0.1) {
		t.Fatal("positive cond wrong")
	}
	if !phaseNegative.cond(-0.2, 0.1) || phaseNegative.cond(-0.1, 0.1) || phaseNegative.cond(0.5, 0.1) {
		t.Fatal("negative cond wrong")
	}
}
