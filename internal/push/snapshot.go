package push

import (
	"runtime"
	"sync/atomic"

	"dynppr/internal/graph"
)

// Snapshot is an immutable, converged copy of one source's estimate vector,
// published by a push worker after the engine has driven every residual
// within ε. Readers obtain a Snapshot from a SnapshotSlot and may read it
// freely: its contents never change while it is published.
//
// A Snapshot additionally records the epoch (how many publications preceded
// it) and the maximum absolute residual measured at publication time, so a
// reader can verify the convergence contract (MaxResidual ≤ ε) without
// touching the live, mutating state.
type Snapshot struct {
	source      graph.VertexID
	epoch       uint64
	estimates   []float64
	maxResidual float64
	epsilon     float64

	// readers counts in-flight readers of this snapshot; the publisher
	// spin-waits for it to drain before recycling the buffer.
	readers atomic.Int64
}

// Source returns the source vertex the snapshot belongs to.
func (s *Snapshot) Source() graph.VertexID { return s.source }

// Epoch returns the publication sequence number (1 for the cold-start
// publication, incremented by one on every subsequent publish).
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// MaxResidual returns the L∞ residual norm measured when the snapshot was
// published. A correctly published snapshot has MaxResidual ≤ Epsilon.
func (s *Snapshot) MaxResidual() float64 { return s.maxResidual }

// Epsilon returns the error threshold the snapshot was converged to.
func (s *Snapshot) Epsilon() float64 { return s.epsilon }

// Converged reports whether the snapshot honoured the convergence contract
// at publication time.
func (s *Snapshot) Converged() bool { return s.maxResidual <= s.epsilon }

// NumVertices returns the length of the estimate vector.
func (s *Snapshot) NumVertices() int { return len(s.estimates) }

// Estimate returns the PPR estimate of v (0 for out-of-range vertices).
func (s *Snapshot) Estimate(v graph.VertexID) float64 {
	if v < 0 || int(v) >= len(s.estimates) {
		return 0
	}
	return s.estimates[int(v)]
}

// Estimates returns a copy of the estimate vector.
func (s *Snapshot) Estimates() []float64 {
	return append([]float64(nil), s.estimates...)
}

// RawEstimates returns the snapshot's backing vector without copying. The
// caller must treat it as read-only and must not retain it past Release.
func (s *Snapshot) RawEstimates() []float64 { return s.estimates }

// Release ends a read begun by SnapshotSlot.Acquire. Every Acquire must be
// paired with exactly one Release; the snapshot must not be read afterwards.
func (s *Snapshot) Release() { s.readers.Add(-1) }

// SnapshotSlot is the double-buffered publication point between one push
// worker and any number of concurrent readers. The worker alternates between
// two Snapshot buffers: while one is published (visible to readers through an
// atomic pointer), the other is rewritten with the freshly converged state
// and then published with a single atomic store. Readers therefore always
// observe a complete, converged vector — never a mid-push intermediate.
//
// Publish is single-producer: only one goroutine may publish to a slot at a
// time (the Service pins each source to one shard worker). Acquire/Release
// may be called from any number of goroutines concurrently with Publish.
type SnapshotSlot struct {
	cur  atomic.Pointer[Snapshot]
	bufs [2]*Snapshot
	// next indexes the buffer the next Publish will write (the one that is
	// not currently published). Only the publishing goroutine touches it.
	next  int
	epoch uint64
}

// NewSnapshotSlot returns an empty slot; Acquire returns nil until the first
// Publish.
func NewSnapshotSlot() *SnapshotSlot {
	return &SnapshotSlot{bufs: [2]*Snapshot{{}, {}}}
}

// SeedEpoch primes the publication counter so the next Publish carries epoch
// e+1. It exists for crash recovery: a source restored from a checkpoint
// taken at epoch E seeds its slot with E−1 and republishes the restored
// state, so readers observe the same epoch they would have seen from the
// original process and epochs never regress across a restart. SeedEpoch must
// be called before the first Publish, from the slot's write side.
func (sl *SnapshotSlot) SeedEpoch(e uint64) { sl.epoch = e }

// Publish copies the state's estimate vector into the spare buffer, records
// the residual norm, and atomically swaps the buffer in as the current
// snapshot. It must only be called after the engine has converged st, and
// only from the single goroutine that owns the slot's write side.
//
// Recycling the spare buffer waits for stragglers: a reader that acquired
// the buffer during its previous publication may still be reading it, so
// Publish spins until the buffer's reader count drains to zero. Readers hold
// snapshots only for the duration of one query, so the wait is bounded and
// short.
func (sl *SnapshotSlot) Publish(st *State) *Snapshot {
	spare := sl.bufs[sl.next]
	for spare.readers.Load() != 0 {
		runtime.Gosched()
	}
	spare.source = st.Source()
	spare.estimates = st.FillEstimates(spare.estimates)
	spare.maxResidual = st.MaxResidual()
	spare.epsilon = st.Epsilon()
	sl.epoch++
	spare.epoch = sl.epoch
	sl.cur.Store(spare)
	sl.next ^= 1
	return spare
}

// Acquire returns the currently published snapshot with a read hold on it,
// or nil if nothing has been published yet. The caller must call Release on
// the returned snapshot when done and must not retain it afterwards.
//
// The implementation is the increment-then-validate hazard protocol: the
// reader registers on the snapshot it loaded and re-checks that it is still
// the published one. If publication moved on in between, the registration is
// undone and the load retried, so a reader can never hold a buffer the
// publisher has started rewriting.
func (sl *SnapshotSlot) Acquire() *Snapshot {
	for {
		s := sl.cur.Load()
		if s == nil {
			return nil
		}
		s.readers.Add(1)
		if sl.cur.Load() == s {
			return s
		}
		s.readers.Add(-1)
	}
}

// Epoch returns the sequence number of the most recent publication (0 before
// the first). It is safe to call concurrently with Publish.
func (sl *SnapshotSlot) Epoch() uint64 {
	if s := sl.cur.Load(); s != nil {
		return s.epoch
	}
	return 0
}
