package push

import (
	"runtime"
	"sync/atomic"

	"dynppr/internal/graph"
)

// Snapshot is an immutable, converged copy of one source's estimate vector,
// published by a push worker after the engine has driven every residual
// within ε. Readers obtain a Snapshot from a SnapshotSlot and may read it
// freely: its contents never change while it is published.
//
// A Snapshot additionally records the epoch (how many publications preceded
// it) and the maximum absolute residual measured at publication time, so a
// reader can verify the convergence contract (MaxResidual ≤ ε) without
// touching the live, mutating state.
type Snapshot struct {
	source      graph.VertexID
	epoch       uint64
	estimates   []float64
	maxResidual float64
	epsilon     float64

	// top is the exact Top-K ranking of estimates (descending, ties by
	// ascending vertex id), copied from the slot's incrementally maintained
	// index at publication; nil when the slot's index is disabled. Its
	// length is min(index capacity, NumVertices), so any TopK read with
	// k ≤ len(top) is served in O(k) without scanning the vector.
	top []VertexScore

	// readers counts in-flight readers of this snapshot; the publisher
	// spin-waits for it to drain before recycling the buffer.
	readers atomic.Int64
}

// Source returns the source vertex the snapshot belongs to.
func (s *Snapshot) Source() graph.VertexID { return s.source }

// Epoch returns the publication sequence number (1 for the cold-start
// publication, incremented by one on every subsequent publish).
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// MaxResidual returns the snapshot's convergence certificate: the exact L∞
// residual norm when the snapshot was published by a full copy, and a
// running bound (previous certificate joined with the refreshed vertices'
// residuals) on delta publications — so certifying convergence never costs
// an O(n) scan on the sparse path. Either way a correctly published snapshot
// has MaxResidual ≤ Epsilon, because the engine drives every residual within
// ε before publication.
func (s *Snapshot) MaxResidual() float64 { return s.maxResidual }

// Epsilon returns the error threshold the snapshot was converged to.
func (s *Snapshot) Epsilon() float64 { return s.epsilon }

// Converged reports whether the snapshot honoured the convergence contract
// at publication time.
func (s *Snapshot) Converged() bool { return s.maxResidual <= s.epsilon }

// NumVertices returns the length of the estimate vector.
func (s *Snapshot) NumVertices() int { return len(s.estimates) }

// Estimate returns the PPR estimate of v (0 for out-of-range vertices).
func (s *Snapshot) Estimate(v graph.VertexID) float64 {
	if v < 0 || int(v) >= len(s.estimates) {
		return 0
	}
	return s.estimates[int(v)]
}

// Estimates returns a copy of the estimate vector.
func (s *Snapshot) Estimates() []float64 {
	return append([]float64(nil), s.estimates...)
}

// RawEstimates returns the snapshot's backing vector without copying. The
// caller must treat it as read-only and must not retain it past Release.
func (s *Snapshot) RawEstimates() []float64 { return s.estimates }

// TopIndexLen returns the length of the embedded exact Top-K ranking (0 when
// the slot publishes without an index). Reads with k ≤ TopIndexLen() are
// O(k); larger k falls back to a heap scan of the vector.
func (s *Snapshot) TopIndexLen() int { return len(s.top) }

// AppendTopK appends the snapshot's k highest-estimate vertices to dst
// (descending, ties broken by ascending vertex id) and returns the extended
// slice. When the embedded index covers k the read is an O(k) copy;
// otherwise it falls back to the O(n log k) heap scan. The result is a copy
// and stays valid after Release.
func (s *Snapshot) AppendTopK(dst []VertexScore, k int) []VertexScore {
	if k > len(s.estimates) {
		k = len(s.estimates)
	}
	if k <= 0 {
		return dst
	}
	if k <= len(s.top) {
		return append(dst, s.top[:k]...)
	}
	return AppendTopK(dst, s.estimates, k)
}

// TopK is AppendTopK into a fresh slice.
func (s *Snapshot) TopK(k int) []VertexScore { return s.AppendTopK(nil, k) }

// Release ends a read begun by SnapshotSlot.Acquire. Every Acquire must be
// paired with exactly one Release; the snapshot must not be read afterwards.
func (s *Snapshot) Release() { s.readers.Add(-1) }

// SnapshotSlot is the double-buffered publication point between one push
// worker and any number of concurrent readers. The worker alternates between
// two Snapshot buffers: while one is published (visible to readers through an
// atomic pointer), the other is rewritten with the freshly converged state
// and then published with a single atomic store. Readers therefore always
// observe a complete, converged vector — never a mid-push intermediate.
//
// Publish is single-producer: only one goroutine may publish to a slot at a
// time (the Service pins each source to one shard worker). Acquire/Release
// may be called from any number of goroutines concurrently with Publish.
type SnapshotSlot struct {
	cur  atomic.Pointer[Snapshot]
	bufs [2]*Snapshot
	// next indexes the buffer the next Publish will write (the one that is
	// not currently published). Only the publishing goroutine touches it.
	next  int
	epoch uint64

	// Delta-publication state (write side only). prev holds the dirty set
	// drained by the previous Publish and prevAll whether it was poisoned:
	// because the two buffers alternate, the spare buffer was last written
	// two publications ago, so bringing it current requires refreshing the
	// union of the previous and the current dirty sets. drain is the
	// recycled buffer handed to State.DrainDirty.
	drain   []int32
	prev    []int32
	prevAll bool

	// resBound is the running convergence certificate: exact on full
	// publications (an O(n) scan), and on delta publications the maximum of
	// the previous bound and the refreshed vertices' residuals. The engine's
	// convergence contract independently guarantees every residual ≤ ε at
	// publication, so the bound stays ≤ ε; it is not recomputed from scratch
	// per publish precisely so publication cost scales with the dirty set.
	resBound float64

	// index is the write-side master of the incrementally maintained Top-K
	// ranking; disabled when topCap == 0.
	topCap int
	index  topIndex

	// Publication-path statistics (atomic: Stats readers race Publish).
	fullPublishes  atomic.Uint64
	deltaPublishes atomic.Uint64
}

// DefaultTopKCap is the Top-K index capacity NewSnapshotSlot selects: deep
// enough for any realistic ranking request, shallow enough that the
// per-publication index copy stays trivial next to the push itself.
const DefaultTopKCap = 128

// NewSnapshotSlot returns an empty slot with a Top-K index of DefaultTopKCap
// entries; Acquire returns nil until the first Publish.
func NewSnapshotSlot() *SnapshotSlot { return NewSnapshotSlotTopK(DefaultTopKCap) }

// NewSnapshotSlotTopK returns an empty slot whose published snapshots embed
// an exact Top-K ranking of up to cap entries. cap <= 0 disables the index:
// snapshots then serve TopK by scanning the vector, and publication skips
// the index maintenance.
func NewSnapshotSlotTopK(cap int) *SnapshotSlot {
	sl := &SnapshotSlot{bufs: [2]*Snapshot{{}, {}}}
	if cap > 0 {
		sl.topCap = cap
		sl.index.cap = cap
	}
	return sl
}

// TopKCap returns the slot's Top-K index capacity (0 when disabled).
func (sl *SnapshotSlot) TopKCap() int { return sl.topCap }

// PublishStats reports how the slot's publications were performed.
type PublishStats struct {
	// Full counts publications that recopied the whole estimate vector
	// (cold start, recovery reseed, graph growth, poisoned dirty set, or a
	// dirty set too large for the delta path to win).
	Full uint64
	// Delta counts publications that copied only the dirty union.
	Delta uint64
	// TopKRebuilds counts full-scan rebuilds of the Top-K index.
	TopKRebuilds uint64
}

// Stats returns the slot's publication statistics. Safe to call concurrently
// with Publish (counters are atomic; the rebuild count is read from the
// write side and may lag by one publication).
func (sl *SnapshotSlot) Stats() PublishStats {
	return PublishStats{
		Full:         sl.fullPublishes.Load(),
		Delta:        sl.deltaPublishes.Load(),
		TopKRebuilds: sl.index.rebuilds.Load(),
	}
}

// SeedEpoch primes the publication counter so the next Publish carries epoch
// e+1. It exists for crash recovery: a source restored from a checkpoint
// taken at epoch E seeds its slot with E−1 and republishes the restored
// state, so readers observe the same epoch they would have seen from the
// original process and epochs never regress across a restart. SeedEpoch must
// be called before the first Publish, from the slot's write side.
func (sl *SnapshotSlot) SeedEpoch(e uint64) { sl.epoch = e }

// Publish brings the spare buffer up to date with the state's estimate
// vector, refreshes the Top-K index, and atomically swaps the buffer in as
// the current snapshot. It must only be called after the engine has
// converged st, and only from the single goroutine that owns the slot's
// write side.
//
// Publication is sparse: the state's estimate-dirty set (maintained by the
// engines) names every vertex whose estimate changed since the previous
// drain, so the spare buffer — last written two publications ago — is
// brought current by copying only the union of the previous and current
// dirty sets. The result is bit-identical to a full copy. A full copy is
// performed instead when the dirty set is poisoned (MarkAllEstimatesDirty,
// recovery reseed), when the vector grew (new vertices), when the buffer
// has never been filled, or when the union is so large that the dense copy
// is cheaper.
//
// Recycling the spare buffer waits for stragglers: a reader that acquired
// the buffer during its previous publication may still be reading it, so
// Publish spins until the buffer's reader count drains to zero. Readers hold
// snapshots only for the duration of one query, so the wait is bounded and
// short.
func (sl *SnapshotSlot) Publish(st *State) *Snapshot {
	spare := sl.bufs[sl.next]
	for spare.readers.Load() != 0 {
		runtime.Gosched()
	}
	n := st.NumVertices()
	dirty, all := st.DrainDirty(sl.drain[:0])
	sl.drain = dirty

	// The spare is delta-patchable only if it was filled to the current
	// length (never-filled and pre-growth buffers miss entries no dirty set
	// covers) and neither of the two dirty sets it must absorb is poisoned.
	// Beyond half the vector a dense copy is cheaper than scattered stores.
	full := all || sl.prevAll || len(spare.estimates) != n ||
		len(dirty)+len(sl.prev) > n/2
	spare.source = st.Source()
	if full {
		spare.estimates = st.FillEstimates(spare.estimates)
		sl.resBound = st.MaxResidual()
		sl.fullPublishes.Add(1)
	} else {
		est := spare.estimates
		for _, v := range dirty {
			est[v] = st.p.Get(int(v))
		}
		for _, v := range sl.prev {
			est[v] = st.p.Get(int(v))
		}
		for _, v := range dirty {
			if r := st.r.Get(int(v)); r > sl.resBound {
				sl.resBound = r
			} else if -r > sl.resBound {
				sl.resBound = -r
			}
		}
		sl.deltaPublishes.Add(1)
	}
	spare.maxResidual = sl.resBound
	spare.epsilon = st.Epsilon()

	if sl.topCap > 0 {
		sl.index.apply(st, dirty, all)
		spare.top = append(spare.top[:0], sl.index.entries...)
	}

	// Rotate the dirty buffers: the set drained now is what the *other*
	// buffer must absorb on the next publication.
	sl.drain, sl.prev = sl.prev[:0], dirty
	sl.prevAll = all

	sl.epoch++
	spare.epoch = sl.epoch
	sl.cur.Store(spare)
	sl.next ^= 1
	return spare
}

// Acquire returns the currently published snapshot with a read hold on it,
// or nil if nothing has been published yet. The caller must call Release on
// the returned snapshot when done and must not retain it afterwards.
//
// The implementation is the increment-then-validate hazard protocol: the
// reader registers on the snapshot it loaded and re-checks that it is still
// the published one. If publication moved on in between, the registration is
// undone and the load retried, so a reader can never hold a buffer the
// publisher has started rewriting.
func (sl *SnapshotSlot) Acquire() *Snapshot {
	for {
		s := sl.cur.Load()
		if s == nil {
			return nil
		}
		s.readers.Add(1)
		if sl.cur.Load() == s {
			return s
		}
		s.readers.Add(-1)
	}
}

// Epoch returns the sequence number of the most recent publication (0 before
// the first). It is safe to call concurrently with Publish.
func (sl *SnapshotSlot) Epoch() uint64 {
	if s := sl.cur.Load(); s != nil {
		return s.epoch
	}
	return 0
}
