package push

import (
	"math"
	"testing"

	"dynppr/internal/gen"
	"dynppr/internal/graph"
	"dynppr/internal/power"
)

func TestSortAggregateName(t *testing.T) {
	e := NewSortAggregate(4)
	if e.Name() != "sort-aggregate-w4" || e.Workers() != 4 {
		t.Fatalf("accessors wrong: %s", e.Name())
	}
	if NewSortAggregate(0).Workers() < 1 {
		t.Fatal("workers must default to >= 1")
	}
}

// On the paper's running example the sort-aggregate engine behaves like the
// vanilla parallel push (same session order, same residual snapshot), so it
// must reproduce Figure 3 a(4) exactly.
func TestSortAggregateMatchesFigure3(t *testing.T) {
	st, err := NewState(paperGraph(), 0, paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	NewSortAggregate(1).Run(st, []graph.VertexID{0})
	wantP := []float64{0.5, 0.25, 0.1875, 0.0625}
	wantR := []float64{0.0625, 0, 0, 0.0625}
	for v := range wantP {
		if got := st.Estimate(graph.VertexID(v)); math.Abs(got-wantP[v]) > 1e-12 {
			t.Errorf("P[%d] = %v, want %v", v, got, wantP[v])
		}
		if got := st.Residual(graph.VertexID(v)); math.Abs(got-wantR[v]) > 1e-12 {
			t.Errorf("R[%d] = %v, want %v", v, got, wantR[v])
		}
	}
	if err := requireInvariant(st); err != nil {
		t.Error(err)
	}
}

// Theorem 2 must hold for the sort-aggregate method too, both from a cold
// start and across dynamic updates, under contention.
func TestSortAggregateApproximatesOracle(t *testing.T) {
	edges, err := gen.EdgeList(gen.Config{Model: gen.RMAT, Vertices: 250, Edges: 2500, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.FromEdges(edges[:1800])
	source := g.TopDegreeVertices(1)[0]
	cfg := Config{Alpha: 0.15, Epsilon: 1e-4}
	st, err := NewState(g, source, cfg)
	if err != nil {
		t.Fatal(err)
	}
	engine := NewSortAggregate(4)
	engine.Run(st, []graph.VertexID{source})

	var touched []graph.VertexID
	for _, ins := range edges[1800:] {
		if changed, _ := st.ApplyInsert(ins.U, ins.V); changed {
			touched = append(touched, ins.U)
		}
	}
	engine.Run(st, touched)
	if !st.Converged() {
		t.Fatal("not converged")
	}
	if st.InvariantError() > 1e-8 {
		t.Fatalf("invariant error %v", st.InvariantError())
	}
	oracle, err := power.ReverseGraph(g, source, power.Options{Alpha: cfg.Alpha, Tolerance: 1e-13, MaxIterations: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if worst := power.MaxAbsDiff(st.Estimates(), oracle); worst > cfg.Epsilon {
		t.Fatalf("max error %v exceeds epsilon", worst)
	}
	// The whole point of the method: no atomic operations at all.
	if st.Counters.AtomicAdds != 0 {
		t.Fatalf("sort-aggregate must not use atomic adds, counted %d", st.Counters.AtomicAdds)
	}
}

// The sort-aggregate engine performs exactly the same pushes as the vanilla
// atomic engine when run single-threaded (identical session order), so their
// work counters must agree.
func TestSortAggregateWorkMatchesVanilla(t *testing.T) {
	g, err := gen.Generate(gen.Config{Model: gen.BarabasiAlbert, Vertices: 200, Edges: 2000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	source := g.TopDegreeVertices(1)[0]
	cfg := Config{Alpha: 0.15, Epsilon: 1e-5}

	a, err := NewState(g.Clone(), source, cfg)
	if err != nil {
		t.Fatal(err)
	}
	NewParallel(VariantVanilla, 1).Run(a, []graph.VertexID{source})

	b, err := NewState(g.Clone(), source, cfg)
	if err != nil {
		t.Fatal(err)
	}
	NewSortAggregate(1).Run(b, []graph.VertexID{source})

	if a.Counters.Pushes != b.Counters.Pushes {
		t.Fatalf("pushes differ: vanilla %d vs sort-aggregate %d", a.Counters.Pushes, b.Counters.Pushes)
	}
	if a.Counters.Propagations != b.Counters.Propagations {
		t.Fatalf("propagations differ: %d vs %d", a.Counters.Propagations, b.Counters.Propagations)
	}
	if d := power.MaxAbsDiff(a.Estimates(), b.Estimates()); d > 1e-12 {
		t.Fatalf("estimates differ by %v", d)
	}
}
