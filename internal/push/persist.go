package push

import (
	"fmt"

	"dynppr/internal/fp"
	"dynppr/internal/graph"
	"dynppr/internal/metrics"
)

// RestoreState rebuilds a State from checkpointed vectors instead of the
// cold-start distribution, so a recovered source resumes from exactly the
// converged (P, R) pair it had when the checkpoint was written — bit for
// bit, which is what makes recovery reproducible under the deterministic
// engine. The vector length is preserved as serialized: it may lag
// g.NumVertices() when the graph grew without touching this source (sync
// grows it on the next mutation, exactly as it would have in the original
// process).
func RestoreState(g *graph.Graph, source graph.VertexID, cfg Config, estimates, residuals []float64) (*State, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if source < 0 {
		return nil, fmt.Errorf("push: source must be non-negative, got %d", source)
	}
	if len(estimates) != len(residuals) {
		return nil, fmt.Errorf("push: restore vectors disagree: %d estimates, %d residuals", len(estimates), len(residuals))
	}
	if int(source) >= len(estimates) {
		return nil, fmt.Errorf("push: restore vectors of length %d do not cover source %d", len(estimates), source)
	}
	if len(estimates) > g.NumVertices() {
		return nil, fmt.Errorf("push: restore vectors cover %d vertices, graph has %d", len(estimates), g.NumVertices())
	}
	n := len(estimates)
	st := &State{
		g:           g,
		source:      source,
		cfg:         cfg,
		p:           fp.NewFloat64Vector(n),
		r:           fp.NewFloat64Vector(n),
		dirtyMarked: make([]bool, n),
		Counters:    &metrics.Counters{},
	}
	for i := 0; i < n; i++ {
		st.p.Set(i, estimates[i])
		st.r.Set(i, residuals[i])
	}
	// A restored vector has no publication history: poison the dirty set so
	// the recovery reseed's first publication full-copies and the Top-K
	// index rebuilds, instead of trusting deltas tracked in another life.
	st.MarkAllEstimatesDirty()
	return st, nil
}
