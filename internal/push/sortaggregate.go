package push

import (
	"fmt"
	"sort"

	"dynppr/internal/fp"
	"dynppr/internal/graph"
)

// SortAggregate is the alternative parallel push the paper describes (and
// rejects) in Section 3.1: instead of transferring residuals to neighbors
// with atomic adds, every propagation emits a (neighbor, increment) pair;
// the pairs are then sorted by neighbor id, reduced per key, and the
// aggregated increments are applied without any atomics. The paper keeps the
// atomic method because the sort dominates for large frontiers; this engine
// exists so that the claim can be measured (BenchmarkAblation_SortAggregate).
//
// The engine follows the vanilla session order of Algorithm 3 (self-update
// first, then propagation), with frontier generation performed during the
// aggregation pass — which is naturally duplicate free, since each vertex
// appears exactly once after the reduce.
type SortAggregate struct {
	workers int
}

// NewSortAggregate returns the sorting-and-aggregating parallel push engine.
// workers <= 0 selects GOMAXPROCS.
func NewSortAggregate(workers int) *SortAggregate {
	if workers <= 0 {
		workers = fp.DefaultWorkers()
	}
	return &SortAggregate{workers: workers}
}

// Name implements Engine.
func (e *SortAggregate) Name() string { return fmt.Sprintf("sort-aggregate-w%d", e.workers) }

// Workers returns the configured degree of parallelism.
func (e *SortAggregate) Workers() int { return e.workers }

// Run implements Engine.
func (e *SortAggregate) Run(st *State, candidates []graph.VertexID) {
	e.runPhase(st, candidates, phasePositive)
	e.runPhase(st, candidates, phaseNegative)
}

// contribution is one emitted (neighbor, increment) pair.
type contribution struct {
	vertex int32
	inc    float64
}

func (e *SortAggregate) runPhase(st *State, candidates []graph.VertexID, ph phase) {
	frontier := st.activeFrom(candidates, ph)
	for len(frontier) > 0 {
		st.Counters.ObserveIteration(len(frontier))
		// The self-update session changes every frontier vertex's estimate;
		// record that for delta snapshot publication before fanning out.
		st.MarkEstimatesDirty(frontier)
		frontier = e.iterate(st, frontier, ph)
	}
}

func (e *SortAggregate) iterate(st *State, frontier []int32, ph phase) []int32 {
	alpha := st.cfg.Alpha
	eps := st.cfg.Epsilon
	g := st.g
	counters := st.Counters

	// Session 1: self-update, identical to the vanilla order.
	taken := make([]float64, len(frontier))
	fp.For(len(frontier), e.workers, func(i int) {
		u := int(frontier[i])
		ru := st.r.Get(u)
		taken[i] = ru
		st.p.Set(u, st.p.Get(u)+alpha*ru)
		st.r.Set(u, 0)
	})
	counters.AddPushes(int64(len(frontier)))

	// Session 2: emit contributions into per-slot buffers (no shared writes),
	// then sort and reduce.
	buffers := make([][]contribution, len(frontier))
	fp.ForDynamic(len(frontier), e.workers, propagationGrain, func(i int) {
		u := graph.VertexID(frontier[i])
		w := taken[i]
		in := g.InNeighbors(u)
		counters.AddPropagations(int64(len(in)))
		counters.AddRandomAccesses(int64(len(in)))
		buf := make([]contribution, 0, len(in))
		for _, v := range in {
			buf = append(buf, contribution{
				vertex: int32(v),
				inc:    (1 - alpha) * w / float64(g.OutDegree(v)),
			})
		}
		buffers[i] = buf
	})
	total := 0
	for _, b := range buffers {
		total += len(b)
	}
	all := make([]contribution, 0, total)
	for _, b := range buffers {
		all = append(all, b...)
	}
	// Parallel-sort stand-in: the standard library sort; the cost being
	// measured is exactly the point of the paper's footnote.
	sort.Slice(all, func(i, j int) bool { return all[i].vertex < all[j].vertex })

	// Reduce by key and apply; each distinct vertex is touched exactly once,
	// so the writes need no synchronization and frontier generation needs no
	// duplicate detection.
	var next []int32
	for i := 0; i < len(all); {
		v := all[i].vertex
		sum := 0.0
		for ; i < len(all) && all[i].vertex == v; i++ {
			sum += all[i].inc
		}
		nr := st.r.Get(int(v)) + sum
		st.r.Set(int(v), nr)
		if ph.cond(nr, eps) {
			next = append(next, v)
		}
	}
	counters.AddEnqueues(int64(len(next)))
	return next
}
