// Package push implements the paper's local update scheme for dynamic
// Personalized PageRank: the per-vertex estimate/residual state, invariant
// restoration against edge updates (Algorithm 1), the sequential local push
// (Algorithm 2), the parallel local push (Algorithm 3) and its optimized
// form with eager propagation and local duplicate detection (Algorithm 4).
//
// The quantity maintained is the contribution (reverse) PPR vector towards a
// fixed source vertex s: the estimate P(v) approximates the probability that
// a random walk from v, terminating with probability α at each step, stops at
// s. The invariant kept for every vertex v (Equation 2 of the paper) is
//
//	P(v) + α·R(v) = α·1{v=s} + (1−α)/dout(v) · Σ_{x ∈ Nout(v)} P(x)
//
// and the scheme guarantees |P(v) − π(v)| ≤ ε whenever |R(v)| ≤ ε for all v.
package push

import (
	"fmt"

	"dynppr/internal/fp"
	"dynppr/internal/graph"
	"dynppr/internal/metrics"
)

// Config holds the two parameters of the local update scheme.
type Config struct {
	// Alpha is the teleport/termination probability (paper default 0.15).
	Alpha float64
	// Epsilon is the error threshold: after a push converges every residual
	// has absolute value at most Epsilon, so every estimate is within Epsilon
	// of the true value.
	Epsilon float64
}

// DefaultConfig returns the paper's default α with an ε suitable for the
// scaled-down datasets of this repository.
func DefaultConfig() Config { return Config{Alpha: 0.15, Epsilon: 1e-6} }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return fmt.Errorf("push: alpha must be in (0,1), got %v", c.Alpha)
	}
	if c.Epsilon <= 0 {
		return fmt.Errorf("push: epsilon must be positive, got %v", c.Epsilon)
	}
	return nil
}

// State is the estimate/residual pair (P, R) for one source vertex over a
// dynamic graph, together with the scheme parameters and work counters.
//
// A freshly constructed State carries the whole probability mass as residual
// at the source (R(s)=1, P≡0), which is the standard cold-start of the local
// update scheme; running any Engine to convergence then yields an
// ε-approximate vector for the current graph.
type State struct {
	g      *graph.Graph
	source graph.VertexID
	cfg    Config

	p *fp.Float64Vector
	r *fp.Float64Vector

	// Estimate-dirty tracking: the set of vertices whose estimate changed
	// since the last DrainDirty. Engines mark the vertices they push (the
	// only writers of P); SnapshotSlot.Publish drains the set to copy and
	// index only what changed. dirtyAll poisons the set ("assume everything
	// changed") for engines that cannot track cheaply and for restored
	// states. All three fields are owned by the goroutine driving the engine.
	dirtyMarked []bool
	dirtyList   []int32
	dirtyAll    bool

	// activeBuf and activeSeen are reusable scratch for activeFrom, so the
	// per-batch frontier seeding of the engines allocates nothing once the
	// buffers have grown to their steady-state size.
	activeBuf  []int32
	activeSeen []bool

	// Counters accumulates the work performed by invariant restoration and by
	// the engines running over this state. Never nil.
	Counters *metrics.Counters
}

// NewState creates the state for the given source on g. The source vertex is
// created in the graph if it does not exist yet.
func NewState(g *graph.Graph, source graph.VertexID, cfg Config) (*State, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if source < 0 {
		return nil, fmt.Errorf("push: source must be non-negative, got %d", source)
	}
	g.EnsureVertex(source)
	n := g.NumVertices()
	st := &State{
		g:           g,
		source:      source,
		cfg:         cfg,
		p:           fp.NewFloat64Vector(n),
		r:           fp.NewFloat64Vector(n),
		dirtyMarked: make([]bool, n),
		Counters:    &metrics.Counters{},
	}
	st.r.Set(int(source), 1)
	return st, nil
}

// Graph returns the dynamic graph the state is tracking.
func (st *State) Graph() *graph.Graph { return st.g }

// Source returns the source vertex.
func (st *State) Source() graph.VertexID { return st.source }

// Alpha returns the teleport probability.
func (st *State) Alpha() float64 { return st.cfg.Alpha }

// Epsilon returns the error threshold.
func (st *State) Epsilon() float64 { return st.cfg.Epsilon }

// Config returns the scheme parameters.
func (st *State) Config() Config { return st.cfg }

// NumVertices returns the number of vertices covered by the state vectors.
func (st *State) NumVertices() int { return st.p.Len() }

// Estimate returns the current PPR estimate of v (0 for unknown vertices).
func (st *State) Estimate(v graph.VertexID) float64 {
	if int(v) >= st.p.Len() || v < 0 {
		return 0
	}
	return st.p.Get(int(v))
}

// Residual returns the current residual of v (0 for unknown vertices).
func (st *State) Residual(v graph.VertexID) float64 {
	if int(v) >= st.r.Len() || v < 0 {
		return 0
	}
	return st.r.Get(int(v))
}

// Estimates returns a copy of the estimate vector.
func (st *State) Estimates() []float64 { return st.p.Snapshot() }

// FillEstimates copies the estimate vector into dst, growing it if needed,
// and returns the filled slice. It exists for the snapshot publication path
// (SnapshotSlot.Publish), which recycles buffers instead of allocating a
// fresh copy per publication.
func (st *State) FillEstimates(dst []float64) []float64 {
	n := st.p.Len()
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = st.p.Get(i)
	}
	return dst
}

// Residuals returns a copy of the residual vector.
func (st *State) Residuals() []float64 { return st.r.Snapshot() }

// ResidualL1 returns the L1 norm of the residual vector.
func (st *State) ResidualL1() float64 { return st.r.SumAbs() }

// MaxResidual returns the L∞ norm of the residual vector.
func (st *State) MaxResidual() float64 { return st.r.MaxAbs() }

// sync grows the state vectors to cover every vertex of the graph. It must be
// called after graph mutations that may have introduced vertices.
func (st *State) sync() {
	n := st.g.NumVertices()
	if n > st.p.Len() {
		st.p.Resize(n)
		st.r.Resize(n)
	}
	if n > len(st.dirtyMarked) {
		st.dirtyMarked = append(st.dirtyMarked, make([]bool, n-len(st.dirtyMarked))...)
	}
}

// markEstimateDirty records that P(v) changed since the last drain. Callers
// must own the state (engine coordinator or pipeline goroutine).
func (st *State) markEstimateDirty(v int32) {
	if st.dirtyAll {
		return
	}
	if !st.dirtyMarked[v] {
		st.dirtyMarked[v] = true
		st.dirtyList = append(st.dirtyList, v)
	}
}

// MarkEstimatesDirty records that the estimates of vs changed since the last
// drain. Engines call it with each round's frontier (the exact set of
// vertices whose estimate a round updates) from the coordinating goroutine.
func (st *State) MarkEstimatesDirty(vs []int32) {
	if st.dirtyAll {
		return
	}
	for _, v := range vs {
		if !st.dirtyMarked[v] {
			st.dirtyMarked[v] = true
			st.dirtyList = append(st.dirtyList, v)
		}
	}
}

// MarkAllEstimatesDirty poisons the dirty set: the next drain reports that
// any estimate may have changed, forcing full-copy publication and a Top-K
// rebuild. It exists for engines that update estimates concurrently without
// a frontier hook (the vertex-centric baseline) and for restored states.
func (st *State) MarkAllEstimatesDirty() { st.dirtyAll = true }

// DrainDirty appends the dirty vertices to dst, resets the tracking, and
// reports whether the set was poisoned (all == true means "assume every
// estimate changed" and the appended list is empty). The single consumer is
// SnapshotSlot.Publish, which passes a recycled buffer so steady-state
// drains allocate nothing.
func (st *State) DrainDirty(dst []int32) (dirty []int32, all bool) {
	all = st.dirtyAll
	if !all {
		dst = append(dst, st.dirtyList...)
	}
	for _, v := range st.dirtyList {
		st.dirtyMarked[v] = false
	}
	st.dirtyList = st.dirtyList[:0]
	st.dirtyAll = false
	return dst, all
}

// DirtyCount returns the current size of the estimate-dirty set (n when
// poisoned). Exposed for tests and stats.
func (st *State) DirtyCount() int {
	if st.dirtyAll {
		return st.p.Len()
	}
	return len(st.dirtyList)
}

// AppendTopK appends the k highest-estimate vertices (descending, ties by
// ascending vertex id) to dst, reading the live estimate vector directly —
// no O(n) copy. The caller must own the state (not be racing an engine).
func (st *State) AppendTopK(dst []VertexScore, k int) []VertexScore {
	return AppendTopKFunc(dst, st.p.Len(), st.p.Get, k)
}

// ApplyInsert adds edge u->v to the graph and restores the invariant
// (Algorithm 1, Insert). It reports whether the graph changed (false when the
// edge already existed, in which case the invariant needs no repair).
func (st *State) ApplyInsert(u, v graph.VertexID) (bool, error) {
	added, err := st.g.AddEdge(u, v)
	if err != nil || !added {
		return false, err
	}
	st.sync()
	st.restore(u, v, +1)
	return true, nil
}

// ApplyDelete removes edge u->v from the graph and restores the invariant
// (Algorithm 1, Delete). It reports whether the graph changed (false when the
// edge did not exist).
func (st *State) ApplyDelete(u, v graph.VertexID) (bool, error) {
	if err := st.g.RemoveEdge(u, v); err != nil {
		return false, nil //nolint:nilerr // missing edge is a skipped update, not an error
	}
	st.sync()
	st.restore(u, v, -1)
	return true, nil
}

// NoteInserted restores the invariant for an edge u->v that has already been
// added to the graph by the caller. It exists for callers that maintain
// several states over one shared graph (multi-source tracking): the graph is
// mutated once and every state is notified.
func (st *State) NoteInserted(u, v graph.VertexID) {
	st.sync()
	st.restore(u, v, +1)
}

// NoteDeleted restores the invariant for an edge u->v that has already been
// removed from the graph by the caller.
func (st *State) NoteDeleted(u, v graph.VertexID) {
	st.sync()
	st.restore(u, v, -1)
}

// restore repairs Equation 2 at u after the graph has already been mutated.
// op is +1 for insertion of u->v and -1 for deletion. Only R(u) changes; the
// new out-degree dout(u) (post-mutation) appears in the denominator, matching
// Algorithm 1 of the paper.
func (st *State) restore(u, v graph.VertexID, op float64) {
	alpha := st.cfg.Alpha
	iu, iv := int(u), int(v)
	d := float64(st.g.OutDegree(u))
	st.Counters.AddRestoreOps(1)

	indicator := 0.0
	if u == st.source {
		indicator = alpha
	}
	if d == 0 {
		// Deleting the last out-edge: the invariant reduces to
		// P(u) + α·R(u) = α·1{u=s}.
		st.r.Set(iu, (indicator-st.p.Get(iu))/alpha)
		return
	}
	delta := ((1-alpha)*st.p.Get(iv) - st.p.Get(iu) - alpha*st.r.Get(iu) + indicator) / (alpha * d)
	st.r.Set(iu, st.r.Get(iu)+op*delta)
}

// InvariantError returns the maximum absolute violation of Equation 2 over
// all vertices. A correctly maintained state has an error within floating
// point rounding of zero regardless of how large the residuals are.
func (st *State) InvariantError() float64 {
	alpha := st.cfg.Alpha
	var worst float64
	n := st.g.NumVertices()
	for v := 0; v < n; v++ {
		rhs := 0.0
		if graph.VertexID(v) == st.source {
			rhs = alpha
		}
		out := st.g.OutNeighbors(graph.VertexID(v))
		if len(out) > 0 {
			var sum float64
			for _, x := range out {
				sum += st.p.Get(int(x))
			}
			rhs += (1 - alpha) * sum / float64(len(out))
		}
		lhs := st.p.Get(v) + alpha*st.r.Get(v)
		diff := lhs - rhs
		if diff < 0 {
			diff = -diff
		}
		if diff > worst {
			worst = diff
		}
	}
	return worst
}

// Converged reports whether every residual is within the error threshold.
func (st *State) Converged() bool { return st.r.MaxAbs() <= st.cfg.Epsilon }

// activeFrom filters the candidate vertices down to those whose residual
// currently satisfies the push condition of the given phase. A nil candidate
// list means "scan every vertex". Duplicate candidates are removed.
//
// The returned slice is backed by reusable per-state scratch: it is valid
// until the next activeFrom call, and callers may append to it freely (a
// growth simply re-anchors the scratch on the next call).
func (st *State) activeFrom(candidates []graph.VertexID, phase phase) []int32 {
	eps := st.cfg.Epsilon
	out := st.activeBuf[:0]
	if candidates == nil {
		n := st.r.Len()
		for v := 0; v < n; v++ {
			if phase.cond(st.r.Get(v), eps) {
				out = append(out, int32(v))
			}
		}
		st.activeBuf = out
		return out
	}
	if len(st.activeSeen) < st.r.Len() {
		st.activeSeen = append(st.activeSeen, make([]bool, st.r.Len()-len(st.activeSeen))...)
	}
	for _, v := range candidates {
		if int(v) >= st.r.Len() || v < 0 {
			continue
		}
		if st.activeSeen[v] {
			continue
		}
		st.activeSeen[v] = true
		if phase.cond(st.r.Get(int(v)), eps) {
			out = append(out, int32(v))
		}
	}
	for _, v := range candidates {
		if int(v) < len(st.activeSeen) && v >= 0 {
			st.activeSeen[v] = false
		}
	}
	st.activeBuf = out
	return out
}

// The following mutators exist for Engine implementations living outside
// this package (the vertex-centric baseline): they expose the estimate and
// residual vectors with the same plain/atomic access discipline the built-in
// engines use.

// Vectors exposes the estimate and residual vectors themselves. It exists
// for the deterministic engine of internal/parallel, whose striped
// accumulation and ordered reduction need direct (plain) element access on
// the hot path; the access discipline is the same as for the built-in
// engines — distinct vertices per goroutine between barriers.
func (st *State) Vectors() (p, r *fp.Float64Vector) { return st.p, st.r }

// AddEstimate adds delta to P(v) without synchronization. Callers must ensure
// v is owned by a single goroutine for the duration of the call.
func (st *State) AddEstimate(v graph.VertexID, delta float64) {
	st.p.Set(int(v), st.p.Get(int(v))+delta)
}

// AtomicResidual atomically reads R(v).
func (st *State) AtomicResidual(v graph.VertexID) float64 {
	return st.r.AtomicGet(int(v))
}

// AtomicAddResidual atomically adds delta to R(v) and returns the value held
// immediately before the addition.
func (st *State) AtomicAddResidual(v graph.VertexID, delta float64) (before float64) {
	return st.r.AtomicAdd(int(v), delta)
}

// SwapResidual atomically replaces R(v) with x and returns the previous
// value.
func (st *State) SwapResidual(v graph.VertexID, x float64) float64 {
	return st.r.AtomicSwap(int(v), x)
}

// ActiveVertices returns the vertices whose residual currently violates the
// threshold for the positive (sign > 0) or negative (sign < 0) phase. It is
// exported for out-of-package engines; candidates follow the same contract as
// Engine.Run.
func (st *State) ActiveVertices(candidates []graph.VertexID, sign int) []graph.VertexID {
	ph := phasePositive
	if sign < 0 {
		ph = phaseNegative
	}
	raw := st.activeFrom(candidates, ph)
	out := make([]graph.VertexID, len(raw))
	for i, v := range raw {
		out[i] = graph.VertexID(v)
	}
	return out
}

// phase distinguishes the positive-residual and negative-residual passes of
// the local push.
type phase int8

const (
	phasePositive phase = iota
	phaseNegative
)

// cond is the pushCond predicate of the paper: r > ε in the positive phase,
// r < −ε in the negative phase.
func (p phase) cond(r, eps float64) bool {
	if p == phasePositive {
		return r > eps
	}
	return r < -eps
}

// Engine pushes a state to convergence. Implementations are the sequential
// push (Algorithm 2), the parallel push variants (Algorithms 3 and 4) and the
// vertex-centric baseline.
type Engine interface {
	// Name identifies the engine in experiment output.
	Name() string
	// Run performs local pushes until every residual is within ε.
	// candidates, if non-nil, lists every vertex whose residual may exceed ε
	// (for incremental maintenance this is the set of update endpoints);
	// nil requests a full scan.
	Run(st *State, candidates []graph.VertexID)
}
