package push

import (
	"math"
	"testing"
	"time"

	"dynppr/internal/gen"
	"dynppr/internal/graph"
	"dynppr/internal/power"
)

// coldPushSnapshot builds a deliberately dangling-heavy ER snapshot: unlike
// the ring graphs the engine tests use, no overlay is added, so some vertices
// have no out-edges and some have no in-edges. ColdPushCSR must stay within
// its bound on exactly this shape — the local push never divides by a
// dangling out-degree, so no convention caveat applies.
func coldPushSnapshot(t *testing.T, vertices, edges int, seed int64) *graph.CSR {
	t.Helper()
	list, err := gen.EdgeList(gen.Config{Model: gen.ErdosRenyi, Vertices: vertices, Edges: edges, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return graph.FromEdges(list).Snapshot()
}

func TestColdPushCSRValidation(t *testing.T) {
	c := coldPushSnapshot(t, 20, 40, 1)
	if _, err := ColdPushCSR(c, 0, Config{Alpha: 0, Epsilon: 1}, 0); err == nil {
		t.Fatal("invalid config must fail")
	}
	for _, src := range []graph.VertexID{-1, graph.VertexID(c.NumVertices())} {
		if _, err := ColdPushCSR(c, src, DefaultConfig(), 0); err == nil {
			t.Fatalf("out-of-range source %d must fail", src)
		}
	}
}

// TestColdPushCSRMatchesReverseOracle is the semantic contract: the one-shot
// push approximates the contribution vector π_·(s) — the quantity the live
// engines maintain — within its advertised per-vertex MaxResidual bound, for
// every vertex, on a graph with dangling vertices.
func TestColdPushCSRMatchesReverseOracle(t *testing.T) {
	c := coldPushSnapshot(t, 250, 1500, 7)
	oracleOpts := power.Options{Alpha: 0.15, Tolerance: 1e-13, MaxIterations: 20_000}
	for _, src := range []graph.VertexID{0, 13, 101, 249} {
		res, err := ColdPushCSR(c, src, Config{Alpha: 0.15, Epsilon: 1e-4}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Capped {
			t.Fatalf("source %d: unbounded push reported capped", src)
		}
		if res.MaxResidual > 1e-4 {
			t.Fatalf("source %d: max residual %g above epsilon", src, res.MaxResidual)
		}
		oracle, err := power.Reverse(c, src, oracleOpts)
		if err != nil {
			t.Fatal(err)
		}
		for v, est := range res.Estimates {
			if d := math.Abs(est - oracle[v]); d > res.MaxResidual+1e-12 {
				t.Fatalf("source %d vertex %d: |%g - %g| = %g exceeds MaxResidual %g",
					src, v, est, oracle[v], d, res.MaxResidual)
			}
		}
	}
}

// TestColdPushCSRCapped checks that a push cap degrades the bound, not the
// soundness: the advertised MaxResidual grows to cover the unfinished work
// and every estimate still sits within it.
func TestColdPushCSRCapped(t *testing.T) {
	c := coldPushSnapshot(t, 250, 1500, 7)
	src := graph.VertexID(13)
	res, err := ColdPushCSR(c, src, Config{Alpha: 0.15, Epsilon: 1e-7}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Capped || res.Pushes != 3 {
		t.Fatalf("capped=%v pushes=%d, want capped after exactly 3", res.Capped, res.Pushes)
	}
	if res.MaxResidual <= 1e-7 {
		t.Fatalf("capped push must advertise a residual above epsilon, got %g", res.MaxResidual)
	}
	oracle, err := power.Reverse(c, src, power.Options{Alpha: 0.15, Tolerance: 1e-13, MaxIterations: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	for v, est := range res.Estimates {
		if d := math.Abs(est - oracle[v]); d > res.MaxResidual+1e-12 {
			t.Fatalf("vertex %d: |%g - %g| = %g exceeds capped MaxResidual %g",
				v, est, oracle[v], d, res.MaxResidual)
		}
	}
}

// TestColdPushCSRAgreesWithLiveColdStart pins the cross-implementation
// agreement directly: a live tracker state cold-started by the Sequential
// engine and a one-shot ColdPushCSR at the same ε land within the sum of
// their per-vertex bounds of each other.
// TestColdPushMatchesColdPushCSR pins the two bodies of the one-shot push to
// bit-identical results: the Adjacency-interface twin running over a layered
// View (base CSR plus live delta overlays) must produce exactly the floats
// the concrete-CSR body produces on the materialized snapshot of the same
// view, capped and uncapped. Iteration order is the whole contract — the
// LSM store preserves adjacency order across overlays, so the FIFO push
// visits neighbors identically and every float64 sum associates identically.
func TestColdPushMatchesColdPushCSR(t *testing.T) {
	list, err := gen.EdgeList(gen.Config{Model: gen.ErdosRenyi, Vertices: 300, Edges: 1800, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.FromEdges(list)
	// Dirty a slice of vertices so the view carries real delta overlays:
	// adds, deletes, and one fully-deleted adjacency.
	for v := 0; v < 40; v += 4 {
		if _, err := g.AddEdge(graph.VertexID(v), graph.VertexID(v+7)); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range g.OutNeighbors(5) {
		if err := g.RemoveEdge(5, v); err != nil {
			t.Fatal(err)
		}
	}
	view := g.View()
	if view.Base() != nil {
		t.Fatal("view with overlays must not expose a bare base")
	}
	snap := view.CSR()
	for _, maxPushes := range []int64{0, 50} {
		a, err := ColdPush(view, 0, Config{Alpha: 0.15, Epsilon: 1e-5}, maxPushes)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ColdPushCSR(snap, 0, Config{Alpha: 0.15, Epsilon: 1e-5}, maxPushes)
		if err != nil {
			t.Fatal(err)
		}
		if a.Pushes != b.Pushes || a.Capped != b.Capped ||
			math.Float64bits(a.MaxResidual) != math.Float64bits(b.MaxResidual) {
			t.Fatalf("maxPushes=%d: metadata diverged: %+v vs %+v", maxPushes, a, b)
		}
		for v := range a.Estimates {
			if math.Float64bits(a.Estimates[v]) != math.Float64bits(b.Estimates[v]) {
				t.Fatalf("maxPushes=%d vertex %d: %g vs %g (bit mismatch)",
					maxPushes, v, a.Estimates[v], b.Estimates[v])
			}
		}
	}
	// After compaction the view exposes its bare base and the interface twin
	// must still agree with the concrete body on it.
	base := g.CompactedSnapshot()
	cview := g.View()
	if cview.Base() != base {
		t.Fatal("compacted view must expose the bare base CSR")
	}
	a, err := ColdPush(cview, 1, Config{Alpha: 0.15, Epsilon: 1e-5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ColdPushCSR(base, 1, Config{Alpha: 0.15, Epsilon: 1e-5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Estimates {
		if math.Float64bits(a.Estimates[v]) != math.Float64bits(b.Estimates[v]) {
			t.Fatalf("compacted vertex %d: %g vs %g", v, a.Estimates[v], b.Estimates[v])
		}
	}
}

// TestColdPushBoundedLadder covers the adaptive-ε budget: a generous budget
// descends the ladder deterministically to the floor, a spent budget stops at
// the coarse level with the exact unbudgeted floats, and a MaxPushes hit
// mid-level rolls back to the last completed level rather than emitting a
// partial drain.
func TestColdPushBoundedLadder(t *testing.T) {
	c := coldPushSnapshot(t, 250, 1500, 7)
	cfg := Config{Alpha: 0.15, Epsilon: 1e-4}
	src := graph.VertexID(13)
	base, err := ColdPushCSR(c, src, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Zero budget: ColdPushCSRBounded is ColdPushCSR.
	zero, err := ColdPushCSRBounded(c, src, cfg, ColdPushBounds{})
	if err != nil {
		t.Fatal(err)
	}
	requireSamePush(t, "zero budget", zero, base)

	// A budget that is already spent after level 0 must emit exactly the
	// unbudgeted coarse answer — the first level is never time-truncated.
	spent, err := ColdPushCSRBounded(c, src, cfg, ColdPushBounds{Budget: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if !spent.BudgetExhausted {
		t.Fatal("1ns budget must report BudgetExhausted")
	}
	spent.BudgetExhausted = false
	requireSamePush(t, "spent budget", spent, base)

	// A generous budget descends to the floor deterministically; the achieved
	// bound beats the configured ε and the answer still differential-checks.
	bounds := ColdPushBounds{Budget: time.Minute, MinEpsilon: 1e-7}
	deep, err := ColdPushCSRBounded(c, src, cfg, bounds)
	if err != nil {
		t.Fatal(err)
	}
	if deep.BudgetExhausted || deep.Capped {
		t.Fatalf("generous budget must reach the floor uninterrupted: %+v", deep)
	}
	// The deepest level is the last halving ≥ the floor, so the achieved
	// bound lands within 2× of it.
	if deep.MaxResidual > 2e-7 {
		t.Fatalf("ladder floor not approached: MaxResidual %g", deep.MaxResidual)
	}
	deep2, err := ColdPushCSRBounded(c, src, cfg, bounds)
	if err != nil {
		t.Fatal(err)
	}
	requireSamePush(t, "ladder determinism", deep2, deep)
	oracle, err := power.Reverse(c, src, power.Options{Alpha: 0.15, Tolerance: 1e-13, MaxIterations: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	for v, est := range deep.Estimates {
		if d := math.Abs(est - oracle[v]); d > deep.MaxResidual+1e-12 {
			t.Fatalf("vertex %d: |%g - %g| exceeds ladder MaxResidual %g", v, est, oracle[v], deep.MaxResidual)
		}
	}

	// MaxPushes hit a few pushes into level 1: the partial level is rolled
	// back, so the answer is bit-identical to the completed coarse level.
	roll, err := ColdPushCSRBounded(c, src, cfg, ColdPushBounds{
		Budget: time.Minute, MinEpsilon: 1e-7, MaxPushes: base.Pushes + 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if roll.Capped {
		t.Fatal("rolled-back ladder answer must not report Capped")
	}
	requireSamePush(t, "mid-level rollback", roll, base)

	// The Adjacency twin stays bit-identical under identical bounds.
	viewDeep, err := ColdPushBounded(c, src, cfg, bounds)
	if err != nil {
		t.Fatal(err)
	}
	requireSamePush(t, "adjacency twin", viewDeep, deep)
}

func requireSamePush(t *testing.T, what string, got, want *ColdPushResult) {
	t.Helper()
	if got.Pushes != want.Pushes || got.Capped != want.Capped ||
		got.BudgetExhausted != want.BudgetExhausted ||
		math.Float64bits(got.MaxResidual) != math.Float64bits(want.MaxResidual) {
		t.Fatalf("%s: metadata diverged: %+v vs %+v", what, got, want)
	}
	for v := range got.Estimates {
		if math.Float64bits(got.Estimates[v]) != math.Float64bits(want.Estimates[v]) {
			t.Fatalf("%s: vertex %d: %g vs %g (bit mismatch)", what, v, got.Estimates[v], want.Estimates[v])
		}
	}
}

func TestColdPushCSRAgreesWithLiveColdStart(t *testing.T) {
	list, err := gen.EdgeList(gen.Config{Model: gen.ErdosRenyi, Vertices: 200, Edges: 1200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.FromEdges(list)
	src := g.TopDegreeVertices(1)[0]
	cfg := Config{Alpha: 0.15, Epsilon: 1e-5}
	st, err := NewState(g, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	NewSequential().Run(st, []graph.VertexID{src})
	res, err := ColdPushCSR(g.Snapshot(), src, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v, est := range res.Estimates {
		if d := math.Abs(est - st.Estimate(graph.VertexID(v))); d > 2*cfg.Epsilon+1e-12 {
			t.Fatalf("vertex %d: cold push %g vs live state %g differ by %g > 2ε",
				v, est, st.Estimate(graph.VertexID(v)), d)
		}
	}
}
