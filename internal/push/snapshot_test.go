package push

import (
	"sync"
	"testing"

	"dynppr/internal/graph"
)

func snapshotTestState(t *testing.T) *State {
	t.Helper()
	g := graph.New(0)
	for i := 0; i < 4; i++ {
		if _, err := g.AddEdge(graph.VertexID(i), graph.VertexID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := NewState(g, 4, Config{Alpha: 0.15, Epsilon: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	NewSequential().Run(st, []graph.VertexID{4})
	return st
}

func TestSnapshotSlotEmpty(t *testing.T) {
	sl := NewSnapshotSlot()
	if sl.Acquire() != nil {
		t.Fatal("empty slot must return nil")
	}
	if sl.Epoch() != 0 {
		t.Fatal("empty slot epoch must be 0")
	}
}

func TestSnapshotPublishAndRead(t *testing.T) {
	st := snapshotTestState(t)
	sl := NewSnapshotSlot()
	sl.Publish(st)

	s := sl.Acquire()
	if s == nil {
		t.Fatal("acquire after publish returned nil")
	}
	defer s.Release()
	if s.Epoch() != 1 || sl.Epoch() != 1 {
		t.Fatalf("epoch = %d / %d, want 1", s.Epoch(), sl.Epoch())
	}
	if s.Source() != 4 {
		t.Fatalf("source = %d, want 4", s.Source())
	}
	if !s.Converged() || s.MaxResidual() > s.Epsilon() {
		t.Fatalf("snapshot not converged: maxResidual=%v", s.MaxResidual())
	}
	if s.NumVertices() != st.NumVertices() {
		t.Fatalf("vertices = %d, want %d", s.NumVertices(), st.NumVertices())
	}
	want := st.Estimates()
	for v, w := range want {
		if got := s.Estimate(graph.VertexID(v)); got != w {
			t.Fatalf("estimate of %d = %v, want %v", v, got, w)
		}
	}
	if s.Estimate(-1) != 0 || s.Estimate(1000) != 0 {
		t.Fatal("out-of-range estimates must be 0")
	}
	est := s.Estimates()
	est[0] = 42 // the copy must not alias the snapshot
	if s.Estimate(0) == 42 {
		t.Fatal("Estimates must return a copy")
	}
	if len(s.RawEstimates()) != len(want) {
		t.Fatal("RawEstimates length wrong")
	}
}

func TestSnapshotDoubleBufferAlternates(t *testing.T) {
	st := snapshotTestState(t)
	sl := NewSnapshotSlot()
	a := sl.Publish(st)
	b := sl.Publish(st)
	c := sl.Publish(st)
	if a == b {
		t.Fatal("consecutive publishes must use different buffers")
	}
	if a != c {
		t.Fatal("third publish must recycle the first buffer")
	}
	if c.Epoch() != 3 {
		t.Fatalf("epoch = %d, want 3", c.Epoch())
	}
}

// TestSnapshotConcurrentReadersWhilePublishing hammers Acquire/Release from
// several goroutines while the owner keeps republishing a mutating state.
// Every read must observe a converged snapshot with a monotone epoch. Run
// with -race to check the publication protocol.
func TestSnapshotConcurrentReadersWhilePublishing(t *testing.T) {
	st := snapshotTestState(t)
	sl := NewSnapshotSlot()
	sl.Publish(st)
	engine := NewSequential()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := sl.Acquire()
				if s == nil {
					t.Error("nil snapshot after first publish")
					return
				}
				if s.Epoch() < lastEpoch {
					t.Errorf("epoch went backwards: %d after %d", s.Epoch(), lastEpoch)
				}
				lastEpoch = s.Epoch()
				if !s.Converged() {
					t.Errorf("read a non-converged snapshot: maxResidual=%v", s.MaxResidual())
				}
				var sum float64
				for _, x := range s.RawEstimates() {
					sum += x
				}
				if sum <= 0 {
					t.Errorf("snapshot estimates sum %v, want > 0", sum)
				}
				s.Release()
			}
		}()
	}

	// The writer keeps perturbing the graph and republishing after each
	// converged push.
	for i := 0; i < 300; i++ {
		u := graph.VertexID(5 + i%7)
		if i%2 == 0 {
			if _, err := st.ApplyInsert(u, 4); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := st.ApplyDelete(u-1, 4); err != nil {
				t.Fatal(err)
			}
		}
		engine.Run(st, []graph.VertexID{u, u - 1})
		sl.Publish(st)
	}
	close(stop)
	wg.Wait()
}
