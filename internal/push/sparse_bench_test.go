package push

import (
	"fmt"
	"math/rand"
	"testing"

	"dynppr/internal/gen"
	"dynppr/internal/graph"
)

// publishBenchStates memoizes one converged 200k-class state per vertex
// count: cold-starting these graphs dominates the benchmark wall clock, and
// the publication cost being measured does not depend on the state's exact
// history. Benchmarks run sequentially, so plain lazy init is safe.
var publishBenchStates = map[int]*State{}

func publishBenchState(b *testing.B, n int) *State {
	b.Helper()
	if st, ok := publishBenchStates[n]; ok {
		return st
	}
	edges, err := gen.EdgeList(gen.Config{
		Model: gen.RMAT, Vertices: n, Edges: 5 * n, Seed: 13,
	})
	if err != nil {
		b.Fatal(err)
	}
	g := graph.FromEdges(edges)
	source := graph.VertexID(0)
	best := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.InDegree(graph.VertexID(v)); d > best {
			best, source = d, graph.VertexID(v)
		}
	}
	st, err := NewState(g, source, Config{Alpha: 0.15, Epsilon: 1e-4})
	if err != nil {
		b.Fatal(err)
	}
	NewSequential().Run(st, []graph.VertexID{source})
	publishBenchStates[n] = st
	return st
}

// BenchmarkSnapshotPublish measures the snapshot publication cost in
// isolation — the engine work is excluded by touching a fixed set of
// estimates directly, exactly what a converged small batch leaves behind.
// mode=delta is the sparse path (copy the dirty union, refresh the Top-K
// index incrementally); mode=full forces the dense copy plus O(n) residual
// scan that every publication paid before this optimization. Comparing
// touched=64 with touched=512 at one n, and n=100000 with n=200000 at one
// touched count, shows the delta path scaling with the batch-touched set
// rather than the vector length. The delta path is allocation-free in the
// steady state (run with -benchmem).
func BenchmarkSnapshotPublish(b *testing.B) {
	type variant struct {
		n       int
		touched int
		full    bool
	}
	variants := []variant{
		{200_000, 64, false},
		{200_000, 512, false},
		{100_000, 512, false},
		{200_000, 512, true},
	}
	for _, v := range variants {
		mode := "delta"
		if v.full {
			mode = "full"
		}
		b.Run(fmt.Sprintf("n=%d/mode=%s/touched=%d", v.n, mode, v.touched), func(b *testing.B) {
			st := publishBenchState(b, v.n)
			rng := rand.New(rand.NewSource(17))
			touch := make([]int32, 0, v.touched)
			seen := make(map[int32]bool, v.touched)
			for len(touch) < v.touched {
				u := int32(rng.Intn(st.NumVertices()))
				if !seen[u] {
					seen[u] = true
					touch = append(touch, u)
				}
			}
			slot := NewSnapshotSlot()
			// Fill both buffers before measuring so the never-filled full
			// fallback is out of the way.
			slot.Publish(st)
			slot.Publish(st)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, u := range touch {
					st.AddEstimate(graph.VertexID(u), 1e-15)
				}
				st.MarkEstimatesDirty(touch)
				if v.full {
					st.MarkAllEstimatesDirty()
				}
				slot.Publish(st)
			}
		})
	}
}
