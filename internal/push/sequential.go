package push

import "dynppr/internal/graph"

// Sequential is the state-of-the-art sequential local push (Algorithm 2 of
// the paper, following Zhang et al.). Frontier vertices are processed one at
// a time from a FIFO work queue; each push moves the α share of the residual
// into the estimate and propagates the remaining (1−α) share to the
// in-neighbors, scaled by their out-degrees.
type Sequential struct {
	// inQueue is reusable membership scratch for the FIFO queue, so the
	// steady-state batch path allocates nothing.
	inQueue []bool
}

// NewSequential returns the sequential push engine.
func NewSequential() *Sequential { return &Sequential{} }

// Name implements Engine.
func (e *Sequential) Name() string { return "sequential" }

// Run implements Engine.
func (e *Sequential) Run(st *State, candidates []graph.VertexID) {
	e.runPhase(st, candidates, phasePositive)
	e.runPhase(st, candidates, phaseNegative)
}

func (e *Sequential) runPhase(st *State, candidates []graph.VertexID, ph phase) {
	eps := st.cfg.Epsilon
	alpha := st.cfg.Alpha
	g := st.g
	queue := st.activeFrom(candidates, ph)
	if len(queue) == 0 {
		return
	}
	if n := st.r.Len(); len(e.inQueue) < n {
		e.inQueue = append(e.inQueue, make([]bool, n-len(e.inQueue))...)
	}
	inQueue := e.inQueue
	for _, v := range queue {
		inQueue[v] = true
	}
	counters := st.Counters
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		ru := st.r.Get(int(u))
		if !ph.cond(ru, eps) {
			continue
		}
		counters.AddPushes(1)
		counters.ObserveIteration(1)
		// Self-update: move the α share into the estimate, clear the residual.
		st.p.Set(int(u), st.p.Get(int(u))+alpha*ru)
		st.r.Set(int(u), 0)
		st.markEstimateDirty(u)
		// Neighbor propagation: each in-neighbor v of u receives
		// (1−α)·ru/dout(v).
		in := g.InNeighbors(graph.VertexID(u))
		counters.AddPropagations(int64(len(in)))
		counters.AddRandomAccesses(int64(len(in)))
		for _, v := range in {
			dv := float64(g.OutDegree(v))
			nr := st.r.Get(int(v)) + (1-alpha)*ru/dv
			st.r.Set(int(v), nr)
			if ph.cond(nr, eps) && !inQueue[v] {
				inQueue[v] = true
				queue = append(queue, int32(v))
				counters.AddEnqueues(1)
			}
		}
	}
}
