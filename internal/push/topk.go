package push

import (
	"sort"
	"sync/atomic"

	"dynppr/internal/graph"
)

// VertexScore pairs a vertex with its PPR estimate. It is the element type of
// every Top-K ranking in the system: the heap-based selection over a dense
// vector, the incrementally maintained index of a SnapshotSlot, and the
// rankings the serving layer returns (dynppr.VertexScore aliases this type).
type VertexScore struct {
	Vertex graph.VertexID
	Score  float64
}

// scoreBetter is the total result order of every Top-K ranking: descending
// score, ties broken by ascending vertex id. Vertex ids are unique, so the
// order is strict — two distinct entries never compare equal, which is what
// lets the incremental index reason exactly about admission thresholds.
func scoreBetter(a, b VertexScore) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Vertex < b.Vertex
}

// AppendTopK ranks the estimate vector and appends the k largest entries to
// dst (descending, ties broken by ascending vertex id), returning the
// extended slice. Instead of sorting all n vertices it keeps a size-k
// min-heap of the best entries seen (O(n log k)) and only sorts those k at
// the end. Callers that reuse dst across calls perform no allocations once
// it has grown to k entries.
func AppendTopK(dst []VertexScore, est []float64, k int) []VertexScore {
	return AppendTopKFunc(dst, len(est), func(i int) float64 { return est[i] }, k)
}

// AppendTopKFunc is the shared size-k min-heap selection over any indexed
// float64 sequence; it backs both the dense-slice and the live-state Top-K.
func AppendTopKFunc(dst []VertexScore, n int, get func(int) float64, k int) []VertexScore {
	if k > n {
		k = n
	}
	if k <= 0 {
		return dst
	}
	base := len(dst)
	// heap[0] is the worst of the current top k.
	heap := dst[base:base]
	siftDown := func(i int) {
		for {
			left := 2*i + 1
			if left >= len(heap) {
				return
			}
			child := left
			if right := left + 1; right < len(heap) && scoreBetter(heap[left], heap[right]) {
				child = right
			}
			if !scoreBetter(heap[i], heap[child]) {
				return
			}
			heap[i], heap[child] = heap[child], heap[i]
			i = child
		}
	}
	for v := 0; v < n; v++ {
		entry := VertexScore{Vertex: graph.VertexID(v), Score: get(v)}
		if len(heap) < k {
			heap = append(heap, entry)
			for i := len(heap) - 1; i > 0; {
				parent := (i - 1) / 2
				if !scoreBetter(heap[parent], heap[i]) {
					break
				}
				heap[i], heap[parent] = heap[parent], heap[i]
				i = parent
			}
			continue
		}
		if !scoreBetter(entry, heap[0]) {
			continue
		}
		heap[0] = entry
		siftDown(0)
	}
	sort.Slice(heap, func(i, j int) bool { return scoreBetter(heap[i], heap[j]) })
	// heap may have been reallocated away from dst's backing array while
	// growing; append re-anchors it (a self-copy no-op when it was not).
	return append(dst[:base], heap...)
}

// TopKScores is AppendTopK into a fresh slice.
func TopKScores(est []float64, k int) []VertexScore {
	return AppendTopK(nil, est, k)
}

// topIndex is the write-side master of the incrementally maintained Top-K
// index: the exact top-cap ranking of one source's estimate vector, kept
// sorted best-to-worst under scoreBetter. Its exactness invariant is that
// every vertex outside the index ranks strictly below the last entry (the
// admission threshold). Estimate changes arriving through the dirty set
// preserve the invariant cheaply in almost all cases:
//
//   - an improvement of an indexed entry just repositions it;
//   - a new or improved outside vertex is admitted iff it beats the
//     threshold (evicting the worst entry, which by the invariant still
//     ranks above every outside vertex);
//   - a worsened indexed entry stays exact as long as it still beats the
//     worst other entry — only when it sinks to the bottom does the index
//     lose its handle on the outside (some unindexed vertex may now out-rank
//     it), which marks the index stale.
//
// A stale index is rebuilt from a full scan of the estimate vector before
// the next publication completes, so readers always see an exact ranking.
type topIndex struct {
	cap     int
	entries []VertexScore
	// n is the estimate-vector length the index covers; growth beyond it is
	// only safe when the threshold already dominates the zero estimates new
	// vertices start with.
	n     int
	stale bool
	// member[v] reports whether vertex v currently has an entry, making the
	// common dirty-vertex case — not indexed, below threshold — O(1) instead
	// of an O(cap) scan. Maintained by rebuild/update alongside entries.
	member []bool
	// rebuilds counts full-scan rebuilds (cold start, growth and threshold
	// invalidation), for observability and tests. Atomic because Stats
	// readers race the publishing goroutine.
	rebuilds atomic.Uint64
}

// rank returns the sorted position entry would occupy in the index.
func (ti *topIndex) rank(entry VertexScore) int {
	return sort.Search(len(ti.entries), func(i int) bool {
		return scoreBetter(entry, ti.entries[i])
	})
}

// find returns the position of vertex v in the index, or -1. The index is
// small (≤ cap entries), so a linear scan beats maintaining a side table.
func (ti *topIndex) find(v graph.VertexID) int {
	for i := range ti.entries {
		if ti.entries[i].Vertex == v {
			return i
		}
	}
	return -1
}

// rebuild recomputes the exact top-cap ranking from a full scan of the
// state's estimate vector.
func (ti *topIndex) rebuild(st *State) {
	n := st.NumVertices()
	k := ti.cap
	if k > n {
		k = n
	}
	for _, e := range ti.entries {
		ti.member[e.Vertex] = false
	}
	ti.entries = st.AppendTopK(ti.entries[:0], k)
	for _, e := range ti.entries {
		ti.member[e.Vertex] = true
	}
	ti.n = n
	ti.stale = false
	ti.rebuilds.Add(1)
}

// noteGrowth absorbs an estimate-vector growth from ti.n to n vertices. New
// vertices start with estimate 0; if the index is full and its threshold
// beats a zero score they cannot displace anything, otherwise the index must
// be rebuilt to admit them.
func (ti *topIndex) noteGrowth(n int) {
	if len(ti.entries) < ti.cap || ti.entries[len(ti.entries)-1].Score <= 0 {
		ti.stale = true
	}
	ti.n = n
}

// update applies one changed estimate (vertex v now scores s), preserving
// the exactness invariant or marking the index stale.
func (ti *topIndex) update(v graph.VertexID, s float64) {
	if ti.stale {
		return
	}
	entry := VertexScore{Vertex: v, Score: s}
	if ti.member[v] {
		i := ti.find(v)
		old := ti.entries[i]
		if entry == old {
			return
		}
		if scoreBetter(entry, old) {
			// Improvement: shift the displaced prefix down one slot.
			r := ti.rank(entry)
			copy(ti.entries[r+1:i+1], ti.entries[r:i])
			ti.entries[r] = entry
			return
		}
		// Worsening: reposition, then check the threshold. While the entry
		// still beats the worst *other* entry the outside is still dominated
		// (it ranked below the old threshold, which the new bottom entry
		// equals or beats); once the worsened entry becomes the bottom, an
		// unindexed vertex may out-rank it and the index is stale — unless
		// the index holds every vertex, in which case there is no outside.
		r := ti.rank(entry) - 1 // rank among the others (entry itself still counted at i)
		copy(ti.entries[i:r], ti.entries[i+1:r+1])
		ti.entries[r] = entry
		if r == len(ti.entries)-1 && len(ti.entries) == ti.cap && ti.n > ti.cap {
			ti.stale = true
		}
		return
	}
	// Outside vertex: admit iff it beats the threshold (or the index still
	// has room, which only happens while it covers every vertex).
	if len(ti.entries) < ti.cap {
		r := ti.rank(entry)
		ti.entries = append(ti.entries, VertexScore{})
		copy(ti.entries[r+1:], ti.entries[r:])
		ti.entries[r] = entry
		ti.member[v] = true
		return
	}
	if last := len(ti.entries) - 1; scoreBetter(entry, ti.entries[last]) {
		ti.member[ti.entries[last].Vertex] = false
		r := ti.rank(entry)
		copy(ti.entries[r+1:], ti.entries[r:last])
		ti.entries[r] = entry
		ti.member[v] = true
	}
}

// apply folds one publication's drained dirty set into the index: the
// incremental path when the set is sparse and the index stayed exact, a full
// rebuild otherwise. It must run after the engine has converged st (the
// estimates read here are the ones the snapshot publishes).
func (ti *topIndex) apply(st *State, dirty []int32, all bool) {
	if n := st.NumVertices(); n != ti.n {
		if ti.n == 0 {
			ti.stale = true // cold start
			ti.n = n
		} else {
			ti.noteGrowth(n)
		}
	}
	if n := st.NumVertices(); len(ti.member) < n {
		ti.member = append(ti.member, make([]bool, n-len(ti.member))...)
	}
	if all {
		ti.stale = true
	}
	if !ti.stale {
		for _, v := range dirty {
			ti.update(v, st.Estimate(v))
			if ti.stale {
				break
			}
		}
	}
	if ti.stale {
		ti.rebuild(st)
	}
}
