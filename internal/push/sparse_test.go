package push

import (
	"math/rand"
	"testing"

	"dynppr/internal/gen"
	"dynppr/internal/graph"
)

// bitsEq compares two float64 slices for exact (bit-level) equality.
func bitsEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sparseTestEngines returns the engines that participate in delta
// publication (the vertex-centric baseline poisons the dirty set by design
// and is exercised separately).
func sparseTestEngines() map[string]Engine {
	return map[string]Engine{
		"sequential":    NewSequential(),
		"parallel-opt":  NewParallel(VariantOpt, 2),
		"sortaggregate": NewSortAggregate(2),
	}
}

// TestDeltaPublishBitIdentical drives a mixed insert/delete stream through
// each engine, publishing after every batch, and asserts that the
// delta-published snapshot is bit-identical to the live estimate vector (the
// full-copy oracle) and that the embedded Top-K index matches a full
// recompute at every depth — while verifying the delta path actually ran.
func TestDeltaPublishBitIdentical(t *testing.T) {
	universe, err := gen.EdgeList(gen.Config{
		Model: gen.RMAT, Vertices: 1500, Edges: 9000, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, engine := range sparseTestEngines() {
		t.Run(name, func(t *testing.T) {
			g := graph.FromEdges(universe[:6000])
			st, err := NewState(g, universe[0].V, Config{Alpha: 0.15, Epsilon: 1e-4})
			if err != nil {
				t.Fatal(err)
			}
			slot := NewSnapshotSlotTopK(16)
			engine.Run(st, []graph.VertexID{st.Source()})
			slot.Publish(st)

			rng := rand.New(rand.NewSource(99))
			var present []graph.Edge
			for batch := 0; batch < 25; batch++ {
				touched := make([]graph.VertexID, 0, 8)
				for i := 0; i < 8; i++ {
					var u, v graph.VertexID
					var changed bool
					if len(present) > 0 && rng.Intn(3) == 0 {
						e := present[rng.Intn(len(present))]
						u, v = e.U, e.V
						changed, _ = st.ApplyDelete(u, v)
					} else if rng.Intn(10) == 0 {
						// Growth: a vertex id beyond the current size.
						u, v = graph.VertexID(g.NumVertices()), graph.VertexID(rng.Intn(g.NumVertices()))
						changed, _ = st.ApplyInsert(u, v)
						present = append(present, graph.Edge{U: u, V: v})
					} else {
						e := universe[rng.Intn(len(universe))]
						u, v = e.U, e.V
						changed, _ = st.ApplyInsert(u, v)
						present = append(present, graph.Edge{U: u, V: v})
					}
					if changed {
						touched = append(touched, u)
					}
				}
				engine.Run(st, touched)
				snap := slot.Publish(st)
				if want := st.Estimates(); !bitsEq(snap.Estimates(), want) {
					t.Fatalf("batch %d: published snapshot diverges from live state", batch)
				}
				if !snap.Converged() {
					t.Fatalf("batch %d: snapshot not converged (%v > %v)", batch, snap.MaxResidual(), snap.Epsilon())
				}
				for _, k := range []int{1, 5, 16, 23, st.NumVertices()} {
					got := snap.TopK(k)
					want := TopKScores(snap.Estimates(), k)
					if len(got) != len(want) {
						t.Fatalf("batch %d k=%d: got %d entries, want %d", batch, k, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("batch %d k=%d: entry %d = %+v, want %+v", batch, k, i, got[i], want[i])
						}
					}
				}
			}
			stats := slot.Stats()
			if stats.Delta == 0 {
				t.Fatalf("delta path never ran: %+v", stats)
			}
			if stats.Full == 0 {
				t.Fatalf("growth never forced a full publish: %+v", stats)
			}
		})
	}
}

// TestTopIndexPropertyRandom hammers the incremental index with random
// estimate rewrites (including exact ties, zeroing and negatives) and
// asserts it equals the full-scan ranking after every apply — the apply
// contract is "always exact afterwards", with staleness only deciding
// whether a rebuild was needed.
func TestTopIndexPropertyRandom(t *testing.T) {
	const n, cap = 40, 8
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(graph.VertexID(v), 0)
	}
	st, err := NewState(g, 0, Config{Alpha: 0.15, Epsilon: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	ti := topIndex{cap: cap}
	ti.apply(st, nil, true) // cold start

	scores := []float64{0, 0, 0.1, 0.1, 0.2, 0.3, -0.05, 0.25}
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 4000; iter++ {
		m := 1 + rng.Intn(3)
		dirty := make([]int32, 0, m)
		for j := 0; j < m; j++ {
			v := int32(rng.Intn(n))
			st.p.Set(int(v), scores[rng.Intn(len(scores))])
			dirty = append(dirty, v)
		}
		ti.apply(st, dirty, false)
		want := st.AppendTopK(nil, cap)
		if len(ti.entries) != len(want) {
			t.Fatalf("iter %d: index has %d entries, want %d", iter, len(ti.entries), len(want))
		}
		for i := range want {
			if ti.entries[i] != want[i] {
				t.Fatalf("iter %d: entry %d = %+v, want %+v (index %+v)", iter, i, ti.entries[i], want[i], want)
			}
		}
	}
	if ti.rebuilds.Load() == 0 {
		t.Fatal("random decays never invalidated the threshold — test is too tame")
	}
}

// TestPublishFullFallbacks verifies the poisoning and two-buffer rules: a
// MarkAllEstimatesDirty forces the next TWO publications to full-copy (the
// second buffer also missed the poisoned interval), and the path then
// returns to deltas.
func TestPublishFullFallbacks(t *testing.T) {
	g := graph.New(0)
	for v := 1; v < 50; v++ {
		g.AddEdge(graph.VertexID(v), 0)
	}
	st, err := NewState(g, 0, Config{Alpha: 0.2, Epsilon: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	engine := NewSequential()
	engine.Run(st, []graph.VertexID{0})
	slot := NewSnapshotSlot()

	perturb := func(u, v graph.VertexID) {
		changed, err := st.ApplyInsert(u, v)
		if err != nil || !changed {
			t.Fatalf("insert %d->%d: changed=%t err=%v", u, v, changed, err)
		}
		engine.Run(st, []graph.VertexID{u})
	}

	slot.Publish(st) // 1: cold, full (buffer A never filled)
	perturb(50, 0)
	slot.Publish(st) // 2: full (buffer B never filled; also growth)
	perturb(51, 0)
	slot.Publish(st) // 3: full (buffer A is 2 vertices short)
	perturb(1, 2)
	slot.Publish(st) // 4: full (buffer B is still 1 vertex short)
	st.MarkAllEstimatesDirty()
	slot.Publish(st) // 5: full (poisoned)
	perturb(2, 3)
	snap := slot.Publish(st) // 6: full (other buffer missed the poisoned interval)
	perturb(3, 4)
	slot.Publish(st) // 7: delta at last — both buffers current, nothing poisoned

	stats := slot.Stats()
	if stats.Full != 6 || stats.Delta != 1 {
		t.Fatalf("full=%d delta=%d, want 6 full / 1 delta", stats.Full, stats.Delta)
	}
	if want := st.Estimates(); len(want) != snap.NumVertices() {
		t.Fatalf("snapshot covers %d vertices, state %d", snap.NumVertices(), len(want))
	}
	// Both buffers must have converged to the live state.
	for i := 0; i < 2; i++ {
		perturb(graph.VertexID(4+i), graph.VertexID(5+i))
		s := slot.Publish(st)
		if !bitsEq(s.Estimates(), st.Estimates()) {
			t.Fatalf("buffer %d diverged from live state after fallback dance", i)
		}
	}
}

// TestSnapshotTopKDisabled checks the index-less slot: snapshots carry no
// embedded ranking and TopK falls back to the heap scan.
func TestSnapshotTopKDisabled(t *testing.T) {
	g := graph.New(0)
	for v := 1; v < 20; v++ {
		g.AddEdge(graph.VertexID(v), 0)
	}
	st, err := NewState(g, 0, Config{Alpha: 0.2, Epsilon: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	NewSequential().Run(st, []graph.VertexID{0})
	slot := NewSnapshotSlotTopK(0)
	snap := slot.Publish(st)
	if snap.TopIndexLen() != 0 {
		t.Fatalf("disabled index has %d entries", snap.TopIndexLen())
	}
	got := snap.TopK(5)
	want := TopKScores(st.Estimates(), 5)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestDrainDirty checks the drain contract: dedup, reset, poisoning.
func TestDrainDirty(t *testing.T) {
	g := graph.New(5)
	st, err := NewState(g, 0, Config{Alpha: 0.2, Epsilon: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	st.MarkEstimatesDirty([]int32{3, 1, 3, 2, 1})
	if st.DirtyCount() != 3 {
		t.Fatalf("dirty count %d, want 3 (deduplicated)", st.DirtyCount())
	}
	d, all := st.DrainDirty(nil)
	if all || len(d) != 3 {
		t.Fatalf("drain = %v all=%t, want 3 vertices, not poisoned", d, all)
	}
	if st.DirtyCount() != 0 {
		t.Fatal("drain did not reset the set")
	}
	st.MarkEstimatesDirty([]int32{4})
	st.MarkAllEstimatesDirty()
	st.MarkEstimatesDirty([]int32{2}) // ignored while poisoned
	d, all = st.DrainDirty(d[:0])
	if !all || len(d) != 0 {
		t.Fatalf("poisoned drain = %v all=%t, want empty/poisoned", d, all)
	}
	if _, all = st.DrainDirty(nil); all {
		t.Fatal("poisoning survived the drain")
	}
}
