package push

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dynppr/internal/gen"
	"dynppr/internal/graph"
	"dynppr/internal/power"
)

// allEngines returns one instance of every engine under test, keyed by a
// human-readable name. Parallel engines are instantiated both single- and
// multi-worker so the concurrent code paths are exercised.
func allEngines() map[string]Engine {
	return map[string]Engine{
		"sequential":    NewSequential(),
		"opt-w1":        NewParallel(VariantOpt, 1),
		"opt-w4":        NewParallel(VariantOpt, 4),
		"eager-w4":      NewParallel(VariantEager, 4),
		"dupdetect-w4":  NewParallel(VariantDupDetect, 4),
		"vanilla-w1":    NewParallel(VariantVanilla, 1),
		"vanilla-w4":    NewParallel(VariantVanilla, 4),
		"opt-default-w": NewParallel(VariantOpt, 0),
		"eager-w1":      NewParallel(VariantEager, 1),
		"dupdetect-w1":  NewParallel(VariantDupDetect, 1),
	}
}

func TestVariantString(t *testing.T) {
	if VariantOpt.String() != "Opt" || VariantEager.String() != "Eager" ||
		VariantDupDetect.String() != "DupDetect" || VariantVanilla.String() != "Vanilla" {
		t.Fatal("variant names wrong")
	}
}

func TestEngineNames(t *testing.T) {
	if NewSequential().Name() != "sequential" {
		t.Fatal("sequential name")
	}
	p := NewParallel(VariantOpt, 4)
	if p.Name() != "parallel-Opt-w4" || p.Workers() != 4 || p.Variant() != VariantOpt {
		t.Fatalf("parallel accessors: %s", p.Name())
	}
	if NewParallel(VariantVanilla, 0).Workers() < 1 {
		t.Fatal("workers must default to >= 1")
	}
}

// The sequential push on the cold-start paper example must reproduce the
// convergent state of Figure 3 b(5): P = (0.5, 0.25, 0.1875, 0.0937…) and the
// only non-zero residual 0.0937… at the source.
func TestSequentialMatchesFigure3(t *testing.T) {
	st, err := NewState(paperGraph(), 0, paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	NewSequential().Run(st, []graph.VertexID{0})
	wantP := []float64{0.5, 0.25, 0.1875, 0.09375}
	for v, want := range wantP {
		if got := st.Estimate(graph.VertexID(v)); math.Abs(got-want) > 1e-12 {
			t.Errorf("P[%d] = %v, want %v", v, got, want)
		}
	}
	if got := st.Residual(0); math.Abs(got-0.09375) > 1e-12 {
		t.Errorf("R[0] = %v, want 0.09375", got)
	}
	for v := graph.VertexID(1); v < 4; v++ {
		if got := st.Residual(v); got != 0 {
			t.Errorf("R[%d] = %v, want 0", v, got)
		}
	}
	if !st.Converged() {
		t.Error("not converged")
	}
	if err := requireInvariant(st); err != nil {
		t.Error(err)
	}
	// The sequential run of Figure 3 pushes v1, v2, v3, v4: four pushes.
	if st.Counters.Pushes != 4 {
		t.Errorf("pushes = %d, want 4", st.Counters.Pushes)
	}
}

// The vanilla parallel push on the same cold start must reproduce Figure 3
// a(4): P = (0.5, 0.25, 0.1875, 0.0625) with residuals 0.0625 at v1 and v4,
// and it must cost one extra push (v3 pushed twice — "parallel loss").
func TestVanillaParallelMatchesFigure3(t *testing.T) {
	st, err := NewState(paperGraph(), 0, paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	NewParallel(VariantVanilla, 1).Run(st, []graph.VertexID{0})
	wantP := []float64{0.5, 0.25, 0.1875, 0.0625}
	wantR := []float64{0.0625, 0, 0, 0.0625}
	for v := range wantP {
		if got := st.Estimate(graph.VertexID(v)); math.Abs(got-wantP[v]) > 1e-12 {
			t.Errorf("P[%d] = %v, want %v", v, got, wantP[v])
		}
		if got := st.Residual(graph.VertexID(v)); math.Abs(got-wantR[v]) > 1e-12 {
			t.Errorf("R[%d] = %v, want %v", v, got, wantR[v])
		}
	}
	if !st.Converged() {
		t.Error("not converged")
	}
	if err := requireInvariant(st); err != nil {
		t.Error(err)
	}
	if st.Counters.Pushes != 5 {
		t.Errorf("pushes = %d, want 5 (parallel loss pushes v3 twice)", st.Counters.Pushes)
	}
}

// Eager propagation removes the parallel loss of the example: with a single
// worker it performs the same four pushes as the sequential algorithm and
// reaches the same convergent state.
func TestEagerRemovesParallelLossOnFigure3(t *testing.T) {
	for _, variant := range []Variant{VariantOpt, VariantEager} {
		st, err := NewState(paperGraph(), 0, paperConfig())
		if err != nil {
			t.Fatal(err)
		}
		NewParallel(variant, 1).Run(st, []graph.VertexID{0})
		if st.Counters.Pushes != 4 {
			t.Errorf("%v: pushes = %d, want 4", variant, st.Counters.Pushes)
		}
		wantP := []float64{0.5, 0.25, 0.1875, 0.09375}
		for v, want := range wantP {
			if got := st.Estimate(graph.VertexID(v)); math.Abs(got-want) > 1e-12 {
				t.Errorf("%v: P[%d] = %v, want %v", variant, v, got, want)
			}
		}
		if err := requireInvariant(st); err != nil {
			t.Errorf("%v: %v", variant, err)
		}
	}
}

// Theorem 2: every engine produces a valid ε-approximation of the exact
// contribution PPR vector on a static graph, from a cold start.
func TestAllEnginesApproximateOracle(t *testing.T) {
	g, err := gen.Generate(gen.Config{Model: gen.RMAT, Vertices: 300, Edges: 2500, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	source := g.TopDegreeVertices(1)[0]
	cfg := Config{Alpha: 0.15, Epsilon: 1e-4}
	oracle, err := power.ReverseGraph(g, source, power.Options{Alpha: cfg.Alpha, Tolerance: 1e-13, MaxIterations: 20000})
	if err != nil {
		t.Fatal(err)
	}
	for name, e := range allEngines() {
		st, err := NewState(g, source, cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.Run(st, []graph.VertexID{source})
		if !st.Converged() {
			t.Errorf("%s: not converged", name)
			continue
		}
		if err := requireInvariant(st); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		worst := power.MaxAbsDiff(st.Estimates(), oracle)
		if worst > cfg.Epsilon {
			t.Errorf("%s: max error %v exceeds epsilon %v", name, worst, cfg.Epsilon)
		}
	}
}

// Dynamic maintenance: after an arbitrary mix of insertions and deletions,
// every engine keeps the estimate within ε of the exact vector of the
// *current* graph.
func TestDynamicMaintenanceTracksOracle(t *testing.T) {
	base, err := gen.EdgeList(gen.Config{Model: gen.BarabasiAlbert, Vertices: 150, Edges: 900, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Alpha: 0.15, Epsilon: 1e-4}
	for name, e := range allEngines() {
		rng := rand.New(rand.NewSource(99))
		g := graph.FromEdges(base[:600])
		source := g.TopDegreeVertices(1)[0]
		st, err := NewState(g, source, cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.Run(st, []graph.VertexID{source})
		// Apply 5 batches of mixed updates, re-pushing after each.
		next := 600
		for b := 0; b < 5; b++ {
			var touched []graph.VertexID
			for i := 0; i < 40 && next < len(base); i++ {
				if rng.Intn(4) == 0 {
					// Delete a random existing edge.
					edges := g.Edges()
					if len(edges) == 0 {
						continue
					}
					del := edges[rng.Intn(len(edges))]
					if changed, _ := st.ApplyDelete(del.U, del.V); changed {
						touched = append(touched, del.U)
					}
				} else {
					ins := base[next]
					next++
					if changed, _ := st.ApplyInsert(ins.U, ins.V); changed {
						touched = append(touched, ins.U)
					}
				}
			}
			e.Run(st, touched)
			if !st.Converged() {
				t.Fatalf("%s: batch %d not converged", name, b)
			}
		}
		oracle, err := power.ReverseGraph(g, source, power.Options{Alpha: cfg.Alpha, Tolerance: 1e-13, MaxIterations: 20000})
		if err != nil {
			t.Fatal(err)
		}
		worst := power.MaxAbsDiff(st.Estimates(), oracle)
		if worst > cfg.Epsilon {
			t.Errorf("%s: max error %v exceeds epsilon %v after dynamic updates", name, worst, cfg.Epsilon)
		}
		if err := requireInvariant(st); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Deletions only: shrinking the graph must also stay within ε (negative
// residual phase heavily exercised).
func TestDeletionHeavyWorkload(t *testing.T) {
	g, err := gen.Generate(gen.Config{Model: gen.ErdosRenyi, Vertices: 120, Edges: 900, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Alpha: 0.2, Epsilon: 1e-4}
	source := g.TopDegreeVertices(1)[0]
	for name, e := range map[string]Engine{
		"sequential": NewSequential(),
		"opt-w4":     NewParallel(VariantOpt, 4),
		"vanilla-w4": NewParallel(VariantVanilla, 4),
	} {
		gg := g.Clone()
		st, err := NewState(gg, source, cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.Run(st, []graph.VertexID{source})
		rng := rand.New(rand.NewSource(3))
		for b := 0; b < 4; b++ {
			var touched []graph.VertexID
			edges := gg.Edges()
			rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
			for _, del := range edges[:50] {
				if changed, _ := st.ApplyDelete(del.U, del.V); changed {
					touched = append(touched, del.U)
				}
			}
			e.Run(st, touched)
		}
		oracle, err := power.ReverseGraph(gg, source, power.Options{Alpha: cfg.Alpha, Tolerance: 1e-13, MaxIterations: 20000})
		if err != nil {
			t.Fatal(err)
		}
		if worst := power.MaxAbsDiff(st.Estimates(), oracle); worst > cfg.Epsilon {
			t.Errorf("%s: max error %v exceeds epsilon", name, worst)
		}
	}
}

// Lemma 4 (parallel loss): on the paper's example the vanilla parallel push
// performs at least as many pushes as the sequential push, and the eager
// variants perform no more than the vanilla one.
func TestParallelLossOrdering(t *testing.T) {
	run := func(e Engine) int64 {
		st, err := NewState(paperGraph(), 0, paperConfig())
		if err != nil {
			t.Fatal(err)
		}
		e.Run(st, []graph.VertexID{0})
		return st.Counters.Pushes
	}
	seq := run(NewSequential())
	vanilla := run(NewParallel(VariantVanilla, 1))
	opt := run(NewParallel(VariantOpt, 1))
	if vanilla < seq {
		t.Errorf("vanilla pushes %d < sequential %d", vanilla, seq)
	}
	if opt > vanilla {
		t.Errorf("opt pushes %d > vanilla %d", opt, vanilla)
	}
}

// The Vanilla variant's global duplicate detection must actually reject
// duplicates on a graph with shared in-neighbors, and the Opt variant must
// never touch the shared membership structure.
func TestDuplicateDetectionCounters(t *testing.T) {
	// Build a bipartite-ish graph where many frontier vertices share a common
	// in-neighbor, guaranteeing duplicate enqueue attempts.
	edges := []graph.Edge{}
	// hub has edges to 0..9 (hub's out-neighbors), so hub is an in-neighbor
	// of none... we need many frontier vertices with the SAME in-neighbor w:
	// w -> f_i for all i, so w ∈ Nin(f_i).
	const hub = 100
	for i := 0; i < 10; i++ {
		edges = append(edges, graph.Edge{U: hub, V: graph.VertexID(i)})
		// and each f_i points at the source so they all become frontier.
		edges = append(edges, graph.Edge{U: graph.VertexID(i), V: 200})
	}
	g := graph.FromEdges(edges)
	cfg := Config{Alpha: 0.15, Epsilon: 1e-6}

	stVanilla, err := NewState(g.Clone(), 200, cfg)
	if err != nil {
		t.Fatal(err)
	}
	NewParallel(VariantVanilla, 4).Run(stVanilla, []graph.VertexID{200})
	if stVanilla.Counters.DuplicateAttempts == 0 {
		t.Error("vanilla variant should have rejected duplicate enqueues on this graph")
	}

	stOpt, err := NewState(g.Clone(), 200, cfg)
	if err != nil {
		t.Fatal(err)
	}
	NewParallel(VariantOpt, 4).Run(stOpt, []graph.VertexID{200})
	if stOpt.Counters.DuplicateAttempts != 0 {
		t.Error("opt variant must not perform global duplicate detection")
	}
}

// Property: for random small graphs and random batches, every engine
// converges, preserves the invariant, and agrees with the oracle within ε.
func TestEnginesQuickProperty(t *testing.T) {
	engines := map[string]Engine{
		"sequential": NewSequential(),
		"opt-w4":     NewParallel(VariantOpt, 4),
		"vanilla-w2": NewParallel(VariantVanilla, 2),
		"eager-w2":   NewParallel(VariantEager, 2),
		"dup-w2":     NewParallel(VariantDupDetect, 2),
	}
	f := func(seed int64) bool {
		edges, err := gen.EdgeList(gen.Config{Model: gen.ErdosRenyi, Vertices: 40, Edges: 200, Seed: seed})
		if err != nil {
			return false
		}
		cfg := Config{Alpha: 0.15, Epsilon: 1e-3}
		for name, e := range engines {
			g := graph.FromEdges(edges[:150])
			st, err := NewState(g, 0, cfg)
			if err != nil {
				return false
			}
			e.Run(st, []graph.VertexID{0})
			var touched []graph.VertexID
			for _, ins := range edges[150:] {
				if changed, _ := st.ApplyInsert(ins.U, ins.V); changed {
					touched = append(touched, ins.U)
				}
			}
			e.Run(st, touched)
			if !st.Converged() {
				t.Logf("%s seed %d: not converged", name, seed)
				return false
			}
			if st.InvariantError() > 1e-8 {
				t.Logf("%s seed %d: invariant error %v", name, seed, st.InvariantError())
				return false
			}
			oracle, err := power.ReverseGraph(g, 0, power.Options{Alpha: cfg.Alpha, Tolerance: 1e-12, MaxIterations: 10000})
			if err != nil {
				return false
			}
			if power.MaxAbsDiff(st.Estimates(), oracle) > cfg.Epsilon {
				t.Logf("%s seed %d: approximation too loose", name, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Scan-all (nil candidates) and candidate-driven runs must produce the same
// result.
func TestNilCandidatesEquivalent(t *testing.T) {
	g, err := gen.Generate(gen.Config{Model: gen.RMAT, Vertices: 100, Edges: 600, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Alpha: 0.15, Epsilon: 1e-4}
	a, err := NewState(g.Clone(), 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	NewSequential().Run(a, nil)
	b, err := NewState(g.Clone(), 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	NewSequential().Run(b, []graph.VertexID{3})
	if d := power.MaxAbsDiff(a.Estimates(), b.Estimates()); d > 1e-12 {
		t.Fatalf("scan-all and candidate runs differ by %v", d)
	}
}

// An engine run on an already converged state must do nothing.
func TestRunOnConvergedStateIsNoop(t *testing.T) {
	st, err := NewState(paperGraph(), 0, paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	NewSequential().Run(st, []graph.VertexID{0})
	before := st.Estimates()
	pushes := st.Counters.Pushes
	for _, e := range []Engine{NewSequential(), NewParallel(VariantOpt, 4), NewParallel(VariantVanilla, 2)} {
		e.Run(st, nil)
	}
	if st.Counters.Pushes != pushes {
		t.Fatalf("extra pushes on converged state: %d -> %d", pushes, st.Counters.Pushes)
	}
	if d := power.MaxAbsDiff(before, st.Estimates()); d != 0 {
		t.Fatalf("estimates changed by %v", d)
	}
}

// Multi-worker determinism of the result quality: different worker counts may
// produce different (but all valid) estimates; each must stay within ε of the
// oracle. This guards the atomic update paths under real contention.
func TestParallelManyWorkersUnderContention(t *testing.T) {
	g, err := gen.Generate(gen.Config{Model: gen.BarabasiAlbert, Vertices: 400, Edges: 6000, Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	source := g.TopDegreeVertices(1)[0]
	cfg := Config{Alpha: 0.15, Epsilon: 5e-5}
	oracle, err := power.ReverseGraph(g, source, power.Options{Alpha: cfg.Alpha, Tolerance: 1e-13, MaxIterations: 20000})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8, 16} {
		for _, variant := range []Variant{VariantOpt, VariantVanilla, VariantEager, VariantDupDetect} {
			st, err := NewState(g, source, cfg)
			if err != nil {
				t.Fatal(err)
			}
			NewParallel(variant, workers).Run(st, []graph.VertexID{source})
			if worst := power.MaxAbsDiff(st.Estimates(), oracle); worst > cfg.Epsilon {
				t.Errorf("%v w=%d: max error %v exceeds epsilon", variant, workers, worst)
			}
		}
	}
}
