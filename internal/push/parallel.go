package push

import (
	"fmt"

	"dynppr/internal/fp"
	"dynppr/internal/graph"
)

// Variant selects which of the paper's optimizations the parallel push
// applies (Table 3). The fully optimized variant ("Opt") is Algorithm 4; the
// fully disabled variant ("Vanilla") is Algorithm 3.
type Variant struct {
	// EagerPropagation re-reads the most recent residual of each frontier
	// vertex during neighbor propagation and subtracts (rather than zeroes)
	// it afterwards, mitigating parallel loss (Section 4.1).
	EagerPropagation bool
	// LocalDuplicateDetection uses the before-value of the atomic residual
	// add to decide which propagation enqueues a newly activated vertex,
	// removing the shared-structure synchronization of unique-enqueue
	// (Section 4.2).
	LocalDuplicateDetection bool
}

// The four variants evaluated in Figure 4.
var (
	VariantOpt       = Variant{EagerPropagation: true, LocalDuplicateDetection: true}
	VariantEager     = Variant{EagerPropagation: true, LocalDuplicateDetection: false}
	VariantDupDetect = Variant{EagerPropagation: false, LocalDuplicateDetection: true}
	VariantVanilla   = Variant{EagerPropagation: false, LocalDuplicateDetection: false}
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case VariantOpt:
		return "Opt"
	case VariantEager:
		return "Eager"
	case VariantDupDetect:
		return "DupDetect"
	case VariantVanilla:
		return "Vanilla"
	default:
		return fmt.Sprintf("Variant(eager=%t,localdup=%t)", v.EagerPropagation, v.LocalDuplicateDetection)
	}
}

// Parallel is the parallel local push engine (Algorithms 3 and 4). Frontier
// vertices are pushed concurrently by a pool of goroutines; residual
// transfers use atomic adds on the shared residual vector.
type Parallel struct {
	variant Variant
	workers int
}

// NewParallel returns a parallel push engine with the given variant and
// degree of parallelism. workers <= 0 selects GOMAXPROCS.
func NewParallel(variant Variant, workers int) *Parallel {
	if workers <= 0 {
		workers = fp.DefaultWorkers()
	}
	return &Parallel{variant: variant, workers: workers}
}

// Name implements Engine.
func (e *Parallel) Name() string {
	return fmt.Sprintf("parallel-%s-w%d", e.variant, e.workers)
}

// Variant returns the optimization variant of the engine.
func (e *Parallel) Variant() Variant { return e.variant }

// Workers returns the configured degree of parallelism.
func (e *Parallel) Workers() int { return e.workers }

// Run implements Engine.
func (e *Parallel) Run(st *State, candidates []graph.VertexID) {
	e.runPhase(st, candidates, phasePositive)
	e.runPhase(st, candidates, phaseNegative)
}

// propagationGrain is the block size used for dynamic scheduling over the
// frontier; small enough to balance skewed degrees, large enough to amortize
// the atomic claim.
const propagationGrain = 16

func (e *Parallel) runPhase(st *State, candidates []graph.VertexID, ph phase) {
	frontier := st.activeFrom(candidates, ph)
	if len(frontier) == 0 {
		return
	}
	n := st.r.Len()
	var seen *fp.BitSet
	var inFrontier *fp.BitSet
	if !e.variant.LocalDuplicateDetection {
		seen = fp.NewBitSet(n)
		if e.variant.EagerPropagation {
			inFrontier = fp.NewBitSet(n)
		}
	}
	for len(frontier) > 0 {
		st.Counters.ObserveIteration(len(frontier))
		// Every frontier vertex's estimate gains its α share this round;
		// record that for delta snapshot publication before fanning out.
		st.MarkEstimatesDirty(frontier)
		if e.variant.EagerPropagation {
			frontier = e.iterateEager(st, frontier, ph, seen, inFrontier)
		} else {
			frontier = e.iterateVanillaOrder(st, frontier, ph, seen)
		}
	}
}

// iterateVanillaOrder performs one ParallelPush round in the order of
// Algorithm 3: self-update first (read and zero the frontier residuals), then
// neighbor propagation with frontier generation.
func (e *Parallel) iterateVanillaOrder(st *State, frontier []int32, ph phase, seen *fp.BitSet) []int32 {
	alpha := st.cfg.Alpha
	eps := st.cfg.Epsilon
	g := st.g
	counters := st.Counters

	// Session 1 (self-update): S = {(u, R(u))}; P(u) += α·R(u); R(u) = 0.
	// Frontier vertices are distinct, so plain element accesses are safe; the
	// fp.For barrier publishes the writes before session 2 begins.
	taken := make([]float64, len(frontier))
	fp.For(len(frontier), e.workers, func(i int) {
		u := int(frontier[i])
		ru := st.r.Get(u)
		taken[i] = ru
		st.p.Set(u, st.p.Get(u)+alpha*ru)
		st.r.Set(u, 0)
	})
	counters.AddPushes(int64(len(frontier)))

	// Session 2 (neighbor propagation + frontier generation).
	next := fp.NewQueue(len(frontier) * 4)
	fp.ForDynamic(len(frontier), e.workers, propagationGrain, func(i int) {
		u := graph.VertexID(frontier[i])
		w := taken[i]
		in := g.InNeighbors(u)
		counters.AddPropagations(int64(len(in)))
		counters.AddAtomicAdds(int64(len(in)))
		counters.AddRandomAccesses(int64(len(in)))
		for _, v := range in {
			inc := (1 - alpha) * w / float64(g.OutDegree(v))
			before := st.r.AtomicAdd(int(v), inc)
			after := before + inc
			if e.variant.LocalDuplicateDetection {
				// Local duplicate detection: enqueue exactly when this
				// propagation crossed the threshold.
				if !ph.cond(before, eps) && ph.cond(after, eps) {
					next.Enqueue(int32(v))
				}
			} else {
				// Global duplicate detection (uniqueEnqueue): synchronize on
				// a shared membership structure.
				if ph.cond(after, eps) {
					if seen.TestAndSet(int(v)) {
						counters.AddDuplicateAttempts(1)
					} else {
						next.Enqueue(int32(v))
					}
				}
			}
		}
	})
	out := append([]int32(nil), next.Drain()...)
	counters.AddEnqueues(int64(len(out)))
	if seen != nil {
		for _, v := range out {
			seen.Clear(int(v))
		}
	}
	return out
}

// iterateEager performs one OptParallelPush round in the order of Algorithm
// 4: neighbor propagation first, reading the most recent residual of each
// frontier vertex, then self-update subtracting exactly the propagated
// amount. A second frontier-generation pass in the self-update session
// catches vertices that remain active across iterations.
func (e *Parallel) iterateEager(st *State, frontier []int32, ph phase, seen, inFrontier *fp.BitSet) []int32 {
	alpha := st.cfg.Alpha
	eps := st.cfg.Epsilon
	g := st.g
	counters := st.Counters

	if inFrontier != nil {
		for _, u := range frontier {
			inFrontier.Set(int(u))
		}
	}

	// Session 1 (neighbor propagation): read the up-to-date residual ru,
	// remember it, propagate it, and detect newly activated vertices.
	taken := make([]float64, len(frontier))
	next := fp.NewQueue(len(frontier) * 4)
	fp.ForDynamic(len(frontier), e.workers, propagationGrain, func(i int) {
		u := graph.VertexID(frontier[i])
		ru := st.r.AtomicGet(int(u))
		taken[i] = ru
		in := g.InNeighbors(u)
		counters.AddPropagations(int64(len(in)))
		counters.AddAtomicAdds(int64(len(in)))
		counters.AddRandomAccesses(int64(len(in)))
		for _, v := range in {
			inc := (1 - alpha) * ru / float64(g.OutDegree(v))
			before := st.r.AtomicAdd(int(v), inc)
			after := before + inc
			if e.variant.LocalDuplicateDetection {
				if !ph.cond(before, eps) && ph.cond(after, eps) {
					next.Enqueue(int32(v))
				}
			} else {
				// Current-frontier vertices are handled by the self-update
				// pass; everything else goes through the shared membership
				// structure.
				if ph.cond(after, eps) && !inFrontier.Test(int(v)) {
					if seen.TestAndSet(int(v)) {
						counters.AddDuplicateAttempts(1)
					} else {
						next.Enqueue(int32(v))
					}
				}
			}
		}
	})
	counters.AddPushes(int64(len(frontier)))

	// Session 2 (self-update): commit the recorded residuals and re-enqueue
	// frontier vertices that are still (or again) active.
	fp.For(len(frontier), e.workers, func(i int) {
		u := int(frontier[i])
		ru := taken[i]
		st.p.Set(u, st.p.Get(u)+alpha*ru)
		after := st.r.AtomicAdd(u, -ru) - ru
		if ph.cond(after, eps) {
			next.Enqueue(int32(u))
		}
	})
	out := append([]int32(nil), next.Drain()...)
	counters.AddEnqueues(int64(len(out)))
	if seen != nil {
		for _, v := range out {
			seen.Clear(int(v))
		}
	}
	if inFrontier != nil {
		for _, u := range frontier {
			inFrontier.Clear(int(u))
		}
	}
	return out
}
