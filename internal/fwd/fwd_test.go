package fwd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dynppr/internal/gen"
	"dynppr/internal/graph"
	"dynppr/internal/power"
)

// ringGraph builds a graph where every vertex has out-degree >= 1 (a ring
// plus random chords), so the dangling conventions of this package and of the
// dense oracle coincide.
func ringGraph(n, extra int, seed int64) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		_, _ = g.AddEdge(graph.VertexID(i), graph.VertexID((i+1)%n))
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < extra; i++ {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(rng.Intn(n))
		if u != v {
			_, _ = g.AddEdge(u, v)
		}
	}
	return g
}

func TestNewStateValidation(t *testing.T) {
	g := ringGraph(5, 0, 1)
	if _, err := NewState(g, 0, Config{Alpha: 0, Epsilon: 1}); err == nil {
		t.Fatal("invalid config must fail")
	}
	if _, err := NewState(g, -1, DefaultConfig()); err == nil {
		t.Fatal("negative source must fail")
	}
	st, err := NewState(g, 2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.Source() != 2 || st.Graph() != g || st.Alpha() != 0.15 || st.Epsilon() != 1e-6 {
		t.Fatal("accessors wrong")
	}
	if st.Residual(2) != 1 || st.Estimate(2) != 0 {
		t.Fatal("cold start wrong")
	}
	if st.Estimate(99) != 0 || st.Residual(-1) != 0 {
		t.Fatal("out-of-range lookups must be zero")
	}
	if st.Converged() {
		t.Fatal("cold start must not be converged at default epsilon")
	}
	if e := st.InvariantError(); e > 1e-12 {
		t.Fatalf("cold start invariant error %v", e)
	}
}

// On dangling-free graphs the converged forward estimate must match the
// forward oracle within the contribution-weighted bound (which is at most
// ε·Σ_u π_u(v), itself bounded by ε·n but typically far smaller).
func TestForwardColdStartMatchesOracle(t *testing.T) {
	g := ringGraph(150, 1200, 3)
	source := g.TopDegreeVertices(1)[0]
	cfg := Config{Alpha: 0.15, Epsilon: 1e-6}
	st, err := NewState(g, source, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st.Push([]graph.VertexID{source})
	if !st.Converged() {
		t.Fatal("not converged")
	}
	if e := st.InvariantError(); e > 1e-9 {
		t.Fatalf("invariant error %v", e)
	}
	oracle, err := power.ForwardGraph(g, source, power.Options{Alpha: cfg.Alpha, Tolerance: 1e-13, MaxIterations: 20000})
	if err != nil {
		t.Fatal(err)
	}
	checkForwardError(t, st, g, oracle, cfg)
}

// checkForwardError asserts |P(v) − π_s(v)| ≤ ε · Σ_u π_u(v) + slack for
// every vertex, computing the per-vertex contribution mass from the reverse
// oracle.
func checkForwardError(t *testing.T, st *State, g *graph.Graph, oracle []float64, cfg Config) {
	t.Helper()
	est := st.Estimates()
	c := g.Snapshot()
	for v := 0; v < len(oracle); v += 13 { // sample vertices to keep the test fast
		rev, err := power.Reverse(c, graph.VertexID(v), power.Options{Alpha: cfg.Alpha, Tolerance: 1e-13, MaxIterations: 20000})
		if err != nil {
			t.Fatal(err)
		}
		var contribution float64
		for _, x := range rev {
			contribution += x
		}
		bound := cfg.Epsilon*contribution + 1e-12
		if d := math.Abs(est[v] - oracle[v]); d > bound {
			t.Fatalf("vertex %d: error %v exceeds bound %v", v, d, bound)
		}
	}
}

// Dynamic maintenance: inserts and deletes keep the invariant exact and the
// estimates within the bound.
func TestForwardDynamicMaintenance(t *testing.T) {
	g := ringGraph(120, 800, 5)
	source := g.TopDegreeVertices(1)[0]
	cfg := Config{Alpha: 0.2, Epsilon: 1e-6}
	st, err := NewState(g, source, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st.Push([]graph.VertexID{source})

	extra, err := gen.EdgeList(gen.Config{Model: gen.ErdosRenyi, Vertices: 120, Edges: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var touched []graph.VertexID
	for i, e := range extra {
		if i%5 == 0 {
			// Delete a random chord (never a ring edge, to keep the graph
			// dangling-free).
			edges := g.Edges()
			del := edges[rng.Intn(len(edges))]
			if del.V == (del.U+1)%graph.VertexID(120) {
				continue
			}
			ts, changed, err := st.ApplyDelete(del.U, del.V)
			if err != nil {
				t.Fatal(err)
			}
			if changed {
				touched = append(touched, ts...)
			}
			continue
		}
		ts, changed, err := st.ApplyInsert(e.U, e.V)
		if err != nil {
			t.Fatal(err)
		}
		if changed {
			touched = append(touched, ts...)
		}
	}
	if e := st.InvariantError(); e > 1e-9 {
		t.Fatalf("invariant error %v after restores", e)
	}
	st.Push(touched)
	if !st.Converged() {
		t.Fatal("not converged")
	}
	if e := st.InvariantError(); e > 1e-9 {
		t.Fatalf("invariant error %v after push", e)
	}
	oracle, err := power.ForwardGraph(g, source, power.Options{Alpha: cfg.Alpha, Tolerance: 1e-13, MaxIterations: 20000})
	if err != nil {
		t.Fatal(err)
	}
	checkForwardError(t, st, g, oracle, cfg)
}

func TestForwardApplySkipsNoops(t *testing.T) {
	g := ringGraph(10, 0, 1)
	st, err := NewState(g, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, changed, err := st.ApplyInsert(0, 1); err != nil || changed {
		t.Fatal("duplicate insert must be skipped")
	}
	if _, changed, err := st.ApplyDelete(3, 7); err != nil || changed {
		t.Fatal("missing delete must be skipped")
	}
	if _, changed, err := st.ApplyInsert(2, 7); err != nil || !changed {
		t.Fatal("new insert must apply")
	}
	if e := st.InvariantError(); e > 1e-12 {
		t.Fatalf("invariant error %v", e)
	}
}

func TestForwardDeleteLastOutEdge(t *testing.T) {
	// 0 -> 1 -> 2; delete 1 -> 2 making 1 dangling. The invariant must stay
	// exact even though the convention drops 1's unpushable mass.
	g := graph.FromEdges([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	st, err := NewState(g, 0, Config{Alpha: 0.5, Epsilon: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	st.Push([]graph.VertexID{0})
	touched, changed, err := st.ApplyDelete(1, 2)
	if err != nil || !changed {
		t.Fatal("delete must apply")
	}
	st.Push(touched)
	if e := st.InvariantError(); e > 1e-9 {
		t.Fatalf("invariant error %v", e)
	}
	if !st.Converged() {
		t.Fatal("not converged")
	}
	// Vertex 2 is now unreachable, so its estimate should have dropped to
	// (approximately) zero relative to before; at minimum it must not exceed
	// its previous value.
	if st.Estimate(2) > 0.25 {
		t.Fatalf("estimate of unreachable vertex too high: %v", st.Estimate(2))
	}
}

// Property: the forward invariant holds exactly after arbitrary random update
// sequences, pushed or not.
func TestForwardInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ringGraph(30, 60, seed)
		st, err := NewState(g, 0, Config{Alpha: 0.15, Epsilon: 1e-4})
		if err != nil {
			return false
		}
		st.Push([]graph.VertexID{0})
		var touched []graph.VertexID
		for i := 0; i < 40; i++ {
			u := graph.VertexID(rng.Intn(35))
			v := graph.VertexID(rng.Intn(35))
			if u == v {
				continue
			}
			if rng.Intn(3) == 0 && g.HasEdge(u, v) {
				ts, _, err := st.ApplyDelete(u, v)
				if err != nil {
					return false
				}
				touched = append(touched, ts...)
			} else {
				ts, _, err := st.ApplyInsert(u, v)
				if err != nil {
					return false
				}
				touched = append(touched, ts...)
			}
			if st.InvariantError() > 1e-9 {
				return false
			}
		}
		st.Push(touched)
		return st.Converged() && st.InvariantError() <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestForwardPushParallelDeterministic checks the deterministic parallel
// forward push: at parallelism 1, 2 and 8 the estimate and residual vectors
// carry identical float64 bits over a dynamic stream, the invariant stays
// exact, and the converged state matches the oracle within the
// contribution-weighted bound.
func TestForwardPushParallelDeterministic(t *testing.T) {
	cfg := Config{Alpha: 0.2, Epsilon: 1e-6}
	extra, err := gen.EdgeList(gen.Config{Model: gen.ErdosRenyi, Vertices: 120, Edges: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *State {
		g := ringGraph(120, 800, 5)
		source := g.TopDegreeVertices(1)[0]
		st, err := NewState(g, source, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st.PushParallel(workers, []graph.VertexID{source})
		if !st.Converged() {
			t.Fatalf("w%d: cold start not converged", workers)
		}
		var touched []graph.VertexID
		for _, e := range extra {
			ts, changed, err := st.ApplyInsert(e.U, e.V)
			if err != nil {
				t.Fatal(err)
			}
			if changed {
				touched = append(touched, ts...)
			}
		}
		st.PushParallel(workers, touched)
		if !st.Converged() {
			t.Fatalf("w%d: not converged after inserts", workers)
		}
		if e := st.InvariantError(); e > 1e-9 {
			t.Fatalf("w%d: invariant error %v", workers, e)
		}
		return st
	}
	ref := run(1)
	refP := ref.Estimates()
	for _, workers := range []int{2, 8} {
		st := run(workers)
		p := st.Estimates()
		for v := range p {
			if math.Float64bits(p[v]) != math.Float64bits(refP[v]) {
				t.Fatalf("w%d: estimate bits differ at vertex %d", workers, v)
			}
			if math.Float64bits(st.Residual(graph.VertexID(v))) != math.Float64bits(ref.Residual(graph.VertexID(v))) {
				t.Fatalf("w%d: residual bits differ at vertex %d", workers, v)
			}
		}
	}
	oracle, err := power.ForwardGraph(ref.Graph(), ref.Source(), power.Options{Alpha: cfg.Alpha, Tolerance: 1e-13, MaxIterations: 20000})
	if err != nil {
		t.Fatal(err)
	}
	checkForwardError(t, ref, ref.Graph(), oracle, cfg)
}
