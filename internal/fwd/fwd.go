// Package fwd maintains the forward (source-personalized) PageRank vector
// π_s over a dynamic graph with the same estimate/residual local-update
// machinery the paper applies to the contribution (reverse) vector.
//
// Forward PPR answers "where does a walk from s end up": Estimate(v)
// approximates π_s(v), the probability that an α-terminating walk started at
// the source stops at v. It is the quantity the incremental Monte-Carlo
// baseline estimates, and the formulation used by forward-push algorithms on
// static graphs.
//
// The locally-checkable invariant maintained for every vertex v is the
// forward counterpart of the paper's Equation 2:
//
//	P(v) + α·R(v) = α·1{v=s} + (1−α) · Σ_{u ∈ Nin(v)} P(u)/dout(u)
//
// A push at u moves α·R(u) into P(u) and propagates (1−α)·R(u)/dout(u) to
// every out-neighbor of u. Unlike the reverse case, a directed edge update
// (u, v) perturbs the invariant of v and of every existing out-neighbor of u
// (their shares of P(u) change with dout(u)), so invariant restoration costs
// O(dout(u)) per update rather than O(1); this asymmetry is why the paper
// (and the dynamic scheme it builds on) focuses on the reverse vector for
// directed graphs. The package exists for applications that need π_s itself
// and accept that restoration cost.
//
// Error guarantee: the scheme keeps π_s(v) = P(v) + Σ_u R(u)·π_u(v) as an
// exact identity, so once every |R(u)| ≤ ε the estimation error at v is
// bounded by ε · Σ_u π_u(v) — ε times the total contribution received by v.
// Tests verify this bound against the dense oracle.
//
// Dangling convention: a walk that reaches a vertex with no out-edges
// terminates there and its remaining (1−α) probability share is not
// attributed to any vertex, so on graphs with dangling vertices the estimates
// sum to less than one. On graphs where every vertex has at least one
// out-edge this coincides with the absorbing convention of the dense oracle.
package fwd

import (
	"fmt"

	"dynppr/internal/fp"
	"dynppr/internal/graph"
	"dynppr/internal/metrics"
	"dynppr/internal/parallel"
	"dynppr/internal/push"
)

// Config mirrors push.Config: the teleport probability and the residual
// threshold.
type Config = push.Config

// DefaultConfig returns α = 0.15, ε = 1e-6.
func DefaultConfig() Config { return push.DefaultConfig() }

// State is the forward estimate/residual pair for one source vertex.
type State struct {
	g      *graph.Graph
	source graph.VertexID
	cfg    Config

	p *fp.Float64Vector
	r *fp.Float64Vector

	// Counters accumulates the work performed on this state. Never nil.
	Counters *metrics.Counters

	// par is the lazily built deterministic push machine used by
	// PushParallel; it holds reusable per-vertex scratch buffers.
	par *parallel.Machine
}

// NewState creates the forward state: all mass starts as residual at the
// source.
func NewState(g *graph.Graph, source graph.VertexID, cfg Config) (*State, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if source < 0 {
		return nil, fmt.Errorf("fwd: source must be non-negative, got %d", source)
	}
	g.EnsureVertex(source)
	n := g.NumVertices()
	st := &State{
		g:        g,
		source:   source,
		cfg:      cfg,
		p:        fp.NewFloat64Vector(n),
		r:        fp.NewFloat64Vector(n),
		Counters: &metrics.Counters{},
	}
	st.r.Set(int(source), 1)
	return st, nil
}

// Graph returns the tracked graph.
func (st *State) Graph() *graph.Graph { return st.g }

// Source returns the source vertex.
func (st *State) Source() graph.VertexID { return st.source }

// Alpha returns the teleport probability.
func (st *State) Alpha() float64 { return st.cfg.Alpha }

// Epsilon returns the residual threshold.
func (st *State) Epsilon() float64 { return st.cfg.Epsilon }

// Estimate returns the current estimate of π_s(v).
func (st *State) Estimate(v graph.VertexID) float64 {
	if int(v) >= st.p.Len() || v < 0 {
		return 0
	}
	return st.p.Get(int(v))
}

// Residual returns the current residual of v.
func (st *State) Residual(v graph.VertexID) float64 {
	if int(v) >= st.r.Len() || v < 0 {
		return 0
	}
	return st.r.Get(int(v))
}

// Estimates returns a copy of the estimate vector.
func (st *State) Estimates() []float64 { return st.p.Snapshot() }

// AppendTopK appends the k highest-estimate vertices (descending, ties by
// ascending vertex id) to dst, reading the live estimate vector directly —
// no O(n) copy. The caller must own the state.
func (st *State) AppendTopK(dst []push.VertexScore, k int) []push.VertexScore {
	return push.AppendTopKFunc(dst, st.p.Len(), st.p.Get, k)
}

// Converged reports whether every residual is within ε.
func (st *State) Converged() bool { return st.r.MaxAbs() <= st.cfg.Epsilon }

func (st *State) sync() {
	n := st.g.NumVertices()
	if n > st.p.Len() {
		st.p.Resize(n)
		st.r.Resize(n)
	}
}

// ApplyInsert adds edge u->v, restores the forward invariant, and returns the
// vertices whose residuals changed (the push candidates). A duplicate edge
// returns (nil, false, nil).
func (st *State) ApplyInsert(u, v graph.VertexID) (touched []graph.VertexID, changed bool, err error) {
	oldDeg := st.g.OutDegree(u)
	added, err := st.g.AddEdge(u, v)
	if err != nil || !added {
		return nil, false, err
	}
	st.sync()
	st.Counters.AddRestoreOps(1)
	alpha := st.cfg.Alpha
	pu := st.p.Get(int(u))
	newDeg := float64(oldDeg + 1)
	// Existing out-neighbors of u lose part of their share of P(u).
	if pu != 0 && oldDeg > 0 {
		delta := (1 - alpha) * pu * (1/newDeg - 1/float64(oldDeg)) / alpha
		for _, w := range st.g.OutNeighbors(u) {
			if w == v {
				continue
			}
			st.r.Set(int(w), st.r.Get(int(w))+delta)
			touched = append(touched, w)
		}
	}
	// The new neighbor v gains a share of P(u).
	st.r.Set(int(v), st.r.Get(int(v))+(1-alpha)*pu/(newDeg*alpha))
	touched = append(touched, v)
	return touched, true, nil
}

// ApplyDelete removes edge u->v, restores the forward invariant, and returns
// the touched vertices. A missing edge returns (nil, false, nil).
func (st *State) ApplyDelete(u, v graph.VertexID) (touched []graph.VertexID, changed bool, err error) {
	oldDeg := st.g.OutDegree(u)
	if err := st.g.RemoveEdge(u, v); err != nil {
		return nil, false, nil //nolint:nilerr // missing edge is a skipped update
	}
	st.sync()
	st.Counters.AddRestoreOps(1)
	alpha := st.cfg.Alpha
	pu := st.p.Get(int(u))
	newDeg := oldDeg - 1
	// v loses its share of P(u).
	st.r.Set(int(v), st.r.Get(int(v))-(1-alpha)*pu/(float64(oldDeg)*alpha))
	touched = append(touched, v)
	// Remaining out-neighbors of u gain a larger share of P(u).
	if pu != 0 && newDeg > 0 {
		delta := (1 - alpha) * pu * (1/float64(newDeg) - 1/float64(oldDeg)) / alpha
		for _, w := range st.g.OutNeighbors(u) {
			st.r.Set(int(w), st.r.Get(int(w))+delta)
			touched = append(touched, w)
		}
	}
	return touched, true, nil
}

// InvariantError returns the maximum absolute violation of the forward
// invariant over all vertices.
func (st *State) InvariantError() float64 {
	alpha := st.cfg.Alpha
	n := st.g.NumVertices()
	var worst float64
	for v := 0; v < n; v++ {
		rhs := 0.0
		if graph.VertexID(v) == st.source {
			rhs = alpha
		}
		for _, u := range st.g.InNeighbors(graph.VertexID(v)) {
			rhs += (1 - alpha) * st.p.Get(int(u)) / float64(st.g.OutDegree(u))
		}
		diff := st.p.Get(v) + alpha*st.r.Get(v) - rhs
		if diff < 0 {
			diff = -diff
		}
		if diff > worst {
			worst = diff
		}
	}
	return worst
}

// PushParallel drains every residual exceeding ε with the deterministic
// parallel schedule of internal/parallel: frontier vertex u sends
// (1−α)·r(u)/dout(u) to each of its out-neighbors (a dangling u propagates
// nothing — the dangling convention of the package comment). The result is
// bit-identical for every workers value, but differs in the last ulps from
// the sequential FIFO Push, whose push order is different; both stay within
// the ε contract. workers <= 0 selects GOMAXPROCS.
func (st *State) PushParallel(workers int, candidates []graph.VertexID) {
	if st.par == nil || st.par.Workers() != fp.ClampWorkers(workers) {
		st.par = parallel.NewMachine(workers, 0)
	}
	g := st.g
	alpha := st.cfg.Alpha
	counters := st.Counters
	w := 1 - alpha
	propagate := func(d *parallel.Delta, u int32, ru float64) {
		out := g.OutNeighbors(u)
		if len(out) == 0 {
			return
		}
		counters.AddPropagations(int64(len(out)))
		share := w * ru / float64(len(out))
		for _, v := range out {
			d.Add(v, share)
		}
	}
	st.par.Converge(st.p, st.r, alpha, st.cfg.Epsilon,
		parallel.SortedCandidates(candidates, st.r.Len()), counters, propagate)
}

// Push drains every residual exceeding ε, sequentially, pushing to
// out-neighbors. candidates follows the same contract as push.Engine.Run.
func (st *State) Push(candidates []graph.VertexID) {
	st.pushPhase(candidates, true)
	st.pushPhase(candidates, false)
}

func (st *State) pushPhase(candidates []graph.VertexID, positive bool) {
	eps := st.cfg.Epsilon
	alpha := st.cfg.Alpha
	cond := func(r float64) bool {
		if positive {
			return r > eps
		}
		return r < -eps
	}
	var queue []int32
	inQueue := make([]bool, st.r.Len())
	enqueue := func(v int32) {
		if !inQueue[v] {
			inQueue[v] = true
			queue = append(queue, v)
		}
	}
	if candidates == nil {
		for v := 0; v < st.r.Len(); v++ {
			if cond(st.r.Get(v)) {
				enqueue(int32(v))
			}
		}
	} else {
		for _, v := range candidates {
			if int(v) < st.r.Len() && v >= 0 && cond(st.r.Get(int(v))) {
				enqueue(int32(v))
			}
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		ru := st.r.Get(int(u))
		if !cond(ru) {
			continue
		}
		st.Counters.AddPushes(1)
		st.Counters.ObserveIteration(1)
		st.p.Set(int(u), st.p.Get(int(u))+alpha*ru)
		st.r.Set(int(u), 0)
		out := st.g.OutNeighbors(graph.VertexID(u))
		if len(out) == 0 {
			// Dangling vertex: the walk dies here. The (1−α) share of the
			// residual is dropped, which is exactly what the invariant
			// prescribes (see the package comment on the dangling
			// convention).
			continue
		}
		st.Counters.AddPropagations(int64(len(out)))
		share := (1 - alpha) * ru / float64(len(out))
		for _, w := range out {
			nr := st.r.Get(int(w)) + share
			st.r.Set(int(w), nr)
			if cond(nr) {
				enqueue(int32(w))
				st.Counters.AddEnqueues(1)
			}
		}
	}
}
