package stream

import (
	"testing"
	"testing/quick"

	"dynppr/internal/gen"
	"dynppr/internal/graph"
)

func testEdges(n int) []graph.Edge {
	edges := make([]graph.Edge, n)
	for i := range edges {
		edges[i] = graph.Edge{U: graph.VertexID(i), V: graph.VertexID(i + 1)}
	}
	return edges
}

func TestOpString(t *testing.T) {
	if Insert.String() != "insert" || Delete.String() != "delete" {
		t.Fatal("Op.String wrong")
	}
	if Op(7).String() == "" {
		t.Fatal("unknown op should still format")
	}
}

func TestBatchCountsAndApply(t *testing.T) {
	g := graph.New(0)
	b := Batch{
		{U: 0, V: 1, Op: Insert},
		{U: 1, V: 2, Op: Insert},
		{U: 0, V: 1, Op: Insert}, // duplicate, skipped
		{U: 5, V: 6, Op: Delete}, // missing, skipped
	}
	if b.Inserts() != 3 || b.Deletes() != 1 {
		t.Fatalf("Inserts=%d Deletes=%d", b.Inserts(), b.Deletes())
	}
	applied := b.Apply(g)
	if len(applied) != 2 {
		t.Fatalf("applied = %d, want 2", len(applied))
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.NumEdges() != 2 {
		t.Fatal("graph state wrong after Apply")
	}
	// Now delete one of them.
	applied = Batch{{U: 0, V: 1, Op: Delete}}.Apply(g)
	if len(applied) != 1 || g.HasEdge(0, 1) {
		t.Fatal("delete not applied")
	}
}

func TestStreamIsPermutation(t *testing.T) {
	edges := testEdges(100)
	s := NewStream(edges, 1)
	if s.Len() != 100 {
		t.Fatalf("Len = %d", s.Len())
	}
	seen := make(map[graph.Edge]int)
	for _, e := range s.Edges() {
		seen[e]++
	}
	for _, e := range edges {
		if seen[e] != 1 {
			t.Fatalf("edge %v appears %d times", e, seen[e])
		}
	}
	// Different seeds give different permutations (overwhelmingly likely).
	s2 := NewStream(edges, 2)
	same := true
	for i := range edges {
		if s.Edges()[i] != s2.Edges()[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two seeds produced identical permutations")
	}
	// Same seed reproduces the permutation.
	s3 := NewStream(edges, 1)
	for i := range edges {
		if s.Edges()[i] != s3.Edges()[i] {
			t.Fatal("same seed should reproduce the permutation")
		}
	}
}

func TestPrefixBounds(t *testing.T) {
	s := NewStream(testEdges(10), 3)
	if len(s.Prefix(-1)) != 0 {
		t.Fatal("negative prefix should be empty")
	}
	if len(s.Prefix(5)) != 5 {
		t.Fatal("prefix 5 should have 5 edges")
	}
	if len(s.Prefix(100)) != 10 {
		t.Fatal("oversized prefix should clamp")
	}
}

func TestInsertOnlyBatches(t *testing.T) {
	s := NewStream(testEdges(10), 3)
	batches := s.InsertOnlyBatches(2, 9, 3)
	if len(batches) != 3 {
		t.Fatalf("batches = %d, want 3", len(batches))
	}
	total := 0
	for _, b := range batches {
		total += len(b)
		if b.Deletes() != 0 {
			t.Fatal("insert-only batch contains deletes")
		}
	}
	if total != 7 {
		t.Fatalf("total updates = %d, want 7", total)
	}
	// Degenerate batch size is clamped to 1.
	if got := s.InsertOnlyBatches(0, 3, 0); len(got) != 3 {
		t.Fatalf("batchSize 0 should clamp to 1, got %d batches", len(got))
	}
}

func TestSlidingWindowSlide(t *testing.T) {
	edges := testEdges(100)
	s := NewStream(edges, 7)
	w, initial := NewSlidingWindow(s, 0.1)
	if len(initial) != 10 || w.Size() != 10 {
		t.Fatalf("initial window = %d edges, size %d", len(initial), w.Size())
	}
	b := w.Slide(5)
	if len(b) != 10 || b.Inserts() != 5 || b.Deletes() != 5 {
		t.Fatalf("slide batch: len=%d ins=%d del=%d", len(b), b.Inserts(), b.Deletes())
	}
	if w.Size() != 10 {
		t.Fatalf("window size must stay constant, got %d", w.Size())
	}
	// The inserted edges must be the next 5 of the stream and the deleted the
	// oldest 5 of the initial window.
	for i := 0; i < 5; i++ {
		wantIns := s.Edges()[10+i]
		if b[i].U != wantIns.U || b[i].V != wantIns.V || b[i].Op != Insert {
			t.Fatalf("insert %d = %+v, want %v", i, b[i], wantIns)
		}
		wantDel := s.Edges()[i]
		if b[5+i].U != wantDel.U || b[5+i].V != wantDel.V || b[5+i].Op != Delete {
			t.Fatalf("delete %d = %+v, want %v", i, b[5+i], wantDel)
		}
	}
}

func TestSlidingWindowExhaustion(t *testing.T) {
	s := NewStream(testEdges(20), 1)
	w, _ := NewSlidingWindow(s, 0.5)
	if w.Remaining() != 10 {
		t.Fatalf("remaining = %d", w.Remaining())
	}
	b := w.Slide(7)
	if b.Inserts() != 7 {
		t.Fatalf("first slide inserts = %d", b.Inserts())
	}
	b = w.Slide(7) // only 3 remain
	if b.Inserts() != 3 || b.Deletes() != 3 {
		t.Fatalf("truncated slide: ins=%d del=%d", b.Inserts(), b.Deletes())
	}
	if b = w.Slide(7); b != nil {
		t.Fatalf("exhausted stream should return nil batch, got %d updates", len(b))
	}
	if b = w.Slide(0); b != nil {
		t.Fatal("slide(0) should return nil")
	}
}

func TestNewSlidingWindowFractionClamping(t *testing.T) {
	s := NewStream(testEdges(10), 1)
	_, init := NewSlidingWindow(s, -1)
	if len(init) != 0 {
		t.Fatal("negative fraction should clamp to 0")
	}
	_, init = NewSlidingWindow(s, 2)
	if len(init) != 10 {
		t.Fatal("fraction > 1 should clamp to 1")
	}
}

// Property: replaying a sliding window keeps the graph equal to the set of
// edges currently in the window (when stream edges are distinct).
func TestSlidingWindowGraphMatchesWindow(t *testing.T) {
	f := func(seed int64, slidesRaw, kRaw uint8) bool {
		edges, err := gen.EdgeList(gen.Config{Model: gen.ErdosRenyi, Vertices: 60, Edges: 300, Seed: seed})
		if err != nil {
			return false
		}
		// Dedup so "window contents == graph edges" is exact.
		uniq := make([]graph.Edge, 0, len(edges))
		seen := make(map[graph.Edge]bool)
		for _, e := range edges {
			if !seen[e] {
				seen[e] = true
				uniq = append(uniq, e)
			}
		}
		s := NewStream(uniq, seed+1)
		w, initial := NewSlidingWindow(s, 0.2)
		g := graph.FromEdges(initial)
		slides := int(slidesRaw)%5 + 1
		k := int(kRaw)%10 + 1
		for i := 0; i < slides; i++ {
			batch := w.Slide(k)
			batch.Apply(g)
		}
		if err := g.CheckConsistency(); err != nil {
			return false
		}
		want := w.WindowEdges()
		if g.NumEdges() != len(want) {
			return false
		}
		for _, e := range want {
			if !g.HasEdge(e.U, e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
