// Package stream implements the dynamic graph model of the paper (Section
// 2.2): an unbounded sequence of update batches ΔE_t, each element (u, v, op)
// inserting or deleting a directed edge, plus the sliding-window workload
// used by the evaluation (Section 5.1): edges receive random timestamps, the
// first 10% build the initial window, and every slide of size k inserts the k
// newest edges while deleting the k oldest.
package stream

import (
	"fmt"
	"math/rand"

	"dynppr/internal/graph"
)

// Op is the type of an edge update.
type Op int8

const (
	// Insert adds the edge u -> v.
	Insert Op = 1
	// Delete removes the edge u -> v.
	Delete Op = -1
)

// String returns "insert" or "delete".
func (o Op) String() string {
	switch o {
	case Insert:
		return "insert"
	case Delete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", int8(o))
	}
}

// Update is a single edge update (u, v, op).
type Update struct {
	U, V graph.VertexID
	Op   Op
}

// Batch is the set of updates arriving at one time step (ΔE_t).
type Batch []Update

// Inserts returns the number of insert updates in the batch.
func (b Batch) Inserts() int {
	n := 0
	for _, u := range b {
		if u.Op == Insert {
			n++
		}
	}
	return n
}

// Deletes returns the number of delete updates in the batch.
func (b Batch) Deletes() int { return len(b) - b.Inserts() }

// Apply applies every update of the batch to g in order. Inserting an edge
// that already exists or deleting one that does not is silently skipped, and
// the number of updates that actually changed the graph is returned: the
// local update scheme must only restore the invariant for effective updates.
func (b Batch) Apply(g *graph.Graph) (applied []Update) {
	applied = make([]Update, 0, len(b))
	for _, u := range b {
		switch u.Op {
		case Insert:
			added, err := g.AddEdge(u.U, u.V)
			if err == nil && added {
				applied = append(applied, u)
			}
		case Delete:
			if err := g.RemoveEdge(u.U, u.V); err == nil {
				applied = append(applied, u)
			}
		}
	}
	return applied
}

// Stream is a finite, replayable sequence of timestamped edges simulating the
// random edge arrival model: edge order is a random permutation of the input
// edge list.
type Stream struct {
	edges []graph.Edge
}

// NewStream builds a stream by assigning random timestamps (i.e. a random
// permutation) to the given edges, using the provided seed.
func NewStream(edges []graph.Edge, seed int64) *Stream {
	perm := make([]graph.Edge, len(edges))
	copy(perm, edges)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return &Stream{edges: perm}
}

// Len returns the total number of edges in the stream.
func (s *Stream) Len() int { return len(s.edges) }

// Edges returns the full ordered edge sequence (the random permutation).
func (s *Stream) Edges() []graph.Edge { return s.edges }

// Prefix returns the first n edges of the stream.
func (s *Stream) Prefix(n int) []graph.Edge {
	if n > len(s.edges) {
		n = len(s.edges)
	}
	if n < 0 {
		n = 0
	}
	return s.edges[:n]
}

// InsertOnlyBatches splits the edges in [start, end) of the stream into
// insert-only batches of the given size, in arrival order. Used by the
// random-edge-permutation arrival model experiments.
func (s *Stream) InsertOnlyBatches(start, end, batchSize int) []Batch {
	if batchSize <= 0 {
		batchSize = 1
	}
	if start < 0 {
		start = 0
	}
	if end > len(s.edges) {
		end = len(s.edges)
	}
	var batches []Batch
	for lo := start; lo < end; lo += batchSize {
		hi := lo + batchSize
		if hi > end {
			hi = end
		}
		b := make(Batch, 0, hi-lo)
		for _, e := range s.edges[lo:hi] {
			b = append(b, Update{U: e.U, V: e.V, Op: Insert})
		}
		batches = append(batches, b)
	}
	return batches
}

// SlidingWindow replays a stream through a fixed-size window: each slide of
// size k emits a batch containing k insertions (the next k edges of the
// stream) and k deletions (the k oldest edges currently in the window).
type SlidingWindow struct {
	stream *Stream
	// window holds indices into stream.edges; [head, tail) is the live window.
	head, tail int
}

// NewSlidingWindow initializes a window over the first initialFraction of the
// stream (the paper uses 10%). The initial window edges are returned so the
// caller can build the starting graph; subsequent slides come from Slide.
func NewSlidingWindow(s *Stream, initialFraction float64) (*SlidingWindow, []graph.Edge) {
	if initialFraction < 0 {
		initialFraction = 0
	}
	if initialFraction > 1 {
		initialFraction = 1
	}
	init := int(float64(s.Len()) * initialFraction)
	w := &SlidingWindow{stream: s, head: 0, tail: init}
	return w, s.Prefix(init)
}

// Size returns the current number of edges inside the window.
func (w *SlidingWindow) Size() int { return w.tail - w.head }

// Remaining returns how many un-arrived edges are left in the stream.
func (w *SlidingWindow) Remaining() int { return w.stream.Len() - w.tail }

// Slide advances the window by k edges and returns the resulting update
// batch: k insertions of newly arrived edges followed by k deletions of the
// expired edges. If fewer than k edges remain, the slide is truncated; an
// exhausted stream returns an empty batch.
func (w *SlidingWindow) Slide(k int) Batch {
	if k <= 0 {
		return nil
	}
	if rem := w.Remaining(); k > rem {
		k = rem
	}
	if k == 0 {
		return nil
	}
	batch := make(Batch, 0, 2*k)
	for i := 0; i < k; i++ {
		e := w.stream.edges[w.tail+i]
		batch = append(batch, Update{U: e.U, V: e.V, Op: Insert})
	}
	for i := 0; i < k; i++ {
		e := w.stream.edges[w.head+i]
		batch = append(batch, Update{U: e.U, V: e.V, Op: Delete})
	}
	w.tail += k
	w.head += k
	return batch
}

// WindowEdges returns the edges currently inside the window.
func (w *SlidingWindow) WindowEdges() []graph.Edge {
	return w.stream.edges[w.head:w.tail]
}
