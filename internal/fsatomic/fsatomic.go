// Package fsatomic holds the crash-safe file-write primitives the
// persistence layer's two on-disk artifacts (WAL segments and checkpoints)
// share, so the temp-write/fsync/verify/rename/dir-sync dance exists exactly
// once. All I/O goes through a faultfs.FS, which is a passthrough in
// production and a scripted fault injector in tests.
package fsatomic

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"dynppr/internal/faultfs"
)

// WriteFile is WriteFileFS on the real filesystem.
func WriteFile(path string, data []byte) error {
	return WriteFileFS(faultfs.OS, path, data)
}

// WriteFileFS atomically replaces path with data: the bytes go to path.tmp,
// are fsynced, read back and compared (catching silent short or bit-damaged
// writes before they can replace good data), renamed over path, and the
// directory entry is fsynced. A crash or an I/O error at any point leaves
// either the old complete file or the new one — never a torn hybrid — and
// every failure path removes the temp file so degraded episodes do not
// accumulate *.tmp litter.
func WriteFileFS(fs faultfs.FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return err
	}
	got, err := fs.ReadFile(tmp)
	if err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("fsatomic: verify %s: %w", tmp, err)
	}
	if !bytes.Equal(got, data) {
		fs.Remove(tmp)
		return fmt.Errorf("fsatomic: verify %s: wrote %d bytes but %d read back (torn or lying write)",
			tmp, len(data), len(got))
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return err
	}
	return SyncDirFS(fs, filepath.Dir(path))
}

// SyncDir is SyncDirFS on the real filesystem.
func SyncDir(dir string) error {
	return SyncDirFS(faultfs.OS, dir)
}

// SyncDirFS fsyncs a directory so a just-renamed file's directory entry is
// durable.
func SyncDirFS(fs faultfs.FS, dir string) error {
	d, err := fs.OpenFile(dir, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
