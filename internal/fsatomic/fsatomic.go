// Package fsatomic holds the crash-safe file-write primitives the
// persistence layer's two on-disk artifacts (WAL segments and checkpoints)
// share, so the temp-write/fsync/rename/dir-sync dance exists exactly once.
package fsatomic

import (
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data: the bytes go to path.tmp,
// are fsynced, renamed over path, and the directory entry is fsynced. A
// crash at any point leaves either the old complete file or the new one —
// never a torn hybrid.
func WriteFile(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return SyncDir(filepath.Dir(path))
}

// SyncDir fsyncs a directory so a just-renamed file's directory entry is
// durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
