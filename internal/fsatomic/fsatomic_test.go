package fsatomic

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"dynppr/internal/faultfs"
)

// noTmpLitter fails the test when the directory holds any *.tmp file: every
// aborted write must clean up after itself.
func noTmpLitter(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

func TestWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := WriteFile(path, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "payload" {
		t.Fatalf("read back: %q, %v", got, err)
	}
}

// TestFaultsPreserveOldFile scripts a fault at every step of the atomic
// write dance and checks the two invariants that make it atomic: the old
// complete file survives untouched, and no temp file is left behind.
func TestFaultsPreserveOldFile(t *testing.T) {
	steps := []faultfs.Rule{
		{Op: faultfs.OpOpen, Path: ".tmp"},
		{Op: faultfs.OpWrite, Path: ".tmp"},
		{Op: faultfs.OpWrite, Path: ".tmp", Mode: faultfs.ModePartial, Partial: 2},
		{Op: faultfs.OpSync, Path: ".tmp"},
		{Op: faultfs.OpRename},
	}
	for _, rule := range steps {
		t.Run(rule.Op.String(), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "f")
			if err := os.WriteFile(path, []byte("old good data"), 0o644); err != nil {
				t.Fatal(err)
			}
			in := faultfs.NewInjector(faultfs.OS)
			in.Add(rule)

			if err := WriteFileFS(in, path, []byte("new data")); err == nil {
				t.Fatal("faulted write reported success")
			}
			got, err := os.ReadFile(path)
			if err != nil || string(got) != "old good data" {
				t.Fatalf("old file after fault: %q, %v", got, err)
			}
			noTmpLitter(t, dir)

			// The fault condition clears; the same write now succeeds.
			in.Clear()
			if err := WriteFileFS(in, path, []byte("new data")); err != nil {
				t.Fatalf("write after fault cleared: %v", err)
			}
			if got, _ := os.ReadFile(path); string(got) != "new data" {
				t.Fatalf("file after healed write: %q", got)
			}
		})
	}
}

// TestSilentShortWriteCaught is the reason the verify step exists: a write
// that lies about its length must be detected by the read-back comparison
// before the rename can clobber good data.
func TestSilentShortWriteCaught(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	in := faultfs.NewInjector(faultfs.OS)
	in.Add(faultfs.Rule{Op: faultfs.OpWrite, Path: ".tmp", Mode: faultfs.ModeSilentShort, Partial: 4})

	err := WriteFileFS(in, path, []byte("a much longer payload"))
	if err == nil {
		t.Fatal("lying short write was not caught by verification")
	}
	if !strings.Contains(err.Error(), "verify") {
		t.Fatalf("error does not name the verify step: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "old" {
		t.Fatalf("old file after lying write: %q", got)
	}
	noTmpLitter(t, dir)
}

func TestENOSPCErrorSurfaces(t *testing.T) {
	in := faultfs.NewInjector(faultfs.OS)
	in.Add(faultfs.Rule{Op: faultfs.OpWrite})
	err := WriteFileFS(in, filepath.Join(t.TempDir(), "f"), []byte("x"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("got %v, want ENOSPC to surface for classification", err)
	}
}

func TestSyncDir(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatalf("SyncDir on a real directory: %v", err)
	}
	in := faultfs.NewInjector(faultfs.OS)
	in.Add(faultfs.Rule{Op: faultfs.OpSync})
	if err := SyncDirFS(in, t.TempDir()); err == nil {
		t.Fatal("faulted dir fsync reported success")
	}
}
