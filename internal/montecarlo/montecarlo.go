// Package montecarlo implements the incremental Monte-Carlo baseline the
// paper compares against (Bahmani, Chowdhury, Goel — "Fast incremental and
// personalized PageRank"): w random walks are simulated from the source
// vertex; the PPR estimate of a vertex is the fraction of walks that stop at
// it. On an edge update touching vertex u, only the walks that pass through u
// are re-simulated from their first visit to u. An inverted index from vertex
// to the walks visiting it makes the affected-walk lookup fast, at a
// significant memory and maintenance cost — which is exactly the overhead the
// paper's evaluation attributes the approach's poor throughput to.
//
// The estimate produced here is the *forward* PPR vector π_s (walks start at
// the source), the quantity the original Monte-Carlo method estimates. The
// harness compares engines on throughput, as the paper does, not on the exact
// vector they maintain.
package montecarlo

import (
	"fmt"
	"math/rand"
	"slices"
	"sync"

	"dynppr/internal/fp"
	"dynppr/internal/graph"
)

// Config configures the Monte-Carlo estimator.
type Config struct {
	// Alpha is the walk termination probability per step.
	Alpha float64
	// Walks is the number of random walks maintained (the paper uses 6·|V|
	// after trading accuracy for speed; callers typically pass a multiple of
	// the vertex count).
	Walks int
	// Seed drives all walk randomness.
	Seed int64
	// Workers is the number of goroutines used to (re)generate walks.
	Workers int
	// MaxWalkLength caps walk length as a safety net against degenerate
	// graphs; 0 selects a default of 1000 steps.
	MaxWalkLength int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return fmt.Errorf("montecarlo: alpha must be in (0,1), got %v", c.Alpha)
	}
	if c.Walks <= 0 {
		return fmt.Errorf("montecarlo: walks must be positive, got %d", c.Walks)
	}
	return nil
}

// Estimator maintains w random walks from a source over a dynamic graph.
type Estimator struct {
	g      *graph.Graph
	source graph.VertexID
	cfg    Config

	// traces[i] is the vertex sequence of walk i, starting at the source.
	traces [][]graph.VertexID
	// index[v] is the set of walk ids whose trace visits v.
	index []map[int32]struct{}
	// visits[v] counts walks whose final vertex is v.
	visits []int64

	rng *rand.Rand
	mu  sync.Mutex // guards rng when walks are regenerated in parallel
}

// New builds the estimator and simulates the initial walk set on the current
// graph.
func New(g *graph.Graph, source graph.VertexID, cfg Config) (*Estimator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if source < 0 {
		return nil, fmt.Errorf("montecarlo: source must be non-negative, got %d", source)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = fp.DefaultWorkers()
	}
	if cfg.MaxWalkLength <= 0 {
		cfg.MaxWalkLength = 1000
	}
	g.EnsureVertex(source)
	e := &Estimator{
		g:      g,
		source: source,
		cfg:    cfg,
		traces: make([][]graph.VertexID, cfg.Walks),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	e.ensureSize(g.NumVertices())
	seeds := make([]int64, cfg.Walks)
	for i := range seeds {
		seeds[i] = e.rng.Int63()
	}
	fp.For(cfg.Walks, cfg.Workers, func(i int) {
		rng := rand.New(rand.NewSource(seeds[i]))
		e.traces[i] = e.walkFrom(e.source, rng, nil)
	})
	for i := range e.traces {
		e.registerWalk(int32(i))
	}
	return e, nil
}

// Source returns the source vertex.
func (e *Estimator) Source() graph.VertexID { return e.source }

// NumWalks returns the number of maintained walks.
func (e *Estimator) NumWalks() int { return len(e.traces) }

// ensureSize grows the per-vertex structures to cover n vertices.
func (e *Estimator) ensureSize(n int) {
	for len(e.index) < n {
		e.index = append(e.index, nil)
		e.visits = append(e.visits, 0)
	}
}

// walkFrom simulates a walk starting at v. prefix, if non-nil, is the part of
// an existing trace to keep (ending at v's predecessor); the returned trace
// is prefix + the new suffix starting at v.
func (e *Estimator) walkFrom(v graph.VertexID, rng *rand.Rand, prefix []graph.VertexID) []graph.VertexID {
	trace := append(append([]graph.VertexID(nil), prefix...), v)
	cur := v
	for step := 0; step < e.cfg.MaxWalkLength; step++ {
		if rng.Float64() < e.cfg.Alpha {
			break
		}
		out := e.g.OutNeighbors(cur)
		if len(out) == 0 {
			break
		}
		cur = out[rng.Intn(len(out))]
		trace = append(trace, cur)
	}
	return trace
}

// registerWalk adds walk id to the inverted index and the visit counts.
func (e *Estimator) registerWalk(id int32) {
	trace := e.traces[id]
	for _, v := range trace {
		e.ensureSize(int(v) + 1)
		if e.index[v] == nil {
			e.index[v] = make(map[int32]struct{})
		}
		e.index[v][id] = struct{}{}
	}
	last := trace[len(trace)-1]
	e.visits[last]++
}

// unregisterWalk removes walk id from the inverted index and visit counts.
func (e *Estimator) unregisterWalk(id int32) {
	trace := e.traces[id]
	for _, v := range trace {
		if e.index[v] != nil {
			delete(e.index[v], id)
		}
	}
	last := trace[len(trace)-1]
	e.visits[last]--
}

// AffectedWalks returns the ids of walks whose trace visits u, in ascending
// id order. The inverted index is a map, so the raw iteration order is
// randomized per run; rerouting assigns fresh rng seeds positionally to the
// affected walks, so the order must be deterministic or two runs with the
// same Seed diverge after the first update.
func (e *Estimator) AffectedWalks(u graph.VertexID) []int32 {
	if int(u) >= len(e.index) || e.index[u] == nil {
		return nil
	}
	out := make([]int32, 0, len(e.index[u]))
	for id := range e.index[u] {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// ApplyInsert applies edge insertion u->v to the graph and re-routes every
// walk passing through u from its first visit of u. It returns the number of
// walks that were re-simulated.
func (e *Estimator) ApplyInsert(u, v graph.VertexID) (int, error) {
	added, err := e.g.AddEdge(u, v)
	if err != nil {
		return 0, err
	}
	if !added {
		return 0, nil
	}
	e.ensureSize(e.g.NumVertices())
	return e.reroute(u), nil
}

// ApplyDelete applies edge deletion u->v and re-routes affected walks.
func (e *Estimator) ApplyDelete(u, v graph.VertexID) (int, error) {
	if err := e.g.RemoveEdge(u, v); err != nil {
		return 0, nil //nolint:nilerr // missing edge is a skipped update
	}
	return e.reroute(u), nil
}

// reroute re-simulates every walk that visits u, keeping the prefix before
// the first visit of u. Walk regeneration runs in parallel; index updates are
// applied serially afterwards (they touch shared maps).
func (e *Estimator) reroute(u graph.VertexID) int {
	affected := e.AffectedWalks(u)
	if len(affected) == 0 {
		return 0
	}
	e.mu.Lock()
	seeds := make([]int64, len(affected))
	for i := range seeds {
		seeds[i] = e.rng.Int63()
	}
	e.mu.Unlock()

	newTraces := make([][]graph.VertexID, len(affected))
	fp.For(len(affected), e.cfg.Workers, func(i int) {
		id := affected[i]
		trace := e.traces[id]
		cut := 0
		for cut < len(trace) && trace[cut] != u {
			cut++
		}
		rng := rand.New(rand.NewSource(seeds[i]))
		newTraces[i] = e.walkFrom(u, rng, trace[:cut])
	})
	for i, id := range affected {
		e.unregisterWalk(id)
		e.traces[id] = newTraces[i]
		e.registerWalk(id)
	}
	return len(affected)
}

// Estimate returns the Monte-Carlo PPR estimate of v: the fraction of walks
// whose final vertex is v.
func (e *Estimator) Estimate(v graph.VertexID) float64 {
	if int(v) >= len(e.visits) || v < 0 {
		return 0
	}
	return float64(e.visits[v]) / float64(len(e.traces))
}

// Estimates returns the full estimate vector over the current vertex set.
func (e *Estimator) Estimates() []float64 {
	out := make([]float64, len(e.visits))
	total := float64(len(e.traces))
	for v, c := range e.visits {
		out[v] = float64(c) / total
	}
	return out
}

// IndexSize returns the total number of (vertex, walk) entries in the
// inverted index — the auxiliary-memory metric reported in the experiments.
func (e *Estimator) IndexSize() int {
	total := 0
	for _, set := range e.index {
		total += len(set)
	}
	return total
}

// CheckConsistency verifies that the inverted index and visit counts exactly
// describe the current traces. Used by tests and failure injection.
func (e *Estimator) CheckConsistency() error {
	visits := make([]int64, len(e.visits))
	indexed := make([]map[int32]struct{}, len(e.index))
	for id, trace := range e.traces {
		if len(trace) == 0 || trace[0] != e.source {
			return fmt.Errorf("montecarlo: walk %d does not start at the source", id)
		}
		for _, v := range trace {
			if indexed[v] == nil {
				indexed[v] = make(map[int32]struct{})
			}
			indexed[v][int32(id)] = struct{}{}
		}
		visits[trace[len(trace)-1]]++
	}
	for v := range visits {
		if visits[v] != e.visits[v] {
			return fmt.Errorf("montecarlo: visit count mismatch at %d: %d vs %d", v, visits[v], e.visits[v])
		}
		want := len(indexed[v])
		got := len(e.index[v])
		if want != got {
			return fmt.Errorf("montecarlo: index size mismatch at %d: %d vs %d", v, want, got)
		}
		for id := range indexed[v] {
			if _, ok := e.index[v][id]; !ok {
				return fmt.Errorf("montecarlo: walk %d missing from index of %d", id, v)
			}
		}
	}
	return nil
}
