package montecarlo

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"dynppr/internal/gen"
	"dynppr/internal/graph"
)

// buildAndChurn constructs an estimator over an R-MAT graph and applies a
// fixed insert/delete sequence, returning the final estimate vector. Every
// random choice is driven by fixed seeds, so two invocations must agree
// bit-for-bit — which they only do if affected-walk rerouting enumerates
// walks in a deterministic order (the inverted index is a map, and rng seeds
// are assigned positionally to the affected list).
func buildAndChurn(t *testing.T, workers int) []float64 {
	t.Helper()
	g, err := gen.Generate(gen.Config{Model: gen.RMAT, Vertices: 80, Edges: 500, Seed: 5})
	if err != nil {
		t.Fatalf("gen.Generate: %v", err)
	}
	e, err := New(g, 0, Config{Alpha: 0.2, Walks: 3000, Seed: 9, Workers: workers})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	updates := rand.New(rand.NewSource(17))
	for i := 0; i < 40; i++ {
		u := graph.VertexID(updates.Intn(80))
		v := graph.VertexID(updates.Intn(80))
		if i%3 == 2 {
			if _, err := e.ApplyDelete(u, v); err != nil {
				t.Fatalf("ApplyDelete(%d,%d): %v", u, v, err)
			}
		} else if _, err := e.ApplyInsert(u, v); err != nil {
			t.Fatalf("ApplyInsert(%d,%d): %v", u, v, err)
		}
	}
	if err := e.CheckConsistency(); err != nil {
		t.Fatalf("CheckConsistency: %v", err)
	}
	return e.Estimates()
}

// TestRerouteDeterministicAcrossRuns is the regression test for the
// map-iteration-order bug: with a fixed seed, rebuilding the estimator and
// replaying the same update sequence must produce bit-identical estimates,
// at both serial and parallel walk regeneration.
func TestRerouteDeterministicAcrossRuns(t *testing.T) {
	for _, workers := range []int{1, 4} {
		a := buildAndChurn(t, workers)
		b := buildAndChurn(t, workers)
		if len(a) != len(b) {
			t.Fatalf("workers=%d: vector lengths differ: %d vs %d", workers, len(a), len(b))
		}
		for v := range a {
			if math.Float64bits(a[v]) != math.Float64bits(b[v]) {
				t.Fatalf("workers=%d: estimates diverge at vertex %d: %g vs %g", workers, v, a[v], b[v])
			}
		}
	}
}

// TestAffectedWalksSorted pins the ordering contract reroute depends on.
func TestAffectedWalksSorted(t *testing.T) {
	g, err := gen.Generate(gen.Config{Model: gen.RMAT, Vertices: 40, Edges: 300, Seed: 11})
	if err != nil {
		t.Fatalf("gen.Generate: %v", err)
	}
	e, err := New(g, 0, Config{Alpha: 0.15, Walks: 500, Seed: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for v := graph.VertexID(0); v < 40; v++ {
		ids := e.AffectedWalks(v)
		if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
			t.Fatalf("AffectedWalks(%d) not sorted: %v", v, ids)
		}
	}
}
