package montecarlo

import (
	"math/rand"

	"dynppr/internal/graph"
)

// WalkEndpoint simulates one α-terminating random walk from start on any
// frozen adjacency (a CSR snapshot or a layered graph view) and returns the
// vertex where it stops. It uses the same step rule as the dynamic Estimator
// (terminate with probability α per step, otherwise move to a uniform
// out-neighbor, stop at dangling vertices and after maxLen steps), so a
// caller refining a push result draws from the identical walk distribution
// the incremental baseline maintains. Only neighbor order matters to the
// endpoint stream, so a CSR and a view of the same logical graph yield
// identical walks.
//
// Determinism is the caller's contract: all randomness comes from rng, so a
// fixed seed and a fixed snapshot reproduce the same endpoint sequence.
func WalkEndpoint(a graph.Adjacency, start graph.VertexID, alpha float64, maxLen int, rng *rand.Rand) graph.VertexID {
	if maxLen <= 0 {
		maxLen = 1000
	}
	cur := start
	for step := 0; step < maxLen; step++ {
		if rng.Float64() < alpha {
			break
		}
		out := a.OutNeighbors(cur)
		if len(out) == 0 {
			break
		}
		cur = out[rng.Intn(len(out))]
	}
	return cur
}

// WalkEndpointCSR is WalkEndpoint specialized to a CSR snapshot.
func WalkEndpointCSR(c *graph.CSR, start graph.VertexID, alpha float64, maxLen int, rng *rand.Rand) graph.VertexID {
	return WalkEndpoint(c, start, alpha, maxLen, rng)
}
