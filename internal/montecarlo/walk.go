package montecarlo

import (
	"math/rand"

	"dynppr/internal/graph"
)

// WalkEndpointCSR simulates one α-terminating random walk from start on a
// frozen CSR snapshot and returns the vertex where it stops. It uses the
// same step rule as the dynamic Estimator (terminate with probability α per
// step, otherwise move to a uniform out-neighbor, stop at dangling vertices
// and after maxLen steps), so a caller refining a push result draws from the
// identical walk distribution the incremental baseline maintains.
//
// Determinism is the caller's contract: all randomness comes from rng, so a
// fixed seed and a fixed snapshot reproduce the same endpoint sequence.
func WalkEndpointCSR(c *graph.CSR, start graph.VertexID, alpha float64, maxLen int, rng *rand.Rand) graph.VertexID {
	if maxLen <= 0 {
		maxLen = 1000
	}
	cur := start
	for step := 0; step < maxLen; step++ {
		if rng.Float64() < alpha {
			break
		}
		out := c.OutNeighbors(cur)
		if len(out) == 0 {
			break
		}
		cur = out[rng.Intn(len(out))]
	}
	return cur
}
