package montecarlo

import (
	"math"
	"testing"
	"testing/quick"

	"dynppr/internal/gen"
	"dynppr/internal/graph"
	"dynppr/internal/power"
)

func smallGraph() *graph.Graph {
	return graph.FromEdges([]graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 1, V: 0}, {U: 2, V: 1}, {U: 0, V: 2},
	})
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Alpha: 0, Walks: 10},
		{Alpha: 1, Walks: 10},
		{Alpha: 0.15, Walks: 0},
		{Alpha: 0.15, Walks: -5},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", c)
		}
	}
	if _, err := New(smallGraph(), 0, Config{Alpha: 0, Walks: 1}); err == nil {
		t.Error("New must reject invalid config")
	}
	if _, err := New(smallGraph(), -1, Config{Alpha: 0.15, Walks: 1}); err == nil {
		t.Error("New must reject negative source")
	}
}

func TestInitialEstimatesSumToOne(t *testing.T) {
	g := smallGraph()
	e, err := New(g, 0, Config{Alpha: 0.15, Walks: 5000, Seed: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if e.Source() != 0 || e.NumWalks() != 5000 {
		t.Fatal("accessors wrong")
	}
	var sum float64
	for _, x := range e.Estimates() {
		if x < 0 {
			t.Fatalf("negative estimate %v", x)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("estimates sum to %v, want 1", sum)
	}
	if err := e.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if e.IndexSize() == 0 {
		t.Fatal("inverted index should not be empty")
	}
	// Out-of-range estimate lookups return 0.
	if e.Estimate(1000) != 0 || e.Estimate(-1) != 0 {
		t.Fatal("out-of-range estimates must be 0")
	}
}

// With enough walks the Monte-Carlo estimate approaches the exact forward PPR
// vector.
func TestEstimatesApproachForwardOracle(t *testing.T) {
	g, err := gen.Generate(gen.Config{Model: gen.RMAT, Vertices: 100, Edges: 800, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	source := g.TopDegreeVertices(1)[0]
	e, err := New(g, source, Config{Alpha: 0.15, Walks: 60_000, Seed: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := power.ForwardGraph(g, source, power.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if worst := power.MaxAbsDiff(e.Estimates(), oracle); worst > 0.01 {
		t.Fatalf("max error %v too large for 60k walks", worst)
	}
}

func TestApplyInsertReroutesOnlyAffectedWalks(t *testing.T) {
	g := smallGraph()
	e, err := New(g, 0, Config{Alpha: 0.3, Walks: 2000, Seed: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Vertex 5 is not visited by any walk (it does not exist yet), so an
	// insert from it re-routes nothing.
	n, err := e.ApplyInsert(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("insert from unvisited vertex re-routed %d walks", n)
	}
	// An insert out of the source touches every walk (they all start there).
	n, err = e.ApplyInsert(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if n != e.NumWalks() {
		t.Fatalf("insert at source re-routed %d walks, want all %d", n, e.NumWalks())
	}
	if err := e.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Duplicate insert: no graph change, no rerouting.
	n, err = e.ApplyInsert(0, 5)
	if err != nil || n != 0 {
		t.Fatalf("duplicate insert: n=%d err=%v", n, err)
	}
}

func TestApplyDelete(t *testing.T) {
	g := smallGraph()
	e, err := New(g, 0, Config{Alpha: 0.3, Walks: 1000, Seed: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	n, err := e.ApplyDelete(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("deleting a frequently used edge should re-route some walks")
	}
	if err := e.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Walks must never traverse the deleted edge anymore.
	for id := 0; id < e.NumWalks(); id++ {
		trace := e.traces[id]
		for i := 0; i+1 < len(trace); i++ {
			if trace[i] == 1 && trace[i+1] == 2 {
				t.Fatalf("walk %d still uses deleted edge", id)
			}
		}
	}
	// Deleting a missing edge is a no-op.
	if n, err := e.ApplyDelete(1, 2); err != nil || n != 0 {
		t.Fatalf("missing delete: n=%d err=%v", n, err)
	}
}

// After dynamic updates the estimator must still approximate the forward PPR
// of the new graph.
func TestDynamicAccuracy(t *testing.T) {
	edges, err := gen.EdgeList(gen.Config{Model: gen.BarabasiAlbert, Vertices: 80, Edges: 600, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.FromEdges(edges[:400])
	source := g.TopDegreeVertices(1)[0]
	e, err := New(g, source, Config{Alpha: 0.15, Walks: 50_000, Seed: 7, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range edges[400:] {
		if _, err := e.ApplyInsert(ins.U, ins.V); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	oracle, err := power.ForwardGraph(g, source, power.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if worst := power.MaxAbsDiff(e.Estimates(), oracle); worst > 0.015 {
		t.Fatalf("max error %v after updates", worst)
	}
}

func TestDanglingSourceWalks(t *testing.T) {
	// A source with no out-edges: every walk stops immediately at the source.
	g := graph.New(3)
	g.EnsureVertex(2)
	e, err := New(g, 1, Config{Alpha: 0.15, Walks: 100, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if e.Estimate(1) != 1 {
		t.Fatalf("dangling source estimate = %v, want 1", e.Estimate(1))
	}
}

// Property: regardless of the update mix, the index stays consistent and the
// estimates remain a probability distribution.
func TestConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		edges, err := gen.EdgeList(gen.Config{Model: gen.ErdosRenyi, Vertices: 30, Edges: 150, Seed: seed})
		if err != nil {
			return false
		}
		g := graph.FromEdges(edges[:100])
		e, err := New(g, 0, Config{Alpha: 0.2, Walks: 500, Seed: seed, Workers: 2})
		if err != nil {
			return false
		}
		for i, ins := range edges[100:120] {
			if i%3 == 0 && g.NumEdges() > 0 {
				del := g.Edges()[0]
				if _, err := e.ApplyDelete(del.U, del.V); err != nil {
					return false
				}
			}
			if _, err := e.ApplyInsert(ins.U, ins.V); err != nil {
				return false
			}
		}
		if err := e.CheckConsistency(); err != nil {
			t.Log(err)
			return false
		}
		var sum float64
		for _, x := range e.Estimates() {
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
