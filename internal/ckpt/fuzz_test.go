package ckpt

import (
	"math"
	"reflect"
	"testing"

	"dynppr/internal/graph"
)

// dataEqual compares two checkpoints with bit-level float equality, so NaN
// payloads (legal bytes behind a valid checksum) still round-trip.
func dataEqual(a, b *Data) bool {
	if a.LSN != b.LSN ||
		math.Float64bits(a.Alpha) != math.Float64bits(b.Alpha) ||
		math.Float64bits(a.Epsilon) != math.Float64bits(b.Epsilon) ||
		!reflect.DeepEqual(a.Out, b.Out) || !reflect.DeepEqual(a.In, b.In) ||
		len(a.Sources) != len(b.Sources) {
		return false
	}
	for i := range a.Sources {
		sa, sb := a.Sources[i], b.Sources[i]
		if sa.Source != sb.Source || sa.Epoch != sb.Epoch ||
			len(sa.Estimates) != len(sb.Estimates) || len(sa.Residuals) != len(sb.Residuals) {
			return false
		}
		for j := range sa.Estimates {
			if math.Float64bits(sa.Estimates[j]) != math.Float64bits(sb.Estimates[j]) ||
				math.Float64bits(sa.Residuals[j]) != math.Float64bits(sb.Residuals[j]) {
				return false
			}
		}
	}
	return true
}

// FuzzCheckpointRead drives Decode with arbitrary bytes. The contract under
// fuzz: Decode returns either ErrInvalid or a Data whose re-encoding decodes
// to the same value, whose adjacency either builds a consistent graph or is
// cleanly rejected by graph.FromAdjacency, and which never panics or
// allocates beyond the input size — junk bytes, truncated tails and bad
// checksums must all error.
func FuzzCheckpointRead(f *testing.F) {
	valid, err := Encode(&Data{
		LSN:     9,
		Alpha:   0.15,
		Epsilon: 1e-6,
		Out:     [][]graph.VertexID{{1, 2}, {2}, nil},
		In:      [][]graph.VertexID{nil, {0}, {0, 1}},
		Sources: []Source{
			{Source: 0, Epoch: 3, Estimates: []float64{0.5, 0.2, 0.1}, Residuals: []float64{0, 1e-7, -1e-7}},
			{Source: 2, Epoch: 1, Estimates: []float64{0, 0, 1}, Residuals: []float64{0, 0, 0}},
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // truncated tail
	f.Add(valid[:12])           // envelope only
	f.Add([]byte{})
	f.Add([]byte("DPPRCKP1"))
	f.Add([]byte("DPPRCKP1\x01\x00\x00\x00junk"))
	flip := append([]byte(nil), valid...)
	flip[len(flip)/2] ^= 0x20
	f.Add(flip)
	f.Add([]byte("definitely not a checkpoint: just prose bytes padding out"))

	empty, err := Encode(&Data{Alpha: 0.5, Epsilon: 1, Out: nil, In: nil})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted input: the value must survive an encode/decode round
		// trip bit for bit.
		buf, err := Encode(d)
		if err != nil {
			t.Fatalf("re-encode of accepted checkpoint: %v", err)
		}
		d2, err := Decode(buf)
		if err != nil {
			t.Fatalf("re-decode of accepted checkpoint: %v", err)
		}
		if !dataEqual(d, d2) {
			t.Fatalf("round trip changed the checkpoint:\n%+v\n%+v", d, d2)
		}
		// The adjacency must be usable or cleanly rejected — never a panic.
		if g, err := graph.FromAdjacency(d.Out, d.In); err == nil {
			if cerr := g.CheckConsistency(); cerr != nil {
				t.Fatalf("FromAdjacency accepted an inconsistent graph: %v", cerr)
			}
		}
		for _, s := range d.Sources {
			if len(s.Estimates) != len(s.Residuals) {
				t.Fatalf("decoded source %d with mismatched vectors", s.Source)
			}
			if int(s.Source) >= len(s.Estimates) {
				t.Fatalf("decoded source %d not covered by its vectors", s.Source)
			}
		}
	})
}
