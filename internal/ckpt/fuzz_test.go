package ckpt

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"reflect"
	"testing"

	"dynppr/internal/graph"
)

// dataEqual compares two checkpoints with bit-level float equality, so NaN
// payloads (legal bytes behind a valid checksum) still round-trip.
func dataEqual(a, b *Data) bool {
	if a.LSN != b.LSN ||
		math.Float64bits(a.Alpha) != math.Float64bits(b.Alpha) ||
		math.Float64bits(a.Epsilon) != math.Float64bits(b.Epsilon) ||
		!reflect.DeepEqual(a.Out, b.Out) || !reflect.DeepEqual(a.In, b.In) ||
		!csrEqual(a.CSR, b.CSR) ||
		len(a.Sources) != len(b.Sources) {
		return false
	}
	for i := range a.Sources {
		sa, sb := a.Sources[i], b.Sources[i]
		if sa.Source != sb.Source || sa.Epoch != sb.Epoch ||
			len(sa.Estimates) != len(sb.Estimates) || len(sa.Residuals) != len(sb.Residuals) {
			return false
		}
		for j := range sa.Estimates {
			if math.Float64bits(sa.Estimates[j]) != math.Float64bits(sb.Estimates[j]) ||
				math.Float64bits(sa.Residuals[j]) != math.Float64bits(sb.Residuals[j]) {
				return false
			}
		}
	}
	return true
}

// csrEqual compares two CSR images element by element, treating nil and
// empty target arrays as equal (decode always allocates, snapshots may not).
func csrEqual(a, b *graph.CSR) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	aOutOff, aOutTgt := a.RawOut()
	bOutOff, bOutTgt := b.RawOut()
	aInOff, aInTgt := a.RawIn()
	bInOff, bInTgt := b.RawIn()
	return int32sEqual(aOutOff, bOutOff) && int32sEqual(aInOff, bInOff) &&
		vertexIDsEqual(aOutTgt, bOutTgt) && vertexIDsEqual(aInTgt, bInTgt)
}

func int32sEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func vertexIDsEqual(a, b []graph.VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzCheckpointRead drives Decode with arbitrary bytes. The contract under
// fuzz: Decode returns either ErrInvalid or a Data whose re-encoding decodes
// to the same value, whose adjacency either builds a consistent graph or is
// cleanly rejected by graph.FromAdjacency, and which never panics or
// allocates beyond the input size — junk bytes, truncated tails and bad
// checksums must all error.
func FuzzCheckpointRead(f *testing.F) {
	valid, err := Encode(&Data{
		LSN:     9,
		Alpha:   0.15,
		Epsilon: 1e-6,
		Out:     [][]graph.VertexID{{1, 2}, {2}, nil},
		In:      [][]graph.VertexID{nil, {0}, {0, 1}},
		Sources: []Source{
			{Source: 0, Epoch: 3, Estimates: []float64{0.5, 0.2, 0.1}, Residuals: []float64{0, 1e-7, -1e-7}},
			{Source: 2, Epoch: 1, Estimates: []float64{0, 0, 1}, Residuals: []float64{0, 0, 0}},
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // truncated tail
	f.Add(valid[:12])           // envelope only
	f.Add([]byte{})
	f.Add([]byte("DPPRCKP1"))
	f.Add([]byte("DPPRCKP1\x01\x00\x00\x00junk"))
	flip := append([]byte(nil), valid...)
	flip[len(flip)/2] ^= 0x20
	f.Add(flip)
	f.Add([]byte("definitely not a checkpoint: just prose bytes padding out"))

	empty, err := Encode(&Data{Alpha: 0.5, Epsilon: 1, Out: nil, In: nil})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted input: the value must survive an encode/decode round
		// trip bit for bit.
		buf, err := Encode(d)
		if err != nil {
			t.Fatalf("re-encode of accepted checkpoint: %v", err)
		}
		d2, err := Decode(buf)
		if err != nil {
			t.Fatalf("re-decode of accepted checkpoint: %v", err)
		}
		if !dataEqual(d, d2) {
			t.Fatalf("round trip changed the checkpoint:\n%+v\n%+v", d, d2)
		}
		// The adjacency must be usable or cleanly rejected — never a panic.
		if g, err := graph.FromAdjacency(d.Out, d.In); err == nil {
			if cerr := g.CheckConsistency(); cerr != nil {
				t.Fatalf("FromAdjacency accepted an inconsistent graph: %v", cerr)
			}
		}
		for _, s := range d.Sources {
			if len(s.Estimates) != len(s.Residuals) {
				t.Fatalf("decoded source %d with mismatched vectors", s.Source)
			}
			if int(s.Source) >= len(s.Estimates) {
				t.Fatalf("decoded source %d not covered by its vectors", s.Source)
			}
		}
	})
}

// sampleCSRData builds a v2 checkpoint value around a compacted CSR base.
func sampleCSRData() *Data {
	g := graph.FromEdges([]graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}, {U: 3, V: 0}, {U: 3, V: 1}})
	return &Data{
		LSN:     21,
		Alpha:   0.15,
		Epsilon: 1e-6,
		CSR:     g.CompactedSnapshot(),
		Sources: []Source{
			{Source: 0, Epoch: 5, Estimates: []float64{0.4, 0.3, 0.3}, Residuals: []float64{0, 1e-7, 0}},
			{Source: 3, Epoch: 2, Estimates: []float64{0.1, 0.2, 0.2, 0.5}, Residuals: []float64{0, 0, -1e-8, 0}},
		},
	}
}

// FuzzCSRImageRead drives Decode with arbitrary bytes aimed at the v2 CSR
// image path. The strict-reader contract: truncation, checksum damage,
// version skew, forged counts and malformed CSR structure must all return
// ErrInvalid — never a panic and never an allocation proportional to a
// forged count rather than the actual input size — and any accepted image
// must re-encode/decode bit-identically and wrap into a consistent graph
// with no re-insertion.
func FuzzCSRImageRead(f *testing.F) {
	valid, err := Encode(sampleCSRData())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // truncated: checksum and arrays cut off
	f.Add(valid[:30])           // truncated inside the CSR arrays
	f.Add([]byte("DPPRCKP2"))
	f.Add([]byte("DPPRCKP2\x02\x00\x00\x00junk"))

	// Checksum damage: flip one bit mid-array.
	flip := append([]byte(nil), valid...)
	flip[len(flip)/2] ^= 0x10
	f.Add(flip)

	// Version skew: v2 magic with a future version and a recomputed
	// checksum — the version gate must reject it, not the CRC.
	future := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(future[8:], version2+1)
	f.Add(resealCRC(future))

	// Cross-version skew: v1 magic carrying the v2 version number.
	skew := append([]byte(nil), valid...)
	copy(skew, magic)
	f.Add(resealCRC(skew))

	// Forged vertex count far past the input size: the count guard must
	// reject it before allocating.
	forged := append([]byte(nil), valid...)
	forged[36] = 0xFF // n uvarint lives right after the 36-byte header
	f.Add(resealCRC(forged))

	// Empty graph: n=0, m=0 is a legal image.
	empty, err := Encode(&Data{Alpha: 0.5, Epsilon: 1, CSR: graph.New(0).CompactedSnapshot()})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Decode(data)
		if err != nil {
			return
		}
		buf, err := Encode(d)
		if err != nil {
			t.Fatalf("re-encode of accepted checkpoint: %v", err)
		}
		d2, err := Decode(buf)
		if err != nil {
			t.Fatalf("re-decode of accepted checkpoint: %v", err)
		}
		if !dataEqual(d, d2) {
			t.Fatalf("round trip changed the checkpoint:\n%+v\n%+v", d, d2)
		}
		if d.CSR == nil {
			return // v1 input wandered in; FuzzCheckpointRead owns that path
		}
		// An accepted image must already satisfy every CSR invariant: the
		// zero-copy recovery graph it backs is consistent as-is.
		g := graph.FromCSR(d.CSR)
		if cerr := g.CheckConsistency(); cerr != nil {
			t.Fatalf("accepted CSR image is inconsistent: %v", cerr)
		}
		for _, s := range d.Sources {
			if len(s.Estimates) != len(s.Residuals) || int(s.Source) >= len(s.Estimates) {
				t.Fatalf("decoded source %d with malformed vectors", s.Source)
			}
		}
	})
}

// resealCRC recomputes the trailing checksum so damage to the body tests the
// semantic gates rather than the CRC.
func resealCRC(buf []byte) []byte {
	body := buf[:len(buf)-4]
	binary.LittleEndian.PutUint32(buf[len(buf)-4:], crc32.Checksum(body, castagnoli))
	return buf
}
