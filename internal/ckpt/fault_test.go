package ckpt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dynppr/internal/faultfs"
	"dynppr/internal/graph"
)

// TestWriteFaultKeepsOldCheckpoint scripts a fault at each step of the
// checkpoint write and checks the last good checkpoint stays loadable and no
// temp file accumulates — the invariant that makes a degraded episode safe
// to recover from.
func TestWriteFaultKeepsOldCheckpoint(t *testing.T) {
	old := &Data{LSN: 10, Alpha: 0.15, Epsilon: 1e-6,
		Out: [][]graph.VertexID{{1}, {}}, In: [][]graph.VertexID{{}, {0}}}
	next := &Data{LSN: 20, Alpha: 0.15, Epsilon: 1e-6,
		Out: [][]graph.VertexID{{1}, {0}}, In: [][]graph.VertexID{{1}, {0}}}

	rules := []faultfs.Rule{
		{Op: faultfs.OpOpen, Path: ".tmp"},
		{Op: faultfs.OpWrite, Path: ".tmp"},
		{Op: faultfs.OpWrite, Path: ".tmp", Mode: faultfs.ModePartial, Partial: 16},
		{Op: faultfs.OpSync, Path: ".tmp"},
		{Op: faultfs.OpRename},
	}
	for _, rule := range rules {
		t.Run(rule.Op.String()+"-"+modeName(rule.Mode), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "ckpt")
			if err := WriteFile(path, old); err != nil {
				t.Fatal(err)
			}

			in := faultfs.NewInjector(faultfs.OS)
			in.Add(rule)
			if err := WriteFileFS(in, path, next); err == nil {
				t.Fatal("faulted checkpoint write reported success")
			}

			got, err := LoadFile(path)
			if err != nil {
				t.Fatalf("last good checkpoint unreadable after fault: %v", err)
			}
			if got.LSN != old.LSN {
				t.Fatalf("checkpoint LSN %d after fault, want the old %d", got.LSN, old.LSN)
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if strings.HasSuffix(e.Name(), ".tmp") {
					t.Fatalf("temp file %s left behind", e.Name())
				}
			}

			// Fault clears; the write now lands and loads at the new LSN.
			in.Clear()
			if err := WriteFileFS(in, path, next); err != nil {
				t.Fatalf("write after fault cleared: %v", err)
			}
			if got, err := LoadFileFS(in, path); err != nil || got.LSN != next.LSN {
				t.Fatalf("healed checkpoint: LSN %d, %v; want %d", got.LSN, err, next.LSN)
			}
		})
	}
}

// TestSilentShortCheckpointCaught: a lying short write of a checkpoint must
// be rejected by fsatomic's read-back verify, never renamed over good data.
func TestSilentShortCheckpointCaught(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt")
	old := &Data{LSN: 5, Alpha: 0.2, Epsilon: 1e-4}
	if err := WriteFile(path, old); err != nil {
		t.Fatal(err)
	}

	in := faultfs.NewInjector(faultfs.OS)
	in.Add(faultfs.Rule{Op: faultfs.OpWrite, Path: ".tmp", Mode: faultfs.ModeSilentShort, Partial: 8})
	err := WriteFileFS(in, path, &Data{LSN: 6, Alpha: 0.2, Epsilon: 1e-4})
	if err == nil {
		t.Fatal("lying short checkpoint write reported success")
	}
	if got, lerr := LoadFile(path); lerr != nil || got.LSN != 5 {
		t.Fatalf("old checkpoint after lying write: LSN %d, %v", got.LSN, lerr)
	}
}

func modeName(m faultfs.Mode) string {
	switch m {
	case faultfs.ModePartial:
		return "partial"
	case faultfs.ModeSilentShort:
		return "silentshort"
	default:
		return "fail"
	}
}
