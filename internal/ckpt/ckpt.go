// Package ckpt reads and writes checkpoints of the durable serving layer: a
// versioned binary snapshot of the dynamic graph, the tracked source set and
// each source's converged push state (estimates, residuals, snapshot epoch),
// together with the WAL sequence number the snapshot covers. A checkpoint
// plus the WAL suffix past its LSN reconstructs a Service exactly; under the
// deterministic engine the reconstruction is bit-identical, which is why the
// graph is serialized as ordered adjacency lists (summation order of later
// pushes) rather than as an edge set.
//
// # Format (version 2, CSR image)
//
//	magic       [8]byte  "DPPRCKP2"
//	version     uint32   little-endian (2)
//	lsn         uint64   WAL LSN covered by this checkpoint
//	alpha       float64  IEEE-754 bits, little-endian
//	epsilon     float64
//	n           uvarint  number of vertices
//	m           uvarint  number of edges
//	outOffsets  (n+1) × uint32 little-endian   — CSR row starts, exact order
//	outTargets  m × uint32
//	inOffsets   (n+1) × uint32
//	inTargets   m × uint32
//	sources     uvarint count, count × source block
//	crc         uint32   CRC-32C (Castagnoli) of every preceding byte
//
// The four arrays are the graph's CSR base segment verbatim, so a checkpoint
// is written from a compacted graph with no per-edge work, and recovery
// wraps the decoded arrays as the new base with no re-insertion — the
// near-instant "CSR image" load the storage engine was reworked for.
// Adjacency order is exact for the same reason it is in v1.
//
// # Format (version 1, legacy)
//
//	magic    [8]byte  "DPPRCKP1"
//	version  uint32   little-endian (1)
//	lsn      uint64   WAL LSN covered by this checkpoint
//	alpha    float64  IEEE-754 bits, little-endian
//	epsilon  float64
//	n        uvarint  number of vertices
//	out      n × (uvarint degree, degree × uvarint neighbor)   — exact order
//	in       n × (uvarint degree, degree × uvarint neighbor)   — exact order
//	sources  uvarint count, count × source block
//	crc      uint32   CRC-32C (Castagnoli) of every preceding byte
//
// Version 1 checkpoints are still read (recovery upgrades them by writing a
// fresh v2 image after replay); only v2 is written.
//
// In both versions a source block is
//
//	source    uvarint
//	epoch     uint64
//	veclen    uvarint                    length of both vectors
//	estimates veclen × float64 bits      little-endian
//	residuals veclen × float64 bits
//
// Writes go through a temp file, fsync and atomic rename, so the checkpoint
// path always holds either the previous complete checkpoint or the new one —
// never a torn hybrid; the trailing checksum rejects anything else.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"dynppr/internal/faultfs"
	"dynppr/internal/fsatomic"
	"dynppr/internal/graph"
)

const (
	magic   = "DPPRCKP1"
	version = 1

	magic2   = "DPPRCKP2"
	version2 = 2
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrInvalid reports a byte stream that is not a well-formed checkpoint
// (bad magic, unsupported version, failed checksum, or malformed body).
var ErrInvalid = errors.New("ckpt: invalid checkpoint")

// Source is one tracked source's serialized push state.
type Source struct {
	// Source is the tracked vertex.
	Source graph.VertexID
	// Epoch is the source's snapshot epoch at checkpoint time (≥ 1: the
	// cold start has always published by then).
	Epoch uint64
	// Estimates and Residuals are the converged (P, R) vectors. Their
	// common length may lag the vertex count when the graph grew without
	// touching this source.
	Estimates []float64
	Residuals []float64
}

// Data is one decoded checkpoint.
type Data struct {
	// LSN is the WAL sequence number the snapshot covers: recovery replays
	// only records with LSN ≥ this value.
	LSN uint64
	// Alpha and Epsilon are the scheme parameters the states were built
	// with; recovery must resume with the same values.
	Alpha   float64
	Epsilon float64
	// CSR is the graph's compacted base segment. When non-nil, Encode
	// writes the v2 CSR-image format (Out/In are ignored) and recovery can
	// adopt the arrays as a graph base without re-inserting edges. Decoding
	// a v2 checkpoint sets CSR and leaves Out/In nil; decoding a legacy v1
	// checkpoint does the reverse.
	CSR *graph.CSR
	// Out and In are the graph's adjacency lists in exact stored order
	// (legacy v1 representation).
	Out, In [][]graph.VertexID
	// Sources lists the tracked sources in ascending source order.
	Sources []Source
}

// Encode serializes d to its binary form: the v2 CSR image when d.CSR is
// set, the legacy v1 adjacency format otherwise.
func Encode(d *Data) ([]byte, error) {
	if d.CSR != nil {
		return encodeCSR(d)
	}
	if len(d.Out) != len(d.In) {
		return nil, fmt.Errorf("ckpt: adjacency mismatch: %d out slots, %d in slots", len(d.Out), len(d.In))
	}
	n := len(d.Out)
	buf := make([]byte, 0, 64+16*n)
	buf = appendHeader(buf, magic, version, d)
	buf = binary.AppendUvarint(buf, uint64(n))
	var err error
	if buf, err = appendAdjacency(buf, d.Out, n); err != nil {
		return nil, err
	}
	if buf, err = appendAdjacency(buf, d.In, n); err != nil {
		return nil, err
	}
	if buf, err = appendSources(buf, d.Sources, n); err != nil {
		return nil, err
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	return buf, nil
}

// encodeCSR writes the v2 image: the graph base's four CSR arrays verbatim,
// fixed-width, so encoding cost is a flat memory copy rather than per-edge
// varint work.
func encodeCSR(d *Data) ([]byte, error) {
	c := d.CSR
	n, m := c.NumVertices(), c.NumEdges()
	outOff, outTgt := c.RawOut()
	inOff, inTgt := c.RawIn()
	buf := make([]byte, 0, 64+4*(2*(n+1)+2*m))
	buf = appendHeader(buf, magic2, version2, d)
	buf = binary.AppendUvarint(buf, uint64(n))
	buf = binary.AppendUvarint(buf, uint64(m))
	buf = appendOffsets(buf, outOff)
	buf = appendTargets(buf, outTgt)
	buf = appendOffsets(buf, inOff)
	buf = appendTargets(buf, inTgt)
	buf, err := appendSources(buf, d.Sources, n)
	if err != nil {
		return nil, err
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	return buf, nil
}

func appendHeader(buf []byte, mg string, ver uint32, d *Data) []byte {
	buf = append(buf, mg...)
	buf = binary.LittleEndian.AppendUint32(buf, ver)
	buf = binary.LittleEndian.AppendUint64(buf, d.LSN)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d.Alpha))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d.Epsilon))
	return buf
}

func appendOffsets(buf []byte, offsets []int32) []byte {
	for _, x := range offsets {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(x))
	}
	return buf
}

func appendTargets(buf []byte, targets []graph.VertexID) []byte {
	for _, v := range targets {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	return buf
}

func appendSources(buf []byte, sources []Source, n int) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(sources)))
	for _, s := range sources {
		if s.Source < 0 || int(s.Source) >= n {
			return nil, fmt.Errorf("ckpt: source %d outside [0,%d)", s.Source, n)
		}
		if len(s.Estimates) != len(s.Residuals) {
			return nil, fmt.Errorf("ckpt: source %d vectors disagree: %d estimates, %d residuals",
				s.Source, len(s.Estimates), len(s.Residuals))
		}
		if len(s.Estimates) > n || int(s.Source) >= len(s.Estimates) {
			return nil, fmt.Errorf("ckpt: source %d vector length %d outside (%d,%d]",
				s.Source, len(s.Estimates), s.Source, n)
		}
		buf = binary.AppendUvarint(buf, uint64(s.Source))
		buf = binary.LittleEndian.AppendUint64(buf, s.Epoch)
		buf = binary.AppendUvarint(buf, uint64(len(s.Estimates)))
		for _, x := range s.Estimates {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
		}
		for _, x := range s.Residuals {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
		}
	}
	return buf, nil
}

func appendAdjacency(buf []byte, lists [][]graph.VertexID, n int) ([]byte, error) {
	for u, nbrs := range lists {
		buf = binary.AppendUvarint(buf, uint64(len(nbrs)))
		for _, v := range nbrs {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("ckpt: adjacency of %d names vertex %d outside [0,%d)", u, v, n)
			}
			buf = binary.AppendUvarint(buf, uint64(v))
		}
	}
	return buf, nil
}

// Decode parses a checkpoint image. Junk bytes, truncation, bad checksums
// and malformed bodies return ErrInvalid — never a panic and never an
// allocation proportional to a forged count rather than the actual input
// size.
func Decode(data []byte) (*Data, error) {
	if len(data) < len(magic)+4+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the envelope", ErrInvalid, len(data))
	}
	mg := string(data[:len(magic)])
	if mg != magic && mg != magic2 {
		return nil, fmt.Errorf("%w: bad magic %q", ErrInvalid, data[:len(magic)])
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrInvalid)
	}
	r := &reader{b: body, off: len(magic)}
	v := r.u32()
	d := &Data{}
	d.LSN = r.u64()
	d.Alpha = math.Float64frombits(r.u64())
	d.Epsilon = math.Float64frombits(r.u64())
	var n int
	var err error
	switch {
	case mg == magic && v == version:
		n, err = r.count(1)
		if err != nil {
			return nil, err
		}
		if d.Out, err = r.adjacency(n); err != nil {
			return nil, err
		}
		if d.In, err = r.adjacency(n); err != nil {
			return nil, err
		}
	case mg == magic2 && v == version2:
		if n, err = r.csr(d); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: unsupported version %d for magic %q", ErrInvalid, v, mg)
	}
	if d.Sources, err = r.sources(n); err != nil {
		return nil, err
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrInvalid, len(body)-r.off)
	}
	return d, nil
}

// WriteFile is WriteFileFS on the real filesystem.
func WriteFile(path string, d *Data) error {
	return WriteFileFS(faultfs.OS, path, d)
}

// WriteFileFS atomically replaces path with the serialized checkpoint (see
// fsatomic.WriteFileFS): a crash or I/O error at any point leaves either the
// old complete checkpoint or the new one, and the temp file is verified by
// read-back before the rename and removed on every failure path.
func WriteFileFS(fs faultfs.FS, path string, d *Data) error {
	buf, err := Encode(d)
	if err != nil {
		return err
	}
	return fsatomic.WriteFileFS(fs, path, buf)
}

// LoadFile is LoadFileFS on the real filesystem.
func LoadFile(path string) (*Data, error) {
	return LoadFileFS(faultfs.OS, path)
}

// LoadFileFS reads and decodes the checkpoint at path. A missing file
// returns os.ErrNotExist.
func LoadFileFS(fs faultfs.FS, path string) (*Data, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	d, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// reader is a bounds-checked cursor over the checkpoint body. Fixed-width
// reads record a sticky error instead of panicking; counts are validated
// against the remaining input so forged values cannot force allocations
// beyond the input size.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) u32() uint32 {
	if r.err != nil || r.remaining() < 4 {
		r.setTruncated()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.remaining() < 8 {
		r.setTruncated()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) setTruncated() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated at offset %d", ErrInvalid, r.off)
	}
}

func (r *reader) uvarint() (uint64, error) {
	if r.err != nil {
		return 0, r.err
	}
	x, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.setTruncated()
		return 0, r.err
	}
	r.off += n
	return x, nil
}

// count reads a uvarint element count whose elements each occupy at least
// minElemBytes, rejecting counts the remaining input cannot possibly hold.
func (r *reader) count(minElemBytes int) (int, error) {
	x, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if x > uint64(r.remaining()/minElemBytes)+1 {
		r.err = fmt.Errorf("%w: count %d exceeds remaining input at offset %d", ErrInvalid, x, r.off)
		return 0, r.err
	}
	return int(x), nil
}

func (r *reader) vertex(n int) (graph.VertexID, error) {
	x, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if x >= uint64(n) {
		r.err = fmt.Errorf("%w: vertex %d outside [0,%d) at offset %d", ErrInvalid, x, n, r.off)
		return 0, r.err
	}
	return graph.VertexID(x), nil
}

func (r *reader) adjacency(n int) ([][]graph.VertexID, error) {
	lists := make([][]graph.VertexID, n)
	for u := 0; u < n; u++ {
		deg, err := r.count(1)
		if err != nil {
			return nil, err
		}
		if deg == 0 {
			continue
		}
		nbrs := make([]graph.VertexID, deg)
		for i := range nbrs {
			if nbrs[i], err = r.vertex(n); err != nil {
				return nil, err
			}
		}
		lists[u] = nbrs
	}
	return lists, nil
}

// csr reads the v2 body's four fixed-width CSR arrays into d.CSR, validating
// the structural invariants via graph.NewCSR, and returns the vertex count.
func (r *reader) csr(d *Data) (int, error) {
	// Every vertex occupies at least 8 bytes (one uint32 offset in each
	// direction) and every edge at least 8 (one uint32 target in each
	// direction), so forged counts cannot force allocations past the input.
	n, err := r.count(8)
	if err != nil {
		return 0, err
	}
	if n > math.MaxInt32 {
		return 0, fmt.Errorf("%w: vertex count %d exceeds id range", ErrInvalid, n)
	}
	m, err := r.count(8)
	if err != nil {
		return 0, err
	}
	outOffsets := r.int32s(n + 1)
	outTargets := r.vertexIDs(m)
	inOffsets := r.int32s(n + 1)
	inTargets := r.vertexIDs(m)
	if r.err != nil {
		return 0, r.err
	}
	c, err := graph.NewCSR(outOffsets, inOffsets, outTargets, inTargets)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	d.CSR = c
	return n, nil
}

// sources reads the trailing source blocks shared by both format versions.
func (r *reader) sources(n int) ([]Source, error) {
	numSources, err := r.count(1 + 8 + 1)
	if err != nil {
		return nil, err
	}
	sources := make([]Source, 0, numSources)
	var prev graph.VertexID = -1
	for i := 0; i < numSources; i++ {
		var s Source
		src, err := r.vertex(n)
		if err != nil {
			return nil, fmt.Errorf("%w: source %d: %v", ErrInvalid, i, err)
		}
		if src <= prev {
			return nil, fmt.Errorf("%w: sources not in ascending order (%d after %d)", ErrInvalid, src, prev)
		}
		prev = src
		s.Source = src
		s.Epoch = r.u64()
		vecLen, err := r.count(16)
		if err != nil {
			return nil, err
		}
		if vecLen > n || int(src) >= vecLen {
			return nil, fmt.Errorf("%w: source %d vector length %d outside (%d,%d]", ErrInvalid, src, vecLen, src, n)
		}
		s.Estimates = r.floats(vecLen)
		s.Residuals = r.floats(vecLen)
		if r.err != nil {
			return nil, r.err
		}
		sources = append(sources, s)
	}
	return sources, nil
}

// int32s reads count little-endian uint32 values as int32. Values with the
// high bit set decode negative and are rejected downstream by the CSR
// validator, never interpreted as lengths.
func (r *reader) int32s(count int) []int32 {
	if r.err != nil {
		return nil
	}
	if count > r.remaining()/4 {
		r.setTruncated()
		return nil
	}
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(r.b[r.off:]))
		r.off += 4
	}
	return out
}

func (r *reader) vertexIDs(count int) []graph.VertexID {
	if r.err != nil {
		return nil
	}
	if count > r.remaining()/4 {
		r.setTruncated()
		return nil
	}
	out := make([]graph.VertexID, count)
	for i := range out {
		out[i] = graph.VertexID(int32(binary.LittleEndian.Uint32(r.b[r.off:])))
		r.off += 4
	}
	return out
}

func (r *reader) floats(n int) []float64 {
	if r.err != nil {
		return nil
	}
	if r.remaining() < 8*n {
		r.setTruncated()
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
		r.off += 8
	}
	return out
}
