package ckpt

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dynppr/internal/graph"
)

func sampleData() *Data {
	return &Data{
		LSN:     17,
		Alpha:   0.15,
		Epsilon: 1e-6,
		Out: [][]graph.VertexID{
			{1, 2}, {2}, nil, {0, 1},
		},
		In: [][]graph.VertexID{
			{3}, {0, 3}, {0, 1}, nil,
		},
		Sources: []Source{
			{Source: 1, Epoch: 4, Estimates: []float64{0.1, 0.9, 0}, Residuals: []float64{0, -1e-7, 1e-8}},
			{Source: 3, Epoch: 2, Estimates: []float64{0, 0.25, 0.5, 0.25}, Residuals: []float64{1e-9, 0, 0, 0}},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := sampleData()
	buf, err := Encode(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Signed-zero and NaN-free float bits must survive exactly.
	want.Sources[0].Estimates[2] = math.Copysign(0, -1)
	buf, err = Encode(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err = Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.Sources[0].Estimates[2]) != math.Float64bits(want.Sources[0].Estimates[2]) {
		t.Fatal("float bits not preserved")
	}
	// The decoded adjacency reconstructs a consistent graph.
	g, err := graph.FromAdjacency(got.Out, got.In)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 5 {
		t.Fatalf("edges %d, want 5", g.NumEdges())
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	good, err := Encode(sampleData())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"short":     good[:10],
		"truncated": good[:len(good)-9],
		"bad-magic": append([]byte("NOTACKP0"), good[8:]...),
		"junk":      []byte("this is not a checkpoint at all, not even close"),
	}
	// Flip one payload bit: checksum must catch it.
	flipped := append([]byte(nil), good...)
	flipped[20] ^= 0x04
	cases["bit-flip"] = flipped
	// Forge a future version with a recomputed checksum: version gate must
	// catch it.
	future := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(future[8:], version+1)
	body := future[:len(future)-4]
	binary.LittleEndian.PutUint32(future[len(future)-4:], crc32.Checksum(body, castagnoli))
	cases["future-version"] = future

	for name, data := range cases {
		if _, err := Decode(data); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: got %v, want ErrInvalid", name, err)
		}
	}
}

func TestEncodeRejectsMalformedData(t *testing.T) {
	mutations := map[string]func(*Data){
		"adjacency-mismatch": func(d *Data) { d.In = d.In[:2] },
		"vertex-range":       func(d *Data) { d.Out[0] = []graph.VertexID{99} },
		"vector-mismatch":    func(d *Data) { d.Sources[0].Residuals = d.Sources[0].Residuals[:1] },
		"vector-short":       func(d *Data) { s := &d.Sources[1]; s.Estimates = s.Estimates[:2]; s.Residuals = s.Residuals[:2] },
		"source-range":       func(d *Data) { d.Sources[0].Source = 9 },
	}
	for name, mutate := range mutations {
		d := sampleData()
		mutate(d)
		if _, err := Encode(d); err == nil {
			t.Errorf("%s: encode accepted malformed data", name)
		}
	}
}

func TestWriteFileAtomicReplace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint")
	first := sampleData()
	if err := WriteFile(path, first); err != nil {
		t.Fatal(err)
	}
	second := sampleData()
	second.LSN = 99
	second.Sources[0].Epoch = 11
	if err := WriteFile(path, second); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.LSN != 99 || got.Sources[0].Epoch != 11 {
		t.Fatalf("replace did not take effect: %+v", got)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("temp file left behind")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: got %v, want ErrNotExist", err)
	}
}
