package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func writeAll(t *testing.T, fs FS, path string, data []byte) error {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func TestPassthroughNoRules(t *testing.T) {
	in := NewInjector(OS)
	path := filepath.Join(t.TempDir(), "f")
	if err := writeAll(t, in, path, []byte("hello")); err != nil {
		t.Fatalf("write through empty injector: %v", err)
	}
	got, err := in.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back: %q, %v", got, err)
	}
	if in.Ops() == 0 {
		t.Fatal("Ops() stayed zero over a write-intent open and a write")
	}
}

func TestRuleOpAndPathMatching(t *testing.T) {
	in := NewInjector(OS)
	dir := t.TempDir()
	in.Add(Rule{Op: OpWrite, Path: "target"})

	if err := writeAll(t, in, filepath.Join(dir, "other"), []byte("x")); err != nil {
		t.Fatalf("write to non-matching path faulted: %v", err)
	}
	err := writeAll(t, in, filepath.Join(dir, "target"), []byte("x"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("matching write: got %v, want ENOSPC", err)
	}
	// Times defaults to once: the same path writes fine afterwards.
	if err := writeAll(t, in, filepath.Join(dir, "target"), []byte("x")); err != nil {
		t.Fatalf("write after the rule was spent: %v", err)
	}
}

func TestNthAndTimes(t *testing.T) {
	in := NewInjector(OS)
	path := filepath.Join(t.TempDir(), "f")
	in.Add(Rule{Op: OpWrite, Nth: 2, Times: 2})

	f, err := in.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i, wantErr := range []bool{false, true, true, false} {
		_, err := f.Write([]byte("x"))
		if gotErr := err != nil; gotErr != wantErr {
			t.Fatalf("write %d: err=%v, want error=%v", i+1, err, wantErr)
		}
	}
}

func TestDefaultErrors(t *testing.T) {
	in := NewInjector(OS)
	dir := t.TempDir()

	in.Add(Rule{Op: OpOpen})
	_, err := in.OpenFile(filepath.Join(dir, "f"), os.O_WRONLY|os.O_CREATE, 0o644)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("open fault: got %v, want ENOSPC", err)
	}
	var pe *os.PathError
	if !errors.As(err, &pe) {
		t.Fatalf("open fault is not an *os.PathError: %v", err)
	}

	in.Add(Rule{Op: OpRename})
	if err := in.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("rename fault: got %v, want EIO", err)
	}

	custom := errors.New("boom")
	in.Add(Rule{Op: OpRemove, Err: custom})
	if err := in.Remove(filepath.Join(dir, "c")); !errors.Is(err, custom) {
		t.Fatalf("remove fault: got %v, want the override error", err)
	}
}

func TestPermanentErrorOverride(t *testing.T) {
	in := NewInjector(OS)
	in.Add(Rule{Op: OpWrite, Err: syscall.EROFS})
	err := writeAll(t, in, filepath.Join(t.TempDir(), "f"), []byte("x"))
	if !errors.Is(err, syscall.EROFS) {
		t.Fatalf("got %v, want EROFS", err)
	}
}

func TestModePartial(t *testing.T) {
	in := NewInjector(OS)
	path := filepath.Join(t.TempDir(), "f")
	in.Add(Rule{Op: OpWrite, Mode: ModePartial, Partial: 3})

	err := writeAll(t, in, path, []byte("hello world"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("partial write: got %v, want ENOSPC", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hel" {
		t.Fatalf("file holds %q, want the 3-byte torn prefix", got)
	}
}

func TestModeSilentShort(t *testing.T) {
	in := NewInjector(OS)
	path := filepath.Join(t.TempDir(), "f")
	in.Add(Rule{Op: OpWrite, Mode: ModeSilentShort, Partial: 3})

	if err := writeAll(t, in, path, []byte("hello world")); err != nil {
		t.Fatalf("silent short write must report success, got %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hel" {
		t.Fatalf("file holds %q, want the lying 3-byte prefix", got)
	}
}

func TestReadPathNeverFaulted(t *testing.T) {
	in := NewInjector(OS)
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	in.Add(Rule{Op: OpAny, Times: -1})

	if _, err := in.ReadFile(path); err != nil {
		t.Fatalf("ReadFile faulted: %v", err)
	}
	if _, err := in.ReadDir(dir); err != nil {
		t.Fatalf("ReadDir faulted: %v", err)
	}
	// A read-only open is not fault-eligible either...
	f, err := in.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		t.Fatalf("read-only open faulted: %v", err)
	}
	defer f.Close()
	// ...but its Sync still routes through the injector, so directory
	// fsyncs stay scriptable.
	if err := f.Sync(); err == nil {
		t.Fatal("Sync on an injected read-only handle did not fault under an OpAny rule")
	}
}

func TestDisarmAndClear(t *testing.T) {
	in := NewInjector(OS)
	path := filepath.Join(t.TempDir(), "f")
	r := in.Add(Rule{Op: OpWrite, Times: -1})
	in.Disarm(r)
	if err := writeAll(t, in, path, []byte("x")); err != nil {
		t.Fatalf("write after Disarm: %v", err)
	}

	in.Add(Rule{Op: OpWrite, Times: -1})
	in.Add(Rule{Op: OpSync, Times: -1})
	in.Clear()
	if err := writeAll(t, in, path, []byte("y")); err != nil {
		t.Fatalf("write after Clear: %v", err)
	}
}

func TestOpsCounterDeterministic(t *testing.T) {
	run := func() int64 {
		in := NewInjector(OS)
		path := filepath.Join(t.TempDir(), "f")
		f, err := in.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte("a"))
		f.Sync()
		f.Close()
		in.Rename(path, path+".2")
		in.Remove(path + ".2")
		return in.Ops()
	}
	a, b := run(), run()
	if a != b || a == 0 {
		t.Fatalf("op counts differ across identical runs: %d vs %d", a, b)
	}
}
