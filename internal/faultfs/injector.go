package faultfs

import (
	"os"
	"strings"
	"sync"
	"syscall"
)

// Op names one write-path operation kind the injector can fault.
type Op uint8

// Fault-eligible operation kinds. OpAny is a rule wildcard matching every
// kind; it never identifies a concrete operation.
const (
	OpAny Op = iota
	// OpOpen is a write-intent OpenFile (O_WRONLY, O_RDWR, O_CREATE,
	// O_TRUNC or O_APPEND set). Read-only opens pass through un-faulted.
	OpOpen
	// OpWrite is a File.Write.
	OpWrite
	// OpSync is a File.Sync — file or directory fsync.
	OpSync
	// OpRename is an FS.Rename.
	OpRename
	// OpRemove is an FS.Remove.
	OpRemove
	// OpTruncate is a File.Truncate.
	OpTruncate
)

// String names the operation kind.
func (op Op) String() string {
	switch op {
	case OpAny:
		return "any"
	case OpOpen:
		return "open"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpTruncate:
		return "truncate"
	default:
		return "unknown"
	}
}

// Mode selects how a firing rule corrupts its operation.
type Mode uint8

const (
	// ModeFail makes the operation a no-op that returns the rule's error.
	ModeFail Mode = iota
	// ModePartial (writes only; ModeFail elsewhere) lets the first Partial
	// bytes reach the file, then returns the rule's error — a torn write
	// whose caller knows it failed.
	ModePartial
	// ModeSilentShort (writes only; ModeFail elsewhere) lets the first
	// Partial bytes reach the file but reports complete success — a lying
	// write. Only layers that re-read what they wrote (fsatomic.WriteFile,
	// the WAL header create path) can detect it, so test scripts restrict
	// this mode to paths with read-back verification.
	ModeSilentShort
)

// Rule is one scripted failpoint. Rules are pure data, so a fault script is
// reproducible from its literal (or from fuzz input bytes) with no hidden
// state: the same program against the same script faults the same operation.
type Rule struct {
	// Op is the operation kind to match; OpAny matches every kind.
	Op Op
	// Path, when non-empty, restricts the rule to operations whose path
	// contains it as a substring (renames match on either path).
	Path string
	// Nth is the 1-based matching occurrence to start firing on, counted
	// from when the rule was added. Zero means the first.
	Nth int
	// Times is how many matching occurrences to fire on from Nth onward.
	// Zero means once; negative means every one until the rule is removed.
	Times int
	// Mode selects the corruption applied.
	Mode Mode
	// Partial is the byte count let through by ModePartial/ModeSilentShort.
	Partial int
	// Err overrides the returned error; nil selects ENOSPC for open/write
	// and EIO for the rest — both classified transient by the service.
	Err error

	seen  int
	fired int
}

func (r *Rule) errFor(op Op, path string) error {
	err := r.Err
	if err == nil {
		switch op {
		case OpOpen, OpWrite:
			err = syscall.ENOSPC
		default:
			err = syscall.EIO
		}
	}
	return &os.PathError{Op: "faultfs " + op.String(), Path: path, Err: err}
}

type fault struct {
	mode    Mode
	partial int
	err     error
}

// Injector is an FS that forwards every operation to an inner filesystem
// (the real one, normally) unless a scripted Rule fires, in which case the
// operation fails — or lands torn — exactly as scripted. It also counts
// every fault-eligible operation, which lets a chaos sweep first measure a
// workload's write-site count with no rules armed and then re-run it once
// per site with `Rule{Nth: n}`. Safe for concurrent use.
type Injector struct {
	inner FS

	mu    sync.Mutex
	ops   int64
	rules []*Rule
}

// NewInjector wraps inner (nil selects OS) with an empty script.
func NewInjector(inner FS) *Injector {
	if inner == nil {
		inner = OS
	}
	return &Injector{inner: inner}
}

// Add arms a failpoint. The returned handle can be passed to Remove.
func (in *Injector) Add(r Rule) *Rule {
	in.mu.Lock()
	defer in.mu.Unlock()
	rule := r
	rule.seen, rule.fired = 0, 0
	in.rules = append(in.rules, &rule)
	return &rule
}

// Disarm removes one rule from the script; unknown handles are ignored.
func (in *Injector) Disarm(rule *Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, r := range in.rules {
		if r == rule {
			in.rules = append(in.rules[:i], in.rules[i+1:]...)
			return
		}
	}
}

// Clear disarms every rule — "the fault condition goes away".
func (in *Injector) Clear() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = nil
}

// Ops returns how many fault-eligible operations have been observed.
func (in *Injector) Ops() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// check records one eligible operation and returns the fault to apply, if
// any. At most one rule fires per operation (first match wins).
func (in *Injector) check(op Op, path string) *fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ops++
	for _, r := range in.rules {
		if r.Op != OpAny && r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		r.seen++
		nth := r.Nth
		if nth <= 0 {
			nth = 1
		}
		times := r.Times
		if times == 0 {
			times = 1
		}
		if r.seen < nth || (times > 0 && r.fired >= times) {
			continue
		}
		r.fired++
		return &fault{mode: r.Mode, partial: r.Partial, err: r.errFor(op, path)}
	}
	return nil
}

// OpenFile implements FS. Write-intent opens are fault-eligible; read-only
// opens pass through, but the returned handle still routes Sync/Write
// through the injector (directory fsyncs stay faultable).
func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if flag&(os.O_WRONLY|os.O_RDWR|os.O_CREATE|os.O_TRUNC|os.O_APPEND) != 0 {
		if flt := in.check(OpOpen, name); flt != nil {
			return nil, flt.err
		}
	}
	f, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, path: name, f: f}, nil
}

// Rename implements FS.
func (in *Injector) Rename(oldpath, newpath string) error {
	if flt := in.check(OpRename, oldpath+" -> "+newpath); flt != nil {
		return flt.err
	}
	return in.inner.Rename(oldpath, newpath)
}

// Remove implements FS.
func (in *Injector) Remove(name string) error {
	if flt := in.check(OpRemove, name); flt != nil {
		return flt.err
	}
	return in.inner.Remove(name)
}

// ReadFile implements FS (read path: never faulted).
func (in *Injector) ReadFile(name string) ([]byte, error) { return in.inner.ReadFile(name) }

// ReadDir implements FS (read path: never faulted).
func (in *Injector) ReadDir(name string) ([]os.DirEntry, error) { return in.inner.ReadDir(name) }

// injFile routes a file's write-path operations back through the injector.
type injFile struct {
	in   *Injector
	path string
	f    File
}

func (f *injFile) Write(p []byte) (int, error) {
	flt := f.in.check(OpWrite, f.path)
	if flt == nil {
		return f.f.Write(p)
	}
	n := flt.partial
	if n < 0 {
		n = 0
	}
	if n > len(p) {
		n = len(p)
	}
	switch flt.mode {
	case ModePartial:
		if n > 0 {
			if m, err := f.f.Write(p[:n]); err != nil {
				return m, flt.err
			}
		}
		return n, flt.err
	case ModeSilentShort:
		if n > 0 {
			f.f.Write(p[:n])
		}
		return len(p), nil
	default:
		return 0, flt.err
	}
}

func (f *injFile) Sync() error {
	if flt := f.in.check(OpSync, f.path); flt != nil {
		return flt.err
	}
	return f.f.Sync()
}

func (f *injFile) Truncate(size int64) error {
	if flt := f.in.check(OpTruncate, f.path); flt != nil {
		return flt.err
	}
	return f.f.Truncate(size)
}

func (f *injFile) Seek(offset int64, whence int) (int64, error) { return f.f.Seek(offset, whence) }

func (f *injFile) Close() error { return f.f.Close() }
