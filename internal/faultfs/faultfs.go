// Package faultfs is the filesystem seam under the durability stack. The
// wal, ckpt and fsatomic packages perform every write-path file operation —
// open, write, fsync, rename, remove, truncate — through the FS interface,
// which has exactly two implementations: OS, a zero-overhead passthrough to
// the real filesystem used in production, and Injector, a deterministic
// scripted fault injector used by tests to place a failure at any single
// write site (ENOSPC after N bytes, fsync error, torn write, rename failure,
// silent short write) and observe how the layers above degrade and heal.
//
// The seam deliberately covers only the write path: reads (ReadFile,
// ReadDir, read-only opens) always pass through un-faulted, because the
// robustness machinery under test is about surviving failed writes, and
// read-side damage is already exercised by the byte-corruption fuzzers.
package faultfs

import (
	"io"
	"os"
)

// File is the subset of *os.File the durability layer writes through.
type File interface {
	io.Writer
	// Sync flushes the file to stable storage.
	Sync() error
	// Close closes the file.
	Close() error
	// Truncate changes the file's size.
	Truncate(size int64) error
	// Seek sets the offset for the next Write.
	Seek(offset int64, whence int) (int64, error)
}

// FS is the write-path filesystem interface. All methods follow the os
// package's semantics and error conventions (*os.PathError / *os.LinkError
// wrapping syscall errnos).
type FS interface {
	// OpenFile opens name with the given flags, creating it if requested.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// ReadFile reads the whole file (read path: never faulted).
	ReadFile(name string) ([]byte, error)
	// ReadDir lists a directory (read path: never faulted).
	ReadDir(name string) ([]os.DirEntry, error)
}

// OS is the production filesystem: a direct passthrough to the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
