// Package fp provides the low-level parallel primitives the parallel local
// push engines are built on: atomic float64 arithmetic with before-value
// semantics, lock-free frontier queues, and a chunked parallel-for executor.
//
// These are the Go equivalents of the hardware intrinsics the paper relies on
// (CUDA atomicAdd / x86 lock xadd via CilkPlus): an atomic addition to a
// 64-bit word that returns the value observed immediately before the addition,
// which is the primitive that makes local duplicate detection possible
// (Algorithm 4, line 14).
package fp

import (
	"math"
	"sync/atomic"
)

// AtomicAddFloat64 atomically adds delta to *addr and returns the value that
// was stored immediately before the addition (the "before-value").
//
// The addition is implemented with a compare-and-swap loop over the IEEE-754
// bit pattern, which is the standard technique on architectures without a
// native float atomic add. The before-value is exact: it is the value the
// successful CAS observed, so concurrent callers each see a distinct
// linearization point.
func AtomicAddFloat64(addr *uint64, delta float64) (before float64) {
	for {
		oldBits := atomic.LoadUint64(addr)
		old := math.Float64frombits(oldBits)
		newBits := math.Float64bits(old + delta)
		if atomic.CompareAndSwapUint64(addr, oldBits, newBits) {
			return old
		}
	}
}

// LoadFloat64 atomically loads the float64 stored at addr.
func LoadFloat64(addr *uint64) float64 {
	return math.Float64frombits(atomic.LoadUint64(addr))
}

// StoreFloat64 atomically stores v at addr.
func StoreFloat64(addr *uint64, v float64) {
	atomic.StoreUint64(addr, math.Float64bits(v))
}

// SwapFloat64 atomically stores v at addr and returns the previous value.
func SwapFloat64(addr *uint64, v float64) float64 {
	return math.Float64frombits(atomic.SwapUint64(addr, math.Float64bits(v)))
}

// Float64Vector is a slice of float64 values that supports both plain and
// atomic access. The estimate vector P and residual vector R of the local
// update scheme are Float64Vectors: the sequential engine uses the plain
// accessors, the parallel engines use the atomic ones.
//
// The zero value is an empty vector; use NewFloat64Vector or Resize to size
// it. Values are stored as raw IEEE-754 bit patterns so that atomic uint64
// operations apply directly.
type Float64Vector struct {
	bits []uint64
}

// NewFloat64Vector returns a vector of n zeros.
func NewFloat64Vector(n int) *Float64Vector {
	return &Float64Vector{bits: make([]uint64, n)}
}

// Len returns the number of elements.
func (v *Float64Vector) Len() int { return len(v.bits) }

// Resize grows the vector to length n, preserving existing values. Shrinking
// is not supported; if n <= Len() the vector is unchanged.
func (v *Float64Vector) Resize(n int) {
	if n <= len(v.bits) {
		return
	}
	grown := make([]uint64, n)
	copy(grown, v.bits)
	v.bits = grown
}

// Get returns element i without synchronization.
func (v *Float64Vector) Get(i int) float64 { return math.Float64frombits(v.bits[i]) }

// Set stores x at element i without synchronization.
func (v *Float64Vector) Set(i int, x float64) { v.bits[i] = math.Float64bits(x) }

// Add adds delta to element i without synchronization and returns the
// previous value.
func (v *Float64Vector) Add(i int, delta float64) (before float64) {
	before = math.Float64frombits(v.bits[i])
	v.bits[i] = math.Float64bits(before + delta)
	return before
}

// AtomicGet atomically loads element i.
func (v *Float64Vector) AtomicGet(i int) float64 { return LoadFloat64(&v.bits[i]) }

// AtomicSet atomically stores x at element i.
func (v *Float64Vector) AtomicSet(i int, x float64) { StoreFloat64(&v.bits[i], x) }

// AtomicAdd atomically adds delta to element i and returns the before-value.
func (v *Float64Vector) AtomicAdd(i int, delta float64) (before float64) {
	return AtomicAddFloat64(&v.bits[i], delta)
}

// AtomicSwap atomically replaces element i with x and returns the previous value.
func (v *Float64Vector) AtomicSwap(i int, x float64) float64 {
	return SwapFloat64(&v.bits[i], x)
}

// AtomicSub atomically subtracts delta from element i and returns the before-value.
func (v *Float64Vector) AtomicSub(i int, delta float64) (before float64) {
	return AtomicAddFloat64(&v.bits[i], -delta)
}

// Fill sets every element to x (not atomic).
func (v *Float64Vector) Fill(x float64) {
	b := math.Float64bits(x)
	for i := range v.bits {
		v.bits[i] = b
	}
}

// CopyFrom copies the contents of src into v. The vectors must have the same
// length.
func (v *Float64Vector) CopyFrom(src *Float64Vector) {
	copy(v.bits, src.bits)
}

// Clone returns a deep copy of the vector.
func (v *Float64Vector) Clone() *Float64Vector {
	out := &Float64Vector{bits: make([]uint64, len(v.bits))}
	copy(out.bits, v.bits)
	return out
}

// Snapshot returns the values as a plain []float64 copy.
func (v *Float64Vector) Snapshot() []float64 {
	out := make([]float64, len(v.bits))
	for i, b := range v.bits {
		out[i] = math.Float64frombits(b)
	}
	return out
}

// SumAbs returns the L1 norm of the vector (not atomic; intended for use
// between push iterations or in tests).
func (v *Float64Vector) SumAbs() float64 {
	var s float64
	for _, b := range v.bits {
		s += math.Abs(math.Float64frombits(b))
	}
	return s
}

// MaxAbs returns the L∞ norm of the vector.
func (v *Float64Vector) MaxAbs() float64 {
	var m float64
	for _, b := range v.bits {
		if a := math.Abs(math.Float64frombits(b)); a > m {
			m = a
		}
	}
	return m
}
