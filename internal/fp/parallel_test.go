package fp

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		for _, n := range []int{0, 1, 2, 7, 100, 1001} {
			visited := make([]int64, n)
			For(n, workers, func(i int) {
				atomic.AddInt64(&visited[i], 1)
			})
			for i, v := range visited {
				if v != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, v)
				}
			}
		}
	}
}

func TestForDynamicCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		for _, grain := range []int{0, 1, 16, 1000} {
			const n = 777
			visited := make([]int64, n)
			ForDynamic(n, workers, grain, func(i int) {
				atomic.AddInt64(&visited[i], 1)
			})
			for i, v := range visited {
				if v != 1 {
					t.Fatalf("workers=%d grain=%d: index %d visited %d times", workers, grain, i, v)
				}
			}
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, 4, func(int) { called = true })
	For(-5, 4, func(int) { called = true })
	ForDynamic(0, 4, 8, func(int) { called = true })
	if called {
		t.Fatal("body must not be called for n <= 0")
	}
}

func TestReduceFloat64(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		got := ReduceFloat64(100, workers, func(i int) float64 { return float64(i) })
		if got != 4950 {
			t.Fatalf("workers=%d: sum = %v, want 4950", workers, got)
		}
	}
	if got := ReduceFloat64(0, 4, func(int) float64 { return 1 }); got != 0 {
		t.Fatalf("empty reduce = %v", got)
	}
}

// Property: parallel reduce equals sequential sum for arbitrary inputs.
func TestReduceMatchesSequential(t *testing.T) {
	f := func(vals []float64) bool {
		clean := make([]float64, len(vals))
		for i, v := range vals {
			// Avoid NaN/Inf which break float equality; magnitude-limit to
			// keep association order differences negligible (we compare with
			// tolerance below).
			if v != v || v > 1e6 || v < -1e6 {
				v = 1
			}
			clean[i] = v
		}
		var want float64
		for _, v := range clean {
			want += v
		}
		got := ReduceFloat64(len(clean), 4, func(i int) float64 { return clean[i] })
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1e-6*(1+absf(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers must be >= 1")
	}
}
