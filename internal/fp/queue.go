package fp

import (
	"sync"
	"sync/atomic"
)

// Queue is a bounded, lock-free, multi-producer append-only vertex queue used
// as the frontier queue FQ of the parallel push. Producers claim slots with a
// single atomic fetch-add; the queue is drained (read) only after all
// producers have synchronized, which matches the iteration barrier of
// Algorithm 3/4.
//
// The capacity is fixed at construction; Enqueue on a full queue falls back to
// a mutex-protected overflow slice so correctness never depends on the bound.
type Queue struct {
	items []int32
	next  int64

	overflowMu sync.Mutex
	overflow   []int32
}

// NewQueue returns a queue with the given capacity hint.
func NewQueue(capacity int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue{items: make([]int32, capacity)}
}

// Enqueue appends v. Safe for concurrent use.
func (q *Queue) Enqueue(v int32) {
	slot := atomic.AddInt64(&q.next, 1) - 1
	if int(slot) < len(q.items) {
		q.items[slot] = v
		return
	}
	q.overflowMu.Lock()
	q.overflow = append(q.overflow, v)
	q.overflowMu.Unlock()
}

// Len returns the number of enqueued items. Only meaningful after producers
// have finished.
func (q *Queue) Len() int {
	n := int(atomic.LoadInt64(&q.next))
	if n > len(q.items) {
		n = len(q.items)
	}
	return n + len(q.overflow)
}

// Drain returns the queued items. The returned slice aliases internal storage
// when no overflow occurred; callers must not retain it across a Reset.
// Only call after all producers have finished.
func (q *Queue) Drain() []int32 {
	n := int(atomic.LoadInt64(&q.next))
	if n > len(q.items) {
		n = len(q.items)
	}
	if len(q.overflow) == 0 {
		return q.items[:n]
	}
	out := make([]int32, 0, n+len(q.overflow))
	out = append(out, q.items[:n]...)
	out = append(out, q.overflow...)
	return out
}

// Reset clears the queue for reuse, growing the backing array if a previous
// round overflowed.
func (q *Queue) Reset() {
	if len(q.overflow) > 0 {
		q.items = make([]int32, (len(q.items)+len(q.overflow))*2)
		q.overflow = nil
	}
	atomic.StoreInt64(&q.next, 0)
}

// BitSet is a fixed-size concurrent bit set over vertex ids. It backs the
// "unique enqueue" path of the vanilla parallel push (Algorithm 3), where a
// vertex must be added to the next frontier at most once: TestAndSet is the
// global synchronization the paper's local duplicate detection removes.
type BitSet struct {
	words []uint64
}

// NewBitSet returns a bit set able to hold n bits.
func NewBitSet(n int) *BitSet {
	return &BitSet{words: make([]uint64, (n+63)/64)}
}

// Len returns the capacity in bits.
func (b *BitSet) Len() int { return len(b.words) * 64 }

// Resize grows the bit set to hold at least n bits.
func (b *BitSet) Resize(n int) {
	need := (n + 63) / 64
	if need <= len(b.words) {
		return
	}
	grown := make([]uint64, need)
	copy(grown, b.words)
	b.words = grown
}

// TestAndSet atomically sets bit i and reports whether it was already set.
func (b *BitSet) TestAndSet(i int) (wasSet bool) {
	word := &b.words[i>>6]
	mask := uint64(1) << uint(i&63)
	for {
		old := atomic.LoadUint64(word)
		if old&mask != 0 {
			return true
		}
		if atomic.CompareAndSwapUint64(word, old, old|mask) {
			return false
		}
	}
}

// Test reports whether bit i is set.
func (b *BitSet) Test(i int) bool {
	return atomic.LoadUint64(&b.words[i>>6])&(uint64(1)<<uint(i&63)) != 0
}

// Set sets bit i without returning the previous value.
func (b *BitSet) Set(i int) {
	word := &b.words[i>>6]
	mask := uint64(1) << uint(i&63)
	for {
		old := atomic.LoadUint64(word)
		if old&mask != 0 {
			return
		}
		if atomic.CompareAndSwapUint64(word, old, old|mask) {
			return
		}
	}
}

// Clear unsets bit i.
func (b *BitSet) Clear(i int) {
	word := &b.words[i>>6]
	mask := ^(uint64(1) << uint(i&63))
	for {
		old := atomic.LoadUint64(word)
		if atomic.CompareAndSwapUint64(word, old, old&mask) {
			return
		}
	}
}

// Reset clears every bit.
func (b *BitSet) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Count returns the number of set bits (not atomic across words).
func (b *BitSet) Count() int {
	n := 0
	for _, w := range b.words {
		n += popcount(w)
	}
	return n
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
