package fp

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestQueueSequential(t *testing.T) {
	q := NewQueue(4)
	for i := int32(0); i < 4; i++ {
		q.Enqueue(i)
	}
	if q.Len() != 4 {
		t.Fatalf("Len = %d, want 4", q.Len())
	}
	got := append([]int32(nil), q.Drain()...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i := int32(0); i < 4; i++ {
		if got[i] != i {
			t.Fatalf("Drain = %v", got)
		}
	}
}

func TestQueueOverflow(t *testing.T) {
	q := NewQueue(2)
	for i := int32(0); i < 10; i++ {
		q.Enqueue(i)
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d, want 10", q.Len())
	}
	got := append([]int32(nil), q.Drain()...)
	if len(got) != 10 {
		t.Fatalf("Drain len = %d, want 10", len(got))
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i := int32(0); i < 10; i++ {
		if got[i] != i {
			t.Fatalf("Drain missing %d: %v", i, got)
		}
	}
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("Len after Reset = %d", q.Len())
	}
	// After reset the capacity should have grown enough to avoid overflow.
	for i := int32(0); i < 10; i++ {
		q.Enqueue(i)
	}
	if q.Len() != 10 {
		t.Fatalf("Len after refill = %d", q.Len())
	}
}

func TestQueueConcurrentNoLoss(t *testing.T) {
	const producers = 8
	const per = 5000
	q := NewQueue(producers * per)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Enqueue(int32(p*per + i))
			}
		}(p)
	}
	wg.Wait()
	got := q.Drain()
	if len(got) != producers*per {
		t.Fatalf("lost items: %d != %d", len(got), producers*per)
	}
	seen := make(map[int32]bool, len(got))
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
}

func TestQueueNewQueueMinimumCapacity(t *testing.T) {
	q := NewQueue(0)
	q.Enqueue(7)
	if q.Len() != 1 || q.Drain()[0] != 7 {
		t.Fatal("queue with zero capacity hint should still work")
	}
}

func TestBitSetBasics(t *testing.T) {
	b := NewBitSet(130)
	if b.Len() < 130 {
		t.Fatalf("Len = %d, want >= 130", b.Len())
	}
	if b.Test(5) {
		t.Fatal("bit 5 should start clear")
	}
	if b.TestAndSet(5) {
		t.Fatal("first TestAndSet should report clear")
	}
	if !b.TestAndSet(5) {
		t.Fatal("second TestAndSet should report set")
	}
	if !b.Test(5) {
		t.Fatal("bit 5 should be set")
	}
	b.Clear(5)
	if b.Test(5) {
		t.Fatal("bit 5 should be clear again")
	}
	b.Set(129)
	if !b.Test(129) {
		t.Fatal("bit 129 should be set")
	}
	if b.Count() != 1 {
		t.Fatalf("Count = %d, want 1", b.Count())
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatalf("Count after Reset = %d", b.Count())
	}
}

func TestBitSetResize(t *testing.T) {
	b := NewBitSet(10)
	b.Set(3)
	b.Resize(1000)
	if !b.Test(3) {
		t.Fatal("resize lost bit 3")
	}
	b.Set(999)
	if !b.Test(999) {
		t.Fatal("bit 999 not set after resize")
	}
}

// Exactly one concurrent TestAndSet per bit may win.
func TestBitSetTestAndSetExactlyOneWinner(t *testing.T) {
	const bits = 64
	const contenders = 16
	b := NewBitSet(bits)
	wins := make([][]bool, bits)
	for i := range wins {
		wins[i] = make([]bool, contenders)
	}
	var wg sync.WaitGroup
	for c := 0; c < contenders; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < bits; i++ {
				if !b.TestAndSet(i) {
					wins[i][c] = true
				}
			}
		}(c)
	}
	wg.Wait()
	for i := 0; i < bits; i++ {
		winners := 0
		for c := 0; c < contenders; c++ {
			if wins[i][c] {
				winners++
			}
		}
		if winners != 1 {
			t.Fatalf("bit %d had %d winners, want exactly 1", i, winners)
		}
	}
}

// Property: Count equals the number of distinct indices set.
func TestBitSetCountProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		b := NewBitSet(1 << 16)
		distinct := make(map[int]bool)
		for _, r := range raw {
			i := int(r)
			b.Set(i)
			distinct[i] = true
		}
		return b.Count() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPopcount(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 1, 3: 2, 0xFF: 8, 1 << 63: 1, ^uint64(0): 64}
	for x, want := range cases {
		if got := popcount(x); got != want {
			t.Errorf("popcount(%#x) = %d, want %d", x, got, want)
		}
	}
}
