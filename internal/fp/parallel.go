package fp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the default degree of parallelism used by the
// parallel engines when the caller does not specify one.
func DefaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// ClampWorkers normalizes a requested worker count: values <= 0 select
// GOMAXPROCS (DefaultWorkers).
func ClampWorkers(w int) int {
	if w <= 0 {
		return DefaultWorkers()
	}
	return w
}

// For runs body(i) for every i in [0, n) using up to workers goroutines.
// Iterations are distributed in contiguous chunks to keep per-vertex state
// access cache friendly, mirroring the grain-size scheduling of the CilkPlus
// parallel for the paper uses.
//
// If workers <= 1 or n is small, the loop runs inline on the calling
// goroutine; this keeps the sequential baselines free of goroutine overhead.
func For(n, workers int, body func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				body(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ForDynamic runs body(i) for every i in [0, n) using up to workers
// goroutines with dynamic (work-stealing-like) scheduling: workers repeatedly
// claim fixed-size blocks of iterations with an atomic counter. This is the
// scheduler used for frontier loops whose per-item cost is highly skewed
// (e.g. pushing a high-degree frontier vertex next to low-degree ones).
func ForDynamic(n, workers, grain int, body func(i int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	if workers <= 1 || n <= grain {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(atomic.AddInt64(&next, int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					body(i)
				}
			}
		}()
	}
	wg.Wait()
}

// ReduceFloat64 computes sum over i in [0, n) of body(i) in parallel.
func ReduceFloat64(n, workers int, body func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	if workers <= 1 || n == 1 {
		var s float64
		for i := 0; i < n; i++ {
			s += body(i)
		}
		return s
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	partial := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var s float64
			for i := lo; i < hi; i++ {
				s += body(i)
			}
			partial[w] = s
		}(w, lo, hi)
	}
	wg.Wait()
	var s float64
	for _, p := range partial {
		s += p
	}
	return s
}
