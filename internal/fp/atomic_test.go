package fp

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestAtomicAddFloat64Sequential(t *testing.T) {
	var cell uint64
	StoreFloat64(&cell, 1.5)
	before := AtomicAddFloat64(&cell, 2.25)
	if before != 1.5 {
		t.Fatalf("before = %v, want 1.5", before)
	}
	if got := LoadFloat64(&cell); got != 3.75 {
		t.Fatalf("value = %v, want 3.75", got)
	}
}

func TestAtomicAddFloat64Concurrent(t *testing.T) {
	const (
		goroutines = 8
		perG       = 10000
		delta      = 0.5
	)
	var cell uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				AtomicAddFloat64(&cell, delta)
			}
		}()
	}
	wg.Wait()
	want := float64(goroutines*perG) * delta
	if got := LoadFloat64(&cell); got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

// Before-values must form a permutation of partial sums: each concurrent
// adder observes a distinct linearization point, which is the property local
// duplicate detection relies on (exactly one adder sees the crossing of the
// threshold).
func TestAtomicAddBeforeValuesDistinct(t *testing.T) {
	const n = 2000
	var cell uint64
	results := make([]float64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = AtomicAddFloat64(&cell, 1)
		}(i)
	}
	wg.Wait()
	seen := make(map[float64]bool, n)
	for _, r := range results {
		if seen[r] {
			t.Fatalf("duplicate before-value %v", r)
		}
		seen[r] = true
	}
	for i := 0; i < n; i++ {
		if !seen[float64(i)] {
			t.Fatalf("missing before-value %d", i)
		}
	}
}

func TestSwapFloat64(t *testing.T) {
	var cell uint64
	StoreFloat64(&cell, 7)
	if old := SwapFloat64(&cell, -2); old != 7 {
		t.Fatalf("old = %v, want 7", old)
	}
	if got := LoadFloat64(&cell); got != -2 {
		t.Fatalf("value = %v, want -2", got)
	}
}

func TestFloat64VectorBasics(t *testing.T) {
	v := NewFloat64Vector(4)
	if v.Len() != 4 {
		t.Fatalf("Len = %d, want 4", v.Len())
	}
	v.Set(2, 3.5)
	if got := v.Get(2); got != 3.5 {
		t.Fatalf("Get(2) = %v", got)
	}
	before := v.Add(2, 1.5)
	if before != 3.5 || v.Get(2) != 5 {
		t.Fatalf("Add: before=%v value=%v", before, v.Get(2))
	}
	before = v.AtomicAdd(2, -5)
	if before != 5 || v.AtomicGet(2) != 0 {
		t.Fatalf("AtomicAdd: before=%v value=%v", before, v.AtomicGet(2))
	}
	v.AtomicSet(0, 9)
	if v.Get(0) != 9 {
		t.Fatalf("AtomicSet failed: %v", v.Get(0))
	}
	if old := v.AtomicSwap(0, 1); old != 9 || v.Get(0) != 1 {
		t.Fatalf("AtomicSwap: old=%v value=%v", old, v.Get(0))
	}
	if old := v.AtomicSub(0, 1); old != 1 || v.Get(0) != 0 {
		t.Fatalf("AtomicSub: old=%v value=%v", old, v.Get(0))
	}
}

func TestFloat64VectorResizePreserves(t *testing.T) {
	v := NewFloat64Vector(2)
	v.Set(0, 1)
	v.Set(1, 2)
	v.Resize(5)
	if v.Len() != 5 {
		t.Fatalf("Len = %d, want 5", v.Len())
	}
	if v.Get(0) != 1 || v.Get(1) != 2 || v.Get(4) != 0 {
		t.Fatalf("resize lost values: %v", v.Snapshot())
	}
	v.Resize(3) // shrink is a no-op
	if v.Len() != 5 {
		t.Fatalf("shrink should be a no-op, Len = %d", v.Len())
	}
}

func TestFloat64VectorCloneAndCopy(t *testing.T) {
	v := NewFloat64Vector(3)
	v.Set(0, -1)
	v.Set(1, 2)
	v.Set(2, -3)
	c := v.Clone()
	c.Set(0, 100)
	if v.Get(0) != -1 {
		t.Fatal("Clone is not a deep copy")
	}
	w := NewFloat64Vector(3)
	w.CopyFrom(v)
	if w.Get(2) != -3 {
		t.Fatal("CopyFrom failed")
	}
	if got, want := v.SumAbs(), 6.0; got != want {
		t.Fatalf("SumAbs = %v, want %v", got, want)
	}
	if got, want := v.MaxAbs(), 3.0; got != want {
		t.Fatalf("MaxAbs = %v, want %v", got, want)
	}
}

func TestFloat64VectorFill(t *testing.T) {
	v := NewFloat64Vector(10)
	v.Fill(2.5)
	for i := 0; i < v.Len(); i++ {
		if v.Get(i) != 2.5 {
			t.Fatalf("element %d = %v", i, v.Get(i))
		}
	}
}

// Property: the plain and atomic accessors observe the same storage.
func TestVectorPlainAtomicAgree(t *testing.T) {
	f := func(vals []float64) bool {
		v := NewFloat64Vector(len(vals))
		for i, x := range vals {
			if math.IsNaN(x) {
				x = 0
			}
			v.Set(i, x)
			if v.AtomicGet(i) != x {
				return false
			}
			v.AtomicSet(i, x*2)
			if v.Get(i) != x*2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AtomicAdd is equivalent to sequential addition when applied from
// one goroutine in sequence.
func TestAtomicAddMatchesSequentialSum(t *testing.T) {
	f := func(deltas []float64) bool {
		var cell uint64
		var want float64
		for _, d := range deltas {
			if math.IsNaN(d) || math.IsInf(d, 0) {
				d = 1
			}
			got := AtomicAddFloat64(&cell, d)
			if got != want {
				return false
			}
			want += d
		}
		return LoadFloat64(&cell) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
