package vc

import (
	"fmt"

	"dynppr/internal/graph"
	"dynppr/internal/push"
)

// PPREngine runs the batch-dynamic PPR local push expressed in the
// vertex-centric abstraction (the "Ligra" baseline of the evaluation). It
// satisfies push.Engine, so the harness can drop it in wherever the
// specialized engines run.
//
// Each push round is one VertexMap (self-update: take the residual, credit
// the estimate) followed by one EdgeMap (neighbor propagation with
// framework-level duplicate elimination). Because the abstraction is bulk
// synchronous, the engine cannot read residual increments that arrive during
// the same superstep (no eager propagation) and must pay the shared-bitmap
// synchronization for frontier deduplication (no local duplicate detection).
type PPREngine struct {
	workers int
}

// NewPPREngine returns the vertex-centric PPR engine. workers <= 0 selects
// GOMAXPROCS.
func NewPPREngine(workers int) *PPREngine {
	return &PPREngine{workers: workers}
}

// Name implements push.Engine.
func (e *PPREngine) Name() string { return fmt.Sprintf("ligra-w%d", e.workers) }

// Run implements push.Engine.
func (e *PPREngine) Run(st *push.State, candidates []graph.VertexID) {
	// The framework applies self-updates inside concurrent supersteps with
	// no per-round frontier hook, so this baseline cannot track estimate
	// dirtiness cheaply; poison the set so snapshot publication falls back
	// to a full copy instead of trusting an incomplete delta.
	st.MarkAllEstimatesDirty()
	e.runPhase(st, candidates, +1)
	e.runPhase(st, candidates, -1)
}

func (e *PPREngine) runPhase(st *push.State, candidates []graph.VertexID, sign int) {
	g := st.Graph()
	fw := NewFramework(g, e.workers)
	n := g.NumVertices()
	alpha := st.Alpha()
	eps := st.Epsilon()

	cond := func(r float64) bool {
		if sign > 0 {
			return r > eps
		}
		return r < -eps
	}

	frontier := NewSparseSubset(n, st.ActiveVertices(candidates, sign))
	// pushed[u] carries the residual taken from u during the VertexMap of the
	// current superstep, for use by the following EdgeMap.
	pushed := make([]float64, n)

	for !frontier.Empty() {
		st.Counters.ObserveIteration(frontier.Size())
		members := int64(frontier.Size())
		st.Counters.AddPushes(members)

		// Self-update as a VertexMap.
		fw.VertexMap(frontier, func(u graph.VertexID) bool {
			ru := st.SwapResidual(u, 0)
			pushed[u] = ru
			st.AddEstimate(u, alpha*ru)
			return false
		})

		// Neighbor propagation as an EdgeMap over in-edges of the frontier.
		next := fw.EdgeMap(frontier,
			func(u, v graph.VertexID) bool {
				inc := (1 - alpha) * pushed[u] / float64(g.OutDegree(v))
				after := st.AtomicAddResidual(v, inc) + inc
				st.Counters.AddPropagations(1)
				st.Counters.AddAtomicAdds(1)
				return cond(after)
			},
			func(v graph.VertexID) bool { return true },
		)
		st.Counters.AddEnqueues(int64(next.Size()))
		frontier = next
	}
}
