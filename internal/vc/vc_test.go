package vc

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"dynppr/internal/gen"
	"dynppr/internal/graph"
	"dynppr/internal/power"
	"dynppr/internal/push"
)

func TestVertexSubsetSparse(t *testing.T) {
	s := NewSparseSubset(10, []graph.VertexID{3, 5, 3, 7})
	if s.Empty() {
		t.Fatal("subset should not be empty")
	}
	if s.Size() != 3 {
		t.Fatalf("Size = %d, want 3 (duplicates collapse)", s.Size())
	}
	members := s.Members()
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	want := []graph.VertexID{3, 5, 7}
	for i := range want {
		if members[i] != want[i] {
			t.Fatalf("Members = %v", members)
		}
	}
	if !s.Contains(5) || s.Contains(4) || s.Contains(100) || s.Contains(-1) {
		t.Fatal("Contains wrong")
	}
	if !NewSparseSubset(10, nil).Empty() {
		t.Fatal("empty sparse subset should be Empty")
	}
}

func TestVertexSubsetDense(t *testing.T) {
	s := NewDenseSubset(8, func(v graph.VertexID) bool { return v%2 == 0 })
	if s.Size() != 4 {
		t.Fatalf("Size = %d, want 4", s.Size())
	}
	if !s.Contains(0) || s.Contains(1) || s.Contains(9) {
		t.Fatal("Contains wrong for dense subset")
	}
	if len(s.Members()) != 4 {
		t.Fatal("Members wrong for dense subset")
	}
}

func TestVertexMap(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	fw := NewFramework(g, 2)
	if fw.Graph() != g {
		t.Fatal("Graph() must return the wrapped graph")
	}
	in := NewSparseSubset(g.NumVertices(), []graph.VertexID{0, 1, 2, 3})
	var visited int64
	out := fw.VertexMap(in, func(v graph.VertexID) bool {
		atomic.AddInt64(&visited, 1)
		return v >= 2
	})
	if visited != 4 {
		t.Fatalf("visited %d vertices, want 4", visited)
	}
	if out.Size() != 2 || !out.Contains(2) || !out.Contains(3) {
		t.Fatalf("VertexMap output wrong: %v", out.Members())
	}
}

// EdgeMap must apply the update exactly once per in-edge of the frontier,
// in both sparse and dense representations.
func TestEdgeMapCoversInEdgesOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.New(40)
	for i := 0; i < 300; i++ {
		_, _ = g.AddEdge(graph.VertexID(rng.Intn(40)), graph.VertexID(rng.Intn(40)))
	}
	fw := NewFramework(g, 4)

	run := func(frontierIDs []graph.VertexID, forceDense bool) map[[2]graph.VertexID]int64 {
		if forceDense {
			fw.denseDivisor = 1 // always switch to the dense representation
		} else {
			fw.denseDivisor = 1 << 30 // never switch: stay sparse
		}
		counts := make(map[[2]graph.VertexID]int64)
		var mu sync.Mutex
		frontier := NewSparseSubset(g.NumVertices(), frontierIDs)
		fw.EdgeMap(frontier, func(u, v graph.VertexID) bool {
			mu.Lock()
			counts[[2]graph.VertexID{u, v}]++
			mu.Unlock()
			return false
		}, func(graph.VertexID) bool { return true })
		return counts
	}

	frontier := []graph.VertexID{1, 5, 9, 13, 17, 21}
	for _, dense := range []bool{false, true} {
		counts := run(frontier, dense)
		// Expected: one call per (u, v) with u in frontier, v in Nin(u).
		want := 0
		for _, u := range frontier {
			want += g.InDegree(u)
		}
		got := 0
		for pair, c := range counts {
			if c != 1 {
				t.Fatalf("dense=%v: edge %v updated %d times", dense, pair, c)
			}
			u, v := pair[0], pair[1]
			if !g.HasEdge(v, u) {
				t.Fatalf("dense=%v: update on non-edge %v", dense, pair)
			}
			got++
		}
		if got != want {
			t.Fatalf("dense=%v: %d updates, want %d", dense, got, want)
		}
	}
}

// EdgeMap output must contain exactly the vertices for which update returned
// true, without duplicates.
func TestEdgeMapFrontierGeneration(t *testing.T) {
	// Star: many frontier vertices share in-neighbor 0.
	edges := []graph.Edge{}
	for i := 1; i <= 6; i++ {
		edges = append(edges, graph.Edge{U: 0, V: graph.VertexID(i)})
	}
	g := graph.FromEdges(edges)
	fw := NewFramework(g, 4)
	frontier := NewSparseSubset(g.NumVertices(), []graph.VertexID{1, 2, 3, 4, 5, 6})
	out := fw.EdgeMap(frontier, func(u, v graph.VertexID) bool { return true },
		func(graph.VertexID) bool { return true })
	if out.Size() != 1 || !out.Contains(0) {
		t.Fatalf("EdgeMap frontier = %v, want just vertex 0", out.Members())
	}
}

func TestPPREngineName(t *testing.T) {
	if NewPPREngine(4).Name() != "ligra-w4" {
		t.Fatal("engine name wrong")
	}
}

// The vertex-centric engine must produce the same ε-guarantee as the
// specialized engines, both from a cold start and across dynamic updates.
func TestPPREngineMatchesOracle(t *testing.T) {
	edges, err := gen.EdgeList(gen.Config{Model: gen.RMAT, Vertices: 200, Edges: 1500, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.FromEdges(edges[:1000])
	source := g.TopDegreeVertices(1)[0]
	cfg := push.Config{Alpha: 0.15, Epsilon: 1e-4}
	st, err := push.NewState(g, source, cfg)
	if err != nil {
		t.Fatal(err)
	}
	engine := NewPPREngine(4)
	engine.Run(st, []graph.VertexID{source})
	if !st.Converged() {
		t.Fatal("not converged after cold start")
	}

	var touched []graph.VertexID
	for _, ins := range edges[1000:] {
		if changed, _ := st.ApplyInsert(ins.U, ins.V); changed {
			touched = append(touched, ins.U)
		}
	}
	engine.Run(st, touched)
	if !st.Converged() {
		t.Fatal("not converged after updates")
	}
	if st.InvariantError() > 1e-8 {
		t.Fatalf("invariant error %v", st.InvariantError())
	}
	oracle, err := power.ReverseGraph(g, source, power.Options{Alpha: cfg.Alpha, Tolerance: 1e-13, MaxIterations: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if worst := power.MaxAbsDiff(st.Estimates(), oracle); worst > cfg.Epsilon {
		t.Fatalf("max error %v exceeds epsilon", worst)
	}
}

// The dense/sparse switch must not change results: force each representation
// and compare against the specialized sequential engine.
func TestPPREngineDenseSparseAgree(t *testing.T) {
	g, err := gen.Generate(gen.Config{Model: gen.BarabasiAlbert, Vertices: 150, Edges: 2000, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	source := g.TopDegreeVertices(1)[0]
	cfg := push.Config{Alpha: 0.15, Epsilon: 1e-4}

	reference, err := push.NewState(g.Clone(), source, cfg)
	if err != nil {
		t.Fatal(err)
	}
	push.NewSequential().Run(reference, []graph.VertexID{source})

	st, err := push.NewState(g.Clone(), source, cfg)
	if err != nil {
		t.Fatal(err)
	}
	NewPPREngine(4).Run(st, []graph.VertexID{source})

	// Both are ε-approximations of the same vector, so they differ by at most 2ε.
	if d := power.MaxAbsDiff(reference.Estimates(), st.Estimates()); d > 2*cfg.Epsilon {
		t.Fatalf("vertex-centric result differs from sequential by %v", d)
	}
}
