// Package vc is a minimal Ligra-style vertex-centric graph processing
// framework — the "general graph processing system" baseline of the paper's
// evaluation. It offers the two primitives of Ligra (Shun & Blelloch):
//
//   - VertexMap: apply a function to every vertex of a subset.
//   - EdgeMap: apply a function to every in-edge of a subset's vertices,
//     gathering a new subset of vertices for which the function returned true,
//     with the classic sparse (frontier-driven) vs. dense (topology-driven)
//     representation switch.
//
// The PPR implementation on top of it (ppr.go) follows the bulk-synchronous
// vertex-centric style: it cannot apply eager propagation (there is no way to
// read a residual mid-superstep) nor local duplicate detection (frontier
// deduplication is the framework's job), which is exactly the limitation the
// paper attributes to Ligra's lower performance.
package vc

import (
	"dynppr/internal/fp"
	"dynppr/internal/graph"
)

// VertexSubset is a set of vertices, stored sparsely (id list) or densely
// (bitmap), mirroring Ligra's dual representation.
type VertexSubset struct {
	n       int
	sparse  []graph.VertexID
	dense   []bool
	isDense bool
}

// NewSparseSubset builds a subset from an explicit id list. Duplicate ids are
// kept (they are removed when the subset is densified or used by EdgeMap with
// deduplication).
func NewSparseSubset(n int, ids []graph.VertexID) *VertexSubset {
	return &VertexSubset{n: n, sparse: append([]graph.VertexID(nil), ids...)}
}

// NewDenseSubset builds a subset from a membership predicate over all ids.
func NewDenseSubset(n int, member func(graph.VertexID) bool) *VertexSubset {
	d := make([]bool, n)
	for v := 0; v < n; v++ {
		d[v] = member(graph.VertexID(v))
	}
	return &VertexSubset{n: n, dense: d, isDense: true}
}

// Empty reports whether the subset has no members.
func (s *VertexSubset) Empty() bool { return s.Size() == 0 }

// Size returns the number of member vertices (duplicates in a sparse subset
// count once).
func (s *VertexSubset) Size() int {
	if s.isDense {
		n := 0
		for _, b := range s.dense {
			if b {
				n++
			}
		}
		return n
	}
	seen := make(map[graph.VertexID]struct{}, len(s.sparse))
	for _, v := range s.sparse {
		seen[v] = struct{}{}
	}
	return len(seen)
}

// Members returns the member ids (deduplicated, unspecified order).
func (s *VertexSubset) Members() []graph.VertexID {
	if s.isDense {
		var out []graph.VertexID
		for v, b := range s.dense {
			if b {
				out = append(out, graph.VertexID(v))
			}
		}
		return out
	}
	seen := make(map[graph.VertexID]struct{}, len(s.sparse))
	out := make([]graph.VertexID, 0, len(s.sparse))
	for _, v := range s.sparse {
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// Contains reports membership of v.
func (s *VertexSubset) Contains(v graph.VertexID) bool {
	if int(v) >= s.n || v < 0 {
		return false
	}
	if s.isDense {
		return s.dense[v]
	}
	for _, x := range s.sparse {
		if x == v {
			return true
		}
	}
	return false
}

// Framework bundles a graph with the execution parameters of the primitives.
type Framework struct {
	g       *graph.Graph
	workers int
	// denseThreshold is the Ligra heuristic: switch EdgeMap to the dense
	// (scan all vertices) representation when the frontier plus its out-edges
	// exceed |E|/denseDivisor.
	denseDivisor int
}

// NewFramework wraps a dynamic graph. workers <= 0 selects GOMAXPROCS.
func NewFramework(g *graph.Graph, workers int) *Framework {
	if workers <= 0 {
		workers = fp.DefaultWorkers()
	}
	return &Framework{g: g, workers: workers, denseDivisor: 20}
}

// Graph returns the underlying graph.
func (f *Framework) Graph() *graph.Graph { return f.g }

// VertexMap applies fn to every member of the subset (in parallel) and
// returns the subset of members for which fn returned true.
func (f *Framework) VertexMap(s *VertexSubset, fn func(graph.VertexID) bool) *VertexSubset {
	members := s.Members()
	keep := make([]bool, len(members))
	fp.For(len(members), f.workers, func(i int) {
		keep[i] = fn(members[i])
	})
	var out []graph.VertexID
	for i, k := range keep {
		if k {
			out = append(out, members[i])
		}
	}
	return NewSparseSubset(f.g.NumVertices(), out)
}

// EdgeMap applies update(src, dst) to every in-edge (dst -> src is the edge
// direction used by pull-style algorithms; here we follow the PPR push and
// map over the in-neighbors of each frontier member): for every frontier
// vertex u and every in-neighbor v of u, update(u, v) is called. Vertices v
// for which update returned true AND cond(v) holds are gathered into the
// output frontier, deduplicated by the framework with an atomic bitmap — the
// generic synchronization the paper's local duplicate detection avoids.
func (f *Framework) EdgeMap(s *VertexSubset, update func(u, v graph.VertexID) bool, cond func(graph.VertexID) bool) *VertexSubset {
	members := s.Members()
	// Ligra representation switch: count frontier out-work.
	work := len(members)
	for _, u := range members {
		work += f.g.InDegree(u)
	}
	if f.g.NumEdges() > 0 && work > f.g.NumEdges()/f.denseDivisor {
		return f.edgeMapDense(members, update, cond)
	}
	return f.edgeMapSparse(members, update, cond)
}

func (f *Framework) edgeMapSparse(members []graph.VertexID, update func(u, v graph.VertexID) bool, cond func(graph.VertexID) bool) *VertexSubset {
	n := f.g.NumVertices()
	queue := fp.NewQueue(len(members) * 4)
	seen := fp.NewBitSet(n)
	fp.ForDynamic(len(members), f.workers, 8, func(i int) {
		u := members[i]
		for _, v := range f.g.InNeighbors(u) {
			if update(u, v) && cond(v) {
				if !seen.TestAndSet(int(v)) {
					queue.Enqueue(int32(v))
				}
			}
		}
	})
	ids := queue.Drain()
	out := make([]graph.VertexID, len(ids))
	for i, v := range ids {
		out[i] = graph.VertexID(v)
	}
	return NewSparseSubset(n, out)
}

func (f *Framework) edgeMapDense(members []graph.VertexID, update func(u, v graph.VertexID) bool, cond func(graph.VertexID) bool) *VertexSubset {
	n := f.g.NumVertices()
	inFrontier := make([]bool, n)
	for _, u := range members {
		inFrontier[u] = true
	}
	dense := make([]bool, n)
	// Dense direction: iterate over all vertices v and their out-neighbors u;
	// if u is in the frontier, apply the update for edge (u, v-in-neighbor).
	fp.For(n, f.workers, func(vi int) {
		v := graph.VertexID(vi)
		if !cond(v) {
			// cond is checked before applying updates in dense mode as in
			// Ligra; updates that would target v are still applied for
			// correctness of the PPR residuals, so we only skip the frontier
			// membership, not the update itself.
			for _, u := range f.g.OutNeighbors(v) {
				if int(u) < n && inFrontier[u] {
					update(u, v)
				}
			}
			return
		}
		added := false
		for _, u := range f.g.OutNeighbors(v) {
			if int(u) < n && inFrontier[u] {
				if update(u, v) {
					added = true
				}
			}
		}
		if added && cond(v) {
			dense[vi] = true
		}
	})
	return &VertexSubset{n: n, dense: dense, isDense: true}
}
