package wal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"dynppr/internal/faultfs"
	"dynppr/internal/graph"
	"dynppr/internal/stream"
)

func batchOf(n int) stream.Batch {
	b := make(stream.Batch, n)
	for i := range b {
		b[i] = stream.Update{U: graph.VertexID(i), V: graph.VertexID(i + 1), Op: stream.Insert}
	}
	return b
}

func noTmp(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

// reopenRecords closes nothing; it re-reads the log file with the tolerant
// scanner and returns the LSNs that would be replayed after a crash.
func reopenLSNs(t *testing.T, path string) []uint64 {
	t.Helper()
	_, recs, _, err := ScanFile(path)
	if err != nil {
		t.Fatalf("scan after fault: %v", err)
	}
	lsns := make([]uint64, len(recs))
	for i, r := range recs {
		lsns[i] = r.LSN
	}
	return lsns
}

// TestAppendENOSPCRollsBack scripts an out-of-space write on the third
// append and checks the failed record leaves no bytes behind: recovery sees
// exactly the acknowledged mutations.
func TestAppendENOSPCRollsBack(t *testing.T) {
	for _, mode := range []struct {
		name string
		rule faultfs.Rule
	}{
		{"full-fail", faultfs.Rule{Op: faultfs.OpWrite, Nth: 3}},
		{"torn-partial", faultfs.Rule{Op: faultfs.OpWrite, Nth: 3, Mode: faultfs.ModePartial, Partial: 5}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "wal")
			in := faultfs.NewInjector(faultfs.OS)
			l, _, err := OpenOrCreate(path, 0, Options{FS: in})
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()

			// Appends 1 and 2 (write ops 2 and 3 after the header write)
			// would hit Nth wrong; count from rule add time instead.
			in.Add(mode.rule)
			var acked []uint64
			for i := 0; i < 5; i++ {
				lsn, err := l.AppendBatch(batchOf(i + 1))
				if err != nil {
					if !errors.Is(err, syscall.ENOSPC) {
						t.Fatalf("append %d: got %v, want ENOSPC", i, err)
					}
					continue
				}
				acked = append(acked, lsn)
			}
			if len(acked) != 4 {
				t.Fatalf("acked %d appends, want 4 (one faulted)", len(acked))
			}
			got := reopenLSNs(t, path)
			if len(got) != len(acked) {
				t.Fatalf("recovery sees %d records %v, acked %v", len(got), got, acked)
			}
			for i := range got {
				if got[i] != acked[i] {
					t.Fatalf("recovery LSNs %v != acked %v", got, acked)
				}
			}
			if err := l.SelfCheck(); err != nil {
				t.Fatalf("self-check after rollback: %v", err)
			}
		})
	}
}

// TestTornAppendWithFailedRollbackTruncatedOnReopen is the crash shape the
// tolerant scanner exists for: the append tears AND the rollback truncate
// fails, leaving garbage bytes at the tail. Reopening must truncate exactly
// the torn suffix and keep every acknowledged record.
func TestTornAppendWithFailedRollbackTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	in := faultfs.NewInjector(faultfs.OS)
	l, _, err := OpenOrCreate(path, 0, Options{FS: in})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBatch(batchOf(3)); err != nil {
		t.Fatal(err)
	}
	ackedSize := l.Size()

	// Tear the next append mid-record and make the rollback truncate fail
	// too, so the torn bytes stay on disk — the process "crashes" here.
	in.Add(faultfs.Rule{Op: faultfs.OpWrite, Mode: faultfs.ModePartial, Partial: 6})
	in.Add(faultfs.Rule{Op: faultfs.OpTruncate})
	if _, err := l.AppendBatch(batchOf(2)); err == nil {
		t.Fatal("torn append reported success")
	}
	in.Clear()
	l.f.Close() // simulate the crash: no Close() flush path

	if fi, err := os.Stat(path); err != nil || fi.Size() != ackedSize+6 {
		t.Fatalf("expected %d torn bytes on disk (size %d, acked %d)", 6, fi.Size(), ackedSize)
	}

	l2, recs, err := OpenOrCreate(path, 0, Options{})
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	defer l2.Close()
	if len(recs) != 1 || recs[0].LSN != 0 {
		t.Fatalf("recovered records %+v, want the single acked batch", recs)
	}
	if l2.Size() != ackedSize {
		t.Fatalf("reopen did not truncate the torn tail: size %d, want %d", l2.Size(), ackedSize)
	}
	// The log is append-ready again at the right LSN.
	if lsn, err := l2.AppendBatch(batchOf(1)); err != nil || lsn != 1 {
		t.Fatalf("append after torn-tail truncation: lsn %d, %v", lsn, err)
	}
	if err := l2.SelfCheck(); err != nil {
		t.Fatalf("self-check after recovery append: %v", err)
	}
}

// TestAppendFsyncErrorRollsBack: with SyncAlways, a failed fsync must not
// leave the (possibly already-buffered) record behind, or recovery would
// resurrect a mutation the caller was told failed.
func TestAppendFsyncErrorRollsBack(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	in := faultfs.NewInjector(faultfs.OS)
	l, _, err := OpenOrCreate(path, 0, Options{Sync: SyncAlways, FS: in})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.AppendBatch(batchOf(1)); err != nil {
		t.Fatal(err)
	}

	in.Add(faultfs.Rule{Op: faultfs.OpSync, Path: "wal"})
	if _, err := l.AppendBatch(batchOf(2)); !errors.Is(err, syscall.EIO) {
		t.Fatalf("append under fsync fault: got %v, want EIO", err)
	}
	in.Clear()

	if got := reopenLSNs(t, path); len(got) != 1 || got[0] != 0 {
		t.Fatalf("recovery sees %v, want only LSN 0", got)
	}
	// Healthy again after the fault clears, at the LSN the caller expects.
	if lsn, err := l.AppendBatch(batchOf(1)); err != nil || lsn != 1 {
		t.Fatalf("append after fault cleared: lsn %d, %v", lsn, err)
	}
	if err := l.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestRotateRenameFailureKeepsOldLog: a failed rotation must leave the old
// log valid and complete (the checkpoint has not replaced it yet as the
// recovery source of truth until the WAL rotates) and clean up its temp file.
func TestRotateRenameFailureKeepsOldLog(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	in := faultfs.NewInjector(faultfs.OS)
	l, _, err := OpenOrCreate(path, 0, Options{FS: in})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 3; i++ {
		if _, err := l.AppendBatch(batchOf(i + 1)); err != nil {
			t.Fatal(err)
		}
	}

	in.Add(faultfs.Rule{Op: faultfs.OpRename})
	if err := l.Rotate(l.NextLSN()); err == nil {
		t.Fatal("rotate under rename fault reported success")
	}
	in.Clear()
	noTmp(t, dir)

	if got := reopenLSNs(t, path); len(got) != 3 {
		t.Fatalf("old log after failed rotate: %v, want 3 records", got)
	}
	// The unrotated log must still accept appends at the right LSN.
	if lsn, err := l.AppendBatch(batchOf(1)); err != nil || lsn != 3 {
		t.Fatalf("append after failed rotate: lsn %d, %v", lsn, err)
	}

	// The fault clears; rotation now succeeds and self-checks.
	if err := l.Rotate(l.NextLSN()); err != nil {
		t.Fatalf("rotate after fault cleared: %v", err)
	}
	if err := l.SelfCheck(); err != nil {
		t.Fatalf("self-check after rotate: %v", err)
	}
	if l.BaseLSN() != 4 || l.Size() != headerSize {
		t.Fatalf("rotated log base %d size %d, want base 4, header only", l.BaseLSN(), l.Size())
	}
}

// TestCreateSilentShortHeaderCaught: a lying short write of the fresh log's
// header is exactly the damage the create-path read-back exists to catch —
// an unverified 16-byte prefix would relabel every subsequent record's LSN.
func TestCreateSilentShortHeaderCaught(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	in := faultfs.NewInjector(faultfs.OS)
	in.Add(faultfs.Rule{Op: faultfs.OpWrite, Path: ".tmp", Mode: faultfs.ModeSilentShort, Partial: 10})

	_, _, err := OpenOrCreate(path, 7, Options{FS: in})
	if err == nil {
		t.Fatal("create with a lying header write reported success")
	}
	if !strings.Contains(err.Error(), "verify") {
		t.Fatalf("error does not name verification: %v", err)
	}
	noTmp(t, dir)
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("log file exists after failed create: %v", err)
	}
}
