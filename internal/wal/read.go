package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// scan parses a full log image. It returns the baseLSN, the records of the
// longest valid prefix, and the byte length of that prefix. An unparseable
// suffix extending to end-of-image is reported by validSize < len(data)
// (torn tail, no error); a damaged record with valid data after it — or a
// checksummed payload that does not decode — returns ErrCorrupt.
func scan(data []byte) (base uint64, recs []Record, validSize int64, err error) {
	if len(data) < headerSize {
		return 0, nil, 0, fmt.Errorf("%w: %d-byte file is shorter than the header", ErrCorrupt, len(data))
	}
	if string(data[:8]) != magic {
		return 0, nil, 0, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:8])
	}
	if got := binary.LittleEndian.Uint32(data[16:headerSize]); got != crc32.Checksum(data[:16], castagnoli) {
		return 0, nil, 0, fmt.Errorf("%w: header checksum mismatch (baseLSN untrustworthy)", ErrCorrupt)
	}
	base = binary.LittleEndian.Uint64(data[8:16])
	off := int64(headerSize)
	lsn := base
	for {
		rem := int64(len(data)) - off
		if rem == 0 {
			return base, recs, off, nil
		}
		if rem < frameSize {
			return base, recs, off, nil // torn: incomplete frame
		}
		length := int64(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if length == 0 || length > MaxRecordSize {
			// A length value the writer never produces. If the frame header
			// is the last thing in the file this is a torn header flush;
			// with anything after it, the bytes beyond may be acknowledged
			// records whose boundary we can no longer find (e.g. a bit flip
			// in this very length field) — refuse the file rather than
			// silently truncating them away.
			if rem == frameSize {
				return base, recs, off, nil
			}
			return base, recs, off, fmt.Errorf(
				"%w: implausible length prefix %d at offset %d with %d bytes following (lsn %d)",
				ErrCorrupt, length, off, rem-frameSize, lsn)
		}
		if frameSize+length > rem {
			// A plausible length whose payload runs past end-of-file: the
			// classic torn append — truncate.
			return base, recs, off, nil
		}
		payload := data[off+frameSize : off+frameSize+length]
		if crc32.Checksum(payload, castagnoli) != crc {
			if off+frameSize+length == int64(len(data)) {
				return base, recs, off, nil // torn: bit-damaged final record
			}
			return base, recs, off, fmt.Errorf("%w: bad checksum at offset %d (lsn %d)", ErrCorrupt, off, lsn)
		}
		rec, derr := decodePayload(lsn, payload)
		if derr != nil {
			return base, recs, off, fmt.Errorf("%w: offset %d (lsn %d): %v", ErrCorrupt, off, lsn, derr)
		}
		rec.Offset = off
		rec.EncodedLen = int(frameSize + length)
		recs = append(recs, rec)
		off += frameSize + length
		lsn++
	}
}

// ReadAll strictly parses a complete log image: junk bytes, truncated tails
// and bad checksums are all errors, never a silent truncation and never a
// panic. It is the surface the fuzz harness drives.
func ReadAll(data []byte) (base uint64, recs []Record, err error) {
	base, recs, valid, err := scan(data)
	if err != nil {
		return 0, nil, err
	}
	if valid != int64(len(data)) {
		return 0, nil, fmt.Errorf("wal: torn tail: %d trailing bytes do not form a record", int64(len(data))-valid)
	}
	return base, recs, nil
}

// ScanFile reads the log at path tolerantly: records of the longest valid
// prefix are returned together with that prefix's byte length, a torn tail
// is not an error, and mid-file damage is ErrCorrupt. The file is not
// modified. A missing file returns os.ErrNotExist.
func ScanFile(path string) (base uint64, recs []Record, validSize int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, 0, err
	}
	return scan(data)
}
