package wal

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dynppr/internal/graph"
	"dynppr/internal/stream"
)

func testBatch(i int) stream.Batch {
	return stream.Batch{
		{U: graph.VertexID(i), V: graph.VertexID(i + 1), Op: stream.Insert},
		{U: graph.VertexID(i + 1), V: graph.VertexID(i), Op: stream.Delete},
		{U: 0, V: graph.VertexID(1 << 20), Op: stream.Insert},
	}
}

// appendMixed journals n records cycling through the three record types and
// returns what was appended, in order.
func appendMixed(t *testing.T, l *Log, n int) []Record {
	t.Helper()
	var want []Record
	for i := 0; i < n; i++ {
		var (
			lsn uint64
			err error
			rec Record
		)
		switch i % 3 {
		case 0:
			b := testBatch(i)
			lsn, err = l.AppendBatch(b)
			rec = Record{Type: RecordBatch, Batch: b}
		case 1:
			lsn, err = l.AppendAddSource(graph.VertexID(i))
			rec = Record{Type: RecordAddSource, Source: graph.VertexID(i)}
		default:
			lsn, err = l.AppendRemoveSource(graph.VertexID(i))
			rec = Record{Type: RecordRemoveSource, Source: graph.VertexID(i)}
		}
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		rec.LSN = lsn
		want = append(want, rec)
	}
	return want
}

// sameRecords compares decoded content, ignoring the file-position fields.
func sameRecords(got, want []Record) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		g, w := got[i], want[i]
		g.Offset, g.EncodedLen = 0, 0
		w.Offset, w.EncodedLen = 0, 0
		if g.LSN != w.LSN || g.Type != w.Type || g.Source != w.Source || !reflect.DeepEqual(g.Batch, w.Batch) {
			return false
		}
	}
	return true
}

func TestAppendReopenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, recs, err := OpenOrCreate(path, 7, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || l.BaseLSN() != 7 || l.NextLSN() != 7 {
		t.Fatalf("fresh log state wrong: %d recs, base %d, next %d", len(recs), l.BaseLSN(), l.NextLSN())
	}
	want := appendMixed(t, l, 9)
	if want[0].LSN != 7 || l.NextLSN() != 16 {
		t.Fatalf("LSN accounting wrong: first %d, next %d", want[0].LSN, l.NextLSN())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got, err := OpenOrCreate(path, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !sameRecords(got, want) {
		t.Fatalf("reopen mismatch:\n got %+v\nwant %+v", got, want)
	}
	if l2.BaseLSN() != 7 || l2.NextLSN() != 16 {
		t.Fatalf("reopened LSNs wrong: base %d next %d", l2.BaseLSN(), l2.NextLSN())
	}
	// The strict reader agrees with the tolerant one on an intact file.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	base, strict, err := ReadAll(data)
	if err != nil || base != 7 || !sameRecords(strict, want) {
		t.Fatalf("ReadAll disagrees: base %d err %v", base, err)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	for name, tear := range map[string]func([]byte) []byte{
		"incomplete-frame":  func(b []byte) []byte { return append(b, 0x01, 0x02, 0x03) },
		"length-past-eof":   func(b []byte) []byte { return append(b, 0xff, 0x00, 0x00, 0x00, 1, 2, 3, 4, 9) },
		"zero-length-frame": func(b []byte) []byte { return append(b, make([]byte, frameSize)...) },
		"bad-crc-last-record": func(b []byte) []byte {
			b[len(b)-1] ^= 0x40 // flip a payload bit of the final record
			return b
		},
		"half-record": func(b []byte) []byte { return b[:len(b)-3] },
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal.log")
			l, _, err := OpenOrCreate(path, 0, Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := appendMixed(t, l, 5)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tear(append([]byte(nil), data...)), 0o644); err != nil {
				t.Fatal(err)
			}

			// The strict reader must refuse the torn image.
			torn, _ := os.ReadFile(path)
			if _, _, err := ReadAll(torn); err == nil {
				t.Fatal("ReadAll accepted a torn tail")
			}

			l2, got, err := OpenOrCreate(path, 0, Options{})
			if err != nil {
				t.Fatalf("open with torn tail: %v", err)
			}
			wantSurviving := want
			if name == "bad-crc-last-record" || name == "half-record" {
				wantSurviving = want[:4]
			}
			if !sameRecords(got, wantSurviving) {
				t.Fatalf("surviving records wrong: got %d want %d", len(got), len(wantSurviving))
			}
			// Appending after truncation works and the file is clean again.
			if _, err := l2.AppendAddSource(99); err != nil {
				t.Fatal(err)
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			clean, _ := os.ReadFile(path)
			if _, recs, err := ReadAll(clean); err != nil || len(recs) != len(wantSurviving)+1 {
				t.Fatalf("post-truncation append not clean: %d recs, %v", len(recs), err)
			}
		})
	}
}

func TestMidFileCorruptionRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, err := OpenOrCreate(path, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := appendMixed(t, l, 6)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload bit of the SECOND record: acknowledged data follows it,
	// so this is corruption, not a torn tail.
	_, all, _ := ReadAll(data)
	if len(all) != len(recs) {
		t.Fatal("setup failed")
	}
	off := all[1].Offset + frameSize
	data[off] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenOrCreate(path, 0, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open of mid-file corruption: got %v, want ErrCorrupt", err)
	}
	if _, _, _, err := ScanFile(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ScanFile of mid-file corruption: got %v, want ErrCorrupt", err)
	}
}

func TestRotate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, _, err := OpenOrCreate(path, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendMixed(t, l, 4)
	if err := l.Rotate(3); err == nil {
		t.Fatal("rotate below NextLSN must be refused")
	}
	if err := l.Rotate(l.NextLSN()); err != nil {
		t.Fatal(err)
	}
	if l.BaseLSN() != 4 || l.NextLSN() != 4 || l.Size() != headerSize {
		t.Fatalf("post-rotate state wrong: base %d next %d size %d", l.BaseLSN(), l.NextLSN(), l.Size())
	}
	// Appends continue with monotone LSNs in the fresh file.
	lsn, err := l.AppendAddSource(1)
	if err != nil || lsn != 4 {
		t.Fatalf("post-rotate append: lsn %d err %v", lsn, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := OpenOrCreate(path, 0, Options{})
	if err != nil || len(recs) != 1 || recs[0].LSN != 4 {
		t.Fatalf("rotated file reload wrong: %d recs err %v", len(recs), err)
	}
}

func TestHeaderTornRecreates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, []byte("DPPRWAL1\x01\x02"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, recs, err := OpenOrCreate(path, 42, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(recs) != 0 || l.BaseLSN() != 42 {
		t.Fatalf("torn header not recreated at createBase: %d recs base %d", len(recs), l.BaseLSN())
	}
}

// TestHeaderCRCProtectsBaseLSN: a bit flip in the baseLSN would silently
// relabel every record's LSN (recovery would skip or replay the wrong
// suffix), so the header carries its own checksum and damage refuses the
// file instead.
func TestHeaderCRCProtectsBaseLSN(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, err := OpenOrCreate(path, 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendMixed(t, l, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	data[9] ^= 0x01 // flip a baseLSN bit; records are untouched
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadAll(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadAll with flipped baseLSN: got %v, want ErrCorrupt", err)
	}
	if _, _, err := OpenOrCreate(path, 0, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with flipped baseLSN: got %v, want ErrCorrupt", err)
	}
}

func TestBadMagicRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	data := make([]byte, headerSize)
	copy(data, "NOTAWAL0")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenOrCreate(path, 0, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: got %v, want ErrCorrupt", err)
	}
}

// TestImplausibleLengthWithSuffixIsCorruption: a length value the writer
// never produces (0 or beyond MaxRecordSize), followed by any further bytes,
// cannot be a torn tail — e.g. a bit flip in an acknowledged record's length
// field would make every later record unreachable — so scan must refuse the
// file instead of silently truncating acknowledged data away.
func TestImplausibleLengthWithSuffixIsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, err := OpenOrCreate(path, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendMixed(t, l, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	for name, frame := range map[string]uint32{
		"zero-length":      0,
		"oversized-length": MaxRecordSize + 1,
	} {
		for suffixName, suffix := range map[string][]byte{
			"small-suffix": make([]byte, 3),
			"big-suffix":   make([]byte, frameSize+MaxRecordSize+1),
		} {
			t.Run(name+"/"+suffixName, func(t *testing.T) {
				bad := append([]byte(nil), data...)
				var hdr [frameSize]byte
				binary.LittleEndian.PutUint32(hdr[:], frame)
				bad = append(bad, hdr[:]...)
				bad = append(bad, suffix...)
				if _, _, err := ReadAll(bad); !errors.Is(err, ErrCorrupt) {
					t.Fatalf("ReadAll: got %v, want ErrCorrupt", err)
				}
				if _, _, _, err := scan(bad); !errors.Is(err, ErrCorrupt) {
					t.Fatalf("scan: got %v, want ErrCorrupt", err)
				}
			})
		}
	}
	// Flipping an acknowledged record's length field mid-file must likewise
	// refuse, not truncate.
	_, recs, err := ReadAll(data)
	if err != nil || len(recs) != 2 {
		t.Fatal("setup failed")
	}
	flip := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(flip[recs[0].Offset:], 0)
	if _, _, _, err := scan(flip); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped mid-file length: got %v, want ErrCorrupt", err)
	}
}

func TestOversizedLengthPrefixIsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, err := OpenOrCreate(path, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendMixed(t, l, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	var frame [frameSize]byte
	binary.LittleEndian.PutUint32(frame[:], uint32(MaxRecordSize+1))
	data = append(data, frame[:]...)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, err := OpenOrCreate(path, 0, Options{})
	if err != nil || len(recs) != 2 {
		t.Fatalf("oversized tail frame: %d recs, %v", len(recs), err)
	}
}
