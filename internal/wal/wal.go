// Package wal implements the write-ahead log of the durable serving layer: an
// append-only file of length-prefixed, CRC32-checksummed records journaling
// every mutation a Service accepts — edge-update batches and source
// add/remove — so that accumulated state survives a crash.
//
// # File layout
//
// A log file starts with a 20-byte header
//
//	magic   [8]byte  "DPPRWAL1" (format version baked into the last byte)
//	baseLSN uint64   little-endian
//	crc     uint32   little-endian, CRC-32C of the preceding 16 bytes
//
// followed by zero or more records
//
//	length  uint32   little-endian, payload bytes
//	crc     uint32   little-endian, CRC-32C (Castagnoli) of the payload
//	payload [length]byte
//
// The LSN (log sequence number) of a record is implicit: baseLSN plus its
// index in the file. Checkpoints record the LSN their state covers; recovery
// replays only records with a higher LSN, and checkpointing rotates the log
// to a fresh file whose baseLSN equals the covered LSN, so the two files can
// never disagree about which updates a record index refers to.
//
// # Torn tails versus corruption
//
// A crash can tear the final record: the process died between the write and
// the (optional) fsync, leaving a short or bit-damaged tail. Open treats any
// unparseable suffix that extends to end-of-file as a torn tail and truncates
// it — those updates were never acknowledged as durable. A damaged record
// that is *followed by further bytes* cannot be a torn tail (appends are
// strictly sequential), so Open refuses the file instead of silently
// dropping acknowledged records. ReadAll is the strict variant used by the
// fuzz harness and tooling: every anomaly, torn or not, is an error.
package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"dynppr/internal/faultfs"
	"dynppr/internal/fsatomic"
	"dynppr/internal/graph"
	"dynppr/internal/stream"
)

const (
	magic      = "DPPRWAL1"
	headerSize = 8 + 8 + 4 // magic + baseLSN + header CRC
	// frameSize is the per-record framing overhead: length + crc.
	frameSize = 4 + 4
	// MaxRecordSize bounds one record's payload; larger length prefixes are
	// treated as damage. 64 MiB holds tens of millions of updates, far
	// beyond any batch the write pipeline accepts.
	MaxRecordSize = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a damaged record that cannot be a torn tail (valid data
// follows it) or a record whose checksum passes but whose payload does not
// decode. Recovery must not silently skip such records: they were
// acknowledged as durable.
var ErrCorrupt = errors.New("wal: corrupt record")

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged mutation
	// survives power loss. This is the durable default.
	SyncAlways SyncPolicy = iota
	// SyncNone never fsyncs on append (only on rotation and close): the OS
	// decides when pages reach disk. An OS crash can lose the most recent
	// acknowledged mutations, but never corrupts the recoverable prefix.
	SyncNone
)

// String names the policy ("always"/"none").
func (p SyncPolicy) String() string {
	if p == SyncNone {
		return "none"
	}
	return "always"
}

// Options configure a Log.
type Options struct {
	// Sync is the fsync policy for appends.
	Sync SyncPolicy
	// FS overrides the filesystem the log writes through; nil selects the
	// real one. Tests inject write-path faults here.
	FS faultfs.FS
}

func (o Options) fsys() faultfs.FS {
	if o.FS != nil {
		return o.FS
	}
	return faultfs.OS
}

// RecordType distinguishes the journaled mutation kinds.
type RecordType uint8

const (
	// RecordBatch journals one edge-update batch, no-op updates included,
	// so replay reproduces the original ApplyBatch call exactly.
	RecordBatch RecordType = 1
	// RecordAddSource journals the start of tracking for a source.
	RecordAddSource RecordType = 2
	// RecordRemoveSource journals the end of tracking for a source.
	RecordRemoveSource RecordType = 3
)

// Record is one decoded log entry.
type Record struct {
	// LSN is the record's log sequence number (baseLSN + index in file).
	LSN uint64
	// Type selects which of the payload fields is meaningful.
	Type RecordType
	// Batch is the update batch of a RecordBatch.
	Batch stream.Batch
	// Source is the vertex of a RecordAddSource / RecordRemoveSource.
	Source graph.VertexID
	// Offset is the file offset of the record's length prefix.
	Offset int64
	// EncodedLen is the record's full on-disk size (framing + payload).
	EncodedLen int
}

// Log is an append-only journal open for writing. It is not safe for
// concurrent use: the Service serializes every append on its write pipeline.
type Log struct {
	path string
	opts Options
	fs   faultfs.FS
	f    faultfs.File
	base uint64
	next uint64
	size int64
	buf  []byte // encoding scratch, reused across appends
}

// OpenOrCreate opens the log at path for appending, scanning existing
// records and truncating a torn tail, and returns the records that survived
// so recovery can replay them. A missing file — or one whose 16-byte header
// itself was torn — is (re)created empty with createBase as its baseLSN.
// Mid-file damage returns ErrCorrupt.
func OpenOrCreate(path string, createBase uint64, opts Options) (*Log, []Record, error) {
	fs := opts.fsys()
	data, err := fs.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) || (err == nil && len(data) < headerSize) {
		l, cerr := create(path, createBase, opts)
		return l, nil, cerr
	}
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	base, recs, valid, err := scan(data)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %s: %w", path, err)
	}
	f, err := fs.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if valid < int64(len(data)) {
		// Torn tail: discard the unacknowledged suffix before appending.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Log{
		path: path, opts: opts, fs: fs, f: f,
		base: base, next: base + uint64(len(recs)), size: valid,
	}, recs, nil
}

// create writes a fresh log (header only) at path via a temp file and atomic
// rename, so a crash mid-create never leaves a half-written header behind.
// The header is read back and compared before the rename — a silent short
// write here would otherwise relabel (or strand) every subsequent record —
// and every failure path removes the temp file.
func create(path string, base uint64, opts Options) (*Log, error) {
	fs := opts.fsys()
	tmp := path + ".tmp"
	f, err := fs.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	// The header CRC covers the baseLSN: record payloads carry their own
	// checksums, and without this one a flipped baseLSN bit would silently
	// relabel every record's LSN — recovery would then skip acknowledged
	// mutations (or replay covered ones) without any error.
	var hdr [headerSize]byte
	copy(hdr[:], magic)
	binary.LittleEndian.PutUint64(hdr[8:], base)
	binary.LittleEndian.PutUint32(hdr[16:], crc32.Checksum(hdr[:16], castagnoli))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		fs.Remove(tmp)
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return nil, err
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return nil, err
	}
	if got, err := fs.ReadFile(tmp); err != nil || !bytes.Equal(got, hdr[:]) {
		fs.Remove(tmp)
		if err == nil {
			err = fmt.Errorf("wal: verify %s: wrote %d header bytes but %d read back (torn or lying write)",
				tmp, headerSize, len(got))
		}
		return nil, err
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return nil, err
	}
	if err := fsatomic.SyncDirFS(fs, filepath.Dir(path)); err != nil {
		return nil, err
	}
	// Reopen under the final name: the append handle must carry the real
	// path, not the temp one — path-scoped fault rules (and error messages)
	// would otherwise keep attributing every append to a *.tmp file.
	af, err := fs.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := af.Seek(headerSize, io.SeekStart); err != nil {
		af.Close()
		return nil, err
	}
	return &Log{path: path, opts: opts, fs: fs, f: af, base: base, next: base, size: headerSize}, nil
}

// BaseLSN returns the LSN of the first record slot of the current file.
func (l *Log) BaseLSN() uint64 { return l.base }

// NextLSN returns the LSN the next append will receive — equivalently, the
// total number of mutations journaled across all rotations.
func (l *Log) NextLSN() uint64 { return l.next }

// Size returns the current file size in bytes.
func (l *Log) Size() int64 { return l.size }

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// frameReserve returns the reusable scratch buffer with frameSize bytes
// reserved at the front for the length/CRC header, which append backfills
// once the payload is encoded behind it — one buffer, one Write, no
// per-record allocation.
func (l *Log) frameReserve() []byte {
	return append(l.buf[:0], 0, 0, 0, 0, 0, 0, 0, 0)
}

// AppendBatch journals an edge-update batch and returns its LSN. Every
// update must be Representable; anything else is rejected rather than
// mis-encoded.
func (l *Log) AppendBatch(b stream.Batch) (uint64, error) {
	buf, err := appendBatchPayload(l.frameReserve(), b)
	if err != nil {
		return 0, err
	}
	return l.append(buf)
}

// AppendAddSource journals the start of tracking for source.
func (l *Log) AppendAddSource(source graph.VertexID) (uint64, error) {
	return l.append(appendSourcePayload(l.frameReserve(), RecordAddSource, source))
}

// AppendRemoveSource journals the end of tracking for source.
func (l *Log) AppendRemoveSource(source graph.VertexID) (uint64, error) {
	return l.append(appendSourcePayload(l.frameReserve(), RecordRemoveSource, source))
}

// append backfills the frame header of a buffer built by frameReserve and
// writes the whole record with one Write call — a torn write can only
// shorten the tail, which Open truncates.
func (l *Log) append(buf []byte) (uint64, error) {
	l.buf = buf // keep the grown scratch buffer
	payload := buf[frameSize:]
	if len(payload) > MaxRecordSize {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds the %d byte limit", len(payload), MaxRecordSize)
	}
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, castagnoli))
	if _, err := l.f.Write(buf); err != nil {
		l.rollback()
		return 0, err
	}
	if l.opts.Sync == SyncAlways {
		if err := l.f.Sync(); err != nil {
			// The record bytes may already be in the file; reporting failure
			// while leaving them behind would let recovery resurrect a
			// mutation the caller was told was rejected. Best-effort
			// truncate back to the pre-append size closes that window.
			l.rollback()
			return 0, err
		}
	}
	lsn := l.next
	l.next++
	l.size += int64(len(buf))
	return lsn, nil
}

// rollback discards a failed append's partial bytes so the on-disk log
// matches what the caller was acknowledged. Errors are swallowed: the
// Service degrades persistence after any append error — no further appends
// land on this file before a rotation replaces it — and Open truncates
// whatever remains if the process dies first.
func (l *Log) rollback() {
	if err := l.f.Truncate(l.size); err != nil {
		return
	}
	_, _ = l.f.Seek(l.size, io.SeekStart)
}

// Sync flushes the log to stable storage regardless of the append policy.
func (l *Log) Sync() error { return l.f.Sync() }

// Policy returns the log's append fsync policy.
func (l *Log) Policy() SyncPolicy { return l.opts.Sync }

// Rotate replaces the log with a fresh, empty file whose baseLSN is newBase,
// via a temp file and atomic rename. It is called immediately after a
// checkpoint covering every journaled record (newBase must equal NextLSN):
// the dropped records are all captured by the checkpoint, and a crash at any
// point leaves either the old file (whose covered prefix recovery skips by
// LSN) or the new one.
func (l *Log) Rotate(newBase uint64) error {
	if newBase != l.next {
		return fmt.Errorf("wal: rotate to base %d would lose records (next LSN %d)", newBase, l.next)
	}
	fresh, err := create(l.path, newBase, l.opts)
	if err != nil {
		return err
	}
	old := l.f
	l.f = fresh.f
	l.base = newBase
	l.size = fresh.size
	return old.Close()
}

// SelfCheck re-reads the log file from disk and verifies it parses back to
// exactly the in-memory view: same baseLSN, same record count, same size,
// no torn tail. The recovery probe runs it after rotating onto a fresh file
// so a heal is only declared once the new log is proven readable.
func (l *Log) SelfCheck() error {
	data, err := l.fs.ReadFile(l.path)
	if err != nil {
		return fmt.Errorf("wal: self-check %s: %w", l.path, err)
	}
	base, recs, valid, err := scan(data)
	if err != nil {
		return fmt.Errorf("wal: self-check %s: %w", l.path, err)
	}
	if valid != int64(len(data)) {
		return fmt.Errorf("wal: self-check %s: %d torn tail bytes", l.path, int64(len(data))-valid)
	}
	if base != l.base || valid != l.size || base+uint64(len(recs)) != l.next {
		return fmt.Errorf("wal: self-check %s: on disk base %d, %d records, %d bytes; in memory base %d, next %d, %d bytes",
			l.path, base, len(recs), valid, l.base, l.next, l.size)
	}
	return nil
}

// Close flushes and closes the log file.
func (l *Log) Close() error {
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// ---------------------------------------------------------------------------
// Payload encoding. Format: one type byte, then
//
//	RecordBatch:        uvarint count, count × (op byte, uvarint u, uvarint v)
//	RecordAdd/Remove:   uvarint source
//
// with op 0 = insert, 1 = delete.

const (
	opInsert byte = 0
	opDelete byte = 1
)

// Representable reports whether an update can be journaled: a recognized op
// and non-negative endpoints. Unrepresentable updates are always no-ops to
// apply (the graph skips them), so callers drop them from the journaled
// batch rather than mis-encode them — a zero-valued Op written as an insert,
// or a negative id written as a huge uvarint, would make replay diverge from
// (or outright refuse) what the original process did.
func Representable(u stream.Update) bool {
	return (u.Op == stream.Insert || u.Op == stream.Delete) && u.U >= 0 && u.V >= 0
}

func appendBatchPayload(buf []byte, b stream.Batch) ([]byte, error) {
	buf = append(buf, byte(RecordBatch))
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	for _, u := range b {
		if !Representable(u) {
			return nil, fmt.Errorf("wal: update %+v is not journalable (filter with Representable)", u)
		}
		op := opInsert
		if u.Op == stream.Delete {
			op = opDelete
		}
		buf = append(buf, op)
		buf = binary.AppendUvarint(buf, uint64(u.U))
		buf = binary.AppendUvarint(buf, uint64(u.V))
	}
	return buf, nil
}

func appendSourcePayload(buf []byte, t RecordType, source graph.VertexID) []byte {
	buf = append(buf, byte(t))
	return binary.AppendUvarint(buf, uint64(source))
}

// decodePayload strictly parses one record payload. Every malformation is an
// error: the payload sits behind a valid checksum, so damage here is real
// corruption, not a torn write.
func decodePayload(lsn uint64, p []byte) (Record, error) {
	rec := Record{LSN: lsn}
	if len(p) == 0 {
		return rec, fmt.Errorf("empty payload")
	}
	rec.Type = RecordType(p[0])
	p = p[1:]
	switch rec.Type {
	case RecordBatch:
		count, n := binary.Uvarint(p)
		if n <= 0 {
			return rec, fmt.Errorf("bad batch count varint")
		}
		p = p[n:]
		// Each update occupies at least 3 bytes, so a forged count cannot
		// force a huge allocation.
		if count > uint64(len(p))/3+1 {
			return rec, fmt.Errorf("batch count %d exceeds payload size", count)
		}
		rec.Batch = make(stream.Batch, 0, count)
		for i := uint64(0); i < count; i++ {
			if len(p) == 0 {
				return rec, fmt.Errorf("batch truncated at update %d", i)
			}
			var op stream.Op
			switch p[0] {
			case opInsert:
				op = stream.Insert
			case opDelete:
				op = stream.Delete
			default:
				return rec, fmt.Errorf("unknown op byte %d", p[0])
			}
			p = p[1:]
			u, err := takeVertex(&p)
			if err != nil {
				return rec, fmt.Errorf("update %d: %w", i, err)
			}
			v, err := takeVertex(&p)
			if err != nil {
				return rec, fmt.Errorf("update %d: %w", i, err)
			}
			rec.Batch = append(rec.Batch, stream.Update{U: u, V: v, Op: op})
		}
		if len(p) != 0 {
			return rec, fmt.Errorf("%d trailing bytes after batch", len(p))
		}
	case RecordAddSource, RecordRemoveSource:
		s, err := takeVertex(&p)
		if err != nil {
			return rec, err
		}
		if len(p) != 0 {
			return rec, fmt.Errorf("%d trailing bytes after source", len(p))
		}
		rec.Source = s
	default:
		return rec, fmt.Errorf("unknown record type %d", rec.Type)
	}
	return rec, nil
}

// takeVertex consumes one uvarint vertex id, rejecting values beyond the
// int32 id space.
func takeVertex(p *[]byte) (graph.VertexID, error) {
	x, n := binary.Uvarint(*p)
	if n <= 0 {
		return 0, fmt.Errorf("bad vertex varint")
	}
	*p = (*p)[n:]
	if x > uint64(1<<31-1) {
		return 0, fmt.Errorf("vertex id %d overflows int32", x)
	}
	return graph.VertexID(x), nil
}
