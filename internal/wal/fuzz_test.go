package wal

import (
	"os"
	"path/filepath"
	"testing"

	"dynppr/internal/stream"
)

// buildImage writes records through the real append path and returns the
// file bytes — the canonical well-formed seeds.
func buildImage(f *testing.F, base uint64, build func(*Log)) []byte {
	f.Helper()
	path := filepath.Join(f.TempDir(), "seed.log")
	l, _, err := OpenOrCreate(path, base, Options{})
	if err != nil {
		f.Fatal(err)
	}
	build(l)
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	os.Remove(path)
	return data
}

// FuzzWALRead drives the strict log reader with arbitrary bytes. The
// contract under fuzz: ReadAll returns either an error or a record list that
// survives a write/read round trip through the real append path — junk
// bytes, truncated tails and bad CRCs must error, never panic, and forged
// counts must never force allocations beyond the input size.
func FuzzWALRead(f *testing.F) {
	valid := buildImage(f, 5, func(l *Log) {
		l.AppendBatch(stream.Batch{
			{U: 1, V: 2, Op: stream.Insert},
			{U: 2, V: 1, Op: stream.Delete},
		})
		l.AppendAddSource(7)
		l.AppendRemoveSource(7)
		l.AppendBatch(nil) // empty batch is a valid record
	})
	f.Add(valid)
	f.Add(valid[:headerSize])                                 // empty log
	f.Add(valid[:len(valid)-3])                               // torn tail
	f.Add(valid[:headerSize+4])                               // torn frame
	f.Add([]byte{})                                           // empty input
	f.Add([]byte("DPPRWAL1"))                                 // magic but no base
	f.Add([]byte("DPPRWAL0\x00\x00\x00\x00\x00\x00\x00\x00")) // wrong magic byte
	crcFlip := append([]byte(nil), valid...)
	crcFlip[len(crcFlip)-1] ^= 0x01
	f.Add(crcFlip)
	midFlip := append([]byte(nil), valid...)
	midFlip[headerSize+frameSize] ^= 0x80 // damage the first payload, valid records follow
	f.Add(midFlip)
	f.Add([]byte("\x00\x01\x02junk that is not a wal at all\xff\xfe"))

	f.Fuzz(func(t *testing.T, data []byte) {
		base, recs, err := ReadAll(data)
		if err != nil {
			return
		}
		// Accepted input: every record must be well-formed and re-encodable
		// to an image the reader parses back identically.
		path := filepath.Join(t.TempDir(), "roundtrip.log")
		l, got, err := OpenOrCreate(path, base, Options{})
		if err != nil {
			t.Fatalf("create for round trip: %v", err)
		}
		if len(got) != 0 {
			t.Fatalf("fresh log has %d records", len(got))
		}
		for _, rec := range recs {
			var lsn uint64
			var aerr error
			switch rec.Type {
			case RecordBatch:
				lsn, aerr = l.AppendBatch(rec.Batch)
			case RecordAddSource:
				if rec.Source < 0 {
					t.Fatalf("decoded negative source %d", rec.Source)
				}
				lsn, aerr = l.AppendAddSource(rec.Source)
			case RecordRemoveSource:
				lsn, aerr = l.AppendRemoveSource(rec.Source)
			default:
				t.Fatalf("decoded unknown record type %d", rec.Type)
			}
			if aerr != nil {
				t.Fatalf("re-append of accepted record: %v", aerr)
			}
			if lsn != rec.LSN {
				t.Fatalf("round-trip LSN %d, want %d", lsn, rec.LSN)
			}
			for _, u := range rec.Batch {
				if u.U < 0 || u.V < 0 {
					t.Fatalf("decoded negative vertex in %+v", u)
				}
				if u.Op != stream.Insert && u.Op != stream.Delete {
					t.Fatalf("decoded bad op %v", u.Op)
				}
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		reread, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		base2, recs2, err := ReadAll(reread)
		if err != nil || base2 != base || len(recs2) != len(recs) {
			t.Fatalf("round trip changed the log: base %d->%d, %d->%d records, err %v",
				base, base2, len(recs), len(recs2), err)
		}
		for i := range recs {
			a, b := recs[i], recs2[i]
			if a.LSN != b.LSN || a.Type != b.Type || a.Source != b.Source || len(a.Batch) != len(b.Batch) {
				t.Fatalf("record %d changed in round trip: %+v -> %+v", i, a, b)
			}
			for j := range a.Batch {
				if a.Batch[j] != b.Batch[j] {
					t.Fatalf("record %d update %d changed: %+v -> %+v", i, j, a.Batch[j], b.Batch[j])
				}
			}
		}
	})
}
