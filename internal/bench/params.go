// Package bench is the experiment harness: it rebuilds every figure of the
// paper's evaluation (Section 5) on the synthetic dataset catalog, using the
// public Tracker API and the internal baselines. Each experiment has a Run
// function returning structured rows and a Print helper that emits the same
// table the paper plots.
package bench

import (
	"fmt"

	"dynppr/internal/gen"
)

// Params collects the experiment parameters of Table 2, scaled to the
// synthetic catalog. All randomness is derived from Seed.
type Params struct {
	// Alpha is the teleport probability (paper: 0.15).
	Alpha float64
	// Epsilon is the default error threshold used where the experiment does
	// not sweep it.
	Epsilon float64
	// EpsilonGrid is the sweep for the ε experiment (Figure 6).
	EpsilonGrid []float64
	// BatchRatios are the batch sizes as fractions of the sliding window
	// (Figure 8; paper: 1%, 0.1%, 0.01%).
	BatchRatios []float64
	// DefaultBatchRatio is the ratio used where the experiment does not sweep
	// the batch size.
	DefaultBatchRatio float64
	// SourceBuckets are the "top-k out-degree" bucket sizes for the source
	// selection experiment (Figure 7; paper: 10, 1K, 1M — scaled down here).
	SourceBuckets []int
	// Slides is the number of window slides measured per configuration.
	Slides int
	// InitialWindowFraction is the share of the stream used to build the
	// initial window (paper: 10%).
	InitialWindowFraction float64
	// Workers is the degree of parallelism of the parallel approaches; <= 0
	// selects GOMAXPROCS.
	Workers int
	// WorkerGrid is the sweep for the scalability experiment (Figure 10).
	WorkerGrid []int
	// WalksPerVertex is the Monte-Carlo walk count divided by |V| (paper: 6).
	WalksPerVertex int
	// Seed drives dataset generation, stream order and source sampling.
	Seed int64
}

// DefaultParams mirrors the paper's defaults at the catalog scale.
func DefaultParams() Params {
	return Params{
		Alpha:                 0.15,
		Epsilon:               1e-7,
		EpsilonGrid:           []float64{1e-4, 1e-5, 1e-6, 1e-7, 1e-8},
		BatchRatios:           []float64{0.01, 0.001, 0.0001},
		DefaultBatchRatio:     0.001,
		SourceBuckets:         []int{10, 100, 1000},
		Slides:                20,
		InitialWindowFraction: 0.10,
		Workers:               0,
		WorkerGrid:            []int{1, 2, 4, 8},
		WalksPerVertex:        6,
		Seed:                  1,
	}
}

// QuickParams returns a drastically reduced parameter set for tests and smoke
// runs: fewer slides, coarser ε, fewer walks.
func QuickParams() Params {
	p := DefaultParams()
	p.Epsilon = 1e-5
	p.EpsilonGrid = []float64{1e-3, 1e-4, 1e-5}
	p.BatchRatios = []float64{0.01, 0.001}
	p.DefaultBatchRatio = 0.01
	p.SourceBuckets = []int{5, 50}
	p.Slides = 3
	p.WorkerGrid = []int{1, 2}
	p.WalksPerVertex = 2
	return p
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.Alpha <= 0 || p.Alpha >= 1 {
		return fmt.Errorf("bench: alpha must be in (0,1), got %v", p.Alpha)
	}
	if p.Epsilon <= 0 {
		return fmt.Errorf("bench: epsilon must be positive, got %v", p.Epsilon)
	}
	if p.Slides <= 0 {
		return fmt.Errorf("bench: slides must be positive, got %d", p.Slides)
	}
	if p.InitialWindowFraction <= 0 || p.InitialWindowFraction >= 1 {
		return fmt.Errorf("bench: initial window fraction must be in (0,1), got %v", p.InitialWindowFraction)
	}
	if p.DefaultBatchRatio <= 0 || p.DefaultBatchRatio > 1 {
		return fmt.Errorf("bench: default batch ratio must be in (0,1], got %v", p.DefaultBatchRatio)
	}
	if p.WalksPerVertex <= 0 {
		return fmt.Errorf("bench: walks per vertex must be positive, got %d", p.WalksPerVertex)
	}
	return nil
}

// QuickDatasets returns a tiny dataset list for tests.
func QuickDatasets() []gen.Dataset {
	return []gen.Dataset{
		{Config: gen.Config{Name: "tiny-rmat", Model: gen.RMAT, Vertices: 300, Edges: 3000, Seed: 7},
			PaperVertices: 0, PaperEdges: 0},
		{Config: gen.Config{Name: "tiny-ba", Model: gen.BarabasiAlbert, Vertices: 300, Edges: 3000, Seed: 8},
			PaperVertices: 0, PaperEdges: 0},
	}
}
