package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"dynppr/internal/power"
	"dynppr/internal/push"
)

// exactError computes the tracker state's worst-case estimation error against
// the dense oracle.
func exactError(st *push.State, alpha float64) (float64, error) {
	oracle, err := power.ReverseGraph(st.Graph(), st.Source(), power.Options{
		Alpha:         alpha,
		Tolerance:     1e-13,
		MaxIterations: 20_000,
	})
	if err != nil {
		return 0, err
	}
	return power.MaxAbsDiff(st.Estimates(), oracle), nil
}

func newTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// PrintOptimizationRows writes the Figure 4 table.
func PrintOptimizationRows(w io.Writer, rows []OptimizationRow) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "dataset\tvariant\tmean latency\tpushes\tpropagations\tdup attempts\tspeedup vs Vanilla")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%v\t%d\t%d\t%d\t%.2fx\n",
			r.Dataset, r.Variant, r.MeanLatency, r.Pushes, r.Propagations, r.DupAttempts, r.SpeedupOverVanilla)
	}
	return tw.Flush()
}

// PrintThroughputRows writes the Figure 5 table.
func PrintThroughputRows(w io.Writer, rows []ThroughputRow) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "dataset\tapproach\tbatch size\tedges/sec\tmean latency")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.0f\t%v\n",
			r.Dataset, r.Approach, r.BatchSize, r.EdgesPerSecond, r.MeanLatency)
	}
	return tw.Flush()
}

// PrintEpsilonRows writes the Figure 6 table.
func PrintEpsilonRows(w io.Writer, rows []EpsilonRow) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "dataset\tapproach\tepsilon\tmean latency\tpushes")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.0e\t%v\t%d\n",
			r.Dataset, r.Approach, r.Epsilon, r.MeanLatency, r.Pushes)
	}
	return tw.Flush()
}

// PrintSourceRows writes the Figure 7 table.
func PrintSourceRows(w io.Writer, rows []SourceRow) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "dataset\tapproach\tsource bucket\tsource degree\tmean latency")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%v\n",
			r.Dataset, r.Approach, r.Bucket, r.SourceDegree, r.MeanLatency)
	}
	return tw.Flush()
}

// PrintBatchSizeRows writes the Figure 8 table.
func PrintBatchSizeRows(w io.Writer, rows []BatchSizeRow) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "dataset\tapproach\tbatch ratio\tbatch size\tmean latency\tspeedup vs Seq")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.4f\t%d\t%v\t%.2fx\n",
			r.Dataset, r.Approach, r.Ratio, r.BatchSize, r.MeanLatency, r.SpeedupOverSeq)
	}
	return tw.Flush()
}

// PrintResourceRows writes the Figure 9 table.
func PrintResourceRows(w io.Writer, rows []ResourceRow) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "dataset\tbatch size\tmean frontier\tpeak frontier\trandom accesses/update\tatomics/update\titerations")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%d\t%.1f\t%.1f\t%d\n",
			r.Dataset, r.BatchSize, r.MeanFrontier, r.PeakFrontier,
			r.RandomAccessesPerUpdate, r.AtomicsPerUpdate, r.Iterations)
	}
	return tw.Flush()
}

// PrintScalabilityRows writes the Figure 10 table.
func PrintScalabilityRows(w io.Writer, rows []ScalabilityRow) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "dataset\tworkers\tedges/sec\tspeedup vs 1 worker")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.2fx\n",
			r.Dataset, r.Workers, r.EdgesPerSecond, r.SpeedupOverOneWorker)
	}
	return tw.Flush()
}

// PrintAccuracyRows writes the accuracy report.
func PrintAccuracyRows(w io.Writer, rows []AccuracyRow) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "dataset\tapproach\tepsilon\tmax |P - pi|")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.0e\t%.3g\n", r.Dataset, r.Approach, r.Epsilon, r.MaxError)
	}
	return tw.Flush()
}
