package bench

import (
	"fmt"
	"time"

	"dynppr/internal/gen"
	"dynppr/internal/graph"
	"dynppr/internal/metrics"
	"dynppr/internal/montecarlo"
	"dynppr/internal/push"
	"dynppr/internal/stream"
	"dynppr/internal/vc"
)

// Workload is a replayable sliding-window experiment input for one dataset:
// the edge stream, the initial window, and the source vertex.
type Workload struct {
	Dataset gen.Dataset
	Edges   []graph.Edge
	Stream  *stream.Stream
	// InitialEdges is the content of the initial window (the first
	// InitialWindowFraction of the stream).
	InitialEdges []graph.Edge
	// Source is the tracked source vertex, chosen from the highest-degree
	// vertices of the initial graph unless overridden.
	Source graph.VertexID
	// WindowSize is the number of edges inside the window.
	WindowSize int

	params Params
}

// BuildWorkload generates the dataset, orders it into a stream, and fixes the
// source vertex.
func BuildWorkload(d gen.Dataset, p Params) (*Workload, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	edges, err := gen.EdgeList(d.Config)
	if err != nil {
		return nil, err
	}
	s := stream.NewStream(edges, p.Seed)
	window, initial := stream.NewSlidingWindow(s, p.InitialWindowFraction)
	g := graph.FromEdges(initial)
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("bench: dataset %s produced an empty initial window", d.Name)
	}
	source := g.TopDegreeVertices(1)[0]
	return &Workload{
		Dataset:      d,
		Edges:        edges,
		Stream:       s,
		InitialEdges: initial,
		Source:       source,
		WindowSize:   window.Size(),
		params:       p,
	}, nil
}

// NewRun returns a fresh sliding window and the matching initial graph so
// that each measured configuration replays exactly the same update sequence.
func (w *Workload) NewRun() (*stream.SlidingWindow, *graph.Graph) {
	window, initial := stream.NewSlidingWindow(w.Stream, w.params.InitialWindowFraction)
	return window, graph.FromEdges(initial)
}

// BatchSize converts a batch ratio into an edge count (at least 1).
func (w *Workload) BatchSize(ratio float64) int {
	k := int(float64(w.WindowSize) * ratio)
	if k < 1 {
		k = 1
	}
	return k
}

// Approach identifies one of the compared systems (Figure 5 legend).
type Approach string

// The approaches of the evaluation. GPU is not reproduced on this substrate;
// see DESIGN.md for the substitution note.
const (
	// ApproachBase is the sequential push applied per single update (the
	// prior state of the art, CPU-Base).
	ApproachBase Approach = "CPU-Base"
	// ApproachSeq is the sequential push with batch updates (CPU-Seq).
	ApproachSeq Approach = "CPU-Seq"
	// ApproachMT is the optimized parallel push with batch updates (CPU-MT).
	ApproachMT Approach = "CPU-MT"
	// ApproachMonteCarlo is the incremental Monte-Carlo baseline.
	ApproachMonteCarlo Approach = "Monte-Carlo"
	// ApproachLigra is the vertex-centric (Ligra-style) implementation.
	ApproachLigra Approach = "Ligra"
)

// AllApproaches lists the approaches in the order the paper's legends use.
func AllApproaches() []Approach {
	return []Approach{ApproachBase, ApproachSeq, ApproachMT, ApproachMonteCarlo, ApproachLigra}
}

// runResult aggregates one measured configuration.
type runResult struct {
	Latency  metrics.LatencyStats
	Counters metrics.Counters
	// UpdatesApplied counts effective edge updates (inserts + deletes) fed to
	// the approach across all measured slides.
	UpdatesApplied int64
}

// MeanLatency returns the mean per-slide latency.
func (r *runResult) MeanLatency() time.Duration { return r.Latency.Mean() }

// Throughput returns effective updates per second.
func (r *runResult) Throughput() float64 { return r.Latency.Throughput(r.UpdatesApplied) }

// pushEngineFor builds the push engine of a push-based approach.
func pushEngineFor(a Approach, variant push.Variant, workers int) (push.Engine, error) {
	switch a {
	case ApproachBase, ApproachSeq:
		return push.NewSequential(), nil
	case ApproachMT:
		return push.NewParallel(variant, workers), nil
	case ApproachLigra:
		return vc.NewPPREngine(workers), nil
	default:
		return nil, fmt.Errorf("bench: %s is not a push-based approach", a)
	}
}

// runPush replays the sliding window against a push-based approach and
// reports per-slide latency and work counters. Base mode pushes after every
// single update; the other approaches push once per batch.
func (w *Workload) runPush(a Approach, variant push.Variant, workers int,
	epsilon float64, batchSize, slides int, source graph.VertexID) (*runResult, error) {
	engine, err := pushEngineFor(a, variant, workers)
	if err != nil {
		return nil, err
	}
	window, g := w.NewRun()
	st, err := push.NewState(g, source, push.Config{Alpha: w.params.Alpha, Epsilon: epsilon})
	if err != nil {
		return nil, err
	}
	engine.Run(st, []graph.VertexID{source})
	st.Counters.Reset()

	res := &runResult{}
	for i := 0; i < slides; i++ {
		batch := window.Slide(batchSize)
		if len(batch) == 0 {
			break
		}
		start := time.Now()
		if a == ApproachBase {
			for _, u := range batch {
				if applyPushUpdate(st, u) {
					res.UpdatesApplied++
					engine.Run(st, []graph.VertexID{u.U})
				}
			}
		} else {
			touched := make([]graph.VertexID, 0, len(batch))
			for _, u := range batch {
				if applyPushUpdate(st, u) {
					res.UpdatesApplied++
					touched = append(touched, u.U)
				}
			}
			engine.Run(st, touched)
		}
		res.Latency.Observe(time.Since(start))
	}
	res.Counters = st.Counters.Snapshot()
	return res, nil
}

func applyPushUpdate(st *push.State, u stream.Update) bool {
	switch u.Op {
	case stream.Insert:
		changed, err := st.ApplyInsert(u.U, u.V)
		return err == nil && changed
	case stream.Delete:
		changed, err := st.ApplyDelete(u.U, u.V)
		return err == nil && changed
	default:
		return false
	}
}

// runMonteCarlo replays the sliding window against the incremental
// Monte-Carlo estimator.
func (w *Workload) runMonteCarlo(workers, batchSize, slides int, source graph.VertexID) (*runResult, error) {
	window, g := w.NewRun()
	walks := w.params.WalksPerVertex * g.NumVertices()
	if walks < 1 {
		walks = 1
	}
	est, err := montecarlo.New(g, source, montecarlo.Config{
		Alpha:   w.params.Alpha,
		Walks:   walks,
		Seed:    w.params.Seed,
		Workers: workers,
	})
	if err != nil {
		return nil, err
	}
	res := &runResult{}
	for i := 0; i < slides; i++ {
		batch := window.Slide(batchSize)
		if len(batch) == 0 {
			break
		}
		start := time.Now()
		for _, u := range batch {
			switch u.Op {
			case stream.Insert:
				if n, err := est.ApplyInsert(u.U, u.V); err == nil && n >= 0 {
					res.UpdatesApplied++
				}
			case stream.Delete:
				if _, err := est.ApplyDelete(u.U, u.V); err == nil {
					res.UpdatesApplied++
				}
			}
		}
		res.Latency.Observe(time.Since(start))
	}
	return res, nil
}

// runApproach dispatches to the push or Monte-Carlo runner.
func (w *Workload) runApproach(a Approach, epsilon float64, batchSize, slides, workers int, source graph.VertexID) (*runResult, error) {
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if a == ApproachMonteCarlo {
		return w.runMonteCarlo(workers, batchSize, slides, source)
	}
	return w.runPush(a, push.VariantOpt, workers, epsilon, batchSize, slides, source)
}
