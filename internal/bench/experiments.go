package bench

import (
	"time"

	"dynppr/internal/fp"
	"dynppr/internal/gen"
	"dynppr/internal/graph"
	"dynppr/internal/push"
)

func defaultWorkers() int { return fp.DefaultWorkers() }

// ---------------------------------------------------------------------------
// Figure 4 — effect of the parallel-push optimizations.

// OptimizationRow is one bar of Figure 4: the mean slide latency of one
// parallel-push variant on one dataset.
type OptimizationRow struct {
	Dataset      string
	Variant      string
	MeanLatency  time.Duration
	Pushes       int64
	Propagations int64
	DupAttempts  int64
	// SpeedupOverVanilla is the Vanilla latency divided by this variant's
	// latency on the same dataset (1.0 for Vanilla itself).
	SpeedupOverVanilla float64
}

// RunOptimizationEffect measures the four Table-3 variants on every dataset.
func RunOptimizationEffect(p Params, datasets []gen.Dataset) ([]OptimizationRow, error) {
	variants := []push.Variant{push.VariantOpt, push.VariantEager, push.VariantDupDetect, push.VariantVanilla}
	var rows []OptimizationRow
	for _, d := range datasets {
		w, err := BuildWorkload(d, p)
		if err != nil {
			return nil, err
		}
		batch := w.BatchSize(p.DefaultBatchRatio)
		perVariant := make(map[string]*runResult, len(variants))
		for _, v := range variants {
			res, err := w.runPush(ApproachMT, v, p.Workers, p.Epsilon, batch, p.Slides, w.Source)
			if err != nil {
				return nil, err
			}
			perVariant[v.String()] = res
		}
		vanilla := perVariant[push.VariantVanilla.String()].MeanLatency()
		for _, v := range variants {
			res := perVariant[v.String()]
			speedup := 0.0
			if res.MeanLatency() > 0 {
				speedup = float64(vanilla) / float64(res.MeanLatency())
			}
			rows = append(rows, OptimizationRow{
				Dataset:            d.Name,
				Variant:            v.String(),
				MeanLatency:        res.MeanLatency(),
				Pushes:             res.Counters.Pushes,
				Propagations:       res.Counters.Propagations,
				DupAttempts:        res.Counters.DuplicateAttempts,
				SpeedupOverVanilla: speedup,
			})
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Figure 5 — streaming throughput of all approaches across batch sizes.

// ThroughputRow is one point of Figure 5.
type ThroughputRow struct {
	Dataset   string
	Approach  Approach
	BatchSize int
	// EdgesPerSecond is the number of effective edge updates consumed per
	// second of processing time.
	EdgesPerSecond float64
	MeanLatency    time.Duration
}

// RunThroughput measures stream throughput for every approach and batch
// ratio. The Base approach is only run at the smallest batch ratio (its cost
// is per-update, independent of batching) to keep runtime bounded, matching
// how the paper drops it from later figures.
func RunThroughput(p Params, datasets []gen.Dataset, approaches []Approach) ([]ThroughputRow, error) {
	if approaches == nil {
		approaches = AllApproaches()
	}
	var rows []ThroughputRow
	for _, d := range datasets {
		w, err := BuildWorkload(d, p)
		if err != nil {
			return nil, err
		}
		for _, ratio := range p.BatchRatios {
			batch := w.BatchSize(ratio)
			for _, a := range approaches {
				if a == ApproachBase && ratio != p.BatchRatios[len(p.BatchRatios)-1] {
					continue
				}
				res, err := w.runApproach(a, p.Epsilon, batch, p.Slides, p.Workers, w.Source)
				if err != nil {
					return nil, err
				}
				rows = append(rows, ThroughputRow{
					Dataset:        d.Name,
					Approach:       a,
					BatchSize:      batch,
					EdgesPerSecond: res.Throughput(),
					MeanLatency:    res.MeanLatency(),
				})
			}
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Figure 6 — effect of the error threshold ε.

// EpsilonRow is one point of Figure 6.
type EpsilonRow struct {
	Dataset     string
	Approach    Approach
	Epsilon     float64
	MeanLatency time.Duration
	Pushes      int64
}

// RunEpsilonSweep measures the sequential and parallel approaches across the
// ε grid.
func RunEpsilonSweep(p Params, datasets []gen.Dataset) ([]EpsilonRow, error) {
	approaches := []Approach{ApproachSeq, ApproachMT}
	var rows []EpsilonRow
	for _, d := range datasets {
		w, err := BuildWorkload(d, p)
		if err != nil {
			return nil, err
		}
		batch := w.BatchSize(p.DefaultBatchRatio)
		for _, eps := range p.EpsilonGrid {
			for _, a := range approaches {
				res, err := w.runApproach(a, eps, batch, p.Slides, p.Workers, w.Source)
				if err != nil {
					return nil, err
				}
				rows = append(rows, EpsilonRow{
					Dataset:     d.Name,
					Approach:    a,
					Epsilon:     eps,
					MeanLatency: res.MeanLatency(),
					Pushes:      res.Counters.Pushes,
				})
			}
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Figure 7 — effect of the source vertex degree.

// SourceRow is one point of Figure 7.
type SourceRow struct {
	Dataset      string
	Approach     Approach
	Bucket       string
	SourceDegree int
	MeanLatency  time.Duration
}

// RunSourceDegree measures latency with the source drawn from the top-k
// out-degree buckets of Params.SourceBuckets (the paper's top-10/1K/1M).
func RunSourceDegree(p Params, datasets []gen.Dataset) ([]SourceRow, error) {
	approaches := []Approach{ApproachSeq, ApproachMT}
	var rows []SourceRow
	for _, d := range datasets {
		w, err := BuildWorkload(d, p)
		if err != nil {
			return nil, err
		}
		_, g := w.NewRun()
		batch := w.BatchSize(p.DefaultBatchRatio)
		for _, bucket := range p.SourceBuckets {
			top := g.TopDegreeVertices(bucket)
			if len(top) == 0 {
				continue
			}
			// Deterministic pick: the last vertex of the bucket, i.e. the
			// lowest-degree member, so buckets differ meaningfully.
			source := top[len(top)-1]
			for _, a := range approaches {
				res, err := w.runApproach(a, p.Epsilon, batch, p.Slides, p.Workers, source)
				if err != nil {
					return nil, err
				}
				rows = append(rows, SourceRow{
					Dataset:      d.Name,
					Approach:     a,
					Bucket:       bucketName(bucket),
					SourceDegree: g.OutDegree(source),
					MeanLatency:  res.MeanLatency(),
				})
			}
		}
	}
	return rows, nil
}

func bucketName(k int) string {
	switch {
	case k >= 1_000_000:
		return "top-1M"
	case k >= 1_000:
		return "top-1K"
	default:
		return "top-" + itoa(k)
	}
}

func itoa(k int) string {
	if k == 0 {
		return "0"
	}
	neg := k < 0
	if neg {
		k = -k
	}
	var buf [20]byte
	i := len(buf)
	for k > 0 {
		i--
		buf[i] = byte('0' + k%10)
		k /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// ---------------------------------------------------------------------------
// Figure 8 — effect of the batch size.

// BatchSizeRow is one point of Figure 8.
type BatchSizeRow struct {
	Dataset     string
	Approach    Approach
	Ratio       float64
	BatchSize   int
	MeanLatency time.Duration
	// SpeedupOverSeq is CPU-Seq latency / this approach latency at the same
	// batch size.
	SpeedupOverSeq float64
}

// RunBatchSize measures per-slide latency across the batch-ratio grid.
func RunBatchSize(p Params, datasets []gen.Dataset) ([]BatchSizeRow, error) {
	var rows []BatchSizeRow
	for _, d := range datasets {
		w, err := BuildWorkload(d, p)
		if err != nil {
			return nil, err
		}
		for _, ratio := range p.BatchRatios {
			batch := w.BatchSize(ratio)
			seq, err := w.runApproach(ApproachSeq, p.Epsilon, batch, p.Slides, p.Workers, w.Source)
			if err != nil {
				return nil, err
			}
			mt, err := w.runApproach(ApproachMT, p.Epsilon, batch, p.Slides, p.Workers, w.Source)
			if err != nil {
				return nil, err
			}
			for _, rec := range []struct {
				a   Approach
				res *runResult
			}{{ApproachSeq, seq}, {ApproachMT, mt}} {
				speedup := 0.0
				if rec.res.MeanLatency() > 0 {
					speedup = float64(seq.MeanLatency()) / float64(rec.res.MeanLatency())
				}
				rows = append(rows, BatchSizeRow{
					Dataset:        d.Name,
					Approach:       rec.a,
					Ratio:          ratio,
					BatchSize:      batch,
					MeanLatency:    rec.res.MeanLatency(),
					SpeedupOverSeq: speedup,
				})
			}
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Figure 9 — resource consumption proxies.

// ResourceRow is one point of Figure 9: software counterparts of the paper's
// hardware profiling metrics, for the parallel approach at one batch size.
type ResourceRow struct {
	Dataset   string
	BatchSize int
	// MeanFrontier is the average frontier occupancy per push round — the
	// proxy for achieved warp occupancy (WO).
	MeanFrontier float64
	// PeakFrontier is the largest frontier observed.
	PeakFrontier int64
	// RandomAccessesPerUpdate approximates irregular memory traffic per edge
	// update — the proxy for global-load efficiency / cache miss rates.
	RandomAccessesPerUpdate float64
	// AtomicsPerUpdate is the number of atomic residual updates per edge
	// update — the proxy for cycles stalled on synchronization.
	AtomicsPerUpdate float64
	// Iterations is the number of push rounds executed.
	Iterations int64
}

// RunResourceProfile gathers the counter-based resource proxies across the
// batch-ratio grid.
func RunResourceProfile(p Params, datasets []gen.Dataset) ([]ResourceRow, error) {
	var rows []ResourceRow
	for _, d := range datasets {
		w, err := BuildWorkload(d, p)
		if err != nil {
			return nil, err
		}
		for _, ratio := range p.BatchRatios {
			batch := w.BatchSize(ratio)
			res, err := w.runApproach(ApproachMT, p.Epsilon, batch, p.Slides, p.Workers, w.Source)
			if err != nil {
				return nil, err
			}
			updates := float64(res.UpdatesApplied)
			if updates == 0 {
				updates = 1
			}
			rows = append(rows, ResourceRow{
				Dataset:                 d.Name,
				BatchSize:               batch,
				MeanFrontier:            res.Counters.MeanFrontier(),
				PeakFrontier:            res.Counters.FrontierPeak,
				RandomAccessesPerUpdate: float64(res.Counters.RandomAccesses) / updates,
				AtomicsPerUpdate:        float64(res.Counters.AtomicAdds) / updates,
				Iterations:              res.Counters.Iterations,
			})
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Figure 10 — scalability with the number of cores.

// ScalabilityRow is one point of Figure 10.
type ScalabilityRow struct {
	Dataset        string
	Workers        int
	EdgesPerSecond float64
	// SpeedupOverOneWorker is throughput relative to the single-worker run on
	// the same dataset.
	SpeedupOverOneWorker float64
}

// RunScalability sweeps the worker count for the parallel approach.
func RunScalability(p Params, datasets []gen.Dataset) ([]ScalabilityRow, error) {
	var rows []ScalabilityRow
	for _, d := range datasets {
		w, err := BuildWorkload(d, p)
		if err != nil {
			return nil, err
		}
		batch := w.BatchSize(p.DefaultBatchRatio)
		var base float64
		for _, workers := range p.WorkerGrid {
			res, err := w.runPush(ApproachMT, push.VariantOpt, workers, p.Epsilon, batch, p.Slides, w.Source)
			if err != nil {
				return nil, err
			}
			tp := res.Throughput()
			if workers == p.WorkerGrid[0] || base == 0 {
				base = tp
			}
			speedup := 0.0
			if base > 0 {
				speedup = tp / base
			}
			rows = append(rows, ScalabilityRow{
				Dataset:              d.Name,
				Workers:              workers,
				EdgesPerSecond:       tp,
				SpeedupOverOneWorker: speedup,
			})
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Accuracy report (not a paper figure; used by EXPERIMENTS.md to document the
// ε-guarantee holding end to end on every dataset).

// AccuracyRow records the measured worst-case estimation error after a full
// experiment run on one dataset.
type AccuracyRow struct {
	Dataset  string
	Approach Approach
	Epsilon  float64
	MaxError float64
}

// RunAccuracy replays a short sliding-window run and compares the final
// estimate vector against the dense oracle.
func RunAccuracy(p Params, datasets []gen.Dataset) ([]AccuracyRow, error) {
	var rows []AccuracyRow
	for _, d := range datasets {
		w, err := BuildWorkload(d, p)
		if err != nil {
			return nil, err
		}
		batch := w.BatchSize(p.DefaultBatchRatio)
		for _, a := range []Approach{ApproachSeq, ApproachMT, ApproachLigra} {
			maxErr, err := w.measureAccuracy(a, p, batch)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AccuracyRow{Dataset: d.Name, Approach: a, Epsilon: p.Epsilon, MaxError: maxErr})
		}
	}
	return rows, nil
}

func (w *Workload) measureAccuracy(a Approach, p Params, batchSize int) (float64, error) {
	engine, err := pushEngineFor(a, push.VariantOpt, p.Workers)
	if err != nil {
		return 0, err
	}
	window, g := w.NewRun()
	st, err := push.NewState(g, w.Source, push.Config{Alpha: p.Alpha, Epsilon: p.Epsilon})
	if err != nil {
		return 0, err
	}
	engine.Run(st, []graph.VertexID{w.Source})
	for i := 0; i < p.Slides; i++ {
		batch := window.Slide(batchSize)
		if len(batch) == 0 {
			break
		}
		touched := make([]graph.VertexID, 0, len(batch))
		for _, u := range batch {
			if applyPushUpdate(st, u) {
				touched = append(touched, u.U)
			}
		}
		engine.Run(st, touched)
	}
	return exactError(st, p.Alpha)
}
