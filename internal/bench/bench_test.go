package bench

import (
	"bytes"
	"strings"
	"testing"

	"dynppr/internal/gen"
	"dynppr/internal/push"
)

func quick(t *testing.T) (Params, []gen.Dataset) {
	t.Helper()
	p := QuickParams()
	p.Slides = 2
	p.Workers = 2
	return p, QuickDatasets()[:1]
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := QuickParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Params){
		func(p *Params) { p.Alpha = 0 },
		func(p *Params) { p.Epsilon = 0 },
		func(p *Params) { p.Slides = 0 },
		func(p *Params) { p.InitialWindowFraction = 0 },
		func(p *Params) { p.DefaultBatchRatio = 0 },
		func(p *Params) { p.WalksPerVertex = 0 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestBuildWorkload(t *testing.T) {
	p, ds := quick(t)
	w, err := BuildWorkload(ds[0], p)
	if err != nil {
		t.Fatal(err)
	}
	if w.WindowSize <= 0 || len(w.InitialEdges) != w.WindowSize {
		t.Fatalf("window size %d, initial edges %d", w.WindowSize, len(w.InitialEdges))
	}
	if w.BatchSize(0.0000001) != 1 {
		t.Fatal("batch size must be at least 1")
	}
	if w.BatchSize(1) != w.WindowSize {
		t.Fatal("ratio 1 must give the whole window")
	}
	window, g := w.NewRun()
	if window.Size() != w.WindowSize || g.NumEdges() == 0 {
		t.Fatal("NewRun returned inconsistent state")
	}
	// Invalid dataset and params are rejected.
	if _, err := BuildWorkload(gen.Dataset{Config: gen.Config{Vertices: 0}}, p); err == nil {
		t.Fatal("invalid dataset must fail")
	}
	badP := p
	badP.Slides = 0
	if _, err := BuildWorkload(ds[0], badP); err == nil {
		t.Fatal("invalid params must fail")
	}
}

func TestAllApproachesListed(t *testing.T) {
	as := AllApproaches()
	if len(as) != 5 || as[0] != ApproachBase || as[2] != ApproachMT {
		t.Fatalf("AllApproaches = %v", as)
	}
}

func TestPushEngineForErrors(t *testing.T) {
	if _, err := pushEngineFor(ApproachMonteCarlo, push.VariantOpt, 1); err == nil {
		t.Fatal("Monte-Carlo is not a push approach")
	}
}

func TestRunOptimizationEffect(t *testing.T) {
	p, ds := quick(t)
	rows, err := RunOptimizationEffect(p, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*len(ds) {
		t.Fatalf("rows = %d, want %d", len(rows), 4*len(ds))
	}
	variants := map[string]bool{}
	for _, r := range rows {
		if r.MeanLatency <= 0 || r.Pushes == 0 {
			t.Errorf("row %+v has empty measurements", r)
		}
		variants[r.Variant] = true
	}
	for _, v := range []string{"Opt", "Eager", "DupDetect", "Vanilla"} {
		if !variants[v] {
			t.Errorf("missing variant %s", v)
		}
	}
	var buf bytes.Buffer
	if err := PrintOptimizationRows(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Vanilla") {
		t.Fatal("printed table missing data")
	}
}

func TestRunThroughput(t *testing.T) {
	p, ds := quick(t)
	rows, err := RunThroughput(p, ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	seen := map[Approach]bool{}
	for _, r := range rows {
		if r.EdgesPerSecond <= 0 {
			t.Errorf("row %+v has non-positive throughput", r)
		}
		seen[r.Approach] = true
	}
	for _, a := range AllApproaches() {
		if !seen[a] {
			t.Errorf("approach %s missing from results", a)
		}
	}
	var buf bytes.Buffer
	if err := PrintThroughputRows(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CPU-MT") {
		t.Fatal("printed table missing CPU-MT")
	}
}

func TestRunEpsilonSweep(t *testing.T) {
	p, ds := quick(t)
	rows, err := RunEpsilonSweep(p, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(p.EpsilonGrid)*2*len(ds) {
		t.Fatalf("rows = %d", len(rows))
	}
	// Tighter epsilon must not reduce the number of pushes for the same
	// approach (monotone work growth).
	perApproach := map[Approach][]EpsilonRow{}
	for _, r := range rows {
		perApproach[r.Approach] = append(perApproach[r.Approach], r)
	}
	for a, rs := range perApproach {
		for i := 1; i < len(rs); i++ {
			if rs[i].Epsilon < rs[i-1].Epsilon && rs[i].Pushes < rs[i-1].Pushes {
				t.Errorf("%s: pushes decreased from %d to %d as epsilon tightened %.0e -> %.0e",
					a, rs[i-1].Pushes, rs[i].Pushes, rs[i-1].Epsilon, rs[i].Epsilon)
			}
		}
	}
	var buf bytes.Buffer
	if err := PrintEpsilonRows(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestRunSourceDegree(t *testing.T) {
	p, ds := quick(t)
	rows, err := RunSourceDegree(p, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.SourceDegree < 0 || r.MeanLatency <= 0 {
			t.Errorf("bad row %+v", r)
		}
	}
	var buf bytes.Buffer
	if err := PrintSourceRows(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestBucketName(t *testing.T) {
	if bucketName(10) != "top-10" || bucketName(1000) != "top-1K" || bucketName(1_000_000) != "top-1M" {
		t.Fatalf("bucketName wrong: %s %s %s", bucketName(10), bucketName(1000), bucketName(1_000_000))
	}
	if itoa(0) != "0" || itoa(42) != "42" || itoa(-7) != "-7" {
		t.Fatal("itoa wrong")
	}
}

func TestRunBatchSize(t *testing.T) {
	p, ds := quick(t)
	rows, err := RunBatchSize(p, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(p.BatchRatios)*2*len(ds) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Approach == ApproachSeq && r.SpeedupOverSeq != 1 {
			t.Errorf("CPU-Seq speedup over itself should be 1, got %v", r.SpeedupOverSeq)
		}
	}
	var buf bytes.Buffer
	if err := PrintBatchSizeRows(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestRunResourceProfile(t *testing.T) {
	p, ds := quick(t)
	rows, err := RunResourceProfile(p, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(p.BatchRatios)*len(ds) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MeanFrontier <= 0 || r.Iterations == 0 {
			t.Errorf("bad resource row %+v", r)
		}
	}
	var buf bytes.Buffer
	if err := PrintResourceRows(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestRunScalability(t *testing.T) {
	p, ds := quick(t)
	rows, err := RunScalability(p, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(p.WorkerGrid)*len(ds) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.EdgesPerSecond <= 0 || r.SpeedupOverOneWorker <= 0 {
			t.Errorf("bad scalability row %+v", r)
		}
	}
	var buf bytes.Buffer
	if err := PrintScalabilityRows(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestRunAccuracy(t *testing.T) {
	p, ds := quick(t)
	rows, err := RunAccuracy(p, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*len(ds) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MaxError > r.Epsilon {
			t.Errorf("%s/%s: max error %v exceeds epsilon %v", r.Dataset, r.Approach, r.MaxError, r.Epsilon)
		}
	}
	var buf bytes.Buffer
	if err := PrintAccuracyRows(&buf, rows); err != nil {
		t.Fatal(err)
	}
}
