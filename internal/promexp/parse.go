package promexp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ParseText parses Prometheus text exposition format (version 0.0.4)
// strictly: families must declare a TYPE before their samples, all samples
// of a family must be contiguous, names and labels must be syntactically
// valid, every value must parse as a float, counters must be non-negative,
// summary samples must carry a quantile label in [0,1], and no time series
// may appear twice. It is the validation half of this package: a test that
// round-trips an exporter's output through ParseText proves a real scraper
// can ingest it.
func ParseText(r io.Reader) ([]Family, error) {
	p := &parser{
		scanner: bufio.NewScanner(r),
		byName:  make(map[string]*parsedFamily),
	}
	p.scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	if err := p.run(); err != nil {
		return nil, err
	}
	out := make([]Family, len(p.order))
	for i, name := range p.order {
		f := p.byName[name]
		for _, sig := range f.summaryOrder {
			f.Summaries = append(f.Summaries, *f.summaries[sig])
		}
		out[i] = f.Family
	}
	return out, nil
}

type parsedFamily struct {
	Family
	closed       bool // a later family started; more samples are an error
	sawSample    bool
	summaries    map[string]*SummarySample
	summaryOrder []string
	seenSeries   map[string]bool
}

type parser struct {
	scanner *bufio.Scanner
	line    int
	byName  map[string]*parsedFamily
	order   []string
	current *parsedFamily
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("promexp: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *parser) run() error {
	for p.scanner.Scan() {
		p.line++
		line := p.scanner.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case trimmed == "":
			continue
		case strings.HasPrefix(trimmed, "# HELP "):
			if err := p.parseHelp(strings.TrimPrefix(trimmed, "# HELP ")); err != nil {
				return err
			}
		case strings.HasPrefix(trimmed, "# TYPE "):
			if err := p.parseType(strings.TrimPrefix(trimmed, "# TYPE ")); err != nil {
				return err
			}
		case strings.HasPrefix(trimmed, "#"):
			continue // free-form comment
		default:
			if err := p.parseSample(trimmed); err != nil {
				return err
			}
		}
	}
	if err := p.scanner.Err(); err != nil {
		return fmt.Errorf("promexp: read: %w", err)
	}
	return nil
}

// family returns the open family named name, creating it if new and closing
// the previously open one if the name changed.
func (p *parser) family(name string) (*parsedFamily, error) {
	if p.current != nil && p.current.Name == name {
		return p.current, nil
	}
	if f, ok := p.byName[name]; ok {
		if f.closed {
			return nil, p.errf("samples of family %q are not contiguous", name)
		}
		return f, nil // only reachable for p.current == f
	}
	if p.current != nil {
		p.current.closed = true
	}
	f := &parsedFamily{
		summaries:  make(map[string]*SummarySample),
		seenSeries: make(map[string]bool),
	}
	f.Name = name
	p.byName[name] = f
	p.order = append(p.order, name)
	p.current = f
	return f, nil
}

func (p *parser) parseHelp(rest string) error {
	name, help, _ := strings.Cut(rest, " ")
	if !validMetricName(name) {
		return p.errf("invalid metric name %q in HELP", name)
	}
	f, err := p.family(name)
	if err != nil {
		return err
	}
	if f.sawSample || f.Type != "" {
		return p.errf("HELP for %q must precede its TYPE and samples", name)
	}
	if f.Help != "" {
		return p.errf("duplicate HELP for %q", name)
	}
	f.Help = unescapeHelp(help)
	return nil
}

func (p *parser) parseType(rest string) error {
	name, typ, _ := strings.Cut(rest, " ")
	if !validMetricName(name) {
		return p.errf("invalid metric name %q in TYPE", name)
	}
	f, err := p.family(name)
	if err != nil {
		return err
	}
	if f.Type != "" {
		return p.errf("duplicate TYPE for %q", name)
	}
	if f.sawSample {
		return p.errf("TYPE for %q must precede its samples", name)
	}
	switch Type(typ) {
	case Counter, Gauge, Summary:
		f.Type = Type(typ)
	default:
		return p.errf("unknown type %q for %q", typ, name)
	}
	return nil
}

func (p *parser) parseSample(line string) error {
	name, labels, value, err := p.splitSample(line)
	if err != nil {
		return err
	}
	famName := name
	suffix := ""
	if p.current != nil && p.current.Type == Summary {
		for _, s := range []string{"_sum", "_count"} {
			if name == p.current.Name+s {
				famName, suffix = p.current.Name, s
				break
			}
		}
	}
	if !validMetricName(famName) {
		return p.errf("invalid metric name %q", famName)
	}
	f, err := p.family(famName)
	if err != nil {
		return err
	}
	if f.Type == "" {
		return p.errf("sample for %q before its TYPE declaration", famName)
	}
	f.sawSample = true

	series := name + "\xff" + labelKey(labels)
	if f.seenSeries[series] {
		return p.errf("duplicate series %q{%s}", name, labelKey(labels))
	}
	f.seenSeries[series] = true

	if f.Type == Summary {
		return p.addSummarySample(f, suffix, labels, value)
	}
	if f.Type == Counter && (value < 0 || math.IsNaN(value)) {
		return p.errf("counter %q has non-counter value %v", name, value)
	}
	f.Samples = append(f.Samples, Sample{Labels: labels, Value: value})
	return nil
}

func (p *parser) addSummarySample(f *parsedFamily, suffix string, labels []Label, value float64) error {
	var quantile *float64
	base := make([]Label, 0, len(labels))
	for _, l := range labels {
		if l.Name == "quantile" && suffix == "" {
			q, err := strconv.ParseFloat(l.Value, 64)
			if err != nil || q < 0 || q > 1 {
				return p.errf("summary %q has bad quantile %q", f.Name, l.Value)
			}
			quantile = &q
			continue
		}
		base = append(base, l)
	}
	sig := labelKey(base)
	s, ok := f.summaries[sig]
	if !ok {
		s = &SummarySample{Labels: base}
		f.summaries[sig] = s
		f.summaryOrder = append(f.summaryOrder, sig)
	}
	switch suffix {
	case "_sum":
		s.Sum = value
	case "_count":
		if value < 0 || value != math.Trunc(value) {
			return p.errf("summary %q has non-integral count %v", f.Name, value)
		}
		s.Count = uint64(value)
	default:
		if quantile == nil {
			return p.errf("summary %q sample is missing the quantile label", f.Name)
		}
		s.Quantiles = append(s.Quantiles, Quantile{Q: *quantile, Value: value})
	}
	return nil
}

// splitSample tokenizes `name[{labels}] value [timestamp]`.
func (p *parser) splitSample(line string) (string, []Label, float64, error) {
	rest := line
	nameEnd := strings.IndexAny(rest, "{ \t")
	if nameEnd <= 0 {
		return "", nil, 0, p.errf("malformed sample %q", line)
	}
	name := rest[:nameEnd]
	rest = rest[nameEnd:]

	var labels []Label
	if strings.HasPrefix(rest, "{") {
		end := p.findLabelsEnd(rest)
		if end < 0 {
			return "", nil, 0, p.errf("unterminated label set in %q", line)
		}
		var err error
		labels, err = p.parseLabels(rest[1:end])
		if err != nil {
			return "", nil, 0, err
		}
		rest = rest[end+1:]
	}

	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, p.errf("expected value (and optional timestamp) in %q", line)
	}
	value, err := parseValue(fields[0])
	if err != nil {
		return "", nil, 0, p.errf("bad value %q: %v", fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, p.errf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

// findLabelsEnd locates the closing brace, skipping quoted strings.
func (p *parser) findLabelsEnd(s string) int {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++ // skip the escaped byte
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == '}':
			return i
		}
	}
	return -1
}

func (p *parser) parseLabels(s string) ([]Label, error) {
	var labels []Label
	seen := make(map[string]bool)
	rest := strings.TrimSpace(s)
	for rest != "" {
		eq := strings.Index(rest, "=")
		if eq <= 0 {
			return nil, p.errf("malformed label in %q", s)
		}
		name := strings.TrimSpace(rest[:eq])
		if !validLabelName(name) {
			return nil, p.errf("invalid label name %q", name)
		}
		if seen[name] {
			return nil, p.errf("duplicate label %q", name)
		}
		seen[name] = true
		rest = strings.TrimSpace(rest[eq+1:])
		if !strings.HasPrefix(rest, `"`) {
			return nil, p.errf("label %q value is not quoted", name)
		}
		value, remainder, err := p.parseQuoted(rest)
		if err != nil {
			return nil, err
		}
		labels = append(labels, Label{Name: name, Value: value})
		rest = strings.TrimSpace(remainder)
		if rest == "" {
			break
		}
		if !strings.HasPrefix(rest, ",") {
			return nil, p.errf("expected ',' between labels in %q", s)
		}
		rest = strings.TrimSpace(rest[1:]) // trailing comma is legal
	}
	return labels, nil
}

// parseQuoted consumes a leading quoted string, handling \\, \" and \n.
func (p *parser) parseQuoted(s string) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
			if i >= len(s) {
				return "", "", p.errf("dangling escape in label value")
			}
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", p.errf("unknown escape \\%c in label value", s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", p.errf("unterminated label value")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func unescapeHelp(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
