// Package promexp renders metrics in the Prometheus text exposition format
// (version 0.0.4) without depending on the Prometheus client library, and
// provides a strict parser of the same format so the exporter's output can
// be validated in tests and tooling.
//
// The model is deliberately small: a Family is one metric name with a HELP
// string, a TYPE, and its samples; Render writes a slice of families in the
// canonical layout (HELP and TYPE comments once per family, every sample of
// a family contiguous); Handler wraps a gather function into an
// http.Handler for a /metrics endpoint. Validation is strict on the write
// path too — an invalid metric or label name is a programming error that
// should fail loudly in tests, not produce output a scraper silently
// drops.
package promexp

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Type is a metric family's type as declared by the # TYPE comment.
type Type string

// The family types the exporter emits. (The format also defines histogram
// and untyped; add them when a producer needs them.)
const (
	Counter Type = "counter"
	Gauge   Type = "gauge"
	Summary Type = "summary"
)

// Label is one name="value" pair.
type Label struct {
	Name, Value string
}

// Sample is one time series of a counter or gauge family.
type Sample struct {
	Labels []Label
	Value  float64
}

// Quantile is one φ-quantile of a summary.
type Quantile struct {
	Q     float64 // e.g. 0.99
	Value float64
}

// SummarySample is one time series of a summary family: its quantile
// estimates plus the _sum and _count aggregates.
type SummarySample struct {
	Labels    []Label
	Quantiles []Quantile
	Sum       float64
	Count     uint64
}

// Family is one exported metric: a name, its HELP text, its TYPE, and the
// samples that share the name. Counter and gauge families fill Samples;
// summary families fill Summaries.
type Family struct {
	Name      string
	Help      string
	Type      Type
	Samples   []Sample
	Summaries []SummarySample
}

// ContentType is the Content-Type of a text-format /metrics response.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler wraps gather into an http.Handler serving GET /metrics. Gather
// runs per request; a render error (invalid names — a programming error)
// answers 500 with the message.
func Handler(gather func() []Family) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var buf strings.Builder
		if err := Render(&buf, gather()); err != nil {
			http.Error(w, "metrics render: "+err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		_, _ = io.WriteString(w, buf.String())
	})
}

// Render writes the families in text exposition format, validating names
// and label syntax. Families render in the given order; callers that want
// deterministic output across gathers should sort (see SortFamilies).
func Render(w io.Writer, families []Family) error {
	seen := make(map[string]bool, len(families))
	for _, f := range families {
		if err := validateFamily(f); err != nil {
			return err
		}
		if seen[f.Name] {
			return fmt.Errorf("promexp: duplicate family %q", f.Name)
		}
		seen[f.Name] = true
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
			return err
		}
		switch f.Type {
		case Summary:
			for _, s := range f.Summaries {
				for _, q := range s.Quantiles {
					labels := append(append([]Label(nil), s.Labels...),
						Label{Name: "quantile", Value: formatValue(q.Q)})
					if err := writeSample(w, f.Name, labels, q.Value); err != nil {
						return err
					}
				}
				if err := writeSample(w, f.Name+"_sum", s.Labels, s.Sum); err != nil {
					return err
				}
				if err := writeSample(w, f.Name+"_count", s.Labels, float64(s.Count)); err != nil {
					return err
				}
			}
		default:
			for _, s := range f.Samples {
				if err := writeSample(w, f.Name, s.Labels, s.Value); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// SortFamilies orders families by name and each family's samples by their
// label signature, giving byte-stable output for a fixed metric state.
func SortFamilies(families []Family) {
	sort.Slice(families, func(i, j int) bool { return families[i].Name < families[j].Name })
	for i := range families {
		f := &families[i]
		sort.Slice(f.Samples, func(a, b int) bool {
			return labelKey(f.Samples[a].Labels) < labelKey(f.Samples[b].Labels)
		})
		sort.Slice(f.Summaries, func(a, b int) bool {
			return labelKey(f.Summaries[a].Labels) < labelKey(f.Summaries[b].Labels)
		})
	}
}

func labelKey(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte('\xff')
		b.WriteString(l.Value)
		b.WriteByte('\xfe')
	}
	return b.String()
}

func writeSample(w io.Writer, name string, labels []Label, value float64) error {
	if _, err := io.WriteString(w, name); err != nil {
		return err
	}
	if len(labels) > 0 {
		if _, err := io.WriteString(w, "{"); err != nil {
			return err
		}
		for i, l := range labels {
			sep := ","
			if i == 0 {
				sep = ""
			}
			if _, err := fmt.Fprintf(w, `%s%s="%s"`, sep, l.Name, escapeLabelValue(l.Value)); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "}"); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, " %s\n", formatValue(value))
	return err
}

// formatValue renders a float the way Prometheus expects, with +Inf/-Inf
// and NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func validateFamily(f Family) error {
	if !validMetricName(f.Name) {
		return fmt.Errorf("promexp: invalid metric name %q", f.Name)
	}
	switch f.Type {
	case Counter, Gauge:
		if len(f.Summaries) > 0 {
			return fmt.Errorf("promexp: family %q: %s with summary samples", f.Name, f.Type)
		}
	case Summary:
		if len(f.Samples) > 0 {
			return fmt.Errorf("promexp: family %q: summary with scalar samples", f.Name)
		}
		for _, s := range f.Summaries {
			for _, q := range s.Quantiles {
				if q.Q < 0 || q.Q > 1 || math.IsNaN(q.Q) {
					return fmt.Errorf("promexp: family %q: quantile %v outside [0,1]", f.Name, q.Q)
				}
			}
			if err := validateLabels(f.Name, s.Labels, true); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("promexp: family %q: unknown type %q", f.Name, f.Type)
	}
	for _, s := range f.Samples {
		if err := validateLabels(f.Name, s.Labels, false); err != nil {
			return err
		}
	}
	if f.Type == Counter {
		for _, s := range f.Samples {
			if s.Value < 0 || math.IsNaN(s.Value) {
				return fmt.Errorf("promexp: family %q: counter value %v is not a non-negative number", f.Name, s.Value)
			}
		}
	}
	return nil
}

func validateLabels(family string, labels []Label, summary bool) error {
	seen := make(map[string]bool, len(labels))
	for _, l := range labels {
		if !validLabelName(l.Name) {
			return fmt.Errorf("promexp: family %q: invalid label name %q", family, l.Name)
		}
		if summary && l.Name == "quantile" {
			return fmt.Errorf("promexp: family %q: label %q is reserved on summaries", family, l.Name)
		}
		if seen[l.Name] {
			return fmt.Errorf("promexp: family %q: duplicate label %q", family, l.Name)
		}
		seen[l.Name] = true
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}
