package promexp

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testFamilies() []Family {
	return []Family{
		{
			Name: "dppr_requests_total",
			Help: `Total requests, by endpoint. Embedded "quotes" and a \ backslash`,
			Type: Counter,
			Samples: []Sample{
				{Labels: []Label{{Name: "endpoint", Value: "/topk"}}, Value: 42},
				{Labels: []Label{{Name: "endpoint", Value: `weird"value\with`}}, Value: 1},
			},
		},
		{
			Name:    "dppr_queue_depth",
			Help:    "Mutations waiting in the write pipeline.",
			Type:    Gauge,
			Samples: []Sample{{Value: 3}},
		},
		{
			Name: "dppr_request_duration_seconds",
			Help: "Request latency.",
			Type: Summary,
			Summaries: []SummarySample{
				{
					Labels: []Label{{Name: "endpoint", Value: "/topk"}},
					Quantiles: []Quantile{
						{Q: 0.5, Value: 0.0001},
						{Q: 0.99, Value: 0.003},
					},
					Sum:   1.5,
					Count: 1000,
				},
			},
		},
		{
			Name:    "dppr_scrape_inf",
			Type:    Gauge,
			Samples: []Sample{{Value: math.Inf(1)}},
		},
	}
}

func TestRenderParseRoundTrip(t *testing.T) {
	var b strings.Builder
	if err := Render(&b, testFamilies()); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	got, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseText of our own output: %v\n%s", err, text)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d families, want 4\n%s", len(got), text)
	}
	req := got[0]
	if req.Name != "dppr_requests_total" || req.Type != Counter || len(req.Samples) != 2 {
		t.Fatalf("family 0: %+v", req)
	}
	if !strings.Contains(req.Help, `"quotes"`) || !strings.Contains(req.Help, `\ backslash`) {
		t.Fatalf("help round trip: %q", req.Help)
	}
	if req.Samples[1].Labels[0].Value != `weird"value\with` {
		t.Fatalf("label escaping round trip: %q", req.Samples[1].Labels[0].Value)
	}
	sum := got[2]
	if sum.Type != Summary || len(sum.Summaries) != 1 {
		t.Fatalf("summary family: %+v", sum)
	}
	s := sum.Summaries[0]
	if s.Count != 1000 || s.Sum != 1.5 || len(s.Quantiles) != 2 || s.Quantiles[1].Q != 0.99 {
		t.Fatalf("summary sample: %+v", s)
	}
	if s.Labels[0] != (Label{Name: "endpoint", Value: "/topk"}) {
		t.Fatalf("summary labels: %+v", s.Labels)
	}
	if !math.IsInf(got[3].Samples[0].Value, 1) {
		t.Fatalf("Inf round trip: %v", got[3].Samples[0].Value)
	}
}

func TestRenderValidation(t *testing.T) {
	cases := []struct {
		name string
		fams []Family
	}{
		{"bad metric name", []Family{{Name: "1bad", Type: Gauge}}},
		{"bad label name", []Family{{Name: "ok", Type: Gauge,
			Samples: []Sample{{Labels: []Label{{Name: "0bad", Value: "x"}}}}}}},
		{"reserved label prefix", []Family{{Name: "ok", Type: Gauge,
			Samples: []Sample{{Labels: []Label{{Name: "__internal", Value: "x"}}}}}}},
		{"duplicate family", []Family{{Name: "ok", Type: Gauge}, {Name: "ok", Type: Gauge}}},
		{"unknown type", []Family{{Name: "ok", Type: Type("histogramish")}}},
		{"negative counter", []Family{{Name: "ok", Type: Counter, Samples: []Sample{{Value: -1}}}}},
		{"counter with summaries", []Family{{Name: "ok", Type: Counter,
			Summaries: []SummarySample{{}}}}},
		{"summary with scalar samples", []Family{{Name: "ok", Type: Summary,
			Samples: []Sample{{Value: 1}}}}},
		{"summary quantile out of range", []Family{{Name: "ok", Type: Summary,
			Summaries: []SummarySample{{Quantiles: []Quantile{{Q: 1.5, Value: 0}}}}}}},
		{"summary reserved quantile label", []Family{{Name: "ok", Type: Summary,
			Summaries: []SummarySample{{Labels: []Label{{Name: "quantile", Value: "x"}}}}}}},
		{"duplicate label", []Family{{Name: "ok", Type: Gauge,
			Samples: []Sample{{Labels: []Label{{Name: "a", Value: "1"}, {Name: "a", Value: "2"}}}}}}},
	}
	for _, tc := range cases {
		var b strings.Builder
		if err := Render(&b, tc.fams); err == nil {
			t.Errorf("%s: Render accepted invalid input:\n%s", tc.name, b.String())
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := []struct{ name, text string }{
		{"sample before TYPE", "foo 1\n"},
		{"duplicate TYPE", "# TYPE foo gauge\n# TYPE foo gauge\nfoo 1\n"},
		{"unknown TYPE", "# TYPE foo sidecar\nfoo 1\n"},
		{"bad value", "# TYPE foo gauge\nfoo oops\n"},
		{"unterminated labels", "# TYPE foo gauge\nfoo{a=\"b\" 1\n"},
		{"unquoted label value", "# TYPE foo gauge\nfoo{a=b} 1\n"},
		{"bad escape", `# TYPE foo gauge` + "\n" + `foo{a="\q"} 1` + "\n"},
		{"negative counter", "# TYPE foo counter\nfoo -1\n"},
		{"duplicate series", "# TYPE foo gauge\nfoo{a=\"1\"} 1\nfoo{a=\"1\"} 2\n"},
		{"interleaved families", "# TYPE foo gauge\nfoo 1\n# TYPE bar gauge\nbar 1\nfoo 2\n"},
		{"summary missing quantile", "# TYPE foo summary\nfoo 0.5\n"},
		{"summary bad quantile", "# TYPE foo summary\nfoo{quantile=\"2\"} 0.5\n"},
		{"HELP after samples", "# TYPE foo gauge\nfoo 1\n# HELP foo late\n"},
		{"bad timestamp", "# TYPE foo gauge\nfoo 1 notatime\n"},
		{"invalid metric name", "# TYPE fo-o gauge\nfo-o 1\n"},
	}
	for _, tc := range cases {
		if _, err := ParseText(strings.NewReader(tc.text)); err == nil {
			t.Errorf("%s: parser accepted:\n%s", tc.name, tc.text)
		}
	}
}

func TestParseAcceptsFormatFlexibility(t *testing.T) {
	// Things the exposition format allows that we do not emit ourselves:
	// free comments, timestamps, trailing label commas, Inf/NaN, escapes.
	text := strings.Join([]string{
		`# scraped by test`,
		`# HELP foo A help line with \\ and \n escapes`,
		`# TYPE foo gauge`,
		`foo{a="x",} 1 1712345678901`,
		`foo{a="y"} NaN`,
		`foo +Inf`,
		`# TYPE bar summary`,
		`bar{quantile="0.5"} 0.1`,
		`bar_sum 10`,
		`bar_count 100`,
		``,
	}, "\n")
	fams, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 2 {
		t.Fatalf("families: %+v", fams)
	}
	if fams[0].Help != "A help line with \\ and \n escapes" {
		t.Fatalf("help unescape: %q", fams[0].Help)
	}
	if len(fams[0].Samples) != 3 || !math.IsNaN(fams[0].Samples[1].Value) {
		t.Fatalf("samples: %+v", fams[0].Samples)
	}
	if fams[1].Summaries[0].Count != 100 || fams[1].Summaries[0].Quantiles[0].Q != 0.5 {
		t.Fatalf("summary: %+v", fams[1].Summaries[0])
	}
}

func TestSortFamiliesStable(t *testing.T) {
	fams := []Family{
		{Name: "zzz", Type: Gauge, Samples: []Sample{{Value: 1}}},
		{Name: "aaa", Type: Gauge, Samples: []Sample{
			{Labels: []Label{{Name: "l", Value: "b"}}, Value: 2},
			{Labels: []Label{{Name: "l", Value: "a"}}, Value: 1},
		}},
	}
	SortFamilies(fams)
	if fams[0].Name != "aaa" || fams[1].Name != "zzz" {
		t.Fatalf("family order: %s, %s", fams[0].Name, fams[1].Name)
	}
	if fams[0].Samples[0].Labels[0].Value != "a" {
		t.Fatalf("sample order: %+v", fams[0].Samples)
	}
}

func TestHandler(t *testing.T) {
	h := Handler(func() []Family { return testFamilies() })
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("Content-Type %q", ct)
	}
	fams, err := ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 4 {
		t.Fatalf("families over HTTP: %d", len(fams))
	}

	post, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d, want 405", post.StatusCode)
	}
}
