package power

import (
	"math"
	"testing"

	"dynppr/internal/gen"
	"dynppr/internal/graph"
)

// fig1Graph builds the 4-vertex running example of the paper (Figures 1/3):
// edges 1->4, 2->1, 3->1, 3->2, 4->3, with vertices renumbered 0..3.
func fig1Graph() *graph.Graph {
	return graph.FromEdges([]graph.Edge{
		{U: 0, V: 3},
		{U: 1, V: 0},
		{U: 2, V: 0},
		{U: 2, V: 1},
		{U: 3, V: 2},
	})
}

func TestOptionsValidation(t *testing.T) {
	bad := []Options{
		{Alpha: 0, Tolerance: 1e-9, MaxIterations: 10},
		{Alpha: 1, Tolerance: 1e-9, MaxIterations: 10},
		{Alpha: 0.5, Tolerance: 0, MaxIterations: 10},
		{Alpha: 0.5, Tolerance: 1e-9, MaxIterations: 0},
	}
	g := fig1Graph()
	for _, o := range bad {
		if _, err := ReverseGraph(g, 0, o); err == nil {
			t.Errorf("Reverse with %+v should fail", o)
		}
		if _, err := ForwardGraph(g, 0, o); err == nil {
			t.Errorf("Forward with %+v should fail", o)
		}
	}
	if _, err := ReverseGraph(g, 99, DefaultOptions()); err == nil {
		t.Error("out-of-range source should fail")
	}
	if _, err := ForwardGraph(g, -1, DefaultOptions()); err == nil {
		t.Error("negative source should fail")
	}
}

// The convergent state of Figure 3 (α=0.5, source v1=vertex 0) reports
// P1 = (0.5, 0.25, 0.1875, 0.0625) with residuals bounded by ε=0.1; the exact
// fixed point must be within 0.1 of those estimates (it is what the push was
// approximating).
func TestReverseMatchesPaperExample(t *testing.T) {
	g := fig1Graph()
	opts := DefaultOptions()
	opts.Alpha = 0.5
	pi, err := ReverseGraph(g, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	paperEstimate := []float64{0.5, 0.25, 0.1875, 0.0625}
	for v, want := range paperEstimate {
		if d := math.Abs(pi[v] - want); d > 0.1 {
			t.Errorf("pi[%d] = %v, paper estimate %v, |diff| = %v > 0.1", v, pi[v], want, d)
		}
	}
	// The source itself must hold at least α.
	if pi[0] < 0.5 {
		t.Errorf("pi[source] = %v, want >= alpha", pi[0])
	}
}

// Reverse values must satisfy Equation 2 with zero residual.
func TestReverseSatisfiesFixedPoint(t *testing.T) {
	g, err := gen.Generate(gen.Config{Model: gen.RMAT, Vertices: 200, Edges: 1500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	c := g.Snapshot()
	opts := DefaultOptions()
	pi, err := Reverse(c, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < c.NumVertices(); v++ {
		want := 0.0
		if v == 0 {
			want = opts.Alpha
		}
		out := c.OutNeighbors(graph.VertexID(v))
		if len(out) > 0 {
			var sum float64
			for _, w := range out {
				sum += pi[w]
			}
			want += (1 - opts.Alpha) * sum / float64(len(out))
		}
		if d := math.Abs(pi[v] - want); d > 1e-9 {
			t.Fatalf("fixed point violated at %d: pi=%v rhs=%v", v, pi[v], want)
		}
	}
}

// Reverse values are probabilities: within [0, 1], and exactly α·1{v=s} for a
// vertex with no outgoing edges.
func TestReverseRangeAndDangling(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{{U: 0, V: 1}, {U: 2, V: 1}})
	// vertex 1 is dangling.
	pi, err := ReverseGraph(g, 1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[1]-0.15) > 1e-12 {
		t.Errorf("dangling target pi = %v, want alpha", pi[1])
	}
	for v, x := range pi {
		if x < 0 || x > 1 {
			t.Errorf("pi[%d] = %v out of [0,1]", v, x)
		}
	}
	// Vertices 0 and 2 point straight at the target: value α(1-α)... at least
	// (1-α)·α of their walk mass reaches 1 on the first hop and stops with
	// probability α... exact value: (1-α)·pi[1] = (1-α)·α.
	want := (1 - 0.15) * 0.15
	if math.Abs(pi[0]-want) > 1e-9 || math.Abs(pi[2]-want) > 1e-9 {
		t.Errorf("pi[0]=%v pi[2]=%v want %v", pi[0], pi[2], want)
	}
}

// Forward PPR must sum to 1 (it is a probability distribution over stopping
// positions) and put at least α at the source.
func TestForwardIsDistribution(t *testing.T) {
	g, err := gen.Generate(gen.Config{Model: gen.BarabasiAlbert, Vertices: 300, Edges: 2000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	pi, err := ForwardGraph(g, 5, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for v, x := range pi {
		if x < -1e-12 {
			t.Fatalf("negative probability at %d: %v", v, x)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("forward PPR sums to %v, want 1", sum)
	}
	if pi[5] < 0.15-1e-9 {
		t.Fatalf("source mass %v < alpha", pi[5])
	}
}

// On a graph where every vertex has out-degree >= 1, forward PPR of s summed
// over targets equals 1 and reverse PPR towards s summed over *sources*
// weighting uniformly equals (1/n)·Σ_v π_v(s)·n — consistency check between
// the two formulations: Σ_s forward_s(v) over all s equals Σ reverse relation.
// We verify the simpler identity: forward from s at target t equals reverse
// towards t evaluated at s, for every pair on a small graph.
func TestForwardReverseDuality(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 1, V: 0}, {U: 2, V: 1},
	})
	opts := DefaultOptions()
	n := g.NumVertices()
	c := g.Snapshot()
	for s := graph.VertexID(0); int(s) < n; s++ {
		fwd, err := Forward(c, s, opts)
		if err != nil {
			t.Fatal(err)
		}
		for tgt := graph.VertexID(0); int(tgt) < n; tgt++ {
			rev, err := Reverse(c, tgt, opts)
			if err != nil {
				t.Fatal(err)
			}
			if d := math.Abs(fwd[tgt] - rev[s]); d > 1e-9 {
				t.Fatalf("duality violated: forward_%d(%d)=%v reverse_%d(%d)=%v",
					s, tgt, fwd[tgt], tgt, s, rev[s])
			}
		}
	}
}

func TestMaxAbsDiff(t *testing.T) {
	if d := MaxAbsDiff([]float64{1, 2, 3}, []float64{1, 2.5, 2}); d != 1 {
		t.Fatalf("MaxAbsDiff = %v, want 1", d)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	MaxAbsDiff([]float64{1}, []float64{1, 2})
}
