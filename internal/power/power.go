// Package power computes exact Personalized PageRank vectors by dense
// fixed-point iteration. It is the accuracy oracle of the repository: the
// local-update engines and the Monte-Carlo baseline are validated against it
// in tests, and the harness uses it to report measured errors.
//
// Two formulations are provided, matching the two quantities the rest of the
// repository estimates:
//
//   - Reverse (contribution) PPR — the quantity the local update scheme of
//     the paper maintains. Its invariant (Equation 2 of the paper) fixes, for
//     every vertex v,
//
//     π(v) = α·1{v=s} + (1−α)/dout(v) · Σ_{x ∈ Nout(v)} π(x)
//
//     with π(v) = α·1{v=s} when dout(v) = 0. π(v) is the probability that a
//     random walk from v, terminating at each step with probability α, stops
//     at s. The sequential and parallel push engines converge to this vector
//     within ε.
//
//   - Forward PPR — the classic source-personalized vector π_s, where
//     π_s(v) is the probability that an α-teleporting walk started at s is at
//     v when it stops. The incremental Monte-Carlo baseline estimates this
//     vector.
package power

import (
	"fmt"

	"dynppr/internal/graph"
)

// Options configure the fixed-point iteration.
type Options struct {
	// Alpha is the teleport/termination probability (paper default 0.15).
	Alpha float64
	// Tolerance is the L1-change convergence threshold.
	Tolerance float64
	// MaxIterations caps the number of iterations.
	MaxIterations int
}

// DefaultOptions returns options matching the paper's α with a tolerance
// tight enough to serve as ground truth for ε ≥ 1e-9.
func DefaultOptions() Options {
	return Options{Alpha: 0.15, Tolerance: 1e-12, MaxIterations: 10_000}
}

func (o Options) validate() error {
	if o.Alpha <= 0 || o.Alpha >= 1 {
		return fmt.Errorf("power: alpha must be in (0,1), got %v", o.Alpha)
	}
	if o.Tolerance <= 0 {
		return fmt.Errorf("power: tolerance must be positive, got %v", o.Tolerance)
	}
	if o.MaxIterations <= 0 {
		return fmt.Errorf("power: max iterations must be positive, got %v", o.MaxIterations)
	}
	return nil
}

func checkSource(n int, source graph.VertexID) error {
	if source < 0 || int(source) >= n {
		return fmt.Errorf("power: source %d out of range [0,%d)", source, n)
	}
	return nil
}

// Reverse computes the contribution PPR vector towards s on the snapshot:
// entry v is the probability an α-terminating walk from v stops at s. This is
// the exact fixed point of Equation 2 with zero residuals, i.e. the vector
// the push engines approximate within ε.
func Reverse(c *graph.CSR, s graph.VertexID, opts Options) ([]float64, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	n := c.NumVertices()
	if err := checkSource(n, s); err != nil {
		return nil, err
	}
	cur := make([]float64, n)
	next := make([]float64, n)
	for iter := 0; iter < opts.MaxIterations; iter++ {
		for v := 0; v < n; v++ {
			x := 0.0
			if graph.VertexID(v) == s {
				x = opts.Alpha
			}
			out := c.OutNeighbors(graph.VertexID(v))
			if len(out) > 0 {
				var sum float64
				for _, w := range out {
					sum += cur[w]
				}
				x += (1 - opts.Alpha) * sum / float64(len(out))
			}
			next[v] = x
		}
		var delta float64
		for i := range cur {
			d := next[i] - cur[i]
			if d < 0 {
				d = -d
			}
			delta += d
		}
		cur, next = next, cur
		if delta < opts.Tolerance {
			break
		}
	}
	out := make([]float64, n)
	copy(out, cur)
	return out, nil
}

// Forward computes the classic personalized PageRank vector π_s on the
// snapshot: entry v is the probability that a walk started at s, which at
// each step stops with probability α and otherwise moves to a uniform random
// out-neighbor, stops at v. A walk that reaches a dangling vertex stops
// there.
func Forward(c *graph.CSR, s graph.VertexID, opts Options) ([]float64, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	n := c.NumVertices()
	if err := checkSource(n, s); err != nil {
		return nil, err
	}
	// walking[v] = probability the walk is at v and still walking.
	// stopped[v] = probability the walk has stopped at v.
	walking := make([]float64, n)
	nextWalking := make([]float64, n)
	stopped := make([]float64, n)
	walking[s] = 1
	for iter := 0; iter < opts.MaxIterations; iter++ {
		var moved float64
		for i := range nextWalking {
			nextWalking[i] = 0
		}
		for u := 0; u < n; u++ {
			mass := walking[u]
			if mass == 0 {
				continue
			}
			out := c.OutNeighbors(graph.VertexID(u))
			if len(out) == 0 {
				// Dangling: the walk terminates here with its whole mass.
				stopped[u] += mass
				continue
			}
			stopped[u] += opts.Alpha * mass
			share := (1 - opts.Alpha) * mass / float64(len(out))
			for _, v := range out {
				nextWalking[v] += share
			}
			moved += (1 - opts.Alpha) * mass
		}
		walking, nextWalking = nextWalking, walking
		if moved < opts.Tolerance {
			break
		}
	}
	// Whatever is still walking is attributed to its current position.
	for v := 0; v < n; v++ {
		stopped[v] += walking[v]
	}
	return stopped, nil
}

// ReverseGraph snapshots a dynamic graph and calls Reverse.
func ReverseGraph(g *graph.Graph, s graph.VertexID, opts Options) ([]float64, error) {
	return Reverse(g.Snapshot(), s, opts)
}

// ForwardGraph snapshots a dynamic graph and calls Forward.
func ForwardGraph(g *graph.Graph, s graph.VertexID, opts Options) ([]float64, error) {
	return Forward(g.Snapshot(), s, opts)
}

// MaxAbsDiff returns the L∞ distance between two vectors of equal length; it
// panics if the lengths differ (programmer error in tests/harness).
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("power: length mismatch %d vs %d", len(a), len(b)))
	}
	var m float64
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
