// Package gen produces the synthetic graphs and edge streams used in place of
// the SNAP datasets of the paper's evaluation (Pokec, LiveJournal, Youtube,
// Orkut, Twitter). Real social networks are heavy-tailed, so the catalog is
// built from power-law generators (R-MAT and Barabási–Albert preferential
// attachment); a uniform Erdős–Rényi generator is included for tests and for
// workloads without skew.
//
// Every generator is deterministic given its seed.
package gen

import (
	"fmt"
	"math/rand"

	"dynppr/internal/graph"
)

// Model selects a random-graph model.
type Model int

const (
	// ErdosRenyi draws each edge's endpoints uniformly at random.
	ErdosRenyi Model = iota
	// BarabasiAlbert grows the graph by preferential attachment, producing a
	// power-law in-degree distribution.
	BarabasiAlbert
	// RMAT generates edges by recursive quadrant sampling (the Graph500
	// Kronecker generator), producing power-law degrees on both sides.
	RMAT
)

// String returns the model name.
func (m Model) String() string {
	switch m {
	case ErdosRenyi:
		return "erdos-renyi"
	case BarabasiAlbert:
		return "barabasi-albert"
	case RMAT:
		return "rmat"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// Config describes a synthetic graph to generate.
type Config struct {
	Name     string // catalog name, informational
	Model    Model
	Vertices int
	Edges    int
	Seed     int64

	// RMAT partition probabilities; zero values default to the Graph500
	// constants (0.57, 0.19, 0.19, 0.05).
	A, B, C float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Vertices <= 0 {
		return fmt.Errorf("gen: vertices must be positive, got %d", c.Vertices)
	}
	if c.Edges < 0 {
		return fmt.Errorf("gen: edges must be non-negative, got %d", c.Edges)
	}
	if c.A < 0 || c.B < 0 || c.C < 0 || c.A+c.B+c.C > 1+1e-9 {
		return fmt.Errorf("gen: invalid RMAT probabilities a=%v b=%v c=%v", c.A, c.B, c.C)
	}
	return nil
}

// EdgeList generates the edge list for the configuration. Self-loops are
// skipped and duplicate edges are allowed (the stream layer and graph layer
// both tolerate them); the returned list has exactly the requested number of
// non-self-loop edge occurrences, so the distinct-edge count of the resulting
// graph may be slightly smaller.
func EdgeList(c Config) ([]graph.Edge, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	switch c.Model {
	case ErdosRenyi:
		return erdosRenyi(c, rng), nil
	case BarabasiAlbert:
		return barabasiAlbert(c, rng), nil
	case RMAT:
		return rmat(c, rng), nil
	default:
		return nil, fmt.Errorf("gen: unknown model %v", c.Model)
	}
}

// Generate builds a graph directly from the configuration.
func Generate(c Config) (*graph.Graph, error) {
	edges, err := EdgeList(c)
	if err != nil {
		return nil, err
	}
	g := graph.New(c.Vertices)
	for _, e := range edges {
		if _, err := g.AddEdge(e.U, e.V); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func erdosRenyi(c Config, rng *rand.Rand) []graph.Edge {
	edges := make([]graph.Edge, 0, c.Edges)
	for len(edges) < c.Edges {
		u := graph.VertexID(rng.Intn(c.Vertices))
		v := graph.VertexID(rng.Intn(c.Vertices))
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	return edges
}

func barabasiAlbert(c Config, rng *rand.Rand) []graph.Edge {
	if c.Vertices < 2 {
		return nil
	}
	// Target endpoints are drawn from the list of all previous endpoints,
	// which is equivalent to degree-proportional sampling.
	edges := make([]graph.Edge, 0, c.Edges)
	endpoints := make([]graph.VertexID, 0, 2*c.Edges+2)
	endpoints = append(endpoints, 0, 1)
	edges = append(edges, graph.Edge{U: 0, V: 1})
	perVertex := c.Edges / c.Vertices
	if perVertex < 1 {
		perVertex = 1
	}
	for len(edges) < c.Edges {
		u := graph.VertexID(rng.Intn(c.Vertices))
		for k := 0; k < perVertex && len(edges) < c.Edges; k++ {
			v := endpoints[rng.Intn(len(endpoints))]
			if v == u {
				continue
			}
			edges = append(edges, graph.Edge{U: u, V: v})
			endpoints = append(endpoints, u, v)
		}
	}
	return edges
}

func rmat(c Config, rng *rand.Rand) []graph.Edge {
	a, b, cc := c.A, c.B, c.C
	if a == 0 && b == 0 && cc == 0 {
		a, b, cc = 0.57, 0.19, 0.19
	}
	// Number of bits needed to cover the vertex space.
	bits := 0
	for (1 << bits) < c.Vertices {
		bits++
	}
	edges := make([]graph.Edge, 0, c.Edges)
	for len(edges) < c.Edges {
		u, v := 0, 0
		for l := 0; l < bits; l++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left quadrant: no bits set
			case r < a+b:
				v |= 1 << l
			case r < a+b+cc:
				u |= 1 << l
			default:
				u |= 1 << l
				v |= 1 << l
			}
		}
		if u >= c.Vertices || v >= c.Vertices || u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: graph.VertexID(u), V: graph.VertexID(v)})
	}
	return edges
}
