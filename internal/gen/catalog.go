package gen

import (
	"fmt"
	"sort"
)

// Dataset is a named entry in the synthetic catalog that mirrors the dataset
// roster of the paper's evaluation (Section 5.1). The vertex/edge counts are
// scaled down by roughly 1000x so experiments finish on a laptop, while the
// degree skew of the original (social networks, power-law) is preserved by
// the generator choice.
type Dataset struct {
	Config
	// PaperVertices and PaperEdges record the size of the original dataset,
	// for documentation in experiment output.
	PaperVertices int
	PaperEdges    int
}

// Catalog returns the named synthetic datasets, smallest first. The names
// match the paper: Youtube, Pokec, LiveJournal, Orkut, Twitter.
func Catalog() []Dataset {
	return []Dataset{
		{
			Config:        Config{Name: "youtube", Model: RMAT, Vertices: 1100, Edges: 2900, Seed: 11},
			PaperVertices: 1_100_000, PaperEdges: 2_900_000,
		},
		{
			Config:        Config{Name: "pokec", Model: RMAT, Vertices: 1600, Edges: 30600, Seed: 12},
			PaperVertices: 1_600_000, PaperEdges: 30_600_000,
		},
		{
			Config:        Config{Name: "livejournal", Model: RMAT, Vertices: 4800, Edges: 68900, Seed: 13},
			PaperVertices: 4_800_000, PaperEdges: 68_900_000,
		},
		{
			Config:        Config{Name: "orkut", Model: BarabasiAlbert, Vertices: 3000, Edges: 117100, Seed: 14},
			PaperVertices: 3_000_000, PaperEdges: 117_100_000,
		},
		{
			Config:        Config{Name: "twitter", Model: RMAT, Vertices: 41600, Edges: 350000, Seed: 15},
			PaperVertices: 41_600_000, PaperEdges: 1_400_000_000,
		},
	}
}

// DatasetByName looks up a catalog entry by name.
func DatasetByName(name string) (Dataset, error) {
	for _, d := range Catalog() {
		if d.Name == name {
			return d, nil
		}
	}
	names := DatasetNames()
	return Dataset{}, fmt.Errorf("gen: unknown dataset %q (have %v)", name, names)
}

// DatasetNames returns the catalog names in catalog order.
func DatasetNames() []string {
	cat := Catalog()
	names := make([]string, len(cat))
	for i, d := range cat {
		names[i] = d.Name
	}
	return names
}

// SmallCatalog returns a reduced catalog (the three smallest datasets) for
// fast experiment runs and tests.
func SmallCatalog() []Dataset {
	cat := Catalog()
	sort.Slice(cat, func(i, j int) bool { return cat[i].Edges < cat[j].Edges })
	if len(cat) > 3 {
		cat = cat[:3]
	}
	return cat
}
