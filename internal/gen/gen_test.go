package gen

import (
	"testing"
	"testing/quick"

	"dynppr/internal/graph"
)

func TestValidate(t *testing.T) {
	bad := []Config{
		{Vertices: 0, Edges: 10},
		{Vertices: -1, Edges: 10},
		{Vertices: 10, Edges: -1},
		{Vertices: 10, Edges: 5, A: 0.6, B: 0.3, C: 0.3},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
	good := Config{Vertices: 10, Edges: 5}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(%+v) = %v", good, err)
	}
}

func TestEdgeListModels(t *testing.T) {
	for _, m := range []Model{ErdosRenyi, BarabasiAlbert, RMAT} {
		c := Config{Model: m, Vertices: 128, Edges: 500, Seed: 42}
		edges, err := EdgeList(c)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(edges) != c.Edges {
			t.Fatalf("%v: got %d edges, want %d", m, len(edges), c.Edges)
		}
		for _, e := range edges {
			if e.U == e.V {
				t.Fatalf("%v: self loop %v", m, e)
			}
			if e.U < 0 || int(e.U) >= c.Vertices || e.V < 0 || int(e.V) >= c.Vertices {
				t.Fatalf("%v: edge out of range %v", m, e)
			}
		}
	}
}

func TestEdgeListDeterministic(t *testing.T) {
	c := Config{Model: RMAT, Vertices: 256, Edges: 1000, Seed: 7}
	a, err := EdgeList(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EdgeList(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c2 := c
	c2.Seed = 8
	b2, _ := EdgeList(c2)
	same := true
	for i := range a {
		if a[i] != b2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical edge lists")
	}
}

func TestGenerateBuildsGraph(t *testing.T) {
	g, err := Generate(Config{Model: BarabasiAlbert, Vertices: 200, Edges: 800, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() < 2 || g.NumEdges() == 0 {
		t.Fatalf("graph too small: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if err := g.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateUnknownModel(t *testing.T) {
	if _, err := EdgeList(Config{Model: Model(99), Vertices: 10, Edges: 5}); err == nil {
		t.Fatal("unknown model should error")
	}
}

func TestModelString(t *testing.T) {
	if ErdosRenyi.String() != "erdos-renyi" || BarabasiAlbert.String() != "barabasi-albert" ||
		RMAT.String() != "rmat" || Model(9).String() == "" {
		t.Fatal("Model.String broken")
	}
}

// Power-law generators must produce skewed degree distributions: the top 1%
// of vertices should hold a disproportionate share of the edges relative to a
// uniform graph.
func TestRMATIsSkewed(t *testing.T) {
	n, m := 1024, 20000
	skewed, err := Generate(Config{Model: RMAT, Vertices: n, Edges: m, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := Generate(Config{Model: ErdosRenyi, Vertices: n, Edges: m, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	shareTop := func(g *graph.Graph) float64 {
		top := g.TopDegreeVertices(n / 100)
		sum := 0
		for _, v := range top {
			sum += g.OutDegree(v)
		}
		return float64(sum) / float64(g.NumEdges())
	}
	if s, u := shareTop(skewed), shareTop(uniform); s <= u {
		t.Fatalf("rmat top-1%% share %.3f should exceed uniform %.3f", s, u)
	}
}

func TestCatalog(t *testing.T) {
	cat := Catalog()
	if len(cat) != 5 {
		t.Fatalf("catalog size = %d, want 5", len(cat))
	}
	names := map[string]bool{}
	for _, d := range cat {
		if err := d.Validate(); err != nil {
			t.Errorf("dataset %s invalid: %v", d.Name, err)
		}
		if d.PaperEdges <= d.Edges {
			t.Errorf("dataset %s: paper edges %d should exceed scaled edges %d", d.Name, d.PaperEdges, d.Edges)
		}
		names[d.Name] = true
	}
	for _, want := range []string{"youtube", "pokec", "livejournal", "orkut", "twitter"} {
		if !names[want] {
			t.Errorf("catalog missing %s", want)
		}
	}
	if _, err := DatasetByName("pokec"); err != nil {
		t.Errorf("DatasetByName(pokec): %v", err)
	}
	if _, err := DatasetByName("no-such"); err == nil {
		t.Error("DatasetByName should fail for unknown names")
	}
	if len(DatasetNames()) != 5 {
		t.Error("DatasetNames length wrong")
	}
	small := SmallCatalog()
	if len(small) != 3 {
		t.Fatalf("SmallCatalog size = %d", len(small))
	}
	for i := 1; i < len(small); i++ {
		if small[i].Edges < small[i-1].Edges {
			t.Fatal("SmallCatalog not sorted by edges")
		}
	}
}

// Property: every generated edge list respects the vertex bound regardless of
// seed and size.
func TestEdgeListBoundsProperty(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint16) bool {
		n := int(nRaw)%500 + 2
		m := int(mRaw) % 2000
		for _, model := range []Model{ErdosRenyi, RMAT, BarabasiAlbert} {
			edges, err := EdgeList(Config{Model: model, Vertices: n, Edges: m, Seed: seed})
			if err != nil {
				return false
			}
			for _, e := range edges {
				if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n || e.U == e.V {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
