package parallel

import (
	"math"
	"math/rand"
	"testing"

	"dynppr/internal/gen"
	"dynppr/internal/graph"
	"dynppr/internal/power"
	"dynppr/internal/push"
)

func TestDeltaAddTracksFirstTouch(t *testing.T) {
	d := Delta{buf: make([]float64, 8)}
	d.Add(3, 0.5)
	d.Add(5, 0.25)
	d.Add(3, 0.5)
	if len(d.touched) != 2 || d.touched[0] != 3 || d.touched[1] != 5 {
		t.Fatalf("touched = %v", d.touched)
	}
	if d.buf[3] != 1.0 || d.buf[5] != 0.25 {
		t.Fatalf("buf = %v", d.buf)
	}
}

func TestSortedCandidates(t *testing.T) {
	if SortedCandidates(nil, 10) != nil {
		t.Fatal("nil candidates must stay nil (full scan)")
	}
	got := SortedCandidates([]int32{7, 3, -1, 7, 12, 0, 3}, 10)
	want := []int32{0, 3, 7}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestMachineAccessors(t *testing.T) {
	m := NewMachine(0, 0)
	if m.Workers() < 1 {
		t.Fatal("workers must default to >= 1")
	}
	if m.Cutover() != DefaultCutover {
		t.Fatalf("cutover = %d", m.Cutover())
	}
	e := NewPushEngine(4)
	if e.Name() != "deterministic-w4" || e.Workers() != 4 {
		t.Fatalf("engine accessors: %s", e.Name())
	}
}

// replayStates runs the same mixed insert/delete stream through one
// push.State per engine, pushing after every batch, and returns the final
// states. All engines see identical graphs and batches.
func replayStates(t *testing.T, engines []push.Engine, seed int64) []*push.State {
	t.Helper()
	base, err := gen.EdgeList(gen.Config{Model: gen.RMAT, Vertices: 150, Edges: 1200, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	cfg := push.Config{Alpha: 0.15, Epsilon: 1e-5}
	states := make([]*push.State, len(engines))
	for i, e := range engines {
		g := graph.FromEdges(base[:800])
		source := g.TopDegreeVertices(1)[0]
		st, err := push.NewState(g, source, cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.Run(st, []graph.VertexID{source})
		rng := rand.New(rand.NewSource(seed + 7))
		next := 800
		for b := 0; b < 5; b++ {
			var touched []graph.VertexID
			for k := 0; k < 50; k++ {
				if rng.Intn(3) == 0 {
					edges := st.Graph().Edges()
					if len(edges) == 0 {
						continue
					}
					del := edges[rng.Intn(len(edges))]
					if changed, _ := st.ApplyDelete(del.U, del.V); changed {
						touched = append(touched, del.U)
					}
				} else {
					ins := base[next%len(base)]
					next++
					if changed, _ := st.ApplyInsert(ins.U, ins.V); changed {
						touched = append(touched, ins.U)
					}
				}
			}
			e.Run(st, touched)
			if !st.Converged() {
				t.Fatalf("%s: batch %d not converged", e.Name(), b)
			}
		}
		states[i] = st
	}
	return states
}

// TestDeterministicBitIdenticalAcrossWorkers is the core determinism claim:
// over a dynamic stream of inserts and deletes, the engine's estimate and
// residual vectors carry exactly the same float64 bits at parallelism 1, 2,
// 3, 8 and 16 — worker count is pure scheduling.
func TestDeterministicBitIdenticalAcrossWorkers(t *testing.T) {
	engines := []push.Engine{
		NewPushEngine(1),
		NewPushEngine(2),
		NewPushEngine(3),
		NewPushEngine(8),
		NewPushEngine(16),
	}
	states := replayStates(t, engines, 11)
	ref := states[0]
	refP, refR := ref.Estimates(), ref.Residuals()
	for i, st := range states[1:] {
		p, r := st.Estimates(), st.Residuals()
		if len(p) != len(refP) {
			t.Fatalf("%s: vector length %d vs %d", engines[i+1].Name(), len(p), len(refP))
		}
		for v := range p {
			if math.Float64bits(p[v]) != math.Float64bits(refP[v]) {
				t.Fatalf("%s: estimate bits differ at vertex %d: %x vs %x",
					engines[i+1].Name(), v, math.Float64bits(p[v]), math.Float64bits(refP[v]))
			}
			if math.Float64bits(r[v]) != math.Float64bits(refR[v]) {
				t.Fatalf("%s: residual bits differ at vertex %d", engines[i+1].Name(), v)
			}
		}
	}
}

// TestCutoverDoesNotChangeBits pins that the adaptive cutover is pure
// scheduling too: forcing every round inline (huge cutover) and forcing
// every round through the fan-out (zero-ish cutover = 1) both reproduce the
// default engine's bits.
func TestCutoverDoesNotChangeBits(t *testing.T) {
	engines := []push.Engine{
		NewPushEngine(4),
		NewPushEngineCutover(4, 1),
		NewPushEngineCutover(4, 1<<30),
	}
	states := replayStates(t, engines, 23)
	refP := states[0].Estimates()
	for i, st := range states[1:] {
		p := st.Estimates()
		for v := range p {
			if math.Float64bits(p[v]) != math.Float64bits(refP[v]) {
				t.Fatalf("%s (case %d): cutover changed bits at vertex %d", engines[i+1].Name(), i, v)
			}
		}
	}
}

// TestDeterministicApproximatesOracle checks the engine keeps the push
// contract: converged, invariant intact, within ε of the exact vector.
func TestDeterministicApproximatesOracle(t *testing.T) {
	g, err := gen.Generate(gen.Config{Model: gen.RMAT, Vertices: 300, Edges: 2500, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	source := g.TopDegreeVertices(1)[0]
	cfg := push.Config{Alpha: 0.15, Epsilon: 1e-4}
	oracle, err := power.ReverseGraph(g, source, power.Options{Alpha: cfg.Alpha, Tolerance: 1e-13, MaxIterations: 20000})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		e := NewPushEngine(workers)
		st, err := push.NewState(g, source, cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.Run(st, []graph.VertexID{source})
		if !st.Converged() {
			t.Fatalf("%s: not converged", e.Name())
		}
		if inv := st.InvariantError(); inv > 1e-9 {
			t.Fatalf("%s: invariant error %v", e.Name(), inv)
		}
		if worst := power.MaxAbsDiff(st.Estimates(), oracle); worst > cfg.Epsilon {
			t.Fatalf("%s: max error %v exceeds epsilon %v", e.Name(), worst, cfg.Epsilon)
		}
	}
}

// TestRunOnConvergedStateIsNoop mirrors the push package's contract test.
func TestRunOnConvergedStateIsNoop(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{{U: 1, V: 0}, {U: 2, V: 0}, {U: 2, V: 1}})
	st, err := push.NewState(g, 0, push.Config{Alpha: 0.15, Epsilon: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	e := NewPushEngine(2)
	e.Run(st, []graph.VertexID{0})
	before := st.Estimates()
	e.Run(st, nil)
	after := st.Estimates()
	for v := range before {
		if math.Float64bits(before[v]) != math.Float64bits(after[v]) {
			t.Fatalf("re-running on a converged state changed vertex %d", v)
		}
	}
}

// TestSelfLoopAndDangling exercises the corner topologies through the
// deterministic schedule: a self-loop keeps propagating to its own residual,
// and a vertex with a deleted last out-edge flips through the negative
// phase.
func TestSelfLoopAndDangling(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{{U: 0, V: 0}, {U: 1, V: 0}, {U: 2, V: 1}})
	st, err := push.NewState(g, 0, push.Config{Alpha: 0.15, Epsilon: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	e := NewPushEngine(2)
	e.Run(st, []graph.VertexID{0})
	if !st.Converged() {
		t.Fatal("not converged with self-loop")
	}
	if changed, _ := st.ApplyDelete(1, 0); !changed {
		t.Fatal("delete must apply")
	}
	e.Run(st, []graph.VertexID{1})
	if !st.Converged() {
		t.Fatal("not converged after deletion")
	}
	oracle, err := power.ReverseGraph(st.Graph(), 0, power.Options{Alpha: 0.15, Tolerance: 1e-13, MaxIterations: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if worst := power.MaxAbsDiff(st.Estimates(), oracle); worst > 1e-7 {
		t.Fatalf("max error %v", worst)
	}
}
