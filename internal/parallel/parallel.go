// Package parallel implements a deterministic parallel local push: the
// active residual frontier is partitioned into a fixed number of stripes,
// each stripe accumulates its residual transfers into a private delta
// buffer, and the buffers are merged by an ordered reduction — every vertex
// is merged by exactly one goroutine, summing the stripe deltas in fixed
// stripe order. Because the stripe partition depends only on the frontier
// (never on the worker count) and every floating-point addition happens in a
// schedule-independent order, the engine produces bit-identical estimate and
// residual vectors at any degree of parallelism: running with 8 workers
// yields exactly the float64 bits of the single-worker (sequential)
// execution.
//
// This determinism is what the atomic-add engines of internal/push cannot
// offer: there, the order in which concurrent AtomicAdd calls land on a
// residual depends on goroutine scheduling, so two runs differ in the last
// ulps even though both stay within ε. The deterministic engine makes the
// serving layer reproducible — replaying a batch log yields identical
// snapshots — at the cost of a round-synchronous schedule.
//
// The round schedule is the eager-propagation order of the paper's Algorithm
// 4: every frontier vertex propagates the residual it holds at round start,
// and the self-update afterwards subtracts exactly the propagated amount, so
// residual mass arriving mid-round is kept rather than lost to the next
// round. Within a round there are four barrier-separated sessions:
//
//  1. Stripe propagation: stripe k owns the contiguous frontier range
//     [k·F/S, (k+1)·F/S) and streams each vertex's transfers into its
//     private Delta buffer. No shared writes. A stripe reads its own
//     accumulated delta on top of the round-start residual (intra-stripe
//     absorption), recovering part of the sequential engine's Gauss–Seidel
//     efficiency without giving up determinism.
//  2. Ordered merge: the union of touched vertices is collected in stripe
//     order, then each touched vertex v — owned by exactly one iteration —
//     receives r(v) += Σ_k delta_k(v) with k ascending. Adding the zero
//     entries of non-touching stripes is exact, so the sum is independent of
//     which stripes touched v.
//  3. Self-update: every frontier vertex u commits p(u) += α·taken(u) and
//     r(u) -= taken(u). Frontier vertices are distinct, so no shared writes.
//  4. Frontier generation: touched vertices still violating the threshold
//     form the next frontier, in the (deterministic) order the merge
//     collected them.
//
// Small frontiers fall back to an inline single-worker execution of the very
// same schedule (the adaptive cutover), so the fallback is free of goroutine
// fan-out overhead and still bit-identical.
package parallel

import (
	"slices"

	"dynppr/internal/fp"
	"dynppr/internal/metrics"
)

// NumStripes is the number of frontier stripes (and private delta buffers).
// It is a fixed constant — independent of the worker count — because the
// stripe partition determines the floating-point summation order: changing
// it changes the last-ulp rounding of results (never their ε-accuracy).
// Propagation parallelism is therefore capped at NumStripes. Fewer stripes
// also mean more intra-stripe absorption (see round) and a cheaper merge,
// at the cost of the parallelism cap.
const NumStripes = 8

// DefaultCutover is the frontier size below which a round runs inline on the
// calling goroutine: fan-out overhead dominates for small frontiers, and the
// incremental batches of a converged tracker rarely activate more than a few
// dozen vertices.
const DefaultCutover = 128

// mergeGrain is the dynamic-scheduling block size for the merge and
// self-update sessions.
const mergeGrain = 64

// Delta is one stripe's private residual-delta buffer: a dense float64
// vector plus the list of touched vertices in first-touch order. Within one
// push phase every increment has the same sign and is non-zero, so a zero
// entry means "untouched" and no separate membership structure is needed.
type Delta struct {
	buf     []float64
	touched []int32
}

// Add accumulates inc into the delta of v. inc must be non-zero and carry
// the sign of the current phase (see the Delta invariant above).
func (d *Delta) Add(v int32, inc float64) {
	if d.buf[v] == 0 {
		d.touched = append(d.touched, v)
	}
	d.buf[v] += inc
}

// PropagateFunc streams the residual transfers of frontier vertex u, whose
// residual at round start is ru, into the stripe's delta buffer via d.Add.
// Implementations must be pure: same (u, ru) in, same d.Add calls out,
// reading only state that is constant for the duration of the round (the
// graph topology).
type PropagateFunc func(d *Delta, u int32, ru float64)

// Machine holds the reusable buffers and scheduling parameters of the
// deterministic push. A Machine is stateful scratch space, not shared state:
// like the engines of internal/push it must be driven from one goroutine at
// a time (the parallelism lives inside Converge).
type Machine struct {
	workers int
	cutover int

	// onFrontier, when set, is invoked once per round from the coordinating
	// goroutine with the round's frontier — the exact set of vertices whose
	// estimate the round updates. The serving layer points it at
	// push.State.MarkEstimatesDirty so delta snapshot publication knows what
	// changed; the hook must not retain the slice past the call.
	onFrontier func([]int32)

	stripes [NumStripes]Delta
	taken   []float64
	marked  []bool
	merged  []int32
	// free holds the frontier buffers not currently in use; Converge
	// double-buffers the frontier through them, so the steady state runs
	// with two recycled arrays and no allocation.
	free [][]int32
}

// NewMachine returns a machine running up to workers goroutines per session
// (workers <= 0 selects GOMAXPROCS) with the given adaptive cutover
// (cutover <= 0 selects DefaultCutover). The worker count never influences
// results, only wall-clock time.
func NewMachine(workers, cutover int) *Machine {
	workers = fp.ClampWorkers(workers)
	if cutover <= 0 {
		cutover = DefaultCutover
	}
	return &Machine{workers: workers, cutover: cutover}
}

// Workers returns the configured degree of parallelism.
func (m *Machine) Workers() int { return m.workers }

// Cutover returns the frontier size below which rounds run inline.
func (m *Machine) Cutover() int { return m.cutover }

// SetFrontierHook installs the per-round frontier callback (nil disables
// it). The hook never influences results — it only observes the schedule.
func (m *Machine) SetFrontierHook(fn func([]int32)) { m.onFrontier = fn }

// getBuf pops a recycled frontier buffer (empty, possibly nil on first use).
func (m *Machine) getBuf() []int32 {
	if n := len(m.free); n > 0 {
		b := m.free[n-1]
		m.free = m.free[:n-1]
		return b[:0]
	}
	return nil
}

// putBuf returns a frontier buffer to the recycle pool.
func (m *Machine) putBuf(b []int32) {
	if cap(b) > 0 {
		m.free = append(m.free, b[:0])
	}
}

// ensure grows the per-vertex buffers to cover n vertices.
func (m *Machine) ensure(n int) {
	if len(m.marked) >= n {
		return
	}
	m.marked = append(m.marked, make([]bool, n-len(m.marked))...)
	for k := range m.stripes {
		d := &m.stripes[k]
		d.buf = append(d.buf, make([]float64, n-len(d.buf))...)
	}
}

// Converge drains every residual whose absolute value exceeds eps, first the
// positive then the negative phase, exactly like the engines of
// internal/push. candidates lists the vertices whose residual may violate
// the threshold, sorted ascending and deduplicated (nil requests a full
// scan); p and r are the estimate/residual vectors, already sized to the
// graph. The result is bit-identical for every workers value.
func (m *Machine) Converge(p, r *fp.Float64Vector, alpha, eps float64, candidates []int32, counters *metrics.Counters, propagate PropagateFunc) {
	m.ensure(r.Len())
	m.convergePhase(p, r, alpha, eps, candidates, true, counters, propagate)
	m.convergePhase(p, r, alpha, eps, candidates, false, counters, propagate)
}

func (m *Machine) convergePhase(p, r *fp.Float64Vector, alpha, eps float64, candidates []int32, positive bool, counters *metrics.Counters, propagate PropagateFunc) {
	cond := func(x float64) bool { return x > eps }
	if !positive {
		cond = func(x float64) bool { return x < -eps }
	}
	frontier := m.initialFrontier(r, candidates, cond)
	for len(frontier) > 0 {
		counters.ObserveIteration(len(frontier))
		if m.onFrontier != nil {
			m.onFrontier(frontier)
		}
		frontier = m.round(p, r, alpha, frontier, cond, counters, propagate)
	}
	m.putBuf(frontier)
}

// initialFrontier filters the candidates (or all vertices) by the phase
// condition into a recycled frontier buffer. candidates are sorted, so the
// result is sorted.
func (m *Machine) initialFrontier(r *fp.Float64Vector, candidates []int32, cond func(float64) bool) []int32 {
	frontier := m.getBuf()
	if candidates == nil {
		n := r.Len()
		for v := 0; v < n; v++ {
			if cond(r.Get(v)) {
				frontier = append(frontier, int32(v))
			}
		}
	} else {
		for _, v := range candidates {
			if cond(r.Get(int(v))) {
				frontier = append(frontier, v)
			}
		}
	}
	return frontier
}

// round executes one barrier-synchronous push round over the frontier and
// returns the next frontier. The returned slice reuses m's buffers; the
// frontier passed in is recycled as the next spare buffer.
func (m *Machine) round(p, r *fp.Float64Vector, alpha float64, frontier []int32, cond func(float64) bool, counters *metrics.Counters, propagate PropagateFunc) []int32 {
	workers := m.workers
	if len(frontier) <= m.cutover {
		// Adaptive cutover: same schedule, same arithmetic, inline — the
		// fp helpers run the loop on the calling goroutine for workers 1.
		workers = 1
	}
	F := len(frontier)
	if cap(m.taken) < F {
		m.taken = make([]float64, F)
	}
	taken := m.taken[:F]

	// Session 1: stripe propagation. Stripe k owns the contiguous frontier
	// range [k·F/S, (k+1)·F/S); the partition depends only on F. The
	// residual taken from u is the round-start value plus whatever this
	// stripe itself has already accumulated on u (intra-stripe absorption):
	// the stripe's own deltas are produced by its fixed sequential scan, so
	// reading them is as deterministic as reading r, and the mass they carry
	// is propagated this round instead of costing an extra round.
	fp.ForDynamic(NumStripes, workers, 1, func(k int) {
		d := &m.stripes[k]
		lo, hi := k*F/NumStripes, (k+1)*F/NumStripes
		for i := lo; i < hi; i++ {
			u := frontier[i]
			ru := r.Get(int(u)) + d.buf[u]
			taken[i] = ru
			propagate(d, u, ru)
		}
	})
	counters.AddPushes(int64(F))

	// Session 2: ordered merge. Collect the union of touched vertices in
	// stripe order (cheap, sequential), then merge each exactly once,
	// summing stripe deltas in ascending stripe order. Zero entries of
	// stripes that did not touch v contribute exactly nothing, so the sum
	// does not depend on which stripes touched v.
	merged := m.merged[:0]
	for k := range m.stripes {
		for _, v := range m.stripes[k].touched {
			if !m.marked[v] {
				m.marked[v] = true
				merged = append(merged, v)
			}
		}
	}
	fp.ForDynamic(len(merged), workers, mergeGrain, func(i int) {
		v := int(merged[i])
		s := r.Get(v)
		for k := range m.stripes {
			s += m.stripes[k].buf[v]
			m.stripes[k].buf[v] = 0
		}
		r.Set(v, s)
	})

	// Session 3: self-update. Every frontier vertex commits the residual it
	// propagated: the estimate gains the α share, the residual loses what
	// was sent. A frontier vertex untouched by session 2 ends at exactly 0.
	fp.ForDynamic(F, workers, mergeGrain, func(i int) {
		u := int(frontier[i])
		ru := taken[i]
		p.Set(u, p.Get(u)+alpha*ru)
		r.Set(u, r.Get(u)-ru)
	})

	// Session 4: frontier generation from the touched set. The merged list
	// was collected in stripe-then-first-touch order, which depends only on
	// the round's inputs, so the next frontier needs no sorting to be
	// deterministic.
	next := m.getBuf()
	for _, v := range merged {
		m.marked[v] = false
		if cond(r.Get(int(v))) {
			next = append(next, v)
		}
	}
	for k := range m.stripes {
		m.stripes[k].touched = m.stripes[k].touched[:0]
	}
	counters.AddEnqueues(int64(len(next)))

	m.merged = merged[:0]
	m.putBuf(frontier)
	return next
}

// SortedCandidates prepares a candidate list for Converge: out-of-range and
// negative ids are dropped, the rest sorted ascending and deduplicated. nil
// stays nil (full scan).
func SortedCandidates(candidates []int32, n int) []int32 {
	if candidates == nil {
		return nil
	}
	return SortedCandidatesInto(nil, candidates, n)
}

// emptyCandidates keeps an empty (but non-nil) candidate list distinct from
// the nil "full scan" request when the reusable buffer has no storage yet.
var emptyCandidates = make([]int32, 0)

// SortedCandidatesInto is SortedCandidates into a reusable buffer, for
// callers on the steady-state batch path that must not allocate. A nil
// candidate list returns nil (full scan) regardless of dst.
func SortedCandidatesInto(dst, candidates []int32, n int) []int32 {
	if candidates == nil {
		return nil
	}
	out := dst[:0]
	for _, v := range candidates {
		if v >= 0 && int(v) < n {
			out = append(out, v)
		}
	}
	slices.Sort(out)
	out = slices.Compact(out)
	if out == nil {
		out = emptyCandidates
	}
	return out
}
