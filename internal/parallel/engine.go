package parallel

import (
	"fmt"

	"dynppr/internal/graph"
	"dynppr/internal/push"
)

// PushEngine runs the deterministic parallel push over a contribution-PPR
// state (the reverse formulation of internal/push): frontier vertex u sends
// (1−α)·r(u)/dout(v) to every in-neighbor v. It implements push.Engine and
// produces bit-identical results at every worker count — see the package
// comment for the schedule.
type PushEngine struct {
	m *Machine
}

// NewPushEngine returns a deterministic engine with the given degree of
// parallelism (<= 0 selects GOMAXPROCS) and the default adaptive cutover.
func NewPushEngine(workers int) *PushEngine {
	return &PushEngine{m: NewMachine(workers, 0)}
}

// NewPushEngineCutover is NewPushEngine with an explicit cutover, exposed
// for tests that pin the inline and fanned-out paths.
func NewPushEngineCutover(workers, cutover int) *PushEngine {
	return &PushEngine{m: NewMachine(workers, cutover)}
}

// Name implements push.Engine.
func (e *PushEngine) Name() string {
	return fmt.Sprintf("deterministic-w%d", e.m.Workers())
}

// Workers returns the configured degree of parallelism.
func (e *PushEngine) Workers() int { return e.m.Workers() }

// Run implements push.Engine.
func (e *PushEngine) Run(st *push.State, candidates []graph.VertexID) {
	g := st.Graph()
	p, r := st.Vectors()
	alpha := st.Alpha()
	counters := st.Counters
	w := 1 - alpha
	propagate := func(d *Delta, u int32, ru float64) {
		in := g.InNeighbors(u)
		counters.AddPropagations(int64(len(in)))
		counters.AddRandomAccesses(int64(len(in)))
		share := w * ru
		for _, v := range in {
			d.Add(v, share/float64(g.OutDegree(v)))
		}
	}
	e.m.Converge(p, r, alpha, st.Epsilon(), SortedCandidates(candidates, r.Len()), counters, propagate)
}
