package parallel

import (
	"fmt"

	"dynppr/internal/graph"
	"dynppr/internal/push"
)

// PushEngine runs the deterministic parallel push over a contribution-PPR
// state (the reverse formulation of internal/push): frontier vertex u sends
// (1−α)·r(u)/dout(v) to every in-neighbor v. It implements push.Engine and
// produces bit-identical results at every worker count — see the package
// comment for the schedule.
type PushEngine struct {
	m *Machine

	// Cached per-state hot-path pieces: the propagate closure and the dirty
	// hook are bound to one state's graph and counters, so rebinding (and
	// re-allocating the closures) only happens when Run is handed a
	// different state — never on the steady-state batch path, where one
	// engine instance serves one source. candBuf is the reusable sorted
	// candidate buffer.
	boundTo   *push.State
	propagate PropagateFunc
	candBuf   []int32
}

// NewPushEngine returns a deterministic engine with the given degree of
// parallelism (<= 0 selects GOMAXPROCS) and the default adaptive cutover.
func NewPushEngine(workers int) *PushEngine {
	return &PushEngine{m: NewMachine(workers, 0)}
}

// NewPushEngineCutover is NewPushEngine with an explicit cutover, exposed
// for tests that pin the inline and fanned-out paths.
func NewPushEngineCutover(workers, cutover int) *PushEngine {
	return &PushEngine{m: NewMachine(workers, cutover)}
}

// Name implements push.Engine.
func (e *PushEngine) Name() string {
	return fmt.Sprintf("deterministic-w%d", e.m.Workers())
}

// Workers returns the configured degree of parallelism.
func (e *PushEngine) Workers() int { return e.m.Workers() }

// Run implements push.Engine.
func (e *PushEngine) Run(st *push.State, candidates []graph.VertexID) {
	if e.boundTo != st {
		e.bind(st)
	}
	p, r := st.Vectors()
	var cands []int32 // nil requests a full scan
	if candidates != nil {
		e.candBuf = SortedCandidatesInto(e.candBuf, candidates, r.Len())
		cands = e.candBuf
	}
	e.m.Converge(p, r, st.Alpha(), st.Epsilon(), cands, st.Counters, e.propagate)
}

// bind points the cached closures at st: propagation reads st's graph and
// counters, and the machine's frontier hook feeds st's estimate-dirty set
// (each round's frontier is exactly the set of estimates the round updates),
// which is what lets SnapshotSlot.Publish copy only what changed.
func (e *PushEngine) bind(st *push.State) {
	g := st.Graph()
	counters := st.Counters
	w := 1 - st.Alpha()
	e.propagate = func(d *Delta, u int32, ru float64) {
		in := g.InNeighbors(u)
		counters.AddPropagations(int64(len(in)))
		counters.AddRandomAccesses(int64(len(in)))
		share := w * ru
		for _, v := range in {
			d.Add(v, share/float64(g.OutDegree(v)))
		}
	}
	e.m.SetFrontierHook(st.MarkEstimatesDirty)
	e.boundTo = st
}
