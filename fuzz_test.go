package dynppr_test

import (
	"testing"

	"dynppr"
)

// decodeFuzzUpdates turns arbitrary bytes into an update sequence over a
// small vertex universe. Three bytes per update: endpoints modulo 24 (so
// duplicate edges, reinsertions, self-loops and deletes of missing edges all
// occur naturally) and the low bit of the third byte as the operation.
func decodeFuzzUpdates(data []byte) []dynppr.Update {
	const vertices = 24
	updates := make([]dynppr.Update, 0, len(data)/3)
	for i := 0; i+2 < len(data); i += 3 {
		op := dynppr.Insert
		if data[i+2]&1 == 1 {
			op = dynppr.Delete
		}
		updates = append(updates, dynppr.Update{
			U:  dynppr.VertexID(data[i] % vertices),
			V:  dynppr.VertexID(data[i+1] % vertices),
			Op: op,
		})
	}
	return updates
}

// FuzzTrackerApplyBatch feeds arbitrary update sequences — duplicate
// inserts, deletions of edges that do not exist, self-loops, immediate
// reinsertion after deletion — through ApplyBatch on every engine kind and
// checks the scheme's whole contract after every batch: the tracker reports
// convergence, the graph invariants hold, and the estimates are within ε of
// the exact power-iteration answer for the current graph.
func FuzzTrackerApplyBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 0})                                // single insert
	f.Add([]byte{1, 2, 0, 1, 2, 0})                       // duplicate insert
	f.Add([]byte{5, 5, 0, 5, 5, 1})                       // self-loop insert then delete
	f.Add([]byte{9, 4, 1})                                // delete of a missing edge
	f.Add([]byte{1, 2, 0, 1, 2, 1, 1, 2, 0, 1, 2, 1})     // insert/delete churn
	f.Add([]byte{0, 1, 0, 1, 2, 0, 2, 0, 0, 2, 2, 0})     // cycle plus self-loop
	f.Add([]byte{3, 7, 0, 7, 3, 0, 3, 7, 1, 200, 255, 0}) // bidirectional, high bytes

	f.Fuzz(func(t *testing.T, data []byte) {
		updates := decodeFuzzUpdates(data)
		if len(updates) > 120 {
			updates = updates[:120]
		}
		// The first byte selects the engine so the corpus exercises all of
		// them; the mutation space covers each engine with every sequence
		// shape over time.
		engines := []dynppr.EngineKind{
			dynppr.EngineSequential, dynppr.EngineParallel,
			dynppr.EngineVertexCentric, dynppr.EngineDeterministic,
		}
		var pick byte
		if len(data) > 0 {
			pick = data[0]
		}
		opts := dynppr.DefaultOptions()
		opts.Engine = engines[int(pick)%len(engines)]
		opts.Epsilon = 1e-5
		opts.Workers = 2
		opts.Parallelism = 2

		tr, err := dynppr.NewTracker(dynppr.NewGraph(0), 3, opts)
		if err != nil {
			t.Fatal(err)
		}
		for len(updates) > 0 {
			n := 8
			if n > len(updates) {
				n = len(updates)
			}
			batch := dynppr.Batch(updates[:n])
			updates = updates[n:]
			res := tr.ApplyBatch(batch)
			if res.Applied+res.Skipped != len(batch) {
				t.Fatalf("batch accounting wrong: %+v for %d updates", res, len(batch))
			}
			if !tr.Converged() {
				t.Fatalf("tracker not converged after batch %v", batch)
			}
			if err := tr.Graph().CheckConsistency(); err != nil {
				t.Fatal(err)
			}
			maxErr, err := tr.ExactError()
			if err != nil {
				t.Fatal(err)
			}
			if maxErr > opts.Epsilon {
				t.Fatalf("exact error %v exceeds ε %v after batch %v (engine %v)",
					maxErr, opts.Epsilon, batch, opts.Engine)
			}
		}
	})
}
