package dynppr

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dynppr/internal/fp"
	"dynppr/internal/graph"
	"dynppr/internal/push"
)

// Service is a concurrent multi-source PPR serving layer: it keeps an
// ε-approximate PPR vector per tracked source over one shared dynamic graph,
// accepts edge-update batches while queries are in flight, and serves reads
// lock-free from converged snapshots.
//
// # Concurrency contract
//
// Writes and reads are decoupled:
//
//   - All mutation — ApplyBatch, AddSource, RemoveSource — flows through a
//     single internal pipeline goroutine, so the graph only ever changes on
//     one goroutine. Mutating calls are safe to issue from any number of
//     goroutines; they are serialized in arrival order and block until their
//     effect is complete and published.
//
//   - Per-source push work is sharded across a fixed pool of workers: every
//     source is pinned to one shard worker, which restores the source state
//     after each batch, runs the push engine to convergence, and then
//     publishes a fresh snapshot with one atomic pointer swap.
//
//   - Reads — Estimate, Estimates, TopK, Info — are lock-free: they load the
//     source's current snapshot through an atomic pointer and read immutable
//     data. A snapshot is only published after its push has converged, so a
//     read can never observe a mid-push, non-converged vector; during a
//     batch, reads simply keep serving the previous converged state. Each
//     source's snapshots are double-buffered, and the publisher waits for
//     straggling readers before recycling a buffer.
//
// Consequently every read reflects the graph as of some completed batch
// (monotonically advancing per source), never a partially applied one.
//
// With Options.Engine set to EngineDeterministic the service is additionally
// reproducible: ApplyBatch routes every source's push through the
// deterministic parallel engine, whose output is bit-identical at any
// Options.Parallelism, so replaying the same batch sequence over the same
// initial graph publishes snapshots with exactly the same float64 bits —
// regardless of PoolWorkers, scheduling, or the machine's core count.
type Service struct {
	opts ServiceOptions

	// table is the copy-on-write source directory readers go through. The
	// map it points to is immutable; mutators build a new map and swap the
	// pointer.
	table atomic.Pointer[sourceTable]

	work    chan func()
	closeMu sync.RWMutex
	closed  bool
	done    chan struct{}

	// Pipeline-owned state (touched only on the pipeline goroutine after
	// construction).
	g        *Graph
	shards   [][]*serviceSource
	shardCh  []chan shardJob
	workerWG sync.WaitGroup
	// statesBuf and touchedBuf are per-batch scratch recycled across
	// batches, so the steady-state write path does not allocate them anew.
	statesBuf  []*push.State
	touchedBuf []graph.VertexID

	// persist is the optional durability layer (WAL + checkpoints); nil for
	// an in-memory service. The pointer is swapped in once during
	// construction/recovery and its mutable fields are pipeline-owned (see
	// persist.go).
	persist atomic.Pointer[persistence]

	// Aggregate statistics, updated by the pipeline, read by Stats.
	batches      atomic.Int64
	applied      atomic.Int64
	skipped      atomic.Int64
	lastLatency  atomic.Int64 // nanoseconds
	totalLatency atomic.Int64 // nanoseconds
	vertices     atomic.Int64
	edges        atomic.Int64
	// shed counts mutations rejected with ErrOverloaded because the write
	// queue was full and the caller's admission budget ran out.
	shed atomic.Int64

	// graphGen counts graph mutations (batches with effect, source cold
	// starts). The on-demand query path keys its view cache on it.
	// Compaction does NOT bump it: a base swap leaves the logical graph
	// unchanged, so cached views stay valid.
	graphGen atomic.Uint64

	// Background compaction of the graph's LSM store. compacting gates one
	// in-flight merge; compactWG lets Close wait the merge goroutine out.
	// The remaining fields mirror pipeline-owned graph state for Stats.
	compacting    atomic.Bool
	compactWG     sync.WaitGroup
	compactions   atomic.Int64
	lastCompactNs atomic.Int64
	deltaEdges    atomic.Int64
	baseEdges     atomic.Int64
	overlaidVerts atomic.Int64
	storageEpoch  atomic.Uint64
	// od is the on-demand query engine for untracked sources; nil unless
	// ServiceOptions.OnDemand.Enabled.
	od *onDemand
}

type sourceTable map[VertexID]*serviceSource

// serviceSource is one tracked source: its push state, engine, and snapshot
// publication slot. The state and engine are owned by the source's shard
// worker (and by the pipeline goroutine during AddSource cold start); the
// slot is the read/write boundary.
type serviceSource struct {
	source VertexID
	shard  int
	st     *push.State
	engine push.Engine
	slot   *push.SnapshotSlot
}

type shardJob struct {
	sources []*serviceSource
	touched []graph.VertexID
	wg      *sync.WaitGroup
}

// ServiceOptions configure a Service.
type ServiceOptions struct {
	// Options are the per-source tracking options (α, ε, engine, variant).
	// Options.Workers bounds the parallelism inside one source's push.
	Options Options
	// PoolWorkers is the number of shard workers pushing sources
	// concurrently; <= 0 selects GOMAXPROCS.
	PoolWorkers int
	// QueueDepth is the capacity of the write pipeline. When it is full,
	// ApplyBatch/AddSource/RemoveSource block (backpressure), the Ctx
	// variants wait only until their context's deadline, and TryApplyBatch
	// sheds immediately — both surfacing ErrOverloaded so serving front
	// ends can turn saturation into load shedding instead of unbounded
	// latency. <= 0 selects 64.
	QueueDepth int
	// TopKCap is the per-source Top-K index depth: TopK reads with
	// k <= TopKCap are O(k) against the incrementally maintained index
	// embedded in each snapshot; larger k falls back to a heap scan of the
	// vector. 0 selects push.DefaultTopKCap (128); negative disables the
	// index entirely (every TopK scans).
	TopKCap int
	// OnDemand configures the approximate query path for untracked sources
	// (QueryTopK/QueryEstimate); the zero value disables it.
	OnDemand OnDemandOptions
	// CompactAfterDeltaEdges is the delta-segment size (adjacency entries,
	// counting both directions) at which a batch triggers a background
	// compaction of the graph's LSM store: the merged base is built off the
	// pipeline against a pinned view and swapped in at the next quiescent
	// point. 0 selects an adaptive default (max(32768, live edges / 4));
	// negative disables automatic compaction — delta segments then accumulate
	// until a checkpoint (which always compacts) or an explicit CompactNow. A
	// batch that finds the deltas at 4× the trigger compacts inline instead,
	// bounding how far writes can run ahead of the background merge.
	CompactAfterDeltaEdges int
}

// compactThreshold resolves CompactAfterDeltaEdges against the current live
// edge count; <= 0 means disabled.
func (s *Service) compactThreshold() int {
	opt := s.opts.CompactAfterDeltaEdges
	switch {
	case opt < 0:
		return 0
	case opt > 0:
		return opt
	}
	th := s.g.NumEdges() / 4
	if th < 32768 {
		th = 32768
	}
	return th
}

// topKCap resolves the TopKCap option to the slot constructor's convention
// (0 = disabled).
func (so ServiceOptions) topKCap() int {
	switch {
	case so.TopKCap < 0:
		return 0
	case so.TopKCap == 0:
		return push.DefaultTopKCap
	default:
		return so.TopKCap
	}
}

// Options returns the options the service runs with. For a service built by
// NewServiceFromRecovery, Alpha and Epsilon carry the checkpoint's restored
// values rather than whatever the caller passed in.
func (s *Service) Options() ServiceOptions { return s.opts }

// DefaultServiceOptions returns the default tracking options with a
// GOMAXPROCS-sized shard pool.
func DefaultServiceOptions() ServiceOptions {
	return ServiceOptions{Options: DefaultOptions()}
}

// Service errors.
var (
	// ErrUnknownSource is returned by reads for a source that is not (or no
	// longer) tracked.
	ErrUnknownSource = errors.New("dynppr: source is not tracked")
	// ErrServiceClosed is returned by every operation after Close.
	ErrServiceClosed = errors.New("dynppr: service is closed")
	// ErrOverloaded is returned by TryApplyBatch and the context-aware
	// mutators when the write pipeline's queue is full and the caller's
	// admission budget (none, for the Try variants) expires before a slot
	// frees up. The mutation was NOT journaled and NOT applied: the caller
	// can safely retry later. Serving front ends map it to 429.
	ErrOverloaded = errors.New("dynppr: write pipeline is overloaded")
)

// NewService builds a serving layer over g tracking the given sources,
// cold-starts every source to convergence, publishes their first snapshots,
// and starts the write pipeline and shard workers. The service takes
// ownership of g: the caller must not read or mutate it afterwards.
// Close must be called to release the worker goroutines.
//
// A Service built this way is in-memory only; use NewPersistentService or
// NewServiceFromRecovery for one whose state survives restarts.
func NewService(g *Graph, sources []VertexID, so ServiceOptions) (*Service, error) {
	return newService(g, so, sources, nil)
}

// seedSource is one source restored from a checkpoint: its converged state
// and the snapshot epoch it had published, so recovery republishes at the
// same epoch instead of restarting from 1.
type seedSource struct {
	source VertexID
	epoch  uint64
	st     *push.State
}

// newService is the shared constructor: cold lists the sources to cold-start
// from scratch (the NewService path), recovered carries checkpointed states
// to republish without re-running any push (the recovery path). Exactly one
// of the two is non-nil.
func newService(g *Graph, so ServiceOptions, cold []VertexID, recovered []seedSource) (*Service, error) {
	if err := so.Options.Validate(); err != nil {
		return nil, err
	}
	sources := cold
	if recovered != nil {
		// Checkpointed source sets are unique by format (strictly ascending)
		// and may legitimately be empty: a live service can drop its last
		// source through RemoveSource, and recovery must be able to rebuild
		// that state rather than refuse its own checkpoint.
		sources = make([]VertexID, len(recovered))
		for i, rs := range recovered {
			sources[i] = rs.source
		}
	} else if err := validateSources(sources); err != nil {
		return nil, err
	}
	if so.PoolWorkers <= 0 {
		so.PoolWorkers = fp.DefaultWorkers()
	}
	if so.QueueDepth <= 0 {
		so.QueueDepth = 64
	}

	svc := &Service{
		opts:    so,
		g:       g,
		work:    make(chan func(), so.QueueDepth),
		done:    make(chan struct{}),
		shards:  make([][]*serviceSource, so.PoolWorkers),
		shardCh: make([]chan shardJob, so.PoolWorkers),
	}

	table := make(sourceTable, len(sources))
	cfg := push.Config{Alpha: so.Options.Alpha, Epsilon: so.Options.Epsilon}
	all := make([]*serviceSource, 0, len(sources))
	for i, s := range sources {
		engine, err := so.Options.buildEngine()
		if err != nil {
			return nil, err
		}
		var st *push.State
		if recovered != nil {
			st = recovered[i].st
		} else {
			st, err = push.NewState(g, s, cfg)
			if err != nil {
				return nil, err
			}
		}
		src := &serviceSource{
			source: s,
			shard:  i % so.PoolWorkers,
			st:     st,
			engine: engine,
			slot:   push.NewSnapshotSlotTopK(so.topKCap()),
		}
		if recovered != nil {
			if recovered[i].epoch == 0 {
				return nil, fmt.Errorf("dynppr: recovered source %d has epoch 0", s)
			}
			src.slot.SeedEpoch(recovered[i].epoch - 1)
		}
		svc.shards[src.shard] = append(svc.shards[src.shard], src)
		table[s] = src
		all = append(all, src)
	}
	// Bring every source to its first published snapshot in parallel: a cold
	// source converges from scratch, a recovered one republishes its restored
	// state as-is (it was converged when checkpointed) at its restored epoch.
	fp.For(len(all), so.PoolWorkers, func(i int) {
		src := all[i]
		if recovered == nil {
			src.engine.Run(src.st, []graph.VertexID{src.source})
		}
		src.slot.Publish(src.st)
	})
	svc.table.Store(&table)
	svc.vertices.Store(int64(g.NumVertices()))
	svc.edges.Store(int64(g.NumEdges()))
	svc.noteStorage()
	svc.graphGen.Store(1)
	if so.OnDemand.Enabled {
		svc.od = newOnDemand(svc, so.OnDemand)
	}

	for i := range svc.shardCh {
		svc.shardCh[i] = make(chan shardJob)
		svc.workerWG.Add(1)
		go svc.shardWorker(svc.shardCh[i])
	}
	go svc.pipeline()
	return svc, nil
}

// pipeline is the single goroutine every mutation flows through.
func (s *Service) pipeline() {
	defer close(s.done)
	for fn := range s.work {
		fn()
	}
	for _, ch := range s.shardCh {
		close(ch)
	}
	s.workerWG.Wait()
}

// shardWorker pushes its shard's sources to convergence after each batch and
// publishes their snapshots.
func (s *Service) shardWorker(ch chan shardJob) {
	defer s.workerWG.Done()
	for job := range ch {
		for _, src := range job.sources {
			src.engine.Run(src.st, job.touched)
			src.slot.Publish(src.st)
		}
		job.wg.Done()
	}
}

// submit enqueues a mutation on the pipeline, blocking when the queue is
// full.
func (s *Service) submit(fn func()) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return ErrServiceClosed
	}
	s.work <- fn
	return nil
}

// trySubmit enqueues a mutation only if a queue slot is free right now;
// a full queue sheds the mutation with ErrOverloaded instead of blocking.
func (s *Service) trySubmit(fn func()) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return ErrServiceClosed
	}
	select {
	case s.work <- fn:
		return nil
	default:
		s.shed.Add(1)
		return ErrOverloaded
	}
}

// submitCtx enqueues a mutation, waiting for a queue slot at most until ctx
// is done. The context bounds ADMISSION only: once the mutation is enqueued
// it will run to completion regardless of ctx, so a journaled mutation is
// never abandoned half-acknowledged. A context that is already done still
// admits immediately when a slot is free.
func (s *Service) submitCtx(ctx context.Context, fn func()) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return ErrServiceClosed
	}
	select {
	case s.work <- fn:
		return nil
	default:
	}
	select {
	case s.work <- fn:
		return nil
	case <-ctx.Done():
		s.shed.Add(1)
		return fmt.Errorf("%w: %v", ErrOverloaded, ctx.Err())
	}
}

// submitRead enqueues read-side pipeline work (an on-demand CSR snapshot
// refresh) with the same bounded admission as submitCtx, but without
// counting a timeout against the shed statistic — shed tracks rejected
// MUTATIONS, and a read that gave up refreshing its snapshot must not look
// like write load shedding on the dashboards.
func (s *Service) submitRead(ctx context.Context, fn func()) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return ErrServiceClosed
	}
	select {
	case s.work <- fn:
		return nil
	default:
	}
	select {
	case s.work <- fn:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("%w: %v", ErrOverloaded, ctx.Err())
	}
}

// Close shuts the service down: queued mutations finish, the pipeline and
// shard workers exit, the write-ahead log (if any) is flushed and closed,
// and every subsequent operation returns ErrServiceClosed. Reads racing
// with Close may still succeed against the last published snapshots. Close
// is idempotent.
func (s *Service) Close() error {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return nil
	}
	s.closed = true
	close(s.work)
	s.closeMu.Unlock()
	<-s.done
	// A background compaction may still be merging; its install submit fails
	// against the closed pipeline and the goroutine exits.
	s.compactWG.Wait()
	// Shut the on-demand worker pool down: queries blocked in pool admission
	// fail with ErrServiceClosed, in-flight cold pushes (pure reads of
	// pinned snapshots) run to completion for their waiters.
	if s.od != nil {
		s.od.close()
	}
	// The pipeline has exited, so nothing appends concurrently.
	if p := s.persist.Load(); p != nil {
		return p.close()
	}
	return nil
}

// ApplyBatch applies a batch of edge updates to the shared graph, restores
// every tracked source, pushes each to convergence on the shard pool, and
// publishes fresh snapshots — all before returning. Concurrent callers are
// serialized by the pipeline; concurrent readers keep being served from the
// previous snapshots until the new ones are published.
//
// On a persistent service the batch is journaled to the write-ahead log
// before it is applied; a journal failure rejects the batch (and every
// later mutation) so the in-memory state never runs ahead of what recovery
// can reconstruct.
func (s *Service) ApplyBatch(b Batch) (BatchResult, error) {
	return s.applyBatch(s.submit, b)
}

// ApplyBatchCtx is ApplyBatch with bounded admission: if the write queue is
// full it waits for a slot only until ctx is done, then sheds the batch with
// ErrOverloaded (wrapping the context's error) without journaling or
// applying anything. The context bounds admission only — once the batch is
// admitted the call blocks until the batch is journaled, applied, and
// published, even past the deadline, so the acknowledgement a caller
// eventually reads always matches the durable state.
func (s *Service) ApplyBatchCtx(ctx context.Context, b Batch) (BatchResult, error) {
	return s.applyBatch(func(fn func()) error { return s.submitCtx(ctx, fn) }, b)
}

// TryApplyBatch is ApplyBatch with non-blocking admission: a full write
// queue sheds the batch immediately with ErrOverloaded.
func (s *Service) TryApplyBatch(b Batch) (BatchResult, error) {
	return s.applyBatch(s.trySubmit, b)
}

func (s *Service) applyBatch(admit func(func()) error, b Batch) (BatchResult, error) {
	type outcome struct {
		res BatchResult
		err error
	}
	ch := make(chan outcome, 1)
	if err := admit(func() {
		if err := s.journalBatch(b); err != nil {
			ch <- outcome{err: err}
			return
		}
		ch <- outcome{res: s.doBatch(b)}
	}); err != nil {
		return BatchResult{}, err
	}
	o := <-ch
	return o.res, o.err
}

func (s *Service) doBatch(b Batch) BatchResult {
	start := time.Now()
	var before int64
	states := s.statesBuf[:0]
	for _, shard := range s.shards {
		for _, src := range shard {
			before += src.st.Counters.Snapshot().Pushes
			states = append(states, src.st)
		}
	}
	s.statesBuf = states
	applied, touched := applyBatchNotify(s.g, states, b, s.touchedBuf[:0])
	s.touchedBuf = touched
	if applied > 0 {
		var wg sync.WaitGroup
		for i, shard := range s.shards {
			if len(shard) == 0 {
				continue
			}
			wg.Add(1)
			s.shardCh[i] <- shardJob{sources: shard, touched: touched, wg: &wg}
		}
		wg.Wait()
	}
	var after int64
	for _, shard := range s.shards {
		for _, src := range shard {
			after += src.st.Counters.Snapshot().Pushes
		}
	}
	if applied > 0 {
		s.graphGen.Add(1)
		s.maybeCompact()
	}
	latency := time.Since(start)
	s.batches.Add(1)
	s.applied.Add(int64(applied))
	s.skipped.Add(int64(len(b) - applied))
	s.lastLatency.Store(int64(latency))
	s.totalLatency.Add(int64(latency))
	s.vertices.Store(int64(s.g.NumVertices()))
	s.edges.Store(int64(s.g.NumEdges()))
	return BatchResult{
		Applied: applied,
		Skipped: len(b) - applied,
		Latency: latency,
		Pushes:  after - before,
	}
}

// noteStorage mirrors the pipeline-owned LSM-store gauges into atomics for
// Stats readers. Pipeline goroutine only.
func (s *Service) noteStorage() {
	s.deltaEdges.Store(int64(s.g.DeltaEdges()))
	s.baseEdges.Store(int64(s.g.BaseEdges()))
	s.overlaidVerts.Store(int64(s.g.OverlaidVertices()))
	s.storageEpoch.Store(s.g.Epoch())
}

// maybeCompact runs on the pipeline after an effective batch and decides
// whether the delta segments have earned a compaction. The normal trigger
// starts a background merge: the current state is pinned as a view (cost
// proportional to the deltas), the merged CSR is built on a spare goroutine
// while the pipeline keeps applying batches, and the swap is submitted back
// to the pipeline — a quiescent point by construction, since every engine
// read also runs inside pipeline tasks. If the deltas ever reach 4× the
// trigger (the merge is slower than the write rate), the pipeline compacts
// inline, trading one batch's latency for bounded memory.
func (s *Service) maybeCompact() {
	th := s.compactThreshold()
	if th <= 0 {
		s.noteStorage()
		return
	}
	d := s.g.DeltaEdges()
	switch {
	case d < th:
		s.noteStorage()
		return
	case d >= 4*th:
		start := time.Now()
		s.g.Compact()
		s.compactions.Add(1)
		s.lastCompactNs.Store(int64(time.Since(start)))
		s.noteStorage()
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		s.noteStorage()
		return // one merge in flight is enough
	}
	c := s.g.BeginCompaction()
	s.noteStorage()
	s.compactWG.Add(1)
	go func() {
		defer s.compactWG.Done()
		start := time.Now()
		base := c.Build()
		if err := s.submit(func() {
			// Install no-ops (false) when an inline compaction or checkpoint
			// swapped the base first; the stale merge is simply discarded.
			if s.g.Install(c, base) {
				s.compactions.Add(1)
				s.lastCompactNs.Store(int64(time.Since(start)))
				s.noteStorage()
			}
			s.compacting.Store(false)
		}); err != nil {
			s.compacting.Store(false) // service closed; deltas stay mergeable
		}
	}()
}

// CompactNow synchronously merges every delta segment of the graph's LSM
// store into a fresh immutable base. The logical graph — and therefore every
// estimate, residual, and Top-K ranking — is unchanged; only the physical
// layout moves. It is exposed for operational use (pre-checkpoint squeeze,
// tests) — the service normally compacts itself per
// ServiceOptions.CompactAfterDeltaEdges.
func (s *Service) CompactNow() error {
	done := make(chan struct{})
	if err := s.submit(func() {
		before := s.g.Epoch()
		s.g.Compact()
		if s.g.Epoch() != before {
			s.compactions.Add(1)
		}
		s.noteStorage()
		close(done)
	}); err != nil {
		return err
	}
	<-done
	return nil
}

func (s *Service) allSources() []*serviceSource {
	var out []*serviceSource
	for _, shard := range s.shards {
		out = append(out, shard...)
	}
	return out
}

// AddSource starts tracking a new source: its state is cold-started on the
// current graph and its first snapshot published before the call returns.
// Readers of existing sources are never blocked; the new source becomes
// visible to reads atomically once converged. Adding an already tracked
// source is an error. On a persistent service the addition is journaled
// (after validation, so the log never records an operation that would fail
// on replay).
func (s *Service) AddSource(source VertexID) error {
	return s.addSource(s.submit, source)
}

// AddSourceCtx is AddSource with bounded admission (see ApplyBatchCtx for
// the contract: ctx bounds the wait for a pipeline slot only).
func (s *Service) AddSourceCtx(ctx context.Context, source VertexID) error {
	return s.addSource(func(fn func()) error { return s.submitCtx(ctx, fn) }, source)
}

func (s *Service) addSource(admit func(func()) error, source VertexID) error {
	res := make(chan error, 1)
	if err := admit(func() {
		if err := s.validateAddSource(source); err != nil {
			res <- err
			return
		}
		if err := s.journalAddSource(source); err != nil {
			res <- err
			return
		}
		res <- s.doAddSource(source)
	}); err != nil {
		return err
	}
	return <-res
}

// validateAddSource runs on the pipeline before the addition is journaled,
// so the WAL never records an operation that would fail on replay.
func (s *Service) validateAddSource(source VertexID) error {
	if source < 0 {
		return fmt.Errorf("dynppr: source must be non-negative, got %d", source)
	}
	if _, dup := (*s.table.Load())[source]; dup {
		return fmt.Errorf("dynppr: source %d is already tracked", source)
	}
	return nil
}

// doAddSource applies a validated addition (see validateAddSource).
func (s *Service) doAddSource(source VertexID) error {
	old := *s.table.Load()
	engine, err := s.opts.Options.buildEngine()
	if err != nil {
		return err
	}
	st, err := push.NewState(s.g, source, push.Config{
		Alpha: s.opts.Options.Alpha, Epsilon: s.opts.Options.Epsilon,
	})
	if err != nil {
		return err
	}
	// Pin the new source to the least loaded shard.
	shard := 0
	for i := 1; i < len(s.shards); i++ {
		if len(s.shards[i]) < len(s.shards[shard]) {
			shard = i
		}
	}
	src := &serviceSource{source: source, shard: shard, st: st, engine: engine, slot: push.NewSnapshotSlotTopK(s.opts.topKCap())}
	src.engine.Run(src.st, []graph.VertexID{source})
	src.slot.Publish(src.st)
	s.shards[shard] = append(s.shards[shard], src)
	next := make(sourceTable, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[source] = src
	s.table.Store(&next)
	s.vertices.Store(int64(s.g.NumVertices()))
	// The cold start may have grown the graph (EnsureVertex), so the
	// on-demand CSR cache must be invalidated.
	s.graphGen.Add(1)
	return nil
}

// RemoveSource stops tracking a source and frees its state. In-flight reads
// that already acquired the source's snapshot complete normally; subsequent
// reads return ErrUnknownSource. Removing an untracked source is an error.
// On a persistent service the removal is journaled after validation.
func (s *Service) RemoveSource(source VertexID) error {
	return s.removeSource(s.submit, source)
}

// RemoveSourceCtx is RemoveSource with bounded admission (see ApplyBatchCtx
// for the contract: ctx bounds the wait for a pipeline slot only).
func (s *Service) RemoveSourceCtx(ctx context.Context, source VertexID) error {
	return s.removeSource(func(fn func()) error { return s.submitCtx(ctx, fn) }, source)
}

func (s *Service) removeSource(admit func(func()) error, source VertexID) error {
	res := make(chan error, 1)
	if err := admit(func() {
		// The lookup doubles as pre-journal validation: an untracked source
		// is rejected before anything reaches the WAL.
		src, ok := (*s.table.Load())[source]
		if !ok {
			res <- fmt.Errorf("%w: %d", ErrUnknownSource, source)
			return
		}
		if err := s.journalRemoveSource(source); err != nil {
			res <- err
			return
		}
		res <- s.doRemoveSource(src)
	}); err != nil {
		return err
	}
	return <-res
}

// doRemoveSource applies a removal whose source was already resolved on the
// pipeline.
func (s *Service) doRemoveSource(src *serviceSource) error {
	source := src.source
	old := *s.table.Load()
	next := make(sourceTable, len(old))
	for k, v := range old {
		if k != source {
			next[k] = v
		}
	}
	s.table.Store(&next)
	shard := s.shards[src.shard]
	for i, candidate := range shard {
		if candidate == src {
			s.shards[src.shard] = append(shard[:i], shard[i+1:]...)
			break
		}
	}
	return nil
}

// lookup resolves a source through the copy-on-write table (lock-free).
// Every successful resolution refreshes the source's promotion recency —
// lookup is the one path all read APIs share, so an auto-promoted source
// read heavily through TopK/Estimate (not just Query*) stays warm against
// eviction. touch is atomic-only, preserving the lock-free read path.
func (s *Service) lookup(source VertexID) (*serviceSource, error) {
	table := s.table.Load()
	if table == nil {
		return nil, ErrUnknownSource
	}
	src, ok := (*table)[source]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownSource, source)
	}
	s.od.touch(source)
	return src, nil
}

// Sources returns the currently tracked sources in ascending order.
func (s *Service) Sources() []VertexID {
	table := *s.table.Load()
	out := make([]VertexID, 0, len(table))
	for v := range table {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Estimate returns the PPR estimate of v with respect to source, read from
// the source's current converged snapshot.
func (s *Service) Estimate(source, v VertexID) (float64, error) {
	est, _, err := s.EstimateInfo(source, v)
	return est, err
}

// Estimates returns a copy of source's full estimate vector.
func (s *Service) Estimates(source VertexID) ([]float64, error) {
	est, _, err := s.EstimatesInfo(source)
	return est, err
}

// SnapshotInfo describes the snapshot a read was served from.
type SnapshotInfo struct {
	// Source is the snapshot's source vertex.
	Source VertexID
	// Epoch counts publications for this source: 1 is the cold start, and
	// each completed batch or slide increments it.
	Epoch uint64
	// MaxResidual is the L∞ residual norm at publication; the convergence
	// contract guarantees MaxResidual <= Epsilon.
	MaxResidual float64
	// Epsilon is the error threshold the snapshot was converged to.
	Epsilon float64
	// Vertices is the snapshot's vector length.
	Vertices int
}

// Converged reports whether the snapshot honoured the convergence contract.
func (i SnapshotInfo) Converged() bool { return i.MaxResidual <= i.Epsilon }

func snapshotInfo(snap *push.Snapshot) SnapshotInfo {
	return SnapshotInfo{
		Source:      snap.Source(),
		Epoch:       snap.Epoch(),
		MaxResidual: snap.MaxResidual(),
		Epsilon:     snap.Epsilon(),
		Vertices:    snap.NumVertices(),
	}
}

// EstimatesInfo returns a copy of source's estimate vector together with the
// metadata of the snapshot it came from, so callers can check the epoch and
// convergence of what they read.
func (s *Service) EstimatesInfo(source VertexID) ([]float64, SnapshotInfo, error) {
	src, err := s.lookup(source)
	if err != nil {
		return nil, SnapshotInfo{}, err
	}
	snap := src.slot.Acquire()
	if snap == nil {
		return nil, SnapshotInfo{}, fmt.Errorf("%w: %d", ErrUnknownSource, source)
	}
	defer snap.Release()
	return snap.Estimates(), snapshotInfo(snap), nil
}

// Info returns the metadata of source's current snapshot without copying the
// vector.
func (s *Service) Info(source VertexID) (SnapshotInfo, error) {
	src, err := s.lookup(source)
	if err != nil {
		return SnapshotInfo{}, err
	}
	snap := src.slot.Acquire()
	if snap == nil {
		return SnapshotInfo{}, fmt.Errorf("%w: %d", ErrUnknownSource, source)
	}
	defer snap.Release()
	return snapshotInfo(snap), nil
}

// TopK returns the k vertices with the largest PPR estimates towards source,
// read from the current converged snapshot.
func (s *Service) TopK(source VertexID, k int) ([]VertexScore, error) {
	top, _, err := s.TopKInfo(source, k)
	return top, err
}

// TopKInfo is TopK plus the metadata of the snapshot the ranking was read
// from, so remote callers (the HTTP front end) can verify convergence and
// epoch monotonicity of what they were served.
func (s *Service) TopKInfo(source VertexID, k int) ([]VertexScore, SnapshotInfo, error) {
	return s.AppendTopK(nil, source, k)
}

// AppendTopK is TopKInfo appending into a caller-provided buffer, so hot
// readers that recycle their result slices perform no allocations. When k is
// within the snapshot's embedded Top-K index (ServiceOptions.TopKCap, kept
// exact incrementally at publish time) the read is an O(k) copy; larger k
// falls back to the O(n log k) heap scan of the vector.
func (s *Service) AppendTopK(dst []VertexScore, source VertexID, k int) ([]VertexScore, SnapshotInfo, error) {
	src, err := s.lookup(source)
	if err != nil {
		return dst, SnapshotInfo{}, err
	}
	snap := src.slot.Acquire()
	if snap == nil {
		return dst, SnapshotInfo{}, fmt.Errorf("%w: %d", ErrUnknownSource, source)
	}
	defer snap.Release()
	return snap.AppendTopK(dst, k), snapshotInfo(snap), nil
}

// EstimateInfo is Estimate plus the metadata of the snapshot the value was
// read from. Both values come from one Acquire, so the estimate is guaranteed
// to belong to the reported epoch — the consistency check batched remote
// reads rely on.
func (s *Service) EstimateInfo(source, v VertexID) (float64, SnapshotInfo, error) {
	src, err := s.lookup(source)
	if err != nil {
		return 0, SnapshotInfo{}, err
	}
	snap := src.slot.Acquire()
	if snap == nil {
		return 0, SnapshotInfo{}, fmt.Errorf("%w: %d", ErrUnknownSource, source)
	}
	defer snap.Release()
	return snap.Estimate(v), snapshotInfo(snap), nil
}

// Closed reports whether Close has been called. Serving front ends use it to
// fail health checks during shutdown while in-flight snapshot reads drain.
func (s *Service) Closed() bool {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	return s.closed
}

// SourceStats reports per-source serving statistics.
type SourceStats struct {
	// Source is the tracked source vertex.
	Source VertexID
	// Shard is the worker the source is pinned to.
	Shard int
	// Epoch is the source's current snapshot epoch.
	Epoch uint64
	// Pushes is the cumulative number of push operations performed for this
	// source (cold start included).
	Pushes int64
	// MaxResidual is the convergence certificate of the current snapshot
	// (exact on full publications, a running bound on delta publications;
	// always ≤ ε).
	MaxResidual float64
	// FullPublishes and DeltaPublishes count how the source's snapshots
	// were published: full vector copies versus dirty-set deltas.
	FullPublishes  uint64
	DeltaPublishes uint64
	// TopKRebuilds counts full-scan rebuilds of the source's Top-K index
	// (cold start, graph growth, threshold invalidation by decays).
	TopKRebuilds uint64
}

// StorageStats reports the state of the LSM-style graph store: one immutable
// CSR base segment plus per-vertex mutable delta segments that background
// compaction folds back into a fresh base.
type StorageStats struct {
	// Epoch identifies the current base segment; it advances on every
	// compaction (base swap). Logical graph content never changes across an
	// epoch bump.
	Epoch uint64
	// BaseEdges is the edge count of the immutable base. DeltaEdges counts
	// adjacency entries (both directions) held in mutable delta segments
	// awaiting compaction, and OverlaidVertices the vertices currently read
	// from those segments rather than the base.
	BaseEdges        int64
	DeltaEdges       int64
	OverlaidVertices int64
	// Compactions counts base swaps (background installs, inline 4×-trigger
	// compactions, CompactNow, and checkpoints, which always compact).
	// LastCompaction is the build+install wall time of the most recent one,
	// and CompactionInFlight reports a background merge currently running.
	Compactions        int64
	LastCompaction     time.Duration
	CompactionInFlight bool
}

// ServiceStats reports aggregate serving statistics.
type ServiceStats struct {
	// Sources lists per-source statistics in ascending source order.
	Sources []SourceStats
	// Batches is the number of completed ApplyBatch calls.
	Batches int64
	// UpdatesApplied and UpdatesSkipped count effective and no-op updates.
	UpdatesApplied int64
	UpdatesSkipped int64
	// QueueDepth is the number of mutations waiting in the pipeline and
	// QueueCap the pipeline's bounded capacity (ServiceOptions.QueueDepth).
	QueueDepth int
	QueueCap   int
	// Shed counts mutations rejected with ErrOverloaded at admission.
	Shed int64
	// LastBatchLatency and TotalBatchLatency time the restore+push+publish
	// pipeline (not the queueing delay).
	LastBatchLatency  time.Duration
	TotalBatchLatency time.Duration
	// Vertices and Edges describe the graph after the last completed batch.
	Vertices int
	Edges    int
	// Storage describes the LSM graph store's segments and compaction
	// activity.
	Storage StorageStats
	// PoolWorkers is the shard pool size.
	PoolWorkers int
	// Engine names the push engine kind every source runs.
	Engine string
	// Persistence reports the durability layer's state; nil for an
	// in-memory service.
	Persistence *PersistenceStats
	// OnDemand reports the on-demand query path's counters; nil when the
	// path is disabled.
	OnDemand *OnDemandStats
}

// QueueStats is the cheap, allocation-free subset of ServiceStats the
// admission-control hot path needs: serving front ends read it on every
// overload response to compute a Retry-After hint, so it must not walk the
// source table the way Stats does.
type QueueStats struct {
	// Depth is the number of queued mutations; Cap the queue's capacity.
	Depth, Cap int
	// Shed counts mutations rejected with ErrOverloaded at admission.
	Shed int64
	// LastBatchLatency and AvgBatchLatency time the restore+push+publish
	// pipeline of recent batches (not the queueing delay); together with
	// Depth they estimate how long a full queue takes to drain.
	LastBatchLatency time.Duration
	AvgBatchLatency  time.Duration
}

// Queue returns the pipeline's admission statistics. It is safe to call
// concurrently with reads and writes and performs no allocation.
func (s *Service) Queue() QueueStats {
	qs := QueueStats{
		Depth:            len(s.work),
		Cap:              cap(s.work),
		Shed:             s.shed.Load(),
		LastBatchLatency: time.Duration(s.lastLatency.Load()),
	}
	if n := s.batches.Load(); n > 0 {
		qs.AvgBatchLatency = time.Duration(s.totalLatency.Load() / n)
	}
	return qs
}

// AvgBatchLatency returns the mean per-batch pipeline latency.
func (st ServiceStats) AvgBatchLatency() time.Duration {
	if st.Batches == 0 {
		return 0
	}
	return st.TotalBatchLatency / time.Duration(st.Batches)
}

// Stats returns a point-in-time view of the service's serving statistics.
// It is safe to call concurrently with reads and writes.
func (s *Service) Stats() ServiceStats {
	table := *s.table.Load()
	stats := ServiceStats{
		Batches:           s.batches.Load(),
		UpdatesApplied:    s.applied.Load(),
		UpdatesSkipped:    s.skipped.Load(),
		QueueDepth:        len(s.work),
		QueueCap:          cap(s.work),
		Shed:              s.shed.Load(),
		LastBatchLatency:  time.Duration(s.lastLatency.Load()),
		TotalBatchLatency: time.Duration(s.totalLatency.Load()),
		Vertices:          int(s.vertices.Load()),
		Edges:             int(s.edges.Load()),
		Storage: StorageStats{
			Epoch:              s.storageEpoch.Load(),
			BaseEdges:          s.baseEdges.Load(),
			DeltaEdges:         s.deltaEdges.Load(),
			OverlaidVertices:   s.overlaidVerts.Load(),
			Compactions:        s.compactions.Load(),
			LastCompaction:     time.Duration(s.lastCompactNs.Load()),
			CompactionInFlight: s.compacting.Load(),
		},
		PoolWorkers: s.opts.PoolWorkers,
		Engine:      s.opts.Options.Engine.String(),
		Persistence: s.persistenceStats(),
	}
	if s.od != nil {
		stats.OnDemand = s.od.stats()
	}
	for _, src := range table {
		ps := src.slot.Stats()
		ss := SourceStats{
			Source:         src.source,
			Shard:          src.shard,
			Pushes:         src.st.Counters.Snapshot().Pushes,
			FullPublishes:  ps.Full,
			DeltaPublishes: ps.Delta,
			TopKRebuilds:   ps.TopKRebuilds,
		}
		if snap := src.slot.Acquire(); snap != nil {
			ss.Epoch = snap.Epoch()
			ss.MaxResidual = snap.MaxResidual()
			snap.Release()
		}
		stats.Sources = append(stats.Sources, ss)
	}
	sort.Slice(stats.Sources, func(i, j int) bool {
		return stats.Sources[i].Source < stats.Sources[j].Source
	})
	return stats
}
