package dynppr

// White-box promotion tests: they wedge the unexported write pipeline to
// make AddSourceCtx fail deterministically, which cannot be arranged
// through the public API without sleeps.

import (
	"context"
	"math/rand"
	"testing"
)

func promoteTestService(t *testing.T) *Service {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	edges := make([]Edge, 0, 400)
	for i := 0; i < 80; i++ { // ring keeps every vertex reachable
		edges = append(edges, Edge{U: VertexID(i), V: VertexID((i + 1) % 80)})
	}
	for len(edges) < 400 {
		u, v := VertexID(rng.Intn(80)), VertexID(rng.Intn(80))
		if u != v {
			edges = append(edges, Edge{U: u, V: v})
		}
	}
	so := DefaultServiceOptions()
	so.QueueDepth = 1
	so.OnDemand = OnDemandOptions{
		Enabled: true, Epsilon: 1e-3, PromoteAfter: 1, MaxAutoSources: 1, Seed: 2,
	}
	svc, err := NewService(GraphFromEdges(edges), []VertexID{79}, so)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

// TestMaybePromoteOverloadKeepsVictim pins the add-then-evict ordering bugfix:
// a promotion that fails admission (overloaded pipeline) must tear nothing
// down — previously the victim was evicted BEFORE the add, so a failed add
// lost a healthy tracked source and gained nothing.
func TestMaybePromoteOverloadKeepsVictim(t *testing.T) {
	svc := promoteTestService(t)
	od := svc.od
	tracked := func(v VertexID) bool {
		_, ok := (*svc.table.Load())[v]
		return ok
	}

	const a, b = VertexID(11), VertexID(22)
	od.note(a)
	if !od.maybePromote(context.Background(), a) {
		t.Fatal("promoting a failed on an idle service")
	}
	if !tracked(a) {
		t.Fatal("a not tracked after promotion")
	}

	// b has reached the promotion threshold...
	od.note(b)

	// ...but the pipeline is wedged: one fn parked inside the pipeline
	// goroutine, one more filling the QueueDepth=1 buffer.
	gate := make(chan struct{})
	if err := svc.submit(func() { <-gate }); err != nil {
		t.Fatalf("submit gate: %v", err)
	}
	if err := svc.submit(func() {}); err != nil {
		t.Fatalf("submit filler: %v", err)
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()

	if od.maybePromote(expired, b) {
		t.Fatal("promotion reported success against a wedged pipeline")
	}
	if !tracked(a) {
		t.Fatal("failed promotion evicted the healthy tracked source a")
	}
	if tracked(b) {
		t.Fatal("b tracked despite failed promotion")
	}
	if got := od.evictions.Load(); got != 0 {
		t.Fatalf("evictions = %d after failed promotion, want 0", got)
	}
	od.mu.Lock()
	cand := od.cand[b]
	od.mu.Unlock()
	if cand == nil || cand.count < od.opts.PromoteAfter {
		t.Fatalf("candidate state for b lost (%+v); a later query could not retry the promotion", cand)
	}

	// Unwedge and drain, then the retry succeeds and only now is the
	// coldest auto source evicted.
	close(gate)
	drained := make(chan struct{})
	if err := svc.submit(func() { close(drained) }); err != nil {
		t.Fatalf("submit drain: %v", err)
	}
	<-drained

	if !od.maybePromote(context.Background(), b) {
		t.Fatal("promotion retry failed on a drained pipeline")
	}
	if !tracked(b) {
		t.Fatal("b not tracked after successful retry")
	}
	if tracked(a) {
		t.Fatal("a still tracked; capacity-1 auto set should have evicted it")
	}
	if got := od.evictions.Load(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if got := od.promotions.Load(); got != 2 {
		t.Fatalf("promotions = %d, want 2", got)
	}
}
