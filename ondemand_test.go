package dynppr_test

import (
	"errors"
	"math"
	"testing"

	"dynppr"
	"dynppr/internal/power"
)

// odTestEdges generates an R-MAT edge list with a ring overlay. The overlay
// keeps every vertex reachable, so every probe's push does nontrivial work
// and advertises a positive epsilon (an unreachable source would be answered
// exactly, with epsilon 0, and trip the positivity assertions below).
func odTestEdges(t *testing.T, vertices, edges int, seed int64) []dynppr.Edge {
	t.Helper()
	list, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Name: "od-rmat", Model: dynppr.ModelRMAT, Vertices: vertices, Edges: edges, Seed: seed,
	})
	if err != nil {
		t.Fatalf("GenerateEdges: %v", err)
	}
	for v := 0; v < vertices; v++ {
		list = append(list, dynppr.Edge{U: dynppr.VertexID(v), V: dynppr.VertexID((v + 1) % vertices)})
	}
	return list
}

// applyEdges mirrors a batch onto a plain graph so an oracle can be computed
// on exactly the edge set the service holds.
func applyEdges(t *testing.T, g *dynppr.Graph, b dynppr.Batch) {
	t.Helper()
	for _, u := range b {
		switch u.Op {
		case dynppr.Insert:
			if _, err := g.AddEdge(u.U, u.V); err != nil {
				t.Fatalf("oracle AddEdge(%d,%d): %v", u.U, u.V, err)
			}
		case dynppr.Delete:
			if err := g.RemoveEdge(u.U, u.V); err != nil {
				t.Fatalf("oracle RemoveEdge(%d,%d): %v", u.U, u.V, err)
			}
		}
	}
}

// TestOnDemandDifferentialVsOracle checks the acceptance contract of the
// on-demand path: every estimate returned for an untracked source is within
// the advertised error bound of the power-iteration reverse (contribution)
// oracle — the same quantity tracked sources serve — both with the pure push
// and with Monte-Carlo refinement, before and after a live edge batch (which
// forces a CSR snapshot rebuild).
func TestOnDemandDifferentialVsOracle(t *testing.T) {
	const (
		vertices = 400
		odEps    = 1e-5
	)
	edges := odTestEdges(t, vertices, 3000, 21)
	batch := dynppr.Batch{
		{U: 7, V: 301, Op: dynppr.Insert},
		{U: 301, V: 9, Op: dynppr.Insert},
		{U: 0, V: 1, Op: dynppr.Delete},
		{U: 55, V: 120, Op: dynppr.Insert},
	}
	for _, walks := range []int{0, 4000} {
		g := dynppr.GraphFromEdges(edges)
		tracked := g.TopDegreeVertices(2)
		so := dynppr.DefaultServiceOptions()
		so.Options.Epsilon = 1e-6
		so.OnDemand = dynppr.OnDemandOptions{
			Enabled: true, Epsilon: odEps, RefineWalks: walks, Seed: 42,
		}
		svc, err := dynppr.NewService(g, tracked, so)
		if err != nil {
			t.Fatalf("NewService: %v", err)
		}
		defer svc.Close()

		oracleGraph := dynppr.GraphFromEdges(edges)
		check := func(stage string) {
			isTracked := make(map[dynppr.VertexID]bool, len(tracked))
			for _, s := range tracked {
				isTracked[s] = true
			}
			csr := oracleGraph.Snapshot()
			var probes []dynppr.VertexID
			for _, v := range []dynppr.VertexID{3, 57, 191, 202, 333} {
				if !isTracked[v] {
					probes = append(probes, v)
				}
			}
			for _, src := range probes {
				oracle, err := power.Reverse(csr, src, power.Options{
					Alpha: so.Options.Alpha, Tolerance: 1e-12, MaxIterations: 10_000,
				})
				if err != nil {
					t.Fatalf("%s: power.Reverse(%d): %v", stage, src, err)
				}
				top, qi, err := svc.QueryTopK(src, 10)
				if err != nil {
					t.Fatalf("%s: QueryTopK(%d): %v", stage, src, err)
				}
				if !qi.Approx {
					t.Fatalf("%s: QueryTopK(%d): expected approx answer for untracked source", stage, src)
				}
				if qi.Epsilon <= 0 || qi.Epsilon >= 1 {
					t.Fatalf("%s: QueryTopK(%d): implausible advertised epsilon %g", stage, src, qi.Epsilon)
				}
				const slack = 1e-12
				for _, vs := range top {
					if diff := math.Abs(vs.Score - oracle[vs.Vertex]); diff > qi.Epsilon+slack {
						t.Fatalf("%s: walks=%d source=%d vertex=%d: |%g - %g| = %g > advertised epsilon %g",
							stage, walks, src, vs.Vertex, vs.Score, oracle[vs.Vertex], diff, qi.Epsilon)
					}
				}
				for _, v := range []dynppr.VertexID{0, 1, src, 99, 250, vertices - 1} {
					est, eqi, err := svc.QueryEstimate(src, v)
					if err != nil {
						t.Fatalf("%s: QueryEstimate(%d,%d): %v", stage, src, v, err)
					}
					if !eqi.Approx {
						t.Fatalf("%s: QueryEstimate(%d,%d): expected approx answer", stage, src, v)
					}
					if diff := math.Abs(est - oracle[v]); diff > eqi.Epsilon+slack {
						t.Fatalf("%s: walks=%d source=%d estimate(%d): |%g - %g| = %g > epsilon %g",
							stage, walks, src, v, est, oracle[v], diff, eqi.Epsilon)
					}
				}
				// Determinism: the same query against the same snapshot
				// returns bit-identical scores.
				again, qi2, err := svc.QueryTopK(src, 10)
				if err != nil {
					t.Fatalf("%s: repeat QueryTopK(%d): %v", stage, src, err)
				}
				if qi2.Epsilon != qi.Epsilon || len(again) != len(top) {
					t.Fatalf("%s: repeat QueryTopK(%d): shape/epsilon changed", stage, src)
				}
				for i := range top {
					if top[i] != again[i] {
						t.Fatalf("%s: repeat QueryTopK(%d): entry %d differs: %v vs %v", stage, src, i, top[i], again[i])
					}
				}
			}
			// A tracked source stays on the exact path.
			if _, qi, err := svc.QueryTopK(tracked[0], 5); err != nil || qi.Approx {
				t.Fatalf("%s: tracked QueryTopK: err=%v approx=%v", stage, err, qi.Approx)
			}
		}

		check("initial")
		if _, err := svc.ApplyBatch(batch); err != nil {
			t.Fatalf("ApplyBatch: %v", err)
		}
		applyEdges(t, oracleGraph, batch)
		check("after-batch")

		st := svc.Stats()
		if st.OnDemand == nil {
			t.Fatal("Stats().OnDemand is nil with the path enabled")
		}
		if st.OnDemand.Queries == 0 {
			t.Fatal("Stats().OnDemand.Queries did not advance")
		}
		if st.OnDemand.SnapshotBuilds < 2 {
			t.Fatalf("expected >= 2 snapshot builds (initial + post-batch), got %d", st.OnDemand.SnapshotBuilds)
		}
		if walks > 0 && st.OnDemand.Walks == 0 {
			t.Fatal("refinement walks not counted")
		}
		svc.Close()
	}
}

// TestOnDemandPromotionLifecycle drives the full admission funnel: a cold
// source queried T times is promoted into Sources(), an over-capacity auto
// set evicts its coldest member, and reads of an evicted source fall back to
// the on-demand path — never an error.
func TestOnDemandPromotionLifecycle(t *testing.T) {
	edges := odTestEdges(t, 80, 400, 7)
	g := dynppr.GraphFromEdges(edges)
	manual := g.TopDegreeVertices(1)
	so := dynppr.DefaultServiceOptions()
	so.OnDemand = dynppr.OnDemandOptions{
		Enabled: true, Epsilon: 1e-3, PromoteAfter: 3, MaxAutoSources: 2, Seed: 1,
	}
	svc, err := dynppr.NewService(g, manual, so)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	defer svc.Close()

	tracked := func(v dynppr.VertexID) bool {
		for _, s := range svc.Sources() {
			if s == v {
				return true
			}
		}
		return false
	}
	queryN := func(src dynppr.VertexID, n int) dynppr.QueryInfo {
		var last dynppr.QueryInfo
		for i := 0; i < n; i++ {
			_, qi, err := svc.QueryTopK(src, 5)
			if err != nil {
				t.Fatalf("QueryTopK(%d) #%d: %v", src, i, err)
			}
			last = qi
		}
		return last
	}

	var s1, s2, s3 dynppr.VertexID = 11, 22, 33
	if tracked(s1) || tracked(s2) || tracked(s3) {
		t.Fatal("test sources unexpectedly tracked at start")
	}

	// Below the threshold the source stays approximate. Keep the first
	// answer to compare against the exact one after promotion.
	approxTop, aqi, err := svc.QueryTopK(s1, 5)
	if err != nil {
		t.Fatalf("QueryTopK(%d): %v", s1, err)
	}
	if !aqi.Approx || aqi.Promoted {
		t.Fatalf("pre-threshold query: approx=%v promoted=%v", aqi.Approx, aqi.Promoted)
	}
	if qi := queryN(s1, 1); !qi.Approx || qi.Promoted {
		t.Fatalf("pre-threshold query: approx=%v promoted=%v", qi.Approx, qi.Promoted)
	}
	// The T-th query promotes.
	if qi := queryN(s1, 1); !qi.Promoted {
		t.Fatal("query #3 did not promote")
	}
	if !tracked(s1) {
		t.Fatalf("source %d missing from Sources() after promotion", s1)
	}
	// Subsequent reads take the exact path and do not advance the
	// on-demand query counter.
	before := svc.Stats().OnDemand.Queries
	if _, qi, err := svc.QueryTopK(s1, 5); err != nil || qi.Approx {
		t.Fatalf("post-promotion read: err=%v approx=%v", err, qi.Approx)
	}
	if after := svc.Stats().OnDemand.Queries; after != before {
		t.Fatalf("exact read advanced on-demand queries: %d -> %d", before, after)
	}
	// Promotion must not change what an answer means: the pre-promotion
	// approximate scores agree with the post-promotion exact ones within the
	// two advertised bounds. (Regression test — the on-demand path once
	// computed the forward vector π_s while tracked sources serve the
	// contribution vector, so answers for the same source jumped at
	// promotion.)
	for _, vs := range approxTop {
		exact, info, err := svc.EstimateInfo(s1, vs.Vertex)
		if err != nil {
			t.Fatalf("EstimateInfo(%d,%d): %v", s1, vs.Vertex, err)
		}
		if d := math.Abs(vs.Score - exact); d > aqi.Epsilon+info.Epsilon+1e-12 {
			t.Fatalf("promotion changed the answer at vertex %d: approx %g vs exact %g (diff %g > %g+%g)",
				vs.Vertex, vs.Score, exact, d, aqi.Epsilon, info.Epsilon)
		}
	}

	queryN(s2, 3)
	if !tracked(s2) {
		t.Fatalf("source %d not promoted", s2)
	}
	// Keep s2 warm so s1 is the coldest auto source, then promote s3 to
	// force an eviction (capacity 2).
	queryN(s2, 1)
	if qi := queryN(s3, 3); !qi.Promoted {
		t.Fatal("source s3 not promoted under capacity pressure")
	}
	if tracked(s1) {
		t.Fatalf("coldest auto source %d survived capacity pressure", s1)
	}
	if !tracked(s2) || !tracked(s3) {
		t.Fatalf("warm auto sources evicted: s2=%v s3=%v", tracked(s2), tracked(s3))
	}
	if !tracked(manual[0]) {
		t.Fatal("manually added source was evicted")
	}
	st := svc.Stats().OnDemand
	if st.Promotions != 3 || st.Evictions != 1 {
		t.Fatalf("promotions=%d evictions=%d, want 3 and 1", st.Promotions, st.Evictions)
	}
	if st.AutoSources != 2 {
		t.Fatalf("auto sources=%d, want 2", st.AutoSources)
	}

	// The evicted source falls back to approximate answers, never errors.
	if _, qi, err := svc.QueryTopK(s1, 5); err != nil || !qi.Approx {
		t.Fatalf("evicted-source read: err=%v approx=%v", err, qi.Approx)
	}
	if _, qi, err := svc.QueryEstimate(s1, 0); err != nil || !qi.Approx {
		t.Fatalf("evicted-source estimate: err=%v approx=%v", err, qi.Approx)
	}

	// A source outside the graph is still answerable, exactly: no walk can
	// reach an isolated vertex, and its own walk contributes exactly α.
	far := dynppr.VertexID(10_000)
	est, qi, err := svc.QueryEstimate(far, far)
	if err != nil || !qi.Approx || est != so.Options.Alpha {
		t.Fatalf("out-of-graph source: est=%g (want alpha %g) approx=%v err=%v",
			est, so.Options.Alpha, qi.Approx, err)
	}
}

// TestUnknownSourceErrorIdentity pins the cross-layer error contract:
// every read path reports an untracked source with an error satisfying
// errors.Is(err, ErrUnknownSource) — TrackerSet included, which used to
// return an ad-hoc string error.
func TestUnknownSourceErrorIdentity(t *testing.T) {
	edges := odTestEdges(t, 40, 200, 3)

	ts, err := dynppr.NewTrackerSet(dynppr.GraphFromEdges(edges), []dynppr.VertexID{0}, dynppr.DefaultOptions())
	if err != nil {
		t.Fatalf("NewTrackerSet: %v", err)
	}
	if _, err := ts.Estimate(39, 1); !errors.Is(err, dynppr.ErrUnknownSource) {
		t.Fatalf("TrackerSet.Estimate: %v does not wrap ErrUnknownSource", err)
	}

	svc, err := dynppr.NewService(dynppr.GraphFromEdges(edges), []dynppr.VertexID{0}, dynppr.DefaultServiceOptions())
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	defer svc.Close()
	unknown := dynppr.VertexID(39)
	checks := map[string]error{}
	_, e1 := svc.Estimate(unknown, 0)
	checks["Service.Estimate"] = e1
	_, e2 := svc.TopK(unknown, 5)
	checks["Service.TopK"] = e2
	_, e3 := svc.Estimates(unknown)
	checks["Service.Estimates"] = e3
	_, e4 := svc.Info(unknown)
	checks["Service.Info"] = e4
	_, _, e5 := svc.TopKInfo(unknown, 5)
	checks["Service.TopKInfo"] = e5
	_, _, e6 := svc.EstimateInfo(unknown, 0)
	checks["Service.EstimateInfo"] = e6
	checks["Service.RemoveSource"] = svc.RemoveSource(unknown)
	// With on-demand disabled the Query entry points keep the same error.
	_, _, e7 := svc.QueryTopK(unknown, 5)
	checks["Service.QueryTopK"] = e7
	_, _, e8 := svc.QueryEstimate(unknown, 0)
	checks["Service.QueryEstimate"] = e8
	for name, err := range checks {
		if !errors.Is(err, dynppr.ErrUnknownSource) {
			t.Errorf("%s: %v does not wrap ErrUnknownSource", name, err)
		}
	}
}
