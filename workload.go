package dynppr

import (
	"io"

	"dynppr/internal/edgeio"
	"dynppr/internal/gen"
	"dynppr/internal/stream"
)

// Synthetic graph generation and streaming workloads, re-exported so
// applications and examples can build realistic dynamic-graph scenarios
// without touching internal packages.

// GraphModel selects a synthetic random-graph model.
type GraphModel = gen.Model

// Available graph models.
const (
	// ModelErdosRenyi draws edge endpoints uniformly at random.
	ModelErdosRenyi GraphModel = gen.ErdosRenyi
	// ModelBarabasiAlbert grows a power-law graph by preferential attachment.
	ModelBarabasiAlbert GraphModel = gen.BarabasiAlbert
	// ModelRMAT generates power-law graphs by recursive quadrant sampling.
	ModelRMAT GraphModel = gen.RMAT
)

// SyntheticConfig describes a synthetic graph to generate.
type SyntheticConfig = gen.Config

// GenerateGraph builds a synthetic graph.
func GenerateGraph(cfg SyntheticConfig) (*Graph, error) { return gen.Generate(cfg) }

// GenerateEdges builds only the edge list of a synthetic graph, for feeding a
// Stream.
func GenerateEdges(cfg SyntheticConfig) ([]Edge, error) { return gen.EdgeList(cfg) }

// Stream is a replayable random-arrival-order edge sequence.
type Stream = stream.Stream

// NewStream assigns a random arrival order (driven by seed) to the edges.
func NewStream(edges []Edge, seed int64) *Stream { return stream.NewStream(edges, seed) }

// SlidingWindow replays a stream through a fixed-size window, producing
// batches of insertions (arriving edges) and deletions (expiring edges).
type SlidingWindow = stream.SlidingWindow

// NewSlidingWindow initializes a window over the first initialFraction of the
// stream and returns the initial window edges for building the starting
// graph.
func NewSlidingWindow(s *Stream, initialFraction float64) (*SlidingWindow, []Edge) {
	return stream.NewSlidingWindow(s, initialFraction)
}

// ReadEdges parses a whitespace-separated "u v" edge list ('#' and '%'
// comment lines are skipped), the format used by the SNAP archive and by the
// cmd tools of this repository.
func ReadEdges(r io.Reader) ([]Edge, error) { return edgeio.Read(r) }

// WriteEdges writes edges in the "u v" text format.
func WriteEdges(w io.Writer, edges []Edge) error { return edgeio.Write(w, edges) }

// LoadEdges reads an edge list file.
func LoadEdges(path string) ([]Edge, error) { return edgeio.LoadFile(path) }

// SaveEdges writes an edge list file.
func SaveEdges(path string, edges []Edge) error { return edgeio.SaveFile(path, edges) }

// LoadGraph reads an edge list file and builds a graph from it.
func LoadGraph(path string) (*Graph, error) { return edgeio.LoadGraph(path) }
