package dynppr

// Degraded-mode persistence tests: transient storage faults must degrade the
// write path (reads keep serving, mutations rejected with zero partial
// effect) and self-heal via the recovery probe; permanent faults and
// exhausted probe budgets must fail persistence instead of probing forever.

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"dynppr/internal/faultfs"
)

// faultTestService boots a small persistent service through an injector with
// a fast probe cadence. It returns the service, the injector, the data dir,
// and the workload batches that remain to be applied.
func faultTestService(t *testing.T, po func(*PersistOptions)) (*Service, *faultfs.Injector, string, []VertexID, []Batch) {
	t.Helper()
	initial, stream := recoveryWorkload(t, 150, 1200, 4, 15)
	opts := DefaultOptions()
	opts.Engine = EngineDeterministic
	opts.Parallelism = 1
	opts.Epsilon = 1e-4
	sources := GraphFromEdges(initial).TopDegreeVertices(2)
	in := faultfs.NewInjector(faultfs.OS)
	dir := filepath.Join(t.TempDir(), "data")
	p := PersistOptions{Dir: dir, Sync: SyncAlways, FS: in, ProbeBackoff: time.Millisecond}
	if po != nil {
		po(&p)
	}
	svc, err := NewPersistentService(GraphFromEdges(initial), sources,
		ServiceOptions{Options: opts, PoolWorkers: 1}, p)
	if err != nil {
		t.Fatal(err)
	}
	return svc, in, dir, sources, stream
}

func waitPersistState(t *testing.T, svc *Service, want PersistState) PersistenceHealth {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		h, ok := svc.PersistenceHealth()
		if !ok {
			t.Fatal("service has no persistence")
		}
		if h.State == want {
			return h
		}
		if time.Now().After(deadline) {
			t.Fatalf("persistence stuck in %v (err %q), want %v", h.State, h.Err, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTransientFaultDegradesThenSelfHeals is the core state-machine cycle:
// HEALTHY -> (ENOSPC) -> DEGRADED (reads serve, writes shed, probe armed)
// -> HEALTHY again via the background probe, without a restart.
func TestTransientFaultDegradesThenSelfHeals(t *testing.T) {
	svc, in, _, sources, stream := faultTestService(t, nil)
	defer svc.Close()
	if _, err := svc.ApplyBatch(stream[0]); err != nil {
		t.Fatal(err)
	}
	preFault, err := svc.Estimates(sources[0])
	if err != nil {
		t.Fatal(err)
	}

	in.Add(faultfs.Rule{Op: faultfs.OpWrite, Path: "wal"})
	_, err = svc.ApplyBatch(stream[1])
	if !errors.Is(err, ErrPersistenceDegraded) {
		t.Fatalf("mutation under fault: got %v, want ErrPersistenceDegraded", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("rejection does not carry the classified cause: %v", err)
	}

	// Zero partial effect: the rejected batch changed nothing.
	if got, _ := svc.Estimates(sources[0]); !bitsEqual(got, preFault) {
		t.Fatal("rejected mutation left a partial effect on served estimates")
	}
	// Reads keep serving while degraded.
	if h, _ := svc.PersistenceHealth(); h.State == PersistDegraded {
		if _, err := svc.TopK(sources[0], 5); err != nil {
			t.Fatalf("read while degraded: %v", err)
		}
	}

	// The one-shot fault has fired; the probe heals on its own.
	h := waitPersistState(t, svc, PersistHealthy)
	if h.Err != "" {
		t.Fatalf("healthy state still carries error %q", h.Err)
	}
	// The rejected batch retries cleanly, and the rest of the stream lands.
	for _, b := range stream[1:] {
		if _, err := svc.ApplyBatch(b); err != nil {
			t.Fatalf("mutation after heal: %v", err)
		}
	}

	st := svc.Stats().Persistence
	if st.ProbeSuccesses < 1 {
		t.Fatalf("probe successes %d, want >= 1", st.ProbeSuccesses)
	}
	if st.ProbeAttempts < st.ProbeSuccesses {
		t.Fatalf("probe attempts %d < successes %d", st.ProbeAttempts, st.ProbeSuccesses)
	}
	if st.DegradedSeconds <= 0 {
		t.Fatal("degraded window not accounted in DegradedSeconds")
	}
	if st.Failed != "" {
		t.Fatalf("healthy stats still carry failure %q", st.Failed)
	}
}

// TestDegradedHealthReportsNextProbe: while degraded, PersistenceHealth must
// expose the time of the next probe (the Retry-After source) and the cause.
func TestDegradedHealthReportsNextProbe(t *testing.T) {
	svc, in, _, _, stream := faultTestService(t, func(p *PersistOptions) {
		p.ProbeBackoff = time.Hour // keep the probe pending while we look
	})
	defer svc.Close()
	in.Add(faultfs.Rule{Op: faultfs.OpWrite, Path: "wal"})
	if _, err := svc.ApplyBatch(stream[0]); !errors.Is(err, ErrPersistenceDegraded) {
		t.Fatalf("got %v", err)
	}
	h, _ := svc.PersistenceHealth()
	if h.State != PersistDegraded {
		t.Fatalf("state %v, want degraded", h.State)
	}
	if h.NextProbe <= 0 {
		t.Fatal("degraded health has no pending probe time")
	}
	if h.Err == "" {
		t.Fatal("degraded health does not report its cause")
	}
	// A second mutation is rejected without touching storage again.
	before := in.Ops()
	if _, err := svc.ApplyBatch(stream[1]); !errors.Is(err, ErrPersistenceDegraded) {
		t.Fatalf("got %v", err)
	}
	if in.Ops() != before {
		t.Fatal("a rejected-while-degraded mutation touched the filesystem")
	}
}

// TestManualCheckpointHealsDegraded: Checkpoint while degraded is an
// immediate, caller-visible recovery probe.
func TestManualCheckpointHealsDegraded(t *testing.T) {
	svc, in, _, _, stream := faultTestService(t, func(p *PersistOptions) {
		p.ProbeBackoff = time.Hour // the manual path must do the healing
	})
	defer svc.Close()
	if _, err := svc.ApplyBatch(stream[0]); err != nil {
		t.Fatal(err)
	}
	in.Add(faultfs.Rule{Op: faultfs.OpWrite, Path: "wal"})
	if _, err := svc.ApplyBatch(stream[1]); !errors.Is(err, ErrPersistenceDegraded) {
		t.Fatalf("got %v", err)
	}

	lsn, err := svc.Checkpoint()
	if err != nil {
		t.Fatalf("manual checkpoint while degraded: %v", err)
	}
	if h, _ := svc.PersistenceHealth(); h.State != PersistHealthy {
		t.Fatalf("state %v after manual heal, want healthy", h.State)
	}
	if want := uint64(1); lsn != want {
		t.Fatalf("healed checkpoint covers LSN %d, want %d (one acked batch)", lsn, want)
	}
	if _, err := svc.ApplyBatch(stream[1]); err != nil {
		t.Fatalf("mutation after manual heal: %v", err)
	}
}

// TestPermanentErrorFailsImmediately: EROFS-class errors skip the probe
// cycle entirely — probing cannot fix a read-only filesystem.
func TestPermanentErrorFailsImmediately(t *testing.T) {
	svc, in, _, sources, stream := faultTestService(t, nil)
	defer svc.Close()
	in.Add(faultfs.Rule{Op: faultfs.OpWrite, Path: "wal", Err: syscall.EROFS})
	if _, err := svc.ApplyBatch(stream[0]); !errors.Is(err, ErrPersistenceFailed) {
		t.Fatalf("got %v, want ErrPersistenceFailed", err)
	}
	h, _ := svc.PersistenceHealth()
	if h.State != PersistFailed {
		t.Fatalf("state %v, want failed", h.State)
	}
	if h.NextProbe != 0 {
		t.Fatal("failed persistence still schedules probes")
	}
	// Failure is terminal for writes but not for reads.
	if _, err := svc.ApplyBatch(stream[1]); !errors.Is(err, ErrPersistenceFailed) {
		t.Fatalf("second mutation: got %v", err)
	}
	if _, err := svc.TopK(sources[0], 5); err != nil {
		t.Fatalf("read after permanent failure: %v", err)
	}
	if _, err := svc.Checkpoint(); !errors.Is(err, ErrPersistenceFailed) {
		t.Fatalf("checkpoint after permanent failure: got %v", err)
	}
}

// TestProbeCapFailsPersistence: when the storage never heals, the probe
// budget runs out and the state machine lands in FAILED instead of probing
// forever.
func TestProbeCapFailsPersistence(t *testing.T) {
	svc, in, _, _, stream := faultTestService(t, func(p *PersistOptions) {
		p.ProbeMax = 2
	})
	defer svc.Close()
	// Every write-path op fails from here on: the probes cannot succeed.
	rule := in.Add(faultfs.Rule{Op: faultfs.OpAny, Times: -1})
	if _, err := svc.ApplyBatch(stream[0]); !errors.Is(err, ErrPersistenceDegraded) {
		t.Fatalf("got %v", err)
	}
	waitPersistState(t, svc, PersistFailed)
	st := svc.Stats().Persistence
	if st.ProbeAttempts < 2 {
		t.Fatalf("gave up after %d probe attempts, want the ProbeMax=2 budget spent", st.ProbeAttempts)
	}
	in.Disarm(rule) // storage "heals", but failed is terminal until restart
	if _, err := svc.ApplyBatch(stream[0]); !errors.Is(err, ErrPersistenceFailed) {
		t.Fatalf("mutation after terminal failure: got %v", err)
	}
}

// TestHealedStateRecoversFromDisk: after a degrade/heal cycle, the on-disk
// pair must reconstruct the exact served state — the heal's rotated WAL and
// re-written checkpoint are trusted by an actual recovery, not just by the
// probe's own verification.
func TestHealedStateRecoversFromDisk(t *testing.T) {
	svc, in, dir, sources, stream := faultTestService(t, nil)
	if _, err := svc.ApplyBatch(stream[0]); err != nil {
		t.Fatal(err)
	}
	in.Add(faultfs.Rule{Op: faultfs.OpWrite, Path: "wal", Mode: faultfs.ModePartial, Partial: 6})
	if _, err := svc.ApplyBatch(stream[1]); !errors.Is(err, ErrPersistenceDegraded) {
		t.Fatal("torn append did not degrade")
	}
	waitPersistState(t, svc, PersistHealthy)
	for _, b := range stream[1:] {
		if _, err := svc.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	want := make(map[VertexID][]float64, len(sources))
	for _, s := range sources {
		est, err := svc.Estimates(s)
		if err != nil {
			t.Fatal(err)
		}
		want[s] = est
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := NewServiceFromRecovery(ServiceOptions{Options: svc.opts.Options, PoolWorkers: 1},
		PersistOptions{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatalf("recovery after a healed episode: %v", err)
	}
	defer rec.Close()
	for _, s := range sources {
		got, err := rec.Estimates(s)
		if err != nil {
			t.Fatal(err)
		}
		if !bitsEqual(got, want[s]) {
			t.Fatalf("source %d: recovered estimates differ from the healed live state", s)
		}
	}
}

// TestBootSweepsTmpLeftovers: a crash mid-degraded-episode can strand temp
// files; both boot paths must remove them.
func TestBootSweepsTmpLeftovers(t *testing.T) {
	svc, _, dir, _, stream := faultTestService(t, nil)
	if _, err := svc.ApplyBatch(stream[0]); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"checkpoint.tmp", "wal.log.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("stranded"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rec, err := NewServiceFromRecovery(ServiceOptions{Options: svc.opts.Options, PoolWorkers: 1},
		PersistOptions{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("boot left stranded temp file %s", e.Name())
		}
	}
}
