package dynppr_test

import (
	"errors"
	"math"
	"sort"
	"testing"

	"dynppr"
)

func serviceTestEdges(t *testing.T, model dynppr.GraphModel, n, m int, seed int64) []dynppr.Edge {
	t.Helper()
	edges, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Model: model, Vertices: n, Edges: m, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return edges
}

func newTestService(t *testing.T, edges []dynppr.Edge, nSources int, eps float64) (*dynppr.Service, []dynppr.VertexID) {
	t.Helper()
	g := dynppr.GraphFromEdges(edges)
	sources := g.TopDegreeVertices(nSources)
	so := dynppr.DefaultServiceOptions()
	so.Options.Epsilon = eps
	so.Options.Workers = 2
	so.PoolWorkers = 2
	svc, err := dynppr.NewService(g, sources, so)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc, sources
}

func TestNewServiceErrors(t *testing.T) {
	edges := serviceTestEdges(t, dynppr.ModelErdosRenyi, 50, 200, 3)
	g := dynppr.GraphFromEdges(edges)
	so := dynppr.DefaultServiceOptions()

	if _, err := dynppr.NewService(g, nil, so); err == nil {
		t.Fatal("empty source list must fail")
	}
	if _, err := dynppr.NewService(g, []dynppr.VertexID{1, 1}, so); err == nil {
		t.Fatal("duplicate sources must fail")
	}
	bad := so
	bad.Options.Epsilon = 0
	if _, err := dynppr.NewService(g, []dynppr.VertexID{1}, bad); err == nil {
		t.Fatal("invalid options must fail")
	}
	unknown := so
	unknown.Options.Engine = dynppr.EngineKind(42)
	if _, err := dynppr.NewService(g, []dynppr.VertexID{1}, unknown); err == nil {
		t.Fatal("unknown engine must fail")
	}
}

// The service must produce exactly the answers an offline Tracker computes
// on the same graph and update sequence.
func TestServiceMatchesTracker(t *testing.T) {
	edges := serviceTestEdges(t, dynppr.ModelRMAT, 150, 900, 7)
	initial, extra := edges[:600], edges[600:]
	svc, sources := newTestService(t, initial, 3, 1e-5)

	batch := make(dynppr.Batch, 0, len(extra))
	for i, e := range extra {
		op := dynppr.Insert
		if i%5 == 4 {
			// Delete an edge that was part of the initial graph.
			e = initial[i]
			op = dynppr.Delete
		}
		batch = append(batch, dynppr.Update{U: e.U, V: e.V, Op: op})
	}
	res, err := svc.ApplyBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied == 0 || res.Pushes == 0 {
		t.Fatalf("batch did nothing: %+v", res)
	}

	// Replay the same history on a fresh Tracker per source.
	opts := dynppr.DefaultOptions()
	opts.Epsilon = 1e-5
	for _, s := range sources {
		g := dynppr.GraphFromEdges(initial)
		tr, err := dynppr.NewTracker(g, s, opts)
		if err != nil {
			t.Fatal(err)
		}
		tr.ApplyBatch(batch)
		want := tr.Estimates()
		got, info, err := svc.EstimatesInfo(s)
		if err != nil {
			t.Fatal(err)
		}
		if !info.Converged() || info.Epoch < 2 {
			t.Fatalf("source %d: bad snapshot info %+v", s, info)
		}
		if len(got) != len(want) {
			t.Fatalf("source %d: vector length %d vs %d", s, len(got), len(want))
		}
		for v := range got {
			if d := math.Abs(got[v] - want[v]); d > 2*opts.Epsilon {
				t.Fatalf("source %d vertex %d: service %v vs tracker %v", s, v, got[v], want[v])
			}
		}
		// TopK read path agrees with the tracker's ranking score-wise.
		gotTop, err := svc.TopK(s, 5)
		if err != nil {
			t.Fatal(err)
		}
		wantTop := tr.TopK(5)
		if len(gotTop) != len(wantTop) {
			t.Fatalf("source %d: TopK lengths %d vs %d", s, len(gotTop), len(wantTop))
		}
		for i := range gotTop {
			if d := math.Abs(gotTop[i].Score - wantTop[i].Score); d > 2*opts.Epsilon {
				t.Fatalf("source %d: TopK[%d] %v vs %v", s, i, gotTop[i], wantTop[i])
			}
		}
	}
}

func TestServiceReadErrors(t *testing.T) {
	edges := serviceTestEdges(t, dynppr.ModelErdosRenyi, 60, 300, 5)
	svc, _ := newTestService(t, edges, 2, 1e-4)

	if _, err := svc.Estimate(9999, 0); !errors.Is(err, dynppr.ErrUnknownSource) {
		t.Fatalf("want ErrUnknownSource, got %v", err)
	}
	if _, err := svc.Estimates(9999); !errors.Is(err, dynppr.ErrUnknownSource) {
		t.Fatalf("want ErrUnknownSource, got %v", err)
	}
	if _, err := svc.TopK(9999, 3); !errors.Is(err, dynppr.ErrUnknownSource) {
		t.Fatalf("want ErrUnknownSource, got %v", err)
	}
	if _, err := svc.Info(9999); !errors.Is(err, dynppr.ErrUnknownSource) {
		t.Fatalf("want ErrUnknownSource, got %v", err)
	}
}

func TestServiceAddRemoveSource(t *testing.T) {
	edges := serviceTestEdges(t, dynppr.ModelBarabasiAlbert, 100, 600, 11)
	svc, sources := newTestService(t, edges, 2, 1e-4)

	if err := svc.AddSource(sources[0]); err == nil {
		t.Fatal("adding an existing source must fail")
	}
	if err := svc.RemoveSource(9999); !errors.Is(err, dynppr.ErrUnknownSource) {
		t.Fatalf("removing an unknown source: %v", err)
	}

	extra := dynppr.VertexID(7)
	if err := svc.AddSource(extra); err != nil {
		t.Fatal(err)
	}
	if got := len(svc.Sources()); got != 3 {
		t.Fatalf("sources = %d, want 3", got)
	}
	info, err := svc.Info(extra)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Converged() || info.Epoch != 1 || info.Source != extra {
		t.Fatalf("cold-started snapshot info wrong: %+v", info)
	}
	// The new source agrees with an offline tracker on the same graph.
	opts := dynppr.DefaultOptions()
	opts.Epsilon = 1e-4
	tr, err := dynppr.NewTracker(dynppr.GraphFromEdges(edges), extra, opts)
	if err != nil {
		t.Fatal(err)
	}
	for v := dynppr.VertexID(0); int(v) < 100; v += 13 {
		got, err := svc.Estimate(extra, v)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(got - tr.Estimate(v)); d > 2*opts.Epsilon {
			t.Fatalf("vertex %d: %v vs %v", v, got, tr.Estimate(v))
		}
	}

	// The added source participates in subsequent batches.
	if _, err := svc.ApplyBatch(dynppr.Batch{{U: 3, V: extra, Op: dynppr.Insert}}); err != nil {
		t.Fatal(err)
	}
	info, err = svc.Info(extra)
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 2 || !info.Converged() {
		t.Fatalf("epoch after batch = %+v", info)
	}

	if err := svc.RemoveSource(extra); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Estimate(extra, 0); !errors.Is(err, dynppr.ErrUnknownSource) {
		t.Fatalf("read after remove: %v", err)
	}
	if got := len(svc.Sources()); got != 2 {
		t.Fatalf("sources after remove = %d, want 2", got)
	}
	// Remaining sources still served and still updated.
	if _, err := svc.ApplyBatch(dynppr.Batch{{U: 5, V: sources[0], Op: dynppr.Insert}}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Estimate(sources[0], 5); err != nil {
		t.Fatal(err)
	}
}

func TestServiceStats(t *testing.T) {
	edges := serviceTestEdges(t, dynppr.ModelErdosRenyi, 80, 400, 21)
	svc, sources := newTestService(t, edges, 3, 1e-4)

	res, err := svc.ApplyBatch(dynppr.Batch{
		{U: 0, V: 1, Op: dynppr.Insert},
		{U: 0, V: 1, Op: dynppr.Insert}, // duplicate
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := svc.Stats()
	if stats.Batches != 1 {
		t.Fatalf("batches = %d", stats.Batches)
	}
	if stats.UpdatesApplied != int64(res.Applied) || stats.UpdatesSkipped != int64(res.Skipped) {
		t.Fatalf("update counts %+v vs result %+v", stats, res)
	}
	if stats.LastBatchLatency <= 0 || stats.TotalBatchLatency < stats.LastBatchLatency {
		t.Fatalf("latencies wrong: %+v", stats)
	}
	if stats.AvgBatchLatency() <= 0 {
		t.Fatal("average latency must be positive")
	}
	if stats.Vertices <= 0 || stats.Edges <= 0 || stats.PoolWorkers != 2 {
		t.Fatalf("graph stats wrong: %+v", stats)
	}
	if len(stats.Sources) != len(sources) {
		t.Fatalf("source stats length %d, want %d", len(stats.Sources), len(sources))
	}
	for i, ss := range stats.Sources {
		if i > 0 && stats.Sources[i-1].Source >= ss.Source {
			t.Fatal("source stats not sorted")
		}
		if ss.Pushes <= 0 {
			t.Fatalf("source %d performed no pushes", ss.Source)
		}
		if ss.Epoch != 2 {
			t.Fatalf("source %d epoch = %d, want 2", ss.Source, ss.Epoch)
		}
		if ss.MaxResidual > 1e-4 {
			t.Fatalf("source %d residual %v", ss.Source, ss.MaxResidual)
		}
		if ss.Shard < 0 || ss.Shard >= stats.PoolWorkers {
			t.Fatalf("source %d on shard %d", ss.Source, ss.Shard)
		}
	}
	if stats.AvgBatchLatency() != stats.TotalBatchLatency/1 {
		t.Fatal("avg latency mismatch for one batch")
	}
	if (dynppr.ServiceStats{}).AvgBatchLatency() != 0 {
		t.Fatal("zero-batch avg latency must be 0")
	}
}

func TestServiceClose(t *testing.T) {
	edges := serviceTestEdges(t, dynppr.ModelErdosRenyi, 40, 150, 9)
	g := dynppr.GraphFromEdges(edges)
	so := dynppr.DefaultServiceOptions()
	so.Options.Epsilon = 1e-4
	svc, err := dynppr.NewService(g, g.TopDegreeVertices(2), so)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
	if _, err := svc.ApplyBatch(dynppr.Batch{{U: 1, V: 2, Op: dynppr.Insert}}); !errors.Is(err, dynppr.ErrServiceClosed) {
		t.Fatalf("ApplyBatch after close: %v", err)
	}
	if err := svc.AddSource(17); !errors.Is(err, dynppr.ErrServiceClosed) {
		t.Fatalf("AddSource after close: %v", err)
	}
	if err := svc.RemoveSource(17); !errors.Is(err, dynppr.ErrServiceClosed) {
		t.Fatalf("RemoveSource after close: %v", err)
	}
}

// An empty batch (or one with only no-op updates) must not republish
// snapshots: readers keep the same epoch.
func TestServiceNoOpBatchKeepsEpoch(t *testing.T) {
	edges := serviceTestEdges(t, dynppr.ModelErdosRenyi, 40, 150, 13)
	svc, sources := newTestService(t, edges, 1, 1e-4)
	before, err := svc.Info(sources[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.ApplyBatch(dynppr.Batch{{U: 999, V: 998, Op: dynppr.Delete}}); err != nil {
		t.Fatal(err)
	}
	after, err := svc.Info(sources[0])
	if err != nil {
		t.Fatal(err)
	}
	if after.Epoch != before.Epoch {
		t.Fatalf("no-op batch changed epoch %d -> %d", before.Epoch, after.Epoch)
	}
}

// Tracker.TopK and Service.TopK share the heap-based selection; cross-check
// it against a straightforward full sort, including exact score ties.
func TestTopKMatchesFullSort(t *testing.T) {
	// A star: every leaf points at the hub, so all leaves tie exactly.
	g := dynppr.NewGraph(0)
	for i := 1; i <= 9; i++ {
		if _, err := g.AddEdge(dynppr.VertexID(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := dynppr.NewTracker(g, 0, dynppr.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	est := tr.Estimates()
	ref := make([]dynppr.VertexScore, len(est))
	for v, s := range est {
		ref[v] = dynppr.VertexScore{Vertex: dynppr.VertexID(v), Score: s}
	}
	sort.Slice(ref, func(i, j int) bool {
		if ref[i].Score != ref[j].Score {
			return ref[i].Score > ref[j].Score
		}
		return ref[i].Vertex < ref[j].Vertex
	})
	for _, k := range []int{0, 1, 3, 5, 10, 50} {
		got := tr.TopK(k)
		want := ref
		if k < len(want) {
			want = want[:k]
		}
		if k == 0 && got != nil {
			t.Fatal("TopK(0) must be nil")
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d entries, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("k=%d entry %d: got %+v, want %+v", k, i, got[i], want[i])
			}
		}
	}
}
