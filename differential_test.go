package dynppr_test

import (
	"math"
	"math/rand"
	"testing"

	"dynppr"
	"dynppr/internal/graph"
	"dynppr/internal/power"
)

// engineConfig names one engine/variant combination under differential test.
type engineConfig struct {
	name    string
	engine  dynppr.EngineKind
	variant dynppr.Variant
}

func allEngineConfigs() []engineConfig {
	return []engineConfig{
		{"sequential", dynppr.EngineSequential, dynppr.VariantOpt},
		{"parallel-opt", dynppr.EngineParallel, dynppr.VariantOpt},
		{"parallel-eager", dynppr.EngineParallel, dynppr.VariantEager},
		{"parallel-dupdetect", dynppr.EngineParallel, dynppr.VariantDupDetect},
		{"parallel-vanilla", dynppr.EngineParallel, dynppr.VariantVanilla},
		{"vertex-centric", dynppr.EngineVertexCentric, dynppr.VariantOpt},
	}
}

// randomUpdateStream builds a deterministic mixed insert/delete stream: each
// batch draws inserts from the edge universe (duplicates possible) and
// deletes from the edges inserted so far (misses possible), so the engines
// also see the no-op paths.
func randomUpdateStream(universe []dynppr.Edge, seed int64, batches, batchSize int) []dynppr.Batch {
	rng := rand.New(rand.NewSource(seed))
	var present []dynppr.Edge
	out := make([]dynppr.Batch, 0, batches)
	for b := 0; b < batches; b++ {
		batch := make(dynppr.Batch, 0, batchSize)
		for i := 0; i < batchSize; i++ {
			if len(present) > 0 && rng.Intn(3) == 0 {
				e := present[rng.Intn(len(present))]
				batch = append(batch, dynppr.Update{U: e.U, V: e.V, Op: dynppr.Delete})
			} else {
				e := universe[rng.Intn(len(universe))]
				batch = append(batch, dynppr.Update{U: e.U, V: e.V, Op: dynppr.Insert})
				present = append(present, e)
			}
		}
		out = append(out, batch)
	}
	return out
}

// TestDifferentialEngines replays identical random insert/delete streams on
// every engine/variant combination over ER, BA and RMAT graphs (fixed seeds)
// and asserts that (a) all engines agree with the sequential reference
// within 2ε after every batch, and (b) every engine agrees with the exact
// power-iteration oracle within ε at the end.
func TestDifferentialEngines(t *testing.T) {
	const (
		epsilon   = 1e-5
		batches   = 4
		batchSize = 60
	)
	models := []struct {
		name  string
		model dynppr.GraphModel
		seed  int64
	}{
		{"erdos-renyi", dynppr.ModelErdosRenyi, 17},
		{"barabasi-albert", dynppr.ModelBarabasiAlbert, 23},
		{"rmat", dynppr.ModelRMAT, 31},
	}
	for _, m := range models {
		m := m
		t.Run(m.name, func(t *testing.T) {
			universe, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
				Model: m.model, Vertices: 120, Edges: 700, Seed: m.seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			initial := universe[:400]
			source := dynppr.GraphFromEdges(initial).TopDegreeVertices(1)[0]
			stream := randomUpdateStream(universe, m.seed+1000, batches, batchSize)

			configs := allEngineConfigs()
			trackers := make([]*dynppr.Tracker, len(configs))
			for i, c := range configs {
				opts := dynppr.DefaultOptions()
				opts.Engine = c.engine
				opts.Variant = c.variant
				opts.Epsilon = epsilon
				opts.Workers = 2
				tr, err := dynppr.NewTracker(dynppr.GraphFromEdges(initial), source, opts)
				if err != nil {
					t.Fatalf("%s: %v", c.name, err)
				}
				trackers[i] = tr
			}

			for b, batch := range stream {
				for i, tr := range trackers {
					res := tr.ApplyBatch(batch)
					if !tr.Converged() {
						t.Fatalf("%s: not converged after batch %d (%+v)", configs[i].name, b, res)
					}
				}
				// All engines processed the same updates, so their graphs
				// must match the reference exactly...
				ref := trackers[0]
				for i, tr := range trackers[1:] {
					if tr.Graph().NumEdges() != ref.Graph().NumEdges() {
						t.Fatalf("%s: edge count diverged after batch %d", configs[i+1].name, b)
					}
				}
				// ...and their estimates must agree within 2ε.
				refEst := ref.Estimates()
				for i, tr := range trackers[1:] {
					est := tr.Estimates()
					if len(est) != len(refEst) {
						t.Fatalf("%s: vector length %d vs %d after batch %d",
							configs[i+1].name, len(est), len(refEst), b)
					}
					for v := range est {
						if d := math.Abs(est[v] - refEst[v]); d > 2*epsilon {
							t.Fatalf("%s: batch %d vertex %d differs from sequential by %v",
								configs[i+1].name, b, v, d)
						}
					}
				}
			}

			// Final cross-check against the exact oracle.
			oracle, err := power.ReverseGraph(trackers[0].Graph(), source, power.Options{
				Alpha: 0.15, Tolerance: 1e-13, MaxIterations: 20_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, tr := range trackers {
				est := tr.Estimates()
				var worst float64
				for v := range est {
					if d := math.Abs(est[v] - oracle[v]); d > worst {
						worst = d
					}
				}
				if worst > epsilon {
					t.Fatalf("%s: max error vs oracle %v exceeds ε %v", configs[i].name, worst, epsilon)
				}
				if err := tr.Graph().CheckConsistency(); err != nil {
					t.Fatalf("%s: %v", configs[i].name, err)
				}
			}
		})
	}
}

// TestDifferentialInvariant checks the structural property the scheme rests
// on: after arbitrary mixed batches, Equation 2 holds at every vertex for
// every engine (the invariant error stays at floating-point noise even
// though residuals are only bounded by ε).
func TestDifferentialInvariant(t *testing.T) {
	universe, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Model: dynppr.ModelRMAT, Vertices: 100, Edges: 500, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream := randomUpdateStream(universe, 77, 3, 50)
	for _, c := range allEngineConfigs() {
		g := graph.FromEdges(nil)
		opts := dynppr.DefaultOptions()
		opts.Engine = c.engine
		opts.Variant = c.variant
		opts.Epsilon = 1e-4
		opts.Workers = 2
		tr, err := dynppr.NewTracker(g, 0, opts)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for _, b := range stream {
			tr.ApplyBatch(b)
		}
		maxErr, err := tr.ExactError()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if maxErr > opts.Epsilon {
			t.Fatalf("%s: exact error %v exceeds ε", c.name, maxErr)
		}
	}
}
