package dynppr_test

import (
	"math"
	"math/rand"
	"testing"

	"dynppr"
	"dynppr/internal/graph"
	"dynppr/internal/power"
)

// engineConfig names one engine/variant combination under differential test.
type engineConfig struct {
	name    string
	engine  dynppr.EngineKind
	variant dynppr.Variant
}

func allEngineConfigs() []engineConfig {
	return []engineConfig{
		{"sequential", dynppr.EngineSequential, dynppr.VariantOpt},
		{"parallel-opt", dynppr.EngineParallel, dynppr.VariantOpt},
		{"parallel-eager", dynppr.EngineParallel, dynppr.VariantEager},
		{"parallel-dupdetect", dynppr.EngineParallel, dynppr.VariantDupDetect},
		{"parallel-vanilla", dynppr.EngineParallel, dynppr.VariantVanilla},
		{"vertex-centric", dynppr.EngineVertexCentric, dynppr.VariantOpt},
		{"deterministic", dynppr.EngineDeterministic, dynppr.VariantOpt},
	}
}

// randomUpdateStream builds a deterministic mixed insert/delete stream: each
// batch draws inserts from the edge universe (duplicates possible) and
// deletes from the edges inserted so far (misses possible), so the engines
// also see the no-op paths.
func randomUpdateStream(universe []dynppr.Edge, seed int64, batches, batchSize int) []dynppr.Batch {
	rng := rand.New(rand.NewSource(seed))
	var present []dynppr.Edge
	out := make([]dynppr.Batch, 0, batches)
	for b := 0; b < batches; b++ {
		batch := make(dynppr.Batch, 0, batchSize)
		for i := 0; i < batchSize; i++ {
			if len(present) > 0 && rng.Intn(3) == 0 {
				e := present[rng.Intn(len(present))]
				batch = append(batch, dynppr.Update{U: e.U, V: e.V, Op: dynppr.Delete})
			} else {
				e := universe[rng.Intn(len(universe))]
				batch = append(batch, dynppr.Update{U: e.U, V: e.V, Op: dynppr.Insert})
				present = append(present, e)
			}
		}
		out = append(out, batch)
	}
	return out
}

// TestDifferentialEngines replays identical random insert/delete streams on
// every engine/variant combination over ER, BA and RMAT graphs (fixed seeds)
// and asserts that (a) all engines agree with the sequential reference
// within 2ε after every batch, and (b) every engine agrees with the exact
// power-iteration oracle within ε at the end.
func TestDifferentialEngines(t *testing.T) {
	const (
		epsilon   = 1e-5
		batches   = 4
		batchSize = 60
	)
	models := []struct {
		name  string
		model dynppr.GraphModel
		seed  int64
	}{
		{"erdos-renyi", dynppr.ModelErdosRenyi, 17},
		{"barabasi-albert", dynppr.ModelBarabasiAlbert, 23},
		{"rmat", dynppr.ModelRMAT, 31},
	}
	for _, m := range models {
		m := m
		t.Run(m.name, func(t *testing.T) {
			universe, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
				Model: m.model, Vertices: 120, Edges: 700, Seed: m.seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			initial := universe[:400]
			source := dynppr.GraphFromEdges(initial).TopDegreeVertices(1)[0]
			stream := randomUpdateStream(universe, m.seed+1000, batches, batchSize)

			configs := allEngineConfigs()
			trackers := make([]*dynppr.Tracker, len(configs))
			for i, c := range configs {
				opts := dynppr.DefaultOptions()
				opts.Engine = c.engine
				opts.Variant = c.variant
				opts.Epsilon = epsilon
				opts.Workers = 2
				opts.Parallelism = 2
				tr, err := dynppr.NewTracker(dynppr.GraphFromEdges(initial), source, opts)
				if err != nil {
					t.Fatalf("%s: %v", c.name, err)
				}
				trackers[i] = tr
			}

			for b, batch := range stream {
				for i, tr := range trackers {
					res := tr.ApplyBatch(batch)
					if !tr.Converged() {
						t.Fatalf("%s: not converged after batch %d (%+v)", configs[i].name, b, res)
					}
				}
				// All engines processed the same updates, so their graphs
				// must match the reference exactly...
				ref := trackers[0]
				for i, tr := range trackers[1:] {
					if tr.Graph().NumEdges() != ref.Graph().NumEdges() {
						t.Fatalf("%s: edge count diverged after batch %d", configs[i+1].name, b)
					}
				}
				// ...and their estimates must agree within 2ε.
				refEst := ref.Estimates()
				for i, tr := range trackers[1:] {
					est := tr.Estimates()
					if len(est) != len(refEst) {
						t.Fatalf("%s: vector length %d vs %d after batch %d",
							configs[i+1].name, len(est), len(refEst), b)
					}
					for v := range est {
						if d := math.Abs(est[v] - refEst[v]); d > 2*epsilon {
							t.Fatalf("%s: batch %d vertex %d differs from sequential by %v",
								configs[i+1].name, b, v, d)
						}
					}
				}
			}

			// Final cross-check against the exact oracle.
			oracle, err := power.ReverseGraph(trackers[0].Graph(), source, power.Options{
				Alpha: 0.15, Tolerance: 1e-13, MaxIterations: 20_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, tr := range trackers {
				est := tr.Estimates()
				var worst float64
				for v := range est {
					if d := math.Abs(est[v] - oracle[v]); d > worst {
						worst = d
					}
				}
				if worst > epsilon {
					t.Fatalf("%s: max error vs oracle %v exceeds ε %v", configs[i].name, worst, epsilon)
				}
				if err := tr.Graph().CheckConsistency(); err != nil {
					t.Fatalf("%s: %v", configs[i].name, err)
				}
			}
		})
	}
}

// buildDifferentialTrackers builds one tracker per engine/variant over the
// same initial edge list.
func buildDifferentialTrackers(t *testing.T, initial []dynppr.Edge, source dynppr.VertexID, epsilon float64) ([]engineConfig, []*dynppr.Tracker) {
	t.Helper()
	configs := allEngineConfigs()
	trackers := make([]*dynppr.Tracker, len(configs))
	for i, c := range configs {
		opts := dynppr.DefaultOptions()
		opts.Engine = c.engine
		opts.Variant = c.variant
		opts.Epsilon = epsilon
		opts.Workers = 2
		opts.Parallelism = 2
		tr, err := dynppr.NewTracker(dynppr.GraphFromEdges(initial), source, opts)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		trackers[i] = tr
	}
	return configs, trackers
}

// replayAndCompare replays the stream on every tracker, asserting per batch
// that all engines stay within 2ε of the sequential reference, and finally
// that every engine is within ε of the exact power-iteration oracle.
func replayAndCompare(t *testing.T, configs []engineConfig, trackers []*dynppr.Tracker, stream []dynppr.Batch, epsilon float64) {
	t.Helper()
	for b, batch := range stream {
		for i, tr := range trackers {
			tr.ApplyBatch(batch)
			if !tr.Converged() {
				t.Fatalf("%s: not converged after batch %d", configs[i].name, b)
			}
		}
		refEst := trackers[0].Estimates()
		for i, tr := range trackers[1:] {
			est := tr.Estimates()
			if len(est) != len(refEst) {
				t.Fatalf("%s: vector length %d vs %d after batch %d",
					configs[i+1].name, len(est), len(refEst), b)
			}
			for v := range est {
				if d := math.Abs(est[v] - refEst[v]); d > 2*epsilon {
					t.Fatalf("%s: batch %d vertex %d differs from sequential by %v",
						configs[i+1].name, b, v, d)
				}
			}
		}
	}
	oracle, err := power.ReverseGraph(trackers[0].Graph(), trackers[0].Source(), power.Options{
		Alpha: 0.15, Tolerance: 1e-13, MaxIterations: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range trackers {
		var worst float64
		for v, est := range tr.Estimates() {
			if d := math.Abs(est - oracle[v]); d > worst {
				worst = d
			}
		}
		if worst > epsilon {
			t.Fatalf("%s: max error vs oracle %v exceeds ε %v", configs[i].name, worst, epsilon)
		}
		if err := tr.Graph().CheckConsistency(); err != nil {
			t.Fatalf("%s: %v", configs[i].name, err)
		}
	}
}

// deleteHeavyScenario builds the delete-heavy workload: the tracker starts
// on the full edge universe and a 3-deletes-to-1-insert stream tears most of
// it down, with some deletes hitting edges already gone (the no-op path).
func deleteHeavyScenario(t *testing.T) (initial []dynppr.Edge, source dynppr.VertexID, stream []dynppr.Batch) {
	t.Helper()
	universe, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Model: dynppr.ModelBarabasiAlbert, Vertices: 120, Edges: 700, Seed: 53,
	})
	if err != nil {
		t.Fatal(err)
	}
	source = dynppr.GraphFromEdges(universe).TopDegreeVertices(1)[0]
	rng := rand.New(rand.NewSource(54))
	present := append([]dynppr.Edge(nil), universe...)
	for b := 0; b < 6; b++ {
		batch := make(dynppr.Batch, 0, 80)
		for i := 0; i < 80; i++ {
			if len(present) > 0 && rng.Intn(4) != 0 {
				idx := rng.Intn(len(present))
				e := present[idx]
				present = append(present[:idx], present[idx+1:]...)
				batch = append(batch, dynppr.Update{U: e.U, V: e.V, Op: dynppr.Delete})
			} else {
				e := universe[rng.Intn(len(universe))]
				batch = append(batch, dynppr.Update{U: e.U, V: e.V, Op: dynppr.Insert})
				present = append(present, e)
			}
		}
		stream = append(stream, batch)
	}
	return universe, source, stream
}

// slidingWindowScenario builds the paper's sliding-window workload with a
// window much smaller than the graph, so every slide is half inserts and
// half deletes and the entire edge set turns over during the run.
func slidingWindowScenario(t *testing.T) (initial []dynppr.Edge, source dynppr.VertexID, batches []dynppr.Batch) {
	t.Helper()
	universe, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Model: dynppr.ModelRMAT, Vertices: 120, Edges: 900, Seed: 61,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream := dynppr.NewStream(universe, 62)
	// A 10% window over a 900-edge stream: the window (~90 edges) is far
	// smaller than the graph it slides across.
	window, initial := dynppr.NewSlidingWindow(stream, 0.1)
	if window.Size() >= len(universe)/2 {
		t.Fatalf("window %d is not smaller than the graph (%d edges)", window.Size(), len(universe))
	}
	source = dynppr.GraphFromEdges(initial).TopDegreeVertices(1)[0]
	for {
		b := window.Slide(45)
		if len(b) == 0 {
			break
		}
		batches = append(batches, b)
	}
	if len(batches) < 10 {
		t.Fatalf("expected a long slide sequence, got %d batches", len(batches))
	}
	return initial, source, batches
}

// TestDifferentialDeleteHeavy replays the delete-heavy stream so the
// engines' deletion invariant-restoration path, not just the insert path,
// carries the differential comparison.
func TestDifferentialDeleteHeavy(t *testing.T) {
	const epsilon = 1e-5
	initial, source, stream := deleteHeavyScenario(t)
	configs, trackers := buildDifferentialTrackers(t, initial, source, epsilon)
	replayAndCompare(t, configs, trackers, stream, epsilon)

	if got := trackers[0].Graph().NumEdges(); got >= len(initial)/2 {
		t.Fatalf("stream was not delete-heavy: %d of %d edges remain", got, len(initial))
	}
}

// TestDifferentialSlidingWindow replays the sliding-window workload across
// every engine.
func TestDifferentialSlidingWindow(t *testing.T) {
	const epsilon = 1e-5
	initial, source, batches := slidingWindowScenario(t)
	configs, trackers := buildDifferentialTrackers(t, initial, source, epsilon)
	replayAndCompare(t, configs, trackers, batches, epsilon)
}

// TestDifferentialDeterministicBitIdentical is the determinism contract of
// EngineDeterministic at the public API: across the delete-heavy and
// sliding-window scenarios, trackers running at parallelism 1, 2 and 8
// produce estimate and residual vectors with exactly the same float64 bits
// after every batch — the parallelism-1 run is the engine's own sequential
// execution, so the parallel runs are bit-identical to the sequential one.
// The suite runs under -race in CI, so it also stresses the engine's
// barrier discipline.
func TestDifferentialDeterministicBitIdentical(t *testing.T) {
	const epsilon = 1e-5
	scenarios := []struct {
		name  string
		build func(*testing.T) ([]dynppr.Edge, dynppr.VertexID, []dynppr.Batch)
	}{
		{"delete-heavy", deleteHeavyScenario},
		{"sliding-window", slidingWindowScenario},
	}
	parallelisms := []int{1, 2, 8}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			initial, source, stream := sc.build(t)
			trackers := make([]*dynppr.Tracker, len(parallelisms))
			for i, par := range parallelisms {
				opts := dynppr.DefaultOptions()
				opts.Engine = dynppr.EngineDeterministic
				opts.Epsilon = epsilon
				opts.Parallelism = par
				tr, err := dynppr.NewTracker(dynppr.GraphFromEdges(initial), source, opts)
				if err != nil {
					t.Fatalf("parallelism %d: %v", par, err)
				}
				trackers[i] = tr
			}
			for b, batch := range stream {
				for i, tr := range trackers {
					tr.ApplyBatch(batch)
					if !tr.Converged() {
						t.Fatalf("parallelism %d: not converged after batch %d", parallelisms[i], b)
					}
				}
				ref := trackers[0]
				refEst := ref.Estimates()
				for i, tr := range trackers[1:] {
					est := tr.Estimates()
					if len(est) != len(refEst) {
						t.Fatalf("parallelism %d: vector length %d vs %d after batch %d",
							parallelisms[i+1], len(est), len(refEst), b)
					}
					for v := range est {
						if math.Float64bits(est[v]) != math.Float64bits(refEst[v]) {
							t.Fatalf("parallelism %d: batch %d vertex %d: estimate bits %x differ from sequential %x",
								parallelisms[i+1], b, v, math.Float64bits(est[v]), math.Float64bits(refEst[v]))
						}
						rv, refv := tr.Residual(dynppr.VertexID(v)), ref.Residual(dynppr.VertexID(v))
						if math.Float64bits(rv) != math.Float64bits(refv) {
							t.Fatalf("parallelism %d: batch %d vertex %d: residual bits differ",
								parallelisms[i+1], b, v)
						}
					}
				}
			}
			// The deterministic engine must also honour the ε contract.
			oracle, err := power.ReverseGraph(trackers[0].Graph(), source, power.Options{
				Alpha: 0.15, Tolerance: 1e-13, MaxIterations: 20_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			var worst float64
			for v, est := range trackers[0].Estimates() {
				if d := math.Abs(est - oracle[v]); d > worst {
					worst = d
				}
			}
			if worst > epsilon {
				t.Fatalf("max error vs oracle %v exceeds ε %v", worst, epsilon)
			}
		})
	}
}

// TestDifferentialInvariant checks the structural property the scheme rests
// on: after arbitrary mixed batches, Equation 2 holds at every vertex for
// every engine (the invariant error stays at floating-point noise even
// though residuals are only bounded by ε).
func TestDifferentialInvariant(t *testing.T) {
	universe, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Model: dynppr.ModelRMAT, Vertices: 100, Edges: 500, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream := randomUpdateStream(universe, 77, 3, 50)
	for _, c := range allEngineConfigs() {
		g := graph.FromEdges(nil)
		opts := dynppr.DefaultOptions()
		opts.Engine = c.engine
		opts.Variant = c.variant
		opts.Epsilon = 1e-4
		opts.Workers = 2
		opts.Parallelism = 2
		tr, err := dynppr.NewTracker(g, 0, opts)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for _, b := range stream {
			tr.ApplyBatch(b)
		}
		maxErr, err := tr.ExactError()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if maxErr > opts.Epsilon {
			t.Fatalf("%s: exact error %v exceeds ε", c.name, maxErr)
		}
	}
}
