package dynppr_test

import (
	"math"
	"testing"
	"testing/quick"

	"dynppr"
)

// lineGraph builds 0 -> 1 -> 2 -> ... -> n-1.
func lineGraph(n int) *dynppr.Graph {
	g := dynppr.NewGraph(n)
	for i := 0; i < n-1; i++ {
		if _, err := g.AddEdge(dynppr.VertexID(i), dynppr.VertexID(i+1)); err != nil {
			panic(err)
		}
	}
	return g
}

func TestDefaultOptionsValid(t *testing.T) {
	opts := dynppr.DefaultOptions()
	if err := opts.Validate(); err != nil {
		t.Fatal(err)
	}
	if opts.Alpha != 0.15 || opts.Engine != dynppr.EngineParallel || opts.Mode != dynppr.BatchMode {
		t.Fatalf("unexpected defaults: %+v", opts)
	}
}

func TestOptionStrings(t *testing.T) {
	if dynppr.EngineParallel.String() != "parallel" ||
		dynppr.EngineSequential.String() != "sequential" ||
		dynppr.EngineVertexCentric.String() != "vertex-centric" ||
		dynppr.EngineKind(9).String() == "" {
		t.Fatal("EngineKind.String wrong")
	}
	if dynppr.BatchMode.String() != "batch" || dynppr.SingleUpdateMode.String() != "single" {
		t.Fatal("UpdateMode.String wrong")
	}
}

func TestNewTrackerErrors(t *testing.T) {
	g := lineGraph(3)
	bad := dynppr.DefaultOptions()
	bad.Alpha = 0
	if _, err := dynppr.NewTracker(g, 0, bad); err == nil {
		t.Fatal("invalid alpha must fail")
	}
	unknown := dynppr.DefaultOptions()
	unknown.Engine = dynppr.EngineKind(42)
	if _, err := dynppr.NewTracker(g, 0, unknown); err == nil {
		t.Fatal("unknown engine must fail")
	}
	if _, err := dynppr.NewTracker(g, -1, dynppr.DefaultOptions()); err == nil {
		t.Fatal("negative source must fail")
	}
}

func TestTrackerColdStartAndAccessors(t *testing.T) {
	g := lineGraph(5)
	opts := dynppr.DefaultOptions()
	opts.Epsilon = 1e-8
	tr, err := dynppr.NewTracker(g, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Source() != 4 || tr.Graph() != g || tr.Options().Epsilon != 1e-8 {
		t.Fatal("accessors wrong")
	}
	if tr.EngineName() == "" {
		t.Fatal("engine name empty")
	}
	if !tr.Converged() {
		t.Fatal("tracker must be converged after construction")
	}
	// On the line graph every vertex reaches 4, so every estimate is positive
	// and decreasing with distance from the target.
	prev := math.Inf(1)
	for v := dynppr.VertexID(4); v >= 0; v-- {
		e := tr.Estimate(v)
		if e <= 0 {
			t.Fatalf("estimate of %d = %v, want > 0", v, e)
		}
		if v < 4 && e >= prev {
			t.Fatalf("estimate should decrease with distance: P[%d]=%v >= %v", v, e, prev)
		}
		prev = e
	}
	if got := tr.Estimate(100); got != 0 {
		t.Fatalf("unknown vertex estimate = %v", got)
	}
	if len(tr.Estimates()) != g.NumVertices() {
		t.Fatal("Estimates length wrong")
	}
	if r := tr.Residual(4); math.Abs(r) > opts.Epsilon {
		t.Fatalf("residual %v exceeds epsilon", r)
	}
	if tr.Counters().Pushes == 0 {
		t.Fatal("cold start should have performed pushes")
	}
	maxErr, err := tr.ExactError()
	if err != nil {
		t.Fatal(err)
	}
	if maxErr > opts.Epsilon {
		t.Fatalf("exact error %v exceeds epsilon", maxErr)
	}
}

func TestTrackerApplyBatchInsertAndDelete(t *testing.T) {
	g := lineGraph(4)
	opts := dynppr.DefaultOptions()
	opts.Epsilon = 1e-7
	tr, err := dynppr.NewTracker(g, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	before := tr.Estimate(0)
	// A shortcut edge 0 -> 3 raises 0's probability of reaching 3.
	res := tr.ApplyBatch(dynppr.Batch{
		{U: 0, V: 3, Op: dynppr.Insert},
		{U: 0, V: 3, Op: dynppr.Insert},  // duplicate: skipped
		{U: 9, V: 10, Op: dynppr.Delete}, // missing: skipped
		{U: 5, V: 3, Op: dynppr.Insert},  // new vertex
		{U: 1, V: 2, Op: dynppr.Op(99)},  // unknown op: skipped
	})
	if res.Applied != 2 || res.Skipped != 3 {
		t.Fatalf("applied=%d skipped=%d", res.Applied, res.Skipped)
	}
	if res.Latency <= 0 {
		t.Fatal("latency must be positive")
	}
	if !tr.Converged() {
		t.Fatal("not converged after batch")
	}
	if after := tr.Estimate(0); after <= before {
		t.Fatalf("estimate of 0 should increase after shortcut: %v -> %v", before, after)
	}
	if tr.Estimate(5) <= 0 {
		t.Fatal("new vertex should have positive estimate after pointing at the target")
	}
	if maxErr, err := tr.ExactError(); err != nil || maxErr > opts.Epsilon {
		t.Fatalf("exact error %v (err %v)", maxErr, err)
	}
	// Now delete the shortcut again; estimate drops back.
	high := tr.Estimate(0)
	res = tr.ApplyUpdate(dynppr.Update{U: 0, V: 3, Op: dynppr.Delete})
	if res.Applied != 1 {
		t.Fatalf("delete not applied: %+v", res)
	}
	if tr.Estimate(0) >= high {
		t.Fatal("estimate should drop after deleting the shortcut")
	}
	if maxErr, err := tr.ExactError(); err != nil || maxErr > opts.Epsilon {
		t.Fatalf("exact error after delete %v (err %v)", maxErr, err)
	}
}

func TestTrackerEnginesAgree(t *testing.T) {
	edges, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Model: dynppr.ModelRMAT, Vertices: 200, Edges: 1200, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	build := func(engine dynppr.EngineKind, variant dynppr.Variant, mode dynppr.UpdateMode) *dynppr.Tracker {
		opts := dynppr.DefaultOptions()
		opts.Engine = engine
		opts.Variant = variant
		opts.Epsilon = 1e-5
		opts.Mode = mode
		opts.Workers = 4
		g := dynppr.GraphFromEdges(edges[:800])
		tr, err := dynppr.NewTracker(g, 0, opts)
		if err != nil {
			t.Fatal(err)
		}
		batch := make(dynppr.Batch, 0, 400)
		for _, e := range edges[800:] {
			batch = append(batch, dynppr.Update{U: e.U, V: e.V, Op: dynppr.Insert})
		}
		tr.ApplyBatch(batch)
		return tr
	}
	reference := build(dynppr.EngineSequential, dynppr.VariantOpt, dynppr.BatchMode)
	configs := []struct {
		name    string
		engine  dynppr.EngineKind
		variant dynppr.Variant
		mode    dynppr.UpdateMode
	}{
		{"parallel-opt", dynppr.EngineParallel, dynppr.VariantOpt, dynppr.BatchMode},
		{"parallel-vanilla", dynppr.EngineParallel, dynppr.VariantVanilla, dynppr.BatchMode},
		{"parallel-eager", dynppr.EngineParallel, dynppr.VariantEager, dynppr.BatchMode},
		{"parallel-dupdetect", dynppr.EngineParallel, dynppr.VariantDupDetect, dynppr.BatchMode},
		{"vertex-centric", dynppr.EngineVertexCentric, dynppr.VariantOpt, dynppr.BatchMode},
		{"sequential-single", dynppr.EngineSequential, dynppr.VariantOpt, dynppr.SingleUpdateMode},
	}
	refEst := reference.Estimates()
	for _, c := range configs {
		tr := build(c.engine, c.variant, c.mode)
		est := tr.Estimates()
		if len(est) != len(refEst) {
			t.Fatalf("%s: estimate length mismatch", c.name)
		}
		for v := range est {
			if d := math.Abs(est[v] - refEst[v]); d > 2e-5 {
				t.Errorf("%s: estimate of %d differs from sequential by %v", c.name, v, d)
				break
			}
		}
	}
}

func TestTrackerTopK(t *testing.T) {
	g := lineGraph(6)
	tr, err := dynppr.NewTracker(g, 5, dynppr.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	top := tr.TopK(3)
	if len(top) != 3 {
		t.Fatalf("TopK returned %d entries", len(top))
	}
	if top[0].Vertex != 5 {
		t.Fatalf("top vertex should be the source, got %d", top[0].Vertex)
	}
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Fatal("TopK not sorted")
		}
	}
	if got := tr.TopK(0); got != nil {
		t.Fatal("TopK(0) should be nil")
	}
	if got := tr.TopK(100); len(got) != g.NumVertices() {
		t.Fatal("TopK(k>n) should clamp to n")
	}
}

func TestTrackerSlidingWindowWorkload(t *testing.T) {
	edges, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Model: dynppr.ModelBarabasiAlbert, Vertices: 150, Edges: 1500, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := dynppr.NewStream(edges, 1)
	window, initial := dynppr.NewSlidingWindow(s, 0.3)
	g := dynppr.GraphFromEdges(initial)
	source := g.TopDegreeVertices(1)[0]
	opts := dynppr.DefaultOptions()
	opts.Epsilon = 1e-5
	tr, err := dynppr.NewTracker(g, source, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		batch := window.Slide(50)
		if batch == nil {
			break
		}
		res := tr.ApplyBatch(batch)
		if !tr.Converged() {
			t.Fatalf("slide %d: not converged", i)
		}
		if res.Applied == 0 {
			t.Fatalf("slide %d applied nothing", i)
		}
	}
	maxErr, err := tr.ExactError()
	if err != nil {
		t.Fatal(err)
	}
	if maxErr > opts.Epsilon {
		t.Fatalf("exact error %v exceeds epsilon after sliding window", maxErr)
	}
}

func TestTrackerSet(t *testing.T) {
	edges, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Model: dynppr.ModelRMAT, Vertices: 100, Edges: 700, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := dynppr.GraphFromEdges(edges[:500])
	sources := g.TopDegreeVertices(3)
	opts := dynppr.DefaultOptions()
	opts.Epsilon = 1e-5
	opts.Workers = 2

	if _, err := dynppr.NewTrackerSet(g.Clone(), nil, opts); err == nil {
		t.Fatal("empty source list must fail")
	}
	if _, err := dynppr.NewTrackerSet(g.Clone(), []dynppr.VertexID{1, 1}, opts); err == nil {
		t.Fatal("duplicate sources must fail")
	}
	badOpts := opts
	badOpts.Epsilon = 0
	if _, err := dynppr.NewTrackerSet(g.Clone(), sources, badOpts); err == nil {
		t.Fatal("invalid options must fail")
	}

	ts, err := dynppr.NewTrackerSet(g, sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Graph() != g || len(ts.Sources()) != 3 {
		t.Fatal("accessors wrong")
	}
	if !ts.Converged() {
		t.Fatal("tracker set must converge at construction")
	}
	batch := make(dynppr.Batch, 0, 200)
	for _, e := range edges[500:] {
		batch = append(batch, dynppr.Update{U: e.U, V: e.V, Op: dynppr.Insert})
	}
	res := ts.ApplyBatch(batch)
	if res.Applied == 0 || !ts.Converged() {
		t.Fatalf("batch not applied or not converged: %+v", res)
	}
	// Each tracked source must agree with an independent single-source tracker.
	for _, s := range sources {
		single, err := dynppr.NewTracker(g.Clone(), s, opts)
		if err != nil {
			t.Fatal(err)
		}
		for v := dynppr.VertexID(0); int(v) < g.NumVertices(); v += 7 {
			got, err := ts.Estimate(s, v)
			if err != nil {
				t.Fatal(err)
			}
			if d := math.Abs(got - single.Estimate(v)); d > 2*opts.Epsilon {
				t.Fatalf("source %d vertex %d: set estimate %v vs single %v", s, v, got, single.Estimate(v))
			}
		}
	}
	if _, err := ts.Estimate(9999, 0); err == nil {
		t.Fatal("estimating an untracked source must fail")
	}
}

// Property: whatever insert-only batch is applied, the tracker stays within
// epsilon of the exact vector.
func TestTrackerAccuracyProperty(t *testing.T) {
	f := func(seed int64) bool {
		edges, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
			Model: dynppr.ModelErdosRenyi, Vertices: 50, Edges: 300, Seed: seed,
		})
		if err != nil {
			return false
		}
		g := dynppr.GraphFromEdges(edges[:200])
		opts := dynppr.DefaultOptions()
		opts.Epsilon = 1e-4
		opts.Workers = 2
		tr, err := dynppr.NewTracker(g, 0, opts)
		if err != nil {
			return false
		}
		batch := make(dynppr.Batch, 0, 100)
		for _, e := range edges[200:] {
			batch = append(batch, dynppr.Update{U: e.U, V: e.V, Op: dynppr.Insert})
		}
		tr.ApplyBatch(batch)
		maxErr, err := tr.ExactError()
		return err == nil && maxErr <= opts.Epsilon
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
